module olevgrid

go 1.22
