package olevgrid_test

import (
	"io"
	"testing"
	"time"

	"olevgrid"
	"olevgrid/internal/core"
	"olevgrid/internal/experiments"
	"olevgrid/internal/grid"
	"olevgrid/internal/pricing"
	"olevgrid/internal/stats"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
)

// --- Figure benches: each regenerates one of the paper's figures. ---

// BenchmarkFig2GridDay regenerates the four Fig. 2 grid series.
func BenchmarkFig2GridDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(grid.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.PeakLoadMW <= res.MinLoadMW {
			b.Fatal("degenerate day")
		}
	}
}

// BenchmarkFig3Traffic regenerates the Fig. 3(b)/3(c) motivation study
// over a three-hour evening window (the full-day variant runs in the
// wpt-experiments binary).
func BenchmarkFig3Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.Fig3Config{
			Seed:  1,
			Start: 16 * time.Hour,
			End:   19 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.AtLight.TotalEnergy <= res.MidBlock.TotalEnergy {
			b.Fatal("shape violated: mid-block beat at-light")
		}
	}
}

func benchPayment(b *testing.B, vel units.Speed) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		points, err := experiments.PaymentVsCongestion(vel, experiments.GameDefaults{})
		if err != nil {
			b.Fatal(err)
		}
		if points[len(points)-1].NonlinearPerMWh <= points[0].NonlinearPerMWh {
			b.Fatal("shape violated: payment not rising")
		}
	}
}

// BenchmarkFig5aPaymentVsCongestion regenerates Fig. 5(a) at 60 mph.
func BenchmarkFig5aPaymentVsCongestion(b *testing.B) { benchPayment(b, units.MPH(60)) }

// BenchmarkFig6aPaymentVsCongestion regenerates Fig. 6(a) at 80 mph.
func BenchmarkFig6aPaymentVsCongestion(b *testing.B) { benchPayment(b, units.MPH(80)) }

func benchWelfare(b *testing.B, vel units.Speed) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := experiments.WelfareVsSections(vel, []int{30, 40, 50}, experiments.GameDefaults{})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatal("missing fleet series")
		}
	}
}

// BenchmarkFig5bWelfare regenerates Fig. 5(b) at 60 mph.
func BenchmarkFig5bWelfare(b *testing.B) { benchWelfare(b, units.MPH(60)) }

// BenchmarkFig6bWelfare regenerates Fig. 6(b) at 80 mph.
func BenchmarkFig6bWelfare(b *testing.B) { benchWelfare(b, units.MPH(80)) }

func benchLoadBalance(b *testing.B, vel units.Speed) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadBalance(vel, experiments.GameDefaults{})
		if err != nil {
			b.Fatal(err)
		}
		if res.NonlinearCV >= res.LinearCV {
			b.Fatal("shape violated: nonlinear not better balanced")
		}
	}
}

// BenchmarkFig5cLoadBalance regenerates Fig. 5(c) at 60 mph.
func BenchmarkFig5cLoadBalance(b *testing.B) { benchLoadBalance(b, units.MPH(60)) }

// BenchmarkFig6cLoadBalance regenerates Fig. 6(c) at 80 mph.
func BenchmarkFig6cLoadBalance(b *testing.B) { benchLoadBalance(b, units.MPH(80)) }

func benchConvergence(b *testing.B, vel units.Speed) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Convergence(vel, []int{30, 40, 50}, 5, 120, experiments.GameDefaults{})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{30, 40, 50} {
			traj := res.Trajectories[n]
			final := traj.Points[traj.Len()-1].Y
			if final < 0.8 {
				b.Fatalf("N=%d did not approach the 0.9 target: %v", n, final)
			}
		}
	}
}

// BenchmarkFig5dConvergence regenerates Fig. 5(d) at 60 mph.
func BenchmarkFig5dConvergence(b *testing.B) { benchConvergence(b, units.MPH(60)) }

// BenchmarkFig6dConvergence regenerates Fig. 6(d) at 80 mph.
func BenchmarkFig6dConvergence(b *testing.B) { benchConvergence(b, units.MPH(80)) }

// --- Kernel benches: the primitives the game executes per update. ---

func buildWaterFillInput(c int) []float64 {
	r := stats.NewRand(9)
	others := make([]float64, c)
	for i := range others {
		others[i] = r.Float64() * 50
	}
	return others
}

// BenchmarkWaterFillExact measures the O(C log C) breakpoint solver.
func BenchmarkWaterFillExact(b *testing.B) {
	others := buildWaterFillInput(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WaterFill(others, 40)
	}
}

// BenchmarkWaterFillBisect measures the paper's bisection formulation
// — the ablation partner of the exact solver.
func BenchmarkWaterFillBisect(b *testing.B) {
	others := buildWaterFillInput(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WaterFillBisect(others, 40, 1e-9)
	}
}

// BenchmarkBestResponse measures one OLEV's utility maximization.
func BenchmarkBestResponse(b *testing.B) {
	v, err := core.NewQuadraticCharging(0.02, 0.875, 53.55)
	if err != nil {
		b.Fatal(err)
	}
	psi := core.NewPaymentFunction(v, buildWaterFillInput(100))
	sat := core.LogSatisfaction{Weight: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BestResponse(sat, psi, 95.76)
	}
}

// BenchmarkGameUpdate measures one full asynchronous update (quote +
// best response + water-fill install) in a 50×100 game.
func BenchmarkGameUpdate(b *testing.B) {
	_, players, err := pricing.BuildFleet(pricing.FleetConfig{
		N: 50, Velocity: units.MPH(60), SatisfactionWeight: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cost, err := pricing.Nonlinear{}.CostFunction(20, 53.55, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.NewGame(core.Config{
		Players: players, NumSections: 100, LineCapacityKW: 53.55, Eta: 0.9, Cost: cost,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.UpdateOne(i % 50)
	}
}

// BenchmarkKraussStep measures the car-following kernel.
func BenchmarkKraussStep(b *testing.B) {
	p := traffic.DefaultDriverParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.NextSpeed(12, 10, 25, 13.9, 0.5, 0.3)
	}
}

// --- Ablation benches: design choices DESIGN.md calls out. ---

// BenchmarkAblationEtaSweep measures equilibrium welfare across the
// safety factor η, quantifying the capacity/welfare trade-off.
func BenchmarkAblationEtaSweep(b *testing.B) {
	_, players, err := pricing.BuildFleet(pricing.FleetConfig{
		N: 30, Velocity: units.MPH(60), SatisfactionWeight: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	lineCap := pricing.LineCapacityKW(units.Meters(15), units.MPH(60))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var prev float64
		for _, eta := range []float64{0.3, 0.6, 0.9} {
			out, err := pricing.Nonlinear{}.Run(pricing.Scenario{
				Players: players, NumSections: 15, LineCapacityKW: lineCap,
				Eta: eta, BetaPerMWh: 20, Seed: 1, MaxUpdates: 3000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if out.Welfare < prev {
				b.Fatalf("welfare fell as eta rose: %v < %v", out.Welfare, prev)
			}
			prev = out.Welfare
		}
	}
}

// BenchmarkAblationUpdateOrder compares round-robin vs random player
// ordering — Theorem IV.1 says both land on the same optimum.
func BenchmarkAblationUpdateOrder(b *testing.B) {
	for _, order := range []struct {
		name string
		ord  core.UpdateOrder
	}{
		{name: "round-robin", ord: core.OrderRoundRobin},
		{name: "random", ord: core.OrderRandom},
	} {
		b.Run(order.name, func(b *testing.B) {
			_, players, err := pricing.BuildFleet(pricing.FleetConfig{
				N: 20, Velocity: units.MPH(60), SatisfactionWeight: 1, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				out, err := pricing.Nonlinear{Order: order.ord}.Run(pricing.Scenario{
					Players: players, NumSections: 25,
					LineCapacityKW: pricing.LineCapacityKW(units.Meters(15), units.MPH(60)),
					Eta:            1.0, BetaPerMWh: 20, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if !out.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// BenchmarkRunAllQuick exercises the whole harness end to end, as the
// facade exposes it.
func BenchmarkRunAllQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := olevgrid.RunAllExperiments(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}
