package olevgrid_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end to end and checks
// for its headline output. These are the programs README points new
// users at, so they must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take seconds each")
	}
	tests := []struct {
		name   string
		marker string
	}{
		{name: "quickstart", marker: "congestion degree"},
		{name: "nyc_flatlands", marker: "placement comparison"},
		{name: "congestion_pricing", marker: "load balance"},
		{name: "distributed_v2i", marker: "converged=true"},
		{name: "deployment_planning", marker: "optimal plan"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "olevgrid/examples/"+tt.name)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				<-done
				t.Fatal("example timed out")
			}
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), tt.marker) {
				t.Errorf("output missing %q:\n%s", tt.marker, out)
			}
		})
	}
}
