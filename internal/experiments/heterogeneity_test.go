package experiments

import "testing"

func TestHeterogeneitySweep(t *testing.T) {
	points, err := HeterogeneitySweep([]float64{0, 3, 8}, GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Fairness <= 0 || p.Fairness > 1 {
			t.Errorf("std %v: fairness %v outside (0, 1]", p.VelocityStdMPS, p.Fairness)
		}
		if p.TotalPowerKW <= 0 {
			t.Errorf("std %v: no power", p.VelocityStdMPS)
		}
	}
	// The robustness claim: at realistic dispersion the Eq. (3) caps
	// do not bind, so fairness stays near 1 and welfare is flat
	// across the sweep.
	for _, p := range points {
		if p.Fairness < 0.95 {
			t.Errorf("std %v: fairness %v; caps should not bind here", p.VelocityStdMPS, p.Fairness)
		}
	}
	spread := points[0].Welfare - points[2].Welfare
	if spread < 0 {
		spread = -spread
	}
	if spread > 0.05*points[0].Welfare {
		t.Errorf("welfare moved %v across dispersion; expected near-flat", spread)
	}
}
