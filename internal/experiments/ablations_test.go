package experiments

import (
	"strings"
	"testing"
)

func TestAblationAlphaSweep(t *testing.T) {
	series, err := AblationAlphaSweep([]float64{0.25, 0.875, 2.0}, GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() != 3 {
		t.Fatalf("got %d points", series.Len())
	}
	// At fixed congestion x the normalized unit price
	// β(α+x)²/(α+1)² falls toward β·x²-ish as α→0 and rises toward β
	// as α→∞; across this range it is increasing in α for x < 1.
	ys := series.Ys()
	if !(ys[0] < ys[1] && ys[1] < ys[2]) {
		t.Errorf("unit payment not increasing in alpha: %v", ys)
	}
	for _, y := range ys {
		if y <= 0 || y > 25 {
			t.Errorf("unit payment %v outside sane range", y)
		}
	}
}

func TestAblationKappaSweep(t *testing.T) {
	points, err := AblationKappaSweep([]float64{50, 500, 5000}, GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Stiffer walls shrink the overshoot monotonically.
	for i := 1; i < len(points); i++ {
		if points[i].Overshoot >= points[i-1].Overshoot {
			t.Errorf("overshoot not shrinking: %v then %v",
				points[i-1].Overshoot, points[i].Overshoot)
		}
	}
	// All overshoots positive (the wall is soft) and the softest is
	// substantial while the stiffest is small.
	if points[0].Overshoot <= 0 {
		t.Errorf("softest wall overshoot %v should be positive", points[0].Overshoot)
	}
	if points[2].Overshoot > 0.02 {
		t.Errorf("stiffest wall overshoot %v should be tiny", points[2].Overshoot)
	}
}

func TestPolicyComparisonTable(t *testing.T) {
	table, err := PolicyComparison(GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("got %d rows", len(table.Rows))
	}
	text := table.String()
	for _, policy := range []string{"nonlinear", "linear", "stackelberg"} {
		if !strings.Contains(text, policy) {
			t.Errorf("table missing %q:\n%s", policy, text)
		}
	}
}
