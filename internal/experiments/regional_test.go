package experiments

import (
	"testing"
)

func TestRegionalMeanFieldSettlesFeeder(t *testing.T) {
	res, err := RegionalMeanField(RegionalConfig{Defaults: GameDefaults{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settled {
		t.Fatalf("metro did not settle in %d rounds (total %v, cap %v)", res.SettleRounds, res.TotalPowerKW, res.FeederCapKW)
	}
	if res.FeederCapKW <= 0 {
		t.Fatal("default config built no feeder cap")
	}
	if res.TotalPowerKW > res.FeederCapKW*1.001 {
		t.Fatalf("settled draw %v exceeds feeder cap %v", res.TotalPowerKW, res.FeederCapKW)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d regions, want 3 defaults", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.Converged {
			t.Fatalf("region %s macro game did not converge", p.Region)
		}
		if p.Vehicles < 1000 {
			t.Fatalf("region %s fleet %d; the study is supposed to exceed exact-tier scale", p.Region, p.Vehicles)
		}
		if p.Welfare <= 0 || p.TotalPowerKW <= 0 {
			t.Fatalf("region %s degenerate outcome: W=%v P=%v", p.Region, p.Welfare, p.TotalPowerKW)
		}
		if p.CorridorKWh <= 0 {
			t.Fatalf("region %s: corridor harvested %v kWh", p.Region, p.CorridorKWh)
		}
	}
	// The study renders: every region appears in the table.
	tab := res.Table()
	if len(tab.Rows) != len(res.Points) {
		t.Fatalf("table has %d rows for %d regions", len(tab.Rows), len(res.Points))
	}
}

func TestRegionalMeanFieldUncoupled(t *testing.T) {
	res, err := RegionalMeanField(RegionalConfig{
		CorridorIntersections: []int{3, 4},
		FeederFraction:        -1,
		Defaults:              GameDefaults{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FeederCapKW != 0 || res.SettleRounds != 1 || !res.Settled {
		t.Fatalf("uncoupled study: cap=%v rounds=%d settled=%v", res.FeederCapKW, res.SettleRounds, res.Settled)
	}
	for _, p := range res.Points {
		if p.EffectiveEta != 0.9 {
			t.Fatalf("region %s shed capacity (%v) with no feeder constraint", p.Region, p.EffectiveEta)
		}
	}
}

func TestRegionalMeanFieldWorkerCountIndependent(t *testing.T) {
	run := func(par int) *RegionalResult {
		res, err := RegionalMeanField(RegionalConfig{
			CorridorIntersections: []int{3, 5},
			Defaults:              GameDefaults{Seed: 2, Parallelism: par},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	got := run(4)
	if got.Welfare != ref.Welfare || got.TotalPowerKW != ref.TotalPowerKW || got.SettleRounds != ref.SettleRounds {
		t.Fatalf("parallelism changed the study: W %v vs %v, P %v vs %v, rounds %d vs %d",
			got.Welfare, ref.Welfare, got.TotalPowerKW, ref.TotalPowerKW, got.SettleRounds, ref.SettleRounds)
	}
	for i := range ref.Points {
		if got.Points[i].Welfare != ref.Points[i].Welfare || got.Points[i].EffectiveEta != ref.Points[i].EffectiveEta {
			t.Fatalf("region %d diverged across worker counts", i)
		}
	}
}
