package experiments

import (
	"fmt"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/sweep"
	"olevgrid/internal/trace"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
	"olevgrid/internal/wpt"
)

// MultiIntersectionConfig drives the Section III extrapolation: the
// paper measures one intersection, then argues that Brooklyn's 4371
// signalized intersections aggregate to grid-scale load. This harness
// simulates a corridor of several signalized intersections, each with
// its own charging section at the stop line, and extrapolates.
type MultiIntersectionConfig struct {
	// Intersections is the number of signalized stop lines on the
	// corridor; zero means 3.
	Intersections int
	// BlockLength separates consecutive intersections; zero means
	// 400 m.
	BlockLength units.Distance
	// SpeedLimit applies corridor-wide; zero means 50 km/h.
	SpeedLimit units.Speed
	// Counts is the demand profile; zero value means Flatlands.
	Counts trace.HourlyCounts
	// Section is the per-intersection charging spec; zero value means
	// the paper's 200 m / 100 kW section.
	Section wpt.SectionSpec
	// Window bounds the simulation; zero End means a 3 h PM peak.
	Start, End time.Duration
	// ExtrapolateTo scales the per-intersection average to a city
	// count; zero means the paper's 4371.
	ExtrapolateTo int
	// Seed drives the traffic.
	Seed int64
}

func (c *MultiIntersectionConfig) applyDefaults() {
	if c.Intersections == 0 {
		c.Intersections = 3
	}
	if c.BlockLength == 0 {
		c.BlockLength = units.Meters(400)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = units.KMH(50)
	}
	if c.Counts == (trace.HourlyCounts{}) {
		c.Counts = trace.FlatlandsAvenue()
	}
	if c.Section == (wpt.SectionSpec{}) {
		c.Section = wpt.MotivationSpec()
	}
	if c.End == 0 {
		c.Start, c.End = 16*time.Hour, 19*time.Hour
	}
	if c.ExtrapolateTo == 0 {
		c.ExtrapolateTo = 4371
	}
}

// MultiIntersectionResult aggregates the corridor's harvest.
type MultiIntersectionResult struct {
	// PerIntersectionKWh lists each stop line's harvested energy,
	// upstream first.
	PerIntersectionKWh []float64
	// CorridorKWh is the corridor total.
	CorridorKWh float64
	// CityEstimateMWh extrapolates the per-intersection mean to the
	// configured city intersection count.
	CityEstimateMWh float64
	// Vehicles is the number of distinct vehicles that charged.
	Vehicles int
}

// MultiIntersection runs the corridor study.
func MultiIntersection(cfg MultiIntersectionConfig) (*MultiIntersectionResult, error) {
	cfg.applyDefaults()
	if cfg.Intersections < 1 {
		return nil, fmt.Errorf("experiments: need intersections, got %d", cfg.Intersections)
	}
	if cfg.Section.Length > cfg.BlockLength {
		return nil, fmt.Errorf("experiments: section %v longer than block %v",
			cfg.Section.Length, cfg.BlockLength)
	}

	// Build the corridor: one segment per block, signal at each end.
	plan := roadnet.DefaultSignalPlan()
	segments := make([]traffic.Segment, cfg.Intersections)
	sections := make([]wpt.Section, cfg.Intersections)
	var offset units.Distance
	for i := range segments {
		p := plan
		p.Offset = time.Duration(i) * 25 * time.Second // green wave-ish
		segments[i] = traffic.Segment{
			Length:     cfg.BlockLength,
			SpeedLimit: cfg.SpeedLimit,
			Signal:     &p,
		}
		end := offset + cfg.BlockLength
		sections[i] = wpt.Section{
			ID:          i + 1,
			Start:       end - cfg.Section.Length,
			Length:      cfg.Section.Length,
			LineVoltage: cfg.Section.LineVoltage,
			MaxCurrent:  cfg.Section.MaxCurrent,
			RatedPower:  cfg.Section.RatedPower,
		}
		offset = end
	}
	lane, err := wpt.NewLane(offset, sections)
	if err != nil {
		return nil, err
	}
	sim, err := traffic.NewCorridorSim(traffic.CorridorConfig{
		Segments: segments,
		Counts:   cfg.Counts,
		Seed:     cfg.Seed,
		Start:    cfg.Start,
		End:      cfg.End,
	})
	if err != nil {
		return nil, err
	}
	acc := wpt.NewAccumulator(lane)
	sim.AddObserver(acc.Observe)
	sim.Run()

	res := &MultiIntersectionResult{
		PerIntersectionKWh: make([]float64, cfg.Intersections),
	}
	for i, s := range sections {
		rec := acc.Record(s.ID)
		res.PerIntersectionKWh[i] = rec.TotalEnergy().KWh()
		res.CorridorKWh += res.PerIntersectionKWh[i]
		res.Vehicles = maxInt(res.Vehicles, rec.Vehicles)
	}
	perIntersection := res.CorridorKWh / float64(cfg.Intersections)
	res.CityEstimateMWh = perIntersection * float64(cfg.ExtrapolateTo) / 1000
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MultiIntersectionPoint is one corridor length of the count sweep.
type MultiIntersectionPoint struct {
	Intersections      int
	CorridorKWh        float64
	PerIntersectionKWh float64 // corridor mean
	CityEstimateMWh    float64
	// Vehicles is the number of distinct vehicles the corridor charged —
	// the demand signal the regional mean-field study sizes its fleets
	// from.
	Vehicles int
}

// MultiIntersectionSweep runs the corridor study at several corridor
// lengths — the "does the extrapolation hold as corridors grow?"
// check. Each corridor is an independent simulation, so the sweep fans
// out over the worker pool; results are index-ordered and worker-count
// independent like every sweep.Map.
func MultiIntersectionSweep(counts []int, base MultiIntersectionConfig, parallelism int) ([]MultiIntersectionPoint, error) {
	return sweep.Map(len(counts), sweepWorkers(parallelism), func(i int) (MultiIntersectionPoint, error) {
		cfg := base
		cfg.Intersections = counts[i]
		res, err := MultiIntersection(cfg)
		if err != nil {
			return MultiIntersectionPoint{}, err
		}
		return MultiIntersectionPoint{
			Intersections:      len(res.PerIntersectionKWh),
			CorridorKWh:        res.CorridorKWh,
			PerIntersectionKWh: res.CorridorKWh / float64(len(res.PerIntersectionKWh)),
			CityEstimateMWh:    res.CityEstimateMWh,
			Vehicles:           res.Vehicles,
		}, nil
	})
}
