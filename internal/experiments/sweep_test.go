package experiments

import (
	"bytes"
	"math"
	"testing"

	"olevgrid/internal/units"
)

// TestRunAllWorkerCountIndependent: the full figure report must be
// byte-identical for any positive Parallelism — the round engine's
// schedules do not depend on its worker count, and sweep.Map's results
// do not depend on the pool size, so the only thing more workers buy
// is wall-clock.
func TestRunAllWorkerCountIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration")
	}
	var p1, p8 bytes.Buffer
	if err := RunAllWith(&p1, RunAllOptions{Quick: true, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if err := RunAllWith(&p8, RunAllOptions{Quick: true, Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p8.Bytes()) {
		a, b := p1.String(), p8.String()
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 60
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("reports diverge at byte %d:\n P=1: %q\n P=8: %q", i, a[lo:i+1], b[lo:i+1])
			}
		}
		t.Fatalf("reports differ in length: %d vs %d bytes", len(a), len(b))
	}
}

// TestPaymentSweepWarmMatchesCold: warm-chaining the congestion axis
// must reproduce the cold sweep's figures to solver tolerance — the
// potential game's destination does not depend on its starting point.
func TestPaymentSweepWarmMatchesCold(t *testing.T) {
	vel := units.MPH(60)
	cold, err := PaymentVsCongestion(vel, GameDefaults{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := PaymentVsCongestion(vel, GameDefaults{Parallelism: 1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(warm) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		c, w := cold[i], warm[i]
		if c.TargetCongestion != w.TargetCongestion {
			t.Fatalf("point %d: targets differ (%v vs %v)", i, c.TargetCongestion, w.TargetCongestion)
		}
		if d := math.Abs(c.RealizedCongestion - w.RealizedCongestion); d > 1e-4 {
			t.Errorf("x=%.1f: realized congestion diverges by %g", c.TargetCongestion, d)
		}
		if d := relDiff(c.NonlinearPerMWh, w.NonlinearPerMWh); d > 1e-3 {
			t.Errorf("x=%.1f: unit payment diverges by %g relative", c.TargetCongestion, d)
		}
	}
}

// TestHeterogeneityWarmMatchesCold covers the sweep whose warm seeds
// must survive per-vehicle cap changes (the projection clamp).
func TestHeterogeneityWarmMatchesCold(t *testing.T) {
	stds := []float64{0, 2, 4}
	cold, err := HeterogeneitySweep(stds, GameDefaults{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := HeterogeneitySweep(stds, GameDefaults{Parallelism: 1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if d := relDiff(cold[i].Welfare, warm[i].Welfare); d > 1e-3 {
			t.Errorf("std=%v: welfare diverges by %g relative", stds[i], d)
		}
		if d := relDiff(cold[i].TotalPowerKW, warm[i].TotalPowerKW); d > 1e-3 {
			t.Errorf("std=%v: total power diverges by %g relative", stds[i], d)
		}
	}
}

// TestMultiIntersectionSweepMatchesDirect: the count sweep must agree
// with direct corridor runs and be worker-count independent.
func TestMultiIntersectionSweepMatchesDirect(t *testing.T) {
	counts := []int{1, 2, 3}
	base := MultiIntersectionConfig{Seed: 7}
	seq, err := MultiIntersectionSweep(counts, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MultiIntersectionSweep(counts, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		cfg := base
		cfg.Intersections = c
		direct, err := MultiIntersection(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seq[i].Intersections != c {
			t.Errorf("point %d reports %d intersections, want %d", i, seq[i].Intersections, c)
		}
		if seq[i].CorridorKWh != direct.CorridorKWh {
			t.Errorf("count %d: sweep corridor %v != direct %v", c, seq[i].CorridorKWh, direct.CorridorKWh)
		}
		if seq[i] != par[i] {
			t.Errorf("count %d: sweep result depends on worker count: %+v vs %+v", c, seq[i], par[i])
		}
		if seq[i].CorridorKWh <= 0 || seq[i].CityEstimateMWh <= 0 {
			t.Errorf("count %d: corridor harvested nothing: %+v", c, seq[i])
		}
	}
}

// relDiff is |a−b| scaled by |a| (or absolute when a is tiny).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if math.Abs(a) > 1 {
		return d / math.Abs(a)
	}
	return d
}
