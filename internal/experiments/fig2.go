package experiments

import (
	"time"

	"olevgrid/internal/grid"
	"olevgrid/internal/stats"
)

// Fig2Result holds the four Fig. 2 series at hourly resolution.
type Fig2Result struct {
	// IntegratedLoad and ForecastLoad are Fig. 2(a), MW.
	IntegratedLoad *stats.Series
	ForecastLoad   *stats.Series
	// Deficiency is Fig. 2(b), MW.
	Deficiency *stats.Series
	// LBMP is Fig. 2(c), $/MWh.
	LBMP *stats.Series
	// Ancillary prices are Fig. 2(d), $/MW.
	TenMinSync         *stats.Series
	RegulationCapacity *stats.Series
	RegulationMovement *stats.Series
	// Scalars the paper quotes in the text.
	MinLoadMW       float64
	PeakLoadMW      float64
	MaxDeficiencyMW float64
	MeanLBMP        float64
	MeanAncillary   float64
}

// Fig2 synthesizes the ISO day and extracts the paper's series.
func Fig2(cfg grid.Config) (*Fig2Result, error) {
	day, err := grid.NewDay(cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{
		IntegratedLoad:     stats.NewSeries("integrated-load-mw"),
		ForecastLoad:       stats.NewSeries("forecast-load-mw"),
		Deficiency:         stats.NewSeries("deficiency-mw"),
		LBMP:               stats.NewSeries("lbmp-per-mwh"),
		TenMinSync:         stats.NewSeries("10min-sync"),
		RegulationCapacity: stats.NewSeries("reg-capacity"),
		RegulationMovement: stats.NewSeries("reg-movement"),
		MinLoadMW:          day.MinLoadMW(),
		PeakLoadMW:         day.PeakLoadMW(),
		MaxDeficiencyMW:    day.MaxAbsDeficiencyMW(),
		MeanLBMP:           day.MeanLBMP(),
		MeanAncillary:      day.MeanAncillary(),
	}
	for h := 0; h < 24; h++ {
		t := time.Duration(h) * time.Hour
		res.IntegratedLoad.Add(float64(h), day.IntegratedLoadMW(t))
		res.ForecastLoad.Add(float64(h), day.ForecastLoadMW(t))
		res.Deficiency.Add(float64(h), day.DeficiencyMW(t))
		res.LBMP.Add(float64(h), day.LBMP(t))
		sync, regCap, regMove := day.Ancillary(t)
		res.TenMinSync.Add(float64(h), sync)
		res.RegulationCapacity.Add(float64(h), regCap)
		res.RegulationMovement.Add(float64(h), regMove)
	}
	return res, nil
}

// Tables renders the four figures.
func (r *Fig2Result) Tables() []Table {
	return []Table{
		seriesTable("Fig 2(a): actual and forecasted load (MW)", "hour", r.IntegratedLoad, r.ForecastLoad),
		seriesTable("Fig 2(b): power deficiency (MW)", "hour", r.Deficiency),
		seriesTable("Fig 2(c): location-based marginal price ($/MWh)", "hour", r.LBMP),
		seriesTable("Fig 2(d): ancillary service prices ($/MW)", "hour",
			r.TenMinSync, r.RegulationCapacity, r.RegulationMovement),
	}
}
