package experiments

import (
	"testing"
	"time"
)

func TestFactorSweepOrderings(t *testing.T) {
	res, err := FactorSweep(FactorSweepConfig{
		Seed:  1,
		Start: 17 * time.Hour,
		End:   18 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each factor is positively correlated with harvested energy, as
	// Section III argues.
	if !res.Coverage.IsNonDecreasing(1e-9) {
		t.Errorf("coverage sweep not increasing: %v", res.Coverage.Ys())
	}
	if !res.Participation.IsNonDecreasing(1e-9) {
		t.Errorf("participation sweep not increasing: %v", res.Participation.Ys())
	}
	if !res.Willingness.IsNonDecreasing(1e-9) {
		t.Errorf("willingness sweep not increasing: %v", res.Willingness.Ys())
	}
	if res.PlacementAtLightKWh <= res.PlacementMidBlockKWh {
		t.Errorf("placement ordering violated: %v vs %v",
			res.PlacementAtLightKWh, res.PlacementMidBlockKWh)
	}
	// Doubling coverage must help sublinearly at the stop line (the
	// queue has finite extent), but it must help.
	first, _ := res.Coverage.YAt(50)
	last, _ := res.Coverage.YAt(400)
	if last <= first {
		t.Error("8x coverage gained nothing")
	}
	if len(res.Tables()) != 4 {
		t.Error("expected four factor tables")
	}
}

func TestFactorSweepWillingnessCompoundsParticipation(t *testing.T) {
	res, err := FactorSweep(FactorSweepConfig{
		Seed:  2,
		Start: 17 * time.Hour,
		End:   17*time.Hour + 30*time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Willingness 1.0 at participation 0.5 should roughly match the
	// participation sweep's 0.5 point (same effective fraction).
	w100, _ := res.Willingness.YAt(1.0)
	p50, _ := res.Participation.YAt(0.5)
	if w100 != p50 {
		t.Errorf("willingness(1.0)@50%% = %v should equal participation(0.5) = %v", w100, p50)
	}
}
