package experiments

import (
	"fmt"

	"olevgrid/internal/core"
	"olevgrid/internal/meanfield"
	"olevgrid/internal/pricing"
	"olevgrid/internal/units"
)

// Regional mean-field study: the ROADMAP's metropolitan picture is
// many arterials, each an independent pricing game, coupled only by
// the upstream feeder. This harness builds one region per corridor of
// the MultiIntersectionSweep — the corridor's traffic sizes the
// region's fleet, its intersections size the roadway — and solves the
// whole metro through the aggregated tier's sharded path
// (meanfield.SolveSharded) with cross-shard capacity settlement.
// It is the scale regime the exact engine cannot reach: the corridor
// fleet counts multiply into tens of thousands of OLEVs, which the
// population games absorb at a fixed macro size per region.

// RegionalConfig drives the metropolitan sharding study.
type RegionalConfig struct {
	// CorridorIntersections lists one corridor length per region; zero
	// means {3, 5, 8}.
	CorridorIntersections []int
	// VehiclesPerCorridorVehicle scales a corridor's observed vehicle
	// count into the region's fleet size (a corridor hosts many
	// parallel arterials); zero means 20.
	VehicleScale int
	// FeederFraction caps the shared feeder at this fraction of the
	// summed regional usable capacity; zero means 0.8, negative means
	// uncoupled (no settlement).
	FeederFraction float64
	// Clusters is the per-region population budget; zero means
	// meanfield.DefaultClusters.
	Clusters int
	// Defaults carries the shared game parameters (β, section length,
	// seed, parallelism).
	Defaults GameDefaults
}

func (c *RegionalConfig) applyDefaults() {
	if len(c.CorridorIntersections) == 0 {
		c.CorridorIntersections = []int{3, 5, 8}
	}
	if c.VehicleScale == 0 {
		c.VehicleScale = 20
	}
	if c.FeederFraction == 0 {
		c.FeederFraction = 0.8
	}
	c.Defaults.apply()
}

// RegionalPoint is one region's settled outcome.
type RegionalPoint struct {
	Region        string
	Intersections int
	// Vehicles is the region's fleet size (corridor count × scale).
	Vehicles int
	// Clusters is the number of populations the fleet aggregated into.
	Clusters int
	// CorridorKWh is the corridor's harvested energy from the traffic
	// substrate — the physical demand signal.
	CorridorKWh float64
	// Welfare, TotalPowerKW and Converged describe the region's
	// aggregated game at settlement.
	Welfare      float64
	TotalPowerKW float64
	Converged    bool
	// EffectiveEta is the safety factor after feeder settlement.
	EffectiveEta float64
}

// RegionalResult is the settled metropolitan outcome.
type RegionalResult struct {
	Points []RegionalPoint
	// FeederCapKW is the shared feeder capacity the study settled
	// against (0 = uncoupled).
	FeederCapKW float64
	// TotalPowerKW, Welfare, SettleRounds and Settled mirror
	// meanfield.ShardedResult for the whole metro.
	TotalPowerKW float64
	Welfare      float64
	SettleRounds int
	Settled      bool
}

// Table renders the per-region outcomes.
func (r *RegionalResult) Table() Table {
	t := Table{
		Title:   "Regional mean-field sharding: per-region settlement",
		Columns: []string{"region", "intersections", "vehicles", "clusters", "welfare $/h", "power kW", "eff eta"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Region,
			fmt.Sprintf("%d", p.Intersections),
			fmt.Sprintf("%d", p.Vehicles),
			fmt.Sprintf("%d", p.Clusters),
			fmt.Sprintf("%.2f", p.Welfare),
			fmt.Sprintf("%.2f", p.TotalPowerKW),
			fmt.Sprintf("%.4f", p.EffectiveEta),
		})
	}
	return t
}

// RegionalMeanField runs the metropolitan sharding study.
func RegionalMeanField(cfg RegionalConfig) (*RegionalResult, error) {
	cfg.applyDefaults()
	d := cfg.Defaults

	// Physical demand per corridor: the traffic substrate decides how
	// many vehicles each region serves.
	base := MultiIntersectionConfig{Seed: d.Seed}
	points, err := MultiIntersectionSweep(cfg.CorridorIntersections, base, d.Parallelism)
	if err != nil {
		return nil, err
	}

	vel := units.KMH(50) // the corridor study's speed limit
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)
	eta := 0.9
	regions := make([]meanfield.Region, len(points))
	var usableSum float64
	for i, pt := range points {
		n := pt.Vehicles * cfg.VehicleScale
		if n < 1 {
			n = 1
		}
		_, players, err := pricing.BuildFleet(pricing.FleetConfig{
			N:        n,
			Velocity: vel,
			Seed:     d.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: region %d fleet: %w", i, err)
		}
		regions[i] = meanfield.Region{
			Name:           fmt.Sprintf("corridor-%02d", pt.Intersections),
			Players:        players,
			NumSections:    pt.Intersections,
			LineCapacityKW: lineCap,
			Eta:            eta,
			Clusters:       cfg.Clusters,
		}
		usableSum += eta * lineCap * float64(pt.Intersections)
	}

	var feederCap float64
	if cfg.FeederFraction > 0 {
		feederCap = cfg.FeederFraction * usableSum
	}
	sharded, err := meanfield.SolveSharded(meanfield.ShardedConfig{
		Regions: regions,
		CostFor: func(lineCapacityKW, eta float64) (core.CostFunction, error) {
			return pricing.Nonlinear{}.CostFunction(d.BetaPerMWh, lineCapacityKW, eta)
		},
		FeederCapKW: feederCap,
		Parallelism: d.Parallelism,
		// Randomized visit order: near-identical populations crowding
		// the same sections contract slowly round-robin; the paper's
		// randomly-chosen-OLEV dynamics break the symmetry.
		Order: core.OrderRandom,
		Seed:  d.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := &RegionalResult{
		FeederCapKW:  feederCap,
		TotalPowerKW: sharded.TotalPowerKW,
		Welfare:      sharded.Welfare,
		SettleRounds: sharded.SettleRounds,
		Settled:      sharded.Settled,
	}
	for i, rr := range sharded.Regions {
		out.Points = append(out.Points, RegionalPoint{
			Region:        rr.Name,
			Intersections: points[i].Intersections,
			Vehicles:      len(regions[i].Players),
			Clusters:      rr.Result.Clusters,
			CorridorKWh:   points[i].CorridorKWh,
			Welfare:       rr.Result.Welfare,
			TotalPowerKW:  rr.Result.TotalPowerKW,
			Converged:     rr.Result.Converged,
			EffectiveEta:  rr.EffectiveEta,
		})
	}
	return out, nil
}
