package experiments

import (
	"fmt"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/stats"
	"olevgrid/internal/trace"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
	"olevgrid/internal/wpt"
)

// FactorSweepConfig drives the Section III deployment-factor study:
// the paper names four factors governing harvestable energy —
// coverage, placement, participation, and willingness — and argues
// each is positively correlated with intersection time. This harness
// quantifies all four on the same simulated day.
type FactorSweepConfig struct {
	// RoadLength and SpeedLimit describe the arterial; zeros mean
	// 1 km at 50 km/h.
	RoadLength units.Distance
	SpeedLimit units.Speed
	// Counts is the demand profile; zero value means Flatlands.
	Counts trace.HourlyCounts
	// Window bounds the simulated time of day; zero End means a
	// three-hour PM-peak window (the full day costs ~8× more and has
	// the same ordering).
	Start, End time.Duration
	// Seed drives the traffic.
	Seed int64
}

func (c *FactorSweepConfig) applyDefaults() {
	if c.RoadLength == 0 {
		c.RoadLength = units.Meters(1000)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = units.KMH(50)
	}
	if c.Counts == (trace.HourlyCounts{}) {
		c.Counts = trace.FlatlandsAvenue()
	}
	if c.End == 0 {
		c.Start, c.End = 16*time.Hour, 19*time.Hour
	}
}

// FactorSweepResult holds one series per factor, each mapping the
// factor's value onto harvested energy (kWh).
type FactorSweepResult struct {
	// Coverage sweeps total section length (m) at fixed placement.
	Coverage *stats.Series
	// Participation sweeps the OLEV fraction at fixed coverage.
	Participation *stats.Series
	// Willingness sweeps the fraction of OLEVs accepting energy; it
	// compounds with participation, which the paper treats as a
	// separate factor.
	Willingness *stats.Series
	// PlacementAtLightKWh and PlacementMidBlockKWh compare the two
	// placements at fixed coverage and full participation.
	PlacementAtLightKWh  float64
	PlacementMidBlockKWh float64
}

// FactorSweep runs the four Section III sweeps.
func FactorSweep(cfg FactorSweepConfig) (*FactorSweepResult, error) {
	cfg.applyDefaults()
	res := &FactorSweepResult{
		Coverage:      stats.NewSeries("coverage-kwh"),
		Participation: stats.NewSeries("participation-kwh"),
		Willingness:   stats.NewSeries("willingness-kwh"),
	}

	// Coverage: 50..400 m of sections stacked at the stop line.
	for _, meters := range []float64{50, 100, 200, 400} {
		spec := wpt.MotivationSpec()
		spec.Length = units.Meters(meters)
		kwh, err := harvest(cfg, spec, wpt.PlacementAtTrafficLight, 1, 1)
		if err != nil {
			return nil, fmt.Errorf("coverage %vm: %w", meters, err)
		}
		res.Coverage.Add(meters, kwh)
	}

	// Participation: fraction of vehicles that are OLEVs.
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		kwh, err := harvest(cfg, wpt.MotivationSpec(), wpt.PlacementAtTrafficLight, frac, 1)
		if err != nil {
			return nil, fmt.Errorf("participation %v: %w", frac, err)
		}
		res.Participation.Add(frac, kwh)
	}

	// Willingness: of the OLEVs (50% participation), the fraction
	// willing to buy.
	for _, frac := range []float64{0.2, 0.5, 0.8, 1.0} {
		kwh, err := harvest(cfg, wpt.MotivationSpec(), wpt.PlacementAtTrafficLight, 0.5, frac)
		if err != nil {
			return nil, fmt.Errorf("willingness %v: %w", frac, err)
		}
		res.Willingness.Add(frac, kwh)
	}

	// Placement at fixed coverage.
	var err error
	if res.PlacementAtLightKWh, err = harvest(cfg, wpt.MotivationSpec(), wpt.PlacementAtTrafficLight, 1, 1); err != nil {
		return nil, err
	}
	if res.PlacementMidBlockKWh, err = harvest(cfg, wpt.MotivationSpec(), wpt.PlacementMidBlock, 1, 1); err != nil {
		return nil, err
	}
	return res, nil
}

// harvest runs one simulated window and returns harvested kWh under
// the given participation and willingness fractions.
func harvest(cfg FactorSweepConfig, spec wpt.SectionSpec, placement wpt.Placement, participation, willingness float64) (float64, error) {
	lane, err := wpt.PlaceOnRoad(cfg.RoadLength, spec, placement)
	if err != nil {
		return 0, err
	}
	plan := roadnet.DefaultSignalPlan()
	sim, err := traffic.NewSim(traffic.SimConfig{
		RoadLength: cfg.RoadLength,
		SpeedLimit: cfg.SpeedLimit,
		Signal:     &plan,
		Counts:     cfg.Counts,
		Seed:       cfg.Seed,
		Start:      cfg.Start,
		End:        cfg.End,
	})
	if err != nil {
		return 0, err
	}
	acc := wpt.NewAccumulator(lane)
	effective := participation * willingness
	if effective < 1 {
		acc.SetDrawPower(func(vehID string, s wpt.Section, vel units.Speed) units.Power {
			if hashUnit(vehID) >= effective {
				return 0
			}
			return defaultDraw(s, vel)
		})
	}
	sim.AddObserver(acc.Observe)
	sim.Run()
	return acc.Combined().TotalEnergy().KWh(), nil
}

// Tables renders the factor sweeps.
func (r *FactorSweepResult) Tables() []Table {
	placement := Table{
		Title:   "Placement factor (kWh over the window)",
		Columns: []string{"placement", "kWh"},
		Rows: [][]string{
			{"at-traffic-light", fmt.Sprintf("%.1f", r.PlacementAtLightKWh)},
			{"mid-block", fmt.Sprintf("%.1f", r.PlacementMidBlockKWh)},
		},
	}
	return []Table{
		seriesTable("Coverage factor (section meters vs kWh)", "meters", r.Coverage),
		seriesTable("Participation factor (OLEV fraction vs kWh)", "fraction", r.Participation),
		seriesTable("Willingness factor (willing fraction vs kWh)", "fraction", r.Willingness),
		placement,
	}
}
