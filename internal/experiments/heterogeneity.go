package experiments

import (
	"fmt"

	"olevgrid/internal/pricing"
	"olevgrid/internal/stats"
	"olevgrid/internal/units"
)

// HeterogeneityPoint is one velocity-dispersion condition.
type HeterogeneityPoint struct {
	// VelocityStdMPS is the fleet's speed dispersion.
	VelocityStdMPS float64
	// Welfare is the converged social welfare.
	Welfare float64
	// Fairness is Jain's index over per-OLEV allocations.
	Fairness float64
	// TotalPowerKW is the scheduled power.
	TotalPowerKW float64
}

// HeterogeneitySweep measures what speed dispersion does to the game
// under Eq. (3): faster vehicles couple more weakly to the line, so
// each carries a lower per-section draw cap. The result is a
// robustness finding the paper's homogeneous 60/80 mph runs bracket
// but never state: because a vehicle's own coupling budget
// P_line(vel_n) is the *same formula* as a section's shared capacity,
// the per-vehicle cap only binds when one OLEV would hog an entire
// section — so for realistic dispersion the equilibrium allocation
// stays near-equal and welfare is essentially flat. (The regime where
// the caps do bind — tiny budgets — is exercised directly by the core
// package's heterogeneous-cap game tests.)
func HeterogeneitySweep(stds []float64, d GameDefaults) ([]HeterogeneityPoint, error) {
	d.apply()
	const n, c = 30, 15
	vel := units.MPH(60)
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)

	var points []HeterogeneityPoint
	for _, std := range stds {
		cfg := pricing.FleetConfig{
			N:                  n,
			Velocity:           vel,
			SatisfactionWeight: 1,
			Seed:               d.Seed,
		}
		if std > 0 {
			cfg.VelocityStdMPS = std
			cfg.SectionLength = d.SectionLength
		}
		_, players, err := pricing.BuildFleet(cfg)
		if err != nil {
			return nil, err
		}
		out, err := pricing.Nonlinear{}.Run(pricing.Scenario{
			Players: players, NumSections: c, LineCapacityKW: lineCap,
			Eta: 0.9, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
			MaxUpdates: 400 * n, Parallelism: d.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: heterogeneity std %v: %w", std, err)
		}
		points = append(points, HeterogeneityPoint{
			VelocityStdMPS: std,
			Welfare:        out.Welfare,
			Fairness:       stats.JainIndex(out.PlayerTotalsKW),
			TotalPowerKW:   out.TotalPowerKW,
		})
	}
	return points, nil
}
