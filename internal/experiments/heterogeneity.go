package experiments

import (
	"fmt"

	"olevgrid/internal/pricing"
	"olevgrid/internal/stats"
	"olevgrid/internal/units"
)

// HeterogeneityPoint is one velocity-dispersion condition.
type HeterogeneityPoint struct {
	// VelocityStdMPS is the fleet's speed dispersion.
	VelocityStdMPS float64
	// Welfare is the converged social welfare.
	Welfare float64
	// Fairness is Jain's index over per-OLEV allocations.
	Fairness float64
	// TotalPowerKW is the scheduled power.
	TotalPowerKW float64
}

// HeterogeneitySweep measures what speed dispersion does to the game
// under Eq. (3): faster vehicles couple more weakly to the line, so
// each carries a lower per-section draw cap. The result is a
// robustness finding the paper's homogeneous 60/80 mph runs bracket
// but never state: because a vehicle's own coupling budget
// P_line(vel_n) is the *same formula* as a section's shared capacity,
// the per-vehicle cap only binds when one OLEV would hog an entire
// section — so for realistic dispersion the equilibrium allocation
// stays near-equal and welfare is essentially flat. (The regime where
// the caps do bind — tiny budgets — is exercised directly by the core
// package's heterogeneous-cap game tests.)
func HeterogeneitySweep(stds []float64, d GameDefaults) ([]HeterogeneityPoint, error) {
	d.apply()
	const n, c = 30, 15
	vel := units.MPH(60)
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)

	steps, err := chainOrMap(len(stds), d.WarmStart, sweepWorkers(d.Parallelism),
		func(i int, prev *sweepStep[HeterogeneityPoint]) (sweepStep[HeterogeneityPoint], error) {
			var zero sweepStep[HeterogeneityPoint]
			std := stds[i]
			cfg := pricing.FleetConfig{
				N:                  n,
				Velocity:           vel,
				SatisfactionWeight: 1,
				Seed:               d.Seed,
			}
			if std > 0 {
				cfg.VelocityStdMPS = std
				cfg.SectionLength = d.SectionLength
			}
			_, players, err := pricing.BuildFleet(cfg)
			if err != nil {
				return zero, err
			}
			scenario := pricing.Scenario{
				Players: players, NumSections: c, LineCapacityKW: lineCap,
				Eta: 0.9, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
				MaxUpdates: 400 * n, Parallelism: d.Parallelism,
			}
			if prev != nil {
				// Same fleet IDs, new per-vehicle caps: the projection's
				// clamp keeps the seed feasible for the new dispersion.
				seed, err := warmSeed(prev.schedule, prev.players, players, c)
				if err != nil {
					return zero, err
				}
				scenario.InitialSchedule = seed
			}
			out, err := pricing.Nonlinear{}.Run(scenario)
			if err != nil {
				return zero, fmt.Errorf("experiments: heterogeneity std %v: %w", std, err)
			}
			return sweepStep[HeterogeneityPoint]{
				value: HeterogeneityPoint{
					VelocityStdMPS: std,
					Welfare:        out.Welfare,
					Fairness:       stats.JainIndex(out.PlayerTotalsKW),
					TotalPowerKW:   out.TotalPowerKW,
				},
				schedule: out.Schedule,
				players:  players,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	points := make([]HeterogeneityPoint, len(steps))
	for i, s := range steps {
		points[i] = s.value
	}
	return points, nil
}
