package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveCSVs(t *testing.T) {
	dir := t.TempDir()
	tables := []Table{
		{Title: "Fig 5(a): payment vs congestion degree (60 mph)",
			Columns: []string{"x", "y"}, Rows: [][]string{{"1", "2"}}},
		{Title: "Fig 5(a): payment vs congestion degree (60 mph)", // duplicate title
			Columns: []string{"x", "y"}, Rows: [][]string{{"3", "4"}}},
	}
	paths, err := SaveCSVs(filepath.Join(dir, "out"), tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files", len(paths))
	}
	if paths[0] == paths[1] {
		t.Error("duplicate titles collided on one path")
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,y\n1,2\n") {
		t.Errorf("csv content %q", data)
	}
	base := filepath.Base(paths[0])
	if strings.ContainsAny(base, "():/ ") {
		t.Errorf("unsafe filename %q", base)
	}
}

func TestSlugify(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Fig 2(a): actual load (MW)", "fig-2-a-actual-load-mw"},
		{"---", ""},
		{"Already-clean", "already-clean"},
	}
	for _, tt := range tests {
		if got := slugify(tt.in); got != tt.want {
			t.Errorf("slugify(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
