package experiments

import (
	"bytes"
	"fmt"
	"io"

	"olevgrid/internal/grid"
	"olevgrid/internal/stats"
	"olevgrid/internal/sweep"
	"olevgrid/internal/units"
)

// RunAllOptions tunes a full figure regeneration.
type RunAllOptions struct {
	// Quick trades statistical smoothing (fewer convergence runs) for
	// speed; the shapes are unaffected.
	Quick bool
	// Parallelism routes every game through the round engine with that
	// many proposal workers AND sizes the sweep worker pool the figure
	// sections fan out over; zero keeps the asynchronous dynamics and
	// runs everything strictly sequentially, as the paper does.
	Parallelism int
	// WarmStart chains each figure's sweep axis, seeding every game
	// from its neighbor's equilibrium (see GameDefaults.WarmStart).
	// Figures change only to solver tolerance; round counts drop.
	WarmStart bool
}

// RunAll regenerates every figure and writes the rendered tables to w.
// quick trades statistical smoothing (fewer convergence runs) for
// speed; the shapes are unaffected.
func RunAll(w io.Writer, quick bool) error {
	return RunAllWith(w, RunAllOptions{Quick: quick})
}

// RunAllWith is RunAll with full options. Every figure section is an
// independent job writing to its own buffer; the jobs fan out over the
// sweep worker pool and the buffers concatenate in figure order. The
// report is byte-identical for any *positive* Parallelism (the round
// engine's schedules and the sweep pool's results are both
// worker-count independent); zero selects the paper's asynchronous
// dynamics, whose update path — and therefore whose trajectories —
// legitimately differs from the engine's.
func RunAllWith(w io.Writer, opts RunAllOptions) error {
	runs := 50
	if opts.Quick {
		runs = 5
	}
	d := GameDefaults{Parallelism: opts.Parallelism, WarmStart: opts.WarmStart}

	// Fig. 2 — the ISO day.
	runFig2 := func(w io.Writer) error {
		fig2, err := Fig2(grid.DefaultConfig())
		if err != nil {
			return fmt.Errorf("fig2: %w", err)
		}
		for _, t := range fig2.Tables() {
			if _, err := fmt.Fprintln(w, t); err != nil {
				return err
			}
		}
		_, err = fmt.Fprintf(w,
			"fig2 scalars: load [%.1f, %.1f] MW, max deficiency %.1f MW, mean LBMP $%.2f/MWh, mean ancillary $%.2f/MW\n\n",
			fig2.MinLoadMW, fig2.PeakLoadMW, fig2.MaxDeficiencyMW, fig2.MeanLBMP, fig2.MeanAncillary)
		return err
	}

	// Fig. 3 — the motivation traffic study.
	runFig3 := func(w io.Writer) error {
		fig3, err := Fig3(Fig3Config{Seed: 1})
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		for _, t := range fig3.Tables() {
			if _, err := fmt.Fprintln(w, t); err != nil {
				return err
			}
		}
		_, err = fmt.Fprintf(w,
			"fig3 totals: at-light %.1f h / %.1f kWh, mid-block %.1f h / %.1f kWh\n\n",
			fig3.AtLight.TotalIntersection.Hours(), fig3.AtLight.TotalEnergy.KWh(),
			fig3.MidBlock.TotalIntersection.Hours(), fig3.MidBlock.TotalEnergy.KWh())
		return err
	}

	// Figs. 5 and 6 — the pricing game at both velocities, one job per
	// panel.
	figNumFor := func(mph float64) int {
		if mph == 80 {
			return 6
		}
		return 5
	}
	runPayment := func(mph float64) func(io.Writer) error {
		return func(w io.Writer) error {
			figNum := figNumFor(mph)
			points, err := PaymentVsCongestion(units.MPH(mph), d)
			if err != nil {
				return fmt.Errorf("fig%da: %w", figNum, err)
			}
			title := fmt.Sprintf("Fig %d(a): payment vs congestion degree (%.0f mph)", figNum, mph)
			_, err = fmt.Fprintln(w, PaymentTable(title, points))
			return err
		}
	}
	runWelfare := func(mph float64) func(io.Writer) error {
		return func(w io.Writer) error {
			figNum := figNumFor(mph)
			welfare, err := WelfareVsSections(units.MPH(mph), []int{30, 40, 50}, d)
			if err != nil {
				return fmt.Errorf("fig%db: %w", figNum, err)
			}
			title := fmt.Sprintf("Fig %d(b): social welfare vs number of charging sections (%.0f mph)", figNum, mph)
			_, err = fmt.Fprintln(w, seriesTable(title, "sections", welfare...))
			return err
		}
	}
	runBalance := func(mph float64) func(io.Writer) error {
		return func(w io.Writer) error {
			figNum := figNumFor(mph)
			balance, err := LoadBalance(units.MPH(mph), d)
			if err != nil {
				return fmt.Errorf("fig%dc: %w", figNum, err)
			}
			title := fmt.Sprintf("Fig %d(c): total power per charging section (%.0f mph)", figNum, mph)
			if _, err := fmt.Fprintln(w, seriesTable(title, "section", balance.Nonlinear, balance.Linear)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w,
				"fig%dc scalars: nonlinear CV %.3f total %.0f kW | linear CV %.3f total %.0f kW\n\n",
				figNum, balance.NonlinearCV, balance.NonlinearTotalKW,
				balance.LinearCV, balance.LinearTotalKW)
			return err
		}
	}
	runConvergence := func(mph float64) func(io.Writer) error {
		return func(w io.Writer) error {
			figNum := figNumFor(mph)
			conv, err := Convergence(units.MPH(mph), []int{30, 40, 50}, runs, 150, d)
			if err != nil {
				return fmt.Errorf("fig%dd: %w", figNum, err)
			}
			title := fmt.Sprintf("Fig %d(d): congestion degree vs number of updates (%.0f mph, mean of %d runs)", figNum, mph, runs)
			if _, err := fmt.Fprintln(w, seriesTable(title, "update",
				downsample(conv.Trajectories[30], 10),
				downsample(conv.Trajectories[40], 10),
				downsample(conv.Trajectories[50], 10))); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w,
				"fig%dd settle updates: N=30 %.0f, N=40 %.0f, N=50 %.0f\n\n",
				figNum, conv.UpdatesToSettle[30], conv.UpdatesToSettle[40], conv.UpdatesToSettle[50])
			return err
		}
	}

	// Beyond the paper: the three-policy comparison.
	runComparison := func(w io.Writer) error {
		comparison, err := PolicyComparison(d)
		if err != nil {
			return fmt.Errorf("policy comparison: %w", err)
		}
		_, err = fmt.Fprintln(w, comparison)
		return err
	}

	jobs := []func(io.Writer) error{
		runFig2,
		runFig3,
		runPayment(60), runWelfare(60), runBalance(60), runConvergence(60),
		runPayment(80), runWelfare(80), runBalance(80), runConvergence(80),
		runComparison,
	}
	bufs, err := sweep.Map(len(jobs), sweepWorkers(opts.Parallelism), func(i int) (*bytes.Buffer, error) {
		var b bytes.Buffer
		if err := jobs[i](&b); err != nil {
			return nil, err
		}
		return &b, nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// downsample keeps every k-th point so long trajectories render as
// readable tables.
func downsample(s *stats.Series, k int) *stats.Series {
	if s == nil || k <= 1 {
		return s
	}
	out := stats.NewSeries(s.Name)
	for i, p := range s.Points {
		if i%k == 0 {
			out.Points = append(out.Points, p)
		}
	}
	return out
}
