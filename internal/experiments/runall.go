package experiments

import (
	"fmt"
	"io"

	"olevgrid/internal/grid"
	"olevgrid/internal/stats"
	"olevgrid/internal/units"
)

// RunAllOptions tunes a full figure regeneration.
type RunAllOptions struct {
	// Quick trades statistical smoothing (fewer convergence runs) for
	// speed; the shapes are unaffected.
	Quick bool
	// Parallelism routes every game through the round engine with that
	// many proposal workers; zero keeps the asynchronous dynamics.
	Parallelism int
}

// RunAll regenerates every figure and writes the rendered tables to w.
// quick trades statistical smoothing (fewer convergence runs) for
// speed; the shapes are unaffected.
func RunAll(w io.Writer, quick bool) error {
	return RunAllWith(w, RunAllOptions{Quick: quick})
}

// RunAllWith is RunAll with full options.
func RunAllWith(w io.Writer, opts RunAllOptions) error {
	runs := 50
	if opts.Quick {
		runs = 5
	}

	// Fig. 2 — the ISO day.
	fig2, err := Fig2(grid.DefaultConfig())
	if err != nil {
		return fmt.Errorf("fig2: %w", err)
	}
	for _, t := range fig2.Tables() {
		if _, err := fmt.Fprintln(w, t); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"fig2 scalars: load [%.1f, %.1f] MW, max deficiency %.1f MW, mean LBMP $%.2f/MWh, mean ancillary $%.2f/MW\n\n",
		fig2.MinLoadMW, fig2.PeakLoadMW, fig2.MaxDeficiencyMW, fig2.MeanLBMP, fig2.MeanAncillary); err != nil {
		return err
	}

	// Fig. 3 — the motivation traffic study.
	fig3, err := Fig3(Fig3Config{Seed: 1})
	if err != nil {
		return fmt.Errorf("fig3: %w", err)
	}
	for _, t := range fig3.Tables() {
		if _, err := fmt.Fprintln(w, t); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"fig3 totals: at-light %.1f h / %.1f kWh, mid-block %.1f h / %.1f kWh\n\n",
		fig3.AtLight.TotalIntersection.Hours(), fig3.AtLight.TotalEnergy.KWh(),
		fig3.MidBlock.TotalIntersection.Hours(), fig3.MidBlock.TotalEnergy.KWh()); err != nil {
		return err
	}

	// Figs. 5 and 6 — the pricing game at both velocities.
	for _, mph := range []float64{60, 80} {
		vel := units.MPH(mph)
		figNum := 5
		if mph == 80 {
			figNum = 6
		}
		d := GameDefaults{Parallelism: opts.Parallelism}

		points, err := PaymentVsCongestion(vel, d)
		if err != nil {
			return fmt.Errorf("fig%da: %w", figNum, err)
		}
		title := fmt.Sprintf("Fig %d(a): payment vs congestion degree (%.0f mph)", figNum, mph)
		if _, err := fmt.Fprintln(w, PaymentTable(title, points)); err != nil {
			return err
		}

		welfare, err := WelfareVsSections(vel, []int{30, 40, 50}, d)
		if err != nil {
			return fmt.Errorf("fig%db: %w", figNum, err)
		}
		title = fmt.Sprintf("Fig %d(b): social welfare vs number of charging sections (%.0f mph)", figNum, mph)
		if _, err := fmt.Fprintln(w, seriesTable(title, "sections", welfare...)); err != nil {
			return err
		}

		balance, err := LoadBalance(vel, d)
		if err != nil {
			return fmt.Errorf("fig%dc: %w", figNum, err)
		}
		title = fmt.Sprintf("Fig %d(c): total power per charging section (%.0f mph)", figNum, mph)
		if _, err := fmt.Fprintln(w, seriesTable(title, "section", balance.Nonlinear, balance.Linear)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"fig%dc scalars: nonlinear CV %.3f total %.0f kW | linear CV %.3f total %.0f kW\n\n",
			figNum, balance.NonlinearCV, balance.NonlinearTotalKW,
			balance.LinearCV, balance.LinearTotalKW); err != nil {
			return err
		}

		conv, err := Convergence(vel, []int{30, 40, 50}, runs, 150, d)
		if err != nil {
			return fmt.Errorf("fig%dd: %w", figNum, err)
		}
		title = fmt.Sprintf("Fig %d(d): congestion degree vs number of updates (%.0f mph, mean of %d runs)", figNum, mph, runs)
		if _, err := fmt.Fprintln(w, seriesTable(title, "update",
			downsample(conv.Trajectories[30], 10),
			downsample(conv.Trajectories[40], 10),
			downsample(conv.Trajectories[50], 10))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"fig%dd settle updates: N=30 %.0f, N=40 %.0f, N=50 %.0f\n\n",
			figNum, conv.UpdatesToSettle[30], conv.UpdatesToSettle[40], conv.UpdatesToSettle[50]); err != nil {
			return err
		}
	}

	// Beyond the paper: the three-policy comparison.
	comparison, err := PolicyComparison(GameDefaults{Parallelism: opts.Parallelism})
	if err != nil {
		return fmt.Errorf("policy comparison: %w", err)
	}
	if _, err := fmt.Fprintln(w, comparison); err != nil {
		return err
	}
	return nil
}

// downsample keeps every k-th point so long trajectories render as
// readable tables.
func downsample(s *stats.Series, k int) *stats.Series {
	if s == nil || k <= 1 {
		return s
	}
	out := stats.NewSeries(s.Name)
	for i, p := range s.Points {
		if i%k == 0 {
			out.Points = append(out.Points, p)
		}
	}
	return out
}
