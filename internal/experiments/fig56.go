package experiments

import (
	"fmt"
	"math"

	"olevgrid/internal/core"
	"olevgrid/internal/pricing"
	"olevgrid/internal/stats"
	"olevgrid/internal/sweep"
	"olevgrid/internal/units"
)

// GameDefaults collects the parameters the Fig. 5/6 games share. The
// zero value of each field selects the documented default.
type GameDefaults struct {
	// SectionLength feeds Eq. (1); default 15 m.
	SectionLength units.Distance
	// BetaPerMWh is β; default 20 $/MWh, a typical NYISO LBMP level
	// (grid.Day.MeanLBMP supplies a synthesized value if preferred).
	BetaPerMWh float64
	// Seed drives fleet draws and update order.
	Seed int64
	// Parallelism, when positive, runs every game through the
	// block-speculative round engine with that many proposal workers
	// (see pricing.Scenario.Parallelism), and fans independent sweep
	// points out over the same number of sweep workers. Zero keeps the
	// paper's asynchronous single-player dynamics, strictly sequential,
	// which the golden-file determinism tests pin.
	Parallelism int
	// WarmStart chains sweep axes: each grid point (the next target
	// congestion, the next section count, the next α or κ) starts from
	// the previous point's equilibrium projected onto the new
	// configuration (core.ProjectSchedule) instead of zero. The
	// potential game converges to the same optimum from any start, so
	// the figures are unchanged to solver tolerance while adjacent
	// near-identical games stop paying full convergence cost. Off by
	// default so the pinned goldens stay byte-identical.
	WarmStart bool
}

// sweepWorkers maps a GameDefaults/RunAllOptions parallelism knob to a
// sweep.Map worker count: zero (the paper's sequential dynamics) runs
// sweep points inline in index order, exactly the legacy behavior.
func sweepWorkers(p int) int {
	if p <= 0 {
		return 1
	}
	return p
}

// warmSeed projects a previous sweep point's equilibrium onto the next
// point's fleet and roadway, or returns nil (a cold start) when there
// is no previous equilibrium. Fleet IDs are stable per index
// (pricing.BuildFleet), so rows travel with the vehicle.
func warmSeed(prev *core.Schedule, prevPlayers, players []core.Player, numSections int) (*core.Schedule, error) {
	if prev == nil {
		return nil, nil
	}
	ids := make([]string, len(prevPlayers))
	for i, p := range prevPlayers {
		ids[i] = p.ID
	}
	return core.ProjectSchedule(prev, ids, players, numSections)
}

// sweepStep carries one sweep point's result together with the
// equilibrium it settled at, so the next point on a warm chain can seed
// from it.
type sweepStep[T any] struct {
	value    T
	schedule *core.Schedule
	players  []core.Player
}

// chainOrMap runs one job per sweep point: a warm sweep chains
// sequentially so each point can seed from its predecessor, a cold
// sweep fans out over the worker pool. sweep.Map is bit-for-bit
// deterministic for any worker count, so fanning out changes only
// wall-clock, never figures.
func chainOrMap[T any](n int, warm bool, workers int, job func(i int, prev *T) (T, error)) ([]T, error) {
	if warm {
		return sweep.Chain(n, job)
	}
	return sweep.Map(n, workers, func(i int) (T, error) { return job(i, nil) })
}

func (d *GameDefaults) apply() {
	if d.SectionLength == 0 {
		d.SectionLength = units.Meters(15)
	}
	if d.BetaPerMWh == 0 {
		d.BetaPerMWh = 20
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
}

// PaymentPoint is one x-position of Fig. 5(a)/6(a).
type PaymentPoint struct {
	TargetCongestion   float64
	RealizedCongestion float64
	NonlinearPerMWh    float64
	LinearPerMWh       float64
	TotalPaymentPerH   float64
}

// PaymentVsCongestion reproduces Fig. 5(a)/6(a): for each target
// congestion degree, a demand level whose interior equilibrium
// realizes it is derived (pricing.CongestionTargetWeight), the game is
// run to convergence, and the unit payment measured. The linear
// baseline's flat tariff is overlaid. The congestion axis is a sweep
// axis: cold runs fan the points out over the worker pool, warm runs
// chain them, seeding each game from its neighbor's equilibrium.
func PaymentVsCongestion(vel units.Speed, d GameDefaults) ([]PaymentPoint, error) {
	d.apply()
	const n, c = 50, 20
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)
	if lineCap <= 0 {
		return nil, fmt.Errorf("experiments: velocity %v yields no line capacity", vel)
	}
	linearFlat := d.BetaPerMWh * pricing.DefaultLinearBetaScale

	var xs []float64
	for x := 0.1; x < 0.95; x += 0.1 {
		xs = append(xs, x)
	}
	steps, err := chainOrMap(len(xs), d.WarmStart, sweepWorkers(d.Parallelism),
		func(i int, prev *sweepStep[PaymentPoint]) (sweepStep[PaymentPoint], error) {
			var zero sweepStep[PaymentPoint]
			x := xs[i]
			w, err := pricing.CongestionTargetWeight(pricing.Nonlinear{}, d.BetaPerMWh, lineCap, c, n, x)
			if err != nil {
				return zero, err
			}
			_, players, err := pricing.BuildFleet(pricing.FleetConfig{
				N: n, Velocity: vel, SatisfactionWeight: w, Seed: d.Seed,
			})
			if err != nil {
				return zero, err
			}
			scenario := pricing.Scenario{
				Players: players, NumSections: c, LineCapacityKW: lineCap,
				Eta: 1.0, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
				Parallelism: d.Parallelism,
			}
			if prev != nil {
				seed, err := warmSeed(prev.schedule, prev.players, players, c)
				if err != nil {
					return zero, err
				}
				scenario.InitialSchedule = seed
			}
			out, err := pricing.Nonlinear{}.Run(scenario)
			if err != nil {
				return zero, err
			}
			return sweepStep[PaymentPoint]{
				value: PaymentPoint{
					TargetCongestion:   math.Round(x*10) / 10,
					RealizedCongestion: out.CongestionDegree,
					NonlinearPerMWh:    out.UnitPaymentPerMWh,
					LinearPerMWh:       linearFlat,
					TotalPaymentPerH:   out.TotalPaymentPerHour,
				},
				schedule: out.Schedule,
				players:  players,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	points := make([]PaymentPoint, len(steps))
	for i, s := range steps {
		points[i] = s.value
	}
	return points, nil
}

// PaymentTable renders Fig. 5(a)/6(a).
func PaymentTable(title string, points []PaymentPoint) Table {
	t := Table{
		Title:   title,
		Columns: []string{"congestion", "nonlinear $/MWh", "linear $/MWh", "total $/h"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", p.TargetCongestion),
			fmt.Sprintf("%.2f", p.NonlinearPerMWh),
			fmt.Sprintf("%.2f", p.LinearPerMWh),
			fmt.Sprintf("%.3f", p.TotalPaymentPerH),
		})
	}
	return t
}

// WelfareVsSections reproduces Fig. 5(b)/6(b): converged social
// welfare as the number of charging sections sweeps 10..90, one series
// per fleet size. The fleet sizes are independent (fanned out over the
// worker pool); the section axis chains under WarmStart, each game
// seeded from the neighboring C's equilibrium spread onto the new
// roadway.
func WelfareVsSections(vel units.Speed, fleetSizes []int, d GameDefaults) ([]*stats.Series, error) {
	d.apply()
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)
	var cs []int
	for c := 10; c <= 90; c += 10 {
		cs = append(cs, c)
	}
	return sweep.Map(len(fleetSizes), sweepWorkers(d.Parallelism), func(fi int) (*stats.Series, error) {
		n := fleetSizes[fi]
		_, players, err := pricing.BuildFleet(pricing.FleetConfig{
			N: n, Velocity: vel, SatisfactionWeight: 1, Seed: d.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Inner axis stays sequential: the outer Map already fans out.
		steps, err := chainOrMap(len(cs), d.WarmStart, 1,
			func(ci int, prev *sweepStep[float64]) (sweepStep[float64], error) {
				var zero sweepStep[float64]
				c := cs[ci]
				scenario := pricing.Scenario{
					Players: players, NumSections: c, LineCapacityKW: lineCap,
					Eta: 0.9, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
					MaxUpdates: 400 * n, Parallelism: d.Parallelism,
				}
				if prev != nil {
					seed, err := warmSeed(prev.schedule, players, players, c)
					if err != nil {
						return zero, err
					}
					scenario.InitialSchedule = seed
				}
				out, err := pricing.Nonlinear{}.Run(scenario)
				if err != nil {
					return zero, err
				}
				return sweepStep[float64]{value: out.Welfare, schedule: out.Schedule, players: players}, nil
			})
		if err != nil {
			return nil, err
		}
		s := stats.NewSeries(fmt.Sprintf("N=%d", n))
		for i, st := range steps {
			s.Add(float64(cs[i]), st.value)
		}
		return s, nil
	})
}

// LoadBalanceResult holds the Fig. 5(c)/6(c) series and their scalar
// reduction.
type LoadBalanceResult struct {
	Nonlinear *stats.Series
	Linear    *stats.Series
	// CVs are the coefficients of variation across sections.
	NonlinearCV float64
	LinearCV    float64
	// Total scheduled power per policy.
	NonlinearTotalKW float64
	LinearTotalKW    float64
}

// LoadBalance reproduces Fig. 5(c)/6(c): the per-section power totals
// of both policies with N=50 OLEVs over C=100 sections. η = 0.65
// leaves the 60 mph game interior but lets the capacity bind at
// 80 mph, so the velocity contrast in total power is visible as in
// the paper.
func LoadBalance(vel units.Speed, d GameDefaults) (*LoadBalanceResult, error) {
	d.apply()
	const n, c, eta = 50, 100, 0.65
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)
	_, players, err := pricing.BuildFleet(pricing.FleetConfig{
		N: n, Velocity: vel, SatisfactionWeight: 2, Seed: d.Seed,
	})
	if err != nil {
		return nil, err
	}
	scenario := pricing.Scenario{
		Players: players, NumSections: c, LineCapacityKW: lineCap,
		Eta: eta, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
		MaxUpdates:  1000, // the paper runs 1000 best-response updates
		Parallelism: d.Parallelism,
	}

	// The two policies are independent games on the same scenario —
	// fan them out.
	outs, err := sweep.Map(2, sweepWorkers(d.Parallelism), func(i int) (pricing.Outcome, error) {
		if i == 0 {
			return pricing.Nonlinear{}.Run(scenario)
		}
		return pricing.Linear{}.Run(scenario)
	})
	if err != nil {
		return nil, err
	}
	nl, lin := outs[0], outs[1]
	res := &LoadBalanceResult{
		Nonlinear:        stats.NewSeries("nonlinear-kw"),
		Linear:           stats.NewSeries("linear-kw"),
		NonlinearCV:      nl.LoadImbalance(),
		LinearCV:         lin.LoadImbalance(),
		NonlinearTotalKW: nl.TotalPowerKW,
		LinearTotalKW:    lin.TotalPowerKW,
	}
	for i := 0; i < c; i++ {
		res.Nonlinear.Add(float64(i+1), nl.SectionTotalsKW[i])
		res.Linear.Add(float64(i+1), lin.SectionTotalsKW[i])
	}
	return res, nil
}

// ConvergencePoint is one averaged trajectory sample of Fig. 5(d)/6(d).
type ConvergenceResult struct {
	// Trajectories maps fleet size to the mean congestion degree after
	// each update, averaged over the configured number of runs.
	Trajectories map[int]*stats.Series
	// UpdatesToSettle maps fleet size to the mean number of updates
	// until the congestion degree stays within 2% of its final value.
	UpdatesToSettle map[int]float64
	// SettleCI attaches a 95% bootstrap confidence interval to each
	// UpdatesToSettle mean.
	SettleCI map[int]stats.CI
}

// Convergence reproduces Fig. 5(d)/6(d): the congestion-degree
// trajectory of the best-response iteration toward the η = 0.9
// target, averaged over runs (the paper averages 50).
func Convergence(vel units.Speed, fleetSizes []int, runs, maxUpdates int, d GameDefaults) (*ConvergenceResult, error) {
	d.apply()
	if runs < 1 {
		runs = 1
	}
	if maxUpdates < 1 {
		maxUpdates = 150
	}
	const c, eta = 12, 0.9
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)

	res := &ConvergenceResult{
		Trajectories:    make(map[int]*stats.Series, len(fleetSizes)),
		UpdatesToSettle: make(map[int]float64, len(fleetSizes)),
		SettleCI:        make(map[int]stats.CI, len(fleetSizes)),
	}
	// Each run is an independent cold trajectory — that is the thing
	// being measured, so warm-starting does not apply here; the runs fan
	// out over the worker pool and their means accumulate in index
	// order, keeping the float sums identical to the sequential loop.
	type convRun struct {
		hist   []float64
		final  float64
		settle float64
	}
	for _, n := range fleetSizes {
		rs, err := sweep.Map(runs, sweepWorkers(d.Parallelism), func(run int) (convRun, error) {
			seed := d.Seed + int64(run)*1001
			_, players, err := pricing.BuildFleet(pricing.FleetConfig{
				N: n, Velocity: vel, SatisfactionWeight: 1, Seed: seed,
			})
			if err != nil {
				return convRun{}, err
			}
			out, err := pricing.Nonlinear{}.Run(pricing.Scenario{
				Players: players, NumSections: c, LineCapacityKW: lineCap,
				Eta: eta, BetaPerMWh: d.BetaPerMWh, Seed: seed,
				MaxUpdates: maxUpdates, Parallelism: d.Parallelism,
			})
			if err != nil {
				return convRun{}, err
			}
			return convRun{
				hist:   out.CongestionHistory,
				final:  out.CongestionDegree,
				settle: float64(settleUpdate(out.CongestionHistory, out.CongestionDegree, 0.02)),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		mean := make([]float64, maxUpdates)
		settles := make([]float64, 0, runs)
		for _, r := range rs {
			for i := 0; i < maxUpdates; i++ {
				v := r.final
				if i < len(r.hist) {
					v = r.hist[i]
				}
				mean[i] += v
			}
			settles = append(settles, r.settle)
		}
		s := stats.NewSeries(fmt.Sprintf("N=%d", n))
		for i := range mean {
			s.Add(float64(i+1), mean[i]/float64(runs))
		}
		res.Trajectories[n] = s
		res.UpdatesToSettle[n] = stats.Mean(settles)
		ci, err := stats.BootstrapMeanCI(stats.NewRand(d.Seed+int64(n)), settles, 0.95, 1000)
		if err != nil {
			return nil, err
		}
		res.SettleCI[n] = ci
	}
	return res, nil
}

// settleUpdate returns the first update index after which the
// congestion trajectory stays within tol of its final value.
func settleUpdate(hist []float64, final, tol float64) int {
	settle := len(hist)
	for i := len(hist) - 1; i >= 0; i-- {
		if math.Abs(hist[i]-final) > tol {
			break
		}
		settle = i
	}
	return settle + 1
}

// BuildBetaFromLBMP converts the grid substrate's synthesized mean
// LBMP into the β used by the games; exposed so the examples can wire
// Fig. 2's output into Fig. 5's input the way the paper describes.
func BuildBetaFromLBMP(meanLBMP float64) (float64, error) {
	if meanLBMP <= 0 {
		return 0, fmt.Errorf("experiments: mean LBMP %v must be positive", meanLBMP)
	}
	return meanLBMP, nil
}

// Interface checks that the policies used above stay interchangeable.
var (
	_ pricing.Policy = pricing.Nonlinear{}
	_ pricing.Policy = pricing.Linear{}
)
