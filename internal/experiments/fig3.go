package experiments

import (
	"fmt"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/stats"
	"olevgrid/internal/trace"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
	"olevgrid/internal/wpt"
)

// Fig3Config parameterizes the Section III motivation study.
type Fig3Config struct {
	// RoadLength is the simulated arterial length; zero means 1 km.
	RoadLength units.Distance
	// SpeedLimit is the arterial speed limit; zero means 50 km/h.
	SpeedLimit units.Speed
	// Counts is the hourly demand; zero value means the embedded
	// Flatlands Avenue profile.
	Counts trace.HourlyCounts
	// Section is the charging-section spec; zero value means the
	// paper's 200 m / 100 kW section.
	Section wpt.SectionSpec
	// Participation is the fraction of vehicles equipped as OLEVs;
	// zero means 1 (the paper's "full participation").
	Participation float64
	// Seed drives the traffic randomness.
	Seed int64
	// Window bounds the simulated time of day; zero means a full day.
	Start, End time.Duration
}

func (c *Fig3Config) applyDefaults() {
	if c.RoadLength == 0 {
		c.RoadLength = units.Meters(1000)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = units.KMH(50)
	}
	if c.Counts == (trace.HourlyCounts{}) {
		c.Counts = trace.FlatlandsAvenue()
	}
	if c.Section == (wpt.SectionSpec{}) {
		c.Section = wpt.MotivationSpec()
	}
	if c.Participation == 0 {
		c.Participation = 1
	}
	if c.End == 0 {
		c.End = 24 * time.Hour
	}
}

// PlacementOutcome is one placement's day of accumulation.
type PlacementOutcome struct {
	Placement wpt.Placement
	// IntersectionMinutes[h] is total vehicle-minutes on the section
	// during hour h — the Fig. 3(b) series.
	IntersectionMinutes *stats.Series
	// EnergyKWh[h] is the energy transferred during hour h — the
	// Fig. 3(c) series.
	EnergyKWh *stats.Series
	// Totals over the day.
	TotalIntersection time.Duration
	TotalEnergy       units.Energy
	Vehicles          int
}

// Fig3Result compares the two placements.
type Fig3Result struct {
	AtLight  PlacementOutcome
	MidBlock PlacementOutcome
}

// Fig3 runs the motivation study: the same demand over the same road,
// once with the charging section at the stop line and once mid-block.
// Both placements watch ONE simulation: the traffic (same seed, same
// demand, same signal) is identical either way — only where the
// charging lane sits differs — so the two accumulators ride the same
// run as passive observers instead of paying for two simulations.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg.applyDefaults()
	if cfg.Participation < 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("experiments: participation %v outside [0, 1]", cfg.Participation)
	}
	placements := []wpt.Placement{wpt.PlacementAtTrafficLight, wpt.PlacementMidBlock}
	plan := roadnet.DefaultSignalPlan()
	sim, err := traffic.NewSim(traffic.SimConfig{
		RoadLength: cfg.RoadLength,
		SpeedLimit: cfg.SpeedLimit,
		Signal:     &plan,
		Counts:     cfg.Counts,
		Seed:       cfg.Seed,
		Start:      cfg.Start,
		End:        cfg.End,
	})
	if err != nil {
		return nil, err
	}
	accs := make([]*wpt.Accumulator, len(placements))
	lanes := make([]*wpt.Lane, len(placements))
	for i, placement := range placements {
		lane, err := wpt.PlaceOnRoad(cfg.RoadLength, cfg.Section, placement)
		if err != nil {
			return nil, err
		}
		acc := wpt.NewAccumulator(lane)
		if cfg.Participation < 1 {
			// Deterministic participation: hash the vehicle ID into [0,1).
			threshold := cfg.Participation
			acc.SetDrawPower(func(vehID string, s wpt.Section, vel units.Speed) units.Power {
				if hashUnit(vehID) >= threshold {
					return 0
				}
				return defaultDraw(s, vel)
			})
		}
		sim.AddObserver(acc.Observe)
		accs[i], lanes[i] = acc, lane
	}
	sim.Run()

	at := placementOutcome(placements[0], accs[0], lanes[0])
	mid := placementOutcome(placements[1], accs[1], lanes[1])
	return &Fig3Result{AtLight: *at, MidBlock: *mid}, nil
}

// placementOutcome reads one placement's accumulated day back out of
// its observer.
func placementOutcome(placement wpt.Placement, acc *wpt.Accumulator, lane *wpt.Lane) *PlacementOutcome {
	sectionID := lane.Sections()[0].ID
	rec := acc.Record(sectionID)
	out := &PlacementOutcome{
		Placement:           placement,
		IntersectionMinutes: stats.NewSeries(fmt.Sprintf("%s-minutes", placement)),
		EnergyKWh:           stats.NewSeries(fmt.Sprintf("%s-kwh", placement)),
		TotalIntersection:   rec.TotalTime(),
		TotalEnergy:         rec.TotalEnergy(),
		Vehicles:            rec.Vehicles,
	}
	for h := 0; h < 24; h++ {
		out.IntersectionMinutes.Add(float64(h), rec.TimeByHour[h].Minutes())
		out.EnergyKWh.Add(float64(h), rec.EnergyByHour[h].KWh())
	}
	return out
}

// defaultDraw mirrors the accumulator's built-in power rule for use by
// the participation filter.
func defaultDraw(s wpt.Section, vel units.Speed) units.Power {
	p := s.RatedPower
	if vel > 0 {
		if lc := s.LineCapacity(vel); lc < p {
			p = lc
		}
	}
	return p
}

// hashUnit maps a string to a stable value in [0, 1).
func hashUnit(s string) float64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return float64(h%1000000) / 1000000
}

// Tables renders Fig. 3(b) and 3(c).
func (r *Fig3Result) Tables() []Table {
	return []Table{
		seriesTable("Fig 3(b): intersection time (min/hour)", "hour",
			r.AtLight.IntersectionMinutes, r.MidBlock.IntersectionMinutes),
		seriesTable("Fig 3(c): power received (kWh/hour)", "hour",
			r.AtLight.EnergyKWh, r.MidBlock.EnergyKWh),
	}
}
