package experiments

// Golden-file determinism tests: the rendered experiment tables for a
// fixed seed are pinned byte-for-byte under testdata/. They guard two
// things at once — that the substrates and the game are deterministic
// functions of their seeds, and that refactors of the solvers (the
// parallel round engine in particular) do not silently shift the
// published figures. Parallelism is pinned to zero here: the goldens
// record the paper's asynchronous single-player dynamics, and the
// engine's own worker-count invariance is covered by the core
// differential suite. Regenerate with:
//
//	go test ./internal/experiments -run Golden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"olevgrid/internal/grid"
	"olevgrid/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s: first difference at line %d:\n got: %q\nwant: %q", name, i+1, g, w)
		}
	}
	t.Fatalf("%s: output differs from golden", name)
}

func TestGoldenFig2(t *testing.T) {
	res, err := Fig2(grid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range res.Tables() {
		sb.WriteString(tab.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "scalars: load [%.3f, %.3f] MW, max deficiency %.3f MW, mean LBMP %.4f, mean ancillary %.4f\n",
		res.MinLoadMW, res.PeakLoadMW, res.MaxDeficiencyMW, res.MeanLBMP, res.MeanAncillary)
	checkGolden(t, "fig2.golden", sb.String())
}

func TestGoldenFig3(t *testing.T) {
	res, err := Fig3(Fig3Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range res.Tables() {
		sb.WriteString(tab.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "scalars: at-light %.4f h / %.4f kWh, mid-block %.4f h / %.4f kWh\n",
		res.AtLight.TotalIntersection.Hours(), res.AtLight.TotalEnergy.KWh(),
		res.MidBlock.TotalIntersection.Hours(), res.MidBlock.TotalEnergy.KWh())
	checkGolden(t, "fig3.golden", sb.String())
}

func TestGoldenFig56LoadBalance(t *testing.T) {
	res, err := LoadBalance(units.MPH(60), GameDefaults{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(seriesTable("Fig 5(c): total power per charging section (60 mph)",
		"section", res.Nonlinear, res.Linear).String())
	fmt.Fprintf(&sb, "scalars: nonlinear CV %.6f total %.4f kW | linear CV %.6f total %.4f kW\n",
		res.NonlinearCV, res.NonlinearTotalKW, res.LinearCV, res.LinearTotalKW)
	checkGolden(t, "fig56_loadbalance.golden", sb.String())
}
