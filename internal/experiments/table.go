// Package experiments contains one harness per figure of the paper's
// evaluation. Each harness builds its workload, runs the relevant
// substrate or policy, and returns the same series the paper plots,
// renderable as aligned text tables or CSV. The bench targets in the
// repository root and cmd/wpt-experiments both drive these harnesses.
package experiments

import (
	"fmt"
	"strings"

	"olevgrid/internal/stats"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("# ")
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// seriesTable renders aligned x/y series sharing an x column.
func seriesTable(title, xLabel string, series ...*stats.Series) Table {
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	var rows [][]string
	if len(series) > 0 {
		for i, p := range series[0].Points {
			row := []string{fmt.Sprintf("%g", p.X)}
			for _, s := range series {
				if i < len(s.Points) {
					row = append(row, fmt.Sprintf("%.3f", s.Points[i].Y))
				} else {
					row = append(row, "")
				}
			}
			rows = append(rows, row)
		}
	}
	return Table{Title: title, Columns: cols, Rows: rows}
}
