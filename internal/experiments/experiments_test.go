package experiments

import (
	"strings"
	"testing"
	"time"

	"olevgrid/internal/grid"
	"olevgrid/internal/units"
)

func TestFig2Shapes(t *testing.T) {
	res, err := Fig2(grid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Calibration scalars within the NYISO ranges the paper quotes.
	if res.MinLoadMW < 4000 || res.PeakLoadMW > 6700 {
		t.Errorf("load range [%v, %v] off NYISO calibration", res.MinLoadMW, res.PeakLoadMW)
	}
	if res.MaxDeficiencyMW > 167.9 {
		t.Errorf("max deficiency %v exceeds the paper's 167.8", res.MaxDeficiencyMW)
	}
	for _, p := range res.LBMP.Points {
		if p.Y < 12.51 || p.Y > 244.05 {
			t.Errorf("LBMP %v outside [12.52, 244.04]", p.Y)
		}
	}
	if got := res.IntegratedLoad.Len(); got != 24 {
		t.Errorf("hourly series has %d points", got)
	}
	// Deficiency is integrated minus forecast at every hour.
	for i := range res.Deficiency.Points {
		want := res.IntegratedLoad.Points[i].Y - res.ForecastLoad.Points[i].Y
		if diff := res.Deficiency.Points[i].Y - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("hour %d deficiency inconsistent", i)
		}
	}
	if len(res.Tables()) != 4 {
		t.Error("Fig2 should render four tables")
	}
}

func TestFig3AtLightDominatesMidBlock(t *testing.T) {
	// The headline of the motivation study: placing the section at the
	// traffic light collects far more intersection time and energy
	// than mid-block, with the gap largest at peak hours.
	res, err := Fig3(Fig3Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.AtLight.TotalIntersection <= res.MidBlock.TotalIntersection {
		t.Errorf("at-light time %v not above mid-block %v",
			res.AtLight.TotalIntersection, res.MidBlock.TotalIntersection)
	}
	if res.AtLight.TotalEnergy <= res.MidBlock.TotalEnergy {
		t.Errorf("at-light energy %v not above mid-block %v",
			res.AtLight.TotalEnergy, res.MidBlock.TotalEnergy)
	}
	// Hourly dominance at the busy hours (allow quiet-hour noise).
	for h := 7; h <= 19; h++ {
		at, _ := res.AtLight.IntersectionMinutes.YAt(float64(h))
		mid, _ := res.MidBlock.IntersectionMinutes.YAt(float64(h))
		if at < mid {
			t.Errorf("hour %d: at-light %v min below mid-block %v min", h, at, mid)
		}
	}
	// Peak-hour intersection time far above overnight.
	peak, _ := res.AtLight.IntersectionMinutes.YAt(17)
	night, _ := res.AtLight.IntersectionMinutes.YAt(3)
	if peak < 3*night {
		t.Errorf("peak hour %v min not well above overnight %v min", peak, night)
	}
	if res.AtLight.Vehicles == 0 || res.MidBlock.Vehicles == 0 {
		t.Error("no vehicles touched the sections")
	}
	if len(res.Tables()) != 2 {
		t.Error("Fig3 should render two tables")
	}
}

func TestFig3ParticipationScalesEnergy(t *testing.T) {
	full, err := Fig3(Fig3Config{Seed: 1, Start: 8 * time.Hour, End: 10 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Fig3(Fig3Config{Seed: 1, Start: 8 * time.Hour, End: 10 * time.Hour, Participation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ratio := half.AtLight.TotalEnergy.KWh() / full.AtLight.TotalEnergy.KWh()
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("half participation captured %v of full energy, want ~0.5", ratio)
	}
	if _, err := Fig3(Fig3Config{Participation: 1.5}); err == nil {
		t.Error("participation > 1 accepted")
	}
}

func TestFig5aPaymentShapes(t *testing.T) {
	points, err := PaymentVsCongestion(units.MPH(60), GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("expected 9 sweep points, got %d", len(points))
	}
	var crossed bool
	for i, p := range points {
		if i > 0 && p.NonlinearPerMWh <= points[i-1].NonlinearPerMWh {
			t.Errorf("nonlinear payment not rising at x=%v", p.TargetCongestion)
		}
		if p.LinearPerMWh != points[0].LinearPerMWh {
			t.Error("linear tariff not flat")
		}
		if p.NonlinearPerMWh > p.LinearPerMWh {
			crossed = true
		}
		if diff := p.RealizedCongestion - p.TargetCongestion; diff > 0.05 || diff < -0.05 {
			t.Errorf("x=%v realized %v", p.TargetCongestion, p.RealizedCongestion)
		}
	}
	if !crossed {
		t.Error("nonlinear curve never crosses the flat tariff")
	}
	// Velocity contrast: total payment lower at 80 mph at the same
	// congestion degree (less power moves).
	points80, err := PaymentVsCongestion(units.MPH(80), GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points80[i].TotalPaymentPerH >= points[i].TotalPaymentPerH {
			t.Errorf("x=%v: 80mph total payment %v not below 60mph %v",
				points[i].TargetCongestion, points80[i].TotalPaymentPerH, points[i].TotalPaymentPerH)
		}
	}
}

func TestFig5bWelfareShapes(t *testing.T) {
	series, err := WelfareVsSections(units.MPH(60), []int{30, 50}, GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if !s.IsNonDecreasing(0.5) {
			t.Errorf("welfare series %s not increasing in sections: %v", s.Name, s.Ys())
		}
	}
	// More OLEVs, more welfare, at every section count.
	small, large := series[0], series[1]
	for i := range small.Points {
		if large.Points[i].Y <= small.Points[i].Y {
			t.Errorf("C=%v: N=50 welfare %v not above N=30 %v",
				small.Points[i].X, large.Points[i].Y, small.Points[i].Y)
		}
	}
}

func TestFig5cLoadBalanceShapes(t *testing.T) {
	res60, err := LoadBalance(units.MPH(60), GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if res60.NonlinearCV >= res60.LinearCV {
		t.Errorf("nonlinear CV %v not below linear CV %v", res60.NonlinearCV, res60.LinearCV)
	}
	if res60.NonlinearCV > 0.3 {
		t.Errorf("nonlinear CV %v too high — not balanced", res60.NonlinearCV)
	}
	if res60.Nonlinear.Len() != 100 || res60.Linear.Len() != 100 {
		t.Error("expected 100 section points")
	}
	// Velocity contrast: less total power at 80 mph.
	res80, err := LoadBalance(units.MPH(80), GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	if res80.NonlinearTotalKW >= res60.NonlinearTotalKW {
		t.Errorf("80mph total %v not below 60mph %v",
			res80.NonlinearTotalKW, res60.NonlinearTotalKW)
	}
}

func TestFig5dConvergenceShapes(t *testing.T) {
	res, err := Convergence(units.MPH(60), []int{30, 50}, 3, 120, GameDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{30, 50} {
		traj := res.Trajectories[n]
		if traj == nil || traj.Len() != 120 {
			t.Fatalf("N=%d trajectory missing or wrong length", n)
		}
		final := traj.Points[len(traj.Points)-1].Y
		if final < 0.85 || final > 1.0 {
			t.Errorf("N=%d final congestion %v, want near 0.9", n, final)
		}
		start := traj.Points[0].Y
		if start > 0.3 {
			t.Errorf("N=%d starts at %v, want near zero", n, start)
		}
		if res.UpdatesToSettle[n] <= 0 || res.UpdatesToSettle[n] > 120 {
			t.Errorf("N=%d settles at %v", n, res.UpdatesToSettle[n])
		}
		ci := res.SettleCI[n]
		if !ci.Contains(res.UpdatesToSettle[n]) {
			t.Errorf("N=%d CI %v does not contain its own mean", n, ci)
		}
		if ci.Upper < ci.Lower {
			t.Errorf("N=%d inverted CI %v", n, ci)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"x", "longer-column"},
		Rows:    [][]string{{"1", "2"}, {"100", "3.5"}},
	}
	text := tab.String()
	if !strings.Contains(text, "# demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "x,longer-column\n1,2\n") {
		t.Errorf("csv = %q", csv)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is a long-running integration pass")
	}
	var sb strings.Builder
	if err := RunAll(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"Fig 2(a)", "Fig 2(d)", "Fig 3(b)", "Fig 3(c)",
		"Fig 5(a)", "Fig 5(d)", "Fig 6(a)", "Fig 6(d)",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("RunAll output missing %q", marker)
		}
	}
}
