package experiments

import (
	"testing"
	"time"

	"olevgrid/internal/units"
)

func TestMultiIntersection(t *testing.T) {
	res, err := MultiIntersection(MultiIntersectionConfig{
		Seed:  1,
		Start: 17 * time.Hour,
		End:   18 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIntersectionKWh) != 3 {
		t.Fatalf("got %d intersections", len(res.PerIntersectionKWh))
	}
	var sum float64
	for i, kwh := range res.PerIntersectionKWh {
		if kwh <= 0 {
			t.Errorf("intersection %d harvested nothing", i)
		}
		sum += kwh
	}
	if sum != res.CorridorKWh {
		t.Errorf("corridor total %v != per-intersection sum %v", res.CorridorKWh, sum)
	}
	// The city extrapolation should land at grid scale — the paper's
	// point that aggregated WPT load moves the operator's demand.
	if res.CityEstimateMWh < 10 {
		t.Errorf("city estimate %v MWh is not grid-scale", res.CityEstimateMWh)
	}
	if res.Vehicles == 0 {
		t.Error("no charging vehicles observed")
	}
	// The first intersection sees the rawest arrival stream; everyone
	// queues there. Downstream intersections receive platooned flow
	// but must still harvest the same order of magnitude.
	first, last := res.PerIntersectionKWh[0], res.PerIntersectionKWh[2]
	if last < first/10 {
		t.Errorf("downstream intersection %v starved relative to first %v", last, first)
	}
}

func TestMultiIntersectionValidation(t *testing.T) {
	// A section longer than its block cannot be installed.
	cfg := MultiIntersectionConfig{
		BlockLength: units.Meters(100),
		Seed:        1,
		Start:       17 * time.Hour,
		End:         17*time.Hour + 10*time.Minute,
	}
	if _, err := MultiIntersection(cfg); err == nil {
		t.Error("200m section in a 100m block accepted")
	}
}

func TestMultiIntersectionExtrapolationScales(t *testing.T) {
	base := MultiIntersectionConfig{
		Seed:  1,
		Start: 17 * time.Hour,
		End:   17*time.Hour + 30*time.Minute,
	}
	small, err := MultiIntersection(base)
	if err != nil {
		t.Fatal(err)
	}
	base.ExtrapolateTo = 8742 // double the city
	big, err := MultiIntersection(base)
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.CityEstimateMWh / small.CityEstimateMWh
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubling intersections scaled estimate by %v, want 2", ratio)
	}
}
