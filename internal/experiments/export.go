package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// SaveCSVs writes each table to dir as <slug-of-title>.csv, creating
// the directory if needed, and returns the written paths in input
// order. Downstream plotting (gnuplot, pandas, spreadsheets) picks
// the files up directly.
func SaveCSVs(dir string, tables []Table) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: create %s: %w", dir, err)
	}
	paths := make([]string, 0, len(tables))
	seen := make(map[string]int)
	for _, table := range tables {
		name := slugify(table.Title)
		if name == "" {
			name = "table"
		}
		if n := seen[name]; n > 0 {
			name = fmt.Sprintf("%s-%d", name, n+1)
		}
		seen[slugify(table.Title)]++
		path := filepath.Join(dir, name+".csv")
		if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
			return paths, fmt.Errorf("experiments: write %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

var slugRe = regexp.MustCompile(`[^a-z0-9]+`)

// slugify turns a table title into a safe file stem.
func slugify(title string) string {
	s := strings.ToLower(title)
	s = slugRe.ReplaceAllString(s, "-")
	return strings.Trim(s, "-")
}
