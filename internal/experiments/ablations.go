package experiments

import (
	"fmt"

	"olevgrid/internal/pricing"
	"olevgrid/internal/stats"
	"olevgrid/internal/sweep"
	"olevgrid/internal/units"
)

// AblationAlphaSweep varies the pricing exponent's offset α and
// reports the unit payment at a fixed *light* congestion level
// (x = 0.1). α is the price floor knob: near-empty sections still
// charge ≈ β·α²/(α+1)², the grid's guaranteed margin, so the sweep
// rises with α — the design knob behind the paper's α = 0.875. (At
// mid congestion the marginal curves for different α nearly pinch,
// which is why the floor is where the knob shows.)
func AblationAlphaSweep(alphas []float64, d GameDefaults) (*stats.Series, error) {
	d.apply()
	const n, c, x = 40, 15, 0.1
	vel := units.MPH(60)
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)

	steps, err := chainOrMap(len(alphas), d.WarmStart, sweepWorkers(d.Parallelism),
		func(i int, prev *sweepStep[float64]) (sweepStep[float64], error) {
			var zero sweepStep[float64]
			alpha := alphas[i]
			policy := pricing.Nonlinear{Alpha: alpha}
			w, err := pricing.CongestionTargetWeight(policy, d.BetaPerMWh, lineCap, c, n, x)
			if err != nil {
				return zero, err
			}
			_, players, err := pricing.BuildFleet(pricing.FleetConfig{
				N: n, Velocity: vel, SatisfactionWeight: w, Seed: d.Seed,
			})
			if err != nil {
				return zero, err
			}
			scenario := pricing.Scenario{
				Players: players, NumSections: c, LineCapacityKW: lineCap,
				Eta: 1.0, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
				Parallelism: d.Parallelism,
			}
			if prev != nil {
				seed, err := warmSeed(prev.schedule, prev.players, players, c)
				if err != nil {
					return zero, err
				}
				scenario.InitialSchedule = seed
			}
			res, err := policy.Run(scenario)
			if err != nil {
				return zero, err
			}
			return sweepStep[float64]{value: res.UnitPaymentPerMWh, schedule: res.Schedule, players: players}, nil
		})
	if err != nil {
		return nil, err
	}
	out := stats.NewSeries("unit-payment-per-mwh")
	for i, s := range steps {
		out.Add(alphas[i], s.value)
	}
	return out, nil
}

// AblationKappaSweep varies the overload penalty stiffness κ/β and
// reports the equilibrium congestion overshoot past η and the updates
// spent — the conditioning trade-off behind the default 500×.
type KappaPoint struct {
	KappaFactor float64
	Overshoot   float64 // congestion − η
	Updates     int
	Converged   bool
}

// AblationKappaSweep runs a demand-saturated game per stiffness value.
func AblationKappaSweep(factors []float64, d GameDefaults) ([]KappaPoint, error) {
	d.apply()
	const n, c, eta = 30, 10, 0.9
	vel := units.MPH(60)
	lineCap := pricing.LineCapacityKW(d.SectionLength, vel)
	_, players, err := pricing.BuildFleet(pricing.FleetConfig{
		N: n, Velocity: vel, SatisfactionWeight: 2, Seed: d.Seed,
	})
	if err != nil {
		return nil, err
	}

	steps, err := chainOrMap(len(factors), d.WarmStart, sweepWorkers(d.Parallelism),
		func(i int, prev *sweepStep[KappaPoint]) (sweepStep[KappaPoint], error) {
			var zero sweepStep[KappaPoint]
			kf := factors[i]
			scenario := pricing.Scenario{
				Players: players, NumSections: c, LineCapacityKW: lineCap,
				Eta: eta, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
				MaxUpdates: 6000, Parallelism: d.Parallelism,
			}
			if prev != nil {
				seed, err := warmSeed(prev.schedule, players, players, c)
				if err != nil {
					return zero, err
				}
				scenario.InitialSchedule = seed
			}
			res, err := pricing.Nonlinear{OverloadKappaFactor: kf}.Run(scenario)
			if err != nil {
				return zero, err
			}
			return sweepStep[KappaPoint]{
				value: KappaPoint{
					KappaFactor: kf,
					Overshoot:   res.CongestionDegree - eta,
					Updates:     res.Updates,
					Converged:   res.Converged,
				},
				schedule: res.Schedule,
				players:  players,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	points := make([]KappaPoint, len(steps))
	for i, s := range steps {
		points[i] = s.value
	}
	return points, nil
}

// PolicyComparison runs all three policies on one scenario and
// renders the triple-column table the harness prints: the paper's
// welfare maximizer, the flat-tariff strawman, and the
// revenue-maximizing Stackelberg leader.
func PolicyComparison(d GameDefaults) (Table, error) {
	d.apply()
	const n, c, eta = 30, 25, 0.9
	vel := units.MPH(60)
	_, players, err := pricing.BuildFleet(pricing.FleetConfig{
		N: n, Velocity: vel, SatisfactionWeight: 1, Seed: d.Seed,
	})
	if err != nil {
		return Table{}, err
	}
	scenario := pricing.Scenario{
		Players: players, NumSections: c,
		LineCapacityKW: pricing.LineCapacityKW(d.SectionLength, vel),
		Eta:            eta, BetaPerMWh: d.BetaPerMWh, Seed: d.Seed,
		Parallelism: d.Parallelism,
	}

	table := Table{
		Title: "Policy comparison (N=30, C=25, η=0.9)",
		Columns: []string{
			"policy", "congestion", "power kW", "unit $/MWh", "welfare $/h", "CV", "fairness",
		},
	}
	policies := []pricing.Policy{
		pricing.Nonlinear{}, pricing.Linear{}, pricing.Stackelberg{},
	}
	outs, err := sweep.Map(len(policies), sweepWorkers(d.Parallelism), func(i int) (pricing.Outcome, error) {
		out, err := policies[i].Run(scenario)
		if err != nil {
			return pricing.Outcome{}, fmt.Errorf("experiments: %s: %w", policies[i].Name(), err)
		}
		return out, nil
	})
	if err != nil {
		return Table{}, err
	}
	for _, out := range outs {
		table.Rows = append(table.Rows, []string{
			out.Policy,
			fmt.Sprintf("%.3f", out.CongestionDegree),
			fmt.Sprintf("%.1f", out.TotalPowerKW),
			fmt.Sprintf("%.2f", out.UnitPaymentPerMWh),
			fmt.Sprintf("%.2f", out.Welfare),
			fmt.Sprintf("%.3f", out.LoadImbalance()),
			fmt.Sprintf("%.3f", stats.JainIndex(out.PlayerTotalsKW)),
		})
	}
	return table, nil
}
