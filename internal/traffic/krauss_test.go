package traffic

import (
	"math"
	"testing"
)

func TestDefaultDriverParamsValid(t *testing.T) {
	if err := DefaultDriverParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestDriverParamsValidate(t *testing.T) {
	base := DefaultDriverParams()
	tests := []struct {
		name   string
		mutate func(*DriverParams)
	}{
		{name: "zero accel", mutate: func(p *DriverParams) { p.Accel = 0 }},
		{name: "zero decel", mutate: func(p *DriverParams) { p.Decel = 0 }},
		{name: "zero tau", mutate: func(p *DriverParams) { p.Tau = 0 }},
		{name: "sigma above one", mutate: func(p *DriverParams) { p.Sigma = 1.5 }},
		{name: "negative sigma", mutate: func(p *DriverParams) { p.Sigma = -0.1 }},
		{name: "zero length", mutate: func(p *DriverParams) { p.Length = 0 }},
		{name: "negative gap", mutate: func(p *DriverParams) { p.MinGap = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestSafeSpeedProperties(t *testing.T) {
	p := DefaultDriverParams()

	// Behind a stopped leader with zero gap, the safe speed is zero.
	if got := p.SafeSpeed(0, 10, 0); got != 0 {
		t.Errorf("SafeSpeed(0,10,0) = %v, want 0", got)
	}
	// Matching the leader's speed at the equilibrium gap g = vL·τ.
	vL := 15.0
	if got := p.SafeSpeed(vL, vL, vL*p.Tau.Seconds()); math.Abs(got-vL) > 1e-9 {
		t.Errorf("SafeSpeed at equilibrium gap = %v, want %v", got, vL)
	}
	// Larger gaps permit higher speeds.
	if p.SafeSpeed(10, 10, 50) <= p.SafeSpeed(10, 10, 20) {
		t.Error("safe speed not increasing in gap")
	}
	// Faster leaders permit higher speeds at the same gap.
	if p.SafeSpeed(20, 10, 30) <= p.SafeSpeed(5, 10, 30) {
		t.Error("safe speed not increasing in leader speed")
	}
	// Never negative even with a huge negative effective gap.
	if got := p.SafeSpeed(0, 30, -10); got != 0 {
		t.Errorf("SafeSpeed with negative gap = %v", got)
	}
}

func TestNextSpeedProperties(t *testing.T) {
	p := DefaultDriverParams()
	const dt = 0.5

	// Free road, no dawdling: accelerate by a·dt.
	got := p.NextSpeed(10, 100, 1e9, 30, dt, 0)
	if want := 10 + p.Accel*dt; math.Abs(got-want) > 1e-9 {
		t.Errorf("free acceleration = %v, want %v", got, want)
	}
	// Speed limit binds.
	got = p.NextSpeed(29.9, 100, 1e9, 30, dt, 0)
	if got != 30 {
		t.Errorf("speed limit: %v, want 30", got)
	}
	// Full dawdling slows relative to none.
	fast := p.NextSpeed(10, 100, 1e9, 30, dt, 0)
	slow := p.NextSpeed(10, 100, 1e9, 30, dt, 0.999)
	if slow >= fast {
		t.Error("dawdling did not slow the vehicle")
	}
	// Braking bounded by b·dt.
	got = p.NextSpeed(20, 0, 0, 30, dt, 0)
	if floor := 20 - p.Decel*dt; got < floor-1e-9 {
		t.Errorf("braking %v exceeds b·dt floor %v", got, floor)
	}
	// Never negative.
	if got := p.NextSpeed(0.1, 0, 0, 30, dt, 0.99); got < 0 {
		t.Errorf("speed went negative: %v", got)
	}
}

func TestStoppingDistance(t *testing.T) {
	p := DefaultDriverParams()
	// v·τ + v²/(2b) at v = 9: 9·1 + 81/9 = 18.
	if got := p.StoppingDistance(9); math.Abs(got-18) > 1e-9 {
		t.Errorf("StoppingDistance(9) = %v, want 18", got)
	}
	if got := p.StoppingDistance(0); got != 0 {
		t.Errorf("StoppingDistance(0) = %v", got)
	}
}

func TestKraussCollisionFreedom(t *testing.T) {
	// Fundamental property: a follower driving at the Krauss safe
	// speed never hits a leader that brakes at full b.
	p := DefaultDriverParams()
	p.Sigma = 0 // deterministic
	const dt = 0.5

	leaderPos, leaderV := 50.0, 15.0
	followerPos, followerV := 0.0, 25.0
	for step := 0; step < 400; step++ {
		// Leader brakes hard to a stop.
		leaderV = math.Max(0, leaderV-p.Decel*dt)
		leaderPos += leaderV * dt

		gap := leaderPos - p.Length.Meters() - followerPos - p.MinGap.Meters()
		if gap < 0 {
			gap = 0
		}
		followerV = p.NextSpeed(followerV, leaderV, gap, 30, dt, 0)
		followerPos += followerV * dt

		if followerPos > leaderPos-p.Length.Meters()+1e-9 {
			t.Fatalf("collision at step %d: follower %v vs leader rear %v",
				step, followerPos, leaderPos-p.Length.Meters())
		}
	}
}
