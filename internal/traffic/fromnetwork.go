package traffic

import (
	"fmt"

	"olevgrid/internal/roadnet"
)

// CorridorFromRoute builds the segment list for a CorridorSim from a
// routed path through a road network: each edge becomes a segment,
// and a signalized destination node becomes the segment's stop-line
// signal. The route must be contiguous (each edge starting where the
// previous one ended), which roadnet.Network.Route guarantees.
func CorridorFromRoute(net *roadnet.Network, route []roadnet.EdgeID) ([]Segment, error) {
	if len(route) == 0 {
		return nil, fmt.Errorf("traffic: empty route")
	}
	segments := make([]Segment, 0, len(route))
	var prevTo roadnet.NodeID
	for i, eid := range route {
		edge, ok := net.Edge(eid)
		if !ok {
			return nil, fmt.Errorf("traffic: route references unknown edge %s", eid)
		}
		if i > 0 && edge.From != prevTo {
			return nil, fmt.Errorf("traffic: route breaks at edge %s: starts at %s, previous ended at %s",
				eid, edge.From, prevTo)
		}
		prevTo = edge.To

		seg := Segment{Length: edge.Length, SpeedLimit: edge.SpeedLimit}
		if node, ok := net.Node(edge.To); ok && node.Signal != nil {
			plan := *node.Signal
			seg.Signal = &plan
		}
		segments = append(segments, seg)
	}
	return segments, nil
}
