package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/stats"
	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

// Segment is one stretch of a corridor: a length, a speed limit, and
// an optional signal at its downstream end.
type Segment struct {
	Length     units.Distance
	SpeedLimit units.Speed
	// Signal controls the stop line at the segment's end; nil means
	// free-flowing junction.
	Signal *roadnet.SignalPlan
}

// CorridorConfig configures a multi-segment arterial — the
// several-intersections case of the motivation study ("If we consider
// some other intersections in NYC, then the aggregated power amount
// will be enough to increase the power demand of the grid operator").
type CorridorConfig struct {
	// Segments are traversed in order; at least one is required.
	Segments []Segment
	// Counts drives Poisson vehicle injection at the corridor start.
	Counts trace.HourlyCounts
	// Driver is the Krauss parameter set; zero value selects defaults.
	Driver DriverParams
	// Step is the integration step; zero means 500 ms.
	Step time.Duration
	// Start and End bound the simulated time of day; zero End means
	// 24 h.
	Start, End time.Duration
	// Seed drives arrivals and dawdling.
	Seed int64
}

// CorridorSim simulates a corridor as one continuous roadway with
// multiple signalized stop lines at the segment boundaries. Not safe
// for concurrent use.
type CorridorSim struct {
	cfg       CorridorConfig
	bounds    []units.Distance // cumulative segment ends
	total     units.Distance
	rng       *rand.Rand
	vehicles  []*Vehicle
	observers []Observer
	now       time.Duration
	spawned   int
	backlog   float64
	metrics   Metrics
	speedTime [24]float64
	presence  [24]float64
}

// NewCorridorSim validates the configuration and builds a simulator.
func NewCorridorSim(cfg CorridorConfig) (*CorridorSim, error) {
	if len(cfg.Segments) == 0 {
		return nil, fmt.Errorf("traffic: corridor needs at least one segment")
	}
	var bounds []units.Distance
	var total units.Distance
	for i, seg := range cfg.Segments {
		if seg.Length <= 0 {
			return nil, fmt.Errorf("traffic: segment %d length %v must be positive", i, seg.Length)
		}
		if seg.SpeedLimit <= 0 {
			return nil, fmt.Errorf("traffic: segment %d speed limit %v must be positive", i, seg.SpeedLimit)
		}
		if seg.Signal != nil {
			if err := seg.Signal.Validate(); err != nil {
				return nil, err
			}
		}
		total += seg.Length
		bounds = append(bounds, total)
	}
	if err := cfg.Counts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Driver == (DriverParams{}) {
		cfg.Driver = DefaultDriverParams()
	}
	if err := cfg.Driver.Validate(); err != nil {
		return nil, err
	}
	if cfg.Step == 0 {
		cfg.Step = 500 * time.Millisecond
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("traffic: step %v must be positive", cfg.Step)
	}
	if cfg.End == 0 {
		cfg.End = 24 * time.Hour
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("traffic: window [%v, %v) empty", cfg.Start, cfg.End)
	}
	return &CorridorSim{
		cfg:    cfg,
		bounds: bounds,
		total:  total,
		rng:    stats.NewRand(cfg.Seed),
		now:    cfg.Start,
	}, nil
}

// AddObserver registers a per-vehicle-step callback.
func (s *CorridorSim) AddObserver(o Observer) { s.observers = append(s.observers, o) }

// TotalLength returns the corridor length.
func (s *CorridorSim) TotalLength() units.Distance { return s.total }

// NumVehicles returns how many vehicles are on the corridor.
func (s *CorridorSim) NumVehicles() int { return len(s.vehicles) }

// segmentAt returns the index of the segment containing pos.
func (s *CorridorSim) segmentAt(pos units.Distance) int {
	for i, end := range s.bounds {
		if pos < end {
			return i
		}
	}
	return len(s.bounds) - 1
}

// Run steps the simulation to the configured end and returns metrics.
func (s *CorridorSim) Run() Metrics {
	for s.now < s.cfg.End {
		s.step()
	}
	for h := 0; h < 24; h++ {
		if s.presence[h] > 0 {
			s.metrics.MeanSpeedByHour[h] = s.speedTime[h] / s.presence[h]
		}
	}
	s.metrics.Spawned = s.spawned
	return s.metrics
}

func (s *CorridorSim) step() {
	dt := s.cfg.Step
	dtSec := dt.Seconds()
	hour := int(s.now.Hours()) % 24

	s.backlog += s.cfg.Counts.Rate(hour) * dtSec
	for attempts := int(s.backlog); attempts > 0; attempts-- {
		if !s.trySpawn() {
			break
		}
		s.backlog--
	}

	for i, v := range s.vehicles {
		segIdx := s.segmentAt(v.Pos)
		seg := s.cfg.Segments[segIdx]
		vCur := v.Speed.MPS()

		vL, gap := seg.SpeedLimit.MPS(), 1e9
		if i > 0 {
			lead := s.vehicles[i-1]
			vL = lead.Speed.MPS()
			gap = lead.Pos.Meters() - lead.Params.Length.Meters() -
				v.Pos.Meters() - v.Params.MinGap.Meters()
			if gap < 0 {
				gap = 0
			}
		}
		next := v.Params.NextSpeed(vCur, vL, gap, seg.SpeedLimit.MPS(), dtSec, s.rng.Float64())

		// The nearest signalized stop line at or ahead of the current
		// segment boundary constrains the vehicle.
		if stop, ok := s.nextRedStop(segIdx, v, vCur, dtSec); ok {
			g := stop - v.Pos.Meters() - v.Params.MinGap.Meters()
			if g < 0 {
				g = 0
			}
			if vStop := v.Params.SafeSpeed(0, vCur, g); vStop < next {
				next = vStop
			}
		}
		v.Speed = units.MPS(next)
	}

	queue := 0
	for _, v := range s.vehicles {
		v.Pos += units.Meters(v.Speed.MPS() * dtSec)
		for _, o := range s.observers {
			o(v.ID, v.Pos, v.Speed, s.now, dt)
		}
		s.speedTime[hour] += v.Speed.MPS() * dtSec
		s.presence[hour] += dtSec
		if v.Speed.MPS() < 0.1 {
			queue++
		}
	}
	if queue > s.metrics.MaxQueue {
		s.metrics.MaxQueue = queue
	}

	keep := s.vehicles[:0]
	for _, v := range s.vehicles {
		if v.Pos >= s.total {
			s.metrics.Completed++
			s.metrics.ThroughputByHour[hour]++
			s.metrics.TotalTravelTime += s.now - v.Entered
			continue
		}
		keep = append(keep, v)
	}
	s.vehicles = keep
	s.now += dt
}

// nextRedStop returns the position of the closest stop line ahead of
// the vehicle whose signal currently requires stopping.
func (s *CorridorSim) nextRedStop(segIdx int, v *Vehicle, vCur, dtSec float64) (float64, bool) {
	for i := segIdx; i < len(s.cfg.Segments); i++ {
		plan := s.cfg.Segments[i].Signal
		if plan == nil {
			continue
		}
		stopLine := s.bounds[i].Meters()
		distToLine := stopLine - v.Pos.Meters()
		if distToLine < 0 {
			continue
		}
		phase := plan.PhaseAt(s.now)
		mustStop := phase == roadnet.PhaseRed ||
			(phase == roadnet.PhaseYellow && distToLine > vCur*dtSec &&
				v.Params.StoppingDistance(vCur) < distToLine)
		if mustStop {
			return stopLine, true
		}
		// A green light ahead does not constrain; farther signals are
		// beyond the leader-following horizon this step.
		return 0, false
	}
	return 0, false
}

func (s *CorridorSim) trySpawn() bool {
	entry := s.cfg.Segments[0].SpeedLimit.MPS() * 0.8
	if n := len(s.vehicles); n > 0 {
		last := s.vehicles[n-1]
		gap := last.Pos.Meters() - last.Params.Length.Meters() - s.cfg.Driver.MinGap.Meters()
		if gap < s.cfg.Driver.Length.Meters() {
			return false
		}
		if safe := s.cfg.Driver.SafeSpeed(last.Speed.MPS(), entry, gap); safe < entry {
			entry = safe
		}
	}
	s.spawned++
	s.vehicles = append(s.vehicles, &Vehicle{
		ID:      fmt.Sprintf("cveh-%06d", s.spawned),
		Pos:     0,
		Speed:   units.MPS(entry),
		Params:  s.cfg.Driver,
		Entered: s.now,
	})
	return true
}
