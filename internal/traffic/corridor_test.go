package traffic

import (
	"testing"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

func corridorConfig(signals int) CorridorConfig {
	plan := roadnet.DefaultSignalPlan()
	segs := make([]Segment, 3)
	for i := range segs {
		segs[i] = Segment{Length: units.Meters(400), SpeedLimit: units.KMH(50)}
		if i < signals {
			p := plan
			p.Offset = time.Duration(i) * 45 * time.Second // anti-coordinated: every signal binds
			segs[i].Signal = &p
		}
	}
	return CorridorConfig{
		Segments: segs,
		Counts:   trace.FlatlandsAvenue(),
		Seed:     1,
		Start:    17 * time.Hour,
		End:      17*time.Hour + 30*time.Minute,
	}
}

func TestNewCorridorSimValidation(t *testing.T) {
	if _, err := NewCorridorSim(corridorConfig(2)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*CorridorConfig)
	}{
		{name: "no segments", mutate: func(c *CorridorConfig) { c.Segments = nil }},
		{name: "zero length", mutate: func(c *CorridorConfig) { c.Segments[1].Length = 0 }},
		{name: "zero speed", mutate: func(c *CorridorConfig) { c.Segments[0].SpeedLimit = 0 }},
		{name: "bad signal", mutate: func(c *CorridorConfig) { c.Segments[0].Signal = &roadnet.SignalPlan{} }},
		{name: "bad counts", mutate: func(c *CorridorConfig) { c.Counts[0] = -1 }},
		{name: "bad window", mutate: func(c *CorridorConfig) { c.End = c.Start }},
		{name: "bad driver", mutate: func(c *CorridorConfig) { c.Driver = DriverParams{Accel: -1} }},
		{name: "bad step", mutate: func(c *CorridorConfig) { c.Step = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := corridorConfig(2)
			tt.mutate(&cfg)
			if _, err := NewCorridorSim(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCorridorGeometry(t *testing.T) {
	sim, err := NewCorridorSim(corridorConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if sim.TotalLength() != units.Meters(1200) {
		t.Errorf("TotalLength = %v", sim.TotalLength())
	}
	if got := sim.segmentAt(units.Meters(0)); got != 0 {
		t.Errorf("segmentAt(0) = %d", got)
	}
	if got := sim.segmentAt(units.Meters(400)); got != 1 {
		t.Errorf("segmentAt(400) = %d", got)
	}
	if got := sim.segmentAt(units.Meters(1199)); got != 2 {
		t.Errorf("segmentAt(1199) = %d", got)
	}
	if got := sim.segmentAt(units.Meters(5000)); got != 2 {
		t.Errorf("segmentAt past end = %d", got)
	}
}

func TestCorridorFlowsAndCompletes(t *testing.T) {
	sim, err := NewCorridorSim(corridorConfig(0)) // no signals
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.Spawned == 0 || m.Completed == 0 {
		t.Fatalf("spawned %d completed %d", m.Spawned, m.Completed)
	}
	if m.Completed < m.Spawned/2 {
		t.Errorf("only %d of %d completed a free corridor", m.Completed, m.Spawned)
	}
}

func TestCorridorMoreSignalsMoreDelay(t *testing.T) {
	run := func(signals int) Metrics {
		sim, err := NewCorridorSim(corridorConfig(signals))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	free := run(0)
	one := run(1)
	three := run(3)
	if one.MeanSpeedByHour[17] >= free.MeanSpeedByHour[17] {
		t.Errorf("one signal (%v) not slower than free (%v)",
			one.MeanSpeedByHour[17], free.MeanSpeedByHour[17])
	}
	if three.MeanSpeedByHour[17] >= one.MeanSpeedByHour[17] {
		t.Errorf("three signals (%v) not slower than one (%v)",
			three.MeanSpeedByHour[17], one.MeanSpeedByHour[17])
	}
	if three.MaxQueue <= free.MaxQueue {
		t.Errorf("signals should queue: %d vs %d", three.MaxQueue, free.MaxQueue)
	}
	// Travel-time delay is the cleanest signal: free flow on 1200 m at
	// ~14 m/s is ~86 s; each signal adds dwell.
	if free.MeanTravelTime() <= 0 {
		t.Fatal("no travel time recorded")
	}
	if three.MeanTravelTime() <= one.MeanTravelTime() {
		t.Errorf("three signals mean travel %v not above one signal %v",
			three.MeanTravelTime(), one.MeanTravelTime())
	}
	if one.MeanTravelTime() <= free.MeanTravelTime() {
		t.Errorf("one signal mean travel %v not above free flow %v",
			one.MeanTravelTime(), free.MeanTravelTime())
	}
}

func TestCorridorNoCollisions(t *testing.T) {
	sim, err := NewCorridorSim(corridorConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sim.AddObserver(func(string, units.Distance, units.Speed, time.Duration, time.Duration) {
		prev := units.Distance(1 << 30)
		for _, v := range sim.vehicles {
			front := v.Pos
			if front > prev+units.Meters(1e-6) {
				t.Fatalf("ordering violated: %v ahead of %v", front, prev)
			}
			prev = v.Pos - v.Params.Length
		}
	})
	sim.Run()
}

func TestCorridorObserverFeedsAccumulators(t *testing.T) {
	sim, err := NewCorridorSim(corridorConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	sim.AddObserver(func(id string, pos units.Distance, vel units.Speed, now, dt time.Duration) {
		samples++
		if pos < 0 || vel < 0 {
			t.Fatalf("bad sample %v %v", pos, vel)
		}
	})
	sim.Run()
	if samples == 0 {
		t.Error("observer never called")
	}
}

func TestCorridorDeterminism(t *testing.T) {
	run := func() Metrics {
		sim, err := NewCorridorSim(corridorConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}
