package traffic

import (
	"time"

	"olevgrid/internal/units"
)

// FlowSample is one (density, flow, speed) observation of the
// fundamental diagram of traffic flow.
type FlowSample struct {
	// DensityVehPerKm is the average vehicle density over the slice.
	DensityVehPerKm float64
	// FlowVehPerHour is the downstream discharge rate over the slice.
	FlowVehPerHour float64
	// MeanSpeedMPS is the space-mean speed over the slice.
	MeanSpeedMPS float64
}

// MeasureFundamentalDiagram runs the simulation and samples the
// macroscopic state every sliceLen of simulated time — the standard
// validation that a car-following model produces a sane flow–density
// relation (flow rises with density on the free branch and is bounded
// by a finite capacity).
func MeasureFundamentalDiagram(cfg SimConfig, sliceLen time.Duration) ([]FlowSample, error) {
	if sliceLen <= 0 {
		sliceLen = 5 * time.Minute
	}
	sim, err := NewSim(cfg)
	if err != nil {
		return nil, err
	}
	roadKm := cfg.RoadLength.Meters() / 1000

	var samples []FlowSample
	var vehSeconds, speedSum float64
	var sliceStart time.Duration = cfg.Start
	lastCompleted := 0

	sim.AddObserver(func(_ string, _ units.Distance, vel units.Speed, now, dt time.Duration) {
		vehSeconds += dt.Seconds()
		speedSum += vel.MPS() * dt.Seconds()
	})
	// Step manually by running in slices: the Sim API runs to End, so
	// instead observe and cut slices on time passing.
	var pending []FlowSample
	sim.AddObserver(func(_ string, _ units.Distance, _ units.Speed, now, dt time.Duration) {
		if now-sliceStart < sliceLen {
			return
		}
		elapsed := (now - sliceStart).Seconds()
		completed := sim.metrics.Completed
		sample := FlowSample{
			DensityVehPerKm: vehSeconds / elapsed / roadKm,
			FlowVehPerHour:  float64(completed-lastCompleted) / elapsed * 3600,
		}
		if vehSeconds > 0 {
			sample.MeanSpeedMPS = speedSum / vehSeconds
		}
		pending = append(pending, sample)
		lastCompleted = completed
		vehSeconds, speedSum = 0, 0
		sliceStart = now
	})
	sim.Run()
	samples = pending
	return samples, nil
}
