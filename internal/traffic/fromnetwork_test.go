package traffic

import (
	"testing"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

func arterialNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	net := roadnet.NewNetwork()
	plan := roadnet.DefaultSignalPlan()
	nodes := []roadnet.Node{
		{ID: "w"},
		{ID: "x", Signal: &plan},
		{ID: "y"}, // unsignalized junction
		{ID: "z", Signal: &plan},
	}
	for _, n := range nodes {
		if err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	edges := []roadnet.Edge{
		{ID: "wx", From: "w", To: "x", Length: units.Meters(300), SpeedLimit: units.KMH(50)},
		{ID: "xy", From: "x", To: "y", Length: units.Meters(500), SpeedLimit: units.KMH(60)},
		{ID: "yz", From: "y", To: "z", Length: units.Meters(400), SpeedLimit: units.KMH(50)},
	}
	for _, e := range edges {
		if err := net.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestCorridorFromRoute(t *testing.T) {
	net := arterialNetwork(t)
	route, err := net.Route("w", "z")
	if err != nil {
		t.Fatal(err)
	}
	segments, err := CorridorFromRoute(net, route)
	if err != nil {
		t.Fatal(err)
	}
	if len(segments) != 3 {
		t.Fatalf("got %d segments", len(segments))
	}
	if segments[0].Signal == nil {
		t.Error("segment into signalized node x lost its signal")
	}
	if segments[1].Signal != nil {
		t.Error("segment into unsignalized node y gained a signal")
	}
	if segments[2].Signal == nil {
		t.Error("segment into signalized node z lost its signal")
	}
	if segments[1].Length != units.Meters(500) || segments[1].SpeedLimit != units.KMH(60) {
		t.Error("edge geometry not carried over")
	}

	// The built corridor actually simulates.
	sim, err := NewCorridorSim(CorridorConfig{
		Segments: segments,
		Counts:   trace.FlatlandsAvenue(),
		Seed:     1,
		Start:    17 * time.Hour,
		End:      17*time.Hour + 15*time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := sim.Run(); m.Spawned == 0 {
		t.Error("network-built corridor spawned nothing")
	}
}

func TestCorridorFromRouteSignalIsCopied(t *testing.T) {
	net := arterialNetwork(t)
	route, err := net.Route("w", "x")
	if err != nil {
		t.Fatal(err)
	}
	segments, err := CorridorFromRoute(net, route)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := net.Node("x")
	segments[0].Signal.Green = 1 * time.Second
	if node.Signal.Green == 1*time.Second {
		t.Error("corridor shares the network's signal plan storage")
	}
}

func TestCorridorFromRouteErrors(t *testing.T) {
	net := arterialNetwork(t)
	if _, err := CorridorFromRoute(net, nil); err == nil {
		t.Error("empty route accepted")
	}
	if _, err := CorridorFromRoute(net, []roadnet.EdgeID{"nope"}); err == nil {
		t.Error("unknown edge accepted")
	}
	// Discontiguous route: wx then yz skips x->y.
	if _, err := CorridorFromRoute(net, []roadnet.EdgeID{"wx", "yz"}); err == nil {
		t.Error("discontiguous route accepted")
	}
}
