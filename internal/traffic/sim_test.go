package traffic

import (
	"testing"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

func baseConfig() SimConfig {
	return SimConfig{
		RoadLength: units.Meters(1000),
		SpeedLimit: units.MPS(13.9), // ~50 km/h urban
		Counts:     trace.FlatlandsAvenue(),
		Seed:       1,
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(baseConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*SimConfig)
	}{
		{name: "zero road", mutate: func(c *SimConfig) { c.RoadLength = 0 }},
		{name: "zero speed", mutate: func(c *SimConfig) { c.SpeedLimit = 0 }},
		{name: "bad signal", mutate: func(c *SimConfig) { c.Signal = &roadnet.SignalPlan{} }},
		{name: "negative counts", mutate: func(c *SimConfig) { c.Counts[3] = -1 }},
		{name: "negative step", mutate: func(c *SimConfig) { c.Step = -time.Second }},
		{name: "empty window", mutate: func(c *SimConfig) { c.Start = 2 * time.Hour; c.End = time.Hour }},
		{name: "bad driver", mutate: func(c *SimConfig) { c.Driver = DriverParams{Accel: -1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := NewSim(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestFreeFlowThroughput(t *testing.T) {
	// One mid-morning hour with no signal: everything that spawns
	// should eventually clear, and spawn totals should track the
	// hourly count.
	cfg := baseConfig()
	cfg.Start = 10 * time.Hour
	cfg.End = 11 * time.Hour
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()

	want := trace.FlatlandsAvenue()[10]
	if m.Spawned < int(float64(want)*0.9) || m.Spawned > int(float64(want)*1.1) {
		t.Errorf("spawned %d, want ~%d", m.Spawned, want)
	}
	// Road holds ~72s of travel; nearly everything clears in an hour.
	if m.Completed < m.Spawned*9/10-20 {
		t.Errorf("completed %d of %d spawned", m.Completed, m.Spawned)
	}
	if m.MaxQueue > 5 {
		t.Errorf("free flow should not queue, MaxQueue = %d", m.MaxQueue)
	}
	if m.MeanSpeedByHour[10] < cfg.SpeedLimit.MPS()*0.5 {
		t.Errorf("mean speed %v too low for free flow", m.MeanSpeedByHour[10])
	}
}

func TestSignalCreatesQueues(t *testing.T) {
	plan := roadnet.DefaultSignalPlan()

	free := baseConfig()
	free.Start, free.End = 17*time.Hour, 18*time.Hour
	simFree, err := NewSim(free)
	if err != nil {
		t.Fatal(err)
	}
	mFree := simFree.Run()

	signalized := baseConfig()
	signalized.Start, signalized.End = 17*time.Hour, 18*time.Hour
	signalized.Signal = &plan
	simSig, err := NewSim(signalized)
	if err != nil {
		t.Fatal(err)
	}
	mSig := simSig.Run()

	if mSig.MaxQueue <= mFree.MaxQueue {
		t.Errorf("signal should queue vehicles: %d vs free %d", mSig.MaxQueue, mFree.MaxQueue)
	}
	if mSig.MeanSpeedByHour[17] >= mFree.MeanSpeedByHour[17] {
		t.Errorf("signal should slow traffic: %v vs free %v",
			mSig.MeanSpeedByHour[17], mFree.MeanSpeedByHour[17])
	}
	if mSig.Completed == 0 {
		t.Error("signalized road should still discharge vehicles")
	}
}

func TestNoVehicleEverCollides(t *testing.T) {
	plan := roadnet.DefaultSignalPlan()
	cfg := baseConfig()
	cfg.Start, cfg.End = 17*time.Hour, 17*time.Hour+30*time.Minute
	cfg.Signal = &plan
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.AddObserver(func(string, units.Distance, units.Speed, time.Duration, time.Duration) {
		vs := sim.Vehicles()
		for i := 1; i < len(vs); i++ {
			front := vs[i-1].Pos.Meters() - vs[i-1].Params.Length.Meters()
			if vs[i].Pos.Meters() > front+1e-6 {
				t.Fatalf("overlap at %v: follower %v ahead of leader rear %v",
					sim.Now(), vs[i].Pos, front)
			}
		}
	})
	sim.Run()
}

func TestVehiclesStayOnRoad(t *testing.T) {
	cfg := baseConfig()
	cfg.Start, cfg.End = 8*time.Hour, 8*time.Hour+10*time.Minute
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.AddObserver(func(id string, pos units.Distance, vel units.Speed, now, dt time.Duration) {
		if pos < 0 {
			t.Fatalf("vehicle %s at negative position %v", id, pos)
		}
		if vel < 0 {
			t.Fatalf("vehicle %s at negative speed %v", id, vel)
		}
	})
	sim.Run()
}

func TestRedLightHoldsVehicles(t *testing.T) {
	// All-red signal: nothing may cross the stop line.
	plan := roadnet.SignalPlan{Green: time.Millisecond, Yellow: 0, Red: time.Hour}
	cfg := baseConfig()
	cfg.Signal = &plan
	cfg.Start, cfg.End = 8*time.Hour, 8*time.Hour+15*time.Minute
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.Completed != 0 {
		t.Errorf("%d vehicles ran an hour-long red", m.Completed)
	}
	if m.MaxQueue == 0 {
		t.Error("expected a standing queue at the red")
	}
}

func TestHourlySpawnTracksCounts(t *testing.T) {
	// Over a quiet + busy pair of hours, spawn counts should track
	// the profile ratio.
	cfg := baseConfig()
	cfg.Start, cfg.End = 3*time.Hour, 4*time.Hour
	quiet, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mq := quiet.Run()

	cfg2 := baseConfig()
	cfg2.Start, cfg2.End = 17*time.Hour, 18*time.Hour
	busy, err := NewSim(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	mb := busy.Run()

	counts := trace.FlatlandsAvenue()
	wantRatio := float64(counts[17]) / float64(counts[3])
	gotRatio := float64(mb.Spawned) / float64(mq.Spawned)
	if gotRatio < wantRatio*0.7 || gotRatio > wantRatio*1.3 {
		t.Errorf("spawn ratio %v, want ~%v", gotRatio, wantRatio)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() Metrics {
		cfg := baseConfig()
		cfg.Start, cfg.End = 7*time.Hour, 8*time.Hour
		plan := roadnet.DefaultSignalPlan()
		cfg.Signal = &plan
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestVehiclesSnapshotIsCopy(t *testing.T) {
	cfg := baseConfig()
	cfg.Start, cfg.End = 8*time.Hour, 8*time.Hour+time.Minute
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	vs := sim.Vehicles()
	if len(vs) == 0 {
		t.Skip("no vehicles on road at snapshot")
	}
	before := sim.Vehicles()[0].Pos
	vs[0].Pos = units.Meters(-999)
	if sim.Vehicles()[0].Pos != before {
		t.Error("snapshot leaked internal state")
	}
}
