// Package traffic is the microscopic traffic simulator standing in
// for SUMO in the Section III motivation study. It implements the
// Krauss car-following model (SUMO's default), fixed-time signalized
// intersections, and Poisson vehicle injection driven by hourly
// traffic counts, and it streams per-vehicle positions to observers
// such as the wpt package's intersection-time accumulator.
package traffic

import (
	"fmt"
	"math"
	"time"

	"olevgrid/internal/units"
)

// DriverParams are the per-vehicle Krauss model parameters.
type DriverParams struct {
	// Accel is the maximum acceleration a, m/s².
	Accel float64
	// Decel is the comfortable deceleration b, m/s².
	Decel float64
	// Tau is the driver reaction time τ.
	Tau time.Duration
	// Sigma is the driver imperfection σ ∈ [0, 1].
	Sigma float64
	// Length is the vehicle length, bumper to bumper.
	Length units.Distance
	// MinGap is the standstill gap kept to the leader.
	MinGap units.Distance
}

// DefaultDriverParams returns SUMO's default passenger-car Krauss
// parameters: a = 2.6 m/s², b = 4.5 m/s², τ = 1 s, σ = 0.5, 5 m
// length, 2.5 m minimum gap.
func DefaultDriverParams() DriverParams {
	return DriverParams{
		Accel:  2.6,
		Decel:  4.5,
		Tau:    time.Second,
		Sigma:  0.5,
		Length: units.Meters(5),
		MinGap: units.Meters(2.5),
	}
}

// Validate reports whether the parameters are physical.
func (p DriverParams) Validate() error {
	switch {
	case p.Accel <= 0:
		return fmt.Errorf("traffic: accel %v must be positive", p.Accel)
	case p.Decel <= 0:
		return fmt.Errorf("traffic: decel %v must be positive", p.Decel)
	case p.Tau <= 0:
		return fmt.Errorf("traffic: tau %v must be positive", p.Tau)
	case p.Sigma < 0 || p.Sigma > 1:
		return fmt.Errorf("traffic: sigma %v outside [0, 1]", p.Sigma)
	case p.Length <= 0:
		return fmt.Errorf("traffic: length %v must be positive", p.Length)
	case p.MinGap < 0:
		return fmt.Errorf("traffic: min gap %v must be non-negative", p.MinGap)
	}
	return nil
}

// SafeSpeed returns the Krauss safe speed for a follower at speed vF
// behind a leader at speed vL with bumper-to-bumper gap g (already net
// of MinGap handling by the caller):
//
//	v_safe = vL + (g − vL·τ) / ((vL + vF)/(2b) + τ)
//
// clamped to be non-negative. This is the speed that lets the
// follower stop behind the leader even if the leader brakes at b.
func (p DriverParams) SafeSpeed(vL, vF, g float64) float64 {
	tau := p.Tau.Seconds()
	denominator := (vL+vF)/(2*p.Decel) + tau
	vSafe := vL + (g-vL*tau)/denominator
	if vSafe < 0 {
		return 0
	}
	return vSafe
}

// NextSpeed advances one follower one time step: accelerate toward
// vMax, bounded by the safe speed, then apply the σ "dawdling"
// perturbation drawn from rnd ∈ [0, 1).
func (p DriverParams) NextSpeed(v, vL, gap, vMax, dt float64, rnd float64) float64 {
	vDes := math.Min(vMax, v+p.Accel*dt)
	vDes = math.Min(vDes, p.SafeSpeed(vL, v, gap))
	vNext := vDes - p.Sigma*p.Accel*dt*rnd
	// A vehicle never brakes harder than b just from dawdling, and
	// never reverses.
	if floor := v - p.Decel*dt; vNext < floor {
		vNext = floor
	}
	if vNext < 0 {
		vNext = 0
	}
	return vNext
}

// StoppingDistance returns how far the vehicle travels when braking
// comfortably from speed v, including the reaction-time rollout.
func (p DriverParams) StoppingDistance(v float64) float64 {
	return v*p.Tau.Seconds() + v*v/(2*p.Decel)
}
