package traffic

import (
	"testing"
	"time"

	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

func TestFundamentalDiagram(t *testing.T) {
	// Ramp demand over four hours to sweep the density axis.
	var counts trace.HourlyCounts
	counts[0], counts[1], counts[2], counts[3] = 100, 400, 900, 1600

	samples, err := MeasureFundamentalDiagram(SimConfig{
		RoadLength: units.Meters(1000),
		SpeedLimit: units.MPS(13.9),
		Counts:     counts,
		Seed:       1,
		Start:      0,
		End:        4 * time.Hour,
	}, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 10 {
		t.Fatalf("only %d samples", len(samples))
	}

	// Physical sanity on every sample.
	const capacityBound = 2600 // veh/h: v/(len+gap+v·τ)·3600 ≈ 2340 plus margin
	for i, s := range samples {
		if s.DensityVehPerKm < 0 || s.FlowVehPerHour < 0 {
			t.Fatalf("sample %d negative: %+v", i, s)
		}
		if s.FlowVehPerHour > capacityBound {
			t.Errorf("sample %d flow %v exceeds the car-following capacity bound", i, s.FlowVehPerHour)
		}
		if s.MeanSpeedMPS > 13.9+0.1 {
			t.Errorf("sample %d speed %v above the limit", i, s.MeanSpeedMPS)
		}
	}

	// Free branch: the high-demand hour carries more flow at higher
	// density than the light hour.
	early := samples[1] // inside hour 0
	var late FlowSample
	for _, s := range samples {
		if s.DensityVehPerKm > late.DensityVehPerKm {
			late = s
		}
	}
	if late.DensityVehPerKm <= early.DensityVehPerKm {
		t.Fatalf("demand ramp did not raise density: %+v vs %+v", late, early)
	}
	if late.FlowVehPerHour <= early.FlowVehPerHour {
		t.Errorf("free-branch flow did not rise with density: %+v vs %+v", late, early)
	}
}

func TestFundamentalDiagramDefaults(t *testing.T) {
	samples, err := MeasureFundamentalDiagram(SimConfig{
		RoadLength: units.Meters(500),
		SpeedLimit: units.MPS(13.9),
		Counts:     trace.FlatlandsAvenue(),
		Seed:       1,
		Start:      8 * time.Hour,
		End:        9 * time.Hour,
	}, 0) // default slice
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples with default slice length")
	}
}
