package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/stats"
	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

// Observer receives one vehicle-position sample per vehicle per step.
// The wpt package's Accumulator.Observe satisfies this signature.
type Observer func(vehID string, pos units.Distance, vel units.Speed, now, dt time.Duration)

// Vehicle is one simulated vehicle's state.
type Vehicle struct {
	ID      string
	Pos     units.Distance // front-bumper offset from road start
	Speed   units.Speed
	Params  DriverParams
	Entered time.Duration
}

// SimConfig configures a single-approach simulation: one road segment
// whose downstream end is a (possibly signalized) stop line — the
// Flatlands Avenue setup of the motivation study.
type SimConfig struct {
	// RoadLength is the segment length.
	RoadLength units.Distance
	// SpeedLimit caps vehicle speeds.
	SpeedLimit units.Speed
	// Signal controls the stop line at the road's end; nil means
	// uncontrolled (vehicles flow through freely).
	Signal *roadnet.SignalPlan
	// Counts drives Poisson vehicle injection per hour of day.
	Counts trace.HourlyCounts
	// Driver is the Krauss parameter set; zero value selects defaults.
	Driver DriverParams
	// Step is the integration step; zero means 500 ms.
	Step time.Duration
	// Start and End bound the simulated time of day; zero End means
	// 24 h.
	Start time.Duration
	End   time.Duration
	// Seed drives arrivals and dawdling.
	Seed int64
}

// Metrics summarizes a run.
type Metrics struct {
	// Spawned counts vehicles injected.
	Spawned int
	// Completed counts vehicles that left the downstream end.
	Completed int
	// ThroughputByHour counts completions per hour of day.
	ThroughputByHour [24]int
	// MeanSpeedByHour is the time-weighted mean vehicle speed (m/s)
	// per hour of day, zero for hours with no vehicle presence.
	MeanSpeedByHour [24]float64
	// MaxQueue is the largest number of simultaneously stopped
	// vehicles.
	MaxQueue int
	// TotalTravelTime sums completed vehicles' corridor traversal
	// times; MeanTravelTime() derives the average delay metric.
	TotalTravelTime time.Duration
}

// MeanTravelTime returns the average traversal time of completed
// vehicles, or zero if none completed.
func (m Metrics) MeanTravelTime() time.Duration {
	if m.Completed == 0 {
		return 0
	}
	return m.TotalTravelTime / time.Duration(m.Completed)
}

// Sim is the simulation engine. Not safe for concurrent use.
type Sim struct {
	cfg       SimConfig
	rng       *rand.Rand
	vehicles  []*Vehicle // sorted front (largest Pos) first
	observers []Observer
	now       time.Duration
	spawned   int
	backlog   float64 // fractional pending arrivals

	speedTime [24]float64 // Σ speed·dt per hour
	presence  [24]float64 // Σ dt per hour (vehicle-seconds)
	metrics   Metrics
}

// NewSim validates the configuration and builds a simulator.
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.RoadLength <= 0 {
		return nil, fmt.Errorf("traffic: road length %v must be positive", cfg.RoadLength)
	}
	if cfg.SpeedLimit <= 0 {
		return nil, fmt.Errorf("traffic: speed limit %v must be positive", cfg.SpeedLimit)
	}
	if cfg.Signal != nil {
		if err := cfg.Signal.Validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Counts.Validate(); err != nil {
		return nil, err
	}
	if cfg.Driver == (DriverParams{}) {
		cfg.Driver = DefaultDriverParams()
	}
	if err := cfg.Driver.Validate(); err != nil {
		return nil, err
	}
	if cfg.Step == 0 {
		cfg.Step = 500 * time.Millisecond
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("traffic: step %v must be positive", cfg.Step)
	}
	if cfg.End == 0 {
		cfg.End = 24 * time.Hour
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("traffic: window [%v, %v) empty", cfg.Start, cfg.End)
	}
	return &Sim{
		cfg: cfg,
		rng: stats.NewRand(cfg.Seed),
		now: cfg.Start,
	}, nil
}

// AddObserver registers a per-vehicle-step callback.
func (s *Sim) AddObserver(o Observer) { s.observers = append(s.observers, o) }

// Now returns the current simulation time of day.
func (s *Sim) Now() time.Duration { return s.now }

// NumVehicles returns how many vehicles are currently on the road.
func (s *Sim) NumVehicles() int { return len(s.vehicles) }

// Vehicles returns a snapshot of current vehicle states, front first.
func (s *Sim) Vehicles() []Vehicle {
	out := make([]Vehicle, len(s.vehicles))
	for i, v := range s.vehicles {
		out[i] = *v
	}
	return out
}

// Run steps the simulation to the configured end and returns metrics.
func (s *Sim) Run() Metrics {
	for s.now < s.cfg.End {
		s.step()
	}
	for h := 0; h < 24; h++ {
		if s.presence[h] > 0 {
			s.metrics.MeanSpeedByHour[h] = s.speedTime[h] / s.presence[h]
		}
	}
	s.metrics.Spawned = s.spawned
	return s.metrics
}

// step advances one integration step.
func (s *Sim) step() {
	dt := s.cfg.Step
	dtSec := dt.Seconds()
	hour := int(s.now.Hours()) % 24

	// 1. Spawn arrivals. Fractional expectations accumulate in the
	// backlog so low rates still produce the right hourly totals; a
	// blocked entry keeps its arrival in the backlog for later steps.
	s.backlog += s.cfg.Counts.Rate(hour) * dtSec
	for attempts := int(s.backlog); attempts > 0; attempts-- {
		if !s.trySpawn() {
			break
		}
		s.backlog--
	}

	// 2. Update speeds front-to-back against leaders and the signal.
	stopLine := s.cfg.RoadLength.Meters()
	phase := roadnet.PhaseGreen
	if s.cfg.Signal != nil {
		phase = s.cfg.Signal.PhaseAt(s.now)
	}
	for i, v := range s.vehicles {
		vCur := v.Speed.MPS()
		// Leader constraint.
		vL, gap := s.cfg.SpeedLimit.MPS(), 1e9
		if i > 0 {
			lead := s.vehicles[i-1]
			vL = lead.Speed.MPS()
			gap = lead.Pos.Meters() - lead.Params.Length.Meters() -
				v.Pos.Meters() - v.Params.MinGap.Meters()
			if gap < 0 {
				gap = 0
			}
		}
		next := v.Params.NextSpeed(vCur, vL, gap, s.cfg.SpeedLimit.MPS(), dtSec, s.rng.Float64())

		// Signal constraint: red is a stationary wall at the stop
		// line; yellow stops vehicles that can comfortably brake.
		distToLine := stopLine - v.Pos.Meters()
		mustStop := phase == roadnet.PhaseRed ||
			(phase == roadnet.PhaseYellow && distToLine > vCur*dtSec &&
				v.Params.StoppingDistance(vCur) < distToLine)
		if mustStop && distToLine > 0 {
			g := distToLine - v.Params.MinGap.Meters()
			if g < 0 {
				g = 0
			}
			if vStop := v.Params.SafeSpeed(0, vCur, g); vStop < next {
				next = vStop
			}
		}
		v.Speed = units.MPS(next)
	}

	// 3. Move, observe, and collect per-hour presence stats.
	queue := 0
	for _, v := range s.vehicles {
		v.Pos += units.Meters(v.Speed.MPS() * dtSec)
		for _, o := range s.observers {
			o(v.ID, v.Pos, v.Speed, s.now, dt)
		}
		s.speedTime[hour] += v.Speed.MPS() * dtSec
		s.presence[hour] += dtSec
		if v.Speed.MPS() < 0.1 {
			queue++
		}
	}
	if queue > s.metrics.MaxQueue {
		s.metrics.MaxQueue = queue
	}

	// 4. Despawn vehicles past the stop line.
	keep := s.vehicles[:0]
	for _, v := range s.vehicles {
		if v.Pos.Meters() >= stopLine {
			s.metrics.Completed++
			s.metrics.ThroughputByHour[hour]++
			s.metrics.TotalTravelTime += s.now - v.Entered
			continue
		}
		keep = append(keep, v)
	}
	s.vehicles = keep

	s.now += dt
}

// trySpawn inserts a vehicle at the road start if there is room.
func (s *Sim) trySpawn() bool {
	entrySpeed := s.cfg.SpeedLimit.MPS() * 0.8
	if n := len(s.vehicles); n > 0 {
		last := s.vehicles[n-1]
		gap := last.Pos.Meters() - last.Params.Length.Meters() - s.cfg.Driver.MinGap.Meters()
		if gap < s.cfg.Driver.Length.Meters() {
			return false // entry blocked; arrival stays in the backlog
		}
		if safe := s.cfg.Driver.SafeSpeed(last.Speed.MPS(), entrySpeed, gap); safe < entrySpeed {
			entrySpeed = safe
		}
	}
	s.spawned++
	s.vehicles = append(s.vehicles, &Vehicle{
		ID:      fmt.Sprintf("veh-%06d", s.spawned),
		Pos:     0,
		Speed:   units.MPS(entrySpeed),
		Params:  s.cfg.Driver,
		Entered: s.now,
	})
	return true
}
