package roadnet

import (
	"testing"
	"time"

	"olevgrid/internal/units"
)

func TestSignalPlanPhases(t *testing.T) {
	p := DefaultSignalPlan() // 42g / 3y / 45r, 90s cycle
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Cycle(); got != 90*time.Second {
		t.Errorf("Cycle = %v, want 90s", got)
	}
	tests := []struct {
		at   time.Duration
		want Phase
	}{
		{0, PhaseGreen},
		{41 * time.Second, PhaseGreen},
		{42 * time.Second, PhaseYellow},
		{44 * time.Second, PhaseYellow},
		{45 * time.Second, PhaseRed},
		{89 * time.Second, PhaseRed},
		{90 * time.Second, PhaseGreen}, // wraps
		{135 * time.Second, PhaseRed},  // second cycle
		{-1 * time.Second, PhaseRed},   // negative wraps to end of cycle
	}
	for _, tt := range tests {
		if got := p.PhaseAt(tt.at); got != tt.want {
			t.Errorf("PhaseAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestSignalPlanOffset(t *testing.T) {
	p := DefaultSignalPlan()
	p.Offset = 45 * time.Second
	if got := p.PhaseAt(45 * time.Second); got != PhaseGreen {
		t.Errorf("offset cycle start = %v, want green", got)
	}
	if got := p.PhaseAt(0); got != PhaseRed {
		t.Errorf("pre-offset = %v, want red (wrapped)", got)
	}
}

func TestSignalPlanValidate(t *testing.T) {
	bad := []SignalPlan{
		{Green: 0, Red: 10 * time.Second},
		{Green: 10 * time.Second, Yellow: -time.Second},
		{Green: 10 * time.Second, Red: -time.Second},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %+v accepted", p)
		}
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseGreen.String() != "green" || PhaseYellow.String() != "yellow" || PhaseRed.String() != "red" {
		t.Error("phase strings")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase string")
	}
}

func TestEdgeValidate(t *testing.T) {
	valid := Edge{ID: "e1", From: "a", To: "b", Length: units.Meters(100), SpeedLimit: units.MPH(30)}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Edge)
	}{
		{name: "no id", mutate: func(e *Edge) { e.ID = "" }},
		{name: "no from", mutate: func(e *Edge) { e.From = "" }},
		{name: "self loop", mutate: func(e *Edge) { e.To = e.From }},
		{name: "zero length", mutate: func(e *Edge) { e.Length = 0 }},
		{name: "zero speed", mutate: func(e *Edge) { e.SpeedLimit = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := valid
			tt.mutate(&e)
			if err := e.Validate(); err == nil {
				t.Error("invalid edge accepted")
			}
		})
	}
}

func TestEdgeTravelTime(t *testing.T) {
	e := Edge{ID: "e", From: "a", To: "b", Length: units.Meters(200), SpeedLimit: units.MPS(10)}
	if got := e.TravelTime(); got != 20*time.Second {
		t.Errorf("TravelTime = %v", got)
	}
}

func buildDiamond(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	plan := DefaultSignalPlan()
	for _, node := range []Node{
		{ID: "a"}, {ID: "b", Signal: &plan}, {ID: "c"}, {ID: "d"},
	} {
		if err := n.AddNode(node); err != nil {
			t.Fatal(err)
		}
	}
	// a->b->d is short; a->c->d is long.
	edges := []Edge{
		{ID: "ab", From: "a", To: "b", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
		{ID: "bd", From: "b", To: "d", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
		{ID: "ac", From: "a", To: "c", Length: units.Meters(500), SpeedLimit: units.MPS(10)},
		{ID: "cd", From: "c", To: "d", Length: units.Meters(500), SpeedLimit: units.MPS(10)},
	}
	for _, e := range edges {
		if err := n.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestNetworkConstruction(t *testing.T) {
	n := buildDiamond(t)
	if n.NumNodes() != 4 || n.NumEdges() != 4 {
		t.Errorf("size = %d nodes, %d edges", n.NumNodes(), n.NumEdges())
	}
	if _, ok := n.Node("b"); !ok {
		t.Error("node b missing")
	}
	if _, ok := n.Edge("ab"); !ok {
		t.Error("edge ab missing")
	}
	if got := n.EdgesFrom("a"); len(got) != 2 || got[0] != "ab" || got[1] != "ac" {
		t.Errorf("EdgesFrom(a) = %v", got)
	}
}

func TestNetworkRejectsBadInput(t *testing.T) {
	n := NewNetwork()
	if err := n.AddNode(Node{}); err == nil {
		t.Error("empty node accepted")
	}
	badSignal := SignalPlan{}
	if err := n.AddNode(Node{ID: "x", Signal: &badSignal}); err == nil {
		t.Error("invalid signal accepted")
	}
	if err := n.AddNode(Node{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(Edge{ID: "e", From: "a", To: "zz", Length: 1, SpeedLimit: 1}); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := n.AddNode(Node{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	e := Edge{ID: "e", From: "a", To: "b", Length: 1, SpeedLimit: 1}
	if err := n.AddEdge(e); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(e); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestRoutePicksFasterPath(t *testing.T) {
	n := buildDiamond(t)
	route, err := n.Route("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != "ab" || route[1] != "bd" {
		t.Errorf("route = %v, want [ab bd]", route)
	}
}

func TestRouteEdgeCases(t *testing.T) {
	n := buildDiamond(t)
	if route, err := n.Route("a", "a"); err != nil || len(route) != 0 {
		t.Errorf("self route = %v, %v", route, err)
	}
	if _, err := n.Route("zz", "a"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := n.Route("a", "zz"); err == nil {
		t.Error("unknown destination accepted")
	}
	// d has no outgoing edges: no route d -> a.
	if _, err := n.Route("d", "a"); err == nil {
		t.Error("unreachable destination accepted")
	}
}
