package roadnet

import (
	"math"
	"testing"
	"time"

	"olevgrid/internal/units"
)

// chargingDiamond: a->b->d is the short plain route (200 m); a->c->d
// is a 1000 m detour whose second leg carries charging sections.
func chargingDiamond(t *testing.T) (*Network, EnergyGains) {
	t.Helper()
	n := NewNetwork()
	for _, node := range []Node{{ID: "a"}, {ID: "b"}, {ID: "c"}, {ID: "d"}} {
		if err := n.AddNode(node); err != nil {
			t.Fatal(err)
		}
	}
	edges := []Edge{
		{ID: "ab", From: "a", To: "b", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
		{ID: "bd", From: "b", To: "d", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
		{ID: "ac", From: "a", To: "c", Length: units.Meters(500), SpeedLimit: units.MPS(10)},
		{ID: "cd", From: "c", To: "d", Length: units.Meters(500), SpeedLimit: units.MPS(10)},
	}
	for _, e := range edges {
		if err := n.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return n, EnergyGains{"cd": units.KWh(2)}
}

func TestEnergyAwareRouteZeroTradeoffIsFastest(t *testing.T) {
	n, gains := chargingDiamond(t)
	route, stats, err := n.EnergyAwareRoute("a", "d", EnergyRouteConfig{
		ConsumptionPerKm: 0.2, Gains: gains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != "ab" || route[1] != "bd" {
		t.Errorf("route = %v, want fastest [ab bd]", route)
	}
	if stats.TravelTime != 20*time.Second {
		t.Errorf("travel time = %v", stats.TravelTime)
	}
	if stats.EnergyGained != 0 {
		t.Errorf("gained %v on the plain route", stats.EnergyGained)
	}
}

func TestEnergyAwareRouteTakesChargingDetour(t *testing.T) {
	n, gains := chargingDiamond(t)
	// The detour costs 80 extra seconds and 0.16 kWh extra draw but
	// gains 2 kWh; at 60 s/kWh the driver takes it.
	route, stats, err := n.EnergyAwareRoute("a", "d", EnergyRouteConfig{
		ConsumptionPerKm:      0.2,
		TradeoffSecondsPerKWh: 60,
		Gains:                 gains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != "ac" || route[1] != "cd" {
		t.Fatalf("route = %v, want charging detour [ac cd]", route)
	}
	if stats.EnergyGained != units.KWh(2) {
		t.Errorf("gained = %v, want 2 kWh", stats.EnergyGained)
	}
	if want := 0.2; math.Abs(stats.EnergyConsumed.KWh()-want) > 1e-9 {
		t.Errorf("consumed = %v, want %v kWh", stats.EnergyConsumed, want)
	}
	if net := stats.NetEnergy().KWh(); math.Abs(net-1.8) > 1e-9 {
		t.Errorf("net = %v, want 1.8 kWh", net)
	}
}

func TestEnergyAwareRouteLowValueSticksToFastest(t *testing.T) {
	n, gains := chargingDiamond(t)
	// At 10 s/kWh the 2 kWh gain is worth only 20 s — not worth the
	// 80 s detour.
	route, _, err := n.EnergyAwareRoute("a", "d", EnergyRouteConfig{
		ConsumptionPerKm:      0.2,
		TradeoffSecondsPerKWh: 10,
		Gains:                 gains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if route[0] != "ab" {
		t.Errorf("route = %v, want fastest", route)
	}
}

func TestEnergyAwareRouteHugeTradeoffStaysSane(t *testing.T) {
	// Even if a charging edge would "pay" the driver, the epsilon
	// floor keeps Dijkstra terminating with a simple path.
	n, gains := chargingDiamond(t)
	route, _, err := n.EnergyAwareRoute("a", "d", EnergyRouteConfig{
		ConsumptionPerKm:      0.2,
		TradeoffSecondsPerKWh: 1e6,
		Gains:                 gains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 {
		t.Errorf("route = %v, want a simple 2-edge path", route)
	}
}

func TestEnergyAwareRouteErrors(t *testing.T) {
	n, gains := chargingDiamond(t)
	if _, _, err := n.EnergyAwareRoute("zz", "d", EnergyRouteConfig{Gains: gains}); err == nil {
		t.Error("unknown source accepted")
	}
	if _, _, err := n.EnergyAwareRoute("a", "zz", EnergyRouteConfig{Gains: gains}); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, _, err := n.EnergyAwareRoute("d", "a", EnergyRouteConfig{Gains: gains}); err == nil {
		t.Error("unreachable destination accepted")
	}
	if _, _, err := n.EnergyAwareRoute("a", "d", EnergyRouteConfig{ConsumptionPerKm: -1}); err == nil {
		t.Error("negative consumption accepted")
	}
	if _, _, err := n.EnergyAwareRoute("a", "d", EnergyRouteConfig{TradeoffSecondsPerKWh: -1}); err == nil {
		t.Error("negative tradeoff accepted")
	}
	if route, stats, err := n.EnergyAwareRoute("a", "a", EnergyRouteConfig{}); err != nil || len(route) != 0 || stats.TravelTime != 0 {
		t.Error("self route should be empty")
	}
}
