package roadnet

import (
	"fmt"

	"olevgrid/internal/units"
)

// GridConfig describes a Manhattan-style grid network: Rows × Cols
// intersections joined by bidirectional streets, with signals at
// every interior intersection — the synthetic stand-in for the
// OpenStreetMap import the paper feeds SUMO.
type GridConfig struct {
	Rows, Cols int
	// BlockLength is the edge length between adjacent intersections.
	BlockLength units.Distance
	// SpeedLimit applies to every street.
	SpeedLimit units.Speed
	// Signal is the plan installed at interior intersections; nil
	// leaves the whole grid uncontrolled.
	Signal *SignalPlan
}

// GridNodeID returns the canonical node ID for grid position (r, c).
func GridNodeID(r, c int) NodeID {
	return NodeID(fmt.Sprintf("n%d-%d", r, c))
}

// NewGridNetwork builds the grid. Interior nodes (not on the boundary)
// carry the signal plan; edges run both directions along every row
// and column.
func NewGridNetwork(cfg GridConfig) (*Network, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.BlockLength <= 0 {
		return nil, fmt.Errorf("roadnet: block length %v must be positive", cfg.BlockLength)
	}
	if cfg.SpeedLimit <= 0 {
		return nil, fmt.Errorf("roadnet: speed limit %v must be positive", cfg.SpeedLimit)
	}
	if cfg.Signal != nil {
		if err := cfg.Signal.Validate(); err != nil {
			return nil, err
		}
	}

	net := NewNetwork()
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			node := Node{ID: GridNodeID(r, c)}
			if cfg.Signal != nil && r > 0 && r < cfg.Rows-1 && c > 0 && c < cfg.Cols-1 {
				plan := *cfg.Signal
				node.Signal = &plan
			}
			if err := net.AddNode(node); err != nil {
				return nil, err
			}
		}
	}
	addBoth := func(a, b NodeID) error {
		for _, pair := range [][2]NodeID{{a, b}, {b, a}} {
			e := Edge{
				ID:         EdgeID(fmt.Sprintf("%s->%s", pair[0], pair[1])),
				From:       pair[0],
				To:         pair[1],
				Length:     cfg.BlockLength,
				SpeedLimit: cfg.SpeedLimit,
			}
			if err := net.AddEdge(e); err != nil {
				return err
			}
		}
		return nil
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				if err := addBoth(GridNodeID(r, c), GridNodeID(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < cfg.Rows {
				if err := addBoth(GridNodeID(r, c), GridNodeID(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return net, nil
}
