package roadnet

import (
	"testing"

	"olevgrid/internal/units"
)

func gridCfg() GridConfig {
	plan := DefaultSignalPlan()
	return GridConfig{
		Rows: 4, Cols: 5,
		BlockLength: units.Meters(120),
		SpeedLimit:  units.KMH(40),
		Signal:      &plan,
	}
}

func TestNewGridNetworkShape(t *testing.T) {
	net, err := NewGridNetwork(gridCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := net.NumNodes(); got != 20 {
		t.Errorf("nodes = %d, want 20", got)
	}
	// Bidirectional edges: rows·(cols−1) + cols·(rows−1), doubled.
	want := 2 * (4*4 + 5*3)
	if got := net.NumEdges(); got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	// Interior nodes signalized, boundary not.
	if n, _ := net.Node(GridNodeID(1, 2)); n.Signal == nil {
		t.Error("interior node missing signal")
	}
	if n, _ := net.Node(GridNodeID(0, 0)); n.Signal != nil {
		t.Error("corner node has a signal")
	}
	if n, _ := net.Node(GridNodeID(3, 2)); n.Signal != nil {
		t.Error("boundary node has a signal")
	}
}

func TestGridNetworkRoutesAcross(t *testing.T) {
	net, err := NewGridNetwork(gridCfg())
	if err != nil {
		t.Fatal(err)
	}
	route, err := net.Route(GridNodeID(0, 0), GridNodeID(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Manhattan distance: 3 + 4 = 7 blocks.
	if len(route) != 7 {
		t.Errorf("route length %d, want 7", len(route))
	}
	// And back.
	back, err := net.Route(GridNodeID(3, 4), GridNodeID(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 7 {
		t.Errorf("return route length %d, want 7", len(back))
	}
}

func TestGridNetworkSignalPlansAreIndependent(t *testing.T) {
	net, err := NewGridNetwork(gridCfg())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := net.Node(GridNodeID(1, 1))
	b, _ := net.Node(GridNodeID(1, 2))
	a.Signal.Green = 1
	if b.Signal.Green == 1 {
		t.Error("grid nodes share one signal plan")
	}
}

func TestNewGridNetworkValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GridConfig)
	}{
		{name: "too small", mutate: func(c *GridConfig) { c.Rows = 1 }},
		{name: "zero block", mutate: func(c *GridConfig) { c.BlockLength = 0 }},
		{name: "zero speed", mutate: func(c *GridConfig) { c.SpeedLimit = 0 }},
		{name: "bad signal", mutate: func(c *GridConfig) { c.Signal = &SignalPlan{} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := gridCfg()
			tt.mutate(&cfg)
			if _, err := NewGridNetwork(cfg); err == nil {
				t.Error("invalid grid accepted")
			}
		})
	}
}
