// Package roadnet models the road network the traffic simulator runs
// on: nodes (intersections, optionally signalized), directed edges
// (road segments with length and speed limit), and simple routing.
// It is the stand-in for the OpenStreetMap network the paper imports
// into SUMO.
package roadnet

import (
	"fmt"
	"sort"
	"time"

	"olevgrid/internal/units"
)

// NodeID identifies an intersection.
type NodeID string

// EdgeID identifies a directed road segment.
type EdgeID string

// SignalPlan is a fixed-time traffic-signal program: green, then
// yellow, then red, repeating. Phase() answers where in the cycle a
// given wall-clock time falls.
type SignalPlan struct {
	Green  time.Duration
	Yellow time.Duration
	Red    time.Duration
	// Offset shifts the cycle start, for coordinating adjacent
	// signals.
	Offset time.Duration
}

// DefaultSignalPlan returns the 90-second urban cycle used by the
// motivation study: 42 s green, 3 s yellow, 45 s red.
func DefaultSignalPlan() SignalPlan {
	return SignalPlan{Green: 42 * time.Second, Yellow: 3 * time.Second, Red: 45 * time.Second}
}

// Validate reports whether the plan has a positive cycle with a
// positive green share.
func (p SignalPlan) Validate() error {
	if p.Green <= 0 {
		return fmt.Errorf("roadnet: green time %v must be positive", p.Green)
	}
	if p.Yellow < 0 || p.Red < 0 {
		return fmt.Errorf("roadnet: yellow %v and red %v must be non-negative", p.Yellow, p.Red)
	}
	return nil
}

// Cycle returns the total cycle length.
func (p SignalPlan) Cycle() time.Duration { return p.Green + p.Yellow + p.Red }

// Phase is a signal indication.
type Phase int

const (
	// PhaseGreen permits movement.
	PhaseGreen Phase = iota + 1
	// PhaseYellow warns of an imminent red; the simulator treats it as
	// stop-if-you-safely-can.
	PhaseYellow
	// PhaseRed forbids movement past the stop line.
	PhaseRed
)

func (p Phase) String() string {
	switch p {
	case PhaseGreen:
		return "green"
	case PhaseYellow:
		return "yellow"
	case PhaseRed:
		return "red"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PhaseAt returns the indication at time t.
func (p SignalPlan) PhaseAt(t time.Duration) Phase {
	cycle := p.Cycle()
	if cycle <= 0 {
		return PhaseGreen
	}
	into := (t - p.Offset) % cycle
	if into < 0 {
		into += cycle
	}
	switch {
	case into < p.Green:
		return PhaseGreen
	case into < p.Green+p.Yellow:
		return PhaseYellow
	default:
		return PhaseRed
	}
}

// Node is an intersection. A nil Signal means uncontrolled.
type Node struct {
	ID     NodeID
	Signal *SignalPlan
}

// Edge is a one-way road segment.
type Edge struct {
	ID         EdgeID
	From, To   NodeID
	Length     units.Distance
	SpeedLimit units.Speed
}

// Validate reports whether the edge is well-formed.
func (e Edge) Validate() error {
	switch {
	case e.ID == "":
		return fmt.Errorf("roadnet: edge needs an ID")
	case e.From == "" || e.To == "":
		return fmt.Errorf("roadnet: edge %s needs endpoints", e.ID)
	case e.From == e.To:
		return fmt.Errorf("roadnet: edge %s is a self-loop", e.ID)
	case e.Length <= 0:
		return fmt.Errorf("roadnet: edge %s length %v must be positive", e.ID, e.Length)
	case e.SpeedLimit <= 0:
		return fmt.Errorf("roadnet: edge %s speed limit %v must be positive", e.ID, e.SpeedLimit)
	}
	return nil
}

// TravelTime returns the free-flow traversal time.
func (e Edge) TravelTime() time.Duration {
	return e.SpeedLimit.TimeOver(e.Length)
}

// Network is a directed road graph. Construct with NewNetwork and
// populate with AddNode/AddEdge; it is not safe for concurrent
// mutation.
type Network struct {
	nodes map[NodeID]Node
	edges map[EdgeID]Edge
	out   map[NodeID][]EdgeID
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		nodes: make(map[NodeID]Node),
		edges: make(map[EdgeID]Edge),
		out:   make(map[NodeID][]EdgeID),
	}
}

// AddNode inserts or replaces a node.
func (n *Network) AddNode(node Node) error {
	if node.ID == "" {
		return fmt.Errorf("roadnet: node needs an ID")
	}
	if node.Signal != nil {
		if err := node.Signal.Validate(); err != nil {
			return err
		}
	}
	n.nodes[node.ID] = node
	return nil
}

// AddEdge inserts an edge whose endpoints must already exist.
func (n *Network) AddEdge(e Edge) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if _, ok := n.nodes[e.From]; !ok {
		return fmt.Errorf("roadnet: edge %s references unknown node %s", e.ID, e.From)
	}
	if _, ok := n.nodes[e.To]; !ok {
		return fmt.Errorf("roadnet: edge %s references unknown node %s", e.ID, e.To)
	}
	if _, dup := n.edges[e.ID]; dup {
		return fmt.Errorf("roadnet: duplicate edge %s", e.ID)
	}
	n.edges[e.ID] = e
	n.out[e.From] = append(n.out[e.From], e.ID)
	return nil
}

// Node returns a node by ID.
func (n *Network) Node(id NodeID) (Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// Edge returns an edge by ID.
func (n *Network) Edge(id EdgeID) (Edge, bool) {
	e, ok := n.edges[id]
	return e, ok
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the edge count.
func (n *Network) NumEdges() int { return len(n.edges) }

// EdgesFrom returns the outgoing edge IDs of a node, sorted for
// determinism.
func (n *Network) EdgesFrom(id NodeID) []EdgeID {
	out := make([]EdgeID, len(n.out[id]))
	copy(out, n.out[id])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Route returns the minimum-free-flow-time edge sequence from src to
// dst (Dijkstra), or an error if no path exists.
func (n *Network) Route(src, dst NodeID) ([]EdgeID, error) {
	if _, ok := n.nodes[src]; !ok {
		return nil, fmt.Errorf("roadnet: unknown source %s", src)
	}
	if _, ok := n.nodes[dst]; !ok {
		return nil, fmt.Errorf("roadnet: unknown destination %s", dst)
	}
	if src == dst {
		return nil, nil
	}

	const inf = float64(1 << 62)
	dist := map[NodeID]float64{src: 0}
	prev := map[NodeID]EdgeID{}
	visited := map[NodeID]bool{}

	for {
		// Extract the unvisited node with the smallest distance;
		// iterate IDs in sorted order for determinism.
		var cur NodeID
		best := inf
		ids := make([]NodeID, 0, len(dist))
		for id := range dist {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if !visited[id] && dist[id] < best {
				best, cur = dist[id], id
			}
		}
		if best == inf || cur == "" {
			return nil, fmt.Errorf("roadnet: no route from %s to %s", src, dst)
		}
		if cur == dst {
			break
		}
		visited[cur] = true
		for _, eid := range n.EdgesFrom(cur) {
			e := n.edges[eid]
			alt := dist[cur] + e.TravelTime().Seconds()
			if old, ok := dist[e.To]; !ok || alt < old {
				dist[e.To] = alt
				prev[e.To] = eid
			}
		}
	}

	// Reconstruct.
	var route []EdgeID
	for at := dst; at != src; {
		eid, ok := prev[at]
		if !ok {
			return nil, fmt.Errorf("roadnet: no route from %s to %s", src, dst)
		}
		route = append([]EdgeID{eid}, route...)
		at = n.edges[eid].From
	}
	return route, nil
}
