package roadnet

import (
	"fmt"
	"sort"
	"time"

	"olevgrid/internal/units"
)

// EnergyGains maps an edge to the energy an OLEV collects traversing
// it (from the charging sections embedded in that edge, per
// wpt.Lane.EnergyPerTraversal). Edges absent from the map charge
// nothing.
type EnergyGains map[EdgeID]units.Energy

// EnergyRouteConfig tunes the energy-aware router — the paper's
// future-work "effect charging section placement will have on OLEV
// path planning".
type EnergyRouteConfig struct {
	// ConsumptionPerKm is drivetrain draw in kWh per kilometer; it
	// prices the detour an energy-rich route costs.
	ConsumptionPerKm float64
	// TradeoffSecondsPerKWh converts net energy into travel-time
	// currency: how many extra seconds of driving one harvested kWh
	// is worth to the driver. Zero reproduces the plain fastest
	// route.
	TradeoffSecondsPerKWh float64
	// Gains carries the per-edge charging energy.
	Gains EnergyGains
}

// Validate reports the first problem with the configuration.
func (c EnergyRouteConfig) Validate() error {
	if c.ConsumptionPerKm < 0 {
		return fmt.Errorf("roadnet: consumption %v must be non-negative", c.ConsumptionPerKm)
	}
	if c.TradeoffSecondsPerKWh < 0 {
		return fmt.Errorf("roadnet: tradeoff %v must be non-negative", c.TradeoffSecondsPerKWh)
	}
	return nil
}

// RouteStats summarizes an energy-aware route.
type RouteStats struct {
	// TravelTime is the free-flow traversal time.
	TravelTime time.Duration
	// Distance is the route length.
	Distance units.Distance
	// EnergyConsumed is the drivetrain draw over the route.
	EnergyConsumed units.Energy
	// EnergyGained is the charging-section harvest over the route.
	EnergyGained units.Energy
}

// NetEnergy returns gained minus consumed.
func (s RouteStats) NetEnergy() units.Energy {
	return s.EnergyGained - s.EnergyConsumed
}

// ErrChargingLoop reports a network/tradeoff combination where some
// cycle of edges has negative generalized cost — driving it forever
// would "earn" unbounded utility. Cap the tradeoff or the per-edge
// gains to restore a well-posed problem.
var ErrChargingLoop = fmt.Errorf("roadnet: charging-rich cycle makes the route unbounded")

// EnergyAwareRoute returns the edge sequence from src to dst that
// minimizes generalized cost: free-flow seconds minus the time-value
// of the net energy each edge provides. Charging-rich edges can have
// negative cost, so the router runs Bellman–Ford and rejects networks
// whose tradeoff induces a negative cycle (ErrChargingLoop).
func (n *Network) EnergyAwareRoute(src, dst NodeID, cfg EnergyRouteConfig) ([]EdgeID, RouteStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, RouteStats{}, err
	}
	if _, ok := n.nodes[src]; !ok {
		return nil, RouteStats{}, fmt.Errorf("roadnet: unknown source %s", src)
	}
	if _, ok := n.nodes[dst]; !ok {
		return nil, RouteStats{}, fmt.Errorf("roadnet: unknown destination %s", dst)
	}
	if src == dst {
		return nil, RouteStats{}, nil
	}

	costOf := func(e Edge) float64 {
		seconds := e.TravelTime().Seconds()
		consumed := cfg.ConsumptionPerKm * e.Length.Meters() / 1000
		gained := cfg.Gains[e.ID].KWh()
		return seconds - cfg.TradeoffSecondsPerKWh*(gained-consumed)
	}

	// Bellman–Ford over a deterministic edge order.
	edgeIDs := make([]EdgeID, 0, len(n.edges))
	for id := range n.edges {
		edgeIDs = append(edgeIDs, id)
	}
	sort.Slice(edgeIDs, func(i, j int) bool { return edgeIDs[i] < edgeIDs[j] })

	const inf = float64(1 << 62)
	dist := make(map[NodeID]float64, len(n.nodes))
	for id := range n.nodes {
		dist[id] = inf
	}
	dist[src] = 0
	prev := map[NodeID]EdgeID{}
	for pass := 0; pass < len(n.nodes); pass++ {
		var relaxed bool
		for _, eid := range edgeIDs {
			e := n.edges[eid]
			if dist[e.From] == inf {
				continue
			}
			if alt := dist[e.From] + costOf(e); alt < dist[e.To]-1e-12 {
				dist[e.To] = alt
				prev[e.To] = eid
				relaxed = true
			}
		}
		if !relaxed {
			break
		}
		if pass == len(n.nodes)-1 {
			return nil, RouteStats{}, ErrChargingLoop
		}
	}
	if dist[dst] == inf {
		return nil, RouteStats{}, fmt.Errorf("roadnet: no route from %s to %s", src, dst)
	}

	var route []EdgeID
	for at := dst; at != src; {
		eid, ok := prev[at]
		if !ok {
			return nil, RouteStats{}, fmt.Errorf("roadnet: no route from %s to %s", src, dst)
		}
		route = append([]EdgeID{eid}, route...)
		at = n.edges[eid].From
		if len(route) > len(n.edges) {
			return nil, RouteStats{}, ErrChargingLoop
		}
	}

	var stats RouteStats
	for _, eid := range route {
		e := n.edges[eid]
		stats.TravelTime += e.TravelTime()
		stats.Distance += e.Length
		stats.EnergyConsumed += units.KWh(cfg.ConsumptionPerKm * e.Length.Meters() / 1000)
		stats.EnergyGained += cfg.Gains[e.ID]
	}
	return route, stats, nil
}
