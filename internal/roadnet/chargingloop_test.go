package roadnet

import (
	"errors"
	"testing"

	"olevgrid/internal/units"
)

// TestChargingLoopDetected: a ring of charging-rich edges plus an
// extreme tradeoff forms a negative cycle; the router must refuse
// rather than loop.
func TestChargingLoopDetected(t *testing.T) {
	n := NewNetwork()
	for _, id := range []NodeID{"a", "b", "c"} {
		if err := n.AddNode(Node{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	ring := []Edge{
		{ID: "ab", From: "a", To: "b", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
		{ID: "bc", From: "b", To: "c", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
		{ID: "ca", From: "c", To: "a", Length: units.Meters(100), SpeedLimit: units.MPS(10)},
	}
	for _, e := range ring {
		if err := n.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	gains := EnergyGains{"ab": units.KWh(5), "bc": units.KWh(5), "ca": units.KWh(5)}

	_, _, err := n.EnergyAwareRoute("a", "c", EnergyRouteConfig{
		TradeoffSecondsPerKWh: 1e4,
		Gains:                 gains,
	})
	if !errors.Is(err, ErrChargingLoop) {
		t.Errorf("err = %v, want ErrChargingLoop", err)
	}

	// The same ring with a sane tradeoff routes normally.
	route, stats, err := n.EnergyAwareRoute("a", "c", EnergyRouteConfig{
		TradeoffSecondsPerKWh: 1,
		Gains:                 gains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != "ab" || route[1] != "bc" {
		t.Errorf("route = %v", route)
	}
	if stats.EnergyGained != units.KWh(10) {
		t.Errorf("gained = %v", stats.EnergyGained)
	}
}
