package grid

import (
	"math"
	"testing"
)

func TestNewSupplyStackValidation(t *testing.T) {
	valid := []GeneratingUnit{{Name: "a", CapacityMW: 100, MarginalCost: 10}}
	if _, err := NewSupplyStack(valid); err != nil {
		t.Fatalf("valid stack rejected: %v", err)
	}
	bad := [][]GeneratingUnit{
		nil,
		{{Name: "", CapacityMW: 100, MarginalCost: 10}},
		{{Name: "a", CapacityMW: 0, MarginalCost: 10}},
		{{Name: "a", CapacityMW: 100, MarginalCost: -1}},
	}
	for i, units := range bad {
		if _, err := NewSupplyStack(units); err == nil {
			t.Errorf("bad stack %d accepted", i)
		}
	}
}

func TestDispatchMeritOrder(t *testing.T) {
	stack, err := NewSupplyStack([]GeneratingUnit{
		{Name: "peaker", CapacityMW: 100, MarginalCost: 90},
		{Name: "base", CapacityMW: 1000, MarginalCost: 10},
		{Name: "mid", CapacityMW: 500, MarginalCost: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := stack.Clear(1200)
	if d.OutputMW["base"] != 1000 {
		t.Errorf("base output %v, want full 1000", d.OutputMW["base"])
	}
	if d.OutputMW["mid"] != 200 {
		t.Errorf("mid output %v, want 200", d.OutputMW["mid"])
	}
	if _, on := d.OutputMW["peaker"]; on {
		t.Error("peaker dispatched below its merit position")
	}
	if d.ClearingPrice != 40 || d.MarginalUnit != "mid" {
		t.Errorf("price %v by %s, want 40 by mid", d.ClearingPrice, d.MarginalUnit)
	}
	if d.ShortfallMW != 0 {
		t.Errorf("shortfall %v", d.ShortfallMW)
	}
	if want := 1600.0 - 1200.0; math.Abs(d.ReserveMW-want) > 1e-9 {
		t.Errorf("reserve %v, want %v", d.ReserveMW, want)
	}
}

func TestDispatchShortfall(t *testing.T) {
	stack, err := NewSupplyStack([]GeneratingUnit{
		{Name: "only", CapacityMW: 100, MarginalCost: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := stack.Clear(150)
	if d.ShortfallMW != 50 {
		t.Errorf("shortfall %v, want 50", d.ShortfallMW)
	}
	if d.ReserveMW != 0 {
		t.Errorf("reserve %v, want 0", d.ReserveMW)
	}
}

func TestDispatchEdgeCases(t *testing.T) {
	stack := NYISOLikeStack()
	zero := stack.Clear(0)
	if len(zero.OutputMW) != 0 || zero.ShortfallMW != 0 {
		t.Errorf("zero load dispatch %+v", zero)
	}
	if zero.ClearingPrice != 9 {
		t.Errorf("zero-load price %v, want cheapest offer", zero.ClearingPrice)
	}
	neg := stack.Clear(-100)
	if len(neg.OutputMW) != 0 {
		t.Error("negative load dispatched units")
	}
}

func TestNYISOLikeStackCoversDefaultDay(t *testing.T) {
	stack := NYISOLikeStack()
	day := mustDay(t)
	if stack.TotalCapacityMW() < day.PeakLoadMW() {
		t.Fatalf("stack %v cannot serve the peak %v", stack.TotalCapacityMW(), day.PeakLoadMW())
	}
	integrated, _, _ := day.Series()
	for i, load := range integrated {
		d := stack.Clear(load)
		if d.ShortfallMW > 0 {
			t.Fatalf("step %d: shortfall %v at load %v", i, d.ShortfallMW, load)
		}
	}
}

// TestEndogenousPriceShapeMatchesFormulaicLBMP validates the Day
// generator's convex price formula against the merit-order truth:
// both must be non-decreasing in load and span a comparable range
// over the day's load window.
func TestEndogenousPriceShapeMatchesFormulaicLBMP(t *testing.T) {
	stack := NYISOLikeStack()
	day := mustDay(t)

	loads := []float64{
		day.MinLoadMW(),
		day.MinLoadMW() + 0.25*(day.PeakLoadMW()-day.MinLoadMW()),
		day.MinLoadMW() + 0.50*(day.PeakLoadMW()-day.MinLoadMW()),
		day.MinLoadMW() + 0.75*(day.PeakLoadMW()-day.MinLoadMW()),
		day.PeakLoadMW(),
	}
	prices := stack.PriceCurve(loads)
	for i := 1; i < len(prices); i++ {
		if prices[i] < prices[i-1] {
			t.Fatalf("merit-order price fell with load: %v", prices)
		}
	}
	// Valley prices cheap, peak prices expensive — same regime as the
	// formulaic curve's calibration bounds.
	if prices[0] > 30 {
		t.Errorf("valley price %v unexpectedly high", prices[0])
	}
	if prices[len(prices)-1] < 75 {
		t.Errorf("peak price %v unexpectedly low", prices[len(prices)-1])
	}
}

// TestOLEVLoadEscalatesDispatchCosts ties the WPT story to the
// dispatch model: adding corridor load at the peak pushes the system
// into more expensive units.
func TestOLEVLoadEscalatesDispatchCosts(t *testing.T) {
	stack := NYISOLikeStack()
	day := mustDay(t)
	base := stack.Clear(day.PeakLoadMW())
	loaded := stack.Clear(day.PeakLoadMW() + 300) // 300 MW of WPT corridors
	if loaded.ClearingPrice <= base.ClearingPrice {
		t.Errorf("OLEV load did not raise the clearing price: %v vs %v",
			loaded.ClearingPrice, base.ClearingPrice)
	}
	if loaded.ReserveMW >= base.ReserveMW {
		t.Error("OLEV load did not eat into reserves")
	}
}
