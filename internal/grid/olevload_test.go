package grid

import (
	"math"
	"testing"
	"time"
)

func TestWithOLEVLoadIncreasesDeficiency(t *testing.T) {
	base := mustDay(t)

	// A metropolitan WPT deployment drawing 150 MW during the evening
	// peak (the paper: 4371 signalized intersections in Brooklyn alone
	// aggregate to grid-scale load).
	var load [24]float64
	for h := 16; h <= 20; h++ {
		load[h] = 150000 // kW
	}
	loaded := base.WithOLEVLoad(load)

	at := 18 * time.Hour
	wantLoad := base.IntegratedLoadMW(at) + 150
	if got := loaded.IntegratedLoadMW(at); math.Abs(got-wantLoad) > 1e-9 {
		t.Errorf("loaded integrated = %v, want %v", got, wantLoad)
	}
	// The forecast did not see the OLEVs, so the miss grows by the
	// full draw.
	wantDef := base.DeficiencyMW(at) + 150
	if got := loaded.DeficiencyMW(at); math.Abs(got-wantDef) > 1e-9 {
		t.Errorf("loaded deficiency = %v, want %v", got, wantDef)
	}
	// Hours without OLEV draw are untouched.
	if got, want := loaded.DeficiencyMW(3*time.Hour), base.DeficiencyMW(3*time.Hour); got != want {
		t.Errorf("untouched hour changed: %v vs %v", got, want)
	}
	// The new deficiency can exceed the historical bound — that is
	// the paper's point about unpredictable OLEV load.
	if loaded.MaxAbsDeficiencyMW() <= base.MaxAbsDeficiencyMW() {
		t.Error("OLEV load should raise the worst-case deficiency")
	}
}

func TestWithOLEVLoadDoesNotMutateBase(t *testing.T) {
	base := mustDay(t)
	before := base.IntegratedLoadMW(12 * time.Hour)
	var load [24]float64
	load[12] = 99000
	_ = base.WithOLEVLoad(load)
	if got := base.IntegratedLoadMW(12 * time.Hour); got != before {
		t.Error("WithOLEVLoad mutated the receiver")
	}
}

func TestWithOLEVLoadZeroIsIdentity(t *testing.T) {
	base := mustDay(t)
	same := base.WithOLEVLoad([24]float64{})
	for h := 0; h < 24; h++ {
		at := time.Duration(h) * time.Hour
		if same.IntegratedLoadMW(at) != base.IntegratedLoadMW(at) {
			t.Fatalf("hour %d changed with zero load", h)
		}
		if same.LBMP(at) != base.LBMP(at) {
			t.Fatalf("hour %d LBMP changed", h)
		}
	}
}
