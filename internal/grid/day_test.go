package grid

import (
	"math"
	"testing"
	"time"

	"olevgrid/internal/stats"
)

func mustDay(t *testing.T) *Day {
	t.Helper()
	d, err := NewDay(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "load bounds inverted", mutate: func(c *Config) { c.MinLoadMW, c.MaxLoadMW = c.MaxLoadMW, c.MinLoadMW }},
		{name: "zero min load", mutate: func(c *Config) { c.MinLoadMW = 0 }},
		{name: "zero deficiency", mutate: func(c *Config) { c.MaxDeficiencyMW = 0 }},
		{name: "LBMP bounds inverted", mutate: func(c *Config) { c.LBMPMin, c.LBMPMax = c.LBMPMax, c.LBMPMin }},
		{name: "zero ancillary", mutate: func(c *Config) { c.AncillaryMean = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewDay(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDayCalibration(t *testing.T) {
	// The paper's Fig. 2 figures: load spans exactly the NYISO range,
	// deficiency stays within ±167.8, LBMP within [12.52, 244.04].
	d := mustDay(t)
	cfg := DefaultConfig()

	if got := d.MinLoadMW(); math.Abs(got-cfg.MinLoadMW) > 1e-6 {
		t.Errorf("min load = %v, want %v", got, cfg.MinLoadMW)
	}
	if got := d.PeakLoadMW(); math.Abs(got-cfg.MaxLoadMW) > 1e-6 {
		t.Errorf("peak load = %v, want %v", got, cfg.MaxLoadMW)
	}
	if got := d.MaxAbsDeficiencyMW(); got > cfg.MaxDeficiencyMW+1e-9 {
		t.Errorf("max deficiency = %v exceeds %v", got, cfg.MaxDeficiencyMW)
	}
	_, _, lbmp := d.Series()
	for i, p := range lbmp {
		if p < cfg.LBMPMin-1e-9 || p > cfg.LBMPMax+1e-9 {
			t.Fatalf("LBMP[%d] = %v outside [%v, %v]", i, p, cfg.LBMPMin, cfg.LBMPMax)
		}
	}
}

func TestDayLBMPUsesWideRange(t *testing.T) {
	// The curve must actually exercise the volatile top of the stack,
	// not hug the floor.
	d := mustDay(t)
	_, _, lbmp := d.Series()
	var s stats.Summary
	s.AddAll(lbmp)
	if s.Max() < 150 {
		t.Errorf("LBMP max = %v; expected scarcity spikes above 150", s.Max())
	}
	if s.Min() > 30 {
		t.Errorf("LBMP min = %v; expected cheap overnight prices", s.Min())
	}
}

func TestDayAncillaryMean(t *testing.T) {
	d := mustDay(t)
	want := DefaultConfig().AncillaryMean
	if got := d.MeanAncillary(); math.Abs(got-want)/want > 0.25 {
		t.Errorf("mean ancillary = %v, want within 25%% of %v", got, want)
	}
	anc := d.AncillarySeries()
	if len(anc.TenMinSync) != StepsPerDay || len(anc.RegulationCapacity) != StepsPerDay || len(anc.RegulationMovement) != StepsPerDay {
		t.Error("ancillary series have wrong lengths")
	}
	for _, series := range [][]float64{anc.TenMinSync, anc.RegulationCapacity, anc.RegulationMovement} {
		for i, v := range series {
			if v <= 0 {
				t.Fatalf("ancillary price [%d] = %v not positive", i, v)
			}
		}
	}
}

func TestDayDoubleHumpShape(t *testing.T) {
	// Overnight valley well below the afternoon peak.
	d := mustDay(t)
	night := d.IntegratedLoadMW(4 * time.Hour)
	afternoon := d.IntegratedLoadMW(14 * time.Hour)
	if night >= afternoon {
		t.Errorf("load at 04:00 (%v) not below 14:00 (%v)", night, afternoon)
	}
	// The peak lands in the afternoon/evening, not at night.
	var peakStep int
	integrated, _, _ := d.Series()
	for i, v := range integrated {
		if v == d.PeakLoadMW() {
			peakStep = i
			break
		}
	}
	peakHour := float64(peakStep) * 24 / StepsPerDay
	if peakHour < 10 || peakHour > 22 {
		t.Errorf("peak at hour %v, want daytime", peakHour)
	}
}

func TestDayDeterminism(t *testing.T) {
	a := mustDay(t)
	b := mustDay(t)
	ai, _, al := a.Series()
	bi, _, bl := b.Series()
	for i := range ai {
		if ai[i] != bi[i] || al[i] != bl[i] {
			t.Fatal("same seed produced different days")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c, err := NewDay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ci, _, _ := c.Series()
	same := true
	for i := range ai {
		if ai[i] != ci[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical days")
	}
}

func TestStepIndexWraps(t *testing.T) {
	d := mustDay(t)
	if d.IntegratedLoadMW(0) != d.IntegratedLoadMW(24*time.Hour) {
		t.Error("24h should wrap to 0h")
	}
	if d.IntegratedLoadMW(-time.Hour) != d.IntegratedLoadMW(23*time.Hour) {
		t.Error("negative time should wrap")
	}
}

func TestDeficiencyConsistency(t *testing.T) {
	d := mustDay(t)
	for h := 0; h < 24; h++ {
		tt := time.Duration(h) * time.Hour
		want := d.IntegratedLoadMW(tt) - d.ForecastLoadMW(tt)
		if got := d.DeficiencyMW(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("deficiency at %v = %v, want %v", tt, got, want)
		}
	}
}

func TestControlPeriodClassification(t *testing.T) {
	d := mustDay(t)
	counts := make(map[ControlPeriod]int)
	for i := 0; i < StepsPerDay; i++ {
		p := d.ControlPeriodAt(time.Duration(i) * Step)
		counts[p]++
	}
	// All four periods should occur over a full day.
	for _, p := range []ControlPeriod{PeriodBaseload, PeriodPeak, PeriodSpinningReserve, PeriodFrequencyControl} {
		if counts[p] == 0 {
			t.Errorf("period %v never classified (counts %v)", p, counts)
		}
	}
}

func TestControlPeriodStrings(t *testing.T) {
	tests := []struct {
		p    ControlPeriod
		want string
	}{
		{PeriodBaseload, "baseload"},
		{PeriodPeak, "peak"},
		{PeriodSpinningReserve, "spinning-reserve"},
		{PeriodFrequencyControl, "frequency-control"},
		{ControlPeriod(42), "ControlPeriod(42)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSeriesAreCopies(t *testing.T) {
	d := mustDay(t)
	integrated, _, _ := d.Series()
	before := d.IntegratedLoadMW(0)
	integrated[0] = -1
	if d.IntegratedLoadMW(0) != before {
		t.Error("Series leaked internal storage")
	}
	anc := d.AncillarySeries()
	b0 := anc.TenMinSync[0]
	anc.TenMinSync[0] = -1
	if d.AncillarySeries().TenMinSync[0] != b0 {
		t.Error("AncillarySeries leaked internal storage")
	}
}

func TestMeanLBMPInRange(t *testing.T) {
	d := mustDay(t)
	m := d.MeanLBMP()
	cfg := DefaultConfig()
	if m <= cfg.LBMPMin || m >= cfg.LBMPMax {
		t.Errorf("mean LBMP %v outside open price range", m)
	}
}
