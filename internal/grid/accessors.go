package grid

import (
	"fmt"
	"time"

	"olevgrid/internal/stats"
)

// stepIndex maps a time of day onto a series index, wrapping at 24 h.
func stepIndex(t time.Duration) int {
	i := int(t/Step) % StepsPerDay
	if i < 0 {
		i += StepsPerDay
	}
	return i
}

// IntegratedLoadMW returns the actual system load at time of day t.
func (d *Day) IntegratedLoadMW(t time.Duration) float64 {
	return d.integrated[stepIndex(t)]
}

// ForecastLoadMW returns the day-ahead forecast at time of day t.
func (d *Day) ForecastLoadMW(t time.Duration) float64 {
	return d.forecast[stepIndex(t)]
}

// DeficiencyMW returns integrated minus forecast load at time of day
// t — the Fig. 2(b) series.
func (d *Day) DeficiencyMW(t time.Duration) float64 {
	i := stepIndex(t)
	return d.integrated[i] - d.forecast[i]
}

// LBMP returns the locational-based marginal price at time of day t in
// $/MWh — the β the pricing game consumes.
func (d *Day) LBMP(t time.Duration) float64 {
	return d.lbmp[stepIndex(t)]
}

// Ancillary returns the three ancillary prices at time of day t in
// $/MW: ten-minute synchronized reserve, regulation capacity, and
// regulation movement.
func (d *Day) Ancillary(t time.Duration) (tenMinSync, regCapacity, regMovement float64) {
	i := stepIndex(t)
	return d.ancillary.TenMinSync[i], d.ancillary.RegulationCapacity[i], d.ancillary.RegulationMovement[i]
}

// Series returns copies of the full-resolution series for rendering.
func (d *Day) Series() (integrated, forecast, lbmp []float64) {
	return copySlice(d.integrated), copySlice(d.forecast), copySlice(d.lbmp)
}

// AncillarySeries returns a copy of the ancillary price series.
func (d *Day) AncillarySeries() AncillarySeries {
	return AncillarySeries{
		TenMinSync:         copySlice(d.ancillary.TenMinSync),
		RegulationCapacity: copySlice(d.ancillary.RegulationCapacity),
		RegulationMovement: copySlice(d.ancillary.RegulationMovement),
	}
}

// MeanLBMP returns the day's average price, the evaluation's default
// β source.
func (d *Day) MeanLBMP() float64 { return stats.Mean(d.lbmp) }

// MeanAncillary returns the day's average across all three ancillary
// services — the "$13.41 on 12th May 2016" scalar the paper quotes.
func (d *Day) MeanAncillary() float64 {
	total := stats.Mean(d.ancillary.TenMinSync) +
		stats.Mean(d.ancillary.RegulationCapacity) +
		stats.Mean(d.ancillary.RegulationMovement)
	return total / 3
}

// PeakLoadMW returns the day's maximum integrated load.
func (d *Day) PeakLoadMW() float64 {
	var s stats.Summary
	s.AddAll(d.integrated)
	return s.Max()
}

// MinLoadMW returns the day's minimum integrated load.
func (d *Day) MinLoadMW() float64 {
	var s stats.Summary
	s.AddAll(d.integrated)
	return s.Min()
}

// MaxAbsDeficiencyMW returns the day's largest forecast miss.
func (d *Day) MaxAbsDeficiencyMW() float64 {
	var max float64
	for i := range d.integrated {
		if def := abs(d.integrated[i] - d.forecast[i]); def > max {
			max = def
		}
	}
	return max
}

// ControlPeriod classifies how the grid is sourcing power at a moment,
// per the four electricity-market control periods of Section III.
type ControlPeriod int

const (
	// PeriodBaseload: large plants cover the valley.
	PeriodBaseload ControlPeriod = iota + 1
	// PeriodPeak: peakers are on the margin.
	PeriodPeak
	// PeriodSpinningReserve: reserves are being dispatched against an
	// under-forecast.
	PeriodSpinningReserve
	// PeriodFrequencyControl: regulation is correcting a small
	// mismatch.
	PeriodFrequencyControl
)

func (p ControlPeriod) String() string {
	switch p {
	case PeriodBaseload:
		return "baseload"
	case PeriodPeak:
		return "peak"
	case PeriodSpinningReserve:
		return "spinning-reserve"
	case PeriodFrequencyControl:
		return "frequency-control"
	default:
		return fmt.Sprintf("ControlPeriod(%d)", int(p))
	}
}

// ControlPeriodAt classifies time of day t: big under-forecasts call
// spinning reserve, small mismatches call frequency control, and
// otherwise the load level separates baseload from peak.
func (d *Day) ControlPeriodAt(t time.Duration) ControlPeriod {
	def := d.DeficiencyMW(t)
	switch {
	case def > 0.5*d.cfg.MaxDeficiencyMW:
		return PeriodSpinningReserve
	case abs(def) > 0.2*d.cfg.MaxDeficiencyMW:
		return PeriodFrequencyControl
	case d.IntegratedLoadMW(t) > d.cfg.MinLoadMW+0.6*(d.cfg.MaxLoadMW-d.cfg.MinLoadMW):
		return PeriodPeak
	default:
		return PeriodBaseload
	}
}

// WithOLEVLoad returns a copy of the day whose integrated load has
// the given hourly WPT draw added — the Section III thought
// experiment: the forecast was made without OLEVs, so their in-motion
// charging lands entirely in the deficiency. loadByHourKW[h] is the
// average WPT draw during hour h in kW. The deficiency bound no
// longer applies to the modified day (that is the point).
func (d *Day) WithOLEVLoad(loadByHourKW [24]float64) *Day {
	out := &Day{
		cfg:        d.cfg,
		integrated: copySlice(d.integrated),
		forecast:   copySlice(d.forecast),
		lbmp:       copySlice(d.lbmp),
		ancillary: AncillarySeries{
			TenMinSync:         copySlice(d.ancillary.TenMinSync),
			RegulationCapacity: copySlice(d.ancillary.RegulationCapacity),
			RegulationMovement: copySlice(d.ancillary.RegulationMovement),
		},
	}
	for i := range out.integrated {
		h := i * 24 / StepsPerDay
		out.integrated[i] += loadByHourKW[h] / 1000 // kW -> MW
	}
	return out
}

func copySlice(vs []float64) []float64 {
	out := make([]float64, len(vs))
	copy(out, vs)
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
