package grid

import (
	"fmt"
	"math/rand"
	"sync"

	"olevgrid/internal/obs"
	"olevgrid/internal/stats"
)

// This file models the one exogenous input the pricing game cannot
// function without: the LBMP feed that sets β. The paper's Section III
// motivation is that supply and price are volatile; a production
// control plane additionally has to survive the feed itself going
// dark. LBMPFeed wraps any β source with a seeded dropout plan and a
// last-known-good fallback: during a dropout the served price decays
// geometrically from the last good sample toward a configured floor,
// and a staleness ceiling bounds how long a stale price may be served
// at all. Consumers (sched.Coordinator per round, coupling.RunDay per
// hour) treat a !ok sample as "hold the last applied price" — the
// conservative operating point when the market is unreachable.

// FeedWindow is a half-open interval [From, To) of sample steps during
// which the feed is dark — a scripted outage, the exogenous analogue
// of v2i.SendWindow.
type FeedWindow struct {
	From int
	To   int
}

// Contains reports whether step i falls inside the window.
func (w FeedWindow) Contains(i int) bool { return i >= w.From && i < w.To }

// FeedConfig is a seeded fault plan for an LBMP feed. The zero value
// injects nothing: every sample passes through untouched.
type FeedConfig struct {
	// DropRate is the probability any one sample is lost.
	DropRate float64
	// Windows scripts deterministic dark stretches by sample step.
	Windows []FeedWindow
	// Decay multiplies the served price's distance to FloorBeta once
	// per dark step, modelling the grid's fading confidence in a stale
	// price. Zero (or 1) holds the last-known-good flat.
	Decay float64
	// FloorBeta is the decay target in the feed's own unit ($/MWh for
	// LBMP); ignored when Decay is off.
	FloorBeta float64
	// StalenessCeiling is the maximum age, in steps, a stale sample may
	// be served; beyond it Sample reports ok=false and the consumer
	// must hold its last applied price. Zero means no ceiling.
	StalenessCeiling int
	// Seed drives the random dropouts.
	Seed int64
}

// Validate reports the first problem with the configuration.
func (c FeedConfig) Validate() error {
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("grid: feed drop rate %v outside [0, 1)", c.DropRate)
	}
	if c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("grid: feed decay %v outside [0, 1]", c.Decay)
	}
	if c.FloorBeta < 0 {
		return fmt.Errorf("grid: feed floor %v negative", c.FloorBeta)
	}
	if c.StalenessCeiling < 0 {
		return fmt.Errorf("grid: staleness ceiling %d negative", c.StalenessCeiling)
	}
	for _, w := range c.Windows {
		if w.From < 0 || w.To < w.From {
			return fmt.Errorf("grid: feed window [%d, %d) invalid", w.From, w.To)
		}
	}
	return nil
}

// LBMPFeed serves β samples from a source through a seeded fault plan.
// It is safe for concurrent use, though consumers normally sample from
// one goroutine; each Sample call is one feed step.
type LBMPFeed struct {
	src func(step int) float64
	cfg FeedConfig

	mu       sync.Mutex
	rng      *rand.Rand
	cur      float64 // the price currently served (decays while dark)
	haveGood bool
	age      int // steps since the last good sample

	dropouts int
	held     int
	maxAge   int

	fm *FeedMetrics // nil unless Instrument armed it
}

// FeedMetrics mirrors the feed's internal accounting onto obs
// instruments so the control plane's exogenous-fault exposure shows up
// next to the solver telemetry. The counters track the legacy
// Dropouts/Held accessors one-for-one; Age is the current dark-stretch
// length and Beta the last price served.
type FeedMetrics struct {
	Dropouts *obs.Counter
	Held     *obs.Counter
	Age      *obs.Gauge
	Beta     *obs.Gauge
	Sink     *obs.EventSink
}

// NewFeedMetrics registers the feed metric catalog on r (see DESIGN.md
// §11); r and sink may each be nil.
func NewFeedMetrics(r *obs.Registry, sink *obs.EventSink) *FeedMetrics {
	return &FeedMetrics{
		Dropouts: r.Counter("olev_feed_dropouts_total"),
		Held:     r.Counter("olev_feed_held_total"),
		Age:      r.Gauge("olev_feed_staleness_steps"),
		Beta:     r.Gauge("olev_feed_beta_per_mwh"),
		Sink:     sink,
	}
}

// Instrument arms the feed with an obs bundle; nil disarms. Existing
// internal counts are not replayed — arm before sampling.
func (f *LBMPFeed) Instrument(m *FeedMetrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fm = m
}

// NewLBMPFeed wraps a β source (step → price) with a fault plan.
func NewLBMPFeed(src func(step int) float64, cfg FeedConfig) (*LBMPFeed, error) {
	if src == nil {
		return nil, fmt.Errorf("grid: feed needs a source")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LBMPFeed{src: src, cfg: cfg, rng: stats.NewRand(cfg.Seed)}, nil
}

// Sample returns the β to apply at the given step. ok=false means the
// feed has been dark longer than the staleness ceiling (or has never
// delivered a sample): the caller must hold whatever price it last
// applied rather than trust the returned value.
func (f *LBMPFeed) Sample(step int) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dark := f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate
	if !dark {
		for _, w := range f.cfg.Windows {
			if w.Contains(step) {
				dark = true
				break
			}
		}
	}
	if !dark {
		f.cur = f.src(step)
		f.haveGood = true
		f.age = 0
		if f.fm != nil {
			f.fm.Age.Set(0)
			f.fm.Beta.Set(f.cur)
		}
		return f.cur, true
	}
	f.dropouts++
	f.age++
	if f.age > f.maxAge {
		f.maxAge = f.age
	}
	if f.fm != nil {
		f.fm.Dropouts.Inc()
		f.fm.Age.Set(float64(f.age))
		f.fm.Sink.Emit(obs.EventFeedDropout, "feed", int32(step), -1, f.cur)
	}
	if !f.haveGood {
		f.held++
		f.fm.heldOne()
		return 0, false
	}
	if f.cfg.Decay > 0 && f.cfg.Decay < 1 {
		f.cur = f.cfg.FloorBeta + (f.cur-f.cfg.FloorBeta)*f.cfg.Decay
	}
	if f.fm != nil {
		f.fm.Beta.Set(f.cur)
	}
	if f.cfg.StalenessCeiling > 0 && f.age > f.cfg.StalenessCeiling {
		f.held++
		f.fm.heldOne()
		return f.cur, false
	}
	return f.cur, true
}

// heldOne bumps the held counter; nil-safe like every obs hook.
func (m *FeedMetrics) heldOne() {
	if m == nil {
		return
	}
	m.Held.Inc()
}

// Dropouts reports how many samples were lost to the fault plan.
func (f *LBMPFeed) Dropouts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropouts
}

// Held reports how many samples breached the staleness ceiling (the
// consumer had to hold its last applied price).
func (f *LBMPFeed) Held() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.held
}

// MaxAge reports the longest dark stretch observed, in steps.
func (f *LBMPFeed) MaxAge() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxAge
}
