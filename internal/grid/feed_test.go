package grid

import (
	"math"
	"testing"

	"olevgrid/internal/obs"
)

func mustFeed(t *testing.T, src func(int) float64, cfg FeedConfig) *LBMPFeed {
	t.Helper()
	f, err := NewLBMPFeed(src, cfg)
	if err != nil {
		t.Fatalf("NewLBMPFeed: %v", err)
	}
	return f
}

// A clean feed is a transparent pass-through.
func TestFeedCleanPassThrough(t *testing.T) {
	f := mustFeed(t, func(i int) float64 { return 10 + float64(i) }, FeedConfig{})
	for i := 0; i < 5; i++ {
		got, ok := f.Sample(i)
		if !ok || got != 10+float64(i) {
			t.Fatalf("Sample(%d) = %v, %v; want %v, true", i, got, ok, 10+float64(i))
		}
	}
	if f.Dropouts() != 0 || f.Held() != 0 || f.MaxAge() != 0 {
		t.Fatalf("clean feed recorded faults: drop=%d held=%d age=%d",
			f.Dropouts(), f.Held(), f.MaxAge())
	}
}

// A scripted window serves last-known-good, decaying toward the floor.
func TestFeedWindowDecay(t *testing.T) {
	cfg := FeedConfig{
		Windows:   []FeedWindow{{From: 1, To: 4}},
		Decay:     0.5,
		FloorBeta: 10,
	}
	f := mustFeed(t, func(int) float64 { return 90 }, cfg)
	if got, ok := f.Sample(0); !ok || got != 90 {
		t.Fatalf("step 0 = %v, %v", got, ok)
	}
	want := []float64{50, 30, 20} // 10 + (cur-10)*0.5 each dark step
	for i, w := range want {
		got, ok := f.Sample(1 + i)
		if !ok || math.Abs(got-w) > 1e-12 {
			t.Fatalf("dark step %d = %v, %v; want %v, true", 1+i, got, ok, w)
		}
	}
	// Recovery: the next sample is a fresh source read.
	if got, ok := f.Sample(4); !ok || got != 90 {
		t.Fatalf("recovered step = %v, %v; want 90, true", got, ok)
	}
	if f.Dropouts() != 3 || f.MaxAge() != 3 {
		t.Fatalf("counters: drop=%d age=%d; want 3, 3", f.Dropouts(), f.MaxAge())
	}
}

// Beyond the staleness ceiling, Sample reports ok=false so the consumer
// holds its last applied price instead of trusting a fossil.
func TestFeedStalenessCeiling(t *testing.T) {
	cfg := FeedConfig{
		Windows:          []FeedWindow{{From: 1, To: 10}},
		StalenessCeiling: 2,
	}
	f := mustFeed(t, func(int) float64 { return 42 }, cfg)
	if _, ok := f.Sample(0); !ok {
		t.Fatal("first sample should be good")
	}
	for i := 1; i <= 2; i++ {
		if got, ok := f.Sample(i); !ok || got != 42 {
			t.Fatalf("within ceiling step %d = %v, %v; want 42, true", i, got, ok)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok := f.Sample(i); ok {
			t.Fatalf("step %d beyond ceiling should report !ok", i)
		}
	}
	if f.Held() != 3 {
		t.Fatalf("Held = %d, want 3", f.Held())
	}
}

// A feed that has never delivered a good sample serves nothing.
func TestFeedNeverGood(t *testing.T) {
	f := mustFeed(t, func(int) float64 { return 1 }, FeedConfig{
		Windows: []FeedWindow{{From: 0, To: 3}},
	})
	for i := 0; i < 3; i++ {
		if _, ok := f.Sample(i); ok {
			t.Fatalf("step %d with no good sample yet should report !ok", i)
		}
	}
}

// Random dropouts are seeded and reproducible, and the drop fraction
// lands near the configured rate.
func TestFeedSeededDropouts(t *testing.T) {
	const n = 2000
	run := func() int {
		f := mustFeed(t, func(int) float64 { return 50 }, FeedConfig{DropRate: 0.2, Seed: 7})
		for i := 0; i < n; i++ {
			f.Sample(i)
		}
		return f.Dropouts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced %d then %d dropouts", a, b)
	}
	if frac := float64(a) / n; frac < 0.15 || frac > 0.25 {
		t.Fatalf("drop fraction %v far from 0.2", frac)
	}
}

func TestFeedConfigValidate(t *testing.T) {
	bad := []FeedConfig{
		{DropRate: -0.1},
		{DropRate: 1},
		{Decay: 1.5},
		{FloorBeta: -1},
		{StalenessCeiling: -1},
		{Windows: []FeedWindow{{From: 5, To: 2}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
	if _, err := NewLBMPFeed(nil, FeedConfig{}); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestFeedMetricsMirrorLegacyCounters arms an instrumented feed and
// drives it through dropouts, a scripted dark window, samples held at
// the staleness ceiling, and an identical uninstrumented twin: the obs
// counters must equal the legacy Dropouts/Held accessors exactly, the
// served prices must be untouched by instrumentation, and the sink
// must hold one dropout event per lost sample.
func TestFeedMetricsMirrorLegacyCounters(t *testing.T) {
	src := func(i int) float64 { return 25 + float64(i%7) }
	cfg := FeedConfig{
		DropRate:         0.3,
		Windows:          []FeedWindow{{From: 10, To: 14}},
		Decay:            0.8,
		FloorBeta:        5,
		StalenessCeiling: 2,
		Seed:             99,
	}
	bare := mustFeed(t, src, cfg)
	inst := mustFeed(t, src, cfg)
	reg := obs.NewRegistry()
	sink := obs.NewEventSink(256)
	inst.Instrument(NewFeedMetrics(reg, sink))

	const steps = 100
	for i := 0; i < steps; i++ {
		wantBeta, wantOK := bare.Sample(i)
		gotBeta, gotOK := inst.Sample(i)
		if gotBeta != wantBeta || gotOK != wantOK {
			t.Fatalf("step %d: instrumented sample (%v, %v) != bare (%v, %v)",
				i, gotBeta, gotOK, wantBeta, wantOK)
		}
	}
	fm := inst.fm
	if got, want := fm.Dropouts.Value(), uint64(inst.Dropouts()); got != want {
		t.Errorf("dropouts counter = %d, accessor = %d", got, want)
	}
	if got, want := fm.Held.Value(), uint64(inst.Held()); got != want {
		t.Errorf("held counter = %d, accessor = %d", got, want)
	}
	if inst.Dropouts() == 0 || inst.Held() == 0 {
		t.Fatal("fault plan injected nothing — the mirror test measured nothing")
	}
	if got := sink.Emitted(); got != uint64(inst.Dropouts()) {
		t.Errorf("sink emitted %d events, dropouts = %d", got, inst.Dropouts())
	}
}
