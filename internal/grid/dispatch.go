package grid

import (
	"fmt"
	"sort"
)

// GeneratingUnit is one block of supply in the merit-order stack.
type GeneratingUnit struct {
	// Name identifies the unit in dispatch results.
	Name string
	// CapacityMW is the block's maximum output.
	CapacityMW float64
	// MarginalCost is the block's offer in $/MWh.
	MarginalCost float64
	// Period classifies the unit (baseload, peak, reserve); the
	// dispatcher itself orders purely by cost.
	Period ControlPeriod
}

// SupplyStack is a merit-order collection of units. Construct with
// NewSupplyStack, which validates and cost-orders the units.
type SupplyStack struct {
	units []GeneratingUnit
	total float64
}

// NewSupplyStack validates and orders the units by marginal cost.
func NewSupplyStack(units []GeneratingUnit) (*SupplyStack, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("grid: empty supply stack")
	}
	ordered := make([]GeneratingUnit, len(units))
	copy(ordered, units)
	var total float64
	for i, u := range ordered {
		if u.Name == "" {
			return nil, fmt.Errorf("grid: unit %d needs a name", i)
		}
		if u.CapacityMW <= 0 {
			return nil, fmt.Errorf("grid: unit %s capacity %v must be positive", u.Name, u.CapacityMW)
		}
		if u.MarginalCost < 0 {
			return nil, fmt.Errorf("grid: unit %s cost %v must be non-negative", u.Name, u.MarginalCost)
		}
		total += u.CapacityMW
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].MarginalCost < ordered[j].MarginalCost
	})
	return &SupplyStack{units: ordered, total: total}, nil
}

// NYISOLikeStack returns a stylized stack shaped like a summer NYISO
// day: cheap nuclear/hydro baseload, mid-cost combined cycle, gas
// peakers, and expensive quick-start reserves, sized so the default
// load curve clears inside it.
func NYISOLikeStack() *SupplyStack {
	stack, err := NewSupplyStack([]GeneratingUnit{
		{Name: "nuclear", CapacityMW: 2400, MarginalCost: 9, Period: PeriodBaseload},
		{Name: "hydro", CapacityMW: 1400, MarginalCost: 12, Period: PeriodBaseload},
		{Name: "combined-cycle-1", CapacityMW: 1200, MarginalCost: 28, Period: PeriodBaseload},
		{Name: "combined-cycle-2", CapacityMW: 900, MarginalCost: 42, Period: PeriodPeak},
		{Name: "gas-peaker-1", CapacityMW: 500, MarginalCost: 75, Period: PeriodPeak},
		{Name: "gas-peaker-2", CapacityMW: 350, MarginalCost: 120, Period: PeriodPeak},
		{Name: "quick-start", CapacityMW: 250, MarginalCost: 190, Period: PeriodSpinningReserve},
		{Name: "emergency", CapacityMW: 200, MarginalCost: 260, Period: PeriodSpinningReserve},
	})
	if err != nil {
		panic(err) // static data; unreachable
	}
	return stack
}

// TotalCapacityMW returns the stack's full capability.
func (s *SupplyStack) TotalCapacityMW() float64 { return s.total }

// Dispatch is the result of clearing one load level.
type Dispatch struct {
	// OutputMW maps unit name to dispatched output.
	OutputMW map[string]float64
	// ClearingPrice is the marginal unit's offer, $/MWh.
	ClearingPrice float64
	// MarginalUnit is the name of the price-setting unit.
	MarginalUnit string
	// Shortfall is unserved load when demand exceeds the stack.
	ShortfallMW float64
	// ReserveMW is remaining undispatched capability.
	ReserveMW float64
}

// Clear dispatches the stack against a load, filling units in merit
// order. Negative load clears to an empty dispatch at the cheapest
// offer.
func (s *SupplyStack) Clear(loadMW float64) Dispatch {
	d := Dispatch{OutputMW: make(map[string]float64, len(s.units))}
	remaining := loadMW
	if remaining < 0 {
		remaining = 0
	}
	d.ClearingPrice = s.units[0].MarginalCost
	d.MarginalUnit = s.units[0].Name
	for _, u := range s.units {
		if remaining <= 0 {
			break
		}
		take := u.CapacityMW
		if take > remaining {
			take = remaining
		}
		d.OutputMW[u.Name] = take
		d.ClearingPrice = u.MarginalCost
		d.MarginalUnit = u.Name
		remaining -= take
	}
	d.ShortfallMW = remaining
	var dispatched float64
	for _, out := range d.OutputMW {
		dispatched += out
	}
	d.ReserveMW = s.total - dispatched
	return d
}

// PriceCurve returns the clearing price at each load level in loads —
// the endogenous alternative to the Day generator's formulaic LBMP,
// used by tests to validate the formula's shape against a real merit
// order.
func (s *SupplyStack) PriceCurve(loads []float64) []float64 {
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = s.Clear(l).ClearingPrice
	}
	return out
}
