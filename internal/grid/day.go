// Package grid is the power-grid substrate standing in for the NYISO
// feeds the paper's Section III analyzes: a synthetic independent
// system operator (ISO) day with integrated vs forecast load, the
// deficiency between them, a supply-stack locational-based marginal
// price (LBMP), and ancillary-service prices.
//
// The generator is deterministic per seed and calibrated to the ranges
// the paper reports for 2016-05-12: load between 4017.1 and
// 6657.8 MWh, deficiency up to ±167.8 MWh, LBMP between $12.52 and
// $244.04/MWh, and a mean ancillary price near $13.41.
package grid

import (
	"fmt"
	"math"
	"time"

	"olevgrid/internal/stats"
)

// StepsPerDay is the series resolution: one sample every five minutes.
const StepsPerDay = 288

// Step is the sampling interval.
const Step = 5 * time.Minute

// Config calibrates the synthetic day. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// MinLoadMW and MaxLoadMW bound the integrated load curve.
	MinLoadMW float64
	MaxLoadMW float64
	// MaxDeficiencyMW bounds |integrated − forecast|.
	MaxDeficiencyMW float64
	// LBMPMin and LBMPMax bound the price curve in $/MWh.
	LBMPMin float64
	LBMPMax float64
	// AncillaryMean targets the day's mean ancillary price in $/MW.
	AncillaryMean float64
	// Seed drives all noise.
	Seed int64
}

// DefaultConfig returns the calibration the paper quotes for NYISO on
// 12 May 2016.
func DefaultConfig() Config {
	return Config{
		MinLoadMW:       4017.1,
		MaxLoadMW:       6657.8,
		MaxDeficiencyMW: 167.8,
		LBMPMin:         12.52,
		LBMPMax:         244.04,
		AncillaryMean:   13.41,
		Seed:            1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if !(c.MinLoadMW > 0 && c.MinLoadMW < c.MaxLoadMW) {
		return fmt.Errorf("grid: load bounds [%v, %v] invalid", c.MinLoadMW, c.MaxLoadMW)
	}
	if c.MaxDeficiencyMW <= 0 {
		return fmt.Errorf("grid: max deficiency %v must be positive", c.MaxDeficiencyMW)
	}
	if !(c.LBMPMin > 0 && c.LBMPMin < c.LBMPMax) {
		return fmt.Errorf("grid: LBMP bounds [%v, %v] invalid", c.LBMPMin, c.LBMPMax)
	}
	if c.AncillaryMean <= 0 {
		return fmt.Errorf("grid: ancillary mean %v must be positive", c.AncillaryMean)
	}
	return nil
}

// Day is one synthesized ISO day.
type Day struct {
	cfg Config
	// All series have StepsPerDay entries.
	integrated []float64 // MW
	forecast   []float64 // MW
	lbmp       []float64 // $/MWh
	ancillary  AncillarySeries
}

// AncillarySeries holds the three ancillary-service price series of
// Fig. 2(d), all in $/MW.
type AncillarySeries struct {
	TenMinSync         []float64
	RegulationCapacity []float64
	RegulationMovement []float64
}

// NewDay synthesizes a day from the configuration.
func NewDay(cfg Config) (*Day, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(cfg.Seed)
	d := &Day{cfg: cfg}

	d.integrated = loadCurve(cfg, rng)
	d.forecast = forecastCurve(cfg, rng, d.integrated)
	d.lbmp = lbmpCurve(cfg, rng, d.integrated)
	d.ancillary = ancillaryCurves(cfg, rng, d.integrated, d.forecast)
	return d, nil
}

// loadCurve builds the double-hump urban demand curve: a deep
// overnight valley, a morning ramp, and a broad afternoon/evening
// peak, plus smoothed noise, rescaled exactly into [MinLoad, MaxLoad].
func loadCurve(cfg Config, rng interface{ NormFloat64() float64 }) []float64 {
	raw := make([]float64, StepsPerDay)
	noise := 0.0
	for i := range raw {
		h := float64(i) * 24 / StepsPerDay
		base := gauss(h, 13.5, 5.0) + 0.55*gauss(h, 19.0, 2.2) + 0.25*gauss(h, 8.5, 1.8)
		noise = 0.92*noise + 0.08*rng.NormFloat64()
		raw[i] = base + 0.03*noise
	}
	rescale(raw, cfg.MinLoadMW, cfg.MaxLoadMW)
	return raw
}

// forecastCurve derives the forecast as a smoothed, slightly lagged
// version of the integrated load, with the residual (the deficiency)
// clamped into ±MaxDeficiency. The largest misses cluster around the
// steep ramps, as they do in real ISO data.
func forecastCurve(cfg Config, rng interface{ NormFloat64() float64 }, integrated []float64) []float64 {
	forecast := make([]float64, StepsPerDay)
	const window = 6 // 30-minute smoothing
	drift := 0.0
	for i := range forecast {
		var sum float64
		var n int
		for j := i - window; j <= i; j++ {
			idx := (j + StepsPerDay) % StepsPerDay
			sum += integrated[idx]
			n++
		}
		drift = 0.9*drift + 0.1*rng.NormFloat64()*cfg.MaxDeficiencyMW*0.8
		forecast[i] = sum/float64(n) + drift
		// Clamp the deficiency.
		if diff := integrated[i] - forecast[i]; diff > cfg.MaxDeficiencyMW {
			forecast[i] = integrated[i] - cfg.MaxDeficiencyMW
		} else if diff < -cfg.MaxDeficiencyMW {
			forecast[i] = integrated[i] + cfg.MaxDeficiencyMW
		}
	}
	return forecast
}

// lbmpCurve prices each step off a convex supply stack: cheap baseload
// units serve the valley, increasingly expensive peakers set the
// margin as load climbs, and occasional scarcity spikes hit near the
// peak — reproducing the $12–244 spread of Fig. 2(c).
func lbmpCurve(cfg Config, rng interface {
	NormFloat64() float64
	Float64() float64
}, integrated []float64) []float64 {
	lbmp := make([]float64, StepsPerDay)
	span := cfg.MaxLoadMW - cfg.MinLoadMW
	for i, load := range integrated {
		u := (load - cfg.MinLoadMW) / span // 0..1 position on the stack
		base := cfg.LBMPMin + (cfg.LBMPMax*0.35-cfg.LBMPMin)*u*u*u
		// Scarcity spikes: rare, short, and only when the stack is tight.
		if u > 0.85 && rng.Float64() < 0.25 {
			base += (cfg.LBMPMax - base) * (0.4 + 0.6*rng.Float64())
		}
		base += rng.NormFloat64() * 1.5
		lbmp[i] = clampTo(base, cfg.LBMPMin, cfg.LBMPMax)
	}
	return lbmp
}

// ancillaryCurves prices the three ancillary services. They track the
// absolute deficiency (reserves are procured against forecast misses)
// on top of a diurnal base, scaled so the day's mean lands on the
// configured target.
func ancillaryCurves(cfg Config, rng interface{ NormFloat64() float64 }, integrated, forecast []float64) AncillarySeries {
	mk := func(level, defWeight, noiseStd float64) []float64 {
		out := make([]float64, StepsPerDay)
		for i := range out {
			def := math.Abs(integrated[i] - forecast[i])
			v := level + defWeight*def/cfg.MaxDeficiencyMW*level + rng.NormFloat64()*noiseStd
			if v < 0.5 {
				v = 0.5
			}
			out[i] = v
		}
		// Rescale to the target mean while preserving shape.
		mean := stats.Mean(out)
		for i := range out {
			out[i] *= level / mean
		}
		return out
	}
	return AncillarySeries{
		TenMinSync:         mk(cfg.AncillaryMean*0.9, 0.8, 2.0),
		RegulationCapacity: mk(cfg.AncillaryMean*1.3, 1.2, 3.0),
		RegulationMovement: mk(cfg.AncillaryMean*0.8, 0.5, 1.5),
	}
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// rescale maps the slice affinely onto [lo, hi].
func rescale(vs []float64, lo, hi float64) {
	min, max := vs[0], vs[0]
	for _, v := range vs {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	span := max - min
	if span == 0 {
		for i := range vs {
			vs[i] = lo
		}
		return
	}
	for i := range vs {
		vs[i] = lo + (vs[i]-min)/span*(hi-lo)
	}
}
