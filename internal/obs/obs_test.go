package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solver_rounds_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("solver_rounds_total"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGaugeSetAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("welfare")
	g.Set(10)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8010 {
		t.Fatalf("gauge = %v, want 8010 (lost CAS updates)", got)
	}
}

func TestHistogramBucketsSumCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("load_kw", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4 (NaN must be dropped)", got)
	}
	if got := h.Sum(); got != 105 {
		t.Fatalf("sum = %v, want 105", got)
	}
	want := []uint64{1, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf
	for i, c := range h.BucketCounts() {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramRepairsBadBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("weird", []float64{3, 1, math.NaN(), 3, 5})
	if got := h.Bounds(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("bounds = %v, want [3 5]", got)
	}
}

func TestLabelIdentityOrderIndependent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", Label{"b", "2"}, Label{"a", "1"})
	b := r.Counter("x", Label{"a", "1"}, Label{"b", "2"})
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	c := r.Counter("x", Label{"a", "1"}, Label{"b", "3"})
	if a == c {
		t.Fatal("distinct label values collapsed into one metric")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c", []float64{1})
	var s *EventSink
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.Emit(EventSolverRound, "x", 0, 0, 0)
	if c.Value() != 0 || g.Value() != 0 || h.Sum() != 0 || h.Count() != 0 ||
		s.Emitted() != 0 || s.Snapshot() != nil || s.Cap() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual")
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"good_name:total": "good_name:total",
		"with-dash":       "with_dash",
		"1leading":        "_1leading",
		"":                "_",
		"세션.rounds":       "_______rounds", // 3-byte runes ×2 + '.' → 7 underscores
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeLabelName(t *testing.T) {
	if got := SanitizeLabelName("a:b"); got != "a_b" {
		t.Errorf("colon must be invalid in label names, got %q", got)
	}
	if got := SanitizeLabelName("__reserved"); got != "u__reserved" {
		t.Errorf("reserved __ prefix must be rewritten, got %q", got)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := EscapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escape = %q", got)
	}
	// UTF-8 passes through verbatim.
	if got := EscapeLabelValue("구간-7"); got != "구간-7" {
		t.Fatalf("UTF-8 must pass through, got %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rounds_total", Label{"engine", "parallel"}).Add(7)
	r.Help("rounds_total", "solver rounds")
	r.Gauge("welfare").Set(1.5)
	h := r.Histogram("delta", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP rounds_total solver rounds",
		"# TYPE rounds_total counter",
		`rounds_total{engine="parallel"} 7`,
		"# TYPE welfare gauge",
		"welfare 1.5",
		"# TYPE delta histogram",
		`delta_bucket{le="1"} 1`,
		`delta_bucket{le="10"} 2`,
		`delta_bucket{le="+Inf"} 3`,
		"delta_sum 55.5",
		"delta_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONDumpRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(math.Inf(1)) // must be neutralized, not emitted as Inf
	r.Histogram("h", []float64{2}).Observe(1)
	sink := NewEventSink(4)
	sink.Emit(EventFailover, "standby", -1, 2, 2)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r, sink); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(d.Metrics) != 3 || d.Emitted != 1 || len(d.Events) != 1 {
		t.Fatalf("dump shape = %d metrics, %d emitted, %d events", len(d.Metrics), d.Emitted, len(d.Events))
	}
	if d.Events[0].Kind != "failover" || d.Events[0].Actor != "standby" || d.Events[0].Epoch != 2 {
		t.Fatalf("event round-trip broke: %+v", d.Events[0])
	}
}

func TestEventSinkRingAndOrder(t *testing.T) {
	s := NewEventSink(3)
	for i := 1; i <= 5; i++ {
		s.Emit(EventSolverRound, "engine", int32(i), 1, float64(i))
	}
	if s.Emitted() != 5 {
		t.Fatalf("emitted = %d, want 5", s.Emitted())
	}
	evs := s.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if want := uint64(i + 3); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first order)", i, e.Seq, want)
		}
	}
	if got := evs[0].Actor(); got != "engine" {
		t.Fatalf("actor = %q", got)
	}
}

func TestEventSinkActorTruncation(t *testing.T) {
	s := NewEventSink(1)
	long := strings.Repeat("v", 40)
	s.Emit(EventQuote, long, 0, 0, 0)
	if got := s.Snapshot()[0].Actor(); got != strings.Repeat("v", 16) {
		t.Fatalf("actor = %q, want 16-byte truncation", got)
	}
}

func TestEventSinkConcurrentEmit(t *testing.T) {
	s := NewEventSink(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Emit(EventPropose, "agent", int32(i), int32(w), float64(i))
			}
		}(w)
	}
	wg.Wait()
	if s.Emitted() != 4000 {
		t.Fatalf("emitted = %d, want 4000", s.Emitted())
	}
	evs := s.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestHandlerServesAllEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	sink := NewEventSink(2)
	h := Handler(r, sink)

	for path, want := range map[string]string{
		"/metrics":      "hits 1",
		"/":             "hits 1",
		"/metrics.json": `"name": "hits"`,
		"/debug/vars":   "memstats",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s: status %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 10, 3)
	if len(lin) != 3 || lin[0] != 0 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1e-9, 10, 4)
	if len(exp) != 4 || exp[3] != 1e-6 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
	if got := ExponentialBuckets(-1, 0.5, 2); got[0] != 1 || got[1] != 2 {
		t.Fatalf("degenerate args not repaired: %v", got)
	}
}
