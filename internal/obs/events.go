package obs

import (
	"sync"
	"sync/atomic"
)

// EventKind names the structured span/event types the instrumented
// layers emit. The set is closed on purpose: events are fixed-size
// structs in a preallocated ring, so emission never allocates.
type EventKind uint8

const (
	// EventSolverRound is one best-response round of the equilibrium
	// engine (Value = max schedule delta this round).
	EventSolverRound EventKind = iota + 1
	// EventQuote is a coordinator quote broadcast (Value = fleet size).
	EventQuote
	// EventPropose is an agent proposal applied by the coordinator
	// (Value = proposed total kW).
	EventPropose
	// EventFailover is a fencing-epoch transition: takeover or resume
	// (Value = new epoch).
	EventFailover
	// EventDegraded marks an agent entering degraded-mode autonomy
	// (Value = local fallback kW).
	EventDegraded
	// EventReconnect marks an agent leaving degraded mode.
	EventReconnect
	// EventFeedDropout is a lost LBMP sample (Value = held price).
	EventFeedDropout
	// EventOutage is a section taken down (Value = section index).
	EventOutage
	// EventRestore is a section brought back (Value = section index).
	EventRestore
	// EventHour is one completed hour of the coupled day
	// (Round = hour, Value = delivered kWh).
	EventHour
)

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	switch k {
	case EventSolverRound:
		return "solver_round"
	case EventQuote:
		return "quote"
	case EventPropose:
		return "propose"
	case EventFailover:
		return "failover"
	case EventDegraded:
		return "degraded"
	case EventReconnect:
		return "reconnect"
	case EventFeedDropout:
		return "feed_dropout"
	case EventOutage:
		return "outage"
	case EventRestore:
		return "restore"
	case EventHour:
		return "hour"
	default:
		return "unknown"
	}
}

// Event is one ring slot. All fields are inline scalars (Actor is a
// fixed-size byte array, not a string) so writing a slot copies a
// flat struct and never touches the heap.
type Event struct {
	Seq   uint64    // global emission order, 1-based
	Kind  EventKind //
	Round int32     // solver round / hour / -1 when n/a
	Epoch int32     // fencing epoch / -1 when n/a
	Value float64   // kind-specific payload
	actor [16]byte  // truncated actor id
	alen  uint8
}

// Actor returns the emitting actor's id ("coordinator", a vehicle id,
// a feed name), truncated to the slot's fixed capacity.
func (e Event) Actor() string { return string(e.actor[:e.alen]) }

// EventSink is a fixed-capacity ring buffer of events. Emit is safe
// for concurrent use and lock-free on the hot path (a seq ticket
// picks the slot; a per-slot version stamp keeps Snapshot from
// reading torn slots). A nil *EventSink ignores all emissions — the
// nil-sink fast path the conformance harness proves allocation-free.
type EventSink struct {
	slots []Event
	vers  []atomic.Uint64 // even = stable, odd = being written
	seq   atomic.Uint64

	mu sync.Mutex // serializes Snapshot against itself only
}

// NewEventSink returns a ring holding the last capacity events.
func NewEventSink(capacity int) *EventSink {
	if capacity < 1 {
		capacity = 1
	}
	return &EventSink{
		slots: make([]Event, capacity),
		vers:  make([]atomic.Uint64, capacity),
	}
}

// Emit records one event. Concurrent emitters claim distinct slots via
// the seq ticket; a writer that laps a slower one simply overwrites —
// the ring keeps the *most recent* capacity events, which is the
// contract the chaos tests rely on.
func (s *EventSink) Emit(kind EventKind, actor string, round, epoch int32, value float64) {
	if s == nil {
		return
	}
	seq := s.seq.Add(1)
	i := int((seq - 1) % uint64(len(s.slots)))
	s.vers[i].Add(1) // odd: in progress
	ev := &s.slots[i]
	ev.Seq = seq
	ev.Kind = kind
	ev.Round = round
	ev.Epoch = epoch
	ev.Value = value
	n := copy(ev.actor[:], actor)
	ev.alen = uint8(n)
	s.vers[i].Add(1) // even: stable
}

// Emitted returns the total number of events ever emitted (including
// those that have rotated out of the ring).
func (s *EventSink) Emitted() uint64 {
	if s == nil {
		return 0
	}
	return s.seq.Load()
}

// Cap returns the ring capacity.
func (s *EventSink) Cap() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// Snapshot returns the retained events in emission order (oldest
// first). Slots caught mid-write are skipped rather than returned
// torn; under quiescence the snapshot is exact.
func (s *EventSink) Snapshot() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.slots))
	for i := range s.slots {
		v := s.vers[i].Load()
		if v == 0 || v%2 == 1 {
			continue // never written, or being written
		}
		ev := s.slots[i]
		if s.vers[i].Load() != v {
			continue // overwritten while copying
		}
		out = append(out, ev)
	}
	// Insertion sort by seq: the ring is near-ordered already and
	// capacities are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// CountKind returns how many retained events have the given kind.
func (s *EventSink) CountKind(kind EventKind) int {
	n := 0
	for _, e := range s.Snapshot() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
