package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"unicode/utf8"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// A sample line of the text format: name{labels} value, where the
	// quoted label values may contain anything except a raw unescaped
	// quote or newline.
	sampleLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$`)
)

// FuzzPromEncoder feeds arbitrary metric names, label names, and label
// values (including invalid UTF-8 and multi-byte section IDs) through
// registration and the Prometheus-text encoder, asserting the output
// stays inside the exposition grammar: sanitized names match the
// Prometheus alphabets, every non-comment line parses as a sample, and
// escaped label values round-trip.
func FuzzPromEncoder(f *testing.F) {
	f.Add("solver_rounds_total", "section", "12")
	f.Add("1bad-name", "le", `quote"back\slash`)
	f.Add("", "", "")
	f.Add("세션:rounds", "구간", "구간-7\nnewline")
	f.Add("a{b}", "__reserved", string([]byte{0xff, 0xfe}))
	f.Add("with:colon", "k", "v\\")

	f.Fuzz(func(t *testing.T, name, labelKey, labelValue string) {
		sn := SanitizeMetricName(name)
		if !metricNameRe.MatchString(sn) {
			t.Fatalf("SanitizeMetricName(%q) = %q escapes the metric-name alphabet", name, sn)
		}
		ln := SanitizeLabelName(labelKey)
		if !labelNameRe.MatchString(ln) {
			t.Fatalf("SanitizeLabelName(%q) = %q escapes the label-name alphabet", labelKey, ln)
		}
		if strings.HasPrefix(ln, "__") {
			t.Fatalf("SanitizeLabelName(%q) = %q kept the reserved __ prefix", labelKey, ln)
		}

		// Escaping must round-trip: unescape(escape(v)) == v.
		esc := EscapeLabelValue(labelValue)
		if strings.Contains(esc, "\n") {
			t.Fatalf("EscapeLabelValue(%q) leaked a raw newline", labelValue)
		}
		if got := unescapeLabelValue(esc); got != labelValue {
			t.Fatalf("escape round-trip: %q -> %q -> %q", labelValue, esc, got)
		}

		r := NewRegistry()
		r.Counter(name, Label{Key: labelKey, Value: labelValue}).Add(1)
		r.Gauge(name+"_g", Label{Key: labelKey, Value: labelValue}).Set(2.5)
		r.Histogram(name+"_h", []float64{1, 2}, Label{Key: labelKey, Value: labelValue}).Observe(1.5)
		r.Help(name, "fuzzed help\nwith newline")

		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		out := buf.String()
		if len(out) == 0 || !strings.HasSuffix(out, "\n") {
			t.Fatalf("exposition must be newline-terminated, got %q", out)
		}
		for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			if strings.HasPrefix(line, "# ") {
				continue
			}
			// Label values may legally contain '{'/'}' — strip the quoted
			// spans before matching the structural grammar.
			if !sampleLineRe.MatchString(stripQuoted(line)) {
				t.Fatalf("sample line %q does not parse", line)
			}
		}
		// The exposition must stay valid UTF-8 whenever the inputs were.
		if utf8.ValidString(name) && utf8.ValidString(labelKey) && utf8.ValidString(labelValue) &&
			!utf8.ValidString(out) {
			t.Fatalf("valid UTF-8 in, invalid UTF-8 out:\n%q", out)
		}
	})
}

// unescapeLabelValue inverts EscapeLabelValue.
func unescapeLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case '"':
				b.WriteByte('"')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// stripQuoted replaces the contents of quoted label values with 'q' so
// the structural regexp never trips on payload bytes.
func stripQuoted(line string) string {
	var b strings.Builder
	in := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if in {
			if c == '\\' {
				i++
				continue
			}
			if c == '"' {
				in = false
				b.WriteByte('"')
			}
			continue
		}
		if c == '"' {
			in = true
			b.WriteString(`"q`)
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}
