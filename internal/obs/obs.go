// Package obs is the repo's observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with fixed bucket
// layouts) and a ring-buffered structured event sink, designed around
// two contracts the conformance suite enforces:
//
//   - Free: a nil metric, nil bundle, or nil sink is a complete no-op —
//     every mutating method is nil-receiver safe — and an armed metric
//     performs only atomic writes on the hot path, so instrumented
//     steady-state solver turns allocate zero bytes (asserted with
//     testing.AllocsPerRun next to the engine's own zero-alloc guards)
//     and never perturb the instrumented computation (golden files stay
//     byte-identical with metrics on).
//
//   - Faithful: exported values reconcile exactly with ground truth —
//     rounds counters match solver results, histogram sums match
//     scheduled mass, payment gauges match core.Payment output — which
//     the reconciliation property suites assert across the seeds of the
//     differential suite.
//
// Export is pull-based: WritePrometheus emits the Prometheus text
// exposition format (names and labels sanitized and escaped; see
// prom.go), WriteJSON emits a machine-readable dump for the commands'
// -metrics-out flags, and Handler serves both over HTTP next to the
// pprof hooks on the long-running commands.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically non-decreasing integer metric. The zero
// value is ready to use; a nil *Counter ignores all writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count; zero on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move both ways. The zero value is
// ready to use; a nil *Gauge ignores all writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge with a CAS loop, so concurrent adders never
// lose updates (the degraded-episode accounting relies on this).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value; zero on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric: observation counts
// per upper bound plus an exact running sum and count. Bucket bounds
// are fixed at registration — the layout is part of the metric's
// identity, so dashboards and the reconciliation tests can rely on it.
// A nil *Histogram ignores all writes.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Linear scan: bucket layouts are small and fixed, and the scan is
	// branch-predictable — cheaper than binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the exact sum of all observations; zero on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations; zero on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bounds returns the bucket upper bounds (the +Inf bucket is implicit).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket observation counts, one entry
// per bound plus the final +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, … — the
// layout for bounded quantities like per-section loads.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds start, start·factor, … —
// the layout for heavy-tailed quantities like round deltas and
// latencies.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	if start <= 0 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string // sanitized
	help   string
	labels []Label // sanitized keys, raw values (escaped at encode time)
	kind   metricKind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// id is the registry deduplication key: sanitized name plus the
// canonical label encoding.
func (m *metric) id() string {
	if len(m.labels) == 0 {
		return m.name
	}
	s := m.name + "{"
	for i, l := range m.labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + l.Value
	}
	return s + "}"
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram)
// is get-or-create and safe for concurrent use; the instruments it
// returns are lock-free. A nil *Registry returns nil instruments from
// every getter, which in turn ignore all writes — so "metrics off" is
// a nil registry threaded all the way down, with no branches at the
// call sites beyond the instruments' own nil checks.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order, for stable export
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the existing metric under the sanitized identity, or
// registers the provided one.
func (r *Registry) lookup(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := m.id()
	if got, ok := r.metrics[id]; ok {
		return got
	}
	r.metrics[id] = m
	r.order = append(r.order, id)
	return m
}

// sanitizeLabels returns the label set with sanitized keys, sorted by
// key so registration order never changes a metric's identity.
func sanitizeLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Key: SanitizeLabelName(l.Key), Value: l.Value}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns the counter registered under name+labels, creating
// it on first use. Conflicting kinds under one identity panic: that is
// a programming error, not an operational condition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(&metric{
		name:    SanitizeMetricName(name),
		labels:  sanitizeLabels(labels),
		kind:    kindCounter,
		counter: &Counter{},
	})
	if m.kind != kindCounter {
		panic(fmt.Sprintf("obs: %s already registered with a different kind", name))
	}
	return m.counter
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(&metric{
		name:   SanitizeMetricName(name),
		labels: sanitizeLabels(labels),
		kind:   kindGauge,
		gauge:  &Gauge{},
	})
	if m.kind != kindGauge {
		panic(fmt.Sprintf("obs: %s already registered with a different kind", name))
	}
	return m.gauge
}

// Histogram returns the histogram registered under name+labels with
// the given bucket bounds. The bounds are fixed by whichever call
// registers first; they must be strictly increasing (violations are
// repaired by dropping out-of-order bounds rather than panicking, so a
// fuzzed layout cannot take the registry down).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsNaN(b) {
			continue
		}
		if len(clean) > 0 && b <= clean[len(clean)-1] {
			continue
		}
		clean = append(clean, b)
	}
	h := &Histogram{bounds: clean, counts: make([]atomic.Uint64, len(clean)+1)}
	m := r.lookup(&metric{
		name:      SanitizeMetricName(name),
		labels:    sanitizeLabels(labels),
		kind:      kindHistogram,
		histogram: h,
	})
	if m.kind != kindHistogram {
		panic(fmt.Sprintf("obs: %s already registered with a different kind", name))
	}
	return m.histogram
}

// Help attaches a help string to every metric sharing the (sanitized)
// name; shown as # HELP in the Prometheus exposition.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	name = SanitizeMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.name == name {
			m.help = help
		}
	}
}

// snapshot returns the registered metrics in registration order.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.metrics[id])
	}
	return out
}
