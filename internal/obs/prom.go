package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// SanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*. Every invalid byte
// becomes '_' (so distinct UTF-8 inputs may collide — callers that
// need to preserve identity should carry the raw value in a label,
// where it is escaped rather than rewritten). An empty or
// digit-leading result is prefixed with '_'.
func SanitizeMetricName(name string) string {
	return sanitize(name, true)
}

// SanitizeLabelName maps an arbitrary string onto the label-name
// alphabet [a-zA-Z_][a-zA-Z0-9_]*. Leading "__" is reserved by
// Prometheus, so it is rewritten to "u__".
func SanitizeLabelName(name string) string {
	s := sanitize(name, false)
	if strings.HasPrefix(s, "__") {
		s = "u" + s
	}
	return s
}

// sanitize is the shared alphabet filter; colons are legal only in
// metric names.
func sanitize(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	valid := func(b byte, first bool) bool {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
			return true
		case b == ':':
			return allowColon
		case b >= '0' && b <= '9':
			return !first
		}
		return false
	}
	clean := true
	for i := 0; i < len(name); i++ {
		if !valid(name[i], i == 0) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		if valid(name[i], b.Len() == 0) {
			b.WriteByte(name[i])
		} else if b.Len() == 0 && name[i] >= '0' && name[i] <= '9' {
			// A leading digit is valid later; keep it behind a '_'.
			b.WriteByte('_')
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the text exposition
// format: backslash, double-quote, and newline are escaped; all other
// bytes (including multi-byte UTF-8 such as section IDs) pass
// through verbatim.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for a label set plus optional extra
// pairs (used for histogram `le`); empty sets render as "".
func labelString(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	write := func(l Label) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	for _, l := range labels {
		write(l)
	}
	for _, l := range extra {
		write(l)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): # HELP/# TYPE headers once
// per metric family, then one sample line per label set, with
// histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	metrics := r.snapshot()
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typeString(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, labelString(m.labels), m.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, labelString(m.labels), formatValue(m.gauge.Value()))
		case kindHistogram:
			h := m.histogram
			bounds := h.Bounds()
			counts := h.BucketCounts()
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(bounds) {
					le = formatValue(bounds[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					m.name, labelString(m.labels, Label{Key: "le", Value: le}), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.name, labelString(m.labels), formatValue(h.Sum()))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.name, labelString(m.labels), h.Count())
		}
	}
	return bw.Flush()
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// jsonMetric is one entry of the -metrics-out dump.
type jsonMetric struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`   // counter/gauge
	Sum     *float64          `json:"sum,omitempty"`     // histogram
	Count   *uint64           `json:"count,omitempty"`   // histogram
	Bounds  []float64         `json:"bounds,omitempty"`  // histogram
	Buckets []uint64          `json:"buckets,omitempty"` // histogram, non-cumulative
}

// jsonEvent is one entry of the events array in the dump.
type jsonEvent struct {
	Seq   uint64  `json:"seq"`
	Kind  string  `json:"kind"`
	Actor string  `json:"actor,omitempty"`
	Round int32   `json:"round"`
	Epoch int32   `json:"epoch"`
	Value float64 `json:"value"`
}

// Dump is the -metrics-out JSON document: the full metric state plus
// (optionally) the retained tail of the event ring.
type Dump struct {
	Metrics []jsonMetric `json:"metrics"`
	Events  []jsonEvent  `json:"events,omitempty"`
	Emitted uint64       `json:"events_emitted,omitempty"`
}

// BuildDump snapshots the registry (and sink, which may be nil) into
// a Dump ready for json.Marshal.
func BuildDump(r *Registry, sink *EventSink) Dump {
	var d Dump
	for _, m := range r.snapshot() {
		jm := jsonMetric{Name: m.name, Kind: typeString(m.kind)}
		if len(m.labels) > 0 {
			jm.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				jm.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			v := float64(m.counter.Value())
			jm.Value = &v
		case kindGauge:
			v := m.gauge.Value()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0 // JSON has no NaN/Inf; dumps must stay parseable
			}
			jm.Value = &v
		case kindHistogram:
			s, c := m.histogram.Sum(), m.histogram.Count()
			jm.Sum = &s
			jm.Count = &c
			jm.Bounds = m.histogram.Bounds()
			jm.Buckets = m.histogram.BucketCounts()
		}
		d.Metrics = append(d.Metrics, jm)
	}
	sort.Slice(d.Metrics, func(i, j int) bool {
		if d.Metrics[i].Name != d.Metrics[j].Name {
			return d.Metrics[i].Name < d.Metrics[j].Name
		}
		return fmt.Sprint(d.Metrics[i].Labels) < fmt.Sprint(d.Metrics[j].Labels)
	})
	if sink != nil {
		d.Emitted = sink.Emitted()
		for _, e := range sink.Snapshot() {
			d.Events = append(d.Events, jsonEvent{
				Seq: e.Seq, Kind: e.Kind.String(), Actor: e.Actor(),
				Round: e.Round, Epoch: e.Epoch, Value: e.Value,
			})
		}
	}
	return d
}

// WriteJSON writes the indented -metrics-out document.
func WriteJSON(w io.Writer, r *Registry, sink *EventSink) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildDump(r, sink))
}

// Handler serves the registry over HTTP: "/metrics" (and "/") in
// Prometheus text format, "/metrics.json" as the JSON dump, and
// "/debug/vars" via the process expvar handler. Mount it next to
// net/http/pprof on long-running commands.
func Handler(r *Registry, sink *EventSink) http.Handler {
	mux := http.NewServeMux()
	prom := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}
	mux.HandleFunc("/metrics", prom)
	mux.HandleFunc("/", prom)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, r, sink)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
