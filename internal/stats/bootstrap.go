package stats

import (
	"fmt"
	"math/rand"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Mean  float64
	Lower float64
	Upper float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lower && v <= c.Upper }

func (c CI) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]", c.Mean, c.Lower, c.Upper)
}

// BootstrapMeanCI returns a percentile-bootstrap confidence interval
// for the mean of samples at the given confidence level (e.g. 0.95),
// using resamples bootstrap draws from the provided RNG. The paper's
// Fig. 5(d)/6(d) averages 50 runs; the harness attaches these
// intervals so the averaged trajectories carry their uncertainty.
func BootstrapMeanCI(r *rand.Rand, samples []float64, confidence float64, resamples int) (CI, error) {
	if len(samples) == 0 {
		return CI{}, fmt.Errorf("stats: bootstrap needs samples")
	}
	if confidence <= 0 || confidence >= 1 {
		return CI{}, fmt.Errorf("stats: confidence %v outside (0, 1)", confidence)
	}
	if resamples < 10 {
		resamples = 1000
	}
	point := Mean(samples)
	if len(samples) == 1 {
		return CI{Mean: point, Lower: point, Upper: point}, nil
	}
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		var sum float64
		for i := 0; i < len(samples); i++ {
			sum += samples[r.Intn(len(samples))]
		}
		means[b] = sum / float64(len(samples))
	}
	alpha := (1 - confidence) / 2
	return CI{
		Mean:  point,
		Lower: Quantile(means, alpha),
		Upper: Quantile(means, 1-alpha),
	}, nil
}
