// Package stats provides the small statistical toolkit the simulator
// and the experiment harnesses share: descriptive summaries, time
// series with named points, histograms, and convergence detection for
// the iterative best-response game.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics computed online (Welford's
// algorithm), so callers can stream values without keeping them.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates v into the summary.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// AddAll incorporates every value in vs.
func (s *Summary) AddAll(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the minimum observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the sample variance (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CoefficientOfVariation returns StdDev/Mean, the load-imbalance
// metric used for the Fig. 5c/6c shape checks. It returns 0 when the
// mean is 0.
func (s *Summary) CoefficientOfVariation() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(s.mean)
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Mean returns the arithmetic mean of vs, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Sum returns the sum of vs.
func Sum(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum
}

// Quantile returns the q-quantile (0 <= q <= 1) of vs using linear
// interpolation between order statistics. It returns 0 for empty input
// and clamps q into [0, 1].
func Quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) for a
// non-negative allocation vector: 1 for perfectly equal shares, 1/n
// when one participant holds everything, 0 for empty or all-zero
// input.
// The index is scale-invariant, so inputs are normalized by their
// maximum before squaring — huge allocations cannot overflow.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max <= 0 || math.IsInf(max, 1) || math.IsNaN(max) {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 || math.IsNaN(x) {
			x = 0
		}
		x /= max
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Point is one (x, y) observation in a Series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, the unit of exchange between
// experiment harnesses and renderers. The zero value is usable.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the Y values in order.
func (s *Series) Ys() []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Xs returns the X values in order.
func (s *Series) Xs() []float64 {
	xs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
	}
	return xs
}

// YAt returns the Y value for the first point whose X equals x, and
// whether such a point exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// IsNonDecreasing reports whether the Y values never decrease by more
// than tol from one point to the next.
func (s *Series) IsNonDecreasing(tol float64) bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y-tol {
			return false
		}
	}
	return true
}

// IsNonIncreasing reports whether the Y values never increase by more
// than tol from one point to the next.
func (s *Series) IsNonIncreasing(tol float64) bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y > s.Points[i-1].Y+tol {
			return false
		}
	}
	return true
}

// Histogram counts observations into fixed-width bins over [lo, hi).
// Observations outside the range are counted in the edge bins.
type Histogram struct {
	lo, hi float64
	counts []int
	n      int
}

// NewHistogram returns a histogram with the given bounds and bin count.
// It returns an error if the bounds are inverted or bins < 1.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram bounds inverted: [%v, %v)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.n++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }
