package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.N(); got != 8 {
		t.Errorf("N = %d, want 8", got)
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("empty summary should report zeros")
	}
	s.Add(3.5)
	if s.Variance() != 0 {
		t.Error("single observation should have zero variance")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single observation min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Bound magnitude so the naive two-pass formula is stable.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vs = append(vs, v)
			}
		}
		if len(vs) < 2 {
			return true
		}
		var s Summary
		s.AddAll(vs)
		mean := Mean(vs)
		var m2 float64
		for _, v := range vs {
			m2 += (v - mean) * (v - mean)
		}
		wantVar := m2 / float64(len(vs)-1)
		scale := math.Max(1, wantVar)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Variance()-wantVar)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	var flat Summary
	flat.AddAll([]float64{10, 10, 10, 10})
	if got := flat.CoefficientOfVariation(); got != 0 {
		t.Errorf("CV of constant series = %v, want 0", got)
	}
	var skew Summary
	skew.AddAll([]float64{0, 0, 0, 40})
	if got := skew.CoefficientOfVariation(); got <= 1 {
		t.Errorf("CV of skewed series = %v, want > 1", got)
	}
	var zero Summary
	if got := zero.CoefficientOfVariation(); got != 0 {
		t.Errorf("CV of empty = %v, want 0", got)
	}
}

func TestMeanSum(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %v, want 4", got)
	}
}

func TestQuantile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, tt := range tests {
		if got := Quantile(vs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
	// Quantile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Quantile mutated input: %v", unsorted)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "equal shares", xs: []float64{5, 5, 5, 5}, want: 1},
		{name: "one holds all", xs: []float64{10, 0, 0, 0}, want: 0.25},
		{name: "empty", xs: nil, want: 0},
		{name: "all zero", xs: []float64{0, 0}, want: 0},
		{name: "negatives clamped", xs: []float64{-3, 4}, want: 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.xs); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("JainIndex = %v, want %v", got, tt.want)
			}
		})
	}
	// Bounds property: always in [0, 1] for finite input.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		got := JainIndex(xs)
		return got >= 0 && got <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("welfare")
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 20)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Ys(); got[0] != 10 || got[2] != 20 {
		t.Errorf("Ys = %v", got)
	}
	if got := s.Xs(); got[1] != 2 {
		t.Errorf("Xs = %v", got)
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) should not exist")
	}
	if !s.IsNonDecreasing(0) {
		t.Error("series should be non-decreasing")
	}
	if s.IsNonIncreasing(0) {
		t.Error("series should not be non-increasing")
	}
}

func TestSeriesMonotoneTolerance(t *testing.T) {
	s := NewSeries("noisy")
	s.Add(1, 10)
	s.Add(2, 9.9995)
	if !s.IsNonDecreasing(1e-3) {
		t.Error("tiny dip within tolerance should pass")
	}
	if s.IsNonDecreasing(1e-6) {
		t.Error("dip beyond tolerance should fail")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, 10, 15, -3} {
		h.Add(v)
	}
	counts := h.Counts()
	want := []int{3, 1, 1, 0, 3} // -3,0,1.9 | 2 | 5 | — | 9.99 plus 10,15 clamped
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if h.N() != 8 {
		t.Errorf("N = %d, want 8", h.N())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("bins=0 should error")
	}
	if _, err := NewHistogram(10, 0, 5); err == nil {
		t.Error("inverted bounds should error")
	}
	if _, err := NewHistogram(5, 5, 5); err == nil {
		t.Error("empty range should error")
	}
}

func TestConvergenceDetector(t *testing.T) {
	d := NewConvergenceDetector(1e-3, 3)
	seq := []float64{1, 0.1, 1e-4, 1e-4, 0.5, 1e-5, 1e-5, 1e-5}
	var converged []bool
	for _, v := range seq {
		converged = append(converged, d.Observe(v))
	}
	want := []bool{false, false, false, false, false, false, false, true}
	for i := range want {
		if converged[i] != want[i] {
			t.Errorf("step %d converged = %v, want %v", i, converged[i], want[i])
		}
	}
	if !d.Converged() {
		t.Error("detector should report converged")
	}
	if d.Observations() != len(seq) {
		t.Errorf("Observations = %d", d.Observations())
	}
	if d.Last() != 1e-5 {
		t.Errorf("Last = %v", d.Last())
	}
}

func TestConvergenceDetectorNaNResets(t *testing.T) {
	d := NewConvergenceDetector(1e-3, 2)
	d.Observe(1e-5)
	if d.Observe(math.NaN()) {
		t.Error("NaN must not converge")
	}
	if d.Observe(1e-5) {
		t.Error("streak should have reset after NaN")
	}
	if !d.Observe(1e-5) {
		t.Error("two clean observations after reset should converge")
	}
}

func TestConvergenceDetectorPatienceFloor(t *testing.T) {
	d := NewConvergenceDetector(1, 0)
	if !d.Observe(0.5) {
		t.Error("patience floor of 1 should converge on first quiet observation")
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 3}
	b := []float64{4, 0}
	if got := L2Distance(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := MaxAbsDiff(a, b); got != 4 {
		t.Errorf("Linf = %v, want 4", got)
	}
}

func TestDistancePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"L2":   func() { L2Distance([]float64{1}, []float64{1, 2}) },
		"Linf": func() { MaxAbsDiff([]float64{1}, []float64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("length mismatch did not panic")
				}
			}()
			fn()
		})
	}
}
