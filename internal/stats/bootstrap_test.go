package stats

import (
	"math"
	"testing"
)

func TestBootstrapMeanCIBasics(t *testing.T) {
	r := NewRand(8)
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = r.NormFloat64()*2 + 10
	}
	ci, err := BootstrapMeanCI(NewRand(9), samples, 0.95, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Mean-Mean(samples)) > 1e-12 {
		t.Errorf("point estimate %v != sample mean", ci.Mean)
	}
	if !(ci.Lower < ci.Mean && ci.Mean < ci.Upper) {
		t.Errorf("interval %v not ordered around the mean", ci)
	}
	// (No assertion that the interval covers the true mean: that holds
	// only with ~95% probability and would make the test flaky.)
	// Width should be roughly 2·1.96·σ/√n = 2·1.96·2/14.1 ≈ 0.55.
	width := ci.Upper - ci.Lower
	if width < 0.3 || width > 0.9 {
		t.Errorf("interval width %v far from the CLT prediction", width)
	}
}

func TestBootstrapMeanCINarrowsWithN(t *testing.T) {
	r := NewRand(4)
	big := make([]float64, 400)
	for i := range big {
		big[i] = r.Float64() * 10
	}
	small := big[:25]
	ciSmall, err := BootstrapMeanCI(NewRand(5), small, 0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ciBig, err := BootstrapMeanCI(NewRand(5), big, 0.95, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if (ciBig.Upper - ciBig.Lower) >= (ciSmall.Upper - ciSmall.Lower) {
		t.Errorf("more samples should narrow the interval: %v vs %v", ciBig, ciSmall)
	}
}

func TestBootstrapMeanCIEdges(t *testing.T) {
	if _, err := BootstrapMeanCI(NewRand(1), nil, 0.95, 100); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := BootstrapMeanCI(NewRand(1), []float64{1}, 1.5, 100); err == nil {
		t.Error("bad confidence accepted")
	}
	ci, err := BootstrapMeanCI(NewRand(1), []float64{7}, 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 7 || ci.Lower != 7 || ci.Upper != 7 {
		t.Errorf("single sample interval %v, want degenerate at 7", ci)
	}
}
