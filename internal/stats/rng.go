package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic *rand.Rand for the given seed. Every
// stochastic component in the repository takes one of these rather
// than using the global source, so experiments are reproducible and
// tests never race on shared RNG state.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TruncatedNormal draws from a normal distribution with the given mean
// and standard deviation, redrawing until the sample falls inside
// [lo, hi]. After 64 rejected draws it clamps, so pathological bounds
// cannot loop forever.
func TruncatedNormal(r *rand.Rand, mean, std, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := r.NormFloat64()*std + mean
		if v >= lo && v <= hi {
			return v
		}
	}
	v := mean
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation above 30,
// which is accurate enough for traffic arrival counts.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := r.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// WeightedChoice returns an index drawn proportionally to weights. It
// returns -1 if weights is empty or sums to a non-positive value.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
