package stats

import "math"

// ConvergenceDetector decides when an iterative process has settled.
// It watches a scalar (for the game: the max change in any OLEV's
// request during one full update cycle) and reports convergence once
// the scalar stays below Tol for Patience consecutive observations.
//
// The zero value is not usable; construct with NewConvergenceDetector.
type ConvergenceDetector struct {
	tol      float64
	patience int
	streak   int
	last     float64
	seen     int
}

// NewConvergenceDetector returns a detector that declares convergence
// after patience consecutive observations below tol. patience values
// below 1 are treated as 1.
func NewConvergenceDetector(tol float64, patience int) *ConvergenceDetector {
	if patience < 1 {
		patience = 1
	}
	return &ConvergenceDetector{tol: tol, patience: patience}
}

// Observe feeds one scalar and reports whether the process has now
// converged. NaN observations reset the streak.
func (d *ConvergenceDetector) Observe(v float64) bool {
	d.seen++
	d.last = v
	if math.IsNaN(v) || math.Abs(v) >= d.tol {
		d.streak = 0
		return false
	}
	d.streak++
	return d.streak >= d.patience
}

// Converged reports whether the most recent Observe returned true.
func (d *ConvergenceDetector) Converged() bool { return d.streak >= d.patience }

// Last returns the most recently observed value.
func (d *ConvergenceDetector) Last() float64 { return d.last }

// Observations returns how many values have been observed.
func (d *ConvergenceDetector) Observations() int { return d.seen }

// L2Distance returns the Euclidean distance between two equal-length
// vectors. It panics if the lengths differ, since that is always a
// programming error in this codebase.
func L2Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: L2Distance length mismatch")
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxAbsDiff returns the L-infinity distance between two equal-length
// vectors. It panics if the lengths differ.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
