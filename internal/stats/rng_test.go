package stats

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := TruncatedNormal(r, 0.5, 0.2, 0.2, 0.9)
		if v < 0.2 || v > 0.9 {
			t.Fatalf("sample %v escaped [0.2, 0.9]", v)
		}
	}
}

func TestTruncatedNormalPathologicalBounds(t *testing.T) {
	r := NewRand(1)
	// Mean far outside a tiny interval: rejection will fail, clamp must apply.
	v := TruncatedNormal(r, 100, 0.001, 0, 1)
	if v != 1 {
		t.Errorf("expected clamp to 1, got %v", v)
	}
	v = TruncatedNormal(r, -100, 0.001, 0, 1)
	if v != 0 {
		t.Errorf("expected clamp to 0, got %v", v)
	}
}

func TestTruncatedNormalMean(t *testing.T) {
	r := NewRand(7)
	var s Summary
	for i := 0; i < 20000; i++ {
		s.Add(TruncatedNormal(r, 0.5, 0.1, 0, 1))
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", s.Mean())
	}
}

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		name string
		mean float64
	}{
		{name: "small mean", mean: 3},
		{name: "moderate mean", mean: 12},
		{name: "large mean uses normal approx", mean: 200},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewRand(11)
			var s Summary
			for i := 0; i < 20000; i++ {
				s.Add(float64(Poisson(r, tt.mean)))
			}
			if math.Abs(s.Mean()-tt.mean) > 0.05*tt.mean+0.2 {
				t.Errorf("mean = %v, want ~%v", s.Mean(), tt.mean)
			}
			// Poisson variance equals the mean.
			if math.Abs(s.Variance()-tt.mean) > 0.15*tt.mean+0.5 {
				t.Errorf("variance = %v, want ~%v", s.Variance(), tt.mean)
			}
		})
	}
}

func TestPoissonEdge(t *testing.T) {
	r := NewRand(1)
	if got := Poisson(r, 0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := Poisson(r, -5); got != 0 {
		t.Errorf("Poisson(-5) = %d", got)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRand(3)
	weights := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(weights))
	const draws = 50000
	for i := 0; i < draws; i++ {
		idx := WeightedChoice(r, weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight bins drawn: %v", counts)
	}
	for i, want := range []float64{0, 0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("bin %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	r := NewRand(3)
	if got := WeightedChoice(r, nil); got != -1 {
		t.Errorf("empty weights = %d, want -1", got)
	}
	if got := WeightedChoice(r, []float64{0, 0}); got != -1 {
		t.Errorf("all-zero weights = %d, want -1", got)
	}
	if got := WeightedChoice(r, []float64{-1, -2}); got != -1 {
		t.Errorf("negative weights = %d, want -1", got)
	}
}
