package pricing

import (
	"testing"

	"olevgrid/internal/units"
)

func TestBuildFleetHeterogeneousVelocities(t *testing.T) {
	_, players, err := BuildFleet(FleetConfig{
		N:              30,
		Velocity:       units.MPH(60),
		VelocityStdMPS: 3,
		SectionLength:  units.Meters(15),
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var distinct int
	seen := map[float64]bool{}
	for _, p := range players {
		if p.MaxSectionDrawKW <= 0 {
			t.Fatalf("player %s missing Eq. (3) draw cap", p.ID)
		}
		if !seen[p.MaxSectionDrawKW] {
			seen[p.MaxSectionDrawKW] = true
			distinct++
		}
	}
	if distinct < 10 {
		t.Errorf("only %d distinct draw caps; velocities not heterogeneous", distinct)
	}
}

func TestBuildFleetHeterogeneousValidation(t *testing.T) {
	if _, _, err := BuildFleet(FleetConfig{
		N: 5, Velocity: units.MPH(60), VelocityStdMPS: 3,
	}); err == nil {
		t.Error("jitter without section length accepted")
	}
	if _, _, err := BuildFleet(FleetConfig{
		N: 5, Velocity: units.MPH(60), VelocityStdMPS: -1, SectionLength: units.Meters(15),
	}); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestHeterogeneousFleetGameRespectsCaps(t *testing.T) {
	_, players, err := BuildFleet(FleetConfig{
		N:              15,
		Velocity:       units.MPH(60),
		VelocityStdMPS: 4,
		SectionLength:  units.Meters(15),
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Nonlinear{}.Run(Scenario{
		Players:        players,
		NumSections:    10,
		LineCapacityKW: LineCapacityKW(units.Meters(15), units.MPH(60)),
		Eta:            0.9,
		BetaPerMWh:     20,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Error("heterogeneous game did not converge")
	}
	// Everyone's total is bounded by its allocatable C·drawCap.
	for i, p := range players {
		_ = i
		if maxAlloc := 10 * p.MaxSectionDrawKW; p.MaxPowerKW > maxAlloc {
			// The cap can bind; nothing to assert per-player here
			// beyond convergence — the core tests check per-draw
			// feasibility directly.
			continue
		}
	}
	if out.TotalPowerKW <= 0 {
		t.Error("no power scheduled")
	}
}
