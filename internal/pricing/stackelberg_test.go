package pricing

import (
	"math"
	"testing"

	"olevgrid/internal/core"
	"olevgrid/internal/units"
)

func TestStackelbergBasics(t *testing.T) {
	s := testScenario(t, 20, 30, 0.9)
	out, err := Stackelberg{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Policy != "stackelberg" {
		t.Errorf("policy = %q", out.Policy)
	}
	if out.TotalPowerKW <= 0 || out.TotalPaymentPerHour <= 0 {
		t.Errorf("degenerate outcome %+v", out)
	}
	// Uniform spread across sections.
	if out.LoadImbalance() > 1e-12 {
		t.Errorf("CV = %v, want 0 (even tie-break)", out.LoadImbalance())
	}
}

func TestStackelbergRevenueOptimality(t *testing.T) {
	// No other uniform price may beat the chosen one by more than the
	// grid resolution allows.
	s := testScenario(t, 25, 20, 0.9)
	out, err := Stackelberg{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Stackelberg{}.RevenueCurve(s, 512)
	if err != nil {
		t.Fatal(err)
	}
	var maxRevenue float64
	for _, p := range curve.Points {
		if p.Y > maxRevenue {
			maxRevenue = p.Y
		}
	}
	if out.TotalPaymentPerHour < maxRevenue*0.999 {
		t.Errorf("chosen revenue %v below curve max %v", out.TotalPaymentPerHour, maxRevenue)
	}
}

func TestStackelbergOvershootsCapacityAndLosesWelfare(t *testing.T) {
	// The instructive contrast: with unit-elastic (log) demand the
	// revenue maximizer prices so every follower demands its ceiling,
	// overshooting the safe capacity the nonlinear policy respects —
	// and paying for it in social welfare under the same cost Z.
	s := testScenario(t, 30, 25, 0.9)
	stack, err := Stackelberg{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if stack.CongestionDegree <= s.Eta {
		t.Errorf("stackelberg congestion %v should exceed eta %v (no congestion control)",
			stack.CongestionDegree, s.Eta)
	}
	if nl.CongestionDegree > s.Eta+0.05 {
		t.Errorf("nonlinear congestion %v should respect eta %v", nl.CongestionDegree, s.Eta)
	}
	if stack.Welfare >= nl.Welfare {
		t.Errorf("revenue maximizer beat the welfare maximizer: %v >= %v",
			stack.Welfare, nl.Welfare)
	}
}

func TestStackelbergRevenueCurveSinglePeaked(t *testing.T) {
	s := testScenario(t, 15, 10, 0.9)
	curve, err := Stackelberg{}.RevenueCurve(s, 128)
	if err != nil {
		t.Fatal(err)
	}
	if curve.Len() != 128 {
		t.Fatalf("curve has %d points", curve.Len())
	}
	if !revenueConcavityCheck(curve) {
		t.Error("revenue curve is not single-peaked for log satisfaction")
	}
}

func TestStackelbergValidation(t *testing.T) {
	bad := testScenario(t, 5, 5, 0.9)
	bad.BetaPerMWh = 0
	if _, err := (Stackelberg{}).Run(bad); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := (Stackelberg{}).RevenueCurve(bad, 10); err == nil {
		t.Error("RevenueCurve accepted invalid scenario")
	}
}

func TestStackelbergClosedFormSinglePlayer(t *testing.T) {
	// One log-satisfaction player with a high ceiling: revenue
	// q·(w/q − 1) = w − q is maximized at the smallest price, so the
	// leader picks the bottom of its grid and the follower demands
	// nearly pmax when pmax binds first.
	sat, err := core.NewLogSatisfaction(1)
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{
		Players:        []core.Player{{ID: "solo", MaxPowerKW: 10, Satisfaction: sat}},
		NumSections:    4,
		LineCapacityKW: LineCapacityKW(units.Meters(15), units.MPH(60)),
		Eta:            0.9,
		BetaPerMWh:     20,
	}
	out, err := Stackelberg{PriceGridPoints: 1000}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// With pmax = 10 the demand is 10 for q <= 1/11; revenue 10q is
	// increasing there, then w − q decreasing after. Optimal q = 1/11.
	wantQ := 1.0 / 11
	if math.Abs(out.UnitPaymentPerMWh-wantQ*1000) > 5 {
		t.Errorf("unit price = %v $/MWh, want ~%v", out.UnitPaymentPerMWh, wantQ*1000)
	}
	if math.Abs(out.TotalPowerKW-10) > 0.2 {
		t.Errorf("demand = %v, want ~10", out.TotalPowerKW)
	}
}
