package pricing

import (
	"fmt"

	"olevgrid/internal/core"
)

// DefaultAlpha is the paper's α = 0.875, chosen "based on the profit
// the smart grid wants to make".
const DefaultAlpha = 0.875

// DefaultOverloadKappaFactor scales the overload penalty's κ as a
// multiple of β. It trades congestion-overshoot against best-response
// conditioning: a stiffer wall pins Σp closer to ηP_line but makes the
// marginal price nearly a step, which slows the equalization of
// allocations across OLEVs (the dynamics degenerate toward
// order-dependent capacity grabbing). 500× keeps the equilibrium
// within a few percent of the safety factor while the asynchronous
// updates still converge to the equal-marginal optimum.
const DefaultOverloadKappaFactor = 500

// Nonlinear is the paper's pricing policy.
type Nonlinear struct {
	// Alpha is α; zero means DefaultAlpha.
	Alpha float64
	// OverloadKappaFactor is κ/β; zero means the default.
	OverloadKappaFactor float64
	// Order selects the update order; zero means random, the
	// "randomly chosen OLEV" of Section IV-D.
	Order core.UpdateOrder
}

var _ Policy = Nonlinear{}

// Name implements Policy.
func (Nonlinear) Name() string { return "nonlinear" }

// CostFunction builds the section cost Z = V + A the policy induces.
// The charging cost V is normalized by the *full* line capacity
// P_line, so the unit price tracks the paper's congestion degree
// P_c/P_line; the overload penalty A guards the *usable* capacity
// ηP_line (Eq. 4).
func (p Nonlinear) CostFunction(betaPerMWh, lineCapacityKW, eta float64) (core.CostFunction, error) {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	kf := p.OverloadKappaFactor
	if kf == 0 {
		kf = DefaultOverloadKappaFactor
	}
	if eta <= 0 || eta > 1 {
		return nil, fmt.Errorf("pricing: eta %v outside (0, 1]", eta)
	}
	betaPerKWh := betaPerMWh / 1000
	v, err := core.NewQuadraticCharging(betaPerKWh, alpha, lineCapacityKW)
	if err != nil {
		return nil, err
	}
	return core.SectionCost{
		Charging: v,
		Overload: core.OverloadPenalty{Kappa: kf * betaPerKWh, Capacity: eta * lineCapacityKW},
	}, nil
}

// Run implements Policy: build the core game and drive the
// asynchronous best-response dynamics to convergence.
func (p Nonlinear) Run(s Scenario) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	if idx := s.liveIndices(); idx != nil {
		return p.runCompacted(s, idx)
	}
	if s.Solver == SolverMeanField {
		return p.runMeanField(s)
	}
	cost, err := p.CostFunction(s.BetaPerMWh, s.LineCapacityKW, s.Eta)
	if err != nil {
		return Outcome{}, err
	}
	game, err := core.NewGame(core.Config{
		Players:         s.Players,
		NumSections:     s.NumSections,
		LineCapacityKW:  s.LineCapacityKW,
		Eta:             s.Eta,
		Cost:            cost,
		InitialSchedule: s.InitialSchedule,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("pricing: nonlinear game: %w", err)
	}
	var res core.Result
	var rounds, degraded int
	if s.Parallelism > 0 {
		// Round-engine path: MaxUpdates is a per-player budget in the
		// asynchronous dynamics, so it maps onto whole fleet rounds.
		maxRounds := 0
		if s.MaxUpdates > 0 {
			maxRounds = (s.MaxUpdates + len(s.Players) - 1) / len(s.Players)
		}
		order := p.Order
		if order == 0 {
			order = core.OrderRandom
		}
		pres := game.RunParallel(core.ParallelOptions{
			MaxRounds:   maxRounds,
			Tolerance:   s.Tolerance,
			Parallelism: s.Parallelism,
			Order:       order,
			Seed:        s.Seed,
			Metrics:     s.Metrics,
			OnRound: func(round int, g *core.Game) {
				if s.OnUpdate != nil {
					s.OnUpdate(round*g.NumPlayers(), g)
				}
			},
		})
		res = core.Result{
			Updates:    pres.Updates,
			Converged:  pres.Converged,
			Welfare:    pres.Welfare,
			Congestion: pres.Congestion,
		}
		rounds, degraded = pres.Rounds, pres.Replayed
	} else {
		order := p.Order
		if order == 0 {
			order = core.OrderRandom
		}
		res = game.Run(core.RunOptions{
			MaxUpdates: s.MaxUpdates,
			Tolerance:  s.Tolerance,
			Order:      order,
			Seed:       s.Seed,
			OnUpdate:   s.OnUpdate,
		})
		rounds = (res.Updates + len(s.Players) - 1) / len(s.Players)
	}
	playerTotals := make([]float64, game.NumPlayers())
	schedule := game.Schedule()
	for n := range playerTotals {
		playerTotals[n] = schedule.OLEVTotal(n)
	}
	return Outcome{
		Policy:              p.Name(),
		UnitPaymentPerMWh:   clampNonNegative(game.UnitPaymentPerMWh()),
		TotalPaymentPerHour: clampNonNegative(game.TotalPayment()),
		Welfare:             game.Welfare(),
		TotalPowerKW:        game.TotalPowerKW(),
		SectionTotalsKW:     game.SectionTotals(),
		PlayerTotalsKW:      playerTotals,
		CongestionDegree:    game.CongestionDegree(),
		CongestionHistory:   res.Congestion,
		WelfareHistory:      res.Welfare,
		Updates:             res.Updates,
		Rounds:              rounds,
		DegradedRounds:      degraded,
		Converged:           res.Converged,
		Schedule:            schedule,
	}, nil
}

// runCompacted solves a scenario with dead sections over the surviving
// ones only, then scatters the results back to full width with zeroed
// dead columns. The per-section economics are untouched — each
// survivor keeps its own P_line and ηP_line guard — so the compacted
// game is exactly the paper's game on a shorter roadway; only the
// congestion degree's denominator shrinks to the surviving capacity,
// which is the operationally meaningful reading during an outage.
func (p Nonlinear) runCompacted(s Scenario, liveIdx []int) (Outcome, error) {
	cs := s
	cs.DeadSections = nil
	cs.NumSections = len(liveIdx)
	if s.InitialSchedule != nil {
		// A full-width warm start is re-projected onto the surviving
		// sections: the row totals carry over (the demand guess), the
		// shape is rebuilt by the first best responses.
		ids := make([]string, len(s.Players))
		for i, pl := range s.Players {
			ids[i] = pl.ID
		}
		proj, err := core.ProjectSchedule(s.InitialSchedule, ids, s.Players, cs.NumSections)
		if err != nil {
			return Outcome{}, fmt.Errorf("pricing: project warm start off dead sections: %w", err)
		}
		cs.InitialSchedule = proj
	}
	out, err := p.Run(cs)
	if err != nil {
		return out, err
	}
	full := make([]float64, s.NumSections)
	for i, j := range liveIdx {
		full[j] = out.SectionTotalsKW[i]
	}
	out.SectionTotalsKW = full
	if out.Schedule != nil {
		exp, err := core.NewSchedule(out.Schedule.NumOLEVs(), s.NumSections)
		if err != nil {
			return Outcome{}, err
		}
		for n := 0; n < out.Schedule.NumOLEVs(); n++ {
			for i, j := range liveIdx {
				exp.Set(n, j, out.Schedule.At(n, i))
			}
		}
		out.Schedule = exp
	}
	return out, nil
}
