package pricing

import (
	"math"
	"testing"

	"olevgrid/internal/core"
	"olevgrid/internal/units"
)

func testScenario(t *testing.T, n, c int, eta float64) Scenario {
	t.Helper()
	_, players, err := BuildFleet(FleetConfig{N: n, Velocity: units.MPH(60), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Players:        players,
		NumSections:    c,
		LineCapacityKW: LineCapacityKW(units.Meters(15), units.MPH(60)),
		Eta:            eta,
		BetaPerMWh:     20,
		Seed:           1,
	}
}

func TestScenarioValidate(t *testing.T) {
	valid := testScenario(t, 5, 10, 0.9)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{name: "no players", mutate: func(s *Scenario) { s.Players = nil }},
		{name: "no sections", mutate: func(s *Scenario) { s.NumSections = 0 }},
		{name: "zero capacity", mutate: func(s *Scenario) { s.LineCapacityKW = 0 }},
		{name: "bad eta", mutate: func(s *Scenario) { s.Eta = 1.2 }},
		{name: "zero beta", mutate: func(s *Scenario) { s.BetaPerMWh = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := testScenario(t, 5, 10, 0.9)
			tt.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid scenario accepted")
			}
			// Both policies must surface the validation error.
			if _, err := (Nonlinear{}).Run(s); err == nil {
				t.Error("nonlinear ran an invalid scenario")
			}
			if _, err := (Linear{}).Run(s); err == nil {
				t.Error("linear ran an invalid scenario")
			}
		})
	}
}

func TestLineCapacityEquation1Bridge(t *testing.T) {
	// 0.399 kV · 240 A · 15 m / 26.8224 m/s ≈ 53.55 kW.
	got := LineCapacityKW(units.Meters(15), units.MPH(60))
	want := 0.399 * 240 * 15 / 26.8224
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LineCapacityKW = %v, want %v", got, want)
	}
	// Velocity inverse: 80 mph capacity is 60/80 of the 60 mph one.
	c80 := LineCapacityKW(units.Meters(15), units.MPH(80))
	if math.Abs(c80-got*60/80) > 1e-9 {
		t.Errorf("80mph capacity = %v, want %v", c80, got*60/80)
	}
	if LineCapacityKW(units.Meters(15), 0) != 0 {
		t.Error("zero velocity should yield zero capacity")
	}
}

func TestBuildFleet(t *testing.T) {
	vehicles, players, err := BuildFleet(FleetConfig{N: 20, Velocity: units.MPH(60), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(vehicles) != 20 || len(players) != 20 {
		t.Fatalf("fleet sizes %d/%d", len(vehicles), len(players))
	}
	ids := make(map[string]struct{})
	for i, p := range players {
		if _, dup := ids[p.ID]; dup {
			t.Errorf("duplicate ID %q", p.ID)
		}
		ids[p.ID] = struct{}{}
		if p.MaxPowerKW <= 0 || p.MaxPowerKW > 95.76+1e-9 {
			t.Errorf("player %d ceiling %v outside (0, P_max]", i, p.MaxPowerKW)
		}
		if math.Abs(p.MaxPowerKW-vehicles[i].PowerHeadroom().KW()) > 1e-12 {
			t.Errorf("player %d ceiling does not match vehicle headroom", i)
		}
	}
	// Determinism.
	_, again, err := BuildFleet(FleetConfig{N: 20, Velocity: units.MPH(60), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range players {
		if players[i].MaxPowerKW != again[i].MaxPowerKW {
			t.Fatal("same seed produced a different fleet")
		}
	}
	if _, _, err := BuildFleet(FleetConfig{N: 0}); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestNonlinearRunBasics(t *testing.T) {
	s := testScenario(t, 20, 30, 0.9)
	out, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Policy != "nonlinear" {
		t.Errorf("policy = %q", out.Policy)
	}
	if !out.Converged {
		t.Error("nonlinear dynamics did not converge")
	}
	if out.TotalPowerKW <= 0 {
		t.Error("no power scheduled")
	}
	if out.UnitPaymentPerMWh <= 0 {
		t.Error("no payment collected")
	}
	if len(out.SectionTotalsKW) != 30 {
		t.Errorf("section totals length %d", len(out.SectionTotalsKW))
	}
	if len(out.CongestionHistory) != out.Updates || len(out.WelfareHistory) != out.Updates {
		t.Error("history lengths disagree with update count")
	}
	// Feasibility: every section within the hard cap plus the small
	// overload the soft penalty permits.
	cap := s.Eta * s.LineCapacityKW
	for c, load := range out.SectionTotalsKW {
		if load > cap*1.10 {
			t.Errorf("section %d load %v far above capacity %v", c, load, cap)
		}
	}
}

func TestNonlinearPaymentRisesWithCongestion(t *testing.T) {
	// The defining property of the policy (Fig. 5a): unit payment
	// strictly increases with the realized congestion degree. Each
	// congestion level is realized the way the sweep harness does it:
	// a demand level whose interior equilibrium sits at that degree.
	lineCap := LineCapacityKW(units.Meters(15), units.MPH(60))
	const n, c = 50, 20
	var prev float64
	for i, x := range []float64{0.2, 0.5, 0.9} {
		w, err := CongestionTargetWeight(Nonlinear{}, 20, lineCap, c, n, x)
		if err != nil {
			t.Fatal(err)
		}
		_, players, err := BuildFleet(FleetConfig{N: n, Velocity: units.MPH(60), SatisfactionWeight: w, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Nonlinear{}.Run(Scenario{
			Players: players, NumSections: c, LineCapacityKW: lineCap,
			Eta: 1.0, BetaPerMWh: 20, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.CongestionDegree-x) > 0.15*x {
			t.Errorf("realized congestion %v far from target %v", out.CongestionDegree, x)
		}
		if i > 0 && out.UnitPaymentPerMWh <= prev {
			t.Errorf("unit payment at congestion %v (%v) not above previous (%v)",
				x, out.UnitPaymentPerMWh, prev)
		}
		prev = out.UnitPaymentPerMWh
	}
}

func TestCongestionTargetWeightRealizesTarget(t *testing.T) {
	lineCap := LineCapacityKW(units.Meters(15), units.MPH(60))
	for _, tt := range []struct{ x float64 }{{0.1}, {0.4}, {0.8}} {
		w, err := CongestionTargetWeight(Nonlinear{}, 20, lineCap, 10, 25, tt.x)
		if err != nil {
			t.Fatal(err)
		}
		if w <= 0 {
			t.Fatalf("weight %v for target %v", w, tt.x)
		}
		_, players, err := BuildFleet(FleetConfig{N: 25, Velocity: units.MPH(60), SatisfactionWeight: w, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Nonlinear{}.Run(Scenario{
			Players: players, NumSections: 10, LineCapacityKW: lineCap,
			Eta: 1.0, BetaPerMWh: 20, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.CongestionDegree-tt.x) > 0.1*tt.x+0.02 {
			t.Errorf("target %v realized %v", tt.x, out.CongestionDegree)
		}
	}
}

func TestCongestionTargetWeightValidation(t *testing.T) {
	lineCap := LineCapacityKW(units.Meters(15), units.MPH(60))
	if _, err := CongestionTargetWeight(Nonlinear{}, 20, lineCap, 10, 25, 0); err == nil {
		t.Error("x=0 accepted")
	}
	if _, err := CongestionTargetWeight(Nonlinear{}, 20, lineCap, 10, 25, 1.5); err == nil {
		t.Error("x>1 accepted")
	}
	if _, err := CongestionTargetWeight(Nonlinear{}, 20, lineCap, 0, 25, 0.5); err == nil {
		t.Error("zero sections accepted")
	}
	if _, err := CongestionTargetWeight(Nonlinear{}, 20, lineCap, 10, 0, 0.5); err == nil {
		t.Error("zero fleet accepted")
	}
}

func TestNonlinearWallPinsCongestionNearEta(t *testing.T) {
	// With demand well above capacity, the overload penalty holds the
	// equilibrium congestion within a few percent above η.
	_, players, err := BuildFleet(FleetConfig{N: 50, Velocity: units.MPH(60), SatisfactionWeight: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Nonlinear{}.Run(Scenario{
		Players: players, NumSections: 12,
		LineCapacityKW: LineCapacityKW(units.Meters(15), units.MPH(60)),
		Eta:            0.9, BetaPerMWh: 20, Seed: 1, MaxUpdates: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.CongestionDegree < 0.88 || out.CongestionDegree > 0.98 {
		t.Errorf("congestion %v not pinned near η=0.9", out.CongestionDegree)
	}
}

func TestLinearRunBasics(t *testing.T) {
	s := testScenario(t, 20, 30, 0.9)
	out, err := Linear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Policy != "linear" {
		t.Errorf("policy = %q", out.Policy)
	}
	if !out.Converged {
		t.Error("linear allocation is one-shot; must report converged")
	}
	if out.TotalPowerKW <= 0 {
		t.Error("no power allocated")
	}
	// Flat price: unit payment equals the scaled beta exactly.
	want := s.BetaPerMWh * DefaultLinearBetaScale
	if math.Abs(out.UnitPaymentPerMWh-want) > 1e-9 {
		t.Errorf("unit payment = %v, want flat %v", out.UnitPaymentPerMWh, want)
	}
	// Conservation: the section totals carry exactly the allocated
	// demand (no cap polices the baseline — that is its failure mode).
	var sum float64
	for _, load := range out.SectionTotalsKW {
		sum += load
	}
	if math.Abs(sum-out.TotalPowerKW) > 1e-9 {
		t.Errorf("section totals %v disagree with total power %v", sum, out.TotalPowerKW)
	}
}

func TestLinearSpreadControlsLumpiness(t *testing.T) {
	s := testScenario(t, 40, 100, 0.9)
	narrow, err := Linear{SpreadSections: 1}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Linear{SpreadSections: 100}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.LoadImbalance() <= wide.LoadImbalance() {
		t.Errorf("spread=1 CV %v should exceed spread=100 CV %v",
			narrow.LoadImbalance(), wide.LoadImbalance())
	}
	// Spreading across every section evenly is perfectly balanced.
	if wide.LoadImbalance() > 1e-9 {
		t.Errorf("full spread CV = %v, want 0", wide.LoadImbalance())
	}
}

func TestLinearPaymentFlatAcrossCongestion(t *testing.T) {
	var first float64
	for i, eta := range []float64{0.2, 0.5, 0.9} {
		out, err := Linear{}.Run(testScenario(t, 30, 20, eta))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out.UnitPaymentPerMWh
			continue
		}
		if math.Abs(out.UnitPaymentPerMWh-first) > 1e-9 {
			t.Errorf("linear unit payment moved with congestion: %v vs %v",
				out.UnitPaymentPerMWh, first)
		}
	}
}

func TestNonlinearBalancesLoadBetterThanLinear(t *testing.T) {
	// The Fig. 5(c)/6(c) claim, reduced to its scalar: the nonlinear
	// policy's per-section coefficient of variation is far below the
	// linear policy's. Capacity must exceed demand — when every
	// section saturates, both policies are trivially "balanced".
	s := testScenario(t, 40, 100, 0.9)
	nl, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Linear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if nl.LoadImbalance() >= lin.LoadImbalance() {
		t.Errorf("nonlinear CV %v not below linear CV %v",
			nl.LoadImbalance(), lin.LoadImbalance())
	}
	if nl.LoadImbalance() > 0.25 {
		t.Errorf("nonlinear CV %v unexpectedly high — load not balanced", nl.LoadImbalance())
	}
}

func TestFlatPriceDemandClosedForm(t *testing.T) {
	// For U = w·log(1+p), U'(p) = β ⇒ p = w/β − 1.
	u := core.LogSatisfaction{Weight: 1}
	got := flatPriceDemand(u, 0.02, 1000)
	if want := 49.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("demand = %v, want %v", got, want)
	}
	// Corners.
	if got := flatPriceDemand(u, 2, 1000); got != 0 {
		t.Errorf("price above U'(0): demand = %v, want 0", got)
	}
	if got := flatPriceDemand(u, 1e-6, 10); got != 10 {
		t.Errorf("cheap power: demand = %v, want pmax", got)
	}
	if got := flatPriceDemand(u, 0.02, 0); got != 0 {
		t.Errorf("pmax=0: demand = %v", got)
	}
}

func TestNonlinearSeedDeterminism(t *testing.T) {
	s := testScenario(t, 15, 10, 0.8)
	a, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Welfare != b.Welfare || a.Updates != b.Updates {
		t.Error("same scenario+seed produced different runs")
	}
}
