// Package pricing assembles the paper's two pricing policies into
// runnable scenarios:
//
//   - Nonlinear (Section IV): the quadratic congestion-reactive price
//     V(x) = β(α + x/cap)², driven through the core game's
//     asynchronous best-response dynamics; and
//   - Linear (the comparison baseline of Section V): a flat unit price
//     V(x) = βx that cannot react to congestion, with the
//     uncoordinated first-fit allocation that flat prices induce.
//
// Both take the same Scenario and produce the same Outcome, so the
// experiment harnesses can overlay them the way Figs. 5 and 6 do.
package pricing

import (
	"fmt"
	"math"

	"olevgrid/internal/core"
	"olevgrid/internal/stats"
	"olevgrid/internal/units"
)

// Scenario is one experimental condition: a fleet, an infrastructure,
// and a price level.
type Scenario struct {
	// Players is the OLEV fleet.
	Players []core.Player
	// NumSections is C.
	NumSections int
	// LineCapacityKW is P_line per section (Eq. 1 at the scenario's
	// velocity).
	LineCapacityKW float64
	// Eta is the safety factor η; the target congestion degree of the
	// evaluation sweeps.
	Eta float64
	// BetaPerMWh is β, the LBMP-derived unit price in $/MWh.
	BetaPerMWh float64
	// Seed drives every stochastic choice in the scenario.
	Seed int64
	// MaxUpdates bounds the best-response iteration; 0 means 1000·N.
	MaxUpdates int
	// Parallelism, when positive, routes the nonlinear policy through
	// the block-speculative round engine (core.RunParallel) with that
	// many proposal workers instead of the asynchronous single-player
	// dynamics. The engine's schedules are worker-count independent,
	// so any positive value yields the same outcome; the linear policy
	// is one-shot and ignores it.
	Parallelism int
	// Tolerance overrides the convergence tolerance of the nonlinear
	// dynamics; 0 means the solver default (1e-6). Warm-start
	// comparisons tighten it so cold and warm equilibria can be
	// compared entrywise.
	Tolerance float64
	// InitialSchedule, when non-nil, warm-starts the nonlinear game
	// from a prior equilibrium (see core.Config.InitialSchedule and
	// core.ProjectSchedule). The linear policy is one-shot and ignores
	// it. Dimensions must match Players × NumSections.
	InitialSchedule *core.Schedule
	// OnUpdate, if non-nil, observes the nonlinear game after every
	// update (ignored by the linear policy, whose allocation is
	// one-shot).
	OnUpdate func(update int, g *core.Game)
	// Metrics, if non-nil, receives solver telemetry from the round
	// engine when Parallelism routes the nonlinear dynamics through
	// it (see core.ParallelOptions.Metrics). The asynchronous path
	// and the linear policy ignore it; nil is the zero-overhead off
	// switch either way.
	Metrics *core.Metrics
	// DeadSections lists de-energized charging sections (a roadway
	// segment outage): the nonlinear game is solved over the surviving
	// sections only — the overload penalty keeps guarding ηP_line on
	// each survivor — and the reported section totals and schedule are
	// zero at the dead columns. Empty means all sections live. The
	// one-shot linear policy ignores it, like InitialSchedule.
	DeadSections []int
	// Solver selects the nonlinear policy's equilibrium engine: "" or
	// SolverExact runs the paper's per-player dynamics (the default
	// everywhere); SolverMeanField routes through the aggregated
	// population tier (internal/meanfield), which clusters the fleet,
	// solves a K-player macro game and disaggregates — the approximate
	// engine for fleets the exact tier cannot afford. The linear policy
	// is one-shot and ignores it. The mean-field path ignores
	// InitialSchedule and OnUpdate (the macro game cold-starts; its
	// rounds are population-level).
	Solver string
	// MeanFieldClusters is the population budget K for SolverMeanField;
	// 0 means meanfield.DefaultClusters. Ignored by the exact solver.
	MeanFieldClusters int
}

// Solver values for Scenario.Solver.
const (
	// SolverExact is the paper's per-player best-response engine —
	// equivalent to leaving Solver empty.
	SolverExact = "exact"
	// SolverMeanField is the aggregated population tier.
	SolverMeanField = "meanfield"
)

// Validate reports the first problem with the scenario.
func (s Scenario) Validate() error {
	if len(s.Players) == 0 {
		return fmt.Errorf("pricing: scenario needs players")
	}
	if s.NumSections < 1 {
		return fmt.Errorf("pricing: scenario needs sections, got %d", s.NumSections)
	}
	if s.LineCapacityKW <= 0 {
		return fmt.Errorf("pricing: line capacity %v must be positive", s.LineCapacityKW)
	}
	if s.Eta <= 0 || s.Eta > 1 {
		return fmt.Errorf("pricing: eta %v outside (0, 1]", s.Eta)
	}
	if s.BetaPerMWh <= 0 {
		return fmt.Errorf("pricing: beta %v must be positive", s.BetaPerMWh)
	}
	seen := make(map[int]bool, len(s.DeadSections))
	for _, d := range s.DeadSections {
		if d < 0 || d >= s.NumSections {
			return fmt.Errorf("pricing: dead section %d outside [0, %d)", d, s.NumSections)
		}
		if seen[d] {
			return fmt.Errorf("pricing: dead section %d listed twice", d)
		}
		seen[d] = true
	}
	if len(seen) > 0 && len(seen) == s.NumSections {
		return fmt.Errorf("pricing: all %d sections dead", s.NumSections)
	}
	switch s.Solver {
	case "", SolverExact, SolverMeanField:
	default:
		return fmt.Errorf("pricing: unknown solver %q", s.Solver)
	}
	if s.MeanFieldClusters < 0 {
		return fmt.Errorf("pricing: mean-field cluster count %d must be non-negative", s.MeanFieldClusters)
	}
	return nil
}

// liveIndices returns the surviving sections' indices, or nil when no
// section is dead (the fast path: no compaction needed).
func (s Scenario) liveIndices() []int {
	if len(s.DeadSections) == 0 {
		return nil
	}
	dead := make(map[int]bool, len(s.DeadSections))
	for _, d := range s.DeadSections {
		dead[d] = true
	}
	idx := make([]int, 0, s.NumSections-len(dead))
	for c := 0; c < s.NumSections; c++ {
		if !dead[c] {
			idx = append(idx, c)
		}
	}
	return idx
}

// Outcome reports what a policy produced on a scenario.
type Outcome struct {
	// Policy names the policy that produced the outcome.
	Policy string
	// UnitPaymentPerMWh is total payment over total power, in $/MWh —
	// the Fig. 5(a) y-axis.
	UnitPaymentPerMWh float64
	// TotalPaymentPerHour is Σ_n ξ_n in $/h.
	TotalPaymentPerHour float64
	// Welfare is W(p) in $/h — the Fig. 5(b) y-axis.
	Welfare float64
	// TotalPowerKW is the scheduled power Σ_n p_n.
	TotalPowerKW float64
	// SectionTotalsKW is (P_1…P_C) — the Fig. 5(c) series.
	SectionTotalsKW []float64
	// PlayerTotalsKW is (p_1…p_N), index-aligned with the scenario's
	// players — the fairness analyses read it.
	PlayerTotalsKW []float64
	// CongestionDegree is Σ P_c / Σ P_line.
	CongestionDegree float64
	// CongestionHistory is the congestion degree after each update —
	// the Fig. 5(d) series. Empty for the one-shot linear policy.
	CongestionHistory []float64
	// WelfareHistory is W(p) after each update.
	WelfareHistory []float64
	// Updates counts best-response updates performed.
	Updates int
	// Rounds counts full fleet cycles: exact engine rounds on the
	// parallel path, ⌈Updates/N⌉ on the asynchronous path. Zero for
	// the one-shot linear policy.
	Rounds int
	// DegradedRounds counts blocks the parallel engine's welfare guard
	// rolled back and replayed sequentially (core's Replayed); always
	// zero on the asynchronous path.
	DegradedRounds int
	// Converged reports whether the dynamics settled.
	Converged bool
	// Schedule is the converged N×C schedule, kept so callers can
	// warm-start the next scenario from it (core.ProjectSchedule).
	// Nil for the linear policy.
	Schedule *core.Schedule
}

// LoadImbalance returns the coefficient of variation of the
// per-section totals — the scalar the load-balancing claims of
// Fig. 5(c)/6(c) reduce to.
func (o Outcome) LoadImbalance() float64 {
	var s stats.Summary
	s.AddAll(o.SectionTotalsKW)
	return s.CoefficientOfVariation()
}

// Policy runs a pricing policy on a scenario.
type Policy interface {
	// Name identifies the policy in outcomes and reports.
	Name() string
	// Run executes the policy and returns the outcome.
	Run(s Scenario) (Outcome, error)
}

// LineCapacityKW evaluates Eq. (1) for the evaluation's default
// charging-section electricals (399 V, 240 A) and the given section
// length and vehicle velocity — the bridge between the wpt substrate's
// physics and the game's capacity parameter.
func LineCapacityKW(sectionLength units.Distance, vel units.Speed) float64 {
	if vel <= 0 {
		return 0
	}
	return 399.0 / 1000 * 240 * sectionLength.Meters() / vel.MPS()
}

// clampNonNegative guards derived metrics against float drift.
func clampNonNegative(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
