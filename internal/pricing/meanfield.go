package pricing

import (
	"fmt"

	"olevgrid/internal/core"
	"olevgrid/internal/meanfield"
)

// runMeanField routes the nonlinear policy through the aggregated
// population tier: cluster the fleet, solve the macro game on the
// exact engine, disaggregate (see internal/meanfield). The scenario's
// economics are untouched — the tier runs the very cost function the
// exact path would — so the Outcome is comparable field for field;
// only the equilibrium is approximate, with the welfare envelope the
// differential suite gates. Reached via Scenario.Solver, including on
// the dead-section path (runCompacted re-enters Run with the solver
// preserved, so the tier solves the compacted roadway and the caller
// scatters the results back).
func (p Nonlinear) runMeanField(s Scenario) (Outcome, error) {
	cost, err := p.CostFunction(s.BetaPerMWh, s.LineCapacityKW, s.Eta)
	if err != nil {
		return Outcome{}, err
	}
	// MaxUpdates keeps its per-player budget semantics: the macro game
	// gets the same number of fleet rounds the parallel exact path
	// would have run.
	maxRounds := 0
	if s.MaxUpdates > 0 {
		maxRounds = (s.MaxUpdates + len(s.Players) - 1) / len(s.Players)
	}
	order := p.Order
	if order == 0 {
		order = core.OrderRandom
	}
	mf, err := meanfield.Solve(meanfield.Config{
		Players:        s.Players,
		NumSections:    s.NumSections,
		LineCapacityKW: s.LineCapacityKW,
		Eta:            s.Eta,
		Cost:           cost,
		Clusters:       s.MeanFieldClusters,
		Parallelism:    s.Parallelism,
		Tolerance:      s.Tolerance,
		MaxRounds:      maxRounds,
		Order:          order,
		Seed:           s.Seed,
		SolverMetrics:  s.Metrics,
	})
	if err != nil {
		return Outcome{}, err
	}
	// Payments are per-player ledger quantities the macro game never
	// sees: evaluate them by standing the exact game up on the
	// disaggregated schedule. Every row already satisfies its player's
	// constraints (the tier clamps during disaggregation), so this is a
	// pure measurement, not a re-solve.
	game, err := core.NewGame(core.Config{
		Players:         s.Players,
		NumSections:     s.NumSections,
		LineCapacityKW:  s.LineCapacityKW,
		Eta:             s.Eta,
		Cost:            cost,
		InitialSchedule: mf.Schedule,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("pricing: mean-field ledger game: %w", err)
	}
	schedule := game.Schedule()
	playerTotals := make([]float64, game.NumPlayers())
	for n := range playerTotals {
		playerTotals[n] = schedule.OLEVTotal(n)
	}
	return Outcome{
		Policy:              p.Name() + "+meanfield",
		UnitPaymentPerMWh:   clampNonNegative(game.UnitPaymentPerMWh()),
		TotalPaymentPerHour: clampNonNegative(game.TotalPayment()),
		Welfare:             game.Welfare(),
		TotalPowerKW:        game.TotalPowerKW(),
		SectionTotalsKW:     game.SectionTotals(),
		PlayerTotalsKW:      playerTotals,
		CongestionDegree:    game.CongestionDegree(),
		Updates:             mf.Updates,
		Rounds:              mf.Rounds,
		DegradedRounds:      mf.Replayed,
		Converged:           mf.Converged,
		Schedule:            schedule,
	}, nil
}
