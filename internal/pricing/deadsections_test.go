package pricing

import (
	"math"
	"testing"
)

// A run with dead sections must schedule zero power on them, keep the
// overload guard on the survivors, and equal the same game solved
// directly on the shorter roadway.
func TestDeadSectionsCompaction(t *testing.T) {
	s := testScenario(t, 8, 10, 0.9)
	s.DeadSections = []int{2, 7}
	s.Tolerance = 1e-8

	out, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("masked game did not converge")
	}
	if len(out.SectionTotalsKW) != s.NumSections {
		t.Fatalf("section totals width %d, want %d", len(out.SectionTotalsKW), s.NumSections)
	}
	for _, d := range s.DeadSections {
		if out.SectionTotalsKW[d] != 0 {
			t.Errorf("dead section %d carries %v kW", d, out.SectionTotalsKW[d])
		}
	}
	if out.Schedule == nil || out.Schedule.NumSections() != s.NumSections {
		t.Fatalf("schedule not expanded to full width: %+v", out.Schedule)
	}
	for n := 0; n < out.Schedule.NumOLEVs(); n++ {
		for _, d := range s.DeadSections {
			if out.Schedule.At(n, d) != 0 {
				t.Errorf("vehicle %d allocated %v on dead section %d", n, out.Schedule.At(n, d), d)
			}
		}
	}
	// The overload penalty guards ηP_line per survivor.
	slack := 1.05 * s.Eta * s.LineCapacityKW
	for c, pc := range out.SectionTotalsKW {
		if pc > slack {
			t.Errorf("section %d total %v breaches usable capacity %v", c, pc, s.Eta*s.LineCapacityKW)
		}
	}

	// Reference: the same fleet on an 8-section roadway directly.
	ref := s
	ref.DeadSections = nil
	ref.NumSections = 8
	refOut, err := Nonlinear{}.Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Welfare-refOut.Welfare) > 1e-6*(1+math.Abs(refOut.Welfare)) {
		t.Errorf("masked welfare %v != direct short-roadway welfare %v", out.Welfare, refOut.Welfare)
	}
	if math.Abs(out.TotalPowerKW-refOut.TotalPowerKW) > 1e-6*(1+refOut.TotalPowerKW) {
		t.Errorf("masked power %v != direct %v", out.TotalPowerKW, refOut.TotalPowerKW)
	}
}

// A full-width warm start survives the projection off dead sections.
func TestDeadSectionsWarmStart(t *testing.T) {
	s := testScenario(t, 6, 6, 0.9)
	s.Tolerance = 1e-8
	clean, err := Nonlinear{}.Run(s)
	if err != nil || !clean.Converged {
		t.Fatalf("clean run: converged=%v err=%v", clean.Converged, err)
	}

	warm := s
	warm.DeadSections = []int{0}
	warm.InitialSchedule = clean.Schedule
	out, err := Nonlinear{}.Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("warm masked game did not converge")
	}
	if out.SectionTotalsKW[0] != 0 {
		t.Errorf("dead section 0 carries %v kW", out.SectionTotalsKW[0])
	}
}

func TestDeadSectionsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		dead []int
	}{
		{"out of range", []int{10}},
		{"negative", []int{-1}},
		{"duplicate", []int{1, 1}},
	} {
		s := testScenario(t, 4, 10, 0.9)
		s.DeadSections = tc.dead
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	all := testScenario(t, 4, 3, 0.9)
	all.DeadSections = []int{0, 1, 2}
	if err := all.Validate(); err == nil {
		t.Error("fully dead roadway accepted")
	}
}
