package pricing

import (
	"math"

	"olevgrid/internal/stats"
)

// Stackelberg is the revenue-maximizing single-price baseline modeled
// on the Tushar et al. game the related work contrasts against
// (IEEE Trans. SG 2012): the smart grid leads by posting one uniform
// unit price q chosen to maximize its revenue q·D(q); OLEVs follow
// with their individually optimal demands D_n(q). Unlike the paper's
// policy the price ignores per-section congestion entirely, so the
// grid extracts more revenue per kWh but schedules less power and
// provides no congestion control at all: with the evaluation's
// log-satisfaction fleets (unit-elastic demand) the revenue-optimal
// price is the one at which every follower demands its ceiling, so
// the scheduled load sails past the safe capacity ηP_line. The
// harness uses it to show what that costs in social welfare when the
// schedule is priced under the same section cost Z the paper's policy
// optimizes.
type Stackelberg struct {
	// PriceGridPoints controls the leader's line search resolution;
	// zero means 256.
	PriceGridPoints int
}

var _ Policy = Stackelberg{}

// Name implements Policy.
func (Stackelberg) Name() string { return "stackelberg" }

// Run implements Policy.
func (p Stackelberg) Run(s Scenario) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	points := p.PriceGridPoints
	if points <= 0 {
		points = 256
	}

	// The leader's revenue q·D(q) is evaluated on a price grid from
	// (almost) zero to the highest price any follower would pay.
	var qMax float64
	for _, pl := range s.Players {
		if m := pl.Satisfaction.Marginal(0); m > qMax {
			qMax = m
		}
	}
	if qMax <= 0 {
		return Outcome{}, nil
	}
	demandAt := func(q float64) float64 {
		var total float64
		for _, pl := range s.Players {
			total += flatPriceDemand(pl.Satisfaction, q, pl.MaxPowerKW)
		}
		return total
	}
	bestQ, bestRevenue := 0.0, -1.0
	for i := 1; i <= points; i++ {
		q := qMax * float64(i) / float64(points)
		if revenue := q * demandAt(q); revenue > bestRevenue {
			bestRevenue, bestQ = revenue, q
		}
	}

	// Followers respond; the grid spreads the result evenly (it has
	// no congestion signal to do otherwise, but an even spread is the
	// natural tie-break for a uniform price).
	demands := make([]float64, len(s.Players))
	var totalPower, welfare float64
	for i, pl := range s.Players {
		demands[i] = flatPriceDemand(pl.Satisfaction, bestQ, pl.MaxPowerKW)
		totalPower += demands[i]
		welfare += pl.Satisfaction.Value(demands[i])
	}
	sectionLoad := make([]float64, s.NumSections)
	for c := range sectionLoad {
		sectionLoad[c] = totalPower / float64(s.NumSections)
	}
	// Welfare is evaluated under the same social section cost Z the
	// paper's policy optimizes, so outcomes are comparable — this is
	// where ignoring ηP_line hurts.
	z, err := (Nonlinear{}).CostFunction(s.BetaPerMWh, s.LineCapacityKW, s.Eta)
	if err != nil {
		return Outcome{}, err
	}
	for _, load := range sectionLoad {
		welfare -= z.Cost(load)
	}

	unit := 0.0
	if totalPower > 0 {
		unit = bestQ * 1000
	}
	return Outcome{
		Policy:              p.Name(),
		UnitPaymentPerMWh:   unit,
		TotalPaymentPerHour: bestRevenue,
		Welfare:             welfare,
		TotalPowerKW:        totalPower,
		SectionTotalsKW:     sectionLoad,
		PlayerTotalsKW:      demands,
		CongestionDegree:    totalPower / (float64(s.NumSections) * s.LineCapacityKW),
		Updates:             len(s.Players),
		Converged:           true,
	}, nil
}

// RevenueCurve returns the leader's revenue at each grid price — the
// ablation harness plots it to show where the Stackelberg price lands
// relative to the welfare-optimal one.
func (p Stackelberg) RevenueCurve(s Scenario, points int) (*stats.Series, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if points <= 0 {
		points = 64
	}
	var qMax float64
	for _, pl := range s.Players {
		if m := pl.Satisfaction.Marginal(0); m > qMax {
			qMax = m
		}
	}
	out := stats.NewSeries("revenue-per-hour")
	for i := 1; i <= points; i++ {
		q := qMax * float64(i) / float64(points)
		var demand float64
		for _, pl := range s.Players {
			demand += flatPriceDemand(pl.Satisfaction, q, pl.MaxPowerKW)
		}
		out.Add(q*1000, q*demand)
	}
	return out, nil
}

// revenueConcavityCheck exists for the tests: with log satisfaction
// the revenue curve is single-peaked on the demand-interior region.
func revenueConcavityCheck(series *stats.Series) bool {
	ys := series.Ys()
	peak := 0
	for i, y := range ys {
		if y > ys[peak] {
			peak = i
		}
	}
	rising := stats.Series{Points: series.Points[:peak+1]}
	falling := stats.Series{Points: series.Points[peak:]}
	return rising.IsNonDecreasing(1e-9*math.Max(1, ys[peak])) &&
		falling.IsNonIncreasing(1e-9*math.Max(1, ys[peak]))
}
