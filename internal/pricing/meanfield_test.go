package pricing

import (
	"math"
	"testing"

	"olevgrid/internal/units"
)

func meanFieldScenario(t *testing.T, n int) Scenario {
	t.Helper()
	_, players, err := BuildFleet(FleetConfig{
		N:        n,
		Velocity: units.KMH(50),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Players:        players,
		NumSections:    10,
		LineCapacityKW: LineCapacityKW(units.Meters(15), units.KMH(50)),
		Eta:            0.9,
		BetaPerMWh:     20,
		Seed:           7,
		Parallelism:    2,
	}
}

func TestNonlinearMeanFieldTracksExact(t *testing.T) {
	s := meanFieldScenario(t, 120)
	exact, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Solver = SolverMeanField
	mf, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !mf.Converged {
		t.Fatal("mean-field path did not converge")
	}
	if mf.Policy != "nonlinear+meanfield" {
		t.Fatalf("policy label %q", mf.Policy)
	}
	// The tier's welfare envelope: within 2% of the exact equilibrium,
	// never above it beyond float tolerance (the exact equilibrium is
	// the social optimum; the restricted one cannot beat it).
	gap := exact.Welfare - mf.Welfare
	if gap < -1e-6*math.Abs(exact.Welfare) {
		t.Fatalf("mean-field welfare %v beats exact %v", mf.Welfare, exact.Welfare)
	}
	if gap > 0.02*math.Abs(exact.Welfare) {
		t.Fatalf("mean-field welfare %v more than 2%% below exact %v", mf.Welfare, exact.Welfare)
	}
	// The ledger must be populated like any other outcome.
	if mf.Schedule == nil || mf.Schedule.NumOLEVs() != len(s.Players) {
		t.Fatal("mean-field outcome lacks the full per-player schedule")
	}
	if len(mf.PlayerTotalsKW) != len(s.Players) {
		t.Fatalf("player totals %d, want %d", len(mf.PlayerTotalsKW), len(s.Players))
	}
	if mf.TotalPaymentPerHour <= 0 || mf.UnitPaymentPerMWh <= 0 {
		t.Fatalf("degenerate payments: total %v unit %v", mf.TotalPaymentPerHour, mf.UnitPaymentPerMWh)
	}
	if mf.TotalPowerKW <= 0 || mf.CongestionDegree <= 0 {
		t.Fatalf("degenerate load: P=%v congestion=%v", mf.TotalPowerKW, mf.CongestionDegree)
	}
}

func TestNonlinearMeanFieldDeadSections(t *testing.T) {
	s := meanFieldScenario(t, 60)
	s.Solver = SolverMeanField
	s.DeadSections = []int{0, 4}
	out, err := Nonlinear{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SectionTotalsKW) != s.NumSections {
		t.Fatalf("section totals %d, want full width %d", len(out.SectionTotalsKW), s.NumSections)
	}
	for _, d := range s.DeadSections {
		if out.SectionTotalsKW[d] != 0 {
			t.Fatalf("dead section %d carries %v kW", d, out.SectionTotalsKW[d])
		}
	}
	if out.TotalPowerKW <= 0 {
		t.Fatal("outage scenario scheduled no power at all")
	}
}

func TestScenarioValidateSolver(t *testing.T) {
	s := meanFieldScenario(t, 5)
	s.Solver = "simulated-annealing"
	if err := s.Validate(); err == nil {
		t.Fatal("unknown solver accepted")
	}
	s.Solver = SolverMeanField
	s.MeanFieldClusters = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative cluster budget accepted")
	}
	s.MeanFieldClusters = 0
	if err := s.Validate(); err != nil {
		t.Fatalf("valid mean-field scenario rejected: %v", err)
	}
	s.Solver = SolverExact
	if err := s.Validate(); err != nil {
		t.Fatalf("explicit exact solver rejected: %v", err)
	}
}
