package pricing

import (
	"olevgrid/internal/core"
	"olevgrid/internal/stats"
)

// Linear is the comparison baseline of Section V: a flat unit price
// V(p) = β·p. Because the price carries no congestion signal, two
// things follow, both visible in Figs. 5 and 6:
//
//   - the unit payment is the same at every congestion degree
//     (flat Fig. 5(a) line); and
//   - neither the grid nor the OLEVs have any incentive to spread
//     load, so sections fill unevenly (the scattered Fig. 5(c)
//     series) and individual sections can run past their safe
//     capacity — the congestion the paper's policy exists to prevent.
//
// We model the indifference as each OLEV splitting its demand across
// a small arbitrary (seeded-random) subset of sections. No per-section
// cap is enforced: a flat tariff has no mechanism to enforce one, and
// the resulting overloads are the baseline's failure mode, not a bug.
type Linear struct {
	// BetaScale multiplies the scenario's β to produce the flat unit
	// price; the paper's plots put the flat line in the middle of the
	// nonlinear sweep, which the default factor reproduces. Zero means
	// DefaultLinearBetaScale.
	BetaScale float64
	// SpreadSections is how many sections each OLEV splits its demand
	// over; zero means max(1, C/10).
	SpreadSections int
}

var _ Policy = Linear{}

// DefaultLinearBetaScale positions the flat price at 90 % of β, which
// places it mid-way through the nonlinear policy's marginal-price
// sweep so the two curves cross near congestion 0.5, as in Fig. 5(a).
const DefaultLinearBetaScale = 0.9

// Name implements Policy.
func (Linear) Name() string { return "linear" }

// Run implements Policy. Under a flat price each OLEV's best response
// has the closed form U'_n(p) = β_lin (independent of everyone else),
// so the dynamics converge in one pass; the interesting output is the
// skewed per-section distribution.
func (p Linear) Run(s Scenario) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	scale := p.BetaScale
	if scale == 0 {
		scale = DefaultLinearBetaScale
	}
	betaPerKWh := s.BetaPerMWh / 1000 * scale
	rng := stats.NewRand(s.Seed)
	spread := p.SpreadSections
	if spread <= 0 {
		spread = s.NumSections / 10
		if spread < 1 {
			spread = 1
		}
	}
	if spread > s.NumSections {
		spread = s.NumSections
	}

	// Closed-form demand per OLEV: maximize U(p) − β_lin·p on
	// [0, pmax]. For any strictly concave U this is the root of
	// U'(p) = β_lin, found by bisection for generality.
	demands := make([]float64, len(s.Players))
	for i, pl := range s.Players {
		demands[i] = flatPriceDemand(pl.Satisfaction, betaPerKWh, pl.MaxPowerKW)
	}

	// Uncoordinated allocation: each OLEV splits its demand equally
	// across an arbitrary subset of sections; nothing polices the
	// per-section totals.
	sectionLoad := make([]float64, s.NumSections)
	allocated := make([]float64, len(s.Players))
	order := make([]int, s.NumSections)
	for i := range order {
		order[i] = i
	}
	for i := range s.Players {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		share := demands[i] / float64(spread)
		for _, c := range order[:spread] {
			sectionLoad[c] += share
			allocated[i] += share
		}
	}

	var totalPower, welfare float64
	for i, pl := range s.Players {
		totalPower += allocated[i]
		welfare += pl.Satisfaction.Value(allocated[i])
	}
	lin := core.LinearCharging{Beta: betaPerKWh}
	for _, load := range sectionLoad {
		welfare -= lin.Cost(load)
	}
	totalPayment := betaPerKWh * totalPower

	unit := 0.0
	if totalPower > 0 {
		unit = totalPayment / totalPower * 1000
	}
	return Outcome{
		Policy:              p.Name(),
		UnitPaymentPerMWh:   unit,
		TotalPaymentPerHour: totalPayment,
		Welfare:             welfare,
		TotalPowerKW:        totalPower,
		SectionTotalsKW:     sectionLoad,
		PlayerTotalsKW:      allocated,
		CongestionDegree:    totalPower / (float64(s.NumSections) * s.LineCapacityKW),
		Updates:             len(s.Players),
		Converged:           true,
	}, nil
}

// flatPriceDemand solves max_p U(p) − β·p over [0, pmax] by bisection
// on the strictly decreasing U'(p) − β.
func flatPriceDemand(u core.Satisfaction, beta, pmax float64) float64 {
	if pmax <= 0 {
		return 0
	}
	if u.Marginal(0) <= beta {
		return 0
	}
	if u.Marginal(pmax) >= beta {
		return pmax
	}
	lo, hi := 0.0, pmax
	for i := 0; i < 64; i++ {
		mid := lo + (hi-lo)/2
		if u.Marginal(mid) > beta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}
