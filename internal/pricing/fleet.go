package pricing

import (
	"fmt"

	"olevgrid/internal/core"
	"olevgrid/internal/ev"
	"olevgrid/internal/stats"
	"olevgrid/internal/units"
)

// CongestionTargetWeight returns the satisfaction weight w that places
// the interior equilibrium of a homogeneous log-satisfaction fleet at
// congestion degree x: at the equilibrium every OLEV's marginal
// satisfaction equals the marginal charging cost at the per-section
// level x·P_line, i.e. w/(1 + p*) = V'(x·P_line) with p* the equal
// capacity share x·C·P_line/N. The Fig. 5(a)/6(a) sweep uses this to
// realize each congestion degree on the x-axis with a demand level
// that produces it, rather than starving the fleet against the
// overload wall.
func CongestionTargetWeight(p Nonlinear, betaPerMWh, lineCapacityKW float64, numSections, n int, x float64) (float64, error) {
	if x <= 0 || x > 1 {
		return 0, fmt.Errorf("pricing: target congestion %v outside (0, 1]", x)
	}
	if numSections < 1 || n < 1 {
		return 0, fmt.Errorf("pricing: need positive sections (%d) and fleet size (%d)", numSections, n)
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	v, err := core.NewQuadraticCharging(betaPerMWh/1000, alpha, lineCapacityKW)
	if err != nil {
		return 0, err
	}
	share := x * float64(numSections) * lineCapacityKW / float64(n)
	return v.Marginal(x*lineCapacityKW) * (1 + share), nil
}

// FleetConfig describes how to draw a fleet of OLEVs for a game, per
// the evaluation's setup: Chevrolet-Spark packs, SOC drawn so vehicles
// can receive up to ~50 % of their SOC from the grid (the NHTS
// 10–30 mile daily-distance argument), and a common velocity.
type FleetConfig struct {
	// N is the fleet size.
	N int
	// Velocity is the common cruising speed (60 or 80 mph in the
	// paper's runs).
	Velocity units.Speed
	// SatisfactionWeight is w in U_n = w·log(1+p); zero means 1.
	SatisfactionWeight float64
	// VelocityStdMPS draws per-vehicle velocities from a truncated
	// normal around Velocity instead of using it uniformly. Combined
	// with SectionLength it activates Eq. (3)'s per-vehicle coupling
	// limit: each player's per-section draw is capped by its own
	// P_line(vel_n). Zero keeps the homogeneous fleet.
	VelocityStdMPS float64
	// SectionLength feeds the Eq. (3) caps; required when
	// VelocityStdMPS is set.
	SectionLength units.Distance
	// Seed drives the SOC draws.
	Seed int64
}

// BuildFleet draws a fleet and converts it to game players, with each
// player's power ceiling coming from the vehicle's Eq. (2) headroom.
// It returns both views — the physical vehicles and the game players —
// index-aligned.
func BuildFleet(cfg FleetConfig) ([]*ev.OLEV, []core.Player, error) {
	if cfg.N < 1 {
		return nil, nil, fmt.Errorf("pricing: fleet size %d must be positive", cfg.N)
	}
	weight := cfg.SatisfactionWeight
	if weight == 0 {
		weight = 1
	}
	sat, err := core.NewLogSatisfaction(weight)
	if err != nil {
		return nil, nil, err
	}
	if cfg.VelocityStdMPS < 0 {
		return nil, nil, fmt.Errorf("pricing: velocity std %v must be non-negative", cfg.VelocityStdMPS)
	}
	if cfg.VelocityStdMPS > 0 && cfg.SectionLength <= 0 {
		return nil, nil, fmt.Errorf("pricing: heterogeneous velocities need a section length for Eq. (3)")
	}
	rng := stats.NewRand(cfg.Seed)
	vehicles := make([]*ev.OLEV, 0, cfg.N)
	players := make([]core.Player, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		// Current SOC between the floor and mid-pack; trips require a
		// nearly full pack, so headroom spans roughly half the window
		// (the paper: "OLEVs can receive up to 50% of their SOC").
		soc := stats.TruncatedNormal(rng, 0.35, 0.1, 0.2, 0.55)
		required := stats.TruncatedNormal(rng, 0.85, 0.05, 0.7, 0.9)
		velocity := cfg.Velocity
		if cfg.VelocityStdMPS > 0 {
			mean := cfg.Velocity.MPS()
			velocity = units.MPS(stats.TruncatedNormal(rng, mean, cfg.VelocityStdMPS, 0.5*mean, 1.5*mean))
		}
		vehicle, err := ev.NewOLEV(ev.OLEVConfig{
			ID:          fmt.Sprintf("olev-%03d", i),
			InitialSOC:  soc,
			RequiredSOC: required,
			Velocity:    velocity,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("pricing: fleet member %d: %w", i, err)
		}
		player := core.Player{
			ID:           vehicle.ID(),
			MaxPowerKW:   vehicle.PowerHeadroom().KW(),
			Satisfaction: sat,
		}
		if cfg.VelocityStdMPS > 0 {
			// Eq. (3): a vehicle's own coupling budget per section.
			player.MaxSectionDrawKW = LineCapacityKW(cfg.SectionLength, velocity)
		}
		vehicles = append(vehicles, vehicle)
		players = append(players, player)
	}
	return vehicles, players, nil
}
