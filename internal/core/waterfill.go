package core

import (
	"math"
	"sort"
)

// Bisection controls for the λ-search variants. They were inline magic
// numbers; naming them makes the solver's precision contract explicit
// and testable (see the saturated-boundary regression tests).
const (
	// defaultLevelTol is the absolute error bound on the allocated
	// total when WaterFillBisect's caller passes no tolerance.
	defaultLevelTol = 1e-9
	// maxLevelIterations caps the λ bisection; 200 halvings shrink any
	// physically meaningful bracket far below defaultLevelTol, so the
	// cap only guards against non-finite inputs stalling the loop.
	maxLevelIterations = 200
	// perDrawLevelRelTol is PerDrawWaterFill's relative bracket width
	// target; the residual repair afterwards makes the row sum exact.
	perDrawLevelRelTol = 1e-12
)

// WaterFill solves Lemma IV.1: split an OLEV's total power request
// across charging sections so post-allocation section totals equalize
// at a water level λ*,
//
//	alloc_c = [λ* − others_c]^+  with  Σ_c alloc_c = total,
//
// which is the unique minimum-cost schedule when every section shares
// the same strictly convex cost. others_c is P_−n,c, the load already
// scheduled by the other OLEVs on section c.
//
// It returns the per-section allocation and the level λ*. A
// non-positive total yields a zero allocation with λ* equal to the
// smallest entry of others (the level at which water would first
// start to pool). The input slice is not modified.
//
// The exact O(C log C) breakpoint algorithm is used; WaterFillBisect
// provides the paper's bisection formulation and the tests cross-check
// the two.
func WaterFill(others []float64, total float64) (alloc []float64, level float64) {
	alloc = make([]float64, len(others))
	if len(others) == 0 {
		return alloc, 0
	}
	if total <= 0 {
		min := others[0]
		for _, o := range others[1:] {
			if o < min {
				min = o
			}
		}
		return alloc, min
	}

	sorted := make([]float64, len(others))
	copy(sorted, others)
	sort.Float64s(sorted)

	// Find the smallest k such that filling the k lowest sections up
	// to a common level absorbs the whole request before the level
	// reaches the (k+1)-th section's load.
	var prefix float64
	level = sorted[len(sorted)-1] + total // fallback: all sections flooded
	for k := 1; k <= len(sorted); k++ {
		prefix += sorted[k-1]
		candidate := (total + prefix) / float64(k)
		if k == len(sorted) || candidate <= sorted[k] {
			level = candidate
			break
		}
	}

	for i, o := range others {
		if level > o {
			alloc[i] = level - o
		}
	}
	return alloc, level
}

// WaterFillBisect solves the same problem by bisecting on the root of
// Y(λ) = Σ_c [λ − others_c]^+ − total, the method the paper's
// Section IV-F prescribes. It exists as an independently derived
// implementation for cross-checking and for the benches that compare
// the two. tol bounds the absolute error on the allocated total.
func WaterFillBisect(others []float64, total float64, tol float64) (alloc []float64, level float64) {
	alloc = make([]float64, len(others))
	if len(others) == 0 {
		return alloc, 0
	}
	if tol <= 0 {
		tol = defaultLevelTol
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, o := range others {
		lo = math.Min(lo, o)
		hi = math.Max(hi, o)
	}
	if total <= 0 {
		return alloc, lo
	}
	hi += total // Y(hi) >= total with equality only if all others equal

	yOf := func(lambda float64) float64 {
		var sum float64
		for _, o := range others {
			if lambda > o {
				sum += lambda - o
			}
		}
		return sum
	}
	for i := 0; i < maxLevelIterations && hi-lo > tol/float64(len(others)+1); i++ {
		mid := lo + (hi-lo)/2
		if yOf(mid) < total {
			lo = mid
		} else {
			hi = mid
		}
	}
	level = lo + (hi-lo)/2

	// Distribute, then repair the rounding residual proportionally so the
	// allocation sums exactly to total.
	var sum float64
	for i, o := range others {
		if level > o {
			alloc[i] = level - o
			sum += alloc[i]
		}
	}
	if sum > 0 {
		scale := total / sum
		for i := range alloc {
			alloc[i] *= scale
		}
	}
	return alloc, level
}

// WaterLevel returns only λ*(p_n) for a request of total against the
// given background load — the quantity the best-response derivative
// needs (Ψ'_n(p_n) = Z'(λ*(p_n)) by the envelope theorem).
func WaterLevel(others []float64, total float64) float64 {
	_, level := WaterFill(others, total)
	return level
}
