package core

// Payment computes ξ_n of Eq. (9): the cost-difference payment an
// OLEV owes for the allocation alloc against the background load
// others, summed across sections:
//
//	ξ_n = Σ_c [ Z(P_−n,c + p_n,c) − Z(P_−n,c) ]
//
// costs[c] is section c's Z. The function is unbiased — a zero
// allocation pays zero — which tests assert. It panics on length
// mismatches, which are programming errors.
func Payment(costs []CostFunction, others, alloc []float64) float64 {
	if len(costs) != len(others) || len(others) != len(alloc) {
		panic("core: Payment length mismatch")
	}
	var total float64
	for c := range costs {
		if alloc[c] == 0 {
			continue
		}
		total += costs[c].Cost(others[c]+alloc[c]) - costs[c].Cost(others[c])
	}
	return total
}

// PaymentFunction is Ψ_n of Eq. (16): the payment the smart grid
// quotes OLEV n for any total request p_n, assuming the grid schedules
// the request at minimum cost (water-filling, Lemma IV.1) against the
// frozen background load of the other OLEVs.
//
// A PaymentFunction is immutable once built; the smart grid rebuilds
// it (Eq. 20) after every best-response update.
type PaymentFunction struct {
	cost   CostFunction // shared section cost Z
	others []float64    // P_−n snapshot
	// drawCap is the Eq. (3) per-section coupling limit for this
	// vehicle; non-positive means uncapped. Set via WithDrawCap.
	drawCap float64
}

// NewPaymentFunction captures the payment function for one OLEV given
// the shared section cost and the other OLEVs' current per-section
// totals. The slice is copied.
func NewPaymentFunction(cost CostFunction, others []float64) *PaymentFunction {
	o := make([]float64, len(others))
	copy(o, others)
	return &PaymentFunction{cost: cost, others: o}
}

// At evaluates Ψ_n(p): the total payment for requesting p kW.
func (f *PaymentFunction) At(p float64) float64 {
	if p <= 0 {
		return 0
	}
	alloc := f.Schedule(p)
	var total float64
	for c, a := range alloc {
		if a == 0 {
			continue
		}
		total += f.cost.Cost(f.others[c]+a) - f.cost.Cost(f.others[c])
	}
	return total
}

// Marginal evaluates Ψ'_n(p). By the envelope theorem the derivative
// of the minimum-cost schedule's payment is the marginal section cost
// at the water level: Ψ'_n(p) = Z'(λ*(p)). With an Eq. (3) draw cap
// the marginal power still lands on sections below their cap at the
// level, so the identity carries over.
func (f *PaymentFunction) Marginal(p float64) float64 {
	if p < 0 {
		p = 0
	}
	_, level := f.fill(p)
	return f.cost.Marginal(level)
}

// Schedule returns the water-filled allocation p̂_n(p) the quote is
// based on.
func (f *PaymentFunction) Schedule(p float64) []float64 {
	alloc, _ := f.fill(p)
	return alloc
}

func (f *PaymentFunction) fill(p float64) ([]float64, float64) {
	if f.drawCap > 0 {
		return PerDrawWaterFill(f.others, f.drawCap, p)
	}
	return WaterFill(f.others, p)
}
