// Package core implements the paper's primary contribution: the
// game-theory-based power scheduling framework between a smart grid
// and online electric vehicles (OLEVs) drawing power from roadway
// charging sections.
//
// The pieces map onto the paper's Section IV as follows:
//
//   - CostFunction and its implementations are V(·), A(·) and
//     Z(·) = V(·) + A(· − ηP_line) from Eq. (6)–(7);
//   - Satisfaction is U_n(·), the strictly increasing, strictly
//     concave satisfaction of an OLEV;
//   - WaterFill is Lemma IV.1: the unique minimum-cost split
//     p̂_n,c = [λ* − P_−n,c]^+ of an OLEV's total request across
//     sections;
//   - Payment and PaymentFunction are ξ_n (Eq. 9) and Ψ_n (Eq. 16);
//   - BestResponse is Lemma IV.3: the utility-maximizing total request
//     given the announced payment function;
//   - Game runs the asynchronous best-response iteration of
//     Section IV-D and exposes the social-welfare potential whose
//     monotone increase is the substance of Theorem IV.1.
//
// Everything operates on power values expressed in kilowatts and costs
// expressed in dollars per hour, so "unit payment" divides to $/kWh
// (×1000 = the paper's $/MWh axis).
package core
