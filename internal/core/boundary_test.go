package core

// Boundary regressions for the λ-search. The named constants in
// waterfill.go (defaultLevelTol, maxLevelIterations,
// perDrawLevelRelTol) make the solver's precision a stated contract;
// these tests pin its behavior exactly at the saturation boundaries
// where off-by-one breakpoint handling historically hides.

import (
	"math"
	"math/rand"
	"testing"
)

// At total = Σ_c (max(others) − others_c) the water level lands exactly
// on the highest breakpoint: every section is active, the fullest one
// at allocation exactly zero. This is the k == len(sorted) boundary of
// WaterFill's breakpoint scan.
func TestWaterFillLevelAtFloodBoundary(t *testing.T) {
	others := []float64{3, 7, 12, 12, 20}
	var total float64
	for _, o := range others {
		total += 20 - o
	}
	alloc, level := WaterFill(others, total)
	if math.Abs(level-20) > 1e-12 {
		t.Fatalf("level = %v, want exactly the max background 20", level)
	}
	if alloc[4] > 1e-12 {
		t.Errorf("fullest section got %v, want 0 at the boundary", alloc[4])
	}
	var sum float64
	for _, a := range alloc {
		sum += a
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, total)
	}
}

// WaterFillBisect must agree with the exact breakpoint solver when the
// request floods every section — the regime where its bracket is
// widest and maxLevelIterations actually gets spent.
func TestWaterFillBisectAllSectionsFlooded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		c := 2 + rng.Intn(40)
		others := make([]float64, c)
		var spread float64
		max := 0.0
		for i := range others {
			others[i] = rng.Float64() * 30
			max = math.Max(max, others[i])
		}
		for _, o := range others {
			spread += max - o
		}
		// Anything ≥ spread floods all sections; go well past it.
		total := spread + 1 + rng.Float64()*100

		exactAlloc, exactLevel := WaterFill(others, total)
		alloc, level := WaterFillBisect(others, total, 0)

		if math.Abs(level-exactLevel) > 1e-8 {
			t.Fatalf("trial %d: bisect level %v, exact %v", trial, level, exactLevel)
		}
		var sum float64
		for i := range alloc {
			sum += alloc[i]
			if math.Abs(alloc[i]-exactAlloc[i]) > 1e-7 {
				t.Fatalf("trial %d: alloc[%d] = %v, exact %v", trial, i, alloc[i], exactAlloc[i])
			}
		}
		if math.Abs(sum-total) > defaultLevelTol {
			t.Fatalf("trial %d: sum %v, want %v within %v", trial, sum, total, defaultLevelTol)
		}
	}
}

// PerDrawWaterFill at total exactly C·drawCap: every section saturates
// at the cap with zero shortfall, and the reported level follows the
// documented saturated convention min(others) + drawCap.
func TestPerDrawWaterFillAtExactSaturation(t *testing.T) {
	others := []float64{0, 4, 9, 2}
	const drawCap = 5.0
	total := drawCap * float64(len(others))

	alloc, level := PerDrawWaterFill(others, drawCap, total)
	for i, a := range alloc {
		if a != drawCap {
			t.Errorf("alloc[%d] = %v, want the cap %v", i, a, drawCap)
		}
	}
	if math.Abs(level-(0+drawCap)) > 1e-12 {
		t.Errorf("level = %v, want min(others)+drawCap = %v", level, drawCap)
	}

	// Just past saturation the shortfall spreads into the level term.
	_, over := PerDrawWaterFill(others, drawCap, total+0.5)
	want := drawCap + 0.5/float64(len(others))
	if math.Abs(over-want) > 1e-12 {
		t.Errorf("oversaturated level = %v, want %v", over, want)
	}
}

// Approaching saturation from below, the bisection branch must hand
// over continuously to the saturated fast path: the allocation vector
// converges to all-cap and the row sum stays exact.
func TestPerDrawWaterFillSaturationContinuity(t *testing.T) {
	others := []float64{1, 6, 3, 8, 0}
	const drawCap = 4.0
	maxAllocatable := drawCap * float64(len(others))

	for _, eps := range []float64{1e-3, 1e-6, 1e-9} {
		total := maxAllocatable - eps
		alloc, _ := PerDrawWaterFill(others, drawCap, total)
		var sum float64
		for i, a := range alloc {
			sum += a
			if a > drawCap+1e-12 {
				t.Fatalf("eps %v: alloc[%d] = %v exceeds cap %v", eps, i, a, drawCap)
			}
			if a < drawCap-eps-1e-7 {
				t.Fatalf("eps %v: alloc[%d] = %v, want within %v of the cap", eps, i, a, eps)
			}
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("eps %v: sum %v, want %v", eps, sum, total)
		}
	}
}
