package core

import (
	"fmt"
	"math"
	"testing"

	"olevgrid/internal/stats"
)

func TestPerDrawWaterFillUncappedFallback(t *testing.T) {
	others := []float64{0, 5, 20}
	a1, l1 := PerDrawWaterFill(others, 0, 10)
	a2, l2 := WaterFill(others, 10)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Errorf("alloc[%d] = %v, want %v", i, a1[i], a2[i])
		}
	}
	if l1 != l2 {
		t.Errorf("level %v, want %v", l1, l2)
	}
}

func TestPerDrawWaterFillCapsIndividualDraws(t *testing.T) {
	// Deep valley at section 0: uncapped fill would pour 7.5 there,
	// but a draw cap of 4 spills the excess to the next section.
	others := []float64{0, 5, 20}
	alloc, _ := PerDrawWaterFill(others, 4, 10)
	var sum float64
	for i, a := range alloc {
		if a > 4+1e-9 {
			t.Errorf("alloc[%d] = %v exceeds draw cap 4", i, a)
		}
		sum += a
	}
	if math.Abs(sum-10) > 1e-9 {
		t.Errorf("sum = %v, want 10", sum)
	}
	if alloc[0] < 4-1e-9 {
		t.Errorf("valley section should be at the cap, got %v", alloc[0])
	}
	if alloc[1] <= 2.5 {
		t.Errorf("overflow should spill to section 1: %v", alloc[1])
	}
}

func TestPerDrawWaterFillSaturation(t *testing.T) {
	others := []float64{1, 2}
	alloc, _ := PerDrawWaterFill(others, 3, 100)
	if alloc[0] != 3 || alloc[1] != 3 {
		t.Errorf("alloc = %v, want full caps", alloc)
	}
}

func TestPerDrawWaterFillInvariants(t *testing.T) {
	r := stats.NewRand(3)
	for trial := 0; trial < 300; trial++ {
		c := 1 + r.Intn(15)
		others := make([]float64, c)
		for i := range others {
			others[i] = r.Float64() * 40
		}
		drawCap := 0.5 + r.Float64()*20
		total := r.Float64() * 150
		alloc, level := PerDrawWaterFill(others, drawCap, total)

		want := math.Min(total, float64(c)*drawCap)
		var sum float64
		for i, a := range alloc {
			if a < -1e-12 || a > drawCap+1e-9 {
				t.Fatalf("alloc[%d] = %v outside [0, %v]", i, a, drawCap)
			}
			// Sections strictly below the cap and active sit at the level.
			if a > 1e-9 && a < drawCap-1e-9 {
				if got := others[i] + a; math.Abs(got-level) > 1e-6*(1+level) {
					t.Fatalf("uncapped active section %d at %v, level %v", i, got, level)
				}
			}
			sum += a
		}
		if math.Abs(sum-want) > 1e-6*(1+want) {
			t.Fatalf("allocated %v, want %v", sum, want)
		}
	}
}

func TestPaymentFunctionWithDrawCap(t *testing.T) {
	z := testCost(t)
	base := NewPaymentFunction(z, []float64{2, 9, 4})
	capped := base.WithDrawCap(3)

	if got := base.MaxAllocatable(); !math.IsInf(got, 1) {
		t.Errorf("uncapped MaxAllocatable = %v", got)
	}
	if got := capped.MaxAllocatable(); got != 9 {
		t.Errorf("capped MaxAllocatable = %v, want 9", got)
	}
	for _, a := range capped.Schedule(8) {
		if a > 3+1e-9 {
			t.Errorf("capped schedule draws %v", a)
		}
	}
	// The capped schedule costs at least as much: it is a constrained
	// version of the same minimization.
	if capped.At(8) < base.At(8)-1e-9 {
		t.Errorf("capped payment %v below unconstrained %v", capped.At(8), base.At(8))
	}
	// Envelope marginal still matches numerics under the cap.
	for _, p := range []float64{1, 4, 7} {
		const h = 1e-5
		numeric := (capped.At(p+h) - capped.At(p-h)) / (2 * h)
		if got := capped.Marginal(p); math.Abs(got-numeric) > 1e-3*(1+numeric) {
			t.Errorf("Marginal(%v) = %v, numeric %v", p, got, numeric)
		}
	}
}

func TestBestResponseRespectsDrawCap(t *testing.T) {
	z := testCost(t)
	psi := NewPaymentFunction(z, []float64{0, 0}).WithDrawCap(5)
	// Insatiable demand: the request must stop at C·drawCap = 10.
	got := BestResponse(LogSatisfaction{Weight: 1000}, psi, 500)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("BestResponse = %v, want allocatable ceiling 10", got)
	}
}

func TestGameWithHeterogeneousDrawCaps(t *testing.T) {
	v, err := NewQuadraticCharging(0.02, 0.875, 53.55)
	if err != nil {
		t.Fatal(err)
	}
	players := make([]Player, 6)
	for i := range players {
		players[i] = Player{
			ID:           fmt.Sprintf("p%d", i),
			MaxPowerKW:   80,
			Satisfaction: LogSatisfaction{Weight: 1},
			// Fast vehicles couple weakly: small per-section draws.
			MaxSectionDrawKW: 2 + float64(i),
		}
	}
	g, err := NewGame(Config{
		Players: players, NumSections: 5, LineCapacityKW: 53.55, Eta: 0.9,
		Cost: SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 10, Capacity: 48.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(RunOptions{MaxUpdates: 20000, Tolerance: 1e-7})
	if !res.Converged {
		t.Fatal("heterogeneous-cap game did not converge")
	}
	s := g.Schedule()
	for n := 0; n < g.NumPlayers(); n++ {
		limit := g.Player(n).MaxSectionDrawKW
		for c := 0; c < g.NumSections(); c++ {
			if s.At(n, c) > limit+1e-9 {
				t.Errorf("player %d draws %v from section %d, cap %v", n, s.At(n, c), c, limit)
			}
		}
		if total := s.OLEVTotal(n); total > float64(g.NumSections())*limit+1e-9 {
			t.Errorf("player %d total %v exceeds allocatable", n, total)
		}
	}
	// Welfare stays monotone (the potential argument holds with the
	// extra box constraints).
	series := stats.Series{Name: "w"}
	for i, w := range res.Welfare {
		series.Add(float64(i), w)
	}
	if !series.IsNonDecreasing(1e-7) {
		t.Error("welfare not monotone under draw caps")
	}
}
