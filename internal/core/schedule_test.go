package core

import (
	"math"
	"testing"
)

func mustSchedule(t *testing.T, n, c int) *Schedule {
	t.Helper()
	s, err := NewSchedule(n, c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewScheduleValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}} {
		if _, err := NewSchedule(dims[0], dims[1]); err == nil {
			t.Errorf("dimensions %v accepted", dims)
		}
	}
	s := mustSchedule(t, 3, 4)
	if s.NumOLEVs() != 3 || s.NumSections() != 4 {
		t.Errorf("dims = %dx%d", s.NumOLEVs(), s.NumSections())
	}
}

func TestScheduleSetGetTotals(t *testing.T) {
	s := mustSchedule(t, 2, 3)
	s.Set(0, 0, 5)
	s.Set(0, 2, 7)
	s.Set(1, 2, 3)

	if got := s.At(0, 2); got != 7 {
		t.Errorf("At(0,2) = %v", got)
	}
	if got := s.OLEVTotal(0); got != 12 {
		t.Errorf("OLEVTotal(0) = %v", got)
	}
	if got := s.SectionTotal(2); got != 10 {
		t.Errorf("SectionTotal(2) = %v", got)
	}
	if got := s.SectionTotals(); got[0] != 5 || got[1] != 0 || got[2] != 10 {
		t.Errorf("SectionTotals = %v", got)
	}
	if got := s.Total(); got != 15 {
		t.Errorf("Total = %v", got)
	}
}

func TestScheduleNegativeClamped(t *testing.T) {
	s := mustSchedule(t, 1, 2)
	s.Set(0, 0, -3)
	if got := s.At(0, 0); got != 0 {
		t.Errorf("negative entry stored: %v", got)
	}
}

func TestScheduleOthersSectionTotals(t *testing.T) {
	s := mustSchedule(t, 3, 2)
	s.SetRow(0, []float64{1, 2})
	s.SetRow(1, []float64{10, 20})
	s.SetRow(2, []float64{100, 200})

	others := s.OthersSectionTotals(1)
	if others[0] != 101 || others[1] != 202 {
		t.Errorf("OthersSectionTotals(1) = %v, want [101 202]", others)
	}
	// Own row untouched by the computation.
	if s.At(1, 0) != 10 {
		t.Error("row mutated")
	}
}

func TestScheduleSetRowPanicsOnBadLength(t *testing.T) {
	s := mustSchedule(t, 1, 3)
	defer func() {
		if recover() == nil {
			t.Error("SetRow with wrong length did not panic")
		}
	}()
	s.SetRow(0, []float64{1, 2})
}

func TestScheduleRowIsCopy(t *testing.T) {
	s := mustSchedule(t, 1, 2)
	s.SetRow(0, []float64{4, 5})
	row := s.Row(0)
	row[0] = 99
	if s.At(0, 0) != 4 {
		t.Error("Row returned a live reference")
	}
}

func TestScheduleClone(t *testing.T) {
	s := mustSchedule(t, 2, 2)
	s.Set(0, 0, 1)
	c := s.Clone()
	c.Set(0, 0, 42)
	if s.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
	if c.NumOLEVs() != 2 || c.NumSections() != 2 {
		t.Error("Clone lost dimensions")
	}
}

func TestOthersSectionTotalsFloatDriftGuard(t *testing.T) {
	s := mustSchedule(t, 1, 1)
	s.Set(0, 0, 0.1+0.2) // 0.30000000000000004
	others := s.OthersSectionTotals(0)
	if others[0] < 0 {
		t.Errorf("drift produced negative background: %v", others[0])
	}
	if math.Abs(others[0]) > 1e-12 {
		t.Errorf("single player's background should be ~0, got %v", others[0])
	}
}
