package core

import "fmt"

// Schedule is the power schedule p of Section IV-B: an N×C matrix
// where entry (n, c) is the power (kW) OLEV n draws from charging
// section c. The zero value is unusable; construct with NewSchedule.
type Schedule struct {
	n, c int
	p    []float64
}

// NewSchedule returns an all-zero schedule for n OLEVs and c sections.
// It returns an error for non-positive dimensions.
func NewSchedule(n, c int) (*Schedule, error) {
	if n < 1 || c < 1 {
		return nil, fmt.Errorf("core: schedule dimensions %dx%d must be positive", n, c)
	}
	return &Schedule{n: n, c: c, p: make([]float64, n*c)}, nil
}

// NumOLEVs returns N.
func (s *Schedule) NumOLEVs() int { return s.n }

// NumSections returns C.
func (s *Schedule) NumSections() int { return s.c }

// At returns p_{n,c}.
func (s *Schedule) At(n, c int) float64 { return s.p[n*s.c+c] }

// Set assigns p_{n,c}; negative values are clamped to zero since a
// schedule entry is a physical power draw.
func (s *Schedule) Set(n, c int, v float64) {
	if v < 0 {
		v = 0
	}
	s.p[n*s.c+c] = v
}

// SetRow replaces OLEV n's entire allocation vector. It panics if the
// length differs from C — always a programming error.
func (s *Schedule) SetRow(n int, row []float64) {
	if len(row) != s.c {
		panic(fmt.Sprintf("core: SetRow length %d != %d sections", len(row), s.c))
	}
	for c, v := range row {
		s.Set(n, c, v)
	}
}

// Row returns a copy of OLEV n's allocation vector p_n.
func (s *Schedule) Row(n int) []float64 {
	out := make([]float64, s.c)
	copy(out, s.p[n*s.c:(n+1)*s.c])
	return out
}

// OLEVTotal returns p_n = Σ_c p_{n,c}.
func (s *Schedule) OLEVTotal(n int) float64 {
	var sum float64
	for _, v := range s.p[n*s.c : (n+1)*s.c] {
		sum += v
	}
	return sum
}

// SectionTotal returns P_c = Σ_n p_{n,c}.
func (s *Schedule) SectionTotal(c int) float64 {
	var sum float64
	for n := 0; n < s.n; n++ {
		sum += s.p[n*s.c+c]
	}
	return sum
}

// SectionTotals returns the vector (P_1, …, P_C).
func (s *Schedule) SectionTotals() []float64 {
	out := make([]float64, s.c)
	for n := 0; n < s.n; n++ {
		row := s.p[n*s.c : (n+1)*s.c]
		for c, v := range row {
			out[c] += v
		}
	}
	return out
}

// OthersSectionTotals returns P_−n: per-section totals excluding
// OLEV n's own allocation.
func (s *Schedule) OthersSectionTotals(n int) []float64 {
	out := s.SectionTotals()
	row := s.p[n*s.c : (n+1)*s.c]
	for c, v := range row {
		out[c] -= v
		if out[c] < 0 { // guard against float drift
			out[c] = 0
		}
	}
	return out
}

// Total returns the grand total Σ_n Σ_c p_{n,c}.
func (s *Schedule) Total() float64 {
	var sum float64
	for _, v := range s.p {
		sum += v
	}
	return sum
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	p := make([]float64, len(s.p))
	copy(p, s.p)
	return &Schedule{n: s.n, c: s.c, p: p}
}
