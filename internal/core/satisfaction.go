package core

import (
	"fmt"
	"math"
)

// Satisfaction is U_n(·): a strictly increasing, strictly concave
// function of the total power (kW) an OLEV receives, returning a
// satisfaction rate in $/h so it is commensurable with cost.
type Satisfaction interface {
	// Value returns U(p).
	Value(p float64) float64
	// Marginal returns U'(p), which must be strictly decreasing.
	Marginal(p float64) float64
}

// LogSatisfaction is the evaluation's U_n(p) = w·log(1 + p), the
// classic diminishing-returns satisfaction (the paper uses w = 1).
type LogSatisfaction struct {
	Weight float64
}

var _ Satisfaction = LogSatisfaction{}

// NewLogSatisfaction validates the weight and constructs the
// satisfaction function.
func NewLogSatisfaction(weight float64) (LogSatisfaction, error) {
	if weight <= 0 || math.IsNaN(weight) {
		return LogSatisfaction{}, fmt.Errorf("core: satisfaction weight %v must be positive", weight)
	}
	return LogSatisfaction{Weight: weight}, nil
}

// Value implements Satisfaction.
func (l LogSatisfaction) Value(p float64) float64 {
	if p < 0 {
		p = 0
	}
	return l.Weight * math.Log1p(p)
}

// Marginal implements Satisfaction.
func (l LogSatisfaction) Marginal(p float64) float64 {
	if p < 0 {
		p = 0
	}
	return l.Weight / (1 + p)
}

// SqrtSatisfaction is an alternative concave satisfaction
// U(p) = w·√p, used by the ablation benches to show the framework is
// agnostic to the particular concave U.
type SqrtSatisfaction struct {
	Weight float64
}

var _ Satisfaction = SqrtSatisfaction{}

// Value implements Satisfaction.
func (s SqrtSatisfaction) Value(p float64) float64 {
	if p < 0 {
		p = 0
	}
	return s.Weight * math.Sqrt(p)
}

// Marginal implements Satisfaction. The marginal at zero is capped to
// a large finite value so bisection stays well-behaved.
func (s SqrtSatisfaction) Marginal(p float64) float64 {
	const floor = 1e-9
	if p < floor {
		p = floor
	}
	return s.Weight / (2 * math.Sqrt(p))
}
