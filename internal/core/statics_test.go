package core

import (
	"fmt"
	"testing"
)

// equilibrium runs a homogeneous game to convergence and returns the
// per-player total.
func equilibriumShare(t *testing.T, n int, beta float64) float64 {
	t.Helper()
	v, err := NewQuadraticCharging(beta, 0.875, 53.55)
	if err != nil {
		t.Fatal(err)
	}
	players := make([]Player, n)
	for i := range players {
		players[i] = Player{
			ID:           fmt.Sprintf("p%d", i),
			MaxPowerKW:   95.76,
			Satisfaction: LogSatisfaction{Weight: 1},
		}
	}
	g, err := NewGame(Config{
		Players: players, NumSections: 10, LineCapacityKW: 53.55, Eta: 1.0, Cost: v,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Run(RunOptions{MaxUpdates: 50000, Tolerance: 1e-8}); !res.Converged {
		t.Fatal("did not converge")
	}
	return g.TotalPowerKW() / float64(n)
}

// TestComparativeStaticsPrice: a higher β must reduce every OLEV's
// equilibrium demand — the law of demand through the pricing game.
func TestComparativeStaticsPrice(t *testing.T) {
	cheap := equilibriumShare(t, 10, 0.01)
	dear := equilibriumShare(t, 10, 0.04)
	if dear >= cheap {
		t.Errorf("share at 4x price (%v) not below cheap share (%v)", dear, cheap)
	}
}

// TestComparativeStaticsCrowding: more OLEVs competing for the same
// sections must shrink the per-OLEV share (the congestion externality
// the price internalizes), while growing the total.
func TestComparativeStaticsCrowding(t *testing.T) {
	shareSmall := equilibriumShare(t, 5, 0.02)
	shareBig := equilibriumShare(t, 25, 0.02)
	if shareBig >= shareSmall {
		t.Errorf("share with 25 OLEVs (%v) not below share with 5 (%v)", shareBig, shareSmall)
	}
	if 25*shareBig <= 5*shareSmall {
		t.Errorf("total with 25 OLEVs (%v) not above total with 5 (%v)",
			25*shareBig, 5*shareSmall)
	}
}
