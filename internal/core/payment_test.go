package core

import (
	"math"
	"testing"

	"olevgrid/internal/stats"
)

func testCost(t *testing.T) CostFunction {
	t.Helper()
	v, err := NewQuadraticCharging(0.02, 0.875, 50)
	if err != nil {
		t.Fatal(err)
	}
	return SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 1, Capacity: 45}}
}

func TestPaymentUnbiased(t *testing.T) {
	// Eq. (9): ξ_n(p_−n, 0) = 0 — no power, no payment.
	z := testCost(t)
	costs := []CostFunction{z, z, z}
	others := []float64{10, 20, 30}
	if got := Payment(costs, others, []float64{0, 0, 0}); got != 0 {
		t.Errorf("zero allocation pays %v, want 0", got)
	}
}

func TestPaymentEqualsCostDifference(t *testing.T) {
	z := testCost(t)
	costs := []CostFunction{z, z}
	others := []float64{10, 25}
	alloc := []float64{5, 3}
	want := (z.Cost(15) - z.Cost(10)) + (z.Cost(28) - z.Cost(25))
	if got := Payment(costs, others, alloc); math.Abs(got-want) > 1e-12 {
		t.Errorf("Payment = %v, want %v", got, want)
	}
}

func TestPaymentPositiveForPositiveAllocation(t *testing.T) {
	z := testCost(t)
	costs := []CostFunction{z}
	if got := Payment(costs, []float64{0}, []float64{1}); got <= 0 {
		t.Errorf("Payment = %v, want positive", got)
	}
}

func TestPaymentPanicsOnMismatch(t *testing.T) {
	z := testCost(t)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Payment([]CostFunction{z}, []float64{1, 2}, []float64{1})
}

func TestPaymentFunctionConsistentWithPayment(t *testing.T) {
	// Ψ_n(p) must equal ξ_n evaluated at the water-filled schedule.
	z := testCost(t)
	others := []float64{5, 0, 12, 3}
	psi := NewPaymentFunction(z, others)
	costs := make([]CostFunction, len(others))
	for i := range costs {
		costs[i] = z
	}
	for _, p := range []float64{0, 1, 7.5, 40, 120} {
		alloc := psi.Schedule(p)
		want := Payment(costs, others, alloc)
		if got := psi.At(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Psi(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestPaymentFunctionZeroAtZero(t *testing.T) {
	psi := NewPaymentFunction(testCost(t), []float64{1, 2})
	if got := psi.At(0); got != 0 {
		t.Errorf("Psi(0) = %v", got)
	}
	if got := psi.At(-5); got != 0 {
		t.Errorf("Psi(-5) = %v", got)
	}
}

func TestPaymentFunctionConvexIncreasing(t *testing.T) {
	psi := NewPaymentFunction(testCost(t), []float64{2, 9, 4})
	prev, prevM := psi.At(0.5), psi.Marginal(0.5)
	for p := 1.0; p <= 60; p++ {
		v, m := psi.At(p), psi.Marginal(p)
		if v <= prev {
			t.Fatalf("Psi not increasing at %v", p)
		}
		if m < prevM-1e-9 {
			t.Fatalf("Psi' decreasing at %v: %v < %v (convexity)", p, m, prevM)
		}
		prev, prevM = v, m
	}
}

func TestPaymentFunctionEnvelopeTheorem(t *testing.T) {
	// Ψ'(p) computed via Z'(λ*) must match the numeric derivative of
	// Ψ — the envelope theorem in action.
	psi := NewPaymentFunction(testCost(t), []float64{3, 7, 11, 2})
	for _, p := range []float64{2, 9, 18, 35} {
		const h = 1e-5
		numeric := (psi.At(p+h) - psi.At(p-h)) / (2 * h)
		if got := psi.Marginal(p); math.Abs(got-numeric) > 1e-4*(1+numeric) {
			t.Errorf("Marginal(%v) = %v, numeric %v", p, got, numeric)
		}
	}
}

func TestPaymentFunctionSnapshotsOthers(t *testing.T) {
	others := []float64{1, 2}
	psi := NewPaymentFunction(testCost(t), others)
	before := psi.At(5)
	others[0] = 100 // mutate the caller's slice
	if after := psi.At(5); after != before {
		t.Error("payment function did not copy the background load")
	}
}

func TestPaymentFunctionScheduleSumsToRequest(t *testing.T) {
	r := stats.NewRand(5)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(20)
		others := make([]float64, n)
		for i := range others {
			others[i] = r.Float64() * 30
		}
		psi := NewPaymentFunction(testCost(t), others)
		p := r.Float64() * 100
		alloc := psi.Schedule(p)
		var sum float64
		for _, a := range alloc {
			sum += a
		}
		if math.Abs(sum-p) > 1e-6*(1+p) {
			t.Fatalf("schedule sums to %v, want %v", sum, p)
		}
	}
}
