package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func warmTestPlayer(i int) Player {
	return Player{
		ID:           fmt.Sprintf("olev-%03d", i),
		MaxPowerKW:   60 + float64(i%5)*8,
		Satisfaction: LogSatisfaction{Weight: 1 + 0.1*float64(i%3)},
	}
}

func warmTestCost(t *testing.T, betaPerKWh float64) CostFunction {
	t.Helper()
	capacity := 0.9 * 50.0
	v, err := NewQuadraticCharging(betaPerKWh, 0.875, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 10, Capacity: capacity}}
}

func playerIDs(players []Player) []string {
	ids := make([]string, len(players))
	for i, p := range players {
		ids[i] = p.ID
	}
	return ids
}

func TestProjectScheduleSameFleetIsIdentity(t *testing.T) {
	cfg := testConfig(t, 6, 5)
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.RunParallel(ParallelOptions{Parallelism: 1})
	prev := g.Schedule()
	proj, err := ProjectSchedule(prev, playerIDs(cfg.Players), cfg.Players, cfg.NumSections)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < prev.NumOLEVs(); n++ {
		for c := 0; c < prev.NumSections(); c++ {
			if proj.At(n, c) != prev.At(n, c) {
				t.Fatalf("entry (%d,%d) changed under identity projection: %v vs %v",
					n, c, proj.At(n, c), prev.At(n, c))
			}
		}
	}
}

func TestProjectScheduleChurn(t *testing.T) {
	prev, err := NewSchedule(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev.SetRow(0, []float64{1, 2, 3, 4})
	prev.SetRow(1, []float64{5, 5, 5, 5})
	prev.SetRow(2, []float64{0, 8, 0, 8})
	prevIDs := []string{"a", "b", "c"}

	// b departs, d joins, a and c travel; new order shuffles rows.
	players := []Player{
		{ID: "c", MaxPowerKW: 100, Satisfaction: LogSatisfaction{Weight: 1}},
		{ID: "d", MaxPowerKW: 100, Satisfaction: LogSatisfaction{Weight: 1}},
		{ID: "a", MaxPowerKW: 100, Satisfaction: LogSatisfaction{Weight: 1}},
	}
	proj, err := ProjectSchedule(prev, prevIDs, players, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := [][]float64{{0, 8, 0, 8}, {0, 0, 0, 0}, {1, 2, 3, 4}}
	for n, want := range wantRows {
		for c, w := range want {
			if proj.At(n, c) != w {
				t.Errorf("row %d section %d: got %v want %v", n, c, proj.At(n, c), w)
			}
		}
	}
}

func TestProjectScheduleSectionChangeSpreadsTotal(t *testing.T) {
	prev, err := NewSchedule(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	prev.SetRow(0, []float64{1, 2, 3, 4})
	players := []Player{{ID: "a", MaxPowerKW: 100, Satisfaction: LogSatisfaction{Weight: 1}}}
	proj, err := ProjectSchedule(prev, []string{"a"}, players, 5)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 5; c++ {
		if d := math.Abs(proj.At(0, c) - 2.0); d > 1e-12 {
			t.Errorf("section %d: got %v want 2 (10 kW spread over 5 sections)", c, proj.At(0, c))
		}
	}
}

func TestProjectScheduleClampsToNewFeasibility(t *testing.T) {
	prev, err := NewSchedule(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev.SetRow(0, []float64{10, 20, 30})
	// The new player is tighter on both axes: a 15 kW per-section cap
	// and a 30 kW ceiling. Sections clamp first (10, 15, 15 = 40), then
	// the total rescales proportionally onto the ceiling.
	players := []Player{{
		ID: "a", MaxPowerKW: 30, MaxSectionDrawKW: 15,
		Satisfaction: LogSatisfaction{Weight: 1},
	}}
	proj, err := ProjectSchedule(prev, []string{"a"}, players, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10 * 30.0 / 40.0, 15 * 30.0 / 40.0, 15 * 30.0 / 40.0}
	var total float64
	for c, w := range want {
		if d := math.Abs(proj.At(0, c) - w); d > 1e-12 {
			t.Errorf("section %d: got %v want %v", c, proj.At(0, c), w)
		}
		total += proj.At(0, c)
	}
	if d := math.Abs(total - 30); d > 1e-12 {
		t.Errorf("projected total %v, want the 30 kW ceiling", total)
	}
}

func TestProjectScheduleErrors(t *testing.T) {
	players := []Player{{ID: "a", MaxPowerKW: 10, Satisfaction: LogSatisfaction{Weight: 1}}}
	if _, err := ProjectSchedule(nil, nil, players, 3); err == nil {
		t.Error("nil prior schedule accepted")
	}
	prev, err := NewSchedule(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProjectSchedule(prev, []string{"only-one"}, players, 3); err == nil {
		t.Error("mismatched ID count accepted")
	}
}

func TestNewGameRejectsBadInitialSchedule(t *testing.T) {
	cfg := testConfig(t, 3, 4)
	wrong, err := NewSchedule(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitialSchedule = wrong
	if _, err := NewGame(cfg); err == nil {
		t.Error("wrong-sized initial schedule accepted")
	}
	bad, err := NewSchedule(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	bad.SetRow(0, []float64{1, math.Inf(1), 0, 0})
	cfg.InitialSchedule = bad
	if _, err := NewGame(cfg); err == nil {
		t.Error("non-finite initial schedule accepted")
	}
}

func TestNewGameOwnsInitialScheduleCopy(t *testing.T) {
	cfg := testConfig(t, 3, 4)
	seed, err := NewSchedule(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seed.SetRow(0, []float64{1, 2, 3, 4})
	cfg.InitialSchedule = seed
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed.SetRow(0, []float64{9, 9, 9, 9}) // caller mutation must not leak in
	if got := g.Schedule().At(0, 1); got != 2 {
		t.Errorf("game schedule entry (0,1) = %v, want the seeded 2", got)
	}
}

// TestWarmStartMatchesColdAcrossChurn is the correctness guard of the
// warm-start layer: across a randomized churn sequence — joins,
// departures, and β steps — a game warm-started from the projected
// previous equilibrium must land on the same schedule as a cold
// zero-start solve, to 1e-9 per entry. Both paths use the same solver
// (the round engine at one worker) and the same tight tolerance, so
// the only difference is the starting point — exactly the freedom
// Theorem IV.1 grants. Warm starting must also pay for itself: total
// warm rounds strictly below total cold rounds over the sequence.
func TestWarmStartMatchesColdAcrossChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	players := make([]Player, 18)
	nextID := len(players)
	for i := range players {
		players[i] = warmTestPlayer(i)
	}
	const numSections = 12
	beta := 0.02
	// OrderRandom breaks the homogeneous-fleet symmetry that makes
	// round-robin crawl near the optimum; cold and warm share the seed,
	// so the per-round visit orders are identical on both paths.
	opts := ParallelOptions{Parallelism: 1, Tolerance: 1e-11, MaxRounds: 20000, Order: OrderRandom, Seed: 5}

	var prevWarm *Schedule
	var prevIDs []string
	coldRounds, warmRounds := 0, 0
	for step := 0; step < 12; step++ {
		switch rng.Intn(3) {
		case 0: // joins
			for k := rng.Intn(3) + 1; k > 0; k-- {
				players = append(players, warmTestPlayer(nextID))
				nextID++
			}
		case 1: // departures
			for k := rng.Intn(3) + 1; k > 0 && len(players) > 4; k-- {
				i := rng.Intn(len(players))
				players = append(players[:i], players[i+1:]...)
			}
		default: // LBMP β step
			beta *= 0.8 + 0.4*rng.Float64()
		}
		cfg := Config{
			Players:        players,
			NumSections:    numSections,
			LineCapacityKW: 50,
			Eta:            0.9,
			Cost:           warmTestCost(t, beta),
		}

		cold, err := NewGame(cfg)
		if err != nil {
			t.Fatal(err)
		}
		coldRes := cold.RunParallel(opts)
		if !coldRes.Converged {
			t.Fatalf("step %d: cold solve did not converge", step)
		}
		coldRounds += coldRes.Rounds

		warmCfg := cfg
		if prevWarm != nil {
			seed, err := ProjectSchedule(prevWarm, prevIDs, players, numSections)
			if err != nil {
				t.Fatalf("step %d: project: %v", step, err)
			}
			warmCfg.InitialSchedule = seed
		}
		warm, err := NewGame(warmCfg)
		if err != nil {
			t.Fatal(err)
		}
		warmRes := warm.RunParallel(opts)
		if !warmRes.Converged {
			t.Fatalf("step %d: warm solve did not converge", step)
		}
		warmRounds += warmRes.Rounds

		sc, sw := cold.Schedule(), warm.Schedule()
		var maxDiff float64
		for n := 0; n < len(players); n++ {
			for c := 0; c < numSections; c++ {
				if d := math.Abs(sc.At(n, c) - sw.At(n, c)); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff > 1e-9 {
			t.Fatalf("step %d: warm and cold equilibria diverge by %g (> 1e-9)", step, maxDiff)
		}
		if d := math.Abs(cold.Welfare() - warm.Welfare()); d > 1e-6 {
			t.Fatalf("step %d: welfare diverges by %g", step, d)
		}

		prevWarm = sw
		prevIDs = playerIDs(players)
	}
	if warmRounds >= coldRounds {
		t.Errorf("warm starting saved nothing: %d warm rounds vs %d cold", warmRounds, coldRounds)
	}
	t.Logf("rounds over churn sequence: cold=%d warm=%d (%.1fx)",
		coldRounds, warmRounds, float64(coldRounds)/float64(warmRounds))
}

// TestSolverIncrementalMatchesCold drives the persistent Solver
// through a sequence of in-place perturbations (β steps and player
// edits) and checks each re-solve lands on the cold-solved equilibrium
// for the perturbed configuration.
func TestSolverIncrementalMatchesCold(t *testing.T) {
	cfg := testConfig(t, 16, 10)
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	opts := ParallelOptions{Tolerance: 1e-11, MaxRounds: 20000}
	if res := s.Solve(opts); !res.Converged {
		t.Fatal("initial solve did not converge")
	}

	betas := []float64{0.025, 0.018, 0.03}
	for step, beta := range betas {
		if err := s.SetCost(warmTestCost(t, beta)); err != nil {
			t.Fatal(err)
		}
		if step == 1 {
			p := cfg.Players[3]
			p.MaxPowerKW = 40
			if err := s.SetPlayer(3, p); err != nil {
				t.Fatal(err)
			}
			cfg.Players[3] = p
		}
		res := s.Solve(opts)
		if !res.Converged {
			t.Fatalf("step %d: incremental solve did not converge", step)
		}

		coldCfg := cfg
		coldCfg.Cost = warmTestCost(t, beta)
		cold, err := NewGame(coldCfg)
		if err != nil {
			t.Fatal(err)
		}
		if res := cold.RunParallel(opts); !res.Converged {
			t.Fatalf("step %d: cold reference did not converge", step)
		}
		sc, sw := cold.Schedule(), s.Game().Schedule()
		for n := 0; n < cold.NumPlayers(); n++ {
			for c := 0; c < cold.NumSections(); c++ {
				if d := math.Abs(sc.At(n, c) - sw.At(n, c)); d > 1e-9 {
					t.Fatalf("step %d: entry (%d,%d) diverges by %g", step, n, c, d)
				}
			}
		}
	}
}

// TestSolverWelfareMonotoneAcrossPerturbations is the property test
// for the incremental path: within every re-solve after a
// perturbation, welfare must be nondecreasing round over round (up to
// the engine's replay-guard slack) — the potential-game guarantee does
// not care where the starting schedule came from.
func TestSolverWelfareMonotoneAcrossPerturbations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig(t, 14, 9)
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	opts := ParallelOptions{Tolerance: 1e-10, MaxRounds: 20000, Order: OrderRandom, Seed: 11}

	for step := 0; step < 8; step++ {
		if step > 0 {
			if rng.Intn(2) == 0 {
				if err := s.SetCost(warmTestCost(t, 0.01+0.03*rng.Float64())); err != nil {
					t.Fatal(err)
				}
			} else {
				n := rng.Intn(g.NumPlayers())
				p := g.Player(n)
				p.MaxPowerKW = 30 + 60*rng.Float64()
				if err := s.SetPlayer(n, p); err != nil {
					t.Fatal(err)
				}
			}
		}
		res := s.Solve(opts)
		if !res.Converged {
			t.Fatalf("step %d: did not converge", step)
		}
		for i := 1; i < len(res.Welfare); i++ {
			slack := welfareGuardRelEps * (1 + math.Abs(res.Welfare[i-1]))
			if res.Welfare[i] < res.Welfare[i-1]-slack {
				t.Fatalf("step %d round %d: welfare regressed %v -> %v",
					step, i+1, res.Welfare[i-1], res.Welfare[i])
			}
		}
		// The trajectory must agree with the game's own accounting.
		if d := math.Abs(res.Welfare[len(res.Welfare)-1] - g.Welfare()); d > 1e-9*(1+math.Abs(g.Welfare())) {
			t.Fatalf("step %d: cached welfare drifted from recomputed by %g", step, d)
		}
	}
}

// TestSolverWarmSolveSavesRounds pins the perf claim at the Solver
// level: after a small β step, re-solving from the standing
// equilibrium must take strictly fewer rounds than a cold zero-start
// solve of the same configuration.
func TestSolverWarmSolveSavesRounds(t *testing.T) {
	cfg := testConfig(t, 20, 12)
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	opts := ParallelOptions{Tolerance: 1e-10, MaxRounds: 20000}
	if res := s.Solve(opts); !res.Converged {
		t.Fatal("initial solve did not converge")
	}

	newCost := warmTestCost(t, 0.022)
	if err := s.SetCost(newCost); err != nil {
		t.Fatal(err)
	}
	warm := s.Solve(opts)
	if !warm.Converged {
		t.Fatal("warm re-solve did not converge")
	}

	coldCfg := cfg
	coldCfg.Cost = newCost
	cold, err := NewGame(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	coldRes := cold.RunParallel(opts)
	if !coldRes.Converged {
		t.Fatal("cold reference did not converge")
	}
	if warm.Rounds >= coldRes.Rounds {
		t.Errorf("warm re-solve took %d rounds, cold %d — no saving", warm.Rounds, coldRes.Rounds)
	}
	t.Logf("rounds after β step: cold=%d warm=%d", coldRes.Rounds, warm.Rounds)
}
