package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomInstance builds a randomized game spanning the fleet/section
// range the issue prescribes (N∈{10..50}, C∈{10..100}) with both
// linear and nonlinear charging costs, mixed satisfaction families,
// and a sprinkling of Eq. (3) draw caps.
//
// The line capacity is sized against aggregate fleet demand rather
// than drawn independently: a deeply overloaded fleet with a linear
// (flat-marginal) charging cost is a nearly degenerate potential whose
// best-response dynamics contract at a rate ~1 — every solver,
// including plain Gauss–Seidel, needs tens of thousands of rounds
// there. That regime is a conditioning property of the game, not a
// solver behavior this suite is probing, so linear instances get
// headroom (penalty lightly active at most) while quadratic instances,
// whose strict convexity restores contraction, run moderately
// congested.
func randomInstance(t *testing.T, rng *rand.Rand, nonlinear bool) Config {
	t.Helper()
	n := 10 + rng.Intn(41)
	c := 10 + rng.Intn(91)
	eta := 0.85 + rng.Float64()*0.1
	beta := 0.01 + rng.Float64()*0.03

	players := make([]Player, n)
	var demand float64
	for i := range players {
		p := Player{
			ID:         fmt.Sprintf("olev-%d", i),
			MaxPowerKW: 40 + rng.Float64()*80,
		}
		if rng.Intn(2) == 0 {
			p.Satisfaction = LogSatisfaction{Weight: 0.5 + rng.Float64()*2.5}
		} else {
			p.Satisfaction = SqrtSatisfaction{Weight: 0.2 + rng.Float64()}
		}
		if rng.Intn(4) == 0 {
			p.MaxSectionDrawKW = 2 + rng.Float64()*6
		}
		players[i] = p
		demand += p.MaxPowerKW
	}

	headroom := 1.4 + rng.Float64()*0.6 // linear: penalty lightly active at most
	if nonlinear {
		headroom = 0.7 + rng.Float64()*0.5 // quadratic: moderately congested
	}
	lineCap := demand * headroom / (float64(c) * eta)

	var charging CostFunction
	if nonlinear {
		v, err := NewQuadraticCharging(beta, 0.875, eta*lineCap)
		if err != nil {
			t.Fatal(err)
		}
		charging = v
	} else {
		charging = LinearCharging{Beta: beta}
	}
	return Config{
		Players:        players,
		NumSections:    c,
		LineCapacityKW: lineCap,
		Eta:            eta,
		Cost: SectionCost{
			Charging: charging,
			Overload: OverloadPenalty{Kappa: 500 * beta, Capacity: eta * lineCap},
		},
	}
}

// TestDifferentialSequentialVsParallel is the heart of the determinism
// contract: RunParallel with one worker (the sequential reference) and
// with four workers must produce the same schedule on every instance.
// The contract promises bit-for-bit identity — proposals are pure
// functions of the frozen round state and commits happen in stable
// player order — so the 1e-9 acceptance bound is enforced as exact
// float equality.
func TestDifferentialSequentialVsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const instances = 50
	for trial := 0; trial < instances; trial++ {
		nonlinear := trial%2 == 0
		cfg := randomInstance(t, rng, nonlinear)
		t.Run(fmt.Sprintf("trial%02d_n%d_c%d_nonlinear%v", trial, len(cfg.Players), cfg.NumSections, nonlinear), func(t *testing.T) {
			gSeq, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gPar, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			opts := ParallelOptions{Tolerance: 1e-9, MaxRounds: 5000}
			opts.Parallelism = 1
			resSeq := gSeq.RunParallel(opts)
			opts.Parallelism = 4
			resPar := gPar.RunParallel(opts)

			if !resSeq.Converged || !resPar.Converged {
				t.Fatalf("convergence: sequential=%v parallel=%v after %d/%d rounds",
					resSeq.Converged, resPar.Converged, resSeq.Rounds, resPar.Rounds)
			}
			if resSeq.Rounds != resPar.Rounds || resSeq.Replayed != resPar.Replayed {
				t.Fatalf("trajectory diverged: rounds %d vs %d, replayed %d vs %d",
					resSeq.Rounds, resPar.Rounds, resSeq.Replayed, resPar.Replayed)
			}
			sSeq, sPar := gSeq.Schedule(), gPar.Schedule()
			for n := 0; n < len(cfg.Players); n++ {
				for c := 0; c < cfg.NumSections; c++ {
					if sSeq.At(n, c) != sPar.At(n, c) {
						t.Fatalf("schedule entry (%d,%d): sequential %v != parallel %v (diff %g)",
							n, c, sSeq.At(n, c), sPar.At(n, c), sSeq.At(n, c)-sPar.At(n, c))
					}
				}
			}
			for i := range resSeq.Welfare {
				if resSeq.Welfare[i] != resPar.Welfare[i] {
					t.Fatalf("welfare trajectory diverged at round %d: %v vs %v",
						i+1, resSeq.Welfare[i], resPar.Welfare[i])
				}
			}
		})
	}
}

// TestDifferentialRandomOrderWorkerIndependence extends the contract
// to OrderRandom: the per-round shuffle is a pure function of Seed, so
// for a fixed seed the shuffled trajectories must stay bit-for-bit
// identical at any worker count — the shuffle trades symmetric-fleet
// conditioning for nothing in reproducibility.
func TestDifferentialRandomOrderWorkerIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const instances = 12
	for trial := 0; trial < instances; trial++ {
		nonlinear := trial%2 == 0
		cfg := randomInstance(t, rng, nonlinear)
		t.Run(fmt.Sprintf("trial%02d_n%d_c%d", trial, len(cfg.Players), cfg.NumSections), func(t *testing.T) {
			gSeq, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gPar, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			opts := ParallelOptions{Tolerance: 1e-9, MaxRounds: 5000, Order: OrderRandom, Seed: 7}
			opts.Parallelism = 1
			resSeq := gSeq.RunParallel(opts)
			opts.Parallelism = 4
			resPar := gPar.RunParallel(opts)

			if !resSeq.Converged || !resPar.Converged {
				t.Fatalf("convergence: sequential=%v parallel=%v after %d/%d rounds",
					resSeq.Converged, resPar.Converged, resSeq.Rounds, resPar.Rounds)
			}
			if resSeq.Rounds != resPar.Rounds || resSeq.Replayed != resPar.Replayed {
				t.Fatalf("trajectory diverged: rounds %d vs %d, replayed %d vs %d",
					resSeq.Rounds, resPar.Rounds, resSeq.Replayed, resPar.Replayed)
			}
			sSeq, sPar := gSeq.Schedule(), gPar.Schedule()
			for n := 0; n < len(cfg.Players); n++ {
				for c := 0; c < cfg.NumSections; c++ {
					if sSeq.At(n, c) != sPar.At(n, c) {
						t.Fatalf("schedule entry (%d,%d): sequential %v != parallel %v",
							n, c, sSeq.At(n, c), sPar.At(n, c))
					}
				}
			}
			for i := range resSeq.Welfare {
				if resSeq.Welfare[i] != resPar.Welfare[i] {
					t.Fatalf("welfare trajectory diverged at round %d", i+1)
				}
			}
		})
	}
}

// TestDifferentialEngineVsAsynchronous cross-checks the round engine
// against the asynchronous Gauss–Seidel reference (Run). The schedule
// matrix is not unique at equilibrium — only player totals (and, for
// strictly convex Z, section totals) are — so the comparison is on
// those marginals. Linear charging has a flat marginal below capacity,
// which makes section totals non-unique too; those instances compare
// player totals and welfare only.
func TestDifferentialEngineVsAsynchronous(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		nonlinear := trial%2 == 0
		cfg := randomInstance(t, rng, nonlinear)
		t.Run(fmt.Sprintf("trial%02d_nonlinear%v", trial, nonlinear), func(t *testing.T) {
			gRef, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gEng, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res := gRef.Run(RunOptions{Tolerance: 1e-10, MaxUpdates: 2000 * len(cfg.Players)}); !res.Converged {
				t.Fatal("asynchronous reference did not converge")
			}
			if res := gEng.RunParallel(ParallelOptions{Tolerance: 1e-10, MaxRounds: 5000, Parallelism: 4}); !res.Converged {
				t.Fatal("round engine did not converge")
			}
			sRef, sEng := gRef.Schedule(), gEng.Schedule()
			for n := 0; n < len(cfg.Players); n++ {
				ref, eng := sRef.OLEVTotal(n), sEng.OLEVTotal(n)
				if d := math.Abs(ref - eng); d > 1e-5*(1+math.Abs(ref)) {
					t.Errorf("player %d total: reference %v vs engine %v", n, ref, eng)
				}
			}
			if nonlinear {
				tRef, tEng := gRef.SectionTotals(), gEng.SectionTotals()
				for c := range tRef {
					if d := math.Abs(tRef[c] - tEng[c]); d > 1e-4*(1+math.Abs(tRef[c])) {
						t.Errorf("section %d total: reference %v vs engine %v", c, tRef[c], tEng[c])
					}
				}
			}
			if d := math.Abs(gRef.Welfare() - gEng.Welfare()); d > 1e-6*(1+math.Abs(gRef.Welfare())) {
				t.Errorf("welfare: reference %v vs engine %v", gRef.Welfare(), gEng.Welfare())
			}
		})
	}
}

// TestPropertyEquilibrium checks the paper's equilibrium structure on
// randomized instances after a RunParallel solve:
//
//   - welfare is nondecreasing round over round (Theorem IV.1 plus the
//     engine's guard),
//   - water-filling KKT flatness: each player's active, uncapped
//     sections sit at a common level P_−n,c + p̂_n,c = λ_n, inactive
//     sections have background ≥ λ_n, capped sections sit below it,
//   - payments ξ_n are nonnegative (Z is nondecreasing, Eq. (8)).
func TestPropertyEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nonlinear := trial%2 == 0
		cfg := randomInstance(t, rng, nonlinear)
		t.Run(fmt.Sprintf("trial%02d_nonlinear%v", trial, nonlinear), func(t *testing.T) {
			g, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := g.RunParallel(ParallelOptions{Tolerance: 1e-9, MaxRounds: 5000, Parallelism: 4})
			if !res.Converged {
				t.Fatal("did not converge")
			}
			for i := 1; i < len(res.Welfare); i++ {
				slack := welfareGuardRelEps * (1 + math.Abs(res.Welfare[i-1]))
				if res.Welfare[i] < res.Welfare[i-1]-slack {
					t.Fatalf("welfare regressed at round %d: %v -> %v", i+1, res.Welfare[i-1], res.Welfare[i])
				}
			}

			s := g.Schedule()
			totals := g.SectionTotals()
			const active = 1e-7
			for n := 0; n < len(cfg.Players); n++ {
				drawCap := cfg.Players[n].MaxSectionDrawKW
				level, haveLevel := 0.0, false
				// Uncapped active sections must share one water level.
				for c := 0; c < cfg.NumSections; c++ {
					a := s.At(n, c)
					if a <= active || (drawCap > 0 && a >= drawCap-active) {
						continue
					}
					l := totals[c] // P_−n,c + p̂_n,c
					if !haveLevel {
						level, haveLevel = l, true
						continue
					}
					if d := math.Abs(l - level); d > 1e-5*(1+math.Abs(level)) {
						t.Fatalf("player %d: active sections not flat: %v vs %v", n, l, level)
					}
				}
				if !haveLevel {
					continue
				}
				for c := 0; c < cfg.NumSections; c++ {
					a := s.At(n, c)
					background := totals[c] - a
					switch {
					case a <= active:
						// Inactive: background already at or above the level.
						if background < level-1e-4*(1+math.Abs(level)) {
							t.Fatalf("player %d section %d: inactive but background %v below level %v",
								n, c, background, level)
						}
					case drawCap > 0 && a >= drawCap-active:
						// Capped: would pour more if allowed.
						if totals[c] > level+1e-4*(1+math.Abs(level)) {
							t.Fatalf("player %d section %d: capped yet above level (%v > %v)",
								n, c, totals[c], level)
						}
					}
				}
			}

			for n := 0; n < len(cfg.Players); n++ {
				if xi := g.PaymentOf(n); xi < -1e-9 {
					t.Fatalf("player %d payment negative: %v", n, xi)
				}
			}
		})
	}
}

// TestPropertyBudgetFeasibility: under the Eq. (6) overload penalty the
// equilibrium respects the soft budget P_c ≤ ηP_line up to the
// KKT-implied slack. A player active on section c has
// Z'(P_c) ≤ U'_n(p_n) ≤ U'_n(0), and the penalty marginal is
// κ·(P_c − cap)/cap, so the overshoot is at most maxU'(0)·cap/κ.
func TestPropertyBudgetFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		n := 15 + rng.Intn(30)
		c := 10 + rng.Intn(30)
		lineCap := 20 + rng.Float64()*20
		eta := 0.9
		beta := 0.02
		kappa := 500 * beta
		capacity := eta * lineCap
		players := make([]Player, n)
		maxMarg := 0.0
		for i := range players {
			w := 0.5 + rng.Float64()*2.5
			players[i] = Player{
				ID:           fmt.Sprintf("olev-%d", i),
				MaxPowerKW:   60 + rng.Float64()*60,
				Satisfaction: LogSatisfaction{Weight: w},
			}
			maxMarg = math.Max(maxMarg, players[i].Satisfaction.Marginal(0))
		}
		v, err := NewQuadraticCharging(beta, 0.875, capacity)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGame(Config{
			Players: players, NumSections: c, LineCapacityKW: lineCap, Eta: eta,
			Cost: SectionCost{
				Charging: v,
				Overload: OverloadPenalty{Kappa: kappa, Capacity: capacity},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res := g.RunParallel(ParallelOptions{Tolerance: 1e-9, MaxRounds: 5000, Parallelism: 2}); !res.Converged {
			t.Fatal("did not converge")
		}
		bound := capacity + maxMarg*capacity/kappa + 1e-6
		for sec, total := range g.SectionTotals() {
			if total > bound {
				t.Fatalf("trial %d section %d: load %v exceeds budget bound %v (cap %v)",
					trial, sec, total, bound, capacity)
			}
		}
	}
}
