package core

import (
	"fmt"
	"testing"
)

func symmetricGame(t *testing.T) *Game {
	t.Helper()
	v, err := NewQuadraticCharging(0.02, 0.875, 53.55)
	if err != nil {
		t.Fatal(err)
	}
	z := SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 10, Capacity: 48.2}}
	players := make([]Player, 10)
	for i := range players {
		players[i] = Player{
			ID:           fmt.Sprintf("p%d", i),
			MaxPowerKW:   70,
			Satisfaction: LogSatisfaction{Weight: 2},
		}
	}
	g, err := NewGame(Config{
		Players: players, NumSections: 4, LineCapacityKW: 53.55, Eta: 0.9, Cost: z,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSynchronousOscillatesWhereAsynchronousConverges is the ablation
// that justifies the paper's design: on a symmetric demand-saturated
// instance, simultaneous (Jacobi) best response herds every player
// onto the same cheap sections at once and cycles violently, while
// the paper's one-at-a-time scheme settles.
func TestSynchronousOscillatesWhereAsynchronousConverges(t *testing.T) {
	sync := symmetricGame(t)
	syncRes := sync.RunSynchronous(RunOptions{MaxUpdates: 2000, Tolerance: 1e-6})
	if syncRes.Converged {
		t.Fatal("Jacobi unexpectedly converged; the ablation premise is broken")
	}
	syncAmp := OscillationAmplitude(syncRes.Congestion, 0.25)
	if syncAmp < 0.5 {
		t.Errorf("Jacobi tail amplitude %v; expected violent cycling", syncAmp)
	}

	async := symmetricGame(t)
	asyncRes := async.Run(RunOptions{MaxUpdates: 2000, Tolerance: 1e-4})
	asyncAmp := OscillationAmplitude(asyncRes.Congestion, 0.25)
	if asyncAmp > 0.01 {
		t.Errorf("asynchronous tail amplitude %v; expected settling", asyncAmp)
	}
	if asyncAmp*50 > syncAmp {
		t.Errorf("contrast too weak: async %v vs sync %v", asyncAmp, syncAmp)
	}
}

func TestSynchronousStillConvergesWhenDemandIsInterior(t *testing.T) {
	// Far from the capacity wall the Jacobi map is a contraction for
	// this cost family, so it does converge — the failure is
	// specifically a congestion-boundary phenomenon.
	v, err := NewQuadraticCharging(0.02, 0.875, 53.55)
	if err != nil {
		t.Fatal(err)
	}
	players := make([]Player, 6)
	for i := range players {
		players[i] = Player{
			ID:           fmt.Sprintf("p%d", i),
			MaxPowerKW:   40,
			Satisfaction: LogSatisfaction{Weight: 0.05}, // light demand
		}
	}
	g, err := NewGame(Config{
		Players: players, NumSections: 12, LineCapacityKW: 53.55, Eta: 0.9,
		Cost: SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 10, Capacity: 48.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := g.RunSynchronous(RunOptions{MaxUpdates: 5000, Tolerance: 1e-6})
	if !res.Converged {
		t.Errorf("interior Jacobi did not converge in %d updates", res.Updates)
	}
}

func TestOscillationAmplitude(t *testing.T) {
	if got := OscillationAmplitude(nil, 0.5); got != 0 {
		t.Errorf("empty series amplitude %v", got)
	}
	flat := []float64{1, 1, 1, 1}
	if got := OscillationAmplitude(flat, 0.5); got != 0 {
		t.Errorf("flat amplitude %v", got)
	}
	// Transient then oscillation: tail picks up only the cycle.
	series := []float64{0, 5, 1, 2, 1, 2, 1, 2}
	if got := OscillationAmplitude(series, 0.5); got != 1 {
		t.Errorf("tail amplitude %v, want 1", got)
	}
	// Bad tailFrac falls back.
	if got := OscillationAmplitude(series, 2); got != 1 {
		t.Errorf("fallback amplitude %v", got)
	}
}
