package core

import (
	"fmt"
	"math"

	"olevgrid/internal/stats"
)

// Player is one OLEV as the game sees it: an identity, the Eq. (2)
// power ceiling P^OLEV_n, and a private satisfaction function the
// smart grid never observes.
type Player struct {
	ID           string
	MaxPowerKW   float64
	Satisfaction Satisfaction
	// MaxSectionDrawKW is Eq. (3)'s per-section coupling limit
	// P_line(vel_n) for this vehicle; zero or negative means
	// unconstrained (the homogeneous-velocity setting, where the
	// shared section capacity already encodes it).
	MaxSectionDrawKW float64
}

// Config configures a Game. The paper's setting has identical charging
// sections, so one line capacity, safety factor and section cost are
// shared by all C sections — the premise under which Lemma IV.1's
// water-filling is the exact minimum-cost schedule.
type Config struct {
	// Players are the participating OLEVs.
	Players []Player
	// NumSections is C.
	NumSections int
	// LineCapacityKW is P_line of Eq. (1) for every section.
	LineCapacityKW float64
	// Eta is the smart grid's safety factor η ∈ (0, 1]; the usable
	// capacity of each section is η·P_line (Eq. 4).
	Eta float64
	// Cost is the shared section cost Z(·) of Eq. (6).
	Cost CostFunction
	// InitialSchedule, when non-nil, warm-starts the game from a prior
	// equilibrium instead of the all-zero schedule. Theorem IV.1
	// guarantees convergence to the social optimum from any feasible
	// starting point, so seeding only changes round counts, never the
	// destination; build one from an earlier game with ProjectSchedule.
	// Dimensions must match Players × NumSections.
	InitialSchedule *Schedule
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if len(c.Players) == 0 {
		return fmt.Errorf("core: game needs at least one player")
	}
	seen := make(map[string]struct{}, len(c.Players))
	for i, p := range c.Players {
		if p.ID == "" {
			return fmt.Errorf("core: player %d has an empty ID", i)
		}
		if _, dup := seen[p.ID]; dup {
			return fmt.Errorf("core: duplicate player ID %q", p.ID)
		}
		seen[p.ID] = struct{}{}
		if p.MaxPowerKW < 0 || math.IsNaN(p.MaxPowerKW) {
			return fmt.Errorf("core: player %q max power %v must be non-negative", p.ID, p.MaxPowerKW)
		}
		if p.Satisfaction == nil {
			return fmt.Errorf("core: player %q has no satisfaction function", p.ID)
		}
	}
	if c.NumSections < 1 {
		return fmt.Errorf("core: need at least one section, got %d", c.NumSections)
	}
	if c.LineCapacityKW <= 0 || math.IsNaN(c.LineCapacityKW) {
		return fmt.Errorf("core: line capacity %v must be positive", c.LineCapacityKW)
	}
	if c.Eta <= 0 || c.Eta > 1 {
		return fmt.Errorf("core: safety factor %v outside (0, 1]", c.Eta)
	}
	if c.Cost == nil {
		return fmt.Errorf("core: game needs a section cost function")
	}
	if c.InitialSchedule != nil {
		if err := validateInitialSchedule(c.InitialSchedule, len(c.Players), c.NumSections); err != nil {
			return err
		}
	}
	return nil
}

// Game is the strategic game of Section IV: the smart grid holds the
// current schedule and quotes payment functions; OLEVs best-respond.
// A Game is not safe for concurrent use — the decentralized framework
// in internal/sched serializes access the way the smart grid would.
type Game struct {
	cfg      Config
	schedule *Schedule
}

// NewGame constructs a game with an all-zero initial schedule, or —
// when cfg.InitialSchedule is set — warm-started from that schedule.
func NewGame(cfg Config) (*Game, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	players := make([]Player, len(cfg.Players))
	copy(players, cfg.Players)
	cfg.Players = players
	var s *Schedule
	if cfg.InitialSchedule != nil {
		s = cfg.InitialSchedule.Clone()
		cfg.InitialSchedule = nil // the game owns its copy
	} else {
		var err error
		s, err = NewSchedule(len(cfg.Players), cfg.NumSections)
		if err != nil {
			return nil, err
		}
	}
	return &Game{cfg: cfg, schedule: s}, nil
}

// NumPlayers returns N.
func (g *Game) NumPlayers() int { return len(g.cfg.Players) }

// NumSections returns C.
func (g *Game) NumSections() int { return g.cfg.NumSections }

// Player returns the n-th player definition.
func (g *Game) Player(n int) Player { return g.cfg.Players[n] }

// Schedule returns a deep copy of the current power schedule.
func (g *Game) Schedule() *Schedule { return g.schedule.Clone() }

// SectionTotals returns the current per-section totals (P_1…P_C).
func (g *Game) SectionTotals() []float64 { return g.schedule.SectionTotals() }

// SectionCapacityKW returns the usable capacity η·P_line.
func (g *Game) SectionCapacityKW() float64 {
	return g.cfg.Eta * g.cfg.LineCapacityKW
}

// TotalPowerKW returns the total scheduled power Σ_n p_n.
func (g *Game) TotalPowerKW() float64 { return g.schedule.Total() }

// CongestionDegree returns Σ_c P_c / Σ_c P_line, the paper's measure
// of how loaded the charging infrastructure is.
func (g *Game) CongestionDegree() float64 {
	return g.schedule.Total() / (float64(g.cfg.NumSections) * g.cfg.LineCapacityKW)
}

// Welfare returns the social welfare W(p) of Eq. (7) for the current
// schedule: total satisfaction minus total section cost, in $/h.
func (g *Game) Welfare() float64 {
	d := g.WelfareBreakdown()
	return d.Satisfaction - d.SectionCost
}

// WelfareParts decomposes W(p) into its Eq. (7) terms.
type WelfareParts struct {
	// Satisfaction is Σ_n U_n(p_n) in $/h.
	Satisfaction float64
	// SectionCost is Σ_c Z(P_c) in $/h.
	SectionCost float64
}

// Welfare returns Satisfaction − SectionCost.
func (w WelfareParts) Welfare() float64 { return w.Satisfaction - w.SectionCost }

// WelfareBreakdown returns the decomposed social welfare, used by
// reports that need to show where welfare comes from.
func (g *Game) WelfareBreakdown() WelfareParts {
	var parts WelfareParts
	for n, p := range g.cfg.Players {
		parts.Satisfaction += p.Satisfaction.Value(g.schedule.OLEVTotal(n))
	}
	for _, pc := range g.schedule.SectionTotals() {
		parts.SectionCost += g.cfg.Cost.Cost(pc)
	}
	return parts
}

// PaymentOf returns ξ_n for player n's current allocation.
func (g *Game) PaymentOf(n int) float64 {
	others := g.schedule.OthersSectionTotals(n)
	costs := make([]CostFunction, g.cfg.NumSections)
	for c := range costs {
		costs[c] = g.cfg.Cost
	}
	return Payment(costs, others, g.schedule.Row(n))
}

// TotalPayment returns Σ_n ξ_n.
func (g *Game) TotalPayment() float64 {
	var total float64
	for n := range g.cfg.Players {
		total += g.PaymentOf(n)
	}
	return total
}

// UnitPaymentPerMWh returns the average unit payment in $/MWh — the
// y-axis of Fig. 5(a)/6(a). The schedule is a power snapshot, so the
// ratio of cost rate to power is a $/kWh price, scaled to $/MWh.
func (g *Game) UnitPaymentPerMWh() float64 {
	power := g.schedule.Total()
	if power <= 0 {
		return 0
	}
	return g.TotalPayment() / power * 1000
}

// UtilityOf returns F_n = U_n(p_n) − ξ_n for player n.
func (g *Game) UtilityOf(n int) float64 {
	return g.cfg.Players[n].Satisfaction.Value(g.schedule.OLEVTotal(n)) - g.PaymentOf(n)
}

// QuotePayment builds the payment function Ψ_n the smart grid would
// announce to player n against the frozen current schedule (Eq. 20),
// honoring the player's Eq. (3) draw cap if one is set.
func (g *Game) QuotePayment(n int) *PaymentFunction {
	psi := NewPaymentFunction(g.cfg.Cost, g.schedule.OthersSectionTotals(n))
	if limit := g.cfg.Players[n].MaxSectionDrawKW; limit > 0 {
		psi = psi.WithDrawCap(limit)
	}
	return psi
}

// UpdateOne performs one asynchronous step of Section IV-D for player
// n: quote Ψ_n, best-respond, water-fill the new total, install the
// row. It returns |Δp_n|, the change in the player's total request.
func (g *Game) UpdateOne(n int) float64 {
	if n < 0 || n >= len(g.cfg.Players) {
		return 0
	}
	player := g.cfg.Players[n]
	psi := g.QuotePayment(n)
	before := g.schedule.OLEVTotal(n)
	target := BestResponse(player.Satisfaction, psi, player.MaxPowerKW)
	g.schedule.SetRow(n, psi.Schedule(target))
	return math.Abs(target - before)
}

// UpdateOrder selects how the asynchronous framework picks the next
// OLEV to update.
type UpdateOrder int

const (
	// OrderRoundRobin cycles players 0…N−1, the predefined cycle the
	// convergence proof assumes.
	OrderRoundRobin UpdateOrder = iota + 1
	// OrderRandom shuffles the cycle each round, the "randomly chosen
	// OLEV" variant of Section IV-D.
	OrderRandom
)

// RunOptions configures Game.Run.
type RunOptions struct {
	// MaxUpdates bounds total single-player updates; 0 means 1000·N.
	MaxUpdates int
	// Tolerance declares convergence when no player's request moved
	// more than this over a full cycle; 0 means 1e-6.
	Tolerance float64
	// Order selects the update order; 0 means OrderRoundRobin.
	Order UpdateOrder
	// Seed seeds the shuffle for OrderRandom.
	Seed int64
	// OnUpdate, if non-nil, observes the game after every update.
	OnUpdate func(update int, g *Game)
}

// Result reports a Run.
type Result struct {
	// Updates is the number of single-player updates performed.
	Updates int
	// Converged reports whether the tolerance criterion was met.
	Converged bool
	// Welfare is W(p) after each update.
	Welfare []float64
	// Congestion is the congestion degree after each update.
	Congestion []float64
}

// Run executes the asynchronous best-response iteration until the
// schedule converges or MaxUpdates is exhausted, returning the
// trajectory. Theorem IV.1 guarantees convergence to the socially
// optimal schedule; the welfare trajectory in the result is
// non-decreasing (up to float noise), which tests assert.
func (g *Game) Run(opts RunOptions) Result {
	n := len(g.cfg.Players)
	if opts.MaxUpdates <= 0 {
		opts.MaxUpdates = 1000 * n
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-6
	}
	if opts.Order == 0 {
		opts.Order = OrderRoundRobin
	}
	rng := stats.NewRand(opts.Seed)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	var res Result
	for res.Updates < opts.MaxUpdates {
		if opts.Order == OrderRandom {
			rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var cycleMax float64
		for _, idx := range order {
			if res.Updates >= opts.MaxUpdates {
				break
			}
			delta := g.UpdateOne(idx)
			if delta > cycleMax {
				cycleMax = delta
			}
			res.Updates++
			res.Welfare = append(res.Welfare, g.Welfare())
			res.Congestion = append(res.Congestion, g.CongestionDegree())
			if opts.OnUpdate != nil {
				opts.OnUpdate(res.Updates, g)
			}
		}
		if cycleMax < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	return res
}
