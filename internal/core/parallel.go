package core

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"olevgrid/internal/stats"
)

// This file is the fleet-scale round engine for the Section IV
// dynamics: a worker pool evaluates best responses for a block of
// OLEVs concurrently against the frozen schedule, and a single
// committer installs the block in stable player order. The engine
// keeps the aggregate loads P_−n,c, the per-section costs Z(P_c) and
// the per-player satisfactions U_n(p_n) incrementally — per-section
// deltas instead of O(N·C) rebuilds — and reuses all scratch buffers,
// so a steady-state turn performs zero heap allocations.
//
// Determinism contract: the result of RunParallel depends on the game,
// MaxRounds, Tolerance, BatchSize, Order and Seed, but NOT on
// Parallelism. Block membership is fixed (the visit order — index
// order, or a seeded per-round shuffle under OrderRandom — sliced
// BatchSize at a time), every proposal is a pure function of the
// frozen round state, and the reduction (commit) order is the stable
// visit order, so running with one worker or sixteen produces
// bit-for-bit identical schedules. The differential suite in
// differential_test.go enforces this.
//
// Convergence safety: a block of simultaneous best responses is a
// Jacobi step, which an exact potential game does not guarantee to
// improve (see RunSynchronous for the failure mode). The committer
// therefore guards every block with the potential itself: a block that
// decreases the social welfare W beyond float noise, or that moves
// players by at least the convergence tolerance while gaining no
// welfare (the signature of a Jacobi cycle, whose states can share
// identical W by symmetry), is rolled back and replayed
// player-by-player — an exact Gauss–Seidel pass, which Theorem IV.1
// guarantees is monotone. W is therefore nondecreasing across rounds,
// and since it is bounded above, block gains must vanish; once they do,
// any block still moving players replays sequentially, so the dynamics
// degenerate to convergent Gauss–Seidel instead of cycling. The cost is
// that the last few rounds before convergence may serialize; the
// steady-state turns the benchmark measures never replay.

// ParallelOptions configures Game.RunParallel.
type ParallelOptions struct {
	// MaxRounds bounds full rounds over the fleet; 0 means 1000.
	MaxRounds int
	// Tolerance declares convergence when no player's total request
	// moved more than this over a full round; 0 means 1e-6.
	Tolerance float64
	// Parallelism is the worker count for the proposal phase; 0 means
	// GOMAXPROCS, 1 evaluates proposals inline on the calling
	// goroutine (the sequential reference the differential suite and
	// the speedup benchmark compare against).
	Parallelism int
	// BatchSize is the number of players whose best responses are
	// speculated against the same frozen schedule before the block is
	// committed. It is part of the determinism contract — changing it
	// changes the trajectory — while Parallelism never does. 0 means
	// DefaultBatchSize; 1 degenerates to exact Gauss–Seidel.
	BatchSize int
	// Order selects the per-round visit order; 0 means
	// OrderRoundRobin. OrderRandom reshuffles the order each round from
	// Seed — the paper's "randomly chosen OLEV" dynamics, which break
	// the symmetry that makes deterministic order slow on homogeneous
	// fleets. Like BatchSize, Order and Seed are part of the
	// determinism contract; Parallelism still is not.
	Order UpdateOrder
	// Seed seeds the shuffle for OrderRandom.
	Seed int64
	// OnRound, if non-nil, observes the game after every round.
	OnRound func(round int, g *Game)
	// Metrics, if non-nil, receives solver telemetry (rounds, deltas,
	// welfare trajectory, end-of-solve reconciliation values). Nil is
	// the zero-overhead off switch; armed, it adds only atomic stores
	// per round and never changes results — both halves of that
	// contract are asserted by the conformance tests.
	Metrics *Metrics
}

// DefaultBatchSize is the speculative block size when
// ParallelOptions.BatchSize is zero: wide enough to keep a worker pool
// busy, narrow enough that blocks rarely trip the welfare guard.
const DefaultBatchSize = 8

// welfareGuardRelEps is the relative slack the block-commit welfare
// guard allows before declaring a Jacobi block harmful: decreases
// within float noise of the running welfare are accepted, anything
// larger rolls the block back for a sequential replay.
const welfareGuardRelEps = 1e-9

// ParallelResult reports a RunParallel execution. Trajectories are
// per round (not per update): the engine's unit of progress is the
// round, and recording per round keeps the steady-state turn
// allocation-free.
type ParallelResult struct {
	// Rounds is the number of full rounds executed.
	Rounds int
	// Updates is Rounds times the fleet size, for comparability with
	// Result.Updates.
	Updates int
	// Converged reports whether the tolerance criterion was met.
	Converged bool
	// Welfare is W(p) after each round.
	Welfare []float64
	// Congestion is the congestion degree after each round.
	Congestion []float64
	// Replayed counts blocks the welfare guard rolled back and
	// replayed sequentially.
	Replayed int
}

// RunParallel executes the block-speculative best-response iteration
// until the schedule converges or MaxRounds is exhausted. See the file
// comment for the engine's semantics and determinism contract.
func (g *Game) RunParallel(opts ParallelOptions) ParallelResult {
	e := newRoundEngine(g, opts.Parallelism, opts.BatchSize, opts.Tolerance)
	defer e.stop()
	return e.loop(opts)
}

// loop drives rounds until convergence or the round budget runs out.
// It is reusable across solves on a persistent engine (Solver): each
// call re-arms the tolerance and resets the visit order, and Replayed
// is reported as a delta over this solve only, so back-to-back solves
// behave exactly like fresh RunParallel calls on the carried-over
// schedule. Parallelism and BatchSize stay as constructed.
func (e *roundEngine) loop(opts ParallelOptions) ParallelResult {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 1000
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-6
	}
	e.tol = opts.Tolerance
	e.setOrder(opts.Order, opts.Seed)
	replayedBefore := e.replayed

	res := ParallelResult{
		Welfare:    make([]float64, 0, opts.MaxRounds),
		Congestion: make([]float64, 0, opts.MaxRounds),
	}
	for round := 1; round <= opts.MaxRounds; round++ {
		maxDelta := e.round()
		res.Rounds = round
		res.Updates += e.n
		w := e.welfare()
		cd := e.congestion()
		res.Welfare = append(res.Welfare, w)
		res.Congestion = append(res.Congestion, cd)
		opts.Metrics.observeRound(round, maxDelta, w, cd)
		if opts.OnRound != nil {
			opts.OnRound(round, e.g)
		}
		if maxDelta < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Replayed = e.replayed - replayedBefore
	opts.Metrics.observeSolve(e.g, &res)
	return res
}

// proposal is one player's speculated best response against the frozen
// block state.
type proposal struct {
	target float64
	row    []float64
}

// fillScratch is one worker's reusable buffers for quote construction
// and water-level evaluation.
type fillScratch struct {
	others []float64
	sorted []float64
	prefix []float64
}

func newFillScratch(c int) *fillScratch {
	return &fillScratch{
		others: make([]float64, c),
		sorted: make([]float64, c),
		prefix: make([]float64, c+1),
	}
}

// span is a half-open player-index range handed to the worker pool.
type span struct{ lo, hi int }

// roundEngine owns the incremental state of one RunParallel execution.
type roundEngine struct {
	g    *Game
	cost CostFunction
	// costMarg is cost.Marginal with the interface dispatch stripped
	// for the known concrete compositions (see marginalOf); it is what
	// the bisection in propose actually calls.
	costMarg func(float64) float64
	n, c     int
	workers int
	batch   int
	tol     float64 // convergence tolerance; also arms the stall guard

	// Incrementally maintained aggregates.
	totals      []float64 // P_c
	costAt      []float64 // Z(P_c) cached per section
	costSum     float64   // Σ_c Z(P_c)
	satAt       []float64 // U_n(p_n) cached per player
	satSum      float64   // Σ_n U_n(p_n)
	playerTotal []float64 // p_n
	totalPower  float64   // Σ_n p_n

	// Block scratch: proposals plus the state needed to roll a block
	// back when the welfare guard trips.
	props       []proposal
	before      []float64
	savedTotals []float64
	savedCostAt []float64
	savedRows   [][]float64
	savedSat    []float64
	savedPTotal []float64

	// Worker pool. next distributes visit-order slots; start releases
	// the workers on a block; pending gates the committer.
	scratch []*fillScratch
	start   chan span
	next    atomic.Int64
	pending sync.WaitGroup

	// order is the per-round visit permutation (identity under
	// OrderRoundRobin); rng and swap are armed by enableRandomOrder and
	// reshuffle it each round without allocating.
	order []int
	rng   *rand.Rand
	swap  func(i, j int)

	replayed int
}

func newRoundEngine(g *Game, parallelism, batch int, tol float64) *roundEngine {
	n, c := g.NumPlayers(), g.NumSections()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > n {
		batch = n
	}
	e := &roundEngine{
		g: g, cost: g.cfg.Cost, costMarg: marginalOf(g.cfg.Cost), n: n, c: c,
		workers:     parallelism,
		batch:       batch,
		tol:         tol,
		totals:      make([]float64, c),
		costAt:      make([]float64, c),
		satAt:       make([]float64, n),
		playerTotal: make([]float64, n),
		props:       make([]proposal, batch),
		before:      make([]float64, batch),
		savedTotals: make([]float64, c),
		savedCostAt: make([]float64, c),
		savedRows:   make([][]float64, batch),
		savedSat:    make([]float64, batch),
		savedPTotal: make([]float64, batch),
		scratch:     make([]*fillScratch, parallelism),
		order:       make([]int, n),
	}
	for i := range e.order {
		e.order[i] = i
	}
	for i := range e.props {
		e.props[i].row = make([]float64, c)
		e.savedRows[i] = make([]float64, c)
	}
	for i := range e.scratch {
		e.scratch[i] = newFillScratch(c)
	}
	e.prime()
	if e.workers > 1 {
		e.start = make(chan span)
		for w := 1; w < e.workers; w++ {
			go e.worker(e.scratch[w])
		}
	}
	return e
}

// setOrder resets the visit permutation to identity and arms (or
// disarms) the seeded per-round reshuffle. Resetting first makes each
// solve on a persistent engine independent of where the previous
// solve's shuffle left the permutation — the cross-solve half of the
// determinism contract. The swap closure is bound once so the
// steady-state round stays allocation-free.
func (e *roundEngine) setOrder(order UpdateOrder, seed int64) {
	for i := range e.order {
		e.order[i] = i
	}
	if order != OrderRandom {
		e.rng = nil
		return
	}
	e.rng = stats.NewRand(seed)
	if e.swap == nil {
		e.swap = func(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] }
	}
}

// setCost swaps the shared section cost — an LBMP β step between
// hours — and refreshes only the Z cache: one O(C) pass over the
// standing totals, with satisfactions and aggregates untouched.
func (e *roundEngine) setCost(cost CostFunction) {
	e.cost = cost
	e.costMarg = marginalOf(cost)
	e.g.cfg.Cost = cost
	e.costSum = 0
	for c := range e.totals {
		e.costAt[c] = cost.Cost(e.totals[c])
		e.costSum += e.costAt[c]
	}
}

// setPlayer replaces player n's definition (a demand or ceiling
// change) and refreshes only that player's cached satisfaction.
func (e *roundEngine) setPlayer(n int, p Player) {
	e.g.cfg.Players[n] = p
	sat := p.Satisfaction.Value(e.playerTotal[n])
	e.satSum += sat - e.satAt[n]
	e.satAt[n] = sat
}

// setSchedule replaces the standing schedule wholesale and re-primes
// the aggregates — the one O(N·C) entry point of a warm re-solve.
func (e *roundEngine) setSchedule(s *Schedule) error {
	if err := validateInitialSchedule(s, e.n, e.c); err != nil {
		return err
	}
	copy(e.g.schedule.p, s.p)
	e.prime()
	return nil
}

// prime seeds the incremental aggregates from the game's current
// schedule — the one O(N·C) pass the engine ever does.
func (e *roundEngine) prime() {
	for i := range e.totals {
		e.totals[i] = 0
	}
	e.totalPower, e.satSum, e.costSum = 0, 0, 0
	for n := 0; n < e.n; n++ {
		row := e.rowRef(n)
		var sum float64
		for c, v := range row {
			e.totals[c] += v
			sum += v
		}
		e.playerTotal[n] = sum
		e.totalPower += sum
		e.satAt[n] = e.g.cfg.Players[n].Satisfaction.Value(sum)
		e.satSum += e.satAt[n]
	}
	for c := range e.totals {
		e.costAt[c] = e.cost.Cost(e.totals[c])
		e.costSum += e.costAt[c]
	}
}

// stop winds the worker pool down.
func (e *roundEngine) stop() {
	if e.start != nil {
		close(e.start)
		e.start = nil
	}
}

// rowRef returns OLEV n's live row in the game schedule — the engine
// mutates the schedule in place, so Game accessors stay truthful
// mid-run.
func (e *roundEngine) rowRef(n int) []float64 {
	s := e.g.schedule
	return s.p[n*s.c : (n+1)*s.c]
}

func (e *roundEngine) welfare() float64 { return e.satSum - e.costSum }
func (e *roundEngine) congestion() float64 {
	return e.totalPower / (float64(e.c) * e.g.cfg.LineCapacityKW)
}

// worker is one pool goroutine: on every released span it steals
// player indices until the span is drained.
func (e *roundEngine) worker(ws *fillScratch) {
	for sp := range e.start {
		e.drain(sp, ws)
		e.pending.Done()
	}
}

func (e *roundEngine) drain(sp span, ws *fillScratch) {
	for {
		i := int(e.next.Add(1)) - 1
		if i >= sp.hi {
			return
		}
		e.propose(e.order[i], i-sp.lo, ws)
	}
}

// round visits the whole fleet in blocks along the visit order and
// returns the maximum |Δp_n| observed.
func (e *roundEngine) round() float64 {
	if e.rng != nil {
		e.rng.Shuffle(e.n, e.swap)
	}
	var maxDelta float64
	for lo := 0; lo < e.n; lo += e.batch {
		hi := lo + e.batch
		if hi > e.n {
			hi = e.n
		}
		e.proposeBlock(lo, hi)
		if d := e.commitBlock(lo, hi); d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

// proposeBlock computes best responses for players [lo, hi) against
// the frozen current schedule — the parallel phase.
func (e *roundEngine) proposeBlock(lo, hi int) {
	if e.workers <= 1 || hi-lo == 1 {
		for i := lo; i < hi; i++ {
			e.propose(e.order[i], i-lo, e.scratch[0])
		}
		return
	}
	e.next.Store(int64(lo))
	workers := e.workers - 1 // the committer goroutine also drains
	e.pending.Add(workers)
	sp := span{lo: lo, hi: hi}
	for w := 0; w < workers; w++ {
		e.start <- sp
	}
	e.drain(sp, e.scratch[0])
	e.pending.Wait()
}

// propose computes player n's exact best response against the frozen
// schedule into block slot. It is a pure function of the engine's
// frozen aggregates, so the result is identical no matter which worker
// runs it — the heart of the determinism contract.
func (e *roundEngine) propose(n, slot int, ws *fillScratch) {
	player := e.g.cfg.Players[n]
	row := e.rowRef(n)
	for c := range ws.others {
		o := e.totals[c] - row[c]
		if o < 0 { // guard against float drift, as OthersSectionTotals does
			o = 0
		}
		ws.others[c] = o
	}
	copy(ws.sorted, ws.others)
	sort.Float64s(ws.sorted)
	ws.prefix[0] = 0
	for k, v := range ws.sorted {
		ws.prefix[k+1] = ws.prefix[k] + v
	}

	drawCap := player.MaxSectionDrawKW
	pmax := player.MaxPowerKW
	if drawCap > 0 {
		if ceiling := drawCap * float64(e.c); pmax > ceiling {
			pmax = ceiling
		}
	}
	prop := &e.props[slot]
	if pmax <= 0 {
		prop.target = 0
		for c := range prop.row {
			prop.row[c] = 0
		}
		return
	}

	levelOf := func(p float64) float64 {
		if drawCap > 0 {
			return cappedLevelSorted(ws.sorted, ws.prefix, drawCap, p)
		}
		return levelSorted(ws.sorted, ws.prefix, p)
	}
	// The bisection below evaluates deriv dozens of times per player
	// per round, so both marginals are devirtualized: the section cost
	// through the engine's cached costMarg, the satisfaction through a
	// concrete fast path for the evaluation's LogSatisfaction. Each
	// shortcut performs the same operations in the same order as the
	// interface method it replaces, keeping the trajectory bit-identical.
	costMarg := e.costMarg
	logSat, isLog := player.Satisfaction.(LogSatisfaction)
	deriv := func(p float64) float64 {
		var lvl float64
		if drawCap > 0 {
			lvl = cappedLevelSorted(ws.sorted, ws.prefix, drawCap, p)
		} else {
			lvl = levelSorted(ws.sorted, ws.prefix, p)
		}
		var sm float64
		if isLog {
			if p < 0 {
				p = 0
			}
			sm = logSat.Weight / (1 + p)
		} else {
			sm = player.Satisfaction.Marginal(p)
		}
		return sm - costMarg(lvl)
	}

	// The three-case structure of BestResponse, bit-compatible with the
	// asynchronous solver's bisection.
	var target float64
	switch {
	case deriv(0) <= 0:
		target = 0
	case deriv(pmax) >= 0:
		target = pmax
	default:
		lo, hi := 0.0, pmax
		for i := 0; i < bestResponseIterations; i++ {
			mid := lo + (hi-lo)/2
			if deriv(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		target = lo + (hi-lo)/2
	}
	prop.target = target
	fillRow(prop.row, ws.others, drawCap, target, levelOf(target))
}

// fillRow writes the water-filled allocation for the given level into
// dst, honoring a per-section draw cap, and repairs the residual so
// the row sums exactly to target (mirroring PerDrawWaterFill).
func fillRow(dst, others []float64, drawCap, target, level float64) {
	if target <= 0 {
		for c := range dst {
			dst[c] = 0
		}
		return
	}
	var sum float64
	for c, o := range others {
		a := level - o
		if a <= 0 {
			dst[c] = 0
			continue
		}
		if drawCap > 0 && a > drawCap {
			a = drawCap
		}
		dst[c] = a
		sum += a
	}
	if drawCap <= 0 {
		return
	}
	// Under a cap the level solve can leave a residual; spread it over
	// the uncapped active sections exactly as PerDrawWaterFill does.
	if diff := target - sum; math.Abs(diff) > 1e-15 {
		var slack float64
		for c := range dst {
			if dst[c] > 0 && dst[c] < drawCap {
				slack += dst[c]
			}
		}
		if slack > 0 {
			for c := range dst {
				if dst[c] > 0 && dst[c] < drawCap {
					dst[c] += diff * dst[c] / slack
				}
			}
		}
	}
}

// levelSorted returns the exact water level λ*(total) for a sorted
// background with prefix sums: the same breakpoint solution WaterFill
// computes, found by binary search instead of a linear scan. The
// predicate "filling the k lowest sections absorbs the request before
// the level reaches section k+1" is monotone in k, so the first true
// index is the active-set size.
func levelSorted(sorted, prefix []float64, total float64) float64 {
	c := len(sorted)
	if total <= 0 {
		return sorted[0]
	}
	// Inline sort.Search: the closure would be called from the hottest
	// loop in the engine, several probes per deriv evaluation.
	i, j := 0, c-1
	for i < j {
		h := int(uint(i+j) >> 1)
		k := h + 1
		if (total+prefix[k])/float64(k) > sorted[k] {
			i = h + 1
		} else {
			j = h
		}
	}
	k := i + 1
	return (total + prefix[k]) / float64(k)
}

// cappedLevelSorted solves Y(λ) = Σ_c min([λ − o_c]^+, cap) = total on
// a sorted background by walking the 2C breakpoints {o_i} ∪ {o_i+cap}
// with two pointers — exact and allocation-free, where
// PerDrawWaterFill bisects. Between breakpoints Y is linear:
// Y(λ) = cap·j + (k−j)·λ − (prefix_k − prefix_j) with k sections
// entered (λ > o_i) and j of them capped (λ ≥ o_i + cap).
func cappedLevelSorted(sorted, prefix []float64, cap, total float64) float64 {
	c := len(sorted)
	if total <= 0 {
		return sorted[0]
	}
	if maxAlloc := float64(c) * cap; total >= maxAlloc {
		// Every section saturates; mirror PerDrawWaterFill's convention
		// for the shortfall-carrying level.
		return sorted[0] + cap + (total-maxAlloc)/float64(c)
	}
	k, j := 0, 0
	for {
		// The next breakpoint is the smaller of "section k enters" and
		// "section j caps out".
		var bp float64
		switch {
		case k < c && (j >= k || sorted[k] <= sorted[j]+cap):
			bp = sorted[k]
		default:
			bp = sorted[j] + cap
		}
		// Y at the candidate breakpoint with the current (k, j).
		y := cap*float64(j) + float64(k-j)*bp - (prefix[k] - prefix[j])
		if y >= total {
			if k == j { // flat segment; cannot happen with y rising past total
				return bp
			}
			return (total - cap*float64(j) + prefix[k] - prefix[j]) / float64(k-j)
		}
		if k < c && (j >= k || sorted[k] <= sorted[j]+cap) {
			k++
		} else {
			j++
		}
		if j >= c {
			// All capped before absorbing total — excluded by the
			// maxAlloc clamp above, but keep the walk total.
			return sorted[c-1] + cap
		}
	}
}

// commitBlock installs the block's proposals in stable player order,
// maintaining every aggregate incrementally, then checks the welfare
// guard. It returns the block's maximum |Δp_n|.
func (e *roundEngine) commitBlock(lo, hi int) float64 {
	welfareBefore := e.welfare()
	copy(e.savedTotals, e.totals)
	copy(e.savedCostAt, e.costAt)
	savedCostSum, savedSatSum, savedPower := e.costSum, e.satSum, e.totalPower
	for i := lo; i < hi; i++ {
		slot := i - lo
		n := e.order[i]
		copy(e.savedRows[slot], e.rowRef(n))
		e.savedSat[slot] = e.satAt[n]
		e.savedPTotal[slot] = e.playerTotal[n]
		e.before[slot] = e.playerTotal[n]
	}

	var maxDelta float64
	for i := lo; i < hi; i++ {
		slot := i - lo
		if d := e.install(e.order[i], &e.props[slot]); d > maxDelta {
			maxDelta = d
		}
	}
	e.refreshCosts(e.savedTotals)

	// Replay when the block is harmful (welfare dropped beyond float
	// noise) or stalled (players moved at least the convergence
	// tolerance yet welfare gained nothing — a Jacobi cycle signature).
	noise := welfareGuardRelEps * (1 + math.Abs(welfareBefore))
	gain := e.welfare() - welfareBefore
	if gain < -noise || (gain <= noise && maxDelta >= e.tol && e.tol > 0) {
		// Roll back and replay sequentially — exact Gauss–Seidel,
		// monotone in the potential.
		e.costSum, e.satSum, e.totalPower = savedCostSum, savedSatSum, savedPower
		copy(e.totals, e.savedTotals)
		copy(e.costAt, e.savedCostAt)
		for i := lo; i < hi; i++ {
			slot := i - lo
			n := e.order[i]
			copy(e.rowRef(n), e.savedRows[slot])
			e.satAt[n] = e.savedSat[slot]
			e.playerTotal[n] = e.savedPTotal[slot]
		}
		e.replayed++
		maxDelta = 0
		for i := lo; i < hi; i++ {
			slot := i - lo
			n := e.order[i]
			e.propose(n, slot, e.scratch[0]) // against the *current* state
			copy(e.savedTotals, e.totals)
			if d := e.install(n, &e.props[slot]); d > maxDelta {
				maxDelta = d
			}
			e.refreshCosts(e.savedTotals)
		}
	}
	return maxDelta
}

// install writes one proposal into the schedule, updating totals,
// player totals, satisfaction caches and total power; section costs
// are refreshed separately (refreshCosts) so a block's cost evaluation
// is amortized. Returns |Δp_n| against the pre-block total.
func (e *roundEngine) install(n int, prop *proposal) float64 {
	row := e.rowRef(n)
	var sum float64
	for c, v := range prop.row {
		if d := v - row[c]; d != 0 {
			e.totals[c] += d
			if e.totals[c] < 0 {
				e.totals[c] = 0
			}
			row[c] = v
		}
		sum += v
	}
	delta := math.Abs(prop.target - e.playerTotal[n])
	e.totalPower += sum - e.playerTotal[n]
	e.playerTotal[n] = sum
	sat := e.g.cfg.Players[n].Satisfaction.Value(sum)
	e.satSum += sat - e.satAt[n]
	e.satAt[n] = sat
	return delta
}

// refreshCosts re-evaluates Z only on sections whose total moved since
// the reference snapshot — the per-(section, load) cost cache.
func (e *roundEngine) refreshCosts(ref []float64) {
	for c, t := range e.totals {
		if t == ref[c] {
			continue
		}
		z := e.cost.Cost(t)
		e.costSum += z - e.costAt[c]
		e.costAt[c] = z
	}
}
