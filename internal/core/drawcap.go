package core

import "math"

// PerDrawWaterFill solves the Lemma IV.1 schedule under Eq. (3)'s
// per-vehicle coupling constraint: no single section may supply this
// vehicle more than drawCap kW (its own line capacity P_line(vel_n)),
// so the allocation is
//
//	alloc_c = min([λ − others_c]^+, drawCap)  with  Σ_c alloc_c = total.
//
// Y(λ) is still non-decreasing and piecewise linear, so λ is found by
// bisection with an exact residual repair. A non-positive drawCap
// means "uncapped" and defers to the plain WaterFill. When total
// exceeds the allocatable C·drawCap, the allocation saturates at the
// cap everywhere and the shortfall is the caller's to handle (the
// best response never requests it — see MaxAllocatable).
func PerDrawWaterFill(others []float64, drawCap, total float64) (alloc []float64, level float64) {
	if drawCap <= 0 {
		return WaterFill(others, total)
	}
	alloc = make([]float64, len(others))
	if len(others) == 0 {
		return alloc, 0
	}
	if total <= 0 {
		_, level = WaterFill(others, 0)
		return alloc, level
	}
	maxAllocatable := float64(len(others)) * drawCap
	if total >= maxAllocatable {
		lo := math.Inf(1)
		for i, o := range others {
			alloc[i] = drawCap
			lo = math.Min(lo, o)
		}
		return alloc, lo + drawCap + (total-maxAllocatable)/float64(len(others))
	}

	yOf := func(lambda float64) float64 {
		var sum float64
		for _, o := range others {
			a := lambda - o
			if a <= 0 {
				continue
			}
			if a > drawCap {
				a = drawCap
			}
			sum += a
		}
		return sum
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, o := range others {
		lo = math.Min(lo, o)
		hi = math.Max(hi, o)
	}
	hi += drawCap // Y(hi) = C·drawCap > total
	for i := 0; i < maxLevelIterations && hi-lo > perDrawLevelRelTol*(1+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if yOf(mid) < total {
			lo = mid
		} else {
			hi = mid
		}
	}
	level = lo + (hi-lo)/2

	var sum float64
	for i, o := range others {
		a := level - o
		if a <= 0 {
			continue
		}
		if a > drawCap {
			a = drawCap
		}
		alloc[i] = a
		sum += a
	}
	// Repair bisection residue proportionally over the uncapped,
	// active sections so the total is exact.
	if diff := total - sum; math.Abs(diff) > 1e-15 {
		var slack float64
		for i := range alloc {
			if alloc[i] > 0 && alloc[i] < drawCap {
				slack += alloc[i]
			}
		}
		if slack > 0 {
			for i := range alloc {
				if alloc[i] > 0 && alloc[i] < drawCap {
					alloc[i] += diff * alloc[i] / slack
				}
			}
		}
	}
	return alloc, level
}

// WithDrawCap returns a copy of the payment function that schedules
// under the Eq. (3) per-section draw cap.
func (f *PaymentFunction) WithDrawCap(drawCap float64) *PaymentFunction {
	out := NewPaymentFunction(f.cost, f.others)
	out.drawCap = drawCap
	return out
}

// MaxAllocatable returns the most power the quoted schedule can place
// for this vehicle: unbounded without a draw cap, C·drawCap with one.
func (f *PaymentFunction) MaxAllocatable() float64 {
	if f.drawCap <= 0 {
		return math.Inf(1)
	}
	return float64(len(f.others)) * f.drawCap
}
