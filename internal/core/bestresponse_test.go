package core

import (
	"math"
	"testing"

	"olevgrid/internal/stats"
)

func TestBestResponseInteriorMaximizesUtility(t *testing.T) {
	z := testCost(t)
	others := []float64{5, 15, 0}
	psi := NewPaymentFunction(z, others)
	u := LogSatisfaction{Weight: 1}

	p := BestResponse(u, psi, 500)
	if p <= 0 || p >= 500 {
		t.Fatalf("expected interior optimum, got %v", p)
	}
	// First-order condition at the optimum.
	foc := u.Marginal(p) - psi.Marginal(p)
	if math.Abs(foc) > 1e-6 {
		t.Errorf("F'(p*) = %v, want ~0", foc)
	}
	// No grid point does better.
	best := u.Value(p) - psi.At(p)
	for q := 0.0; q <= 500; q += 0.5 {
		if got := u.Value(q) - psi.At(q); got > best+1e-6 {
			t.Fatalf("F(%v) = %v beats F(p*=%v) = %v", q, got, p, best)
		}
	}
}

func TestBestResponseCornerZero(t *testing.T) {
	// Lemma IV.3 case 1: marginal price at zero already exceeds
	// marginal satisfaction → request nothing.
	z := testCost(t)
	// Extremely loaded sections: Z' at the water level is huge.
	psi := NewPaymentFunction(z, []float64{500, 500})
	u := LogSatisfaction{Weight: 0.001}
	if p := BestResponse(u, psi, 100); p != 0 {
		t.Errorf("BestResponse = %v, want 0", p)
	}
}

func TestBestResponseCornerMax(t *testing.T) {
	// Lemma IV.3 case 2: satisfaction dominates even at pmax → take
	// the ceiling P^OLEV_n.
	z := testCost(t)
	psi := NewPaymentFunction(z, []float64{0, 0, 0, 0})
	u := LogSatisfaction{Weight: 1000}
	if p := BestResponse(u, psi, 50); p != 50 {
		t.Errorf("BestResponse = %v, want pmax 50", p)
	}
}

func TestBestResponseZeroPmax(t *testing.T) {
	psi := NewPaymentFunction(testCost(t), []float64{1})
	if p := BestResponse(LogSatisfaction{Weight: 1}, psi, 0); p != 0 {
		t.Errorf("BestResponse with pmax=0 = %v", p)
	}
	if p := BestResponse(LogSatisfaction{Weight: 1}, psi, -3); p != 0 {
		t.Errorf("BestResponse with negative pmax = %v", p)
	}
}

func TestBestResponseSqrtSatisfaction(t *testing.T) {
	// The machinery must work for any strictly concave U.
	z := testCost(t)
	psi := NewPaymentFunction(z, []float64{2, 4})
	u := SqrtSatisfaction{Weight: 0.5}
	p := BestResponse(u, psi, 300)
	if p <= 0 {
		t.Fatal("expected positive request")
	}
	best := u.Value(p) - psi.At(p)
	for q := 0.5; q <= 300; q += 0.5 {
		if got := u.Value(q) - psi.At(q); got > best+1e-6 {
			t.Fatalf("F(%v) = %v beats optimum %v at %v", q, got, best, p)
		}
	}
}

func TestBestResponseRandomInstancesNeverBeaten(t *testing.T) {
	r := stats.NewRand(31)
	z := testCost(t)
	for trial := 0; trial < 100; trial++ {
		c := 1 + r.Intn(15)
		others := make([]float64, c)
		for i := range others {
			others[i] = r.Float64() * 60
		}
		psi := NewPaymentFunction(z, others)
		u := LogSatisfaction{Weight: 0.1 + r.Float64()*3}
		pmax := 1 + r.Float64()*150
		p := BestResponse(u, psi, pmax)
		if p < 0 || p > pmax {
			t.Fatalf("BestResponse %v outside [0, %v]", p, pmax)
		}
		best := u.Value(p) - psi.At(p)
		for i := 0; i < 50; i++ {
			q := r.Float64() * pmax
			if got := u.Value(q) - psi.At(q); got > best+1e-5 {
				t.Fatalf("random q=%v beats optimum: %v > %v", q, got, best)
			}
		}
	}
}
