package core_test

import (
	"fmt"

	"olevgrid/internal/core"
)

// ExampleWaterFill shows Lemma IV.1's allocation: a request pools in
// the least-loaded sections first.
func ExampleWaterFill() {
	others := []float64{0, 5, 20} // kW already scheduled per section
	alloc, level := core.WaterFill(others, 10)
	fmt.Printf("alloc: %.1f kW at water level %.1f kW\n", alloc, level)
	// Output:
	// alloc: [7.5 2.5 0.0] kW at water level 7.5 kW
}

// ExampleBestResponse shows one OLEV's utility-maximizing request
// against a quoted payment function.
func ExampleBestResponse() {
	v, err := core.NewQuadraticCharging(0.02, 0.875, 50)
	if err != nil {
		panic(err)
	}
	psi := core.NewPaymentFunction(v, []float64{10, 10, 10})
	request := core.BestResponse(core.LogSatisfaction{Weight: 1}, psi, 95.76)
	fmt.Printf("request %.1f kW\n", request)
	// Output:
	// request 49.7 kW
}

// ExampleGame runs the asynchronous best-response iteration to the
// socially optimal schedule.
func ExampleGame() {
	v, err := core.NewQuadraticCharging(0.02, 0.875, 53.55)
	if err != nil {
		panic(err)
	}
	players := []core.Player{
		{ID: "ev-a", MaxPowerKW: 60, Satisfaction: core.LogSatisfaction{Weight: 1}},
		{ID: "ev-b", MaxPowerKW: 60, Satisfaction: core.LogSatisfaction{Weight: 1}},
	}
	g, err := core.NewGame(core.Config{
		Players:        players,
		NumSections:    4,
		LineCapacityKW: 53.55,
		Eta:            0.9,
		Cost:           v,
	})
	if err != nil {
		panic(err)
	}
	res := g.Run(core.RunOptions{Tolerance: 1e-6})
	fmt.Printf("converged=%v, players split %.1f kW\n", res.Converged, g.TotalPowerKW())
	// Output:
	// converged=true, players split 106.4 kW
}
