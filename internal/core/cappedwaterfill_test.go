package core

import (
	"math"
	"testing"

	"olevgrid/internal/stats"
)

func TestCappedWaterFillInterior(t *testing.T) {
	// Plenty of room: identical to the uncapped fill.
	others := []float64{0, 5, 20}
	alloc, level, allocated := CappedWaterFill(others, 100, 10)
	wantAlloc, wantLevel := WaterFill(others, 10)
	for i := range alloc {
		if math.Abs(alloc[i]-wantAlloc[i]) > 1e-12 {
			t.Errorf("alloc[%d] = %v, want %v", i, alloc[i], wantAlloc[i])
		}
	}
	if level != wantLevel || allocated != 10 {
		t.Errorf("level %v allocated %v", level, allocated)
	}
}

func TestCappedWaterFillSaturates(t *testing.T) {
	others := []float64{10, 40, 55}
	alloc, level, allocated := CappedWaterFill(others, 50, 1000)
	// Room: 40 + 10 + 0 = 50.
	if math.Abs(allocated-50) > 1e-12 {
		t.Errorf("allocated = %v, want 50", allocated)
	}
	if level != 50 {
		t.Errorf("level = %v, want cap", level)
	}
	want := []float64{40, 10, 0}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-12 {
			t.Errorf("alloc[%d] = %v, want %v", i, alloc[i], want[i])
		}
	}
}

func TestCappedWaterFillNoRoom(t *testing.T) {
	others := []float64{60, 70}
	alloc, level, allocated := CappedWaterFill(others, 50, 10)
	if allocated != 0 || alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("allocated %v into full sections", allocated)
	}
	if level != 50 {
		t.Errorf("level = %v", level)
	}
}

func TestCappedWaterFillDegenerate(t *testing.T) {
	if alloc, _, allocated := CappedWaterFill(nil, 10, 5); len(alloc) != 0 || allocated != 0 {
		t.Error("empty input mishandled")
	}
	alloc, _, allocated := CappedWaterFill([]float64{1, 2}, 10, 0)
	if allocated != 0 || alloc[0] != 0 {
		t.Error("zero total mishandled")
	}
	if _, _, allocated := CappedWaterFill([]float64{1, 2}, 10, -4); allocated != 0 {
		t.Error("negative total mishandled")
	}
}

func TestCappedWaterFillInvariants(t *testing.T) {
	r := stats.NewRand(77)
	for trial := 0; trial < 300; trial++ {
		c := 1 + r.Intn(20)
		others := make([]float64, c)
		for i := range others {
			others[i] = r.Float64() * 60
		}
		cap := 10 + r.Float64()*60
		total := r.Float64() * 400
		alloc, level, allocated := CappedWaterFill(others, cap, total)

		var sum float64
		for i, a := range alloc {
			if a < -1e-12 {
				t.Fatalf("negative alloc %v", a)
			}
			// A section whose background already exceeds the cap must
			// receive nothing; others must not be pushed past it.
			if a > 1e-12 && others[i]+a > cap+1e-9 {
				t.Fatalf("section %d pushed to %v past cap %v", i, others[i]+a, cap)
			}
			sum += a
		}
		if math.Abs(sum-allocated) > 1e-6*(1+allocated) {
			t.Fatalf("alloc sums %v, reported %v", sum, allocated)
		}
		if allocated > total+1e-9 {
			t.Fatalf("allocated %v exceeds request %v", allocated, total)
		}
		if level > cap+1e-9 {
			t.Fatalf("level %v above cap %v", level, cap)
		}
		// If the request was truncated, every section must be full.
		if allocated < total-1e-9 {
			for i := range others {
				if others[i]+alloc[i] < cap-1e-6 {
					t.Fatalf("truncated request but section %d not saturated", i)
				}
			}
		}
	}
}
