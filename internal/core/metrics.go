package core

import (
	"olevgrid/internal/obs"
)

// Metrics is the solver's telemetry bundle: pre-resolved obs
// instruments plus an optional event sink, threaded into the round
// engine via ParallelOptions.Metrics (and Scenario/DayConfig above
// it). A nil *Metrics is the off switch — every observe method is
// nil-receiver safe, and the armed path performs only atomic writes,
// so instrumented steady-state rounds stay allocation-free (the
// conformance tests in parallel_test.go assert both).
type Metrics struct {
	// Per-solve counters.
	Solves    *obs.Counter // completed loop() executions
	Converged *obs.Counter // solves that met the tolerance
	Rounds    *obs.Counter // full best-response rounds
	Updates   *obs.Counter // player updates (rounds × fleet size)
	Replays   *obs.Counter // blocks rolled back by the welfare guard

	// Per-round trajectory gauges (last value wins) and the
	// round-delta distribution.
	Welfare    *obs.Gauge
	Congestion *obs.Gauge
	RoundDelta *obs.Histogram // max schedule delta per round

	// End-of-solve reconciliation instruments: SectionLoad's Sum is the
	// total scheduled mass (kW across sections), Payment is the
	// fleet-total payment from core.Payment pricing.
	SectionLoad *obs.Histogram
	Payment     *obs.Gauge

	// Sink receives one EventSolverRound span per round; may be nil
	// independently of the instruments.
	Sink *obs.EventSink
}

// SolverBuckets is the canonical round-delta bucket layout: the
// engine's tolerances live in [1e-9, 1e-2], so decade buckets from
// 1e-9 up cover the whole convergence tail.
func SolverBuckets() []float64 { return obs.ExponentialBuckets(1e-9, 10, 12) }

// LoadBuckets is the canonical per-section load layout (kW).
func LoadBuckets() []float64 { return obs.LinearBuckets(0, 25, 20) }

// NewMetrics registers the solver metric catalog on r (see DESIGN.md
// §11) and returns the bundle. r may be nil, in which case every
// instrument is nil and the bundle still works as a no-op; sink may be
// nil independently.
func NewMetrics(r *obs.Registry, sink *obs.EventSink) *Metrics {
	m := &Metrics{
		Solves:      r.Counter("olev_solver_solves_total"),
		Converged:   r.Counter("olev_solver_converged_total"),
		Rounds:      r.Counter("olev_solver_rounds_total"),
		Updates:     r.Counter("olev_solver_updates_total"),
		Replays:     r.Counter("olev_solver_replays_total"),
		Welfare:     r.Gauge("olev_solver_welfare"),
		Congestion:  r.Gauge("olev_solver_congestion_degree"),
		RoundDelta:  r.Histogram("olev_solver_round_delta", SolverBuckets()),
		SectionLoad: r.Histogram("olev_solver_section_load_kw", LoadBuckets()),
		Payment:     r.Gauge("olev_solver_payment_usd"),
		Sink:        sink,
	}
	r.Help("olev_solver_rounds_total", "full best-response rounds executed by the equilibrium engine")
	r.Help("olev_solver_section_load_kw", "per-section scheduled load at end of solve; sum equals scheduled mass")
	return m
}

// observeRound records one completed round. Called from the engine's
// loop with values it has already computed for the result trajectory,
// so arming metrics never adds work to the instrumented computation —
// only atomic stores beside it.
func (m *Metrics) observeRound(round int, maxDelta, welfare, congestion float64) {
	if m == nil {
		return
	}
	m.Rounds.Inc()
	m.Welfare.Set(welfare)
	m.Congestion.Set(congestion)
	m.RoundDelta.Observe(maxDelta)
	m.Sink.Emit(obs.EventSolverRound, "engine", int32(round), -1, maxDelta)
}

// observeSolve records end-of-solve reconciliation state: update and
// replay totals, the per-section load distribution, and the fleet
// payment. Runs once per solve, outside the steady-state turns the
// zero-alloc guard measures, so it may read allocating accessors.
func (m *Metrics) observeSolve(g *Game, res *ParallelResult) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	if res.Converged {
		m.Converged.Inc()
	}
	m.Updates.Add(int64(res.Updates))
	m.Replays.Add(int64(res.Replayed))
	for _, load := range g.SectionTotals() {
		m.SectionLoad.Observe(load)
	}
	m.Payment.Set(g.TotalPayment())
}
