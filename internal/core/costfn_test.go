package core

import (
	"math"
	"testing"
	"testing/quick"
)

func numericDerivative(f func(float64) float64, x float64) float64 {
	const h = 1e-6
	return (f(x+h) - f(x-h)) / (2 * h)
}

func TestQuadraticChargingValidation(t *testing.T) {
	if _, err := NewQuadraticCharging(0.02, 0.875, 50); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []struct {
		name              string
		beta, alpha, capa float64
	}{
		{name: "zero beta", beta: 0, alpha: 0.875, capa: 50},
		{name: "negative beta", beta: -1, alpha: 0.875, capa: 50},
		{name: "negative alpha", beta: 0.02, alpha: -0.1, capa: 50},
		{name: "zero capacity", beta: 0.02, alpha: 0.875, capa: 0},
		{name: "NaN beta", beta: math.NaN(), alpha: 0.875, capa: 50},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewQuadraticCharging(tt.beta, tt.alpha, tt.capa); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestQuadraticChargingUnitPriceSweep(t *testing.T) {
	// The normalization pins the unit price V(x)/x to β at full
	// capacity and β·α²/(α+1)² at x→0.
	q, err := NewQuadraticCharging(0.02, 0.875, 50)
	if err != nil {
		t.Fatal(err)
	}
	atCap := q.Cost(50) / 50
	if math.Abs(atCap-0.02) > 1e-12 {
		t.Errorf("unit price at capacity = %v, want beta 0.02", atCap)
	}
	nearZero := q.Cost(1e-9) / 1e-9
	want := 0.02 * 0.875 * 0.875 / (1.875 * 1.875)
	if math.Abs(nearZero-want) > 1e-9 {
		t.Errorf("unit price near zero = %v, want %v", nearZero, want)
	}
}

func TestQuadraticChargingMarginalMatchesNumeric(t *testing.T) {
	q, _ := NewQuadraticCharging(0.025, 0.875, 40)
	for _, x := range []float64{0.5, 1, 10, 40, 80, 200} {
		want := numericDerivative(q.Cost, x)
		if got := q.Marginal(x); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("Marginal(%v) = %v, numeric %v", x, got, want)
		}
	}
}

func TestQuadraticChargingStrictlyConvex(t *testing.T) {
	q, _ := NewQuadraticCharging(0.02, 0.875, 50)
	f := func(rawA, rawB float64) bool {
		a := math.Mod(math.Abs(rawA), 500)
		b := math.Mod(math.Abs(rawB), 500)
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a-b) < 1e-9 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		// Strictly increasing marginal == strict convexity.
		return q.Marginal(hi) > q.Marginal(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadraticChargingNonNegativeAndZeroAtZero(t *testing.T) {
	q, _ := NewQuadraticCharging(0.02, 0.875, 50)
	if got := q.Cost(0); got != 0 {
		t.Errorf("Cost(0) = %v", got)
	}
	if got := q.Cost(-10); got != 0 {
		t.Errorf("Cost(-10) = %v", got)
	}
}

func TestLinearCharging(t *testing.T) {
	l := LinearCharging{Beta: 0.015}
	if got := l.Cost(100); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Cost(100) = %v, want 1.5", got)
	}
	if got := l.Cost(-5); got != 0 {
		t.Errorf("Cost(-5) = %v", got)
	}
	// Flat marginal: the defining property of the baseline.
	for _, x := range []float64{0, 1, 50, 1e6} {
		if got := l.Marginal(x); got != 0.015 {
			t.Errorf("Marginal(%v) = %v, want constant 0.015", x, got)
		}
	}
}

func TestOverloadPenalty(t *testing.T) {
	a := OverloadPenalty{Kappa: 1.0, Capacity: 50}
	// Zero at and below capacity.
	for _, x := range []float64{0, 25, 50} {
		if got := a.Cost(x); got != 0 {
			t.Errorf("Cost(%v) = %v, want 0", x, got)
		}
		if got := a.Marginal(x); got != 0 {
			t.Errorf("Marginal(%v) = %v, want 0", x, got)
		}
	}
	// Quadratic above: A(60) = 1/(2·50)·100 = 1.
	if got := a.Cost(60); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cost(60) = %v, want 1", got)
	}
	if got := a.Marginal(60); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Marginal(60) = %v, want 0.2", got)
	}
	// Marginal matches numeric derivative off the kink.
	for _, x := range []float64{55, 70, 120} {
		want := numericDerivative(a.Cost, x)
		if got := a.Marginal(x); math.Abs(got-want) > 1e-6 {
			t.Errorf("Marginal(%v) = %v, numeric %v", x, got, want)
		}
	}
}

func TestSectionCostComposes(t *testing.T) {
	v, _ := NewQuadraticCharging(0.02, 0.875, 50)
	z := SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 1, Capacity: 50}}
	x := 65.0
	wantCost := v.Cost(x) + OverloadPenalty{Kappa: 1, Capacity: 50}.Cost(x)
	if got := z.Cost(x); math.Abs(got-wantCost) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, wantCost)
	}
	wantM := v.Marginal(x) + OverloadPenalty{Kappa: 1, Capacity: 50}.Marginal(x)
	if got := z.Marginal(x); math.Abs(got-wantM) > 1e-12 {
		t.Errorf("Marginal = %v, want %v", got, wantM)
	}
}

func TestSectionCostMarginalStrictlyIncreasing(t *testing.T) {
	v, _ := NewQuadraticCharging(0.02, 0.875, 50)
	z := SectionCost{Charging: v, Overload: OverloadPenalty{Kappa: 1, Capacity: 45}}
	prev := z.Marginal(0)
	for x := 1.0; x <= 100; x++ {
		cur := z.Marginal(x)
		if cur <= prev {
			t.Fatalf("marginal not strictly increasing at %v: %v <= %v", x, cur, prev)
		}
		prev = cur
	}
}
