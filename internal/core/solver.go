package core

import "fmt"

// Solver is a persistent round engine for warm-start sequences: one
// game solved, perturbed, and re-solved many times — the smart grid
// re-running the pricing game each hour as LBMP and demand drift
// (Section V). Where RunParallel builds and discards its incremental
// state (aggregate loads P_c, the Z and U caches, the worker pool and
// all scratch buffers), a Solver keeps them alive between solves, so a
// re-solve after a small perturbation costs only the rounds the
// dynamics actually need plus an O(C) cache refresh — no O(N·C)
// rebuild, no pool restart, no allocation.
//
// Theorem IV.1 makes the reuse safe: the dynamics converge to the
// social optimum from any feasible schedule, so solving from the
// previous equilibrium reaches the same fixed point as solving cold,
// only in fewer rounds. The differential suite in warmstart_test.go
// asserts the two paths agree to 1e-9.
//
// Parallelism and BatchSize are fixed at construction; each Solve call
// honors its own Tolerance, Order, Seed, MaxRounds and OnRound. The
// determinism contract of RunParallel extends across solves: a Solve
// resets the visit order before running, so a sequence of
// (perturbation, Solve) steps is bit-for-bit reproducible and still
// independent of Parallelism.
//
// A Solver is not safe for concurrent use, and the Game passed to
// NewSolver must not be driven by other solvers or Run calls while the
// Solver is alive. Close releases the worker pool.
type Solver struct {
	g *Game
	e *roundEngine
}

// NewSolver wraps g in a persistent engine. The engine primes its
// incremental aggregates from g's current schedule — which may itself
// be a warm start via Config.InitialSchedule.
func NewSolver(g *Game, parallelism, batchSize int) (*Solver, error) {
	if g == nil {
		return nil, fmt.Errorf("core: solver needs a game")
	}
	return &Solver{g: g, e: newRoundEngine(g, parallelism, batchSize, 0)}, nil
}

// Game returns the underlying game; its accessors (Welfare, Schedule,
// SectionTotals, …) stay truthful between solves.
func (s *Solver) Game() *Game { return s.g }

// Solve runs the round iteration from the standing schedule.
// Parallelism and BatchSize in opts are ignored — they were fixed at
// construction; everything else behaves as in RunParallel, and
// Replayed counts only this solve's replays.
func (s *Solver) Solve(opts ParallelOptions) ParallelResult {
	return s.e.loop(opts)
}

// SetCost swaps the shared section cost function — the between-hours
// LBMP β step — refreshing the per-section Z cache in O(C).
func (s *Solver) SetCost(cost CostFunction) error {
	if cost == nil {
		return fmt.Errorf("core: solver needs a cost function")
	}
	s.e.setCost(cost)
	return nil
}

// SetPlayer replaces player n's definition in place (same fleet size;
// for joins and departures, project onto a new game instead) and
// refreshes that player's cached satisfaction in O(1).
func (s *Solver) SetPlayer(n int, p Player) error {
	if n < 0 || n >= s.e.n {
		return fmt.Errorf("core: solver has no player %d", n)
	}
	if p.ID == "" {
		return fmt.Errorf("core: player %d has an empty ID", n)
	}
	if p.Satisfaction == nil {
		return fmt.Errorf("core: player %q has no satisfaction function", p.ID)
	}
	s.e.setPlayer(n, p)
	return nil
}

// SetSchedule replaces the standing schedule wholesale (for example a
// ProjectSchedule result after churn) and re-primes the aggregates.
func (s *Solver) SetSchedule(sched *Schedule) error {
	if sched == nil {
		return fmt.Errorf("core: solver needs a schedule")
	}
	return s.e.setSchedule(sched)
}

// Close winds the worker pool down. The Solver must not be used after
// Close; calling Close more than once is harmless.
func (s *Solver) Close() { s.e.stop() }
