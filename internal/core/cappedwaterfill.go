package core

// CappedWaterFill solves the Lemma IV.1 schedule under a *hard*
// per-section ceiling instead of the soft overload penalty: allocate
// total across sections, equalizing at a water level, but never
// pushing any section past cap. It is the limit of the penalty
// formulation as κ → ∞.
//
// The returned allocated may be less than total when the remaining
// room Σ_c [cap − others_c]^+ cannot absorb the request; callers that
// need feasibility decide how to handle the shortfall (the soft-wall
// game never truncates, which is why it remains the default: hard
// caps make the boundary equilibrium order-dependent, while the
// penalty keeps the optimum unique — see DESIGN.md).
func CappedWaterFill(others []float64, cap, total float64) (alloc []float64, level, allocated float64) {
	alloc = make([]float64, len(others))
	if len(others) == 0 || total <= 0 {
		_, level = WaterFill(others, 0)
		return alloc, level, 0
	}

	// Room under the ceiling.
	var room float64
	for _, o := range others {
		if o < cap {
			room += cap - o
		}
	}
	if room <= 0 {
		return alloc, cap, 0
	}
	if total >= room {
		// Saturate everything.
		for i, o := range others {
			if o < cap {
				alloc[i] = cap - o
			}
		}
		return alloc, cap, room
	}

	// The uncapped level cannot exceed cap when total < room, because
	// Y(cap) = room > total and Y is increasing.
	alloc, level = WaterFill(others, total)
	return alloc, level, total
}
