package core

// bestResponseIterations halvings of [0, pmax] resolve p* to
// pmax·2^-64 — below float64 resolution for any physical power level.
// The parallel round engine's proposal bisection uses the same count
// so the two solvers stay bit-compatible.
const bestResponseIterations = 64

// BestResponse solves Lemma IV.3: the total power request p* that
// maximizes F_n(p) = U_n(p) − Ψ_n(p) over [0, pmax].
//
// F_n is strictly concave (U strictly concave, Ψ convex), so
// F'_n(p) = U'_n(p) − Z'(λ*(p)) is strictly decreasing and the
// three-case structure of Eq. (22) reduces to a bisection on the sign
// of F'_n:
//
//	F'_n(0)    ≤ 0  →  p* = 0
//	F'_n(pmax) ≥ 0  →  p* = pmax
//	otherwise       →  the unique root of F'_n in (0, pmax)
//
// The request is additionally clamped to what the quoted schedule can
// physically place (MaxAllocatable, finite under an Eq. (3) draw cap).
func BestResponse(sat Satisfaction, psi *PaymentFunction, pmax float64) float64 {
	if ceiling := psi.MaxAllocatable(); pmax > ceiling {
		pmax = ceiling
	}
	if pmax <= 0 {
		return 0
	}
	deriv := func(p float64) float64 { return sat.Marginal(p) - psi.Marginal(p) }

	if deriv(0) <= 0 {
		return 0
	}
	if deriv(pmax) >= 0 {
		return pmax
	}
	lo, hi := 0.0, pmax
	for i := 0; i < bestResponseIterations; i++ {
		mid := lo + (hi-lo)/2
		if deriv(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}
