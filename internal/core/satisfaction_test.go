package core

import (
	"math"
	"testing"
)

func TestLogSatisfaction(t *testing.T) {
	u, err := NewLogSatisfaction(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Value(0); got != 0 {
		t.Errorf("Value(0) = %v", got)
	}
	if got := u.Value(math.E - 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Value(e-1) = %v, want 1", got)
	}
	if got := u.Marginal(0); got != 1 {
		t.Errorf("Marginal(0) = %v, want 1", got)
	}
	if got := u.Marginal(99); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("Marginal(99) = %v, want 0.01", got)
	}
	// Negative input clamps.
	if got := u.Value(-5); got != 0 {
		t.Errorf("Value(-5) = %v", got)
	}
	if got := u.Marginal(-5); got != 1 {
		t.Errorf("Marginal(-5) = %v", got)
	}
}

func TestNewLogSatisfactionValidation(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN()} {
		if _, err := NewLogSatisfaction(w); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

func TestSatisfactionsConcaveIncreasing(t *testing.T) {
	sats := map[string]Satisfaction{
		"log":  LogSatisfaction{Weight: 2},
		"sqrt": SqrtSatisfaction{Weight: 2},
	}
	for name, u := range sats {
		t.Run(name, func(t *testing.T) {
			prevV, prevM := u.Value(0.01), u.Marginal(0.01)
			for p := 1.0; p < 100; p += 1 {
				v, m := u.Value(p), u.Marginal(p)
				if v <= prevV {
					t.Fatalf("value not increasing at %v", p)
				}
				if m >= prevM {
					t.Fatalf("marginal not decreasing at %v (concavity)", p)
				}
				prevV, prevM = v, m
			}
		})
	}
}

func TestSatisfactionMarginalMatchesNumeric(t *testing.T) {
	sats := map[string]Satisfaction{
		"log":  LogSatisfaction{Weight: 1.5},
		"sqrt": SqrtSatisfaction{Weight: 1.5},
	}
	for name, u := range sats {
		t.Run(name, func(t *testing.T) {
			for _, p := range []float64{0.5, 1, 10, 80} {
				want := numericDerivative(u.Value, p)
				if got := u.Marginal(p); math.Abs(got-want) > 1e-5 {
					t.Errorf("Marginal(%v) = %v, numeric %v", p, got, want)
				}
			}
		})
	}
}

func TestSqrtSatisfactionZeroGuard(t *testing.T) {
	u := SqrtSatisfaction{Weight: 1}
	if got := u.Marginal(0); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("Marginal(0) = %v, want finite", got)
	}
	if got := u.Value(-3); got != 0 {
		t.Errorf("Value(-3) = %v", got)
	}
}
