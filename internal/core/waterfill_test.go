package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"olevgrid/internal/stats"
)

func TestWaterFillEqualBackground(t *testing.T) {
	others := []float64{10, 10, 10, 10}
	alloc, level := WaterFill(others, 8)
	for c, a := range alloc {
		if math.Abs(a-2) > 1e-12 {
			t.Errorf("alloc[%d] = %v, want 2", c, a)
		}
	}
	if math.Abs(level-12) > 1e-12 {
		t.Errorf("level = %v, want 12", level)
	}
}

func TestWaterFillFillsValleysFirst(t *testing.T) {
	// Background 0, 5, 20. A request of 10 should pool in the two low
	// sections: level = (10 + 0 + 5)/2 = 7.5 → alloc 7.5, 2.5, 0.
	others := []float64{0, 5, 20}
	alloc, level := WaterFill(others, 10)
	want := []float64{7.5, 2.5, 0}
	for c := range want {
		if math.Abs(alloc[c]-want[c]) > 1e-12 {
			t.Errorf("alloc[%d] = %v, want %v", c, alloc[c], want[c])
		}
	}
	if math.Abs(level-7.5) > 1e-12 {
		t.Errorf("level = %v, want 7.5", level)
	}
}

func TestWaterFillFloodsAll(t *testing.T) {
	// A request above Y(max(others)) = 35 floods every section:
	// level = (40 + 0 + 5 + 20)/3.
	others := []float64{0, 5, 20}
	alloc, level := WaterFill(others, 40)
	wantLevel := 65.0 / 3
	if math.Abs(level-wantLevel) > 1e-12 {
		t.Errorf("level = %v, want %v", level, wantLevel)
	}
	var sum float64
	for c, a := range alloc {
		if a <= 0 {
			t.Errorf("alloc[%d] = %v, want positive", c, a)
		}
		sum += a
	}
	if math.Abs(sum-40) > 1e-9 {
		t.Errorf("sum = %v, want 40", sum)
	}
}

func TestWaterFillZeroAndNegativeTotal(t *testing.T) {
	others := []float64{3, 1, 2}
	for _, total := range []float64{0, -5} {
		alloc, level := WaterFill(others, total)
		for c, a := range alloc {
			if a != 0 {
				t.Errorf("total=%v alloc[%d] = %v, want 0", total, c, a)
			}
		}
		if level != 1 {
			t.Errorf("total=%v level = %v, want min(others)=1", total, level)
		}
	}
}

func TestWaterFillEmpty(t *testing.T) {
	alloc, level := WaterFill(nil, 10)
	if len(alloc) != 0 || level != 0 {
		t.Errorf("empty input: alloc=%v level=%v", alloc, level)
	}
}

func TestWaterFillDoesNotMutateInput(t *testing.T) {
	others := []float64{9, 1, 5}
	WaterFill(others, 7)
	if others[0] != 9 || others[1] != 1 || others[2] != 5 {
		t.Errorf("input mutated: %v", others)
	}
}

// waterFillInvariants checks the KKT structure of Lemma IV.1 on an
// arbitrary instance: allocations are non-negative, sum to the
// request, sections receiving power sit exactly at the level, and
// sections above the level receive nothing.
func waterFillInvariants(t *testing.T, others []float64, total float64, alloc []float64, level float64) {
	t.Helper()
	var sum float64
	for c, a := range alloc {
		if a < 0 {
			t.Fatalf("alloc[%d] = %v negative", c, a)
		}
		sum += a
		if a > 1e-9 {
			if got := others[c] + a; math.Abs(got-level) > 1e-6*(1+math.Abs(level)) {
				t.Fatalf("active section %d lands at %v, level %v", c, got, level)
			}
		} else if others[c] < level-1e-6 {
			t.Fatalf("inactive section %d sits below level: %v < %v", c, others[c], level)
		}
	}
	if math.Abs(sum-total) > 1e-6*(1+total) {
		t.Fatalf("alloc sums to %v, want %v", sum, total)
	}
}

func TestWaterFillInvariantsRandom(t *testing.T) {
	r := stats.NewRand(42)
	for trial := 0; trial < 500; trial++ {
		c := 1 + r.Intn(40)
		others := make([]float64, c)
		for i := range others {
			others[i] = r.Float64() * 100
		}
		total := r.Float64() * 300
		alloc, level := WaterFill(others, total)
		waterFillInvariants(t, others, total, alloc, level)
	}
}

func TestWaterFillMatchesBisection(t *testing.T) {
	r := stats.NewRand(7)
	for trial := 0; trial < 300; trial++ {
		c := 1 + r.Intn(30)
		others := make([]float64, c)
		for i := range others {
			others[i] = r.Float64() * 50
		}
		total := r.Float64() * 200
		exact, exactLevel := WaterFill(others, total)
		bis, bisLevel := WaterFillBisect(others, total, 1e-10)
		if math.Abs(exactLevel-bisLevel) > 1e-5*(1+exactLevel) {
			t.Fatalf("levels differ: exact %v bisect %v", exactLevel, bisLevel)
		}
		for i := range exact {
			if math.Abs(exact[i]-bis[i]) > 1e-4*(1+exact[i]) {
				t.Fatalf("alloc[%d] differs: exact %v bisect %v", i, exact[i], bis[i])
			}
		}
	}
}

func TestWaterFillBisectEdgeCases(t *testing.T) {
	if alloc, level := WaterFillBisect(nil, 5, 1e-9); len(alloc) != 0 || level != 0 {
		t.Error("empty input mishandled")
	}
	alloc, level := WaterFillBisect([]float64{4, 2}, 0, 1e-9)
	if alloc[0] != 0 || alloc[1] != 0 || level != 2 {
		t.Errorf("zero total: alloc=%v level=%v", alloc, level)
	}
	// Non-positive tolerance falls back to a sane default.
	alloc, _ = WaterFillBisect([]float64{0, 0}, 10, -1)
	if math.Abs(alloc[0]+alloc[1]-10) > 1e-6 {
		t.Errorf("default tol: sum = %v", alloc[0]+alloc[1])
	}
}

// TestWaterFillIsMinimumCost verifies the substance of Lemma IV.1:
// against any random alternative feasible split, the water-filled
// schedule has no higher total convex cost.
func TestWaterFillIsMinimumCost(t *testing.T) {
	z, err := NewQuadraticCharging(0.02, 0.875, 50)
	if err != nil {
		t.Fatal(err)
	}
	costOf := func(others, alloc []float64) float64 {
		var total float64
		for c := range alloc {
			total += z.Cost(others[c] + alloc[c])
		}
		return total
	}
	r := stats.NewRand(99)
	for trial := 0; trial < 200; trial++ {
		c := 2 + r.Intn(10)
		others := make([]float64, c)
		for i := range others {
			others[i] = r.Float64() * 40
		}
		total := 1 + r.Float64()*80
		alloc, _ := WaterFill(others, total)
		best := costOf(others, alloc)

		// Random feasible alternative: Dirichlet-ish split of total.
		alt := randomSplit(r, c, total)
		if altCost := costOf(others, alt); altCost < best-1e-9 {
			t.Fatalf("alternative split beats water-fill: %v < %v (others=%v total=%v)",
				altCost, best, others, total)
		}
	}
}

func randomSplit(r *rand.Rand, c int, total float64) []float64 {
	weights := make([]float64, c)
	var sum float64
	for i := range weights {
		weights[i] = -math.Log(1 - r.Float64())
		sum += weights[i]
	}
	out := make([]float64, c)
	for i := range out {
		out[i] = total * weights[i] / sum
	}
	return out
}

// TestWaterLevelMonotone: λ*(p) must be strictly increasing in p once
// p > 0 — the property the best-response bisection relies on.
func TestWaterLevelMonotone(t *testing.T) {
	others := []float64{3, 8, 0, 15}
	prev := WaterLevel(others, 0.1)
	for p := 1.0; p <= 100; p++ {
		cur := WaterLevel(others, p)
		if cur <= prev {
			t.Fatalf("level not increasing at p=%v: %v <= %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestWaterFillQuickProperty(t *testing.T) {
	f := func(raw []float64, rawTotal float64) bool {
		others := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				others = append(others, math.Mod(math.Abs(v), 1000))
			}
		}
		if len(others) == 0 || math.IsNaN(rawTotal) || math.IsInf(rawTotal, 0) {
			return true
		}
		total := math.Mod(math.Abs(rawTotal), 5000)
		alloc, level := WaterFill(others, total)
		var sum float64
		for c, a := range alloc {
			if a < 0 {
				return false
			}
			if a > 0 && others[c] > level+1e-6 {
				return false
			}
			sum += a
		}
		return total <= 0 || math.Abs(sum-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
