package core

import (
	"fmt"
	"math"
	"testing"

	"olevgrid/internal/stats"
)

func testConfig(t *testing.T, n, c int) Config {
	t.Helper()
	capacity := 0.9 * 50.0
	v, err := NewQuadraticCharging(0.02, 0.875, capacity)
	if err != nil {
		t.Fatal(err)
	}
	players := make([]Player, n)
	for i := range players {
		players[i] = Player{
			ID:           fmt.Sprintf("olev-%d", i),
			MaxPowerKW:   60 + float64(i%5)*8,
			Satisfaction: LogSatisfaction{Weight: 1 + 0.1*float64(i%3)},
		}
	}
	return Config{
		Players:        players,
		NumSections:    c,
		LineCapacityKW: 50,
		Eta:            0.9,
		Cost: SectionCost{
			Charging: v,
			Overload: OverloadPenalty{Kappa: 1, Capacity: capacity},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	valid := testConfig(t, 3, 4)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "no players", mutate: func(c *Config) { c.Players = nil }},
		{name: "empty player ID", mutate: func(c *Config) { c.Players[0].ID = "" }},
		{name: "duplicate player ID", mutate: func(c *Config) { c.Players[1].ID = c.Players[0].ID }},
		{name: "negative max power", mutate: func(c *Config) { c.Players[0].MaxPowerKW = -1 }},
		{name: "nil satisfaction", mutate: func(c *Config) { c.Players[0].Satisfaction = nil }},
		{name: "zero sections", mutate: func(c *Config) { c.NumSections = 0 }},
		{name: "zero line capacity", mutate: func(c *Config) { c.LineCapacityKW = 0 }},
		{name: "eta zero", mutate: func(c *Config) { c.Eta = 0 }},
		{name: "eta above one", mutate: func(c *Config) { c.Eta = 1.5 }},
		{name: "nil cost", mutate: func(c *Config) { c.Cost = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig(t, 3, 4)
			tt.mutate(&cfg)
			if _, err := NewGame(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGameInitialState(t *testing.T) {
	g, err := NewGame(testConfig(t, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPlayers() != 5 || g.NumSections() != 8 {
		t.Errorf("dims = %d, %d", g.NumPlayers(), g.NumSections())
	}
	if got := g.TotalPowerKW(); got != 0 {
		t.Errorf("initial power = %v", got)
	}
	if got := g.CongestionDegree(); got != 0 {
		t.Errorf("initial congestion = %v", got)
	}
	if got := g.Welfare(); got != 0 {
		t.Errorf("initial welfare = %v", got)
	}
	if got := g.SectionCapacityKW(); math.Abs(got-45) > 1e-12 {
		t.Errorf("section capacity = %v, want 45", got)
	}
}

func TestUpdateOneImprovesOwnUtility(t *testing.T) {
	g, err := NewGame(testConfig(t, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up the others.
	for i := 1; i < 4; i++ {
		g.UpdateOne(i)
	}
	before := g.UtilityOf(0)
	g.UpdateOne(0)
	after := g.UtilityOf(0)
	if after < before-1e-9 {
		t.Errorf("utility fell after own best response: %v -> %v", before, after)
	}
}

// TestPotentialGameProperty is Theorem IV.1's engine: a unilateral
// best-response move changes social welfare by exactly the mover's
// utility change, so welfare never decreases along the dynamics.
func TestPotentialGameProperty(t *testing.T) {
	g, err := NewGame(testConfig(t, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(17)
	for step := 0; step < 120; step++ {
		n := r.Intn(g.NumPlayers())
		welfareBefore := g.Welfare()
		utilityBefore := g.UtilityOf(n)
		g.UpdateOne(n)
		welfareAfter := g.Welfare()
		utilityAfter := g.UtilityOf(n)

		dW := welfareAfter - welfareBefore
		dF := utilityAfter - utilityBefore
		if math.Abs(dW-dF) > 1e-6*(1+math.Abs(dW)) {
			t.Fatalf("step %d: ΔW = %v but ΔF_n = %v — potential property violated", step, dW, dF)
		}
		if dW < -1e-7 {
			t.Fatalf("step %d: welfare decreased by %v along best response", step, -dW)
		}
	}
}

func TestWelfareBreakdownConsistent(t *testing.T) {
	g, err := NewGame(testConfig(t, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	g.Run(RunOptions{MaxUpdates: 500})
	parts := g.WelfareBreakdown()
	if parts.Satisfaction <= 0 || parts.SectionCost <= 0 {
		t.Errorf("degenerate breakdown %+v", parts)
	}
	if math.Abs(parts.Welfare()-g.Welfare()) > 1e-12 {
		t.Errorf("breakdown welfare %v != Welfare() %v", parts.Welfare(), g.Welfare())
	}
}

func TestRunConvergesAndWelfareMonotone(t *testing.T) {
	g, err := NewGame(testConfig(t, 8, 10))
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(RunOptions{MaxUpdates: 5000, Tolerance: 1e-7})
	if !res.Converged {
		t.Fatalf("did not converge in %d updates", res.Updates)
	}
	w := stats.Series{Name: "welfare"}
	for i, v := range res.Welfare {
		w.Add(float64(i), v)
	}
	if !w.IsNonDecreasing(1e-7) {
		t.Error("welfare trajectory decreased")
	}
	if len(res.Congestion) != res.Updates {
		t.Errorf("history lengths: %d congestion vs %d updates", len(res.Congestion), res.Updates)
	}
}

// TestEquilibriumUniqueAcrossOrders: Theorem IV.1 claims convergence
// to the *unique* socially optimal schedule, so round-robin and
// different random orders must land on the same totals.
func TestEquilibriumUniqueAcrossOrders(t *testing.T) {
	run := func(order UpdateOrder, seed int64) []float64 {
		g, err := NewGame(testConfig(t, 7, 9))
		if err != nil {
			t.Fatal(err)
		}
		res := g.Run(RunOptions{MaxUpdates: 20000, Tolerance: 1e-9, Order: order, Seed: seed})
		if !res.Converged {
			t.Fatalf("order %v seed %d did not converge", order, seed)
		}
		totals := make([]float64, g.NumPlayers())
		s := g.Schedule()
		for n := range totals {
			totals[n] = s.OLEVTotal(n)
		}
		return totals
	}
	ref := run(OrderRoundRobin, 0)
	for _, seed := range []int64{1, 2, 3} {
		got := run(OrderRandom, seed)
		if d := stats.MaxAbsDiff(ref, got); d > 1e-4 {
			t.Errorf("random order (seed %d) equilibrium differs from round-robin by %v", seed, d)
		}
	}
}

func TestEquilibriumIsNashNoProfitableDeviation(t *testing.T) {
	g, err := NewGame(testConfig(t, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Run(RunOptions{MaxUpdates: 10000, Tolerance: 1e-9}); !res.Converged {
		t.Fatal("did not converge")
	}
	r := stats.NewRand(23)
	for n := 0; n < g.NumPlayers(); n++ {
		current := g.UtilityOf(n)
		psi := g.QuotePayment(n)
		u := g.Player(n).Satisfaction
		for i := 0; i < 200; i++ {
			q := r.Float64() * g.Player(n).MaxPowerKW
			if dev := u.Value(q) - psi.At(q); dev > current+1e-5 {
				t.Fatalf("player %d profits by deviating to %v: %v > %v", n, q, dev, current)
			}
		}
	}
}

func TestCongestionConvergesTowardEta(t *testing.T) {
	// With demand well above capacity, the overload penalty pins the
	// equilibrium congestion degree near the safety factor η = 0.9.
	cfg := testConfig(t, 30, 10) // demand ~2000 kW vs capacity 500 kW
	for i := range cfg.Players {
		cfg.Players[i].MaxPowerKW = 90
		cfg.Players[i].Satisfaction = LogSatisfaction{Weight: 2}
	}
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(RunOptions{MaxUpdates: 20000, Tolerance: 1e-7})
	got := g.CongestionDegree()
	if got < 0.85 || got > 1.0 {
		t.Errorf("equilibrium congestion = %v, want near η = 0.9", got)
	}
}

func TestRunDefaultsAndHooks(t *testing.T) {
	g, err := NewGame(testConfig(t, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	var hookCalls int
	res := g.Run(RunOptions{OnUpdate: func(step int, g *Game) {
		hookCalls++
		if step != hookCalls {
			t.Errorf("hook step %d on call %d", step, hookCalls)
		}
	}})
	if !res.Converged {
		t.Error("defaults should converge a tiny game")
	}
	if hookCalls != res.Updates {
		t.Errorf("hook called %d times for %d updates", hookCalls, res.Updates)
	}
}

func TestUpdateOneOutOfRange(t *testing.T) {
	g, err := NewGame(testConfig(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.UpdateOne(-1); got != 0 {
		t.Errorf("UpdateOne(-1) = %v", got)
	}
	if got := g.UpdateOne(99); got != 0 {
		t.Errorf("UpdateOne(99) = %v", got)
	}
}

func TestScheduleAccessorIsACopy(t *testing.T) {
	g, err := NewGame(testConfig(t, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	g.UpdateOne(0)
	s := g.Schedule()
	s.Set(0, 0, 9999)
	if g.Schedule().At(0, 0) == 9999 {
		t.Error("Schedule() leaked internal state")
	}
}

func TestGamePlayersSliceCopied(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Players[0].MaxPowerKW = 0 // mutate caller's slice
	if g.Player(0).MaxPowerKW == 0 {
		t.Error("game shares the caller's player slice")
	}
}
