package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"olevgrid/internal/obs"
)

// promValue digs one sample line out of a Prometheus text exposition
// and parses its value, so the reconciliation suite can assert not
// just that the registry holds the right numbers but that the export
// path reproduces them faithfully.
func promValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("exposition has no sample %q", name)
	return 0
}

// TestObsReconcilesWithSolverResults is the faithfulness half of the
// observability conformance harness: across the same seed and instance
// count as the 50-instance differential suite, every exported quantity
// must agree exactly with the solver's own ground truth — rounds and
// update counters with ParallelResult, the per-section load histogram
// sum with the scheduled mass, the payment gauge with core.Payment
// output — and arming metrics must leave the solve bit-for-bit
// identical to an uninstrumented run.
func TestObsReconcilesWithSolverResults(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const instances = 50
	for trial := 0; trial < instances; trial++ {
		nonlinear := trial%2 == 0
		cfg := randomInstance(t, rng, nonlinear)
		t.Run(fmt.Sprintf("trial%02d_n%d_c%d", trial, len(cfg.Players), cfg.NumSections), func(t *testing.T) {
			gBare, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}
			gObs, err := NewGame(cfg)
			if err != nil {
				t.Fatal(err)
			}

			reg := obs.NewRegistry()
			sink := obs.NewEventSink(8192)
			m := NewMetrics(reg, sink)

			opts := ParallelOptions{Tolerance: 1e-9, MaxRounds: 5000, Parallelism: 2}
			resBare := gBare.RunParallel(opts)
			opts.Metrics = m
			res := gObs.RunParallel(opts)

			// Free: metrics must not perturb the computation.
			if res.Rounds != resBare.Rounds || res.Replayed != resBare.Replayed ||
				res.Converged != resBare.Converged {
				t.Fatalf("metrics changed the trajectory: rounds %d vs %d, replayed %d vs %d",
					res.Rounds, resBare.Rounds, res.Replayed, resBare.Replayed)
			}
			sBare, sObs := gBare.Schedule(), gObs.Schedule()
			for n := 0; n < len(cfg.Players); n++ {
				for c := 0; c < cfg.NumSections; c++ {
					if sBare.At(n, c) != sObs.At(n, c) {
						t.Fatalf("metrics perturbed schedule entry (%d,%d): %v vs %v",
							n, c, sBare.At(n, c), sObs.At(n, c))
					}
				}
			}

			// Faithful: counters == results.
			if got := m.Rounds.Value(); got != uint64(res.Rounds) {
				t.Errorf("rounds counter = %d, Result.Rounds = %d", got, res.Rounds)
			}
			if got := m.Updates.Value(); got != uint64(res.Updates) {
				t.Errorf("updates counter = %d, Result.Updates = %d", got, res.Updates)
			}
			if got := m.Replays.Value(); got != uint64(res.Replayed) {
				t.Errorf("replays counter = %d, Result.Replayed = %d", got, res.Replayed)
			}
			if got := m.Solves.Value(); got != 1 {
				t.Errorf("solves counter = %d, want 1", got)
			}
			wantConv := uint64(0)
			if res.Converged {
				wantConv = 1
			}
			if got := m.Converged.Value(); got != wantConv {
				t.Errorf("converged counter = %d, want %d", got, wantConv)
			}

			// Welfare/congestion gauges hold the final trajectory points.
			if got := m.Welfare.Value(); got != res.Welfare[len(res.Welfare)-1] {
				t.Errorf("welfare gauge = %v, trajectory end = %v", got, res.Welfare[len(res.Welfare)-1])
			}
			if got := m.Congestion.Value(); got != res.Congestion[len(res.Congestion)-1] {
				t.Errorf("congestion gauge = %v, trajectory end = %v", got, res.Congestion[len(res.Congestion)-1])
			}

			// Σ per-section load histogram == scheduled mass, summed in
			// the same section order so the float op order matches.
			var mass float64
			for _, load := range gObs.SectionTotals() {
				mass += load
			}
			if got := m.SectionLoad.Sum(); got != mass {
				t.Errorf("section-load histogram sum = %v, scheduled mass = %v", got, mass)
			}
			if got := m.SectionLoad.Count(); got != uint64(cfg.NumSections) {
				t.Errorf("section-load histogram count = %d, sections = %d", got, cfg.NumSections)
			}

			// Payment gauge == core.Payment fleet total.
			if got, want := m.Payment.Value(), gObs.TotalPayment(); got != want {
				t.Errorf("payment gauge = %v, TotalPayment = %v", got, want)
			}

			// Every round left one span in the sink.
			if got := sink.Emitted(); got != uint64(res.Rounds) {
				t.Errorf("sink emitted %d events, rounds = %d", got, res.Rounds)
			}
			if res.Rounds <= sink.Cap() {
				if got := sink.CountKind(obs.EventSolverRound); got != res.Rounds {
					t.Errorf("sink retains %d solver_round events, want %d", got, res.Rounds)
				}
			}

			// The Prometheus exposition reproduces the registry exactly.
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			exp := buf.String()
			if got := promValue(t, exp, "olev_solver_rounds_total"); got != float64(res.Rounds) {
				t.Errorf("exported rounds = %v, want %d", got, res.Rounds)
			}
			if got := promValue(t, exp, "olev_solver_section_load_kw_sum"); got != mass {
				t.Errorf("exported load sum = %v, want %v", got, mass)
			}
			if got := promValue(t, exp, "olev_solver_payment_usd"); got != gObs.TotalPayment() {
				t.Errorf("exported payment = %v, want %v", got, gObs.TotalPayment())
			}
		})
	}
}

// TestObsAccumulatesAcrossSolves checks the bundle's counters are
// cumulative across back-to-back solves on one registry — the shape
// the coordinator and the coupled day rely on — with no resets or
// double counting at solve boundaries.
func TestObsAccumulatesAcrossSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reg := obs.NewRegistry()
	m := NewMetrics(reg, nil)

	var wantRounds, wantUpdates uint64
	for i := 0; i < 4; i++ {
		cfg := randomInstance(t, rng, i%2 == 0)
		g, err := NewGame(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := g.RunParallel(ParallelOptions{Tolerance: 1e-7, MaxRounds: 5000, Parallelism: 2, Metrics: m})
		wantRounds += uint64(res.Rounds)
		wantUpdates += uint64(res.Updates)
	}
	if got := m.Solves.Value(); got != 4 {
		t.Fatalf("solves = %d, want 4", got)
	}
	if got := m.Rounds.Value(); got != wantRounds {
		t.Fatalf("rounds = %d, want %d", got, wantRounds)
	}
	if got := m.Updates.Value(); got != wantUpdates {
		t.Fatalf("updates = %d, want %d", got, wantUpdates)
	}
}
