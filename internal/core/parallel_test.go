package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"olevgrid/internal/obs"
)

// parallelTestGame builds a moderately heterogeneous game for the
// round-engine tests.
func parallelTestGame(t *testing.T, n, c int) *Game {
	t.Helper()
	g, err := NewGame(testConfig(t, n, c))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunParallelConvergesToEquilibrium(t *testing.T) {
	// The equilibrium is unique (strictly concave U, strictly convex
	// Z), so the block engine and the asynchronous reference must land
	// on the same section totals and player totals.
	gSeq := parallelTestGame(t, 20, 12)
	gPar := parallelTestGame(t, 20, 12)

	resSeq := gSeq.Run(RunOptions{Tolerance: 1e-10, MaxUpdates: 200000})
	if !resSeq.Converged {
		t.Fatal("asynchronous reference did not converge")
	}
	resPar := gPar.RunParallel(ParallelOptions{Tolerance: 1e-10, MaxRounds: 20000, Parallelism: 4})
	if !resPar.Converged {
		t.Fatal("parallel engine did not converge")
	}

	seqTotals := gSeq.SectionTotals()
	parTotals := gPar.SectionTotals()
	for c := range seqTotals {
		if d := math.Abs(seqTotals[c] - parTotals[c]); d > 1e-6 {
			t.Errorf("section %d totals diverge: %v vs %v", c, seqTotals[c], parTotals[c])
		}
	}
	sSeq, sPar := gSeq.Schedule(), gPar.Schedule()
	for n := 0; n < gSeq.NumPlayers(); n++ {
		if d := math.Abs(sSeq.OLEVTotal(n) - sPar.OLEVTotal(n)); d > 1e-6 {
			t.Errorf("player %d totals diverge: %v vs %v", n, sSeq.OLEVTotal(n), sPar.OLEVTotal(n))
		}
	}
	if d := math.Abs(gSeq.Welfare() - gPar.Welfare()); d > 1e-6 {
		t.Errorf("welfare diverges: %v vs %v", gSeq.Welfare(), gPar.Welfare())
	}
}

func TestRunParallelWelfareMonotonePerRound(t *testing.T) {
	g := parallelTestGame(t, 24, 16)
	res := g.RunParallel(ParallelOptions{Parallelism: 3, BatchSize: 6})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	guard := 0.0
	for i := 1; i < len(res.Welfare); i++ {
		slack := welfareGuardRelEps * (1 + math.Abs(res.Welfare[i-1]))
		if res.Welfare[i] < res.Welfare[i-1]-slack {
			t.Errorf("round %d welfare regressed: %v -> %v", i+1, res.Welfare[i-1], res.Welfare[i])
		}
		guard = math.Max(guard, res.Welfare[i-1]-res.Welfare[i])
	}
	t.Logf("rounds=%d replayed=%d worst per-round dip=%g", res.Rounds, res.Replayed, guard)
}

func TestRunParallelBatchOneMatchesGaussSeidelEquilibrium(t *testing.T) {
	// BatchSize 1 degenerates to exact per-player Gauss–Seidel in
	// round-robin order — the same dynamics as Run(OrderRoundRobin) up
	// to incremental-vs-rebuilt float summation, so the converged
	// schedules must agree to well below any physical scale.
	gSeq := parallelTestGame(t, 15, 10)
	gPar := parallelTestGame(t, 15, 10)
	if res := gSeq.Run(RunOptions{Tolerance: 1e-11, MaxUpdates: 300000, Order: OrderRoundRobin}); !res.Converged {
		t.Fatal("reference did not converge")
	}
	if res := gPar.RunParallel(ParallelOptions{Tolerance: 1e-11, MaxRounds: 20000, BatchSize: 1}); !res.Converged {
		t.Fatal("engine did not converge")
	}
	sSeq, sPar := gSeq.Schedule(), gPar.Schedule()
	for n := 0; n < gSeq.NumPlayers(); n++ {
		for c := 0; c < gSeq.NumSections(); c++ {
			if d := math.Abs(sSeq.At(n, c) - sPar.At(n, c)); d > 1e-7 {
				t.Fatalf("entry (%d,%d) diverges: %v vs %v", n, c, sSeq.At(n, c), sPar.At(n, c))
			}
		}
	}
}

func TestRunParallelHonorsDrawCaps(t *testing.T) {
	cfg := testConfig(t, 12, 8)
	for i := range cfg.Players {
		cfg.Players[i].MaxSectionDrawKW = 3.5
	}
	g, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := g.RunParallel(ParallelOptions{Parallelism: 2})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	s := g.Schedule()
	for n := 0; n < g.NumPlayers(); n++ {
		for c := 0; c < g.NumSections(); c++ {
			if s.At(n, c) > 3.5+1e-9 {
				t.Fatalf("player %d section %d draw %v exceeds cap", n, c, s.At(n, c))
			}
		}
	}
	// The capped equilibrium must match the asynchronous solver's.
	g2, err := NewGame(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := g2.Run(RunOptions{Tolerance: 1e-9, MaxUpdates: 100000}); !r.Converged {
		t.Fatal("reference did not converge")
	}
	tseq, tpar := g2.SectionTotals(), g.SectionTotals()
	for c := range tseq {
		if d := math.Abs(tseq[c] - tpar[c]); d > 1e-4 {
			t.Errorf("capped section %d totals diverge: %v vs %v", c, tseq[c], tpar[c])
		}
	}
}

func TestRunParallelGuardReplaysHarmfulBlocks(t *testing.T) {
	// Identical players all chasing the same sections is the classic
	// Jacobi failure mode (see RunSynchronous); with a full-fleet batch
	// the guard must catch any harmful block, keep welfare monotone,
	// and still converge.
	n := 16
	players := make([]Player, n)
	for i := range players {
		players[i] = Player{
			ID:           fmt.Sprintf("twin-%d", i),
			MaxPowerKW:   80,
			Satisfaction: LogSatisfaction{Weight: 2},
		}
	}
	v, err := NewQuadraticCharging(0.02, 0.875, 45)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGame(Config{
		Players: players, NumSections: 6, LineCapacityKW: 50, Eta: 0.9, Cost: v,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := g.RunParallel(ParallelOptions{BatchSize: n, Parallelism: 4, MaxRounds: 5000})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for i := 1; i < len(res.Welfare); i++ {
		slack := welfareGuardRelEps * (1 + math.Abs(res.Welfare[i-1]))
		if res.Welfare[i] < res.Welfare[i-1]-slack {
			t.Fatalf("welfare regressed at round %d despite guard", i+1)
		}
	}
	t.Logf("full-batch twins: rounds=%d replayed=%d", res.Rounds, res.Replayed)
}

func TestRunParallelRecordsPerRoundTrajectories(t *testing.T) {
	g := parallelTestGame(t, 10, 6)
	var observed int
	res := g.RunParallel(ParallelOptions{OnRound: func(round int, g *Game) { observed = round }})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if len(res.Welfare) != res.Rounds || len(res.Congestion) != res.Rounds {
		t.Fatalf("trajectory lengths %d/%d != rounds %d", len(res.Welfare), len(res.Congestion), res.Rounds)
	}
	if observed != res.Rounds {
		t.Fatalf("OnRound saw %d rounds, result says %d", observed, res.Rounds)
	}
	if res.Updates != res.Rounds*g.NumPlayers() {
		t.Fatalf("updates %d != rounds*N %d", res.Updates, res.Rounds*g.NumPlayers())
	}
	// The final recorded welfare/congestion must match the game's own
	// accessors — the incremental caches cannot drift from the truth.
	if d := math.Abs(res.Welfare[len(res.Welfare)-1] - g.Welfare()); d > 1e-9 {
		t.Errorf("cached welfare drifted from recomputed by %g", d)
	}
	if d := math.Abs(res.Congestion[len(res.Congestion)-1] - g.CongestionDegree()); d > 1e-12 {
		t.Errorf("cached congestion drifted from recomputed by %g", d)
	}
}

func TestRoundEngineSteadyStateZeroAllocs(t *testing.T) {
	g := parallelTestGame(t, 20, 16)
	e := newRoundEngine(g, 2, DefaultBatchSize, 1e-6)
	defer e.stop()
	// Converge first: steady-state turns then re-propose the same
	// targets and install no-op rows.
	for i := 0; i < 2000; i++ {
		if e.round() < 1e-9 {
			break
		}
	}
	allocs := testing.AllocsPerRun(50, func() { e.round() })
	if allocs != 0 {
		t.Fatalf("steady-state round allocates %v times, want 0", allocs)
	}

	// The OrderRandom shuffle must not reintroduce allocations: the
	// swap closure is bound once when the order is armed.
	e.setOrder(OrderRandom, 3)
	for i := 0; i < 2000; i++ {
		if e.round() < 1e-9 {
			break
		}
	}
	allocs = testing.AllocsPerRun(50, func() { e.round() })
	if allocs != 0 {
		t.Fatalf("steady-state shuffled round allocates %v times, want 0", allocs)
	}
}

// TestInstrumentedRoundZeroAllocs is the "free" half of the
// observability conformance harness: a steady-state round observed
// through the metrics bundle must stay allocation-free both with the
// nil off switch and with every instrument armed (registry + event
// sink), exactly like the bare engine guard above.
func TestInstrumentedRoundZeroAllocs(t *testing.T) {
	g := parallelTestGame(t, 20, 16)
	e := newRoundEngine(g, 2, DefaultBatchSize, 1e-6)
	defer e.stop()
	for i := 0; i < 2000; i++ {
		if e.round() < 1e-9 {
			break
		}
	}

	// Nil-sink fast path: the off switch costs one predictable branch.
	var off *Metrics
	allocs := testing.AllocsPerRun(50, func() {
		d := e.round()
		off.observeRound(1, d, e.welfare(), e.congestion())
	})
	if allocs != 0 {
		t.Fatalf("nil-metrics round allocates %v times, want 0", allocs)
	}

	// Armed path: counters, gauges, histogram, and ring emission are
	// all atomic writes into preallocated state.
	reg := obs.NewRegistry()
	sink := obs.NewEventSink(1024)
	m := NewMetrics(reg, sink)
	allocs = testing.AllocsPerRun(50, func() {
		d := e.round()
		m.observeRound(1, d, e.welfare(), e.congestion())
	})
	if allocs != 0 {
		t.Fatalf("armed-metrics round allocates %v times, want 0", allocs)
	}
	if m.Rounds.Value() == 0 || sink.Emitted() == 0 {
		t.Fatal("armed instruments saw no traffic — the guard measured nothing")
	}
}

func TestLevelSortedMatchesWaterFill(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		c := 1 + rng.Intn(40)
		others := make([]float64, c)
		for i := range others {
			others[i] = rng.Float64() * 30
		}
		total := rng.Float64() * 100
		_, want := WaterFill(others, total)

		ws := newFillScratch(c)
		copy(ws.others, others)
		copy(ws.sorted, others)
		sort.Float64s(ws.sorted)
		ws.prefix[0] = 0
		for k, v := range ws.sorted {
			ws.prefix[k+1] = ws.prefix[k] + v
		}
		got := levelSorted(ws.sorted, ws.prefix, total)
		if got != want {
			t.Fatalf("trial %d: levelSorted %v != WaterFill %v (c=%d total=%v)", trial, got, want, c, total)
		}
	}
}

func TestCappedLevelSortedMatchesPerDrawWaterFill(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		c := 1 + rng.Intn(30)
		others := make([]float64, c)
		for i := range others {
			others[i] = rng.Float64() * 20
		}
		cap := 0.5 + rng.Float64()*8
		total := rng.Float64() * cap * float64(c) * 0.99
		_, want := PerDrawWaterFill(others, cap, total)

		ws := newFillScratch(c)
		copy(ws.sorted, others)
		sort.Float64s(ws.sorted)
		ws.prefix[0] = 0
		for k, v := range ws.sorted {
			ws.prefix[k+1] = ws.prefix[k] + v
		}
		got := cappedLevelSorted(ws.sorted, ws.prefix, cap, total)
		if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
			t.Fatalf("trial %d: cappedLevelSorted %v != PerDrawWaterFill %v (c=%d cap=%v total=%v)",
				trial, got, want, c, cap, total)
		}
		// The exact-breakpoint level must reproduce the requested total.
		var y float64
		for _, o := range others {
			a := got - o
			if a <= 0 {
				continue
			}
			if a > cap {
				a = cap
			}
			y += a
		}
		if math.Abs(y-total) > 1e-9*(1+total) {
			t.Fatalf("trial %d: level %v allocates %v, want %v", trial, got, y, total)
		}
	}
}
