package core

import (
	"fmt"
	"math"
)

// CostFunction is a section's power charging cost: a convex,
// non-decreasing function of the section's total scheduled power
// (kW), returning a cost rate in $/h. The best-response machinery
// additionally needs the first derivative.
type CostFunction interface {
	// Cost returns the cost rate at load x kW.
	Cost(x float64) float64
	// Marginal returns dCost/dx at load x kW, in $/kWh.
	Marginal(x float64) float64
}

// QuadraticCharging is the paper's nonlinear charging cost V(·),
// normalized so the *unit* price sweeps from roughly
// β·α²/(α+1)² at zero load up to β at full capacity:
//
//	V(x) = β · x · (α + x/cap)² / (α+1)²
//
// β is in $/kWh (the experiment harness converts from the $/MWh LBMP
// the grid substrate quotes), α ≥ 0 shapes the grid's profit floor
// (the paper sets 0.875), and cap is the section's capacity ηP_line.
// V is strictly convex and strictly increasing on x ≥ 0.
type QuadraticCharging struct {
	Beta     float64
	Alpha    float64
	Capacity float64
}

var _ CostFunction = QuadraticCharging{}

// NewQuadraticCharging validates and constructs the charging cost.
func NewQuadraticCharging(betaPerKWh, alpha, capacityKW float64) (QuadraticCharging, error) {
	switch {
	case betaPerKWh <= 0 || math.IsNaN(betaPerKWh):
		return QuadraticCharging{}, fmt.Errorf("core: beta %v must be positive", betaPerKWh)
	case alpha < 0 || math.IsNaN(alpha):
		return QuadraticCharging{}, fmt.Errorf("core: alpha %v must be non-negative", alpha)
	case capacityKW <= 0 || math.IsNaN(capacityKW):
		return QuadraticCharging{}, fmt.Errorf("core: capacity %v must be positive", capacityKW)
	}
	return QuadraticCharging{Beta: betaPerKWh, Alpha: alpha, Capacity: capacityKW}, nil
}

// Cost implements CostFunction.
func (q QuadraticCharging) Cost(x float64) float64 {
	if x <= 0 {
		return 0
	}
	u := q.Alpha + x/q.Capacity
	norm := (q.Alpha + 1) * (q.Alpha + 1)
	return q.Beta * x * u * u / norm
}

// Marginal implements CostFunction.
func (q QuadraticCharging) Marginal(x float64) float64 {
	if x < 0 {
		x = 0
	}
	u := q.Alpha + x/q.Capacity
	norm := (q.Alpha + 1) * (q.Alpha + 1)
	return q.Beta * (u*u + 2*x*u/q.Capacity) / norm
}

// LinearCharging is the comparison baseline V(x) = β·x: a flat unit
// price that never reacts to congestion. It is convex but not strictly
// convex, which is exactly why the linear policy cannot load-balance.
type LinearCharging struct {
	Beta float64
}

var _ CostFunction = LinearCharging{}

// Cost implements CostFunction.
func (l LinearCharging) Cost(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return l.Beta * x
}

// Marginal implements CostFunction.
func (l LinearCharging) Marginal(float64) float64 { return l.Beta }

// OverloadPenalty is A(·) of Eq. (6): a convex penalty on load beyond
// the safe capacity ηP_line, zero below it:
//
//	A(x) = κ/(2·cap) · ([x − cap]^+)²
//
// κ is in $/kWh and sets how violently the marginal price climbs once
// a section is overloaded; cap is ηP_line.
type OverloadPenalty struct {
	Kappa    float64
	Capacity float64
}

var _ CostFunction = OverloadPenalty{}

// Cost implements CostFunction.
func (o OverloadPenalty) Cost(x float64) float64 {
	over := x - o.Capacity
	if over <= 0 {
		return 0
	}
	return o.Kappa / (2 * o.Capacity) * over * over
}

// Marginal implements CostFunction.
func (o OverloadPenalty) Marginal(x float64) float64 {
	over := x - o.Capacity
	if over <= 0 {
		return 0
	}
	return o.Kappa * over / o.Capacity
}

// marginalOf returns a devirtualized marginal evaluator for the cost
// compositions the experiments actually run — SectionCost over the
// quadratic or linear charging curve with the overload penalty — and
// falls back to the interface method for anything else. The
// specialized closures perform the same floating-point operations in
// the same order as the Marginal methods they shortcut, so results
// are bit-identical; they exist only to strip the double interface
// dispatch out of the best-response bisection, the round engine's
// hottest loop.
func marginalOf(cost CostFunction) func(float64) float64 {
	sc, ok := cost.(SectionCost)
	if !ok {
		return cost.Marginal
	}
	o, ok := sc.Overload.(OverloadPenalty)
	if !ok {
		return cost.Marginal
	}
	switch q := sc.Charging.(type) {
	case QuadraticCharging:
		return func(x float64) float64 {
			if x < 0 {
				x = 0
			}
			u := q.Alpha + x/q.Capacity
			norm := (q.Alpha + 1) * (q.Alpha + 1)
			m := q.Beta * (u*u + 2*x*u/q.Capacity) / norm
			if over := x - o.Capacity; over > 0 {
				m += o.Kappa * over / o.Capacity
			}
			return m
		}
	case LinearCharging:
		return func(x float64) float64 {
			m := q.Beta
			if over := x - o.Capacity; over > 0 {
				m += o.Kappa * over / o.Capacity
			}
			return m
		}
	}
	return cost.Marginal
}

// SectionCost is Z(·) = V(·) + A(· − ηP_line) of Eq. (6): the total
// power charging plus overload cost of one charging section.
type SectionCost struct {
	Charging CostFunction
	Overload CostFunction
}

var _ CostFunction = SectionCost{}

// Cost implements CostFunction.
func (s SectionCost) Cost(x float64) float64 {
	return s.Charging.Cost(x) + s.Overload.Cost(x)
}

// Marginal implements CostFunction.
func (s SectionCost) Marginal(x float64) float64 {
	return s.Charging.Marginal(x) + s.Overload.Marginal(x)
}
