package core

import (
	"runtime"
	"time"
)

// SteadyStateBench is one solver's measurement from BenchSteadyState;
// cmd/bench-core serializes a set of these into BENCH_core.json.
type SteadyStateBench struct {
	// Parallelism is the worker count the engine ran with.
	Parallelism int `json:"parallelism"`
	// ConvergeRounds is how many engine rounds equilibrium took.
	ConvergeRounds int `json:"converge_rounds"`
	// Converged reports whether the tolerance was met before the cap.
	Converged bool `json:"converged"`
	// SteadyRounds is how many post-convergence rounds were timed.
	SteadyRounds int `json:"steady_rounds"`
	// NsPerTurn is wall time per player turn in the steady state.
	NsPerTurn float64 `json:"ns_per_turn"`
	// AllocsPerTurn is heap allocations per player turn; the engine's
	// design target — and the zero-alloc test's assertion — is 0.
	AllocsPerTurn float64 `json:"allocs_per_turn"`
	// Welfare is the converged social welfare W(p) in $/h.
	Welfare float64 `json:"welfare"`
}

// BenchSteadyState drives g to equilibrium with the round engine, then
// forces steadyRounds extra rounds on the converged state and measures
// the hot path: wall time and heap allocations per player turn. The
// extra rounds are game-theoretic no-ops (every best response
// reproduces the current schedule, so the welfare guard never trips),
// which is exactly what makes them a clean probe of the engine's
// per-turn cost: every cache hits, no block ever replays, and a
// correct implementation allocates nothing.
//
// The allocation count comes from runtime.MemStats.Mallocs deltas, so
// unrelated runtime activity can leak in; the hard zero assertion
// lives in the core test suite via testing.AllocsPerRun.
func BenchSteadyState(g *Game, parallelism, maxRounds, steadyRounds int, tol float64) SteadyStateBench {
	if maxRounds <= 0 {
		maxRounds = 2000
	}
	if steadyRounds <= 0 {
		steadyRounds = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	e := newRoundEngine(g, parallelism, DefaultBatchSize, tol)
	defer e.stop()

	rep := SteadyStateBench{Parallelism: e.workers, SteadyRounds: steadyRounds}
	for round := 1; round <= maxRounds; round++ {
		rep.ConvergeRounds = round
		if e.round() < tol {
			rep.Converged = true
			break
		}
	}

	// One warm-up round after convergence, then measure.
	e.round()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	startT := time.Now()
	for i := 0; i < steadyRounds; i++ {
		e.round()
	}
	elapsed := time.Since(startT)
	runtime.ReadMemStats(&after)

	turns := float64(steadyRounds * e.n)
	rep.NsPerTurn = float64(elapsed.Nanoseconds()) / turns
	rep.AllocsPerTurn = float64(after.Mallocs-before.Mallocs) / turns
	rep.Welfare = e.welfare()
	return rep
}
