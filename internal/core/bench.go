package core

import (
	"runtime"
	"time"
)

// SteadyStateBench is one solver's measurement from BenchSteadyState;
// cmd/bench-core serializes a set of these into BENCH_core.json.
type SteadyStateBench struct {
	// Parallelism is the worker count the engine ran with.
	Parallelism int `json:"parallelism"`
	// ConvergeRounds is how many engine rounds equilibrium took.
	ConvergeRounds int `json:"converge_rounds"`
	// Converged reports whether the tolerance was met before the cap.
	Converged bool `json:"converged"`
	// SteadyRounds is how many post-convergence rounds were timed.
	SteadyRounds int `json:"steady_rounds"`
	// NsPerTurn is wall time per player turn in the steady state.
	NsPerTurn float64 `json:"ns_per_turn"`
	// AllocsPerTurn is heap allocations per player turn; the engine's
	// design target — and the zero-alloc test's assertion — is 0.
	AllocsPerTurn float64 `json:"allocs_per_turn"`
	// Welfare is the converged social welfare W(p) in $/h.
	Welfare float64 `json:"welfare"`
}

// BenchSteadyState drives g to equilibrium with the round engine, then
// forces steadyRounds extra rounds on the converged state and measures
// the hot path: wall time and heap allocations per player turn. The
// extra rounds are game-theoretic no-ops (every best response
// reproduces the current schedule, so the welfare guard never trips),
// which is exactly what makes them a clean probe of the engine's
// per-turn cost: every cache hits, no block ever replays, and a
// correct implementation allocates nothing.
//
// The allocation count comes from runtime.MemStats.Mallocs deltas, so
// unrelated runtime activity can leak in; the hard zero assertion
// lives in the core test suite via testing.AllocsPerRun.
func BenchSteadyState(g *Game, parallelism, maxRounds, steadyRounds int, tol float64) SteadyStateBench {
	if maxRounds <= 0 {
		maxRounds = 2000
	}
	if steadyRounds <= 0 {
		steadyRounds = 50
	}
	if tol <= 0 {
		tol = 1e-6
	}
	e := newRoundEngine(g, parallelism, DefaultBatchSize, tol)
	defer e.stop()

	rep := SteadyStateBench{Parallelism: e.workers, SteadyRounds: steadyRounds}
	for round := 1; round <= maxRounds; round++ {
		rep.ConvergeRounds = round
		if e.round() < tol {
			rep.Converged = true
			break
		}
	}

	// One warm-up round after convergence, then measure.
	e.round()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	startT := time.Now()
	for i := 0; i < steadyRounds; i++ {
		e.round()
	}
	elapsed := time.Since(startT)
	runtime.ReadMemStats(&after)

	turns := float64(steadyRounds * e.n)
	rep.NsPerTurn = float64(elapsed.Nanoseconds()) / turns
	rep.AllocsPerTurn = float64(after.Mallocs-before.Mallocs) / turns
	rep.Welfare = e.welfare()
	return rep
}

// MetricsOverheadBench quantifies what arming the obs bundle costs the
// steady-state hot path; cmd/bench-core gates it at ≤ 3% under -check.
type MetricsOverheadBench struct {
	// Parallelism is the engine's worker count during the probe.
	Parallelism int `json:"parallelism"`
	// SteadyRounds is rounds timed per trial, Trials the best-of count.
	SteadyRounds int `json:"steady_rounds"`
	Trials       int `json:"trials"`
	// BareNsPerTurn and ArmedNsPerTurn are best-of-trials ns per player
	// turn with the bundle nil versus armed.
	BareNsPerTurn  float64 `json:"bare_ns_per_turn"`
	ArmedNsPerTurn float64 `json:"armed_ns_per_turn"`
	// Overhead is armed/bare − 1; negative readings are noise and mean
	// the instrumentation cost is below the measurement floor.
	Overhead float64 `json:"overhead"`
	// ArmedAllocsPerTurn must stay 0: the instruments are atomics on
	// preallocated state (the hard assertion is AllocsPerRun in the
	// core test suite; this is the same contract read off MemStats).
	ArmedAllocsPerTurn float64 `json:"armed_allocs_per_turn"`
}

// BenchMetricsOverhead interleaves bare and armed steady-state trials
// on one converged engine and reports best-of-k ns/turn for each. Both
// loops run the identical per-round work the solver itself performs —
// round, welfare, congestion — and differ only in the Metrics receiver
// (nil versus armed), so the ratio isolates exactly the off-switch
// branch versus the atomic-store path. Interleaving plus best-of-k is
// the noise defense: thermal drift and scheduler luck hit both sides
// alike, and the minimum discards the outliers.
func BenchMetricsOverhead(g *Game, parallelism, steadyRounds, trials int, m *Metrics) MetricsOverheadBench {
	if steadyRounds <= 0 {
		steadyRounds = 50
	}
	if trials <= 0 {
		trials = 5
	}
	e := newRoundEngine(g, parallelism, DefaultBatchSize, 1e-6)
	defer e.stop()
	for round := 1; round <= 2000; round++ {
		if e.round() < 1e-6 {
			break
		}
	}
	e.round() // warm-up on the converged state

	turns := float64(steadyRounds * e.n)
	trial := func(m *Metrics) float64 {
		start := time.Now()
		for i := 0; i < steadyRounds; i++ {
			d := e.round()
			m.observeRound(i+1, d, e.welfare(), e.congestion())
		}
		return float64(time.Since(start).Nanoseconds()) / turns
	}

	rep := MetricsOverheadBench{
		Parallelism:  e.workers,
		SteadyRounds: steadyRounds,
		Trials:       trials,
		// Seed the minima with one throwaway pair so best-of-k never
		// reads an uninitialized zero.
		BareNsPerTurn:  trial(nil),
		ArmedNsPerTurn: trial(m),
	}
	var before, after runtime.MemStats
	for t := 0; t < trials; t++ {
		if ns := trial(nil); ns < rep.BareNsPerTurn {
			rep.BareNsPerTurn = ns
		}
		runtime.GC()
		runtime.ReadMemStats(&before)
		ns := trial(m)
		runtime.ReadMemStats(&after)
		if ns < rep.ArmedNsPerTurn {
			rep.ArmedNsPerTurn = ns
		}
		if a := float64(after.Mallocs-before.Mallocs) / turns; t == 0 || a < rep.ArmedAllocsPerTurn {
			rep.ArmedAllocsPerTurn = a
		}
	}
	if rep.BareNsPerTurn > 0 {
		rep.Overhead = rep.ArmedNsPerTurn/rep.BareNsPerTurn - 1
	}
	return rep
}
