package core

import (
	"fmt"
	"math"
)

// This file is the warm-start layer of the equilibrium engine: games
// re-solved after a small perturbation (an LBMP step, a handful of
// joins and departures, a resized roadway) start from the previous
// equilibrium instead of the all-zero schedule. The license to do so
// is Theorem IV.1: the game is an exact potential game, so the
// asynchronous best-response dynamics converge to the social optimum
// from *any* feasible starting point — the starting point only decides
// how many rounds the trip takes. Seeding near the old optimum
// therefore changes round counts, never the destination.
//
// The projection rule maps a prior equilibrium onto a new game
// configuration:
//
//   - rows travel by player ID: a vehicle present in both fleets keeps
//     its allocation, a departed vehicle's row is dropped, a joiner
//     starts at zero (exactly how sched.Coordinator admits mid-run
//     joins);
//   - when the section count changes, a kept row's total is spread
//     evenly over the new sections — the water-filled shape against the
//     old background is meaningless on a different roadway, but the
//     total is still an excellent guess for the player's demand;
//   - rows are re-clamped to the new player's feasibility: per-section
//     entries to the Eq. (3) draw cap, and the row total to the Eq. (2)
//     power ceiling (scaled down proportionally, which preserves the
//     water-filled shape).
//
// Feasibility of the seed matters only for interpretability — the
// first best response a player takes replaces its row wholesale — but
// clamping keeps every intermediate quote physically meaningful.

// ProjectSchedule maps a prior equilibrium onto a new game
// configuration following the warm-start projection rule above.
// prevIDs names the rows of prev, index-aligned; players and
// numSections describe the new game. The result is always a valid
// InitialSchedule for a Config with those players and sections.
func ProjectSchedule(prev *Schedule, prevIDs []string, players []Player, numSections int) (*Schedule, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: project needs a prior schedule")
	}
	if len(prevIDs) != prev.NumOLEVs() {
		return nil, fmt.Errorf("core: %d prior IDs for %d schedule rows", len(prevIDs), prev.NumOLEVs())
	}
	out, err := NewSchedule(len(players), numSections)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int, len(prevIDs))
	for i, id := range prevIDs {
		index[id] = i
	}
	row := make([]float64, numSections)
	for n, p := range players {
		j, ok := index[p.ID]
		if !ok {
			continue // joiner: zero-seeded
		}
		if numSections == prev.NumSections() {
			copy(row, prev.p[j*prev.c:(j+1)*prev.c])
		} else {
			share := prev.OLEVTotal(j) / float64(numSections)
			for c := range row {
				row[c] = share
			}
		}
		clampRowToPlayer(row, p)
		out.SetRow(n, row)
	}
	return out, nil
}

// ClampRowToPlayer re-imposes a player's own feasibility on a
// projected row in place: negative and NaN entries zeroed, the
// per-section Eq. (3) draw cap applied entrywise, then a proportional
// rescale of the total onto the Eq. (2) power ceiling. It is the
// projection rule ProjectSchedule applies to every carried-over row,
// exported so approximation tiers (internal/meanfield) can
// disaggregate population schedules through the identical clamp.
func ClampRowToPlayer(row []float64, p Player) {
	clampRowToPlayer(row, p)
}

// clampRowToPlayer re-imposes the player's own feasibility on a
// projected row: the per-section draw cap first, then a proportional
// rescale of the total onto the power ceiling.
func clampRowToPlayer(row []float64, p Player) {
	var total float64
	for c, v := range row {
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		if p.MaxSectionDrawKW > 0 && v > p.MaxSectionDrawKW {
			v = p.MaxSectionDrawKW
		}
		row[c] = v
		total += v
	}
	if total <= p.MaxPowerKW || total == 0 {
		return
	}
	scale := p.MaxPowerKW / total
	for c := range row {
		row[c] *= scale
	}
}

// validateInitialSchedule checks a Config.InitialSchedule against the
// game's dimensions; entries must be finite and non-negative (a
// schedule entry is a physical power draw).
func validateInitialSchedule(s *Schedule, numPlayers, numSections int) error {
	if s.NumOLEVs() != numPlayers || s.NumSections() != numSections {
		return fmt.Errorf("core: initial schedule %dx%d does not match game %dx%d",
			s.NumOLEVs(), s.NumSections(), numPlayers, numSections)
	}
	for _, v := range s.p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: initial schedule entry %v is not a power draw", v)
		}
	}
	return nil
}
