package core

import "olevgrid/internal/stats"

// RunSynchronous is the Jacobi ablation of the asynchronous scheme:
// every round, all players best-respond simultaneously against the
// same frozen schedule, and the new rows are installed together.
//
// The paper's framework is deliberately *asynchronous* (one OLEV per
// update, Section IV-D) because sequential best response in an exact
// potential game is monotone in the potential. Simultaneous response
// is not: symmetric players all chase the same under-priced sections
// at once, overshoot together, and can cycle. This method exists so
// the ablation bench can demonstrate that failure mode; production
// callers should use Run.
func (g *Game) RunSynchronous(opts RunOptions) Result {
	n := len(g.cfg.Players)
	if opts.MaxUpdates <= 0 {
		opts.MaxUpdates = 1000 * n
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-6
	}

	var res Result
	rows := make([][]float64, n)
	for res.Updates < opts.MaxUpdates {
		// Phase 1: everyone quotes and responds against the frozen
		// schedule.
		var roundMax float64
		for i := 0; i < n; i++ {
			player := g.cfg.Players[i]
			psi := g.QuotePayment(i)
			before := g.schedule.OLEVTotal(i)
			target := BestResponse(player.Satisfaction, psi, player.MaxPowerKW)
			rows[i] = psi.Schedule(target)
			if d := abs(target - before); d > roundMax {
				roundMax = d
			}
		}
		// Phase 2: install simultaneously.
		for i := 0; i < n; i++ {
			g.schedule.SetRow(i, rows[i])
			res.Updates++
			res.Welfare = append(res.Welfare, g.Welfare())
			res.Congestion = append(res.Congestion, g.CongestionDegree())
			if opts.OnUpdate != nil {
				opts.OnUpdate(res.Updates, g)
			}
		}
		if roundMax < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	return res
}

// OscillationAmplitude measures the peak-to-peak swing of the tail of
// a trajectory — the scalar the Jacobi ablation reports. tailFrac in
// (0, 1] selects how much of the end of the series to examine.
func OscillationAmplitude(series []float64, tailFrac float64) float64 {
	if len(series) == 0 {
		return 0
	}
	if tailFrac <= 0 || tailFrac > 1 {
		tailFrac = 0.25
	}
	start := len(series) - int(float64(len(series))*tailFrac)
	if start < 0 {
		start = 0
	}
	var s stats.Summary
	s.AddAll(series[start:])
	return s.Max() - s.Min()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
