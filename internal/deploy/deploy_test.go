package deploy

import (
	"math"
	"testing"
	"time"

	"olevgrid/internal/roadnet"
	"olevgrid/internal/stats"
	"olevgrid/internal/trace"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
	"olevgrid/internal/wpt"
)

func syntheticProfile(bins []float64) *OccupancyProfile {
	return &OccupancyProfile{BinSize: units.Meters(10), Bins: bins}
}

func TestOptimizePlacementPicksTheMass(t *testing.T) {
	// Occupancy concentrated in bins 6..7; a single 20 m (2-bin)
	// section must land exactly there.
	prof := syntheticProfile([]float64{1, 1, 1, 1, 1, 1, 50, 50, 1, 1})
	plan, err := OptimizePlacement(prof, units.Meters(20), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Starts) != 1 || plan.Starts[0] != units.Meters(60) {
		t.Errorf("plan starts %v, want [60m]", plan.Starts)
	}
	if plan.CoveredVehicleSeconds != 100 {
		t.Errorf("covered %v, want 100", plan.CoveredVehicleSeconds)
	}
}

func TestOptimizePlacementNonOverlapping(t *testing.T) {
	prof := syntheticProfile([]float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1})
	plan, err := OptimizePlacement(prof, units.Meters(30), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Starts) != 3 {
		t.Fatalf("placed %d sections, want 3", len(plan.Starts))
	}
	for i := 1; i < len(plan.Starts); i++ {
		if plan.Starts[i]-plan.Starts[i-1] < units.Meters(30) {
			t.Errorf("sections overlap: %v", plan.Starts)
		}
	}
	// Everything fits: 3×3 bins minimum 9 ≤ 10 → covered = 55 minus
	// the one dropped bin (the smallest one the DP can spare).
	if plan.CoveredVehicleSeconds < 54 {
		t.Errorf("covered %v, want ≥ 54 of 55", plan.CoveredVehicleSeconds)
	}
}

func TestOptimizeBeatsOrMatchesGreedy(t *testing.T) {
	r := stats.NewRand(13)
	for trial := 0; trial < 50; trial++ {
		bins := make([]float64, 30+r.Intn(40))
		for i := range bins {
			bins[i] = r.Float64() * 100
		}
		prof := syntheticProfile(bins)
		k := 1 + r.Intn(4)
		secLen := units.Meters(float64(10 * (1 + r.Intn(5))))

		opt, err := OptimizePlacement(prof, secLen, k)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GreedyPlacement(prof, secLen, k)
		if err != nil {
			t.Fatal(err)
		}
		if opt.CoveredVehicleSeconds < greedy.CoveredVehicleSeconds-1e-9 {
			t.Fatalf("trial %d: DP %v below greedy %v",
				trial, opt.CoveredVehicleSeconds, greedy.CoveredVehicleSeconds)
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	prof := syntheticProfile([]float64{1, 2, 3})
	if _, err := OptimizePlacement(nil, units.Meters(10), 1); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := OptimizePlacement(prof, units.Meters(10), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := OptimizePlacement(prof, 0, 1); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := OptimizePlacement(prof, units.Meters(100), 1); err == nil {
		t.Error("section longer than road accepted")
	}
	if _, err := GreedyPlacement(prof, units.Meters(100), 1); err == nil {
		t.Error("greedy: section longer than road accepted")
	}
}

func TestMeasureOccupancyQueuesAtStopLine(t *testing.T) {
	// The whole point: on a signalized arterial the occupancy mass
	// sits just upstream of the stop line.
	plan := roadnet.DefaultSignalPlan()
	cfg := traffic.SimConfig{
		RoadLength: units.Meters(1000),
		SpeedLimit: units.KMH(50),
		Signal:     &plan,
		Counts:     trace.FlatlandsAvenue(),
		Seed:       1,
		Start:      16 * time.Hour,
		End:        18 * time.Hour,
	}
	prof, err := MeasureOccupancy(cfg, units.Meters(10))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total() <= 0 {
		t.Fatal("no occupancy measured")
	}
	// The last 200 m should hold several times the occupancy of the
	// 200 m mid-block stretch.
	last, mid := 0.0, 0.0
	n := len(prof.Bins)
	for i := n - 20; i < n; i++ {
		last += prof.Bins[i]
	}
	for i := n/2 - 10; i < n/2+10; i++ {
		mid += prof.Bins[i]
	}
	if last < 2*mid {
		t.Errorf("stop-line occupancy %v not well above mid-block %v", last, mid)
	}
}

func TestOptimalPlanConcentratesAtStopLine(t *testing.T) {
	plan := roadnet.DefaultSignalPlan()
	cfg := traffic.SimConfig{
		RoadLength: units.Meters(1000),
		SpeedLimit: units.KMH(50),
		Signal:     &plan,
		Counts:     trace.FlatlandsAvenue(),
		Seed:       1,
		Start:      16 * time.Hour,
		End:        18 * time.Hour,
	}
	prof, err := MeasureOccupancy(cfg, units.Meters(10))
	if err != nil {
		t.Fatal(err)
	}
	best, err := OptimizePlacement(prof, units.Meters(50), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Starts) == 0 {
		t.Fatal("no sections placed")
	}
	// At least two of the three sections land in the downstream
	// quarter of the road.
	var downstream int
	for _, s := range best.Starts {
		if s >= units.Meters(750) {
			downstream++
		}
	}
	if downstream < 2 {
		t.Errorf("only %d of %v sections near the stop line", downstream, best.Starts)
	}
	// And the optimized plan beats the paper's uniform default.
	uniformValue := uniformPlanValue(t, prof, units.Meters(50), 3)
	if best.CoveredVehicleSeconds <= uniformValue {
		t.Errorf("optimal %v not above uniform %v", best.CoveredVehicleSeconds, uniformValue)
	}
}

func uniformPlanValue(t *testing.T, prof *OccupancyProfile, secLen units.Distance, k int) float64 {
	t.Helper()
	lane, err := wpt.UniformLane(prof.RoadLength(), k, wpt.SectionSpec{
		Length: secLen, LineVoltage: 399, MaxCurrent: 240, RatedPower: units.KW(100),
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range lane.Sections() {
		from := int(s.Start.Meters() / prof.BinSize.Meters())
		to := int(s.End().Meters() / prof.BinSize.Meters())
		for b := from; b < to && b < len(prof.Bins); b++ {
			total += prof.Bins[b]
		}
	}
	return total
}

func TestPlanLaneAndHarvest(t *testing.T) {
	plan := Plan{
		Starts:                []units.Distance{units.Meters(100), units.Meters(400)},
		CoveredVehicleSeconds: 7200,
	}
	lane, err := plan.Lane(units.Meters(1000), wpt.MotivationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if lane.NumSections() != 2 {
		t.Errorf("lane has %d sections", lane.NumSections())
	}
	// 100 kW over 7200 vehicle-seconds = 200 kWh.
	got := plan.HarvestEstimate(units.KW(100)).KWh()
	if math.Abs(got-200) > 1e-9 {
		t.Errorf("harvest = %v kWh, want 200", got)
	}
}

func TestMeasureOccupancyValidation(t *testing.T) {
	cfg := traffic.SimConfig{
		RoadLength: units.Meters(100),
		SpeedLimit: units.KMH(50),
		Counts:     trace.FlatlandsAvenue(),
	}
	if _, err := MeasureOccupancy(cfg, 0); err == nil {
		t.Error("zero bin size accepted")
	}
	if _, err := MeasureOccupancy(cfg, units.Meters(500)); err == nil {
		t.Error("bin larger than road accepted")
	}
	bad := cfg
	bad.RoadLength = 0
	if _, err := MeasureOccupancy(bad, units.Meters(10)); err == nil {
		t.Error("invalid sim config accepted")
	}
}
