// Package deploy implements the paper's stated future work on optimal
// deployment of charging sections: given a day of simulated traffic,
// measure where vehicles actually spend time on the road, then choose
// non-overlapping section positions that maximize the vehicle-time a
// fixed budget of sections covers. The optimizer makes the Fig. 3
// observation — put sections where vehicles queue — quantitative: on a
// signalized arterial it provably concentrates the budget at the stop
// line.
package deploy

import (
	"fmt"
	"time"

	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
	"olevgrid/internal/wpt"
)

// OccupancyProfile is the spatial histogram of vehicle presence:
// Bins[i] holds the vehicle-seconds spent in
// [i·BinSize, (i+1)·BinSize) over the measured window.
type OccupancyProfile struct {
	BinSize units.Distance
	Bins    []float64
}

// RoadLength returns the profiled length.
func (p *OccupancyProfile) RoadLength() units.Distance {
	return units.Distance(float64(len(p.Bins)) * p.BinSize.Meters())
}

// Total returns the total vehicle-seconds observed.
func (p *OccupancyProfile) Total() float64 {
	var sum float64
	for _, b := range p.Bins {
		sum += b
	}
	return sum
}

// MeasureOccupancy runs the traffic simulation and accumulates the
// spatial occupancy histogram at the given bin size.
func MeasureOccupancy(cfg traffic.SimConfig, binSize units.Distance) (*OccupancyProfile, error) {
	if binSize <= 0 {
		return nil, fmt.Errorf("deploy: bin size %v must be positive", binSize)
	}
	sim, err := traffic.NewSim(cfg)
	if err != nil {
		return nil, err
	}
	nBins := int(cfg.RoadLength.Meters()/binSize.Meters() + 0.5)
	if nBins < 1 {
		return nil, fmt.Errorf("deploy: road %v shorter than one bin %v", cfg.RoadLength, binSize)
	}
	prof := &OccupancyProfile{BinSize: binSize, Bins: make([]float64, nBins)}
	sim.AddObserver(func(_ string, pos units.Distance, _ units.Speed, _, dt time.Duration) {
		idx := int(pos.Meters() / binSize.Meters())
		if idx < 0 {
			idx = 0
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		prof.Bins[idx] += dt.Seconds()
	})
	sim.Run()
	return prof, nil
}

// Plan is a chosen set of section positions.
type Plan struct {
	// Starts are the upstream edges of the chosen sections, sorted.
	Starts []units.Distance
	// CoveredVehicleSeconds is the occupancy the plan captures — the
	// objective value.
	CoveredVehicleSeconds float64
}

// HarvestEstimate converts covered vehicle-time into energy at a
// section's rated power — the planning-level proxy for Fig. 3(c).
func (p Plan) HarvestEstimate(rated units.Power) units.Energy {
	return rated.Energy(time.Duration(p.CoveredVehicleSeconds * float64(time.Second)))
}

// Lane materializes the plan as a wpt.Lane.
func (p Plan) Lane(roadLen units.Distance, spec wpt.SectionSpec) (*wpt.Lane, error) {
	sections := make([]wpt.Section, len(p.Starts))
	for i, start := range p.Starts {
		sections[i] = wpt.Section{
			ID:          i + 1,
			Start:       start,
			Length:      spec.Length,
			LineVoltage: spec.LineVoltage,
			MaxCurrent:  spec.MaxCurrent,
			RatedPower:  spec.RatedPower,
		}
	}
	return wpt.NewLane(roadLen, sections)
}

// OptimizePlacement chooses up to k non-overlapping sections of the
// given length that maximize covered occupancy, by dynamic
// programming over bin positions (exact for the discretized problem).
func OptimizePlacement(prof *OccupancyProfile, sectionLen units.Distance, k int) (Plan, error) {
	span, err := sectionSpan(prof, sectionLen, k)
	if err != nil {
		return Plan{}, err
	}
	n := len(prof.Bins)
	weights := windowWeights(prof.Bins, span)

	// dp[i][j]: best value using bins i.. with j sections left.
	// choose[i][j]: whether a section starts at bin i in the optimum.
	dp := make([][]float64, n+1)
	choose := make([][]bool, n+1)
	for i := range dp {
		dp[i] = make([]float64, k+1)
		choose[i] = make([]bool, k+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := 1; j <= k; j++ {
			skip := dp[i+1][j]
			take := -1.0
			if i+span <= n {
				take = weights[i] + dp[i+span][j-1]
			}
			if take > skip {
				dp[i][j] = take
				choose[i][j] = true
			} else {
				dp[i][j] = skip
			}
		}
	}

	var plan Plan
	for i, j := 0, k; i < n && j > 0; {
		if choose[i][j] {
			plan.Starts = append(plan.Starts, units.Distance(float64(i)*prof.BinSize.Meters()))
			plan.CoveredVehicleSeconds += weights[i]
			i += span
			j--
		} else {
			i++
		}
	}
	return plan, nil
}

// GreedyPlacement repeatedly takes the best remaining non-overlapping
// window — the natural baseline the DP is compared against.
func GreedyPlacement(prof *OccupancyProfile, sectionLen units.Distance, k int) (Plan, error) {
	span, err := sectionSpan(prof, sectionLen, k)
	if err != nil {
		return Plan{}, err
	}
	n := len(prof.Bins)
	weights := windowWeights(prof.Bins, span)
	blocked := make([]bool, n)

	var plan Plan
	for picked := 0; picked < k; picked++ {
		best, bestIdx := -1.0, -1
		for i := 0; i+span <= n; i++ {
			if overlapsBlocked(blocked, i, span) {
				continue
			}
			if weights[i] > best {
				best, bestIdx = weights[i], i
			}
		}
		if bestIdx < 0 {
			break
		}
		for b := bestIdx; b < bestIdx+span; b++ {
			blocked[b] = true
		}
		plan.Starts = append(plan.Starts, units.Distance(float64(bestIdx)*prof.BinSize.Meters()))
		plan.CoveredVehicleSeconds += best
	}
	sortDistances(plan.Starts)
	return plan, nil
}

func sectionSpan(prof *OccupancyProfile, sectionLen units.Distance, k int) (int, error) {
	if prof == nil || len(prof.Bins) == 0 {
		return 0, fmt.Errorf("deploy: empty occupancy profile")
	}
	if k < 1 {
		return 0, fmt.Errorf("deploy: need at least one section, got %d", k)
	}
	if sectionLen <= 0 {
		return 0, fmt.Errorf("deploy: section length %v must be positive", sectionLen)
	}
	span := int(sectionLen.Meters()/prof.BinSize.Meters() + 0.5)
	if span < 1 {
		span = 1
	}
	if span > len(prof.Bins) {
		return 0, fmt.Errorf("deploy: section %v longer than road %v", sectionLen, prof.RoadLength())
	}
	return span, nil
}

// windowWeights[i] is the occupancy covered by a section starting at
// bin i, via prefix sums.
func windowWeights(bins []float64, span int) []float64 {
	n := len(bins)
	prefix := make([]float64, n+1)
	for i, b := range bins {
		prefix[i+1] = prefix[i] + b
	}
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		end := i + span
		if end > n {
			end = n
		}
		weights[i] = prefix[end] - prefix[i]
	}
	return weights
}

func overlapsBlocked(blocked []bool, start, span int) bool {
	for b := start; b < start+span && b < len(blocked); b++ {
		if blocked[b] {
			return true
		}
	}
	return false
}

func sortDistances(ds []units.Distance) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
