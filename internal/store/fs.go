// Package store is the repo's durability layer: a pluggable,
// crash-consistent checkpoint store that both the control plane's
// Journal (internal/sched) and the service layer's manifests
// (internal/serve) sit on. It owns three things the ad-hoc
// persistence it replaced got wrong or could not test:
//
//   - an append-only segment log of CRC32C-framed, length-prefixed
//     records with torn-tail detection-and-truncation on open and
//     snapshot compaction that never deletes the last good snapshot
//     until its successor is durable (SegmentStore);
//
//   - an explicit fsync policy (FsyncAlways / FsyncInterval /
//     FsyncNever) and a shared atomic-rename file write
//     (WriteFileAtomic) that fsyncs the file before the rename and
//     the parent directory after it — the sequence a power loss
//     cannot tear;
//
//   - an injectable filesystem seam (FS, default the real OS) with a
//     seeded deterministic fault injector (FaultFS) that models the
//     page cache, so short writes, ENOSPC, fsync failures, bit-flips
//     and crashes at arbitrary operation boundaries are exercised in
//     ordinary `go test` and by the cmd/crash-store harness.
//
// See DESIGN.md §15 for the record framing, the compaction state
// machine, and the crash matrix the recovery tests walk.
package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle surface the store needs from an open file.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data (and size) to stable storage.
	Sync() error
}

// FS is the filesystem seam every durable write in the repo goes
// through. The default is OS (the real filesystem); tests and the
// crash harness inject FaultFS. The surface is deliberately narrow —
// just what a crash-consistent store needs — so the fault injector
// can model every call.
type FS interface {
	// OpenFile opens name with os-style flags (O_WRONLY, O_CREATE,
	// O_TRUNC, O_APPEND, ...).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the whole file; a missing file satisfies
	// errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath. Durability of
	// the new directory entry requires SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to size bytes.
	Truncate(name string, size int64) error
	// ReadDir lists the directory's entry names (files and
	// subdirectories), sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates the directory and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// DirExists reports whether name exists and is a directory.
	DirExists(name string) (bool, error)
	// SyncDir fsyncs a directory, making its entries (renames,
	// creates, removes) durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

// isNotExist reports a missing file from any FS implementation.
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) DirExists(name string) (bool, error) {
	info, err := os.Stat(name)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return info.IsDir(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic replaces path with data using the full
// crash-consistent sequence: write a same-directory temp file, fsync
// it, rename it over path, fsync the parent directory. Either the old
// content or the new content survives a crash at any point — never a
// torn mix, and never an "acked" write that a power loss silently
// rolls back (the bug the pre-store FileJournal and manifest writers
// had: rename with no fsync). A nil fsys uses the real filesystem.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	return writeFileAtomic(fsys, path, data, true, nil)
}

// writeFileAtomic is WriteFileAtomic with the fsyncs gated (the
// segment store's FsyncNever/Interval snapshot path) and counted.
func writeFileAtomic(fsys FS, path string, data []byte, sync bool, synced func()) error {
	if fsys == nil {
		fsys = OS
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = fsys.Remove(tmp)
			return fmt.Errorf("store: fsync %s: %w", tmp, err)
		}
		if synced != nil {
			synced()
		}
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	if sync {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("store: fsync dir of %s: %w", path, err)
		}
		if synced != nil {
			synced()
		}
	}
	return nil
}
