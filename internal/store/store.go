package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy says when the store makes appended records durable.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs the segment file on every append and the
	// snapshot file plus parent directory on every compaction: a nil
	// Append return means the record survives any crash. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs at most once per Options.FsyncInterval,
	// piggybacked on appends: bounded data loss, near-Never latency.
	FsyncInterval
	// FsyncNever issues no fsyncs at all — the pre-store behavior.
	// Appends are atomic on a clean shutdown but a power loss may roll
	// back any number of "acked" records.
	FsyncNever
)

// String names the policy the way the -fsync flags spell it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "always"
	}
}

// ParseFsyncPolicy maps a -fsync flag value onto a policy; the empty
// string is the default (always).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf(`store: unknown fsync policy %q; use "always", "interval" or "never"`, s)
}

// Store is the pluggable durable-store surface: a sequence of record
// versions of which the latest wins (journal semantics). SegmentStore
// is the on-disk implementation; sched.MemJournal stays the in-memory
// one above this layer.
type Store interface {
	// Append durably stores the next record version. A nil return is
	// the durability acknowledgement under the store's fsync policy.
	Append(payload []byte) error
	// Last returns the newest recovered or appended record.
	Last() (payload []byte, seq uint64, ok bool)
	// Sync forces pending data to stable storage regardless of policy.
	Sync() error
	// Stats snapshots the store's counters.
	Stats() Stats
	// Close releases the store; with FsyncInterval it flushes first.
	Close() error
}

// Options configures Open.
type Options struct {
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// Fsync is the durability policy; zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval policy's flush period; zero
	// means 100ms.
	FsyncInterval time.Duration
	// CompactBytes triggers compaction when the active segment grows
	// past it; zero means 1 MiB. Compaction writes the latest record
	// as a snapshot, truncates the log, and only then deletes the
	// previous snapshot — so at most two snapshots plus the active
	// segment ever exist on disk.
	CompactBytes int64
	// Metrics arms telemetry; nil runs dark.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 1 << 20
	}
	if o.Metrics == nil {
		// A bundle of nil counters: every metric site stays a no-op
		// without nil checks at each increment.
		o.Metrics = NewMetrics(nil)
	}
	return o
}

// Stats is a store's observable state, for ScanJournals decisions and
// the crash harness's reconciliation.
type Stats struct {
	// Appends, Fsyncs, Compactions count this handle's activity.
	Appends     uint64 `json:"appends"`
	Fsyncs      uint64 `json:"fsyncs"`
	Compactions uint64 `json:"compactions"`
	// CompactErrors counts compactions that failed and were rolled
	// back (prior snapshot and log left intact).
	CompactErrors uint64 `json:"compact_errors,omitempty"`
	// Recovered reports whether Open found prior state; RecoveredSeq
	// is its sequence number and SnapshotUsed whether it came from a
	// snapshot rather than the log.
	Recovered    bool   `json:"recovered,omitempty"`
	RecoveredSeq uint64 `json:"recovered_seq,omitempty"`
	SnapshotUsed bool   `json:"snapshot_used,omitempty"`
	// TornTruncated counts torn tails cut off at open; TornBytes the
	// bytes discarded. CorruptSkipped counts CRC-failed records (and
	// unreadable snapshots) skipped during recovery.
	TornTruncated  uint64 `json:"torn_truncated,omitempty"`
	TornBytes      int64  `json:"torn_bytes,omitempty"`
	CorruptSkipped uint64 `json:"corrupt_skipped,omitempty"`
	// Snapshots and SegmentBytes describe the current disk footprint.
	Snapshots    int   `json:"snapshots"`
	SegmentBytes int64 `json:"segment_bytes"`
}

// segmentName is the active log segment inside a store directory.
const segmentName = "segment.log"

// snapshotName formats a snapshot file name; the sequence number in
// the name lets recovery order snapshots without opening them.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.olev", seq) }

// parseSnapshotName inverts snapshotName.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".olev") {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".olev"), "%016x", &seq)
	return seq, err == nil
}

// SegmentStore is the on-disk Store: an append-only CRC32C-framed
// segment log plus snapshot compaction in one directory. Safe for
// concurrent use.
type SegmentStore struct {
	mu   sync.Mutex
	dir  string
	opts Options

	active   File // O_APPEND handle on the segment
	size     int64
	lastSeq  uint64
	last     []byte
	haveLast bool

	lastSync    time.Time
	dirtySync   bool // appended since the last fsync (Interval policy)
	snaps       []uint64
	stats       Stats
	closed      bool
	wedged      error // set when the log is in an unknown state
	scratch     []byte
	lastCompact error
}

var _ Store = (*SegmentStore)(nil)

// Open opens (creating if needed) the segment store in dir,
// recovering prior state: it picks the newest decodable snapshot,
// replays the log, truncates any torn tail, and removes leftover
// temp files and superseded snapshots. Recovery never fails on
// corrupt data — corruption shrinks what is recovered; only real I/O
// errors surface.
func Open(dir string, opts Options) (*SegmentStore, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	s := &SegmentStore{dir: dir, opts: opts, lastSync: time.Now()}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	var snapSeqs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// A crash before rename left a temp file; it was never
			// acknowledged, so it is garbage.
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSnapshotName(name); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sortSeqs(snapSeqs)

	// Newest decodable snapshot wins; corrupt ones (possible under
	// FsyncNever crashes) are skipped and deleted, falling back to the
	// predecessor — which is exactly why compaction keeps it around
	// until its successor is durable.
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		raw, err := fsys.ReadFile(filepath.Join(dir, snapshotName(snapSeqs[i])))
		if err != nil {
			s.noteCorrupt(1)
			continue
		}
		res := scanSegment(raw)
		if len(res.records) != 1 || res.torn || res.corrupt > 0 {
			s.noteCorrupt(1)
			_ = fsys.Remove(filepath.Join(dir, snapshotName(snapSeqs[i])))
			continue
		}
		s.lastSeq = res.records[0].seq
		s.last = append([]byte(nil), res.records[0].payload...)
		s.haveLast = true
		s.stats.SnapshotUsed = true
		s.snaps = []uint64{snapSeqs[i]}
		// Prune older snapshots: the newest good one is durable state.
		for j := 0; j < i; j++ {
			_ = fsys.Remove(filepath.Join(dir, snapshotName(snapSeqs[j])))
		}
		break
	}

	segPath := filepath.Join(dir, segmentName)
	raw, err := fsys.ReadFile(segPath)
	if err != nil && !isNotExist(err) {
		return nil, fmt.Errorf("store: read segment: %w", err)
	}
	res := scanSegment(raw)
	s.noteCorrupt(res.corrupt)
	if res.torn {
		if err := fsys.Truncate(segPath, int64(res.goodLen)); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		s.stats.TornTruncated++
		s.stats.TornBytes += int64(len(raw) - res.goodLen)
		opts.Metrics.TornTruncated.Inc()
	}
	s.size = int64(res.goodLen)
	if n := len(res.records); n > 0 {
		// Sequence numbers are append-ordered, so the last valid
		// record is the newest the log holds; it beats the snapshot
		// unless a crash interrupted compaction after the snapshot
		// rename but before the log truncate, in which case the log's
		// tail and the snapshot agree on seq and either wins.
		if rec := res.records[n-1]; !s.haveLast || rec.seq >= s.lastSeq {
			s.lastSeq = rec.seq
			s.last = append(s.last[:0], rec.payload...)
			s.haveLast = true
			s.stats.SnapshotUsed = false
		}
	}
	if s.haveLast {
		s.stats.Recovered = true
		s.stats.RecoveredSeq = s.lastSeq
		opts.Metrics.Recoveries.Inc()
	}

	s.active, err = fsys.OpenFile(segPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open segment: %w", err)
	}
	if opts.Fsync != FsyncNever {
		// The segment's directory entry must be durable before any
		// append can be acknowledged: fsyncing a freshly created file
		// without fsyncing its directory can lose the whole file on
		// power loss (FaultFS models exactly that).
		if err := fsys.SyncDir(dir); err != nil {
			_ = s.active.Close()
			return nil, fmt.Errorf("store: fsync dir: %w", err)
		}
		s.stats.Fsyncs++
		opts.Metrics.Fsyncs.Inc()
	}
	return s, nil
}

// Append implements Store. On error the record is not acknowledged:
// it may or may not survive, and the store rolls the segment back to
// its last good length so later appends stay cleanly framed.
func (s *SegmentStore) Append(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if s.wedged != nil {
		return fmt.Errorf("store: wedged by earlier failure: %w", s.wedged)
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("store: record %d bytes exceeds %d", len(payload), MaxRecordBytes)
	}
	seq := s.lastSeq + 1
	s.scratch = appendFrame(s.scratch[:0], seq, payload)
	n, err := s.active.Write(s.scratch)
	if err != nil || n < len(s.scratch) {
		if err == nil {
			err = fmt.Errorf("store: short write: %d of %d bytes", n, len(s.scratch))
		}
		// Roll the partial frame back; if even that fails the handle's
		// offset is unknowable and the store refuses further writes
		// (reopening repairs via torn-tail truncation).
		if terr := s.opts.FS.Truncate(filepath.Join(s.dir, segmentName), s.size); terr != nil {
			s.wedged = terr
		}
		return fmt.Errorf("store: append: %w", err)
	}
	s.size += int64(n)
	s.stats.Appends++
	s.opts.Metrics.Saves.Inc()

	switch s.opts.Fsync {
	case FsyncAlways:
		if err := s.syncLocked(); err != nil {
			// Written but not durable: the caller must not treat this
			// record as acknowledged. State stays consistent — a reopen
			// recovers whatever actually reached the disk.
			s.advance(seq, payload)
			return fmt.Errorf("store: fsync: %w", err)
		}
	case FsyncInterval:
		s.dirtySync = true
		if time.Since(s.lastSync) >= s.opts.FsyncInterval {
			if err := s.syncLocked(); err != nil {
				s.advance(seq, payload)
				return fmt.Errorf("store: fsync: %w", err)
			}
		}
	}
	s.advance(seq, payload)

	if s.size > s.opts.CompactBytes {
		// Best-effort: a failed compaction never loses the append that
		// triggered it — the log still holds the record, the previous
		// snapshot is untouched, and the error is surfaced via Stats.
		if err := s.compactLocked(); err != nil {
			s.stats.CompactErrors++
			s.lastCompact = err
		}
	}
	return nil
}

// advance installs the newest record under the lock.
func (s *SegmentStore) advance(seq uint64, payload []byte) {
	s.lastSeq = seq
	s.last = append(s.last[:0], payload...)
	s.haveLast = true
}

// syncLocked fsyncs the active segment.
func (s *SegmentStore) syncLocked() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.dirtySync = false
	s.lastSync = time.Now()
	s.stats.Fsyncs++
	s.opts.Metrics.Fsyncs.Inc()
	return nil
}

// compactLocked runs the compaction state machine:
//
//  1. write the newest record to snap-<seq>.olev.tmp, fsync it;
//  2. rename it into place, fsync the directory — the successor
//     snapshot is now durable;
//  3. truncate the log to zero and fsync it;
//  4. delete the predecessor snapshot(s).
//
// A crash or error anywhere before step 2 completes leaves the prior
// snapshot and the full log intact. A crash between 2 and 3 leaves a
// log whose records the snapshot already covers — recovery takes the
// max sequence, so either copy wins identically. Step 4 runs only
// after the successor is durable, which is the "last good snapshot is
// never deleted until its successor is durable" invariant.
func (s *SegmentStore) compactLocked() error {
	if !s.haveLast {
		return nil
	}
	if len(s.snaps) > 0 && s.snaps[len(s.snaps)-1] == s.lastSeq {
		return nil // already snapshotted at this seq
	}
	fsys := s.opts.FS
	sync := s.opts.Fsync != FsyncNever
	frame := appendFrame(nil, s.lastSeq, s.last)
	path := filepath.Join(s.dir, snapshotName(s.lastSeq))
	counted := func() { s.stats.Fsyncs++; s.opts.Metrics.Fsyncs.Inc() }
	if err := writeFileAtomic(fsys, path, frame, sync, counted); err != nil {
		return err
	}
	prev := s.snaps
	s.snaps = append([]uint64(nil), s.lastSeq)

	if err := fsys.Truncate(filepath.Join(s.dir, segmentName), 0); err != nil {
		// Snapshot is durable; the oversized log stays until the next
		// compaction retries. Keep the predecessor list accurate.
		s.snaps = append(prev, s.lastSeq)
		return err
	}
	s.size = 0
	if sync {
		if err := s.active.Sync(); err != nil {
			return err
		}
		counted()
	}
	for _, seq := range prev {
		if seq != s.lastSeq {
			_ = fsys.Remove(filepath.Join(s.dir, snapshotName(seq)))
		}
	}
	s.stats.Compactions++
	s.opts.Metrics.Compactions.Inc()
	return nil
}

// Last implements Store.
func (s *SegmentStore) Last() ([]byte, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveLast {
		return nil, 0, false
	}
	return append([]byte(nil), s.last...), s.lastSeq, true
}

// Sync implements Store.
func (s *SegmentStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncLocked()
}

// Stats implements Store.
func (s *SegmentStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Snapshots = len(s.snaps)
	st.SegmentBytes = s.size
	return st
}

// CompactErr returns the most recent compaction failure, if any.
func (s *SegmentStore) CompactErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCompact
}

// Close implements Store.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.dirtySync && s.opts.Fsync == FsyncInterval {
		err = s.syncLocked()
	}
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// noteCorrupt counts skipped corrupt records into stats and metrics.
func (s *SegmentStore) noteCorrupt(n int) {
	if n <= 0 {
		return
	}
	s.stats.CorruptSkipped += uint64(n)
	s.opts.Metrics.CorruptSkipped.Add(int64(n))
}

func sortSeqs(seqs []uint64) {
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
}
