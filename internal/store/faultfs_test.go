package store

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"testing"
)

// The FaultFS durability model itself must be right before anything
// built on it can be trusted; these tests pin its page-cache and
// namespace semantics.

// TestFaultFSDurabilityModel walks the create→sync→dirsync ladder:
// each rung alone is not enough, together they are.
func TestFaultFSDurabilityModel(t *testing.T) {
	write := func(t *testing.T, f *FaultFS, sync, dirsync bool) {
		t.Helper()
		_ = f.MkdirAll("/d", 0o755)
		h, err := f.OpenFile("/d/a", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("hello")); err != nil {
			t.Fatal(err)
		}
		if sync {
			if err := h.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		_ = h.Close()
		if dirsync {
			if err := f.SyncDir("/d"); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Run("unsynced create vanishes", func(t *testing.T) {
		f := NewFaultFS(FaultConfig{Seed: 1})
		write(t, f, false, false)
		if _, err := f.Restart(FaultConfig{}).ReadFile("/d/a"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("unsynced file survived: %v", err)
		}
	})
	t.Run("synced data without dirsync vanishes", func(t *testing.T) {
		f := NewFaultFS(FaultConfig{Seed: 1})
		write(t, f, true, false)
		if _, err := f.Restart(FaultConfig{}).ReadFile("/d/a"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("file with no durable dir entry survived: %v", err)
		}
	})
	t.Run("synced plus dirsync survives", func(t *testing.T) {
		f := NewFaultFS(FaultConfig{Seed: 1})
		write(t, f, true, true)
		got, err := f.Restart(FaultConfig{}).ReadFile("/d/a")
		if err != nil || string(got) != "hello" {
			t.Fatalf("durable file = %q, %v", got, err)
		}
	})
	t.Run("dirsync alone leaves unsynced content empty", func(t *testing.T) {
		f := NewFaultFS(FaultConfig{Seed: 1})
		write(t, f, false, true)
		got, err := f.Restart(FaultConfig{}).ReadFile("/d/a")
		if err != nil {
			t.Fatalf("dir-synced entry vanished: %v", err)
		}
		// The entry is durable but the page cache was never flushed;
		// at most a torn prefix of the data survives.
		if !bytes.HasPrefix([]byte("hello"), got) {
			t.Fatalf("content %q is not a prefix of the unsynced write", got)
		}
	})
}

// TestFaultFSTornTail: an unsynced appended tail survives a crash as
// a random prefix — never as reordered or invented bytes.
func TestFaultFSTornTail(t *testing.T) {
	seen := map[int]bool{}
	for seed := int64(0); seed < 64; seed++ {
		f := NewFaultFS(FaultConfig{Seed: seed})
		_ = f.MkdirAll("/d", 0o755)
		h, _ := f.OpenFile("/d/log", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if _, err := h.Write([]byte("base.")); err != nil {
			t.Fatal(err)
		}
		if err := h.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.SyncDir("/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write([]byte("tail-unsynced")); err != nil {
			t.Fatal(err)
		}
		got, err := f.Restart(FaultConfig{}).ReadFile("/d/log")
		if err != nil {
			t.Fatal(err)
		}
		full := []byte("base.tail-unsynced")
		if !bytes.HasPrefix(full, got) || len(got) < len("base.") {
			t.Fatalf("seed %d: crash image %q is not base+prefix-of-tail", seed, got)
		}
		seen[len(got)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("torn-tail lengths not randomized: %v", seen)
	}
}

// TestFaultFSRenameDurability: a rename is visible immediately but
// durable only after SyncDir on the parent.
func TestFaultFSRenameDurability(t *testing.T) {
	f := NewFaultFS(FaultConfig{Seed: 2})
	_ = f.MkdirAll("/d", 0o755)
	h, _ := f.OpenFile("/d/a.tmp", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	_, _ = h.Write([]byte("x"))
	_ = h.Sync()
	_ = h.Close()
	if err := f.Rename("/d/a.tmp", "/d/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile("/d/a"); err != nil {
		t.Fatalf("rename not visible live: %v", err)
	}
	booted := f.Restart(FaultConfig{})
	if _, err := booted.ReadFile("/d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-dirsynced rename survived crash: %v", err)
	}
}

// TestFaultFSInjectedWriteFaults: seeded short writes and ENOSPC
// persist only a prefix and report the failure.
func TestFaultFSInjectedWriteFaults(t *testing.T) {
	for name, cfg := range map[string]FaultConfig{
		"short":  {Seed: 5, ShortWriteRate: 1},
		"enospc": {Seed: 5, ENOSPCRate: 1},
	} {
		t.Run(name, func(t *testing.T) {
			f := NewFaultFS(cfg)
			_ = f.MkdirAll("/d", 0o755)
			h, _ := f.OpenFile("/d/a", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			n, err := h.Write([]byte("0123456789"))
			if err == nil {
				t.Fatal("armed write fault did not fire")
			}
			if name == "enospc" && !errors.Is(err, ErrNoSpace) {
				t.Fatalf("err = %v, want ErrNoSpace", err)
			}
			got, rerr := f.ReadFile("/d/a")
			if rerr != nil || len(got) != n || !bytes.HasPrefix([]byte("0123456789"), got) {
				t.Fatalf("persisted %q (n=%d): %v", got, n, rerr)
			}
		})
	}
}

// TestFaultFSCrashAtOpDeterminism: the same seed and workload reach
// the same crash image byte for byte.
func TestFaultFSCrashAtOpDeterminism(t *testing.T) {
	image := func() []byte {
		f := NewFaultFS(FaultConfig{Seed: 11, CrashAtOp: 6})
		_ = f.MkdirAll("/d", 0o755)
		h, err := f.OpenFile("/d/a", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := h.Write([]byte("abcdefgh")); err != nil {
				break
			}
			if err := h.Sync(); err != nil {
				break
			}
		}
		booted := f.Restart(FaultConfig{})
		got, _ := booted.ReadFile("/d/a")
		return got
	}
	a, b := image(), image()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different crash images: %q vs %q", a, b)
	}
}

// TestFaultFSSetReadError is the transient-I/O seam: the error
// surfaces with its chain intact and clears on demand.
func TestFaultFSSetReadError(t *testing.T) {
	f := NewFaultFS(FaultConfig{Seed: 1})
	_ = f.MkdirAll("/d", 0o755)
	h, _ := f.OpenFile("/d/a", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	_, _ = h.Write([]byte("x"))
	_ = h.Close()
	sentinel := errors.New("injected EIO")
	f.SetReadError("/d/a", sentinel)
	if _, err := f.ReadFile("/d/a"); !errors.Is(err, sentinel) || errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("read err = %v, want the injected sentinel", err)
	}
	f.SetReadError("/d/a", nil)
	if _, err := f.ReadFile("/d/a"); err != nil {
		t.Fatalf("read after clearing: %v", err)
	}
}
