package store

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Injected fault errors. ErrCrashed marks every operation after the
// filesystem's crash point; ErrNoSpace models ENOSPC.
var (
	ErrCrashed = errors.New("store: filesystem crashed (injected)")
	ErrNoSpace = errors.New("store: no space left on device (injected)")
	// errSyncFail is an injected fsync failure (EIO-shaped).
	errSyncFail = errors.New("store: fsync failed (injected)")
)

// FaultConfig is FaultFS's seeded, deterministic fault plan. All
// rates are per-operation probabilities in [0,1); zero disables.
type FaultConfig struct {
	// Seed drives every random decision; the same seed and the same
	// operation sequence reproduce the same faults bit-for-bit.
	Seed int64
	// CrashAtOp crashes the filesystem at the Nth operation (1-based):
	// that operation and every later one fail with ErrCrashed, and the
	// in-memory state collapses to what was durable — synced file
	// contents, dir-synced namespace entries, plus a random prefix of
	// any unsynced appended tail (the torn write a power loss leaves).
	// Zero disables.
	CrashAtOp int64
	// ShortWriteRate makes a Write persist only a random prefix and
	// return an error, the partial-write failure mode.
	ShortWriteRate float64
	// ENOSPCRate makes a Write fail with ErrNoSpace after persisting a
	// random prefix.
	ENOSPCRate float64
	// SyncFailRate makes a File.Sync or SyncDir fail without making
	// anything durable.
	SyncFailRate float64
	// BitFlipRate silently flips one random bit in a Write's data —
	// the silent-corruption case CRC framing exists to catch. Note a
	// flip that lands in synced data survives ack, so trials with this
	// armed assert recovery validity, not acked durability.
	BitFlipRate float64
}

// faultInode is one file's content with page-cache modeling: data is
// what readers of the live filesystem see, durable what survives a
// crash (advanced only by File.Sync).
type faultInode struct {
	data    []byte
	durable []byte
}

// FaultFS is a deterministic in-memory filesystem with durability
// modeling and seeded fault injection — the store's crash-test rig.
// Contents are tracked per inode (so renames carry durability) and
// the namespace is tracked per directory (so an un-fsynced rename or
// create vanishes on crash, exactly like a real journaled FS with a
// lazy directory). It is safe for concurrent use, though crash-point
// determinism additionally requires a single-threaded driver.
type FaultFS struct {
	mu      sync.Mutex
	cfg     FaultConfig
	rng     *rand.Rand
	ops     int64
	crashed bool

	files   map[string]*faultInode // live namespace
	durable map[string]*faultInode // namespace as of last SyncDir
	dirs    map[string]bool
	readErr map[string]error
}

var _ FS = (*FaultFS)(nil)

// NewFaultFS builds an empty fault-injecting filesystem.
func NewFaultFS(cfg FaultConfig) *FaultFS {
	return &FaultFS{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		files:   map[string]*faultInode{},
		durable: map[string]*faultInode{},
		dirs:    map[string]bool{},
		readErr: map[string]error{},
	}
}

// Ops returns how many operations have executed, so a harness can dry
// run a workload once and then sweep CrashAtOp across [1, Ops()].
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// SetReadError makes ReadFile on path fail with err until cleared
// with a nil err — the transient-I/O (permissions blip, EIO) case the
// journal scan must distinguish from corruption.
func (f *FaultFS) SetReadError(path string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.readErr, clean(path))
	} else {
		f.readErr[clean(path)] = err
	}
}

// Restart returns the filesystem a freshly booted process would see:
// durable state only, with the given (typically fault-free) config.
// If the crash point has not fired yet it is simulated first, so
// Restart always answers "what survives a power loss right now?".
func (f *FaultFS) Restart(cfg FaultConfig) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.crashLocked()
	}
	nf := NewFaultFS(cfg)
	for name, ino := range f.durable {
		nf.files[name] = &faultInode{
			data:    append([]byte(nil), ino.data...),
			durable: append([]byte(nil), ino.data...),
		}
		nf.durable[name] = nf.files[name]
	}
	for d := range f.dirs {
		nf.dirs[d] = true
	}
	return nf
}

// op charges one operation: fires the crash point, and fails
// everything after it.
func (f *FaultFS) op() error {
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.cfg.CrashAtOp > 0 && f.ops >= f.cfg.CrashAtOp {
		f.crashLocked()
		return ErrCrashed
	}
	return nil
}

// crashLocked collapses live state to durable state. Unsynced
// appended tails survive as a random prefix — the torn write.
func (f *FaultFS) crashLocked() {
	f.crashed = true
	for name, ino := range f.durable {
		live, ok := f.files[name]
		if ok && live == ino && len(ino.data) > len(ino.durable) &&
			prefixEq(ino.data, ino.durable) {
			keep := len(ino.durable) + f.rng.Intn(len(ino.data)-len(ino.durable)+1)
			ino.data = append([]byte(nil), ino.data[:keep]...)
		} else {
			ino.data = append([]byte(nil), ino.durable...)
		}
	}
}

func prefixEq(data, prefix []byte) bool {
	if len(data) < len(prefix) {
		return false
	}
	for i := range prefix {
		if data[i] != prefix[i] {
			return false
		}
	}
	return true
}

func clean(p string) string { return filepath.Clean(p) }

// pathErr wraps an injected error the way the os package would.
func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

// OpenFile implements FS. Supported flag combinations are the ones
// the store and WriteFileAtomic use: O_WRONLY with O_CREATE plus
// O_TRUNC or O_APPEND.
func (f *FaultFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return nil, pathErr("open", name, err)
	}
	name = clean(name)
	ino, ok := f.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, pathErr("open", name, fs.ErrNotExist)
	case !ok:
		ino = &faultInode{}
		f.files[name] = ino
	case flag&os.O_TRUNC != 0:
		ino.data = nil
	}
	return &faultFile{fs: f, name: name, ino: ino}, nil
}

// faultFile is an open handle; all writes append (the only mode the
// store uses — fresh O_TRUNC files and O_APPEND segments).
type faultFile struct {
	fs     *FaultFS
	name   string
	ino    *faultInode
	closed bool
}

// Write implements File with short-write, ENOSPC and bit-flip
// injection.
func (h *faultFile) Write(p []byte) (int, error) {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if h.closed {
		return 0, pathErr("write", h.name, fs.ErrClosed)
	}
	if err := f.op(); err != nil {
		return 0, pathErr("write", h.name, err)
	}
	data := p
	if f.cfg.BitFlipRate > 0 && len(p) > 0 && f.rng.Float64() < f.cfg.BitFlipRate {
		data = append([]byte(nil), p...)
		data[f.rng.Intn(len(data))] ^= 1 << uint(f.rng.Intn(8))
	}
	if f.cfg.ShortWriteRate > 0 && len(p) > 1 && f.rng.Float64() < f.cfg.ShortWriteRate {
		n := f.rng.Intn(len(p))
		h.ino.data = append(h.ino.data, data[:n]...)
		return n, pathErr("write", h.name, fmt.Errorf("short write: %d of %d bytes", n, len(p)))
	}
	if f.cfg.ENOSPCRate > 0 && f.rng.Float64() < f.cfg.ENOSPCRate {
		n := 0
		if len(p) > 0 {
			n = f.rng.Intn(len(p))
		}
		h.ino.data = append(h.ino.data, data[:n]...)
		return n, pathErr("write", h.name, ErrNoSpace)
	}
	h.ino.data = append(h.ino.data, data...)
	return len(p), nil
}

// Sync implements File: current content becomes crash-durable.
func (h *faultFile) Sync() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if h.closed {
		return pathErr("sync", h.name, fs.ErrClosed)
	}
	if err := f.op(); err != nil {
		return pathErr("sync", h.name, err)
	}
	if f.cfg.SyncFailRate > 0 && f.rng.Float64() < f.cfg.SyncFailRate {
		return pathErr("sync", h.name, errSyncFail)
	}
	h.ino.durable = append([]byte(nil), h.ino.data...)
	return nil
}

// Close implements File.
func (h *faultFile) Close() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if h.closed {
		return pathErr("close", h.name, fs.ErrClosed)
	}
	h.closed = true
	// Close is not charged as a faultable op: it neither persists nor
	// loses data in this model.
	return nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return nil, pathErr("read", name, err)
	}
	name = clean(name)
	if err := f.readErr[name]; err != nil {
		return nil, pathErr("read", name, err)
	}
	ino, ok := f.files[name]
	if !ok {
		return nil, pathErr("read", name, fs.ErrNotExist)
	}
	return append([]byte(nil), ino.data...), nil
}

// Rename implements FS. The new entry is durable only after SyncDir
// on the parent; until then a crash reverts it.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return pathErr("rename", oldpath, err)
	}
	oldpath, newpath = clean(oldpath), clean(newpath)
	ino, ok := f.files[oldpath]
	if !ok {
		return pathErr("rename", oldpath, fs.ErrNotExist)
	}
	delete(f.files, oldpath)
	f.files[newpath] = ino
	return nil
}

// Remove implements FS; durable after SyncDir on the parent.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return pathErr("remove", name, err)
	}
	name = clean(name)
	if _, ok := f.files[name]; !ok {
		return pathErr("remove", name, fs.ErrNotExist)
	}
	delete(f.files, name)
	return nil
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return pathErr("truncate", name, err)
	}
	name = clean(name)
	ino, ok := f.files[name]
	if !ok {
		return pathErr("truncate", name, fs.ErrNotExist)
	}
	if size < 0 || size > int64(len(ino.data)) {
		return pathErr("truncate", name, fmt.Errorf("invalid size %d", size))
	}
	ino.data = append([]byte(nil), ino.data[:size]...)
	return nil
}

// ReadDir implements FS, listing live files and subdirectories.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return nil, pathErr("readdir", dir, err)
	}
	dir = clean(dir)
	if !f.dirs[dir] {
		return nil, pathErr("readdir", dir, fs.ErrNotExist)
	}
	seen := map[string]bool{}
	for name := range f.files {
		if filepath.Dir(name) == dir {
			seen[filepath.Base(name)] = true
		}
	}
	for d := range f.dirs {
		if filepath.Dir(d) == dir && d != dir {
			seen[filepath.Base(d)] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS. Directory creation is modeled as
// immediately durable — the daemon creates its journal directory once
// at boot, long before any interesting crash point.
func (f *FaultFS) MkdirAll(dir string, _ os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return pathErr("mkdir", dir, err)
	}
	for d := clean(dir); ; d = filepath.Dir(d) {
		f.dirs[d] = true
		if d == "." || d == string(filepath.Separator) || d == filepath.Dir(d) {
			break
		}
	}
	return nil
}

// DirExists implements FS.
func (f *FaultFS) DirExists(name string) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return false, pathErr("stat", name, err)
	}
	return f.dirs[clean(name)], nil
}

// SyncDir implements FS: the directory's live entries (renames,
// creates, removes) become crash-durable.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(); err != nil {
		return pathErr("syncdir", dir, err)
	}
	if f.cfg.SyncFailRate > 0 && f.rng.Float64() < f.cfg.SyncFailRate {
		return pathErr("syncdir", dir, errSyncFail)
	}
	dir = clean(dir)
	for name, ino := range f.files {
		if filepath.Dir(name) == dir {
			f.durable[name] = ino
		}
	}
	for name := range f.durable {
		if filepath.Dir(name) == dir {
			if _, ok := f.files[name]; !ok {
				delete(f.durable, name)
			}
		}
	}
	return nil
}
