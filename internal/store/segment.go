package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record framing (little-endian), the same for log segments and
// snapshot files:
//
//	u32  payload length n (0 <= n <= MaxRecordBytes)
//	u32  CRC32C (Castagnoli) over seq bytes ++ payload
//	u64  seq — the store's monotone record sequence number
//	...  payload (n bytes)
//
// The CRC covers the sequence number so a bit-flip anywhere in a
// record — header or body — fails the checksum. The length field is
// outside the CRC; a flipped length either points past MaxRecordBytes
// (treated as a torn tail: framing can no longer be trusted, the rest
// of the segment is truncated) or misframes the next record, whose
// CRC then fails.
const (
	frameHeaderSize = 16
	// MaxRecordBytes bounds one record's payload, matching the
	// checkpoint decoder's own ceiling: a segment is attacker-adjacent
	// state, so the scanner rejects an oversized length before
	// allocating for it.
	MaxRecordBytes = 8 << 20
)

// ErrCorrupt marks data that is present but fails validation —
// distinct from transient I/O errors, which keep their os error
// chain. Callers branch with errors.Is.
var ErrCorrupt = errors.New("store: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// record is one decoded segment entry.
type record struct {
	seq     uint64
	payload []byte // aliases the scanned buffer
}

// scanResult is what scanning a segment recovered.
type scanResult struct {
	// records holds every frame whose CRC verified, in file order.
	records []record
	// goodLen is the byte offset the segment is trustworthy up to:
	// the end of the last intact frame (including corrupt-but-framed
	// records that were skipped). Everything past it is a torn tail.
	goodLen int
	// torn reports trailing bytes past goodLen: a partial header, a
	// partial payload, or a length field framing cannot trust.
	torn bool
	// corrupt counts CRC-mismatch records that were skipped while the
	// length framing stayed intact (e.g. a bit-flip inside a record).
	corrupt int
}

// scanSegment walks a segment's bytes and recovers every record it
// can. It never fails: corruption shrinks the result, it does not
// error — the store's recovery policy (fall back to the previous
// record or snapshot) lives above, in Open. The scanner is the fuzz
// surface (FuzzSegmentScan): it must never panic and never read past
// the buffer for any input.
func scanSegment(data []byte) scanResult {
	res := scanResult{}
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			res.goodLen = off
			return res
		}
		if rest < frameHeaderSize {
			res.goodLen, res.torn = off, true
			return res
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > MaxRecordBytes || rest < frameHeaderSize+n {
			// An implausible length means the framing itself is gone;
			// a plausible one that overruns the file is a torn write.
			// Either way nothing past this offset can be trusted.
			res.goodLen, res.torn = off, true
			return res
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+8 : off+frameHeaderSize+n]
		if crc32.Checksum(body, castagnoli) != want {
			res.corrupt++
			off += frameHeaderSize + n
			continue
		}
		res.records = append(res.records, record{
			seq:     binary.LittleEndian.Uint64(body[:8]),
			payload: body[8:],
		})
		off += frameHeaderSize + n
	}
}
