package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// payloadN is a recognizable record body for round n.
func payloadN(n int) []byte { return []byte(fmt.Sprintf(`{"round":%d,"pad":"xxxxxxxxxxxxxxxx"}`, n)) }

// appendN appends rounds lo..hi and fails the test on any error.
func appendN(t *testing.T, s *SegmentStore, lo, hi int) {
	t.Helper()
	for n := lo; n <= hi; n++ {
		if err := s.Append(payloadN(n)); err != nil {
			t.Fatalf("append %d: %v", n, err)
		}
	}
}

// TestSegmentStoreRoundTrip covers the basic contract on the real
// filesystem: append, read back, close, reopen, recover.
func TestSegmentStoreRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Last(); ok {
		t.Fatal("fresh store has a record")
	}
	appendN(t, s, 1, 5)
	raw, seq, ok := s.Last()
	if !ok || seq != 5 || !bytes.Equal(raw, payloadN(5)) {
		t.Fatalf("Last = %q seq %d ok %v", raw, seq, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	raw, seq, ok = s2.Last()
	if !ok || seq != 5 || !bytes.Equal(raw, payloadN(5)) {
		t.Fatalf("recovered Last = %q seq %d ok %v", raw, seq, ok)
	}
	st := s2.Stats()
	if !st.Recovered || st.RecoveredSeq != 5 || st.SnapshotUsed {
		t.Fatalf("recovery stats %+v", st)
	}
	// Appends continue the recovered sequence.
	if err := s2.Append(payloadN(6)); err != nil {
		t.Fatal(err)
	}
	if _, seq, _ := s2.Last(); seq != 6 {
		t.Fatalf("post-recovery seq %d, want 6", seq)
	}
}

// TestSegmentStoreCompactionBound drives many compactions and asserts
// the disk footprint invariant: at most two snapshots, one segment,
// zero temp files — and the log length stays bounded.
func TestSegmentStoreCompactionBound(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	s, err := Open(dir, Options{CompactBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 1, 200)
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions after 200 appends at 256-byte threshold: %+v", st)
	}
	if st.SegmentBytes > 512 {
		t.Fatalf("segment grew to %d bytes; compaction is not bounding it", st.SegmentBytes)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, tmps := 0, 0
	for _, e := range names {
		switch {
		case strings.HasSuffix(e.Name(), ".tmp"):
			tmps++
		case strings.HasPrefix(e.Name(), "snap-"):
			snaps++
		case e.Name() != segmentName:
			t.Fatalf("unexpected file %q in store dir", e.Name())
		}
	}
	if snaps > 2 || tmps != 0 {
		t.Fatalf("footprint: %d snapshots, %d tmps; want <=2, 0", snaps, tmps)
	}
	// The newest record must survive a reopen through the snapshot.
	_ = s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if raw, seq, ok := s2.Last(); !ok || seq != 200 || !bytes.Equal(raw, payloadN(200)) {
		t.Fatalf("recovered %q seq %d ok %v, want round 200", raw, seq, ok)
	}
}

// TestParseFsyncPolicy pins the flag surface.
func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncAlways, "always": FsyncAlways,
		"interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestFsyncPolicyCrashSemantics is the policy contract on the fault
// filesystem: under FsyncAlways every acked append survives a crash;
// under FsyncNever a crash may erase everything ever acked.
func TestFsyncPolicyCrashSemantics(t *testing.T) {
	open := func(t *testing.T, fsys FS, p FsyncPolicy) *SegmentStore {
		t.Helper()
		s, err := Open("/d/s.store", Options{FS: fsys, Fsync: p})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	t.Run("always", func(t *testing.T) {
		fsys := NewFaultFS(FaultConfig{Seed: 1})
		s := open(t, fsys, FsyncAlways)
		appendN(t, s, 1, 5)
		booted := fsys.Restart(FaultConfig{})
		s2, err := Open("/d/s.store", Options{FS: booted})
		if err != nil {
			t.Fatal(err)
		}
		if raw, seq, ok := s2.Last(); !ok || seq != 5 || !bytes.Equal(raw, payloadN(5)) {
			t.Fatalf("acked append lost across crash: %q seq %d ok %v", raw, seq, ok)
		}
	})
	t.Run("never", func(t *testing.T) {
		fsys := NewFaultFS(FaultConfig{Seed: 1})
		s := open(t, fsys, FsyncNever)
		appendN(t, s, 1, 5)
		booted := fsys.Restart(FaultConfig{})
		s2, err := Open("/d/s.store", Options{FS: booted})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := s2.Last(); ok {
			t.Fatal("FsyncNever made an append crash-durable; the policy model is wrong")
		}
	})
}

// TestWriteFileAtomicCrashMatrix sweeps a crash through every
// operation of an overwrite and asserts the atomic contract: the file
// reads as the old content or the new content, never a mix — and once
// the call returns nil, only the new content.
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	const path = "/d/cp.json"
	v1, v2 := []byte(`{"v":1}`), []byte(`{"v":2,"longer":true}`)

	// Dry run: ops consumed by setup and by the overwrite.
	dry := NewFaultFS(FaultConfig{Seed: 7})
	if err := dry.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(dry, path, v1); err != nil {
		t.Fatal(err)
	}
	base := dry.Ops()
	if err := WriteFileAtomic(dry, path, v2); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops()

	for crash := base + 1; crash <= total; crash++ {
		fsys := NewFaultFS(FaultConfig{Seed: 7, CrashAtOp: crash})
		_ = fsys.MkdirAll("/d", 0o755)
		if err := WriteFileAtomic(fsys, path, v1); err != nil {
			t.Fatalf("crash %d: v1 write: %v", crash, err)
		}
		err := WriteFileAtomic(fsys, path, v2)
		booted := fsys.Restart(FaultConfig{})
		got, rerr := booted.ReadFile(path)
		if rerr != nil {
			t.Fatalf("crash %d: file vanished: %v", crash, rerr)
		}
		switch {
		case bytes.Equal(got, v1):
			if err == nil {
				t.Fatalf("crash %d: write acked but old content survived the crash", crash)
			}
		case bytes.Equal(got, v2): // durable early is fine, acked or not
		default:
			t.Fatalf("crash %d: torn content %q", crash, got)
		}
	}
}

// TestRenameWithoutFsyncIsNotDurable documents the bug the shared
// atomic-write helper fixes: the pre-store journal and manifest
// writers renamed without fsync, so a "successful" save could roll
// back — or vanish entirely — on power loss. The fault filesystem
// models exactly that.
func TestRenameWithoutFsyncIsNotDurable(t *testing.T) {
	const path = "/d/cp.json"
	fsys := NewFaultFS(FaultConfig{Seed: 3})
	_ = fsys.MkdirAll("/d", 0o755)
	// sync=false is the old write discipline: tmp, rename, no fsyncs.
	if err := writeFileAtomic(fsys, path, []byte(`{"v":1}`), false, nil); err != nil {
		t.Fatal(err)
	}
	booted := fsys.Restart(FaultConfig{})
	if _, err := booted.ReadFile(path); err == nil {
		t.Fatal("un-fsynced rename survived a crash; FaultFS durability model is broken")
	}
}

// frames builds a segment image from (seq, payload) pairs.
func frames(recs ...record) []byte {
	var out []byte
	for _, r := range recs {
		out = appendFrame(out, r.seq, r.payload)
	}
	return out
}

// TestRecoveryDecisionTable is the injected-fault recovery matrix: for
// each crafted on-disk state, Open must recover exactly the expected
// record and repair the directory. Images are written directly so
// every case is byte-precise.
func TestRecoveryDecisionTable(t *testing.T) {
	type result struct {
		seq     uint64
		ok      bool
		payload []byte
	}
	cases := []struct {
		name    string
		files   map[string][]byte // relative name -> content
		want    result
		torn    uint64
		corrupt uint64
	}{
		{
			name:  "torn tail truncated",
			files: map[string][]byte{segmentName: append(frames(record{1, payloadN(1)}, record{2, payloadN(2)}), frames(record{3, payloadN(3)})[:10]...)},
			want:  result{2, true, payloadN(2)},
			torn:  1,
		},
		{
			name: "corrupt crc mid-log skipped",
			files: map[string][]byte{segmentName: func() []byte {
				img := frames(record{1, payloadN(1)}, record{2, payloadN(2)}, record{3, payloadN(3)})
				// Flip a payload bit inside record 2 (header 16 bytes +
				// record 1, then past record 2's header).
				img[frameHeaderSize+len(payloadN(1))+frameHeaderSize+4] ^= 0x01
				return img
			}()},
			want:    result{3, true, payloadN(3)},
			corrupt: 1,
		},
		{
			name:  "implausible length treated as torn",
			files: map[string][]byte{segmentName: append(frames(record{1, payloadN(1)}), 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)},
			want:  result{1, true, payloadN(1)},
			torn:  1,
		},
		{
			name:  "no snapshot, log only",
			files: map[string][]byte{segmentName: frames(record{4, payloadN(4)})},
			want:  result{4, true, payloadN(4)},
		},
		{
			name: "crash between snapshot and truncate: both agree",
			files: map[string][]byte{
				snapshotName(3): frames(record{3, payloadN(3)}),
				segmentName:     frames(record{1, payloadN(1)}, record{2, payloadN(2)}, record{3, payloadN(3)}),
			},
			want: result{3, true, payloadN(3)},
		},
		{
			name: "crash before old snapshot delete: newest wins, stale pruned",
			files: map[string][]byte{
				snapshotName(2): frames(record{2, payloadN(2)}),
				snapshotName(5): frames(record{5, payloadN(5)}),
				segmentName:     nil,
			},
			want: result{5, true, payloadN(5)},
		},
		{
			name: "corrupt newest snapshot falls back to predecessor",
			files: map[string][]byte{
				snapshotName(2): frames(record{2, payloadN(2)}),
				snapshotName(5): {0xde, 0xad, 0xbe, 0xef},
				segmentName:     nil,
			},
			want:    result{2, true, payloadN(2)},
			torn:    0,
			corrupt: 1,
		},
		{
			name: "leftover tmp removed, never recovered",
			files: map[string][]byte{
				snapshotName(9) + ".tmp": frames(record{9, payloadN(9)}),
				segmentName:              frames(record{1, payloadN(1)}),
			},
			want: result{1, true, payloadN(1)},
		},
		{
			name:  "empty store",
			files: map[string][]byte{},
			want:  result{0, false, nil},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "s.store")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, raw := range tc.files {
				if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			raw, seq, ok := s.Last()
			if ok != tc.want.ok || seq != tc.want.seq || !bytes.Equal(raw, tc.want.payload) {
				t.Fatalf("recovered %q seq %d ok %v; want %q seq %d ok %v",
					raw, seq, ok, tc.want.payload, tc.want.seq, tc.want.ok)
			}
			st := s.Stats()
			if st.TornTruncated != tc.torn || st.CorruptSkipped != tc.corrupt {
				t.Fatalf("repair stats torn %d corrupt %d; want %d, %d",
					st.TornTruncated, st.CorruptSkipped, tc.torn, tc.corrupt)
			}
			// Repair pruned: no tmps, at most one snapshot left.
			names, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			snaps := 0
			for _, e := range names {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Fatalf("tmp %q survived open", e.Name())
				}
				if strings.HasPrefix(e.Name(), "snap-") {
					snaps++
				}
			}
			if snaps > 1 {
				t.Fatalf("%d snapshots after repair, want <=1", snaps)
			}
			// The recovered state must accept the next append.
			if err := s.Append(payloadN(100)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if _, seq, _ := s.Last(); seq != tc.want.seq+1 {
				t.Fatalf("post-recovery seq %d, want %d", seq, tc.want.seq+1)
			}
		})
	}
}

// snapFailFS wraps an FS and fails snapshot temp writes on demand —
// the deterministic ENOSPC-mid-compaction injection.
type snapFailFS struct {
	FS
	arm bool
}

func (f *snapFailFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f.arm && strings.Contains(filepath.Base(name), "snap-") && strings.HasSuffix(name, ".tmp") {
		return nil, ErrNoSpace
	}
	return f.FS.OpenFile(name, flag, perm)
}

// TestCompactionENOSPCKeepsPriorSnapshot: a compaction that cannot
// write its successor snapshot must leave the prior snapshot and the
// log intact — the append that triggered it is never lost, and the
// error surfaces through Stats and CompactErr.
func TestCompactionENOSPCKeepsPriorSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	ffs := &snapFailFS{FS: OS}
	s, err := Open(dir, Options{FS: ffs, CompactBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 1, 20) // several clean compactions
	if s.Stats().Compactions == 0 {
		t.Fatal("no clean compaction before arming the fault")
	}
	ffs.arm = true
	appendN(t, s, 21, 60) // compaction attempts now fail; appends must not
	st := s.Stats()
	if st.CompactErrors == 0 || s.CompactErr() == nil {
		t.Fatalf("ENOSPC compaction not surfaced: %+v", st)
	}
	if !errors.Is(s.CompactErr(), ErrNoSpace) {
		t.Fatalf("CompactErr = %v, want ErrNoSpace", s.CompactErr())
	}
	// Prior snapshot intact, newest record reachable after reopen.
	_ = s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if raw, seq, ok := s2.Last(); !ok || seq != 60 || !bytes.Equal(raw, payloadN(60)) {
		t.Fatalf("recovered %q seq %d ok %v after failed compactions, want round 60", raw, seq, ok)
	}
}
