package store

import (
	"bytes"
	"testing"
)

// FuzzSegmentScan is the untrusted-input gate for segment bytes: a
// store directory survives the process (and may cross machines on
// failover), so the scanner must never panic, never over-read, and
// always return a self-consistent repair plan. Wired into the CI
// fuzz-smoke job.
func FuzzSegmentScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(frames(record{1, []byte(`{"round":1}`)}))
	f.Add(frames(record{1, []byte("a")}, record{2, []byte("bb")}, record{3, nil}))
	torn := frames(record{1, []byte("abcdef")})
	f.Add(torn[:len(torn)-3])
	flipped := frames(record{1, []byte("abcdef")}, record{2, []byte("ghijkl")})
	flipped[frameHeaderSize+3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		res := scanSegment(data)
		if res.goodLen < 0 || res.goodLen > len(data) {
			t.Fatalf("goodLen %d outside [0,%d]", res.goodLen, len(data))
		}
		if res.torn == (res.goodLen == len(data)) {
			t.Fatalf("torn=%v inconsistent with goodLen %d of %d", res.torn, res.goodLen, len(data))
		}
		var prev uint64
		for i, r := range res.records {
			if len(r.payload) > MaxRecordBytes {
				t.Fatalf("record %d payload %d over bound", i, len(r.payload))
			}
			_ = prev
			prev = r.seq
		}
		// Truncating at goodLen (the store's repair) must be a fixed
		// point: the repaired image rescans to the same records with
		// nothing torn.
		res2 := scanSegment(data[:res.goodLen])
		if res2.torn || res2.goodLen != res.goodLen || len(res2.records) != len(res.records) || res2.corrupt != res.corrupt {
			t.Fatalf("repair not a fixed point: %+v then %+v", res, res2)
		}
		for i := range res.records {
			if res.records[i].seq != res2.records[i].seq || !bytes.Equal(res.records[i].payload, res2.records[i].payload) {
				t.Fatalf("record %d changed across repair", i)
			}
		}
	})
}

// TestScanSegmentRoundTrip pins the framing: what appendFrame writes,
// scanSegment recovers exactly.
func TestScanSegmentRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("a"), nil, bytes.Repeat([]byte("x"), 1000), []byte(`{"k":3}`)}
	var img []byte
	for i, p := range payloads {
		img = appendFrame(img, uint64(i+1), p)
	}
	res := scanSegment(img)
	if res.torn || res.corrupt != 0 || len(res.records) != len(payloads) {
		t.Fatalf("scan %+v", res)
	}
	for i, p := range payloads {
		if res.records[i].seq != uint64(i+1) || !bytes.Equal(res.records[i].payload, p) {
			t.Fatalf("record %d = seq %d %q", i, res.records[i].seq, res.records[i].payload)
		}
	}
}

// TestScanSegmentHeaderFlipCaught: the CRC covers the sequence
// number, so a header bit-flip cannot smuggle a wrong seq through.
func TestScanSegmentHeaderFlipCaught(t *testing.T) {
	img := frames(record{7, []byte("payload")})
	img[8] ^= 0x01 // low byte of seq
	res := scanSegment(img)
	if len(res.records) != 0 || res.corrupt != 1 {
		t.Fatalf("flipped seq accepted: %+v", res)
	}
}
