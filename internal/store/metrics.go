package store

import (
	"olevgrid/internal/obs"
)

// Metrics is the durability layer's telemetry bundle, shared by every
// store the process opens (the daemon passes one bundle to all
// per-session stores). Same contract as every bundle in the repo: nil
// is the off switch, each site increments exactly once when the event
// happens, and the crash harness reconciles the counters against its
// own ground truth.
type Metrics struct {
	// Saves counts records durably appended (journal checkpoints).
	Saves *obs.Counter
	// Fsyncs counts actual file and directory fsync calls issued.
	Fsyncs *obs.Counter
	// Compactions counts completed snapshot+truncate cycles.
	Compactions *obs.Counter
	// Recoveries counts opens that found and restored prior state.
	Recoveries *obs.Counter
	// TornTruncated counts torn segment tails cut off during open.
	TornTruncated *obs.Counter
	// CorruptSkipped counts CRC-mismatch records (and unreadable
	// snapshots) skipped during recovery.
	CorruptSkipped *obs.Counter
}

// NewMetrics registers the store metric catalog on r (see DESIGN.md
// §15); a nil registry yields a bundle of nil metrics, the
// zero-overhead off switch.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{
		Saves:          r.Counter("olev_store_saves_total"),
		Fsyncs:         r.Counter("olev_store_fsyncs_total"),
		Compactions:    r.Counter("olev_store_compactions_total"),
		Recoveries:     r.Counter("olev_store_recoveries_total"),
		TornTruncated:  r.Counter("olev_store_torn_tails_truncated_total"),
		CorruptSkipped: r.Counter("olev_store_corrupt_records_skipped_total"),
	}
	r.Help("olev_store_saves_total", "records durably appended to segment stores")
	r.Help("olev_store_torn_tails_truncated_total", "torn segment tails detected and truncated during recovery")
	return m
}
