package sched

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// runWireGame runs a clean n-vehicle game over connection-backed pipe
// pairs preset to the given wire codec and returns the coordinator's
// report. Everything else — seeds, weights, tolerances — is held
// fixed, so two calls differ only in the bytes on the wire.
func runWireGame(t *testing.T, w v2i.Wire, n, sections int) Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	links := make(map[string]v2i.Transport, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehSide := v2i.NewPipePair(w)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehSide)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = agent.Run(ctx)
			_ = vehSide.Close()
		}()
	}

	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    sections,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      80,
		RoundTimeout:   2 * time.Second,
		Parallelism:    4,
		ShutdownGrace:  200 * time.Millisecond,
		Seed:           11,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("wire %s run: %v", w, err)
	}
	_ = coord.Close()
	wg.Wait()
	if !report.Converged {
		t.Fatalf("wire %s: game did not converge in %d rounds", w, report.Rounds)
	}
	return report
}

// TestWireWelfareBitEquality is the cross-codec determinism gate: the
// same game played over the JSON wire (unicast quotes) and the binary
// wire (coalesced QuoteBatch frames, own rows elided once acknowledged)
// must land on the same equilibrium to the last bit — welfare, rounds,
// every request, and every schedule row. This holds because both wires
// transmit exact float64 bits and both sides derive the background load
// the same way (others = totals − own, totals accumulated in sorted
// vehicle-ID order).
func TestWireWelfareBitEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-wire game takes seconds")
	}
	const n, sections = 12, 8
	jr := runWireGame(t, v2i.WireJSON, n, sections)
	br := runWireGame(t, v2i.WireBinary, n, sections)

	if jr.Rounds != br.Rounds {
		t.Errorf("rounds: json %d, binary %d", jr.Rounds, br.Rounds)
	}
	if math.Float64bits(jr.WelfareCost) != math.Float64bits(br.WelfareCost) {
		t.Errorf("welfare cost bits: json %v (%x), binary %v (%x)",
			jr.WelfareCost, math.Float64bits(jr.WelfareCost),
			br.WelfareCost, math.Float64bits(br.WelfareCost))
	}
	if math.Float64bits(jr.CongestionDegree) != math.Float64bits(br.CongestionDegree) {
		t.Errorf("congestion degree: json %v, binary %v", jr.CongestionDegree, br.CongestionDegree)
	}
	if len(jr.Requests) != len(br.Requests) {
		t.Fatalf("fleet size: json %d, binary %d", len(jr.Requests), len(br.Requests))
	}
	for id, jp := range jr.Requests {
		if bp, ok := br.Requests[id]; !ok || math.Float64bits(jp) != math.Float64bits(bp) {
			t.Errorf("request %s: json %v, binary %v", id, jp, br.Requests[id])
		}
	}
	for id, jrow := range jr.Schedule {
		brow := br.Schedule[id]
		if len(brow) != len(jrow) {
			t.Fatalf("schedule %s: json width %d, binary width %d", id, len(jrow), len(brow))
		}
		for i := range jrow {
			if math.Float64bits(jrow[i]) != math.Float64bits(brow[i]) {
				t.Errorf("schedule %s[%d]: json %v, binary %v", id, i, jrow[i], brow[i])
			}
		}
	}
}
