package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"olevgrid/internal/v2i"
)

// joinQueueDepth bounds how many vehicles can be waiting to enter a
// round; a real on-ramp merges a handful of OLEVs per quote interval,
// not hundreds.
const joinQueueDepth = 64

// pendingJoin is a vehicle waiting to be admitted at the next round
// boundary.
type pendingJoin struct {
	id   string
	link v2i.Transport
}

// Join registers a vehicle while a run may be in progress: the
// vehicle is queued and enters the iteration at the next round
// boundary with a zero allocation and a fresh quote. Join is safe to
// call from any goroutine, including concurrently with Run; it only
// fails on invalid arguments or a full join queue. A vehicle that
// re-joins under an ID it used in an earlier session gets fresh
// sequence tracking, so its new session's frames are not mistaken for
// replays.
func (c *Coordinator) Join(id string, link v2i.Transport) error {
	if id == "" {
		return errors.New("sched: vehicle needs an ID")
	}
	if link == nil {
		return errors.New("sched: vehicle needs a transport")
	}
	select {
	case c.joins <- pendingJoin{id: id, link: link}:
		return nil
	default:
		return fmt.Errorf("sched: join queue full (%d pending)", joinQueueDepth)
	}
}

// admitJoins drains the join queue at a round boundary, returning the
// IDs admitted this round. A join under an ID that is still active is
// rejected by closing the new link — the live session wins. A vehicle
// re-joining under an ID the journal's last-known-good checkpoint
// knows (a dropout reconnecting after a dead zone, or a lane regular
// returning) warm-starts from its journaled allocation instead of
// zero: the fleet's background load barely moves on re-entry, so the
// re-convergence is a short trip instead of a cold one. Theorem IV.1
// makes the seed safe — any feasible start reaches the same optimum.
func (c *Coordinator) admitJoins(report *Report) []string {
	var added []string
	var cp Checkpoint
	cpLoaded, cpOK := false, false
	for {
		select {
		case j := <-c.joins:
			if _, dup := c.links[j.id]; dup {
				_ = j.link.Close()
				continue
			}
			c.links[j.id] = j.link
			row := make([]float64, c.cfg.NumSections)
			if c.cfg.Journal != nil {
				if !cpLoaded {
					cp, cpOK, _ = c.cfg.Journal.Load()
					cpLoaded = true // one journal read per drain, not per join
				}
				if cpOK && cp.NumSections == c.cfg.NumSections {
					if saved, ok := cp.Schedule[j.id]; ok && len(saved) == c.cfg.NumSections {
						copy(row, saved)
					}
				}
			}
			c.schedule[j.id] = row
			c.lastSeq[j.id] = 0
			c.consecFails[j.id] = 0
			c.epoch++ // quotes must reflect the newcomer's load
			report.Joined++
			if m := c.cfg.Metrics; m != nil {
				m.Joined.Inc()
			}
			added = append(added, j.id)
		default:
			return added
		}
	}
}

// AddVehicle registers a new vehicle between episodes (a Coordinator
// may Run repeatedly as the fleet on the charging lane turns over).
// It must not be called while Run is executing — use Join for
// mid-iteration arrivals; the coordinator's maps are deliberately
// single-threaded, like the smart grid it models.
func (c *Coordinator) AddVehicle(id string, link v2i.Transport) error {
	if id == "" {
		return errors.New("sched: vehicle needs an ID")
	}
	if link == nil {
		return errors.New("sched: vehicle needs a transport")
	}
	if _, dup := c.links[id]; dup {
		return fmt.Errorf("sched: vehicle %q already registered", id)
	}
	c.links[id] = link
	c.schedule[id] = make([]float64, c.cfg.NumSections)
	c.lastSeq[id] = 0
	c.consecFails[id] = 0
	c.epoch++
	return nil
}

// NumVehicles returns the currently registered fleet size. Like
// AddVehicle it is only meaningful between episodes.
func (c *Coordinator) NumVehicles() int { return len(c.links) }

// ServeJoins accepts vehicle connections for as long as the listener
// is open, reading each Hello and queuing the vehicle to join the
// iteration mid-run. It blocks until Accept fails (close the server
// to stop it) and is the TCP counterpart of calling Join directly.
func ServeJoins(ctx context.Context, coord *Coordinator, srv *v2i.Server, helloTimeout time.Duration) error {
	if helloTimeout <= 0 {
		helloTimeout = 5 * time.Second
	}
	for {
		t, err := srv.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func(t v2i.Transport) {
			hctx, cancel := context.WithTimeout(ctx, helloTimeout)
			env, err := t.Recv(hctx)
			cancel()
			if err != nil {
				_ = t.Close()
				return
			}
			var hello v2i.Hello
			if err := v2i.Open(env, v2i.TypeHello, &hello); err != nil || hello.VehicleID == "" {
				_ = t.Close()
				return
			}
			if err := coord.Join(hello.VehicleID, t); err != nil {
				_ = t.Close()
			}
		}(t)
	}
}
