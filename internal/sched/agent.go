package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/obs"
	"olevgrid/internal/v2i"
)

// AgentConfig configures one OLEV's side of the protocol.
type AgentConfig struct {
	// VehicleID identifies the OLEV.
	VehicleID string
	// MaxPowerKW is the Eq. (2) ceiling P^OLEV_n.
	MaxPowerKW float64
	// Satisfaction is the private U_n; the coordinator never sees it.
	Satisfaction core.Satisfaction
	// MaxSectionDrawKW is the vehicle's Eq. (3) per-section coupling
	// limit; zero means uncapped.
	MaxSectionDrawKW float64
	// Hello optionally carries extra registration fields.
	VelocityMS float64
	SOC        float64
	// Autonomy, when set, arms the degraded-mode fallback: a control
	// plane silent past the deadline budget makes the agent hold a
	// local proportional-fair setpoint instead of blocking forever.
	// Nil keeps the pre-failover blocking behavior.
	Autonomy *AutonomyConfig
	// Metrics, if non-nil, mirrors the degraded-mode accounting
	// (DegradedEpisodes/Reconnects/Heartbeats) onto shared obs gauges
	// as the events happen and emits degraded/reconnect spans; the
	// autonomy conformance test proves the gauges equal the legacy
	// AgentResult counters. A fleet may share one bundle — the gauge
	// Add is CAS-exact under concurrency. Nil is the off switch.
	Metrics *Metrics
}

// Validate reports the first problem with the configuration.
func (c AgentConfig) Validate() error {
	if c.VehicleID == "" {
		return errors.New("sched: agent needs a vehicle ID")
	}
	if c.MaxPowerKW < 0 {
		return fmt.Errorf("sched: agent %s max power %v negative", c.VehicleID, c.MaxPowerKW)
	}
	if c.Satisfaction == nil {
		return fmt.Errorf("sched: agent %s needs a satisfaction function", c.VehicleID)
	}
	return nil
}

// AgentResult summarizes an agent's session.
type AgentResult struct {
	// FinalRequestKW is the last total the agent requested.
	FinalRequestKW float64
	// FinalAllocKW is the last schedule the grid confirmed.
	FinalAllocKW []float64
	// FinalPaymentH is the payment attached to the last schedule.
	FinalPaymentH float64
	// Rounds counts quote/request exchanges.
	Rounds int
	// Converged reports whether the grid announced convergence.
	Converged bool
	// StaleDropped counts grid frames the agent discarded as replays
	// or reordered-late deliveries.
	StaleDropped int
	// DegradedEpisodes counts silences that tripped the autonomy
	// deadline and put the agent on its local fallback.
	DegradedEpisodes int
	// Reconnects counts recoveries: a grid frame arriving while the
	// agent was degraded.
	Reconnects int
	// LastFallbackKW is the local setpoint the agent held during its
	// most recent degraded episode (zero when state was too stale).
	LastFallbackKW float64
	// Heartbeats counts liveness beacons received.
	Heartbeats int
}

// Agent is one OLEV's protocol driver.
type Agent struct {
	cfg  AgentConfig
	link v2i.Transport
	seq  uint64
	// gridSeq is the highest grid sequence number seen; duplicated or
	// reordered-late grid frames are dropped instead of answered, so a
	// chaotic link cannot make the agent best-respond to an old quote
	// after a newer one.
	gridSeq uint64
	// lastQuote and lastQuoteAt ground the degraded-mode fallback: the
	// last grid state this agent saw, and when.
	lastQuote   *v2i.Quote
	lastQuoteAt time.Time
	// lastAlloc is the own schedule row the grid last confirmed (exact
	// float bits, both wires). A batched quote that elides the own row
	// is reconstructed against it: others = totals − lastAlloc.
	lastAlloc []float64
	// degraded marks an autonomy episode in progress, so the next
	// successful Recv counts as a reconnect.
	degraded bool
}

// NewAgent validates and builds an agent over an established link.
func NewAgent(cfg AgentConfig, link v2i.Transport) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if link == nil {
		return nil, errors.New("sched: agent needs a transport")
	}
	return &Agent{cfg: cfg, link: link}, nil
}

// Hello registers the agent with the smart grid. TCP deployments call
// it once before Run; in-memory deployments may skip it since the
// coordinator is constructed with the links already keyed.
func (a *Agent) Hello(ctx context.Context) error {
	a.seq++
	return v2i.SendMsg(ctx, a.link, v2i.TypeHello, a.cfg.VehicleID, a.seq, &v2i.Hello{
		VehicleID:  a.cfg.VehicleID,
		MaxPowerKW: a.cfg.MaxPowerKW,
		VelocityMS: a.cfg.VelocityMS,
		SOC:        a.cfg.SOC,
	})
}

// Run answers quotes with best responses until the grid says the game
// is over or the context/link ends.
func (a *Agent) Run(ctx context.Context) (AgentResult, error) {
	var res AgentResult
	for {
		rctx, cancel := ctx, context.CancelFunc(nil)
		if a.cfg.Autonomy != nil && a.cfg.Autonomy.QuoteDeadline > 0 {
			rctx, cancel = context.WithTimeout(ctx, a.cfg.Autonomy.QuoteDeadline)
		}
		env, err := a.link.Recv(rctx)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if a.cfg.Autonomy != nil && ctx.Err() == nil && isSilenceTimeout(err) {
				// The control plane went silent past the deadline
				// budget: hold the local proportional-fair fallback and
				// keep listening — a recovered coordinator (or a
				// standby's first quote) resumes the exact protocol.
				first := !a.degraded
				if first {
					res.DegradedEpisodes++
					a.degraded = true
				}
				res.LastFallbackKW = a.fallbackKW(time.Now())
				if m := a.cfg.Metrics; m != nil && first {
					m.DegradedEpisodes.Add(1)
					m.Sink.Emit(obs.EventDegraded, a.cfg.VehicleID, int32(res.Rounds), -1, res.LastFallbackKW)
				}
				continue
			}
			if isDeparture(err) && res.Rounds > 0 {
				// The grid hung up after at least one exchange —
				// including the case where the final Bye frame was lost
				// on a faulty link; treat the session as complete.
				return res, nil
			}
			return res, fmt.Errorf("sched: agent %s recv: %w", a.cfg.VehicleID, err)
		}
		if a.degraded {
			a.degraded = false
			res.Reconnects++
			if m := a.cfg.Metrics; m != nil {
				m.Reconnects.Add(1)
				m.Sink.Emit(obs.EventReconnect, a.cfg.VehicleID, int32(res.Rounds), -1, 0)
			}
		}
		// Drop replays and reordered-late frames (a peer that does not
		// stamp sequence numbers sends 0 and bypasses the filter).
		if env.Seq != 0 {
			if env.Seq <= a.gridSeq {
				res.StaleDropped++
				continue
			}
			a.gridSeq = env.Seq
		}
		switch env.Type {
		case v2i.TypeQuote:
			if err := a.answerQuote(ctx, env, &res); err != nil {
				return res, err
			}
		case v2i.TypeQuoteBatch:
			if err := a.answerBatch(ctx, env, &res); err != nil {
				return res, err
			}
		case v2i.TypeSchedule:
			var msg v2i.ScheduleMsg
			if err := v2i.Open(env, v2i.TypeSchedule, &msg); err != nil {
				return res, err
			}
			res.FinalAllocKW = msg.AllocKW
			res.FinalPaymentH = msg.PaymentH
			a.lastAlloc = msg.AllocKW
		case v2i.TypeConverged:
			res.Converged = true
		case v2i.TypeHeartbeat:
			res.Heartbeats++ // liveness only; receiving it reset the silence clock
			if m := a.cfg.Metrics; m != nil {
				m.Heartbeats.Add(1)
			}
		case v2i.TypeBye:
			return res, nil
		default:
			return res, fmt.Errorf("sched: agent %s: unexpected %s", a.cfg.VehicleID, env.Type)
		}
	}
}

// answerQuote computes the best response to a quoted payment function
// and sends the request.
func (a *Agent) answerQuote(ctx context.Context, env v2i.Envelope, res *AgentResult) error {
	var quote v2i.Quote
	if err := v2i.Open(env, v2i.TypeQuote, &quote); err != nil {
		return err
	}
	return a.respond(ctx, &quote, 0, res)
}

// answerBatch answers a coalesced quote: reconstruct the private
// background load as totals − own — own taken from the frame when
// present, else from the last confirmed schedule row — then best
// respond exactly as for a unicast quote. The request echoes a
// checksum of the own row used, so a coordinator whose row cache
// drifted (a lost ScheduleMsg) detects the desync and re-quotes with
// the row inlined.
func (a *Agent) answerBatch(ctx context.Context, env v2i.Envelope, res *AgentResult) error {
	var qb v2i.QuoteBatch
	if err := v2i.Open(env, v2i.TypeQuoteBatch, &qb); err != nil {
		return err
	}
	own := qb.Own
	if own == nil {
		if len(a.lastAlloc) == len(qb.Totals) {
			own = a.lastAlloc
		} else {
			own = make([]float64, len(qb.Totals)) // never scheduled: zero row
		}
	} else {
		if len(own) != len(qb.Totals) {
			return fmt.Errorf("sched: agent %s: batch own width %d, totals width %d",
				a.cfg.VehicleID, len(own), len(qb.Totals))
		}
		a.lastAlloc = own // the grid just told us our row authoritatively
	}
	quote := v2i.Quote{
		VehicleID: a.cfg.VehicleID, Others: othersFrom(qb.Totals, own),
		Cost: qb.Cost, Round: qb.Round, Epoch: qb.Epoch,
		FleetSize: qb.FleetSize, Live: qb.Live,
	}
	return a.respond(ctx, &quote, sum(own), res)
}

// respond computes the best response to a quote (unicast or
// reconstructed from a batch) and sends the request. ownSum is echoed
// as the batch desync checksum; unicast answers pass the zero value,
// which the omitempty JSON field drops — unicast wire bytes are
// unchanged.
func (a *Agent) respond(ctx context.Context, quote *v2i.Quote, ownSum float64, res *AgentResult) error {
	a.lastQuote = quote
	a.lastQuoteAt = time.Now()
	cost, err := BuildCost(quote.Cost)
	if err != nil {
		return err
	}
	// A quote flagging dead sections prices only the live ones: the
	// best response is computed over the compacted vector, and the
	// grid water-fills the answer over the same live set.
	others := quote.Others
	if len(quote.Live) == len(others) {
		compact := make([]float64, 0, len(others))
		for i, ok := range quote.Live {
			if ok {
				compact = append(compact, others[i])
			}
		}
		others = compact
	}
	psi := core.NewPaymentFunction(cost, others)
	if a.cfg.MaxSectionDrawKW > 0 {
		psi = psi.WithDrawCap(a.cfg.MaxSectionDrawKW)
	}
	request := core.BestResponse(a.cfg.Satisfaction, psi, a.cfg.MaxPowerKW)

	a.seq++
	err = v2i.SendMsg(ctx, a.link, v2i.TypeRequest, a.cfg.VehicleID, a.seq, &v2i.Request{
		VehicleID: a.cfg.VehicleID, TotalKW: request,
		DrawCapKW: a.cfg.MaxSectionDrawKW, Round: quote.Round,
		Epoch: quote.Epoch, OwnKWSum: ownSum,
	})
	if err != nil {
		return fmt.Errorf("sched: agent %s send request: %w", a.cfg.VehicleID, err)
	}
	res.FinalRequestKW = request
	res.Rounds++
	return nil
}

// RunTCP is the full client-side lifecycle for a TCP deployment:
// dial, hello, run.
func RunTCP(ctx context.Context, addr string, cfg AgentConfig) (AgentResult, error) {
	return RunTCPWire(ctx, addr, cfg, v2i.WireJSON)
}

// RunTCPWire is RunTCP offering a wire codec at dial time; the
// negotiated wire is whatever the server accepts (a JSON-only server
// settles a binary-offering agent down to JSON).
func RunTCPWire(ctx context.Context, addr string, cfg AgentConfig, w v2i.Wire) (AgentResult, error) {
	link, err := v2i.DialWire(ctx, addr, w)
	if err != nil {
		return AgentResult{}, err
	}
	defer func() { _ = link.Close() }()
	agent, err := NewAgent(cfg, link)
	if err != nil {
		return AgentResult{}, err
	}
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	err = agent.Hello(hctx)
	cancel()
	if err != nil {
		return AgentResult{}, err
	}
	return agent.Run(ctx)
}
