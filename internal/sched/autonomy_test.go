package sched

import (
	"context"
	"math"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// autonomyRig wires one agent with the fallback armed and returns the
// grid-side link plus a channel carrying the agent's result.
func autonomyRig(t *testing.T, ctx context.Context, cfg AgentConfig) (v2i.Transport, <-chan AgentResult) {
	t.Helper()
	gridSide, vehicleSide := v2i.NewPair(8)
	agent, err := NewAgent(cfg, vehicleSide)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan AgentResult, 1)
	go func() {
		res, err := agent.Run(ctx)
		if err != nil {
			t.Errorf("agent run: %v", err)
		}
		done <- res
	}()
	return gridSide, done
}

func sendQuote(t *testing.T, ctx context.Context, grid v2i.Transport, seq uint64, q v2i.Quote) {
	t.Helper()
	env, err := v2i.Seal(v2i.TypeQuote, "grid", seq, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	if _, err := grid.Recv(ctx); err != nil { // the best-response request
		t.Fatal(err)
	}
}

func sendBye(t *testing.T, ctx context.Context, grid v2i.Transport, seq uint64) {
	t.Helper()
	env, err := v2i.Seal(v2i.TypeBye, "grid", seq, v2i.Bye{Reason: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
}

// A coordinator silent past the deadline puts the agent on the
// proportional-fair fallback: ηP_line per live section split over the
// quoted fleet.
func TestAutonomyFallbackOnSilence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, done := autonomyRig(t, ctx, AgentConfig{
		VehicleID:    "ev-0",
		MaxPowerKW:   200,
		Satisfaction: core.LogSatisfaction{Weight: 1},
		Autonomy:     &AutonomyConfig{QuoteDeadline: 20 * time.Millisecond},
	})

	spec := nonlinearSpec() // OverloadCapacityKW = 0.9 * 53.55
	sendQuote(t, ctx, grid, 1, v2i.Quote{
		VehicleID: "ev-0", Others: []float64{0, 0, 0}, Cost: spec,
		Round: 1, Epoch: 1, FleetSize: 4,
	})
	time.Sleep(120 * time.Millisecond) // several deadline budgets of silence
	sendBye(t, ctx, grid, 2)
	res := <-done

	if res.DegradedEpisodes == 0 {
		t.Fatal("silence past the deadline did not trip autonomy")
	}
	want := spec.OverloadCapacityKW / 4 * 3 // per-capita share × live sections
	if math.Abs(res.LastFallbackKW-want) > 1e-12 {
		t.Errorf("fallback %v kW, want %v", res.LastFallbackKW, want)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
}

// The fallback honors the vehicle's own limits and the live-section
// mask: dead sections neither count toward the draw nor the split.
func TestAutonomyFallbackClampsAndMasks(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, done := autonomyRig(t, ctx, AgentConfig{
		VehicleID:        "ev-0",
		MaxPowerKW:       500,
		MaxSectionDrawKW: 10,
		Satisfaction:     core.LogSatisfaction{Weight: 1},
		Autonomy:         &AutonomyConfig{QuoteDeadline: 20 * time.Millisecond},
	})

	spec := nonlinearSpec()
	sendQuote(t, ctx, grid, 1, v2i.Quote{
		VehicleID: "ev-0", Others: []float64{0, 0, 0, 0}, Cost: spec,
		Round: 1, Epoch: 1, FleetSize: 2,
		Live: []bool{true, false, true, true},
	})
	time.Sleep(80 * time.Millisecond)
	sendBye(t, ctx, grid, 2)
	res := <-done

	if res.DegradedEpisodes == 0 {
		t.Fatal("silence did not trip autonomy")
	}
	// Raw share 48.195/2 clamps to the 10 kW draw cap; three sections
	// survive the mask.
	if want := 30.0; math.Abs(res.LastFallbackKW-want) > 1e-12 {
		t.Errorf("fallback %v kW, want %v", res.LastFallbackKW, want)
	}
}

// Past the staleness TTL the agent sheds to zero: an hours-old
// capacity quote must not ground a live draw.
func TestAutonomyStalenessTTLShedsToZero(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, done := autonomyRig(t, ctx, AgentConfig{
		VehicleID:    "ev-0",
		MaxPowerKW:   200,
		Satisfaction: core.LogSatisfaction{Weight: 1},
		Autonomy: &AutonomyConfig{
			QuoteDeadline: 20 * time.Millisecond,
			StalenessTTL:  time.Millisecond,
		},
	})
	sendQuote(t, ctx, grid, 1, v2i.Quote{
		VehicleID: "ev-0", Others: []float64{0, 0}, Cost: nonlinearSpec(),
		Round: 1, Epoch: 1, FleetSize: 3,
	})
	time.Sleep(80 * time.Millisecond)
	sendBye(t, ctx, grid, 2)
	res := <-done

	if res.DegradedEpisodes == 0 {
		t.Fatal("silence did not trip autonomy")
	}
	if res.LastFallbackKW != 0 {
		t.Errorf("fallback %v kW on state older than the TTL, want 0", res.LastFallbackKW)
	}
}

// An agent that never saw the grid has nothing safe to assume: zero
// draw, not an invented one.
func TestAutonomyNoQuoteEverSeen(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, done := autonomyRig(t, ctx, AgentConfig{
		VehicleID:    "ev-0",
		MaxPowerKW:   200,
		Satisfaction: core.LogSatisfaction{Weight: 1},
		Autonomy:     &AutonomyConfig{QuoteDeadline: 15 * time.Millisecond},
	})
	time.Sleep(60 * time.Millisecond)
	// First and only frame is the goodbye; Rounds stays 0.
	env, err := v2i.Seal(v2i.TypeBye, "grid", 1, v2i.Bye{Reason: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	res := <-done

	if res.DegradedEpisodes == 0 {
		t.Fatal("silence did not trip autonomy")
	}
	if res.LastFallbackKW != 0 {
		t.Errorf("fallback %v kW with no quote ever seen, want 0", res.LastFallbackKW)
	}
}

// A frame arriving while degraded ends the episode: the agent counts a
// reconnect and resumes the exact protocol.
func TestAutonomyReconnectResumesProtocol(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, done := autonomyRig(t, ctx, AgentConfig{
		VehicleID:    "ev-0",
		MaxPowerKW:   200,
		Satisfaction: core.LogSatisfaction{Weight: 1},
		Autonomy:     &AutonomyConfig{QuoteDeadline: 20 * time.Millisecond},
	})
	spec := nonlinearSpec()
	sendQuote(t, ctx, grid, 1, v2i.Quote{
		VehicleID: "ev-0", Others: []float64{0, 0}, Cost: spec,
		Round: 1, Epoch: 1, FleetSize: 2,
	})
	time.Sleep(80 * time.Millisecond) // degrade
	sendQuote(t, ctx, grid, 2, v2i.Quote{
		VehicleID: "ev-0", Others: []float64{1, 1}, Cost: spec,
		Round: 2, Epoch: 1, FleetSize: 2,
	})
	sendBye(t, ctx, grid, 3)
	res := <-done

	if res.DegradedEpisodes == 0 {
		t.Fatal("silence did not trip autonomy")
	}
	if res.Reconnects == 0 {
		t.Error("recovered frame did not count as a reconnect")
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2: the protocol should resume after reconnect", res.Rounds)
	}
}

// Heartbeats reset the silence clock: a slow round with a live
// coordinator must not push agents into degraded mode.
func TestHeartbeatsPreventDegradation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	grid, done := autonomyRig(t, ctx, AgentConfig{
		VehicleID:    "ev-0",
		MaxPowerKW:   200,
		Satisfaction: core.LogSatisfaction{Weight: 1},
		Autonomy:     &AutonomyConfig{QuoteDeadline: 80 * time.Millisecond},
	})
	var seq uint64
	for i := 0; i < 8; i++ { // ~160 ms of liveness beacons, no quotes
		seq++
		env, err := v2i.Seal(v2i.TypeHeartbeat, "grid", seq, v2i.Heartbeat{Epoch: 1, Round: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := grid.Send(ctx, env); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	seq++
	sendBye(t, ctx, grid, seq)
	res := <-done

	if res.DegradedEpisodes != 0 {
		t.Errorf("agent degraded %d times under a heartbeating coordinator", res.DegradedEpisodes)
	}
	if res.Heartbeats == 0 {
		t.Error("no heartbeats counted")
	}
}
