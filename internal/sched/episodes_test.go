package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// TestMultipleEpisodesWithFleetTurnover runs two games on one
// coordinator: episode one with three vehicles, then one departs, two
// join, and episode two re-converges with the new fleet.
func TestMultipleEpisodesWithFleetTurnover(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	mkAgent := func(id string, vehicleSide v2i.Transport) *Agent {
		t.Helper()
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: 1},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		return agent
	}

	links := make(map[string]v2i.Transport)
	agents := make(map[string]*Agent)
	gen1Sides := make([]v2i.Transport, 0, 3)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("gen1-%d", i)
		gridSide, vehicleSide := v2i.NewPair(8)
		links[id] = gridSide
		gen1Sides = append(gen1Sides, vehicleSide)
		agents[id] = mkAgent(id, vehicleSide)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    6,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		RoundTimeout:   2 * time.Second,
		DropDeparted:   true,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	runEpisode := func(active map[string]*Agent) Report {
		t.Helper()
		var wg sync.WaitGroup
		for _, a := range active {
			wg.Add(1)
			go func(a *Agent) {
				defer wg.Done()
				_, _ = a.Run(ctx)
			}(a)
		}
		report, err := coord.Run(ctx)
		if err != nil {
			t.Fatalf("episode failed: %v", err)
		}
		wg.Wait()
		return report
	}

	first := runEpisode(agents)
	if !first.Converged || len(first.Requests) != 3 {
		t.Fatalf("episode 1 report %+v", first)
	}

	// Turnover: the whole first generation drives off — their links
	// close, and DropDeparted cleans them out during the next episode.
	// Two new vehicles join.
	for _, side := range gen1Sides {
		if err := side.Close(); err != nil {
			t.Fatal(err)
		}
	}
	gen2 := make(map[string]*Agent)
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("gen2-%d", i)
		gridSide, vehicleSide := v2i.NewPair(8)
		if err := coord.AddVehicle(id, gridSide); err != nil {
			t.Fatal(err)
		}
		gen2[id] = mkAgent(id, vehicleSide)
	}
	if err := coord.AddVehicle("gen2-0", nil); err == nil {
		t.Error("nil transport accepted")
	}
	if err := coord.AddVehicle("", links["gen1-1"]); err == nil {
		t.Error("empty ID accepted")
	}

	second := runEpisode(gen2)
	if !second.Converged {
		t.Fatalf("episode 2 did not converge: %+v", second)
	}
	// Episode one's vehicles hung up after Bye; DropDeparted cleaned
	// them out, leaving exactly the new generation.
	if second.Departed != 3 {
		t.Errorf("departed = %d, want 3 (the whole first generation)", second.Departed)
	}
	if len(second.Requests) != 2 {
		t.Errorf("final fleet %d, want 2: %+v", len(second.Requests), second.Requests)
	}
	for id, p := range second.Requests {
		if p <= 0 {
			t.Errorf("new vehicle %s unpowered", id)
		}
	}
}
