package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// TestDepartingVehicleDropped: one agent hangs up after its first
// exchange. With DropDeparted the coordinator must release its power,
// keep the rest of the fleet, and still converge.
func TestDepartingVehicleDropped(t *testing.T) {
	const n = 5
	links := make(map[string]v2i.Transport, n)
	vehicleSides := make(map[string]v2i.Transport, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(8)
		links[id] = gridSide
		vehicleSides[id] = vehicleSide
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    6,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      100,
		RoundTimeout:   200 * time.Millisecond,
		DropDeparted:   true,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	// Four well-behaved agents.
	for i := 1; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: 1},
		}, vehicleSides[id])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			_, _ = a.Run(ctx)
		}(agent)
	}
	// One quitter: answers a couple of quotes, then closes its link.
	quitter := vehicleSides["ev-00"]
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 2; round++ {
			env, err := quitter.Recv(ctx)
			if err != nil {
				return
			}
			var q v2i.Quote
			if err := v2i.Open(env, v2i.TypeQuote, &q); err != nil {
				return
			}
			out, err := v2i.Seal(v2i.TypeRequest, "ev-00", uint64(round+1), v2i.Request{
				VehicleID: "ev-00", TotalKW: 55, Round: q.Round, Epoch: q.Epoch,
			})
			if err != nil {
				return
			}
			if err := quitter.Send(ctx, out); err != nil {
				return
			}
			if _, err := quitter.Recv(ctx); err != nil { // schedule msg
				return
			}
		}
		_ = quitter.Close()
	}()

	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator failed on departure: %v", err)
	}
	// Release remaining agents.
	for _, l := range links {
		_ = l.Close()
	}
	wg.Wait()

	if report.Departed != 1 {
		t.Errorf("Departed = %d, want 1", report.Departed)
	}
	if !report.Converged {
		t.Errorf("fleet did not re-converge after departure (%d rounds)", report.Rounds)
	}
	if _, stillThere := report.Requests["ev-00"]; stillThere {
		t.Error("departed vehicle still holds a schedule")
	}
	if len(report.Requests) != n-1 {
		t.Errorf("%d vehicles in final schedule, want %d", len(report.Requests), n-1)
	}
	for id, p := range report.Requests {
		if p <= 0 {
			t.Errorf("remaining vehicle %s got no power", id)
		}
	}
}

// TestAllVehiclesDepart: the run ends cleanly when everyone leaves.
func TestAllVehiclesDepart(t *testing.T) {
	gridSide, vehicleSide := v2i.NewPair(4)
	_ = vehicleSide.Close() // vehicle gone before the first round
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    3,
		LineCapacityKW: 50,
		Cost:           nonlinearSpec(),
		RoundTimeout:   100 * time.Millisecond,
		DropDeparted:   true,
	}, map[string]v2i.Transport{"ghost": gridSide})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("empty-fleet run failed: %v", err)
	}
	if report.Departed != 1 || len(report.Requests) != 0 {
		t.Errorf("report %+v", report)
	}
	if report.TotalPowerKW != 0 {
		t.Errorf("power %v scheduled to nobody", report.TotalPowerKW)
	}
}
