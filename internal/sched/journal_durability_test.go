package sched

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"olevgrid/internal/store"
)

// The durability regressions for PR 9's fsync fix: a FileJournal Save
// that returns nil must survive a power loss, and Load must tell
// transient I/O failures from corrupt bytes.

func durCheckpoint(round int) Checkpoint {
	return Checkpoint{
		Epoch: 1, Round: round, NumSections: 2, Seq: uint64(round),
		Schedule: map[string][]float64{"ev-000": {1, float64(round)}},
	}
}

// TestFileJournalSaveSurvivesCrash is the crash-before-fsync
// regression: the pre-store Save renamed without fsync, so the fault
// filesystem's crash model — like a real power loss — could roll an
// acked checkpoint back. With the shared atomic write it cannot.
func TestFileJournalSaveSurvivesCrash(t *testing.T) {
	fsys := store.NewFaultFS(store.FaultConfig{Seed: 1})
	if err := fsys.MkdirAll("/j", 0o755); err != nil {
		t.Fatal(err)
	}
	j := NewFileJournalFS(fsys, "/j/cp.json")
	if err := j.Save(durCheckpoint(3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Save(durCheckpoint(4)); err != nil {
		t.Fatal(err)
	}
	booted := fsys.Restart(store.FaultConfig{})
	cp, ok, err := NewFileJournalFS(booted, "/j/cp.json").Load()
	if err != nil || !ok {
		t.Fatalf("acked checkpoint lost across crash: ok=%v err=%v", ok, err)
	}
	if cp.Round != 4 {
		t.Fatalf("recovered round %d, want 4 (the last acked save)", cp.Round)
	}
}

// TestFileJournalSaveCrashMatrix sweeps a crash through every
// filesystem operation of a second Save: recovery must always see
// round 1 or round 2, and must see round 2 once Save acked it.
func TestFileJournalSaveCrashMatrix(t *testing.T) {
	const path = "/j/cp.json"
	run := func(crashAt int64) (acked bool, fsys *store.FaultFS) {
		fsys = store.NewFaultFS(store.FaultConfig{Seed: 9, CrashAtOp: crashAt})
		_ = fsys.MkdirAll("/j", 0o755)
		j := NewFileJournalFS(fsys, path)
		if err := j.Save(durCheckpoint(1)); err != nil {
			t.Fatalf("crash %d: first save: %v", crashAt, err)
		}
		return j.Save(durCheckpoint(2)) == nil, fsys
	}
	dry := store.NewFaultFS(store.FaultConfig{Seed: 9})
	_ = dry.MkdirAll("/j", 0o755)
	jd := NewFileJournalFS(dry, path)
	_ = jd.Save(durCheckpoint(1))
	base := dry.Ops()
	_ = jd.Save(durCheckpoint(2))
	for crash := base + 1; crash <= dry.Ops(); crash++ {
		acked, fsys := run(crash)
		cp, ok, err := NewFileJournalFS(fsys.Restart(store.FaultConfig{}), path).Load()
		if err != nil || !ok {
			t.Fatalf("crash %d: no valid checkpoint after crash: ok=%v err=%v", crash, ok, err)
		}
		if cp.Round != 1 && cp.Round != 2 {
			t.Fatalf("crash %d: recovered round %d, want 1 or 2", crash, cp.Round)
		}
		if acked && cp.Round != 2 {
			t.Fatalf("crash %d: save acked round 2 but crash rolled back to %d", crash, cp.Round)
		}
	}
}

// TestFileJournalLoadTransientVsCorrupt: a read error keeps its os
// chain (retry may work), undecodable bytes are marked ErrCorrupt
// (the data is gone) — the distinction the boot journal scan branches
// on.
func TestFileJournalLoadTransientVsCorrupt(t *testing.T) {
	fsys := store.NewFaultFS(store.FaultConfig{Seed: 1})
	_ = fsys.MkdirAll("/j", 0o755)
	j := NewFileJournalFS(fsys, "/j/cp.json")
	if err := j.Save(durCheckpoint(1)); err != nil {
		t.Fatal(err)
	}

	sentinel := errors.New("injected EIO")
	fsys.SetReadError("/j/cp.json", sentinel)
	if _, _, err := j.Load(); !errors.Is(err, sentinel) || errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("transient load err = %v; want the os chain, not ErrCorrupt", err)
	}
	fsys.SetReadError("/j/cp.json", nil)

	h, err := fsys.OpenFile("/j/cp.json", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("{not json")); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	if _, _, err := j.Load(); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("corrupt load err = %v; want ErrCorrupt", err)
	}
}

// TestStoreJournalRoundTrip: the segment-store journal adapter keeps
// the Journal contract — latest save wins, across process restarts.
func TestStoreJournalRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cp.store")
	st, err := store.Open(dir, store.Options{CompactBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	j := NewStoreJournal(st)
	if _, ok, err := j.Load(); ok || err != nil {
		t.Fatalf("empty store journal: ok=%v err=%v", ok, err)
	}
	for r := 1; r <= 50; r++ {
		if err := j.Save(durCheckpoint(r)); err != nil {
			t.Fatalf("save %d: %v", r, err)
		}
	}
	cp, ok, err := j.Load()
	if err != nil || !ok || cp.Round != 50 {
		t.Fatalf("Load = %+v ok=%v err=%v", cp, ok, err)
	}
	if st.Stats().Compactions == 0 {
		t.Fatal("50 saves at 512-byte threshold never compacted")
	}
	_ = st.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cp, ok, err = NewStoreJournal(st2).Load()
	if err != nil || !ok || cp.Round != 50 {
		t.Fatalf("recovered Load = %+v ok=%v err=%v", cp, ok, err)
	}
}
