package sched

import (
	"olevgrid/internal/obs"
)

// Metrics is the control plane's telemetry bundle, threaded through
// CoordinatorConfig and AgentConfig. One bundle is meant to be shared
// by every incarnation of a session — primary, standby after
// takeover, resumed coordinator — so counters are cumulative across
// failover: each event site increments exactly once when the event
// happens, never by end-of-run diffs, which is what makes the
// no-double-count property testable. Nil is the off switch; every
// hook is nil-receiver safe, and the armed path is atomic writes
// only, safe from the batched rounds' collection goroutines.
type Metrics struct {
	// Coordinator-side counters, mirroring Report one-for-one.
	Rounds      *obs.Counter
	Quotes      *obs.Counter // quote frames sent (includes re-quotes)
	Proposals   *obs.Counter // requests water-filled and installed
	Retries     *obs.Counter
	Stale       *obs.Counter
	Skipped     *obs.Counter
	Departed    *obs.Counter
	Evicted     *obs.Counter
	Joined      *obs.Counter
	Degraded    *obs.Counter // rounds forced sequential by the batch guard
	FeedChanges *obs.Counter
	FeedHeld    *obs.Counter
	Outages     *obs.Counter
	Restores    *obs.Counter
	Checkpoints *obs.Counter
	Failovers   *obs.Counter // takeover/resume transitions

	// Epoch tracks the schedule version — monotone within an
	// incarnation and fenced upward across failover, which the chaos
	// conformance test asserts per fencing epoch.
	Epoch        *obs.Gauge
	LiveSections *obs.Gauge
	Delta        *obs.Histogram // per-round movement bound (kW)

	// Agent-side gauges, mirroring AgentResult's legacy counters (the
	// autonomy conformance test proves them equal). Gauges rather than
	// counters because several agents may share a bundle and the CAS
	// Add keeps concurrent bumps exact.
	DegradedEpisodes *obs.Gauge
	Reconnects       *obs.Gauge
	Heartbeats       *obs.Gauge

	Sink *obs.EventSink
}

// NewMetrics registers the control-plane metric catalog on r (see
// DESIGN.md §11); r and sink may each be nil.
func NewMetrics(r *obs.Registry, sink *obs.EventSink) *Metrics {
	m := &Metrics{
		Rounds:      r.Counter("olev_sched_rounds_total"),
		Quotes:      r.Counter("olev_sched_quotes_total"),
		Proposals:   r.Counter("olev_sched_proposals_total"),
		Retries:     r.Counter("olev_sched_retries_total"),
		Stale:       r.Counter("olev_sched_stale_dropped_total"),
		Skipped:     r.Counter("olev_sched_skipped_total"),
		Departed:    r.Counter("olev_sched_departed_total"),
		Evicted:     r.Counter("olev_sched_evicted_total"),
		Joined:      r.Counter("olev_sched_joined_total"),
		Degraded:    r.Counter("olev_sched_degraded_rounds_total"),
		FeedChanges: r.Counter("olev_sched_feed_changes_total"),
		FeedHeld:    r.Counter("olev_sched_feed_held_total"),
		Outages:     r.Counter("olev_sched_outages_total"),
		Restores:    r.Counter("olev_sched_restores_total"),
		Checkpoints: r.Counter("olev_sched_checkpoints_total"),
		Failovers:   r.Counter("olev_sched_failovers_total"),

		Epoch:        r.Gauge("olev_sched_epoch"),
		LiveSections: r.Gauge("olev_sched_live_sections"),
		Delta:        r.Histogram("olev_sched_round_delta_kw", obs.ExponentialBuckets(1e-6, 10, 10)),

		DegradedEpisodes: r.Gauge("olev_agent_degraded_episodes"),
		Reconnects:       r.Gauge("olev_agent_reconnects"),
		Heartbeats:       r.Gauge("olev_agent_heartbeats"),

		Sink: sink,
	}
	r.Help("olev_sched_rounds_total", "coordinator update rounds, cumulative across failover incarnations")
	r.Help("olev_sched_epoch", "schedule version; monotone within an incarnation and fenced upward across takeover")
	return m
}

// observeRound records one completed coordinator round.
func (m *Metrics) observeRound(round int, epoch uint64, maxDelta float64, live int) {
	if m == nil {
		return
	}
	m.Rounds.Inc()
	m.Epoch.Set(float64(epoch))
	m.LiveSections.Set(float64(live))
	m.Delta.Observe(maxDelta)
}

// observeQuote records one quote frame going out; called from the
// batched rounds' collection goroutines, so atomics only.
func (m *Metrics) observeQuote(id string, round int, epoch uint64, fleet int) {
	if m == nil {
		return
	}
	m.Quotes.Inc()
	m.Sink.Emit(obs.EventQuote, id, int32(round), int32(epoch), float64(fleet))
}

// observePropose records one request installed into the schedule;
// always on Run's goroutine.
func (m *Metrics) observePropose(id string, round int, epoch uint64, totalKW float64) {
	if m == nil {
		return
	}
	m.Proposals.Inc()
	m.Sink.Emit(obs.EventPropose, id, int32(round), int32(epoch), totalKW)
}

// observeFailover records a fencing-epoch transition (takeover or
// resume) onto the shared bundle.
func (m *Metrics) observeFailover(instance string, epoch uint64) {
	if m == nil {
		return
	}
	m.Failovers.Inc()
	m.Epoch.Set(float64(epoch))
	m.Sink.Emit(obs.EventFailover, instance, -1, int32(epoch), float64(epoch))
}

// observeOutage records a section death or restoration.
func (m *Metrics) observeOutage(section, round int, epoch uint64, restored bool) {
	if m == nil {
		return
	}
	kind := obs.EventOutage
	if restored {
		m.Restores.Inc()
		kind = obs.EventRestore
	} else {
		m.Outages.Inc()
	}
	m.Sink.Emit(kind, "coordinator", int32(round), int32(epoch), float64(section))
}
