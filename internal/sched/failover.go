package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// This file makes the coordinator itself survivable. The paper's
// Section IV iteration assumes the smart grid stays alive for the
// whole session; here a standby tails the primary's Journal and lease,
// takes over when the lease lapses, and warm-starts the game from the
// last checkpoint. Correctness rests on two fences plus Theorem IV.1:
//
//   - the takeover epoch is fenced strictly above anything the old
//     primary could have quoted, so the PR-1 epoch check makes agents'
//     answers to a partitioned primary's stale quotes uninstallable;
//   - the standby's outbound sequence counter is fenced above the old
//     primary's, so the agents' monotonic gridSeq filter accepts the
//     new incarnation's frames and silently drops the old one's;
//   - the potential-game structure guarantees the warm-started
//     iteration converges to the same unique social optimum as an
//     uninterrupted run — a crash changes round counts, never the
//     destination (the failover differential suite pins this to 1e-9).
//
// All lease operations take an explicit `now` so failover logic is
// deterministic under test; production callers pass time.Now().

// ErrLeaseLost is returned by a coordinator run when its lease renewal
// is refused: another instance holds the lease and this one must stop
// quoting immediately rather than split-brain the schedule.
var ErrLeaseLost = errors.New("sched: coordinator lease lost")

// Fencing gaps. The epoch gap exceeds any plausible number of
// schedule installs between two checkpoints; the sequence gap exceeds
// any plausible number of frames a primary sends in one session. Both
// are gaps, not exact successors, because the standby fences off the
// *checkpoint* — the lagging durable view — while the dead primary's
// live counters had moved on past it.
const (
	epochFenceGap uint64 = 1 << 20
	seqFenceGap   uint64 = 1 << 32
)

// LeaseState is one observation of the coordination lease.
type LeaseState struct {
	// Holder is the instance ID currently holding the lease.
	Holder string
	// Epoch is the schedule epoch the holder last advertised.
	Epoch uint64
	// ExpiresAt is when the lease lapses unless renewed.
	ExpiresAt time.Time
}

// Expired reports whether the lease has lapsed at the given instant.
func (s LeaseState) Expired(now time.Time) bool { return !now.Before(s.ExpiresAt) }

// Lease is the mutual-exclusion primitive between coordinator
// incarnations: at most one instance renews successfully at a time.
// Implementations must be safe for concurrent use.
type Lease interface {
	// Renew extends (or acquires) the lease for holder until now+ttl,
	// advertising the holder's current epoch. It reports false when a
	// different holder's unexpired lease exists — the caller has lost
	// the election and must stand down.
	Renew(holder string, epoch uint64, ttl time.Duration, now time.Time) (bool, error)
	// Observe returns the last granted lease state; ok is false when no
	// lease has ever been granted.
	Observe(now time.Time) (LeaseState, bool, error)
}

// MemLease is an in-process Lease for tests and single-process
// simulations; a deployment would back this with etcd or similar.
type MemLease struct {
	mu    sync.Mutex
	state LeaseState
	held  bool
}

var _ Lease = (*MemLease)(nil)

// NewMemLease returns an unheld lease.
func NewMemLease() *MemLease { return &MemLease{} }

// Renew implements Lease: the grant succeeds when the lease is free,
// expired, or already held by this holder.
func (l *MemLease) Renew(holder string, epoch uint64, ttl time.Duration, now time.Time) (bool, error) {
	if holder == "" {
		return false, errors.New("sched: lease holder must be named")
	}
	if ttl <= 0 {
		return false, fmt.Errorf("sched: lease ttl %v must be positive", ttl)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.held && l.state.Holder != holder && !l.state.Expired(now) {
		return false, nil
	}
	l.state = LeaseState{Holder: holder, Epoch: epoch, ExpiresAt: now.Add(ttl)}
	l.held = true
	return true, nil
}

// Observe implements Lease.
func (l *MemLease) Observe(now time.Time) (LeaseState, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state, l.held, nil
}

// Takeover is everything a standby needs to resume the game as the new
// primary: a fenced epoch and sequence counter, and the last durable
// checkpoint to warm-start from.
type Takeover struct {
	// Epoch is the new incarnation's starting schedule epoch, fenced
	// strictly above anything the old primary could have quoted.
	Epoch uint64
	// InitialSeq seeds the outbound sequence counter above the old
	// primary's, so agents' monotonic filters accept the new frames.
	InitialSeq uint64
	// Checkpoint is the journaled last-known-good schedule.
	Checkpoint Checkpoint
	// HasCheckpoint reports whether the journal held one; without it
	// the takeover cold-starts from zero.
	HasCheckpoint bool
}

// StandbyConfig configures a warm standby.
type StandbyConfig struct {
	// InstanceID names this standby in lease records.
	InstanceID string
	// Journal is the shared checkpoint journal the primary writes.
	Journal Journal
	// Lease is the shared election primitive.
	Lease Lease
	// LeaseTTL is the term the standby acquires on takeover; zero means
	// 1 s.
	LeaseTTL time.Duration
	// PollEvery is Watch's observation cadence; zero means LeaseTTL/4.
	PollEvery time.Duration
}

// Standby tails a primary coordinator's journal and lease, ready to
// take over when the lease lapses.
type Standby struct {
	cfg StandbyConfig

	mu       sync.Mutex
	observed bool // a live primary's lease has been seen at least once
}

// NewStandby validates the configuration and builds a standby.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.InstanceID == "" {
		return nil, errors.New("sched: standby needs an instance ID")
	}
	if cfg.Lease == nil {
		return nil, errors.New("sched: standby needs a lease")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = cfg.LeaseTTL / 4
	}
	return &Standby{cfg: cfg}, nil
}

// TryTakeover attempts one failover step at the given instant. It
// reports false while the primary is healthy (its lease is live) or
// has never been seen: a standby that boots into an empty lease table
// must not steal a session it has no evidence ever existed — it waits
// to observe a primary first, then reacts to that primary's silence.
func (s *Standby) TryTakeover(now time.Time) (Takeover, bool, error) {
	state, held, err := s.cfg.Lease.Observe(now)
	if err != nil {
		return Takeover{}, false, fmt.Errorf("sched: observe lease: %w", err)
	}
	if !held {
		return Takeover{}, false, nil
	}
	if state.Holder != s.cfg.InstanceID {
		s.mu.Lock()
		s.observed = true
		s.mu.Unlock()
		if !state.Expired(now) {
			return Takeover{}, false, nil
		}
	}
	s.mu.Lock()
	seen := s.observed
	s.mu.Unlock()
	if !seen {
		return Takeover{}, false, nil
	}

	t := Takeover{Epoch: state.Epoch}
	if s.cfg.Journal != nil {
		cp, ok, err := s.cfg.Journal.Load()
		if err != nil {
			return Takeover{}, false, fmt.Errorf("sched: load checkpoint: %w", err)
		}
		if ok {
			t.Checkpoint = cp
			t.HasCheckpoint = true
			if cp.Epoch > t.Epoch {
				t.Epoch = cp.Epoch
			}
			t.InitialSeq = cp.Seq
		}
	}
	t.Epoch += epochFenceGap
	t.InitialSeq += seqFenceGap

	won, err := s.cfg.Lease.Renew(s.cfg.InstanceID, t.Epoch, s.cfg.LeaseTTL, now)
	if err != nil {
		return Takeover{}, false, fmt.Errorf("sched: acquire lease: %w", err)
	}
	if !won {
		return Takeover{}, false, nil // lost the race to another standby
	}
	return t, true, nil
}

// Watch polls the lease until a takeover succeeds or the context ends.
func (s *Standby) Watch(ctx context.Context) (Takeover, error) {
	ticker := time.NewTicker(s.cfg.PollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return Takeover{}, ctx.Err()
		case now := <-ticker.C:
			t, ok, err := s.TryTakeover(now)
			if err != nil {
				return Takeover{}, err
			}
			if ok {
				return t, nil
			}
		}
	}
}

// ResumeCoordinator builds the new primary after a takeover: a
// coordinator over the surviving links whose epoch and sequence
// counters start above the fences and whose schedule warm-starts from
// the checkpoint via the core warm-start projection (rows travel by
// vehicle ID; vehicles absent from the checkpoint seed at zero).
// cfg.Lease/InstanceID should carry the standby's identity so the new
// primary keeps renewing the lease it just won.
func ResumeCoordinator(cfg CoordinatorConfig, links map[string]v2i.Transport, t Takeover) (*Coordinator, error) {
	c, err := NewCoordinator(cfg, links)
	if err != nil {
		return nil, err
	}
	if t.HasCheckpoint && t.Checkpoint.NumSections == cfg.NumSections {
		ids := make([]string, 0, len(t.Checkpoint.Schedule))
		for id := range t.Checkpoint.Schedule {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		prev, err := core.NewSchedule(len(ids), cfg.NumSections)
		if err != nil {
			return nil, err
		}
		for i, id := range ids {
			row := t.Checkpoint.Schedule[id]
			if len(row) != cfg.NumSections {
				return nil, fmt.Errorf("sched: resume row %q has %d sections, want %d",
					id, len(row), cfg.NumSections)
			}
			prev.SetRow(i, row)
		}
		// The coordinator holds no private vehicle constraints — the
		// first best response re-imposes them — so project with
		// unbounded players.
		players := make([]core.Player, 0, len(links))
		for id := range links {
			players = append(players, core.Player{ID: id, MaxPowerKW: math.Inf(1)})
		}
		sort.Slice(players, func(i, j int) bool { return players[i].ID < players[j].ID })
		proj, err := core.ProjectSchedule(prev, ids, players, cfg.NumSections)
		if err != nil {
			return nil, fmt.Errorf("sched: resume projection: %w", err)
		}
		for i, p := range players {
			c.schedule[p.ID] = proj.Row(i)
		}
		c.restored = true
	}
	if t.Epoch > c.epoch {
		c.epoch = t.Epoch
	}
	if t.InitialSeq > c.seq {
		c.seq = t.InitialSeq
	}
	cfg.Metrics.observeFailover(cfg.InstanceID, c.epoch)
	return c, nil
}
