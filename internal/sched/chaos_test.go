package sched

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// chaosWeight is the satisfaction weight for the i-th vehicle; spread
// over five values so the equilibrium is not symmetric.
func chaosWeight(i int) float64 { return 1 + 0.06*float64(i%5) }

// welfareOf computes the social welfare W = Σ_n U_n(p_n) − Σ_c Z(P_c)
// from a coordinator report and the (test-known) private weights.
func welfareOf(report Report, weights map[string]float64) float64 {
	w := -report.WelfareCost
	for id, p := range report.Requests {
		w += core.LogSatisfaction{Weight: weights[id]}.Value(p)
	}
	return w
}

// chaosFleet is one vehicle's wiring under fault injection: the
// coordinator talks through faultyGrid, the agent through
// faultyVehicle, and rawGrid closes the whole link to model departure.
type chaosFleet struct {
	id         string
	rawGrid    v2i.Transport
	faultyGrid *v2i.Faulty
	faultyVeh  *v2i.Faulty
	agent      *Agent
}

func newChaosVehicle(t *testing.T, i int, id string, gridCfg, vehCfg v2i.FaultConfig) *chaosFleet {
	t.Helper()
	rawGrid, rawVehicle := v2i.NewPair(64)
	fg := v2i.NewFaulty(rawGrid, gridCfg)
	fv := v2i.NewFaulty(rawVehicle, vehCfg)
	agent, err := NewAgent(AgentConfig{
		VehicleID:    id,
		MaxPowerKW:   60,
		Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
	}, fv)
	if err != nil {
		t.Fatal(err)
	}
	return &chaosFleet{id: id, rawGrid: rawGrid, faultyGrid: fg, faultyVeh: fv, agent: agent}
}

// TestConvergenceUnderChaos is the headline robustness experiment:
// N=20 vehicles over C=20 sections, every link suffering 20% drops
// plus duplication, reordering, random delay, and one scripted
// partition window — while one vehicle departs mid-run and another
// joins mid-run. The fleet must still reach the equilibrium: social
// welfare within 1% of a fault-free run over the same final fleet.
func TestConvergenceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos convergence takes seconds")
	}
	const n = 20
	chaosPlan := func(seed int64) v2i.FaultConfig {
		return v2i.FaultConfig{
			DropRate:      0.20,
			DuplicateRate: 0.10,
			ReorderRate:   0.10,
			MaxDelay:      2 * time.Millisecond,
			Seed:          seed,
		}
	}

	links := make(map[string]v2i.Transport, n)
	fleet := make(map[string]*chaosFleet, n+1)
	weights := make(map[string]float64, n+1)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridCfg := chaosPlan(100 + int64(i))
		if i == 5 {
			// One link additionally goes fully dark for a stretch of
			// send indices — a scripted partition mid-game.
			gridCfg.Partitions = []v2i.SendWindow{{From: 30, To: 45}}
		}
		v := newChaosVehicle(t, i, id, gridCfg, chaosPlan(200+int64(i)))
		fleet[id] = v
		links[id] = v.faultyGrid
		weights[id] = chaosWeight(i)
	}

	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:      n,
		LineCapacityKW:   53.55,
		Cost:             nonlinearSpec(),
		Tolerance:        1e-3,
		MaxRounds:        100,
		RoundTimeout:     25 * time.Millisecond,
		MaxRetries:       8,
		RetryBackoff:     3 * time.Millisecond,
		SkipUnresponsive: true,
		DropDeparted:     true,
		EvictAfter:       10,
		Seed:             7,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		agentStale int
	)
	runAgent := func(a *Agent) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := a.Run(ctx)
			mu.Lock()
			agentStale += res.StaleDropped
			mu.Unlock()
		}()
	}
	for _, v := range fleet {
		runAgent(v.agent)
	}

	// Churn, on a wall-clock script: ev-00 unplugs mid-iteration and a
	// 21st vehicle arrives at the charging lane while the game runs.
	joiner := newChaosVehicle(t, 20, "ev-20", chaosPlan(120), chaosPlan(220))
	fleet["ev-20"] = joiner
	weights["ev-20"] = chaosWeight(20)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(150 * time.Millisecond)
		_ = fleet["ev-00"].rawGrid.Close() // the vehicle drives off
		time.Sleep(150 * time.Millisecond)
		runAgent(joiner.agent)
		if err := coord.Join("ev-20", joiner.faultyGrid); err != nil {
			t.Errorf("mid-run join: %v", err)
		}
	}()

	report, err := coord.Run(ctx)
	for _, v := range fleet {
		_ = v.rawGrid.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator under chaos: %v", err)
	}

	if !report.Converged {
		t.Fatalf("fleet did not converge under chaos: %+v", report)
	}
	if report.Departed != 1 {
		t.Errorf("Departed = %d, want 1 (ev-00 unplugged)", report.Departed)
	}
	if report.Joined != 1 {
		t.Errorf("Joined = %d, want 1 (ev-20 arrived)", report.Joined)
	}
	if report.Evicted != 0 {
		t.Errorf("Evicted = %d, want 0 — retries should mask 20%% loss", report.Evicted)
	}
	if _, gone := report.Requests["ev-00"]; gone {
		t.Error("departed ev-00 still holds power")
	}
	if p, ok := report.Requests["ev-20"]; !ok || p <= 0 {
		t.Errorf("joined ev-20 unpowered: %v", report.Requests["ev-20"])
	}
	if len(report.Requests) != n {
		t.Errorf("final fleet %d, want %d", len(report.Requests), n)
	}

	// The chaos must actually have fired, and the session-validation
	// layer must have caught its symptoms on both sides.
	var dropped, duplicated, reordered int
	for _, v := range fleet {
		dropped += v.faultyGrid.Dropped() + v.faultyVeh.Dropped()
		duplicated += v.faultyGrid.Duplicated() + v.faultyVeh.Duplicated()
		reordered += v.faultyGrid.Reordered() + v.faultyVeh.Reordered()
	}
	if dropped == 0 || duplicated == 0 || reordered == 0 {
		t.Errorf("fault plan never fired: dropped=%d duplicated=%d reordered=%d",
			dropped, duplicated, reordered)
	}
	if report.StaleDropped == 0 {
		t.Error("coordinator accepted every frame despite duplication and reordering")
	}
	if agentStale == 0 {
		t.Error("agents accepted every grid frame despite duplication and reordering")
	}
	if report.Retries == 0 {
		t.Error("no exchange was ever re-quoted despite 20% loss")
	}

	// Baseline: the same final fleet (ev-01..ev-20) on clean links.
	baseLinks := make(map[string]v2i.Transport, n)
	var baseWG sync.WaitGroup
	for i := 1; i <= 20; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(64)
		baseLinks[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		baseWG.Add(1)
		go func() {
			defer baseWG.Done()
			_, _ = agent.Run(ctx)
		}()
	}
	base, err := NewCoordinator(CoordinatorConfig{
		NumSections:    n,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      200,
		Seed:           7,
	}, baseLinks)
	if err != nil {
		t.Fatal(err)
	}
	baseReport, err := base.Run(ctx)
	for _, l := range baseLinks {
		_ = l.Close()
	}
	baseWG.Wait()
	if err != nil || !baseReport.Converged {
		t.Fatalf("clean baseline failed: %v %+v", err, baseReport)
	}

	wChaos := welfareOf(report, weights)
	wBase := welfareOf(baseReport, weights)
	if diff := math.Abs(wChaos - wBase); diff > 0.01*math.Abs(wBase) {
		t.Errorf("welfare under chaos %v vs clean %v: off by %v (> 1%%)",
			wChaos, wBase, diff)
	}
	t.Logf("chaos: rounds=%d retries=%d skipped=%d stale(coord)=%d stale(agents)=%d "+
		"dropped=%d duplicated=%d reordered=%d W=%0.4f (clean W=%0.4f)",
		report.Rounds, report.Retries, report.Skipped, report.StaleDropped, agentStale,
		dropped, duplicated, reordered, wChaos, wBase)
}

// TestCrashRestartUnderChaos: the coordinator converges once over
// lossy links and journals the result; the "restarted" coordinator
// restores the checkpoint and re-converges on equally lossy links to
// the same equilibrium.
func TestCrashRestartUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos convergence takes seconds")
	}
	journal := NewMemJournal()
	const n = 6

	episode := func(seedBase int64) (Report, *Coordinator) {
		lightChaos := func(seed int64) v2i.FaultConfig {
			return v2i.FaultConfig{
				DropRate:      0.10,
				DuplicateRate: 0.05,
				ReorderRate:   0.05,
				Seed:          seed,
			}
		}
		links := make(map[string]v2i.Transport, n)
		agents := make([]*Agent, 0, n)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("ev-%02d", i)
			v := newChaosVehicle(t, i, id, lightChaos(seedBase+int64(i)), lightChaos(seedBase+50+int64(i)))
			links[id] = v.faultyGrid
			agents = append(agents, v.agent)
		}
		coord, err := NewCoordinator(CoordinatorConfig{
			NumSections:      n,
			LineCapacityKW:   53.55,
			Cost:             nonlinearSpec(),
			Tolerance:        1e-4,
			MaxRounds:        100,
			RoundTimeout:     25 * time.Millisecond,
			MaxRetries:       8,
			RetryBackoff:     2 * time.Millisecond,
			SkipUnresponsive: true,
			Journal:          journal,
			Seed:             seedBase,
		}, links)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for _, a := range agents {
			wg.Add(1)
			go func(a *Agent) {
				defer wg.Done()
				_, _ = a.Run(ctx)
			}(a)
		}
		report, err := coord.Run(ctx)
		for _, l := range links {
			_ = l.Close()
		}
		wg.Wait()
		if err != nil {
			t.Fatalf("episode: %v", err)
		}
		return report, coord
	}

	first, c1 := episode(1000)
	if !first.Converged || !first.CheckpointSaved {
		t.Fatalf("episode 1 did not converge and journal: %+v", first)
	}
	if c1.Restored() {
		t.Error("episode 1 restored from an empty journal")
	}

	second, c2 := episode(2000)
	if !c2.Restored() {
		t.Fatal("restarted coordinator ignored the checkpoint")
	}
	if !second.Converged {
		t.Fatalf("restarted run did not converge: %+v", second)
	}
	for id, want := range first.Requests {
		got := second.Requests[id]
		if math.Abs(got-want) > 0.01*(1+want) {
			t.Errorf("vehicle %s: post-restart %v vs pre-crash %v", id, got, want)
		}
	}
}
