package sched

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

func nonlinearSpec() v2i.CostSpec {
	return v2i.CostSpec{
		Kind:                "nonlinear",
		BetaPerKWh:          0.02,
		Alpha:               0.875,
		LineCapacityKW:      53.55,
		OverloadKappaPerKWh: 10, // 500×β
		OverloadCapacityKW:  0.9 * 53.55,
	}
}

func TestBuildCost(t *testing.T) {
	z, err := BuildCost(nonlinearSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Below the wall: pure charging cost; above: penalty added.
	below, above := z.Marginal(40), z.Marginal(60)
	if above <= below {
		t.Error("overload penalty missing above the wall")
	}

	lin, err := BuildCost(v2i.CostSpec{Kind: "linear", BetaPerKWh: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Marginal(1) != 0.015 || lin.Marginal(100) != 0.015 {
		t.Error("linear cost not flat")
	}
}

func TestBuildCostErrors(t *testing.T) {
	bad := []v2i.CostSpec{
		{Kind: "mystery", BetaPerKWh: 0.02},
		{Kind: "nonlinear", BetaPerKWh: 0, Alpha: 0.875, LineCapacityKW: 50},
		{Kind: "nonlinear", BetaPerKWh: 0.02, Alpha: 0.875, LineCapacityKW: 0},
		{Kind: "linear", BetaPerKWh: 0},
		{Kind: "linear", BetaPerKWh: 0.02, OverloadKappaPerKWh: 1, OverloadCapacityKW: 0},
	}
	for i, spec := range bad {
		if _, err := BuildCost(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

// launchGame wires n agents to a coordinator over in-memory pairs and
// runs both sides to completion.
func launchGame(t *testing.T, n, sections int, tol float64) (Report, []AgentResult) {
	t.Helper()
	links := make(map[string]v2i.Transport, n)
	agents := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(8)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60 + float64(i%5)*8,
			Satisfaction: core.LogSatisfaction{Weight: 1 + 0.05*float64(i%4)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    sections,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      tol,
		MaxRounds:      300,
		Seed:           1,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	results := make([]AgentResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			results[i], errs[i] = a.Run(ctx)
		}(i, a)
	}
	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	return report, results
}

func TestDistributedGameConverges(t *testing.T) {
	report, results := launchGame(t, 8, 10, 1e-4)
	if !report.Converged {
		t.Fatalf("did not converge in %d rounds", report.Rounds)
	}
	if report.TotalPowerKW <= 0 {
		t.Error("no power scheduled")
	}
	for i, r := range results {
		if !r.Converged {
			t.Errorf("agent %d missed the convergence announcement", i)
		}
		if r.Rounds == 0 {
			t.Errorf("agent %d never exchanged", i)
		}
		if len(r.FinalAllocKW) != 10 {
			t.Errorf("agent %d allocation has %d sections", i, len(r.FinalAllocKW))
		}
		if r.FinalPaymentH < 0 {
			t.Errorf("agent %d negative payment %v", i, r.FinalPaymentH)
		}
	}
}

// TestDistributedMatchesInProcessGame: the wire protocol must land on
// the same equilibrium as core.Game run directly — same players, same
// cost, same tolerance.
func TestDistributedMatchesInProcessGame(t *testing.T) {
	const n, sections = 6, 8
	report, _ := launchGame(t, n, sections, 1e-6)

	cost, err := BuildCost(nonlinearSpec())
	if err != nil {
		t.Fatal(err)
	}
	players := make([]core.Player, n)
	for i := range players {
		players[i] = core.Player{
			ID:           fmt.Sprintf("ev-%02d", i),
			MaxPowerKW:   60 + float64(i%5)*8,
			Satisfaction: core.LogSatisfaction{Weight: 1 + 0.05*float64(i%4)},
		}
	}
	g, err := core.NewGame(core.Config{
		Players:        players,
		NumSections:    sections,
		LineCapacityKW: 53.55,
		Eta:            0.9,
		Cost:           cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Run(core.RunOptions{MaxUpdates: 50000, Tolerance: 1e-8}); !res.Converged {
		t.Fatal("reference game did not converge")
	}
	s := g.Schedule()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		want := s.OLEVTotal(i)
		got := report.Requests[id]
		if math.Abs(got-want) > 0.01*(1+want) {
			t.Errorf("vehicle %s: distributed %v vs in-process %v", id, got, want)
		}
	}
	if math.Abs(report.CongestionDegree-g.CongestionDegree()) > 0.01 {
		t.Errorf("congestion: distributed %v vs in-process %v",
			report.CongestionDegree, g.CongestionDegree())
	}
}

func TestCoordinatorValidation(t *testing.T) {
	a, _ := v2i.NewPair(1)
	links := map[string]v2i.Transport{"ev": a}
	bad := []CoordinatorConfig{
		{NumSections: 0, LineCapacityKW: 50, Cost: nonlinearSpec()},
		{NumSections: 5, LineCapacityKW: 0, Cost: nonlinearSpec()},
		{NumSections: 5, LineCapacityKW: 50, Cost: v2i.CostSpec{Kind: "junk"}},
	}
	for i, cfg := range bad {
		if _, err := NewCoordinator(cfg, links); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewCoordinator(CoordinatorConfig{
		NumSections: 5, LineCapacityKW: 50, Cost: nonlinearSpec(),
	}, nil); err == nil {
		t.Error("empty links accepted")
	}
}

func TestAgentValidation(t *testing.T) {
	a, _ := v2i.NewPair(1)
	sat := core.LogSatisfaction{Weight: 1}
	bad := []AgentConfig{
		{VehicleID: "", MaxPowerKW: 10, Satisfaction: sat},
		{VehicleID: "x", MaxPowerKW: -1, Satisfaction: sat},
		{VehicleID: "x", MaxPowerKW: 10, Satisfaction: nil},
	}
	for i, cfg := range bad {
		if _, err := NewAgent(cfg, a); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewAgent(AgentConfig{VehicleID: "x", MaxPowerKW: 10, Satisfaction: sat}, nil); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestCoordinatorTimesOutOnSilentAgent(t *testing.T) {
	gridSide, _ := v2i.NewPair(1)
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    4,
		LineCapacityKW: 50,
		Cost:           nonlinearSpec(),
		RoundTimeout:   50 * time.Millisecond,
	}, map[string]v2i.Transport{"ghost": gridSide})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := coord.Run(ctx); err == nil {
		t.Error("silent agent should fail the round")
	}
}

func TestTCPEndToEnd(t *testing.T) {
	srv, err := v2i.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const n = 4
	results := make([]AgentResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunTCP(ctx, srv.Addr(), AgentConfig{
				VehicleID:    fmt.Sprintf("tcp-ev-%d", i),
				MaxPowerKW:   50,
				Satisfaction: core.LogSatisfaction{Weight: 1},
				VelocityMS:   26.8,
				SOC:          0.4,
			})
		}(i)
	}

	links, err := CollectHellos(ctx, srv, n, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    6,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("agent %d: %v", i, e)
		}
	}
	if !report.Converged {
		t.Errorf("TCP game did not converge in %d rounds", report.Rounds)
	}
	for i, r := range results {
		if r.FinalRequestKW <= 0 {
			t.Errorf("agent %d final request %v", i, r.FinalRequestKW)
		}
	}
}

// TestDrawCapTravelsTheWire: an agent with an Eq. (3) coupling limit
// must end up with a schedule honoring it on the coordinator side.
func TestDrawCapTravelsTheWire(t *testing.T) {
	gridSide, vehicleSide := v2i.NewPair(8)
	agent, err := NewAgent(AgentConfig{
		VehicleID:        "capped",
		MaxPowerKW:       60,
		Satisfaction:     core.LogSatisfaction{Weight: 5},
		MaxSectionDrawKW: 2.5,
	}, vehicleSide)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    6,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-5,
	}, map[string]v2i.Transport{"capped": gridSide})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var agentRes AgentResult
	var agentErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		agentRes, agentErr = agent.Run(ctx)
	}()
	report, err := coord.Run(ctx)
	wg.Wait()
	if err != nil || agentErr != nil {
		t.Fatalf("coordinator %v, agent %v", err, agentErr)
	}
	if got := report.Requests["capped"]; got > 6*2.5+1e-9 {
		t.Errorf("total %v exceeds allocatable 15", got)
	}
	for c, a := range agentRes.FinalAllocKW {
		if a > 2.5+1e-9 {
			t.Errorf("section %d draw %v exceeds the wire-carried cap", c, a)
		}
	}
	// The demand is eager (weight 5), so the cap actually binds.
	if got := report.Requests["capped"]; math.Abs(got-15) > 0.1 {
		t.Errorf("total %v; expected the cap to bind near 15", got)
	}
}

func TestCollectHellosRejectsDuplicates(t *testing.T) {
	srv, err := v2i.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	for i := 0; i < 2; i++ {
		go func() {
			link, err := v2i.Dial(ctx, srv.Addr())
			if err != nil {
				return
			}
			env, err := v2i.Seal(v2i.TypeHello, "dup", 1, v2i.Hello{VehicleID: "dup"})
			if err != nil {
				return
			}
			_ = link.Send(ctx, env)
			// Keep the link open until the test finishes.
			_, _ = link.Recv(ctx)
		}()
	}
	if _, err := CollectHellos(ctx, srv, 2, 5*time.Second); err == nil {
		t.Error("duplicate vehicle IDs accepted")
	}
}
