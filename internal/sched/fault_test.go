package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// TestLossyLinksStillConverge wires the coordinator to its agents
// through transports that drop 10% of grid→vehicle frames. With
// retries and skip-unresponsive enabled, the asynchronous dynamics
// must still reach the equilibrium — the Theorem IV.1 convergence only
// needs every OLEV to keep getting turns eventually.
func TestLossyLinksStillConverge(t *testing.T) {
	const n, sections = 6, 8
	links := make(map[string]v2i.Transport, n)
	faulties := make([]*v2i.Faulty, 0, n)
	agents := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		lossy := v2i.NewFaulty(gridSide, v2i.FaultConfig{DropRate: 0.10, Seed: int64(i + 1)})
		faulties = append(faulties, lossy)
		links[id] = lossy
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   70,
			Satisfaction: core.LogSatisfaction{Weight: 1},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:      sections,
		LineCapacityKW:   53.55,
		Cost:             nonlinearSpec(),
		Tolerance:        1e-3,
		MaxRounds:        100,
		RoundTimeout:     100 * time.Millisecond,
		MaxRetries:       5,
		SkipUnresponsive: true,
		Seed:             1,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	agentErrs := make([]error, n)
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			_, agentErrs[i] = a.Run(ctx)
		}(i, a)
	}
	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator failed despite skip-unresponsive: %v", err)
	}
	// Release any agent still blocked on a dropped Bye.
	for _, l := range links {
		_ = l.Close()
	}
	wg.Wait()
	for i, e := range agentErrs {
		if e != nil {
			t.Errorf("agent %d: %v", i, e)
		}
	}

	if !report.Converged {
		t.Errorf("lossy game did not converge in %d rounds", report.Rounds)
	}
	var dropped int
	for _, f := range faulties {
		dropped += f.Dropped()
	}
	if dropped == 0 {
		t.Error("fault injection never fired; test is vacuous")
	}
	if report.Retries == 0 && report.Skipped == 0 {
		t.Error("drops occurred but no retries or skips were recorded")
	}
	if report.TotalPowerKW <= 0 {
		t.Error("no power scheduled")
	}
}

// TestRetriesRecoverWithoutSkip drops a modest fraction and verifies
// retries alone (no skipping) carry the run.
func TestRetriesRecoverWithoutSkip(t *testing.T) {
	const n = 3
	links := make(map[string]v2i.Transport, n)
	agents := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		links[id] = v2i.NewFaulty(gridSide, v2i.FaultConfig{DropRate: 0.05, Seed: int64(i + 7)})
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   50,
			Satisfaction: core.LogSatisfaction{Weight: 1},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    5,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-3,
		MaxRounds:      60,
		RoundTimeout:   100 * time.Millisecond,
		MaxRetries:     8,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, a := range agents {
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			_, _ = a.Run(ctx)
		}(a)
	}
	report, err := coord.Run(ctx)
	for _, l := range links {
		_ = l.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !report.Converged {
		t.Errorf("did not converge in %d rounds", report.Rounds)
	}
}
