package sched

import (
	"testing"

	"olevgrid/internal/v2i"
)

// TestAdmitJoinsSeedsRejoinFromJournal: a vehicle re-joining under an
// ID the journal's last-known-good checkpoint knows must warm-start
// from its journaled allocation; a genuinely new vehicle still enters
// at zero, and a checkpoint for a different roadway (section-count
// mismatch) is ignored.
func TestAdmitJoinsSeedsRejoinFromJournal(t *testing.T) {
	journal := NewMemJournal()
	if err := journal.Save(Checkpoint{
		Epoch:       9,
		Round:       2,
		NumSections: 4,
		Schedule: map[string][]float64{
			"ev-rejoin": {1, 2, 3, 4},
			"ev-a":      {5, 5, 5, 5},
		},
	}); err != nil {
		t.Fatal(err)
	}

	gridSide, _ := v2i.NewPair(4)
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    4,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Journal:        journal,
	}, map[string]v2i.Transport{"ev-a": gridSide})
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := coord.Epoch()

	rejoinSide, _ := v2i.NewPair(4)
	newSide, _ := v2i.NewPair(4)
	if err := coord.Join("ev-rejoin", rejoinSide); err != nil {
		t.Fatal(err)
	}
	if err := coord.Join("ev-new", newSide); err != nil {
		t.Fatal(err)
	}
	var report Report
	added := coord.admitJoins(&report)
	if len(added) != 2 || report.Joined != 2 {
		t.Fatalf("admitted %v (joined=%d), want both pending vehicles", added, report.Joined)
	}

	want := []float64{1, 2, 3, 4}
	for i, v := range coord.schedule["ev-rejoin"] {
		if v != want[i] {
			t.Errorf("rejoin section %d seeded %v, want journaled %v", i, v, want[i])
		}
	}
	for i, v := range coord.schedule["ev-new"] {
		if v != 0 {
			t.Errorf("new vehicle section %d seeded %v, want 0", i, v)
		}
	}
	if coord.Epoch() <= epochBefore {
		t.Error("joins did not advance the epoch")
	}

	// A checkpoint for a different roadway must not leak in.
	other, _ := v2i.NewPair(4)
	coord2, err := NewCoordinator(CoordinatorConfig{
		NumSections:    6, // journal holds 4-section rows
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Journal:        journal,
	}, map[string]v2i.Transport{"ev-b": other})
	if err != nil {
		t.Fatal(err)
	}
	mismatchSide, _ := v2i.NewPair(4)
	if err := coord2.Join("ev-rejoin", mismatchSide); err != nil {
		t.Fatal(err)
	}
	var r2 Report
	coord2.admitJoins(&r2)
	for i, v := range coord2.schedule["ev-rejoin"] {
		if v != 0 {
			t.Errorf("mismatched checkpoint leaked into section %d: %v", i, v)
		}
	}
}
