// Package sched is the decentralized power-scheduling framework of
// Section IV-D, run over real message passing: a smart-grid
// Coordinator that owns the schedule, quotes payment functions and
// water-fills requests, and OLEV Agents that hold their private
// satisfaction functions and best-respond. The in-memory transport
// reproduces the paper's simulation; the TCP transport turns the same
// protocol into an actual distributed system.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/stats"
	"olevgrid/internal/v2i"
)

// BuildCost reconstructs a core.CostFunction from its wire form.
func BuildCost(spec v2i.CostSpec) (core.CostFunction, error) {
	var charging core.CostFunction
	switch spec.Kind {
	case "nonlinear":
		v, err := core.NewQuadraticCharging(spec.BetaPerKWh, spec.Alpha, spec.LineCapacityKW)
		if err != nil {
			return nil, err
		}
		charging = v
	case "linear":
		if spec.BetaPerKWh <= 0 {
			return nil, fmt.Errorf("sched: linear beta %v must be positive", spec.BetaPerKWh)
		}
		charging = core.LinearCharging{Beta: spec.BetaPerKWh}
	default:
		return nil, fmt.Errorf("sched: unknown cost kind %q", spec.Kind)
	}
	if spec.OverloadKappaPerKWh > 0 {
		if spec.OverloadCapacityKW <= 0 {
			return nil, fmt.Errorf("sched: overload capacity %v must be positive", spec.OverloadCapacityKW)
		}
		return core.SectionCost{
			Charging: charging,
			Overload: core.OverloadPenalty{
				Kappa:    spec.OverloadKappaPerKWh,
				Capacity: spec.OverloadCapacityKW,
			},
		}, nil
	}
	return charging, nil
}

// CoordinatorConfig configures the smart-grid side.
type CoordinatorConfig struct {
	// NumSections is C.
	NumSections int
	// LineCapacityKW is P_line per section.
	LineCapacityKW float64
	// Cost is the wire form of the shared section cost; agents price
	// against exactly what the coordinator uses.
	Cost v2i.CostSpec
	// Tolerance declares convergence when no request moves more than
	// this across a full round; zero means 1e-4.
	Tolerance float64
	// MaxRounds bounds the iteration; zero means 200.
	MaxRounds int
	// RoundTimeout bounds each per-vehicle exchange; zero means 5 s.
	RoundTimeout time.Duration
	// MaxRetries re-quotes a vehicle whose exchange timed out — the
	// recovery for lossy V2I links; zero means 2.
	MaxRetries int
	// SkipUnresponsive keeps the round going when a vehicle exhausts
	// its retries, leaving its previous schedule in place, instead of
	// failing the run. The asynchronous dynamics tolerate missed
	// turns (Theorem IV.1 only needs every OLEV to update eventually).
	SkipUnresponsive bool
	// DropDeparted removes a vehicle whose transport has closed —
	// OLEVs leave the charging lane mid-game in any real deployment —
	// zeroing its schedule and letting the remaining fleet re-converge
	// instead of failing the run.
	DropDeparted bool
	// Seed shuffles the per-round update order.
	Seed int64
}

// Report summarizes a coordinator run.
type Report struct {
	// Rounds is the number of full update rounds executed.
	Rounds int
	// Converged reports whether the tolerance was met.
	Converged bool
	// CongestionDegree is the final Σp / ΣP_line.
	CongestionDegree float64
	// WelfareCost is Σ_c Z(P_c), the grid-side part of welfare (the
	// coordinator cannot know satisfactions).
	WelfareCost float64
	// TotalPowerKW is the final scheduled power.
	TotalPowerKW float64
	// Requests is each vehicle's final total, keyed by ID.
	Requests map[string]float64
	// Skipped counts vehicle turns abandoned after retry exhaustion
	// (only non-zero with SkipUnresponsive).
	Skipped int
	// Departed counts vehicles dropped after their transport closed
	// (only non-zero with DropDeparted).
	Departed int
	// Retries counts re-quoted exchanges over the whole run.
	Retries int
}

// Coordinator runs the smart-grid side of the protocol for a fixed
// set of connected vehicles.
type Coordinator struct {
	cfg      CoordinatorConfig
	cost     core.CostFunction
	links    map[string]v2i.Transport
	schedule map[string][]float64
	seq      uint64
	retries  int
}

// NewCoordinator validates the configuration and builds a coordinator.
// links maps vehicle IDs to their established transports; the caller
// owns accepting connections (see ServeTCP for the listener loop).
func NewCoordinator(cfg CoordinatorConfig, links map[string]v2i.Transport) (*Coordinator, error) {
	if cfg.NumSections < 1 {
		return nil, fmt.Errorf("sched: need sections, got %d", cfg.NumSections)
	}
	if cfg.LineCapacityKW <= 0 {
		return nil, fmt.Errorf("sched: line capacity %v must be positive", cfg.LineCapacityKW)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("sched: no vehicles connected")
	}
	cost, err := BuildCost(cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-4
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 5 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	c := &Coordinator{
		cfg:      cfg,
		cost:     cost,
		links:    links,
		schedule: make(map[string][]float64, len(links)),
	}
	for id := range links {
		c.schedule[id] = make([]float64, cfg.NumSections)
	}
	return c, nil
}

// Run drives the asynchronous best-response iteration: each round it
// visits every vehicle in a shuffled order, quotes Ψ_n against the
// frozen others, waits for the vehicle's request, and installs the
// water-filled schedule. It stops when requests settle or MaxRounds
// is reached, then broadcasts Converged and Bye.
func (c *Coordinator) Run(ctx context.Context) (Report, error) {
	rng := stats.NewRand(c.cfg.Seed)
	ids := make([]string, 0, len(c.links))
	for id := range c.links {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	report := Report{Requests: make(map[string]float64, len(ids))}
	for round := 1; round <= c.cfg.MaxRounds; round++ {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		var maxDelta float64
		departed := make(map[string]bool)
		for _, id := range ids {
			delta, err := c.updateWithRetries(ctx, id, round)
			switch {
			case err == nil:
				maxDelta = math.Max(maxDelta, delta)
			case c.cfg.DropDeparted && isDeparture(err) && ctx.Err() == nil:
				// The vehicle left: free its power and let the rest
				// re-converge. The released capacity is a real change,
				// so the round cannot be the converged one.
				departed[id] = true
				if c.removeVehicle(id) > 0 {
					maxDelta = math.Max(maxDelta, c.cfg.Tolerance*2)
				}
				report.Departed++
			case c.cfg.SkipUnresponsive && ctx.Err() == nil:
				report.Skipped++
			default:
				return report, fmt.Errorf("sched: round %d vehicle %s: %w", round, id, err)
			}
		}
		if len(departed) > 0 {
			kept := ids[:0]
			for _, id := range ids {
				if !departed[id] {
					kept = append(kept, id)
				}
			}
			ids = kept
		}
		report.Rounds = round
		if len(ids) == 0 {
			report.Converged = true
			break
		}
		if maxDelta < c.cfg.Tolerance {
			report.Converged = true
			break
		}
		if err := ctx.Err(); err != nil {
			return report, err
		}
	}

	report.Retries = c.retries
	report.CongestionDegree = c.CongestionDegree()
	report.TotalPowerKW = c.totalPower()
	report.WelfareCost = c.welfareCost()
	for id := range c.schedule {
		report.Requests[id] = sum(c.schedule[id])
	}
	c.broadcastDone(ctx, report)
	return report, nil
}

// AddVehicle registers a new vehicle between episodes (a Coordinator
// may Run repeatedly as the fleet on the charging lane turns over).
// It must not be called while Run is executing; the coordinator is
// deliberately single-threaded, like the smart grid it models.
func (c *Coordinator) AddVehicle(id string, link v2i.Transport) error {
	if id == "" {
		return errors.New("sched: vehicle needs an ID")
	}
	if link == nil {
		return errors.New("sched: vehicle needs a transport")
	}
	if _, dup := c.links[id]; dup {
		return fmt.Errorf("sched: vehicle %q already registered", id)
	}
	c.links[id] = link
	c.schedule[id] = make([]float64, c.cfg.NumSections)
	return nil
}

// NumVehicles returns the currently registered fleet size.
func (c *Coordinator) NumVehicles() int { return len(c.links) }

// isDeparture reports whether an exchange failure means the vehicle's
// link is gone for good (as opposed to a transient timeout): a closed
// in-memory pair or a closed/ended TCP connection.
func isDeparture(err error) bool {
	return errors.Is(err, v2i.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed)
}

// removeVehicle zeroes a departed vehicle's schedule and closes its
// link, returning the power it released.
func (c *Coordinator) removeVehicle(id string) float64 {
	released := sum(c.schedule[id])
	delete(c.schedule, id)
	if link, ok := c.links[id]; ok {
		_ = link.Close()
		delete(c.links, id)
	}
	return released
}

// updateWithRetries drives updateOne, re-quoting after timeouts up to
// MaxRetries times. A lost quote, request or schedule frame all look
// the same from here — a timed-out exchange — and a fresh quote
// resynchronizes both sides, because agents answer every quote
// independently.
func (c *Coordinator) updateWithRetries(ctx context.Context, id string, round int) (float64, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries++
		}
		delta, err := c.updateOne(ctx, id, round)
		if err == nil {
			return delta, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the run itself is over; don't burn retries
		}
	}
	return 0, lastErr
}

// updateOne performs one vehicle's quote → request → schedule exchange
// and returns |Δp_n|.
func (c *Coordinator) updateOne(ctx context.Context, id string, round int) (float64, error) {
	link := c.links[id]
	others := c.othersTotals(id)

	rctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
	defer cancel()

	c.seq++
	env, err := v2i.Seal(v2i.TypeQuote, "smart-grid", c.seq, v2i.Quote{
		VehicleID: id, Others: others, Cost: c.cfg.Cost, Round: round,
	})
	if err != nil {
		return 0, err
	}
	if err := link.Send(rctx, env); err != nil {
		return 0, fmt.Errorf("send quote: %w", err)
	}

	reply, err := link.Recv(rctx)
	if err != nil {
		return 0, fmt.Errorf("recv request: %w", err)
	}
	var req v2i.Request
	if err := v2i.Open(reply, v2i.TypeRequest, &req); err != nil {
		return 0, err
	}
	if req.TotalKW < 0 || math.IsNaN(req.TotalKW) || math.IsInf(req.TotalKW, 0) {
		return 0, fmt.Errorf("invalid request %v", req.TotalKW)
	}

	before := sum(c.schedule[id])
	var alloc []float64
	if req.DrawCapKW > 0 {
		alloc, _ = core.PerDrawWaterFill(others, req.DrawCapKW, req.TotalKW)
	} else {
		alloc, _ = core.WaterFill(others, req.TotalKW)
	}
	c.schedule[id] = alloc

	payment := core.Payment(c.costVector(), others, alloc)
	c.seq++
	env, err = v2i.Seal(v2i.TypeSchedule, "smart-grid", c.seq, v2i.ScheduleMsg{
		VehicleID: id, AllocKW: alloc, PaymentH: payment, Round: round,
	})
	if err != nil {
		return 0, err
	}
	if err := link.Send(rctx, env); err != nil {
		return 0, fmt.Errorf("send schedule: %w", err)
	}
	return math.Abs(req.TotalKW - before), nil
}

// broadcastDone tells every agent the game is over. Failures here are
// deliberately ignored: agents also exit on transport close.
func (c *Coordinator) broadcastDone(ctx context.Context, report Report) {
	for _, link := range c.links {
		bctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
		c.seq++
		if env, err := v2i.Seal(v2i.TypeConverged, "smart-grid", c.seq, v2i.Converged{
			Rounds:           report.Rounds,
			CongestionDegree: report.CongestionDegree,
			WelfarePerHour:   -report.WelfareCost,
		}); err == nil {
			_ = link.Send(bctx, env)
		}
		c.seq++
		if env, err := v2i.Seal(v2i.TypeBye, "smart-grid", c.seq, v2i.Bye{Reason: "converged"}); err == nil {
			_ = link.Send(bctx, env)
		}
		cancel()
	}
}

// othersTotals returns P_−n per section.
func (c *Coordinator) othersTotals(id string) []float64 {
	out := make([]float64, c.cfg.NumSections)
	for other, row := range c.schedule {
		if other == id {
			continue
		}
		for i, v := range row {
			out[i] += v
		}
	}
	return out
}

// SectionTotals returns the current P_c vector.
func (c *Coordinator) SectionTotals() []float64 {
	out := make([]float64, c.cfg.NumSections)
	for _, row := range c.schedule {
		for i, v := range row {
			out[i] += v
		}
	}
	return out
}

// CongestionDegree returns Σp / ΣP_line.
func (c *Coordinator) CongestionDegree() float64 {
	return c.totalPower() / (float64(c.cfg.NumSections) * c.cfg.LineCapacityKW)
}

func (c *Coordinator) totalPower() float64 {
	var total float64
	for _, row := range c.schedule {
		total += sum(row)
	}
	return total
}

func (c *Coordinator) welfareCost() float64 {
	var total float64
	for _, pc := range c.SectionTotals() {
		total += c.cost.Cost(pc)
	}
	return total
}

func (c *Coordinator) costVector() []core.CostFunction {
	out := make([]core.CostFunction, c.cfg.NumSections)
	for i := range out {
		out[i] = c.cost
	}
	return out
}

func sum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// CollectHellos accepts one Hello per expected vehicle from a server,
// returning the transports keyed by vehicle ID. It is the listener
// half of a TCP deployment.
func CollectHellos(ctx context.Context, srv *v2i.Server, expect int, timeout time.Duration) (map[string]v2i.Transport, error) {
	if expect < 1 {
		return nil, fmt.Errorf("sched: expect %d vehicles", expect)
	}
	links := make(map[string]v2i.Transport, expect)
	for len(links) < expect {
		t, err := srv.Accept()
		if err != nil {
			closeAll(links)
			return nil, err
		}
		hctx, cancel := context.WithTimeout(ctx, timeout)
		env, err := t.Recv(hctx)
		cancel()
		if err != nil {
			_ = t.Close()
			closeAll(links)
			return nil, fmt.Errorf("sched: hello: %w", err)
		}
		var hello v2i.Hello
		if err := v2i.Open(env, v2i.TypeHello, &hello); err != nil {
			_ = t.Close()
			closeAll(links)
			return nil, err
		}
		if hello.VehicleID == "" {
			_ = t.Close()
			closeAll(links)
			return nil, errors.New("sched: hello without vehicle ID")
		}
		if _, dup := links[hello.VehicleID]; dup {
			_ = t.Close()
			closeAll(links)
			return nil, fmt.Errorf("sched: duplicate vehicle %q", hello.VehicleID)
		}
		links[hello.VehicleID] = t
	}
	return links, nil
}

func closeAll(links map[string]v2i.Transport) {
	for _, t := range links {
		_ = t.Close()
	}
}
