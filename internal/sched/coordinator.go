// Package sched is the decentralized power-scheduling framework of
// Section IV-D, run over real message passing: a smart-grid
// Coordinator that owns the schedule, quotes payment functions and
// water-fills requests, and OLEV Agents that hold their private
// satisfaction functions and best-respond. The in-memory transport
// reproduces the paper's simulation; the TCP transport turns the same
// protocol into an actual distributed system.
//
// The coordinator is hardened for deployment-grade conditions: every
// quote is epoch-stamped so late, duplicated, or reordered
// best-responses computed against an outdated background load are
// detected and discarded rather than water-filled; retries back off
// exponentially with jitter under a per-exchange deadline; vehicles
// may join and leave mid-iteration; and a checkpoint journal lets a
// restarted coordinator resume from the last converged schedule. See
// DESIGN.md's "Failure model" section for how each mechanism maps to
// a Theorem IV.1 assumption.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/stats"
	"olevgrid/internal/v2i"
)

// BuildCost reconstructs a core.CostFunction from its wire form.
func BuildCost(spec v2i.CostSpec) (core.CostFunction, error) {
	var charging core.CostFunction
	switch spec.Kind {
	case "nonlinear":
		v, err := core.NewQuadraticCharging(spec.BetaPerKWh, spec.Alpha, spec.LineCapacityKW)
		if err != nil {
			return nil, err
		}
		charging = v
	case "linear":
		if spec.BetaPerKWh <= 0 {
			return nil, fmt.Errorf("sched: linear beta %v must be positive", spec.BetaPerKWh)
		}
		charging = core.LinearCharging{Beta: spec.BetaPerKWh}
	default:
		return nil, fmt.Errorf("sched: unknown cost kind %q", spec.Kind)
	}
	if spec.OverloadKappaPerKWh > 0 {
		if spec.OverloadCapacityKW <= 0 {
			return nil, fmt.Errorf("sched: overload capacity %v must be positive", spec.OverloadCapacityKW)
		}
		return core.SectionCost{
			Charging: charging,
			Overload: core.OverloadPenalty{
				Kappa:    spec.OverloadKappaPerKWh,
				Capacity: spec.OverloadCapacityKW,
			},
		}, nil
	}
	return charging, nil
}

// CoordinatorConfig configures the smart-grid side.
type CoordinatorConfig struct {
	// NumSections is C.
	NumSections int
	// LineCapacityKW is P_line per section.
	LineCapacityKW float64
	// Cost is the wire form of the shared section cost; agents price
	// against exactly what the coordinator uses.
	Cost v2i.CostSpec
	// Tolerance declares convergence when no request moves more than
	// this across a full round; zero means 1e-4.
	Tolerance float64
	// MaxRounds bounds the iteration; zero means 200.
	MaxRounds int
	// RoundTimeout bounds each per-vehicle exchange attempt; zero
	// means 5 s.
	RoundTimeout time.Duration
	// MaxRetries re-quotes a vehicle whose exchange timed out — the
	// recovery for lossy V2I links; zero means 2.
	MaxRetries int
	// RetryBackoff is the base delay of the exponential backoff
	// between re-quote attempts; the n-th retry waits roughly
	// RetryBackoff·2^(n-1) with jitter. Zero means 10 ms.
	RetryBackoff time.Duration
	// ExchangeDeadline bounds one vehicle's whole turn, attempts and
	// backoff together, so a single black-holed link cannot stall a
	// round indefinitely. Zero derives it from RoundTimeout,
	// MaxRetries, and RetryBackoff.
	ExchangeDeadline time.Duration
	// SkipUnresponsive keeps the round going when a vehicle exhausts
	// its retries, leaving its previous schedule in place, instead of
	// failing the run. The asynchronous dynamics tolerate missed
	// turns (Theorem IV.1 only needs every OLEV to update eventually).
	SkipUnresponsive bool
	// EvictAfter is the per-vehicle circuit breaker: after this many
	// consecutive failed turns the vehicle is treated as gone — its
	// allocation is released and the fleet re-converges without it.
	// Zero disables eviction. A positive EvictAfter implies skipping
	// failed turns until the breaker trips.
	EvictAfter int
	// DropDeparted removes a vehicle whose transport has closed or
	// that sent Bye — OLEVs leave the charging lane mid-game in any
	// real deployment — zeroing its schedule and letting the remaining
	// fleet re-converge instead of failing the run.
	DropDeparted bool
	// Journal, when set, persists the last converged schedule. A new
	// coordinator warm-starts from it, and a run that exhausts
	// MaxRounds without converging degrades to the journaled
	// last-known-good schedule instead of keeping a half-settled one.
	Journal Journal
	// Feed, when set, re-samples the charging price coefficient once
	// per round (the paper's volatile LBMP, Section III): a changed β
	// rebuilds the shared cost and advances the epoch so stale
	// best-responses are filtered. A sample the feed reports as
	// unusable (stale beyond its ceiling) holds the last applied β.
	Feed PriceFeed
	// Outages scripts charging-section failures and restorations by
	// round. A dying section's allocation mass is re-projected evenly
	// onto the survivors (the warm-start idiom), quotes flag the
	// dead sections, and the overload penalty Z keeps guarding ηP_line
	// on what remains. Empty means no outages.
	Outages []SectionOutage
	// Lease, when set, is renewed at the top of every round; a refused
	// renewal ends the run with ErrLeaseLost — another incarnation has
	// taken over and this one must stop quoting rather than
	// split-brain the schedule.
	Lease Lease
	// LeaseTTL is the term of each renewal; zero means 1 s.
	LeaseTTL time.Duration
	// InstanceID names this coordinator in lease records; empty means
	// "primary".
	InstanceID string
	// HeartbeatEvery broadcasts a liveness beacon every that many
	// rounds, letting agents distinguish "alive but busy elsewhere"
	// from "control plane gone". Zero disables heartbeats.
	HeartbeatEvery int
	// CheckpointEvery journals a progress checkpoint every that many
	// rounds (in addition to the converged checkpoint), giving a
	// standby a recent warm-start after a mid-session crash. Zero
	// journals only on convergence, the pre-failover behavior.
	CheckpointEvery int
	// ShutdownGrace bounds Close's drain of in-flight sessions; zero
	// means 1 s.
	ShutdownGrace time.Duration
	// OnRound, when set, is called at the top of every round before any
	// frame goes out — the crash-injection point for failover tests.
	OnRound func(round int)
	// Parallelism is the number of vehicles quoted concurrently within
	// a round. 0 or 1 preserves the strictly sequential Gauss–Seidel
	// protocol (the Theorem IV.1 setting, and the exact pre-batching
	// behavior). Larger values overlap V2I round trips: each batch is
	// quoted against the same frozen background load and collected
	// concurrently, then the requests are water-filled in stable batch
	// order — a speculative Jacobi block, mirroring core.RunParallel.
	// The coordinator cannot evaluate the welfare guard (satisfactions
	// are private to the vehicles), so instead any batched round that
	// fails to shrink the movement bound degrades the next round to
	// sequential; sequential rounds are monotone by Theorem IV.1, which
	// rules out sustained Jacobi cycling.
	Parallelism int
	// Seed shuffles the per-round update order and drives retry
	// jitter.
	Seed int64
	// Metrics, if non-nil, receives control-plane telemetry (rounds,
	// quote/propose spans, retry/stale/fault accounting, the fencing
	// epoch). Share one bundle across a session's incarnations —
	// primary, standby, resumed coordinator — and the counters stay
	// cumulative with no double counting across failover; the chaos
	// conformance suite runs with it armed under -race. Nil is the
	// zero-overhead off switch.
	Metrics *Metrics
}

// Report summarizes a coordinator run.
type Report struct {
	// Rounds is the number of full update rounds executed.
	Rounds int
	// Converged reports whether the tolerance was met.
	Converged bool
	// CongestionDegree is the final Σp / ΣP_line.
	CongestionDegree float64
	// WelfareCost is Σ_c Z(P_c), the grid-side part of welfare (the
	// coordinator cannot know satisfactions).
	WelfareCost float64
	// TotalPowerKW is the final scheduled power.
	TotalPowerKW float64
	// Requests is each vehicle's final total, keyed by ID.
	Requests map[string]float64
	// Skipped counts vehicle turns abandoned after retry exhaustion.
	Skipped int
	// Departed counts vehicles dropped after their transport closed or
	// they sent Bye (only non-zero with DropDeparted).
	Departed int
	// Evicted counts vehicles removed by the circuit breaker after
	// EvictAfter consecutive failed turns.
	Evicted int
	// Joined counts vehicles admitted mid-iteration via Join.
	Joined int
	// Retries counts re-quoted exchanges over the whole run.
	Retries int
	// StaleDropped counts frames the coordinator discarded instead of
	// acting on: replayed/duplicated frames (non-monotonic sequence
	// numbers) and best-responses to outdated quotes (epoch mismatch).
	StaleDropped int
	// FellBack reports that the run exhausted MaxRounds and the
	// schedule was restored from the journaled last-known-good
	// checkpoint.
	FellBack bool
	// CheckpointSaved reports that the converged schedule was
	// journaled.
	CheckpointSaved bool
	// DegradedRounds counts rounds the batching fallback forced to run
	// sequentially after a batched round made no progress (only
	// non-zero with Parallelism > 1).
	DegradedRounds int
	// FinalEpoch is the schedule version at the end of the run.
	FinalEpoch uint64
	// Schedule is each vehicle's final per-section allocation — what
	// the failover differential suite compares across incarnations.
	Schedule map[string][]float64
	// FeedChanges counts rounds where the price feed moved β;
	// FeedHeld counts rounds where the feed was unusable and the last
	// applied β was held.
	FeedChanges int
	FeedHeld    int
	// OutagesApplied and RestoresApplied count section events fired.
	OutagesApplied  int
	RestoresApplied int
	// LiveSections is the number of energized sections at the end.
	LiveSections int
}

// PriceFeed supplies the per-round charging price coefficient in
// $/kWh. ok=false means the feed is unusable (dark past its staleness
// ceiling) and the coordinator holds the last applied β.
// *grid.LBMPFeed satisfies this shape given a $/kWh source.
type PriceFeed interface {
	Sample(step int) (betaPerKWh float64, ok bool)
}

// SectionOutage scripts one charging section's failure and optional
// restoration, by round number (1-based, matching Report.Rounds).
type SectionOutage struct {
	// Section is the dying section's index.
	Section int
	// DownRound is the round at whose top the section dies.
	DownRound int
	// UpRound is the round at whose top it is restored; zero means
	// never.
	UpRound int
}

// Coordinator runs the smart-grid side of the protocol for a dynamic
// set of connected vehicles.
type Coordinator struct {
	cfg      CoordinatorConfig
	cost     core.CostFunction
	links    map[string]v2i.Transport
	schedule map[string][]float64

	// epoch is the schedule version: it advances on every install,
	// join, departure, and eviction, so any quote stamped with an
	// older epoch is known to describe a background load that no
	// longer exists.
	epoch uint64
	// lastSeq is the highest envelope sequence number accepted per
	// vehicle; frames at or below it are replays.
	lastSeq map[string]uint64
	// consecFails drives the per-vehicle circuit breaker.
	consecFails map[string]int

	// live flags which sections are energized; scripted outages clear
	// entries and restorations set them. Only Run's goroutine writes
	// it, at the top of a round.
	live []bool

	// sentRow caches, per vehicle, a copy of the schedule row the
	// vehicle last acknowledged (i.e. the row carried by its last
	// accepted ScheduleMsg). A batched quote elides the vehicle's own
	// row only while the cached copy is bit-identical to the live row;
	// any divergence (outage zeroing, checkpoint restore) forces the
	// row back onto the wire. Guarded by mu: installRequest writes it
	// from Run's goroutine while batch collection goroutines read it.
	sentRow map[string][]float64

	joins    chan pendingJoin
	rng      *rand.Rand
	seq      uint64
	retries  int
	stale    int
	restored bool

	feedChanges     int
	feedHeld        int
	outagesApplied  int
	restoresApplied int
	lastRound       int

	closeOnce sync.Once
	// closed flips when Close runs; a closed coordinator refuses to
	// Run again instead of quoting over dead links.
	closed atomic.Bool
	// deposed flips when a lease renewal is refused: another
	// incarnation owns the session now, so this one's Close must stand
	// down quietly — no Bye storm, no stale checkpoint clobbering the
	// new primary's journal, and the links (which the new primary
	// inherited) stay open.
	deposed atomic.Bool

	// mu guards the session state shared with concurrent batch
	// collection goroutines: seq, lastSeq, stale, retries, and rng.
	// The schedule and epoch are only ever touched from Run's
	// goroutine, between batches.
	mu sync.Mutex
}

// NewCoordinator validates the configuration and builds a coordinator.
// links maps vehicle IDs to their established transports; the caller
// owns accepting connections (see ServeTCP for the listener loop). If
// the configured Journal holds a compatible checkpoint, the schedule
// warm-starts from it.
func NewCoordinator(cfg CoordinatorConfig, links map[string]v2i.Transport) (*Coordinator, error) {
	if cfg.NumSections < 1 {
		return nil, fmt.Errorf("sched: need sections, got %d", cfg.NumSections)
	}
	if cfg.LineCapacityKW <= 0 {
		return nil, fmt.Errorf("sched: line capacity %v must be positive", cfg.LineCapacityKW)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("sched: no vehicles connected")
	}
	cost, err := BuildCost(cfg.Cost)
	if err != nil {
		return nil, err
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-4
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 200
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 5 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.ExchangeDeadline <= 0 {
		attempts := time.Duration(cfg.MaxRetries + 1)
		cfg.ExchangeDeadline = attempts*cfg.RoundTimeout + attempts*maxBackoffStep*cfg.RetryBackoff
	}
	for _, o := range cfg.Outages {
		if o.Section < 0 || o.Section >= cfg.NumSections {
			return nil, fmt.Errorf("sched: outage section %d outside [0, %d)", o.Section, cfg.NumSections)
		}
		if o.DownRound < 1 {
			return nil, fmt.Errorf("sched: outage down round %d must be >= 1", o.DownRound)
		}
		if o.UpRound != 0 && o.UpRound <= o.DownRound {
			return nil, fmt.Errorf("sched: outage up round %d not after down round %d", o.UpRound, o.DownRound)
		}
	}
	c := &Coordinator{
		cfg:         cfg,
		cost:        cost,
		links:       links,
		schedule:    make(map[string][]float64, len(links)),
		epoch:       1,
		lastSeq:     make(map[string]uint64, len(links)),
		consecFails: make(map[string]int, len(links)),
		sentRow:     make(map[string][]float64, len(links)),
		joins:       make(chan pendingJoin, joinQueueDepth),
		rng:         stats.NewRand(cfg.Seed),
		live:        make([]bool, cfg.NumSections),
	}
	for i := range c.live {
		c.live[i] = true
	}
	for id := range links {
		c.schedule[id] = make([]float64, cfg.NumSections)
	}
	if cfg.Journal != nil {
		if cp, ok, err := cfg.Journal.Load(); err == nil && ok && c.restoreCheckpoint(cp) {
			c.restored = true
		}
	}
	return c, nil
}

// Restored reports whether construction warm-started the schedule
// from a journaled checkpoint.
func (c *Coordinator) Restored() bool { return c.restored }

// Close drains the session and tears down every vehicle link. Call it
// once the session is over (after the final Run). In-flight agents are
// not dropped cold: each link first gets a best-effort Bye, sent
// concurrently under the ShutdownGrace budget, so a vehicle blocked in
// Recv exits through the protocol instead of a connection reset; then
// a final checkpoint is journaled (the durable state a standby or
// restart warm-starts from); only then do the links close — the one
// end-of-session signal a lossy network cannot swallow. Close is
// idempotent and safe to call concurrently — later callers block until
// the first Close finishes, then return — and a closed coordinator
// refuses to Run again. A deposed coordinator (one whose lease renewal
// was refused, ErrLeaseLost) closes to a no-op: the links now belong
// to the incarnation that won the lease, and journaling this loser's
// stale schedule would overwrite the winner's newer checkpoint.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		if c.deposed.Load() {
			return
		}
		grace := c.cfg.ShutdownGrace
		if grace <= 0 {
			grace = time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		var wg sync.WaitGroup
		for _, link := range c.links {
			seq := c.nextSeq()
			wg.Add(1)
			go func(link v2i.Transport, seq uint64) {
				defer wg.Done()
				_ = v2i.SendMsg(ctx, link, v2i.TypeBye, "smart-grid", seq, &v2i.Bye{Reason: "shutdown"})
			}(link, seq)
		}
		wg.Wait()
		cancel()
		c.saveCheckpoint(c.lastRound)
		for _, link := range c.links {
			_ = link.Close()
		}
	})
	return nil
}

// Epoch returns the current schedule version.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Run drives the asynchronous best-response iteration: each round it
// admits pending joins, visits every vehicle in a shuffled order,
// quotes Ψ_n against the frozen others, waits for a fresh (current
// epoch, monotonic sequence) request, and installs the water-filled
// schedule. It stops when requests settle or MaxRounds is reached,
// then broadcasts Converged and Bye.
func (c *Coordinator) Run(ctx context.Context) (Report, error) {
	if c.closed.Load() {
		return Report{}, errors.New("sched: coordinator is closed")
	}
	ids := make([]string, 0, len(c.links))
	for id := range c.links {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	report := Report{Requests: make(map[string]float64, len(ids))}
	prevDelta := math.Inf(1)
	sequentialNext := false
	for round := 1; round <= c.cfg.MaxRounds; round++ {
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(round)
		}
		if err := c.renewLease(); err != nil {
			return report, err
		}
		// Exogenous events fire at the top of the round, before any
		// quote goes out, so the whole round prices one consistent
		// world: the sampled β and the live-section mask.
		perturbed := c.applyFeed(round)
		if c.applyOutages(round) {
			perturbed = true
		}
		c.heartbeat(ctx, round)
		ids = append(ids, c.admitJoins(&report)...)
		c.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		var maxDelta float64
		roundSkipped := 0
		removed := make(map[string]bool)

		// handleTurn folds one vehicle's turn outcome into the round.
		// A non-nil return is a terminal run error.
		handleTurn := func(id string, delta float64, err error) error {
			switch {
			case err == nil:
				c.consecFails[id] = 0
				maxDelta = math.Max(maxDelta, delta)
			case c.cfg.DropDeparted && isDeparture(err) && ctx.Err() == nil:
				// The vehicle left: free its power and let the rest
				// re-converge. The released capacity is a real change,
				// so the round cannot be the converged one.
				removed[id] = true
				if c.removeVehicle(id) > 0 {
					maxDelta = math.Max(maxDelta, c.cfg.Tolerance*2)
				}
				report.Departed++
				if m := c.cfg.Metrics; m != nil {
					m.Departed.Inc()
				}
			case c.breakerTrips(id) && ctx.Err() == nil:
				// Circuit breaker: the vehicle has failed EvictAfter
				// consecutive turns; treat it as gone so its stranded
				// allocation stops distorting everyone else's price.
				c.sayBye(ctx, id, "evicted")
				removed[id] = true
				if c.removeVehicle(id) > 0 {
					maxDelta = math.Max(maxDelta, c.cfg.Tolerance*2)
				}
				report.Evicted++
				if m := c.cfg.Metrics; m != nil {
					m.Evicted.Inc()
				}
			case (c.cfg.SkipUnresponsive || c.cfg.EvictAfter > 0) && ctx.Err() == nil:
				c.consecFails[id]++
				report.Skipped++
				roundSkipped++
				if m := c.cfg.Metrics; m != nil {
					m.Skipped.Inc()
				}
			default:
				return fmt.Errorf("sched: round %d vehicle %s: %w", round, id, err)
			}
			return nil
		}

		batch := c.cfg.Parallelism
		if batch > len(ids) {
			batch = len(ids)
		}
		if sequentialNext && batch > 1 {
			batch = 1
			report.DegradedRounds++
			if m := c.cfg.Metrics; m != nil {
				m.Degraded.Inc()
			}
		}
		if batch > 1 {
			if err := c.runBatchedRound(ctx, ids, round, batch, handleTurn); err != nil {
				return report, err
			}
		} else {
			for _, id := range ids {
				delta, err := c.updateWithRetries(ctx, id, round)
				if herr := handleTurn(id, delta, err); herr != nil {
					return report, herr
				}
			}
		}
		// A batched round is a speculative Jacobi sweep with no welfare
		// guard (satisfactions are private), so a round that fails to
		// shrink the movement bound degrades the next one to the
		// sequential dynamics, whose monotonicity Theorem IV.1
		// guarantees. Sequential rounds always make strict progress off
		// equilibrium, so cycling cannot be sustained.
		sequentialNext = c.cfg.Parallelism > 1 && batch > 1 &&
			maxDelta >= c.cfg.Tolerance && maxDelta >= prevDelta
		prevDelta = maxDelta
		if len(removed) > 0 {
			kept := ids[:0]
			for _, id := range ids {
				if !removed[id] {
					kept = append(kept, id)
				}
			}
			ids = kept
		}
		report.Rounds = round
		c.lastRound = round
		c.cfg.Metrics.observeRound(round, c.epoch, maxDelta, c.liveCount())
		if len(ids) == 0 {
			report.Converged = true
			break
		}
		// A skipped vehicle's best response is unknown, so a round with
		// skips cannot be the converged one — only a full clean round
		// with no movement settles the game. A vehicle waiting to join
		// also blocks convergence: it enters next round and perturbs
		// the schedule. Likewise a round where β moved or a section
		// event fired, and any round while scripted events are still
		// pending — the game they would perturb has not happened yet.
		if maxDelta < c.cfg.Tolerance && roundSkipped == 0 && len(c.joins) == 0 &&
			!perturbed && !c.eventsPending(round) {
			report.Converged = true
			break
		}
		if c.cfg.CheckpointEvery > 0 && round%c.cfg.CheckpointEvery == 0 {
			c.saveCheckpoint(round)
		}
		if err := ctx.Err(); err != nil {
			return report, err
		}
	}

	if report.Converged {
		report.CheckpointSaved = c.saveCheckpoint(report.Rounds)
	} else if c.fallBackToLastGood() {
		report.FellBack = true
	}
	report.Retries = c.retries
	report.StaleDropped = c.stale
	report.FinalEpoch = c.epoch
	report.CongestionDegree = c.CongestionDegree()
	report.TotalPowerKW = c.totalPower()
	report.WelfareCost = c.welfareCost()
	report.FeedChanges = c.feedChanges
	report.FeedHeld = c.feedHeld
	report.OutagesApplied = c.outagesApplied
	report.RestoresApplied = c.restoresApplied
	report.LiveSections = c.liveCount()
	report.Schedule = make(map[string][]float64, len(c.schedule))
	for id, row := range c.schedule {
		report.Requests[id] = sum(row)
		r := make([]float64, len(row))
		copy(r, row)
		report.Schedule[id] = r
	}
	c.broadcastDone(ctx, report)
	return report, nil
}

// renewLease extends this incarnation's lease for the round; a refused
// renewal means another incarnation won the election and this one must
// stop quoting immediately.
func (c *Coordinator) renewLease() error {
	if c.cfg.Lease == nil {
		return nil
	}
	ttl := c.cfg.LeaseTTL
	if ttl <= 0 {
		ttl = time.Second
	}
	id := c.cfg.InstanceID
	if id == "" {
		id = "primary"
	}
	ok, err := c.cfg.Lease.Renew(id, c.epoch, ttl, time.Now())
	if err != nil {
		return fmt.Errorf("sched: renew lease: %w", err)
	}
	if !ok {
		c.deposed.Store(true)
		return ErrLeaseLost
	}
	return nil
}

// applyFeed samples the price feed for the round and, when β moved,
// rebuilds the shared cost and advances the epoch. Returns whether β
// changed.
func (c *Coordinator) applyFeed(round int) bool {
	if c.cfg.Feed == nil {
		return false
	}
	beta, ok := c.cfg.Feed.Sample(round)
	if !ok {
		c.feedHeld++
		if m := c.cfg.Metrics; m != nil {
			m.FeedHeld.Inc()
		}
		return false
	}
	if beta == c.cfg.Cost.BetaPerKWh {
		return false
	}
	spec := c.cfg.Cost
	spec.BetaPerKWh = beta
	cost, err := BuildCost(spec)
	if err != nil {
		// An unusable sample (e.g. non-positive β) degrades to holding
		// the last applied price, same as a stale feed.
		c.feedHeld++
		if m := c.cfg.Metrics; m != nil {
			m.FeedHeld.Inc()
		}
		return false
	}
	c.cfg.Cost = spec
	c.cost = cost
	c.epoch++ // every outstanding quote priced a β that no longer exists
	c.feedChanges++
	if m := c.cfg.Metrics; m != nil {
		m.FeedChanges.Inc()
	}
	return true
}

// applyOutages fires the section events scheduled for this round.
// Returns whether any fired.
func (c *Coordinator) applyOutages(round int) bool {
	fired := false
	for _, o := range c.cfg.Outages {
		if o.DownRound == round && c.live[o.Section] {
			c.killSection(o.Section)
			c.outagesApplied++
			c.cfg.Metrics.observeOutage(o.Section, round, c.epoch, false)
			fired = true
		}
		if o.UpRound == round && !c.live[o.Section] {
			c.live[o.Section] = true
			c.epoch++
			c.restoresApplied++
			c.cfg.Metrics.observeOutage(o.Section, round, c.epoch, true)
			fired = true
		}
	}
	return fired
}

// killSection de-energizes a section and re-projects its allocation
// mass evenly onto the survivors — the warm-start idiom: the totals
// are still an excellent guess for each vehicle's demand, and the next
// best response re-imposes exact feasibility. The overload penalty Z
// keeps guarding ηP_line on the surviving sections because quotes and
// water-fills now run over the compacted live vector.
func (c *Coordinator) killSection(sec int) {
	c.live[sec] = false
	nLive := c.liveCount()
	for _, row := range c.schedule {
		mass := row[sec]
		row[sec] = 0
		if mass <= 0 || nLive == 0 {
			continue
		}
		share := mass / float64(nLive)
		for ci, ok := range c.live {
			if ok {
				row[ci] += share
			}
		}
	}
	c.epoch++
}

// eventsPending reports whether any scripted section event is still in
// the future: the run must not settle before the world is done
// changing.
func (c *Coordinator) eventsPending(round int) bool {
	for _, o := range c.cfg.Outages {
		if o.DownRound > round || o.UpRound > round {
			return true
		}
	}
	return false
}

// heartbeat broadcasts the liveness beacon when the round is due one.
// Best-effort: a lost heartbeat costs an agent at most one degraded
// episode, which the next quote repairs.
func (c *Coordinator) heartbeat(ctx context.Context, round int) {
	if c.cfg.HeartbeatEvery <= 0 || round%c.cfg.HeartbeatEvery != 0 {
		return
	}
	for _, link := range c.links {
		hctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
		_ = v2i.SendMsg(hctx, link, v2i.TypeHeartbeat, "smart-grid", c.nextSeq(), &v2i.Heartbeat{
			Epoch: c.epoch, Round: round,
		})
		cancel()
	}
}

// liveCount returns the number of energized sections.
func (c *Coordinator) liveCount() int {
	n := 0
	for _, ok := range c.live {
		if ok {
			n++
		}
	}
	return n
}

// liveIndices returns the energized sections' indices, or nil when all
// sections are live (the fast path: no compaction needed).
func (c *Coordinator) liveIndices() []int {
	if c.liveCount() == len(c.live) {
		return nil
	}
	idx := make([]int, 0, len(c.live))
	for i, ok := range c.live {
		if ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// compactTo gathers vs at the given indices.
func compactTo(vs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = vs[j]
	}
	return out
}

// scatterFrom spreads a compacted vector back to full width, zeroes
// elsewhere.
func scatterFrom(vs []float64, idx []int, width int) []float64 {
	out := make([]float64, width)
	for i, j := range idx {
		out[j] = vs[i]
	}
	return out
}

// isDeparture reports whether an exchange failure means the vehicle's
// link is gone for good (as opposed to a transient timeout): a closed
// in-memory pair, a closed/ended TCP connection, or an explicit Bye.
func isDeparture(err error) bool {
	return errors.Is(err, v2i.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, errVehicleLeft)
}

// errVehicleLeft marks a Bye received where a Request was expected.
var errVehicleLeft = errors.New("sched: vehicle sent bye")

// errOwnDesync marks a batch answer whose echoed own-row checksum does
// not bit-match the coordinator's row: the vehicle best-responded
// against the wrong own allocation. Retryable — the cached row is
// invalidated, so the re-quote carries the row explicitly.
var errOwnDesync = errors.New("sched: batch answer computed on desynced own row")

// breakerTrips reports whether this failed turn is the vehicle's
// EvictAfter-th consecutive failure.
func (c *Coordinator) breakerTrips(id string) bool {
	return c.cfg.EvictAfter > 0 && c.consecFails[id]+1 >= c.cfg.EvictAfter
}

// removeVehicle zeroes a departed vehicle's schedule, forgets its
// session state, and closes its link, returning the power it released.
// Releasing power changes every other vehicle's background load, so
// the epoch advances.
func (c *Coordinator) removeVehicle(id string) float64 {
	released := sum(c.schedule[id])
	delete(c.schedule, id)
	delete(c.lastSeq, id)
	delete(c.consecFails, id)
	c.mu.Lock()
	delete(c.sentRow, id)
	c.mu.Unlock()
	if link, ok := c.links[id]; ok {
		_ = link.Close()
		delete(c.links, id)
	}
	c.epoch++
	return released
}

// sayBye sends a best-effort Bye before an eviction so a live but
// unlucky agent exits cleanly instead of blocking on Recv forever.
func (c *Coordinator) sayBye(ctx context.Context, id, reason string) {
	link, ok := c.links[id]
	if !ok {
		return
	}
	bctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
	defer cancel()
	_ = v2i.SendMsg(bctx, link, v2i.TypeBye, "smart-grid", c.nextSeq(), &v2i.Bye{Reason: reason})
}

// maxBackoffStep caps the exponential backoff at 2^maxBackoffStep
// times the base delay.
const maxBackoffStep = 5

// updateWithRetries drives updateOne, re-quoting after timeouts with
// exponential backoff and jitter, bounded by both MaxRetries and the
// per-vehicle ExchangeDeadline. A lost quote, request or schedule
// frame all look the same from here — a timed-out exchange — and a
// fresh quote resynchronizes both sides, because agents answer every
// quote independently and stale answers are filtered by epoch.
func (c *Coordinator) updateWithRetries(ctx context.Context, id string, round int) (float64, error) {
	deadline := time.Now().Add(c.cfg.ExchangeDeadline)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.countRetry()
			if err := c.backoff(ctx, attempt); err != nil {
				break
			}
			if time.Now().After(deadline) {
				break
			}
		}
		delta, err := c.updateOne(ctx, id, round)
		if err == nil {
			return delta, nil
		}
		lastErr = err
		if ctx.Err() != nil || isDeparture(err) {
			break // the run is over or the vehicle is gone; don't burn retries
		}
	}
	return 0, lastErr
}

// collectWithRetries is the retry loop around the network half of an
// exchange, used by the batched rounds; the install half runs later on
// Run's goroutine. Retry structure mirrors updateWithRetries.
func (c *Coordinator) collectWithRetries(ctx context.Context, id string, round int, others, totals []float64, epoch uint64) (v2i.Request, error) {
	deadline := time.Now().Add(c.cfg.ExchangeDeadline)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.countRetry()
			if err := c.backoff(ctx, attempt); err != nil {
				break
			}
			if time.Now().After(deadline) {
				break
			}
		}
		req, err := c.collectRequest(ctx, id, round, others, totals, epoch)
		if err == nil {
			return req, nil
		}
		lastErr = err
		if ctx.Err() != nil || isDeparture(err) {
			break
		}
	}
	return v2i.Request{}, lastErr
}

func (c *Coordinator) countRetry() {
	c.mu.Lock()
	c.retries++
	c.mu.Unlock()
	if m := c.cfg.Metrics; m != nil {
		m.Retries.Inc()
	}
}

// runBatchedRound visits the fleet in blocks of batch vehicles: each
// block's quotes go out against the same frozen background load and
// the requests are collected concurrently — overlapping the V2I round
// trips that dominate a distributed round — then water-filled in
// stable block order on this goroutine. Only the collection phase runs
// concurrently; every schedule/epoch mutation stays on Run's
// goroutine, between blocks.
func (c *Coordinator) runBatchedRound(ctx context.Context, ids []string, round, batch int, handleTurn func(string, float64, error) error) error {
	reqs := make([]v2i.Request, batch)
	errs := make([]error, batch)
	others := make([][]float64, batch)
	for lo := 0; lo < len(ids); lo += batch {
		hi := lo + batch
		if hi > len(ids) {
			hi = len(ids)
		}
		group := ids[lo:hi]
		epoch := c.epoch
		// One totals vector serves the whole block: every quote in it is
		// against the same frozen background load, and on the binary
		// wire the block shares the identical Totals payload.
		totals := c.totalsVec()
		var wg sync.WaitGroup
		for i, id := range group {
			others[i] = othersFrom(totals, c.schedule[id])
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				reqs[i], errs[i] = c.collectWithRetries(ctx, id, round, others[i], totals, epoch)
			}(i, id)
		}
		wg.Wait()
		for i, id := range group {
			delta, err := 0.0, errs[i]
			if err == nil {
				delta, err = c.installRequest(ctx, id, round, others[i], reqs[i])
			}
			if herr := handleTurn(id, delta, err); herr != nil {
				return herr
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// backoff sleeps RetryBackoff·2^(attempt−1) with jitter in the upper
// half of the interval, so re-quotes from many stressed links spread
// out instead of synchronizing.
func (c *Coordinator) backoff(ctx context.Context, attempt int) error {
	shift := attempt - 1
	if shift > maxBackoffStep {
		shift = maxBackoffStep
	}
	ceil := c.cfg.RetryBackoff << shift
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(ceil/2) + 1))
	c.mu.Unlock()
	d := ceil/2 + jitter
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// updateOne performs one vehicle's quote → request → schedule exchange
// and returns |Δp_n|: the sequential composition of the network half
// (collectRequest) and the scheduling half (installRequest).
func (c *Coordinator) updateOne(ctx context.Context, id string, round int) (float64, error) {
	totals := c.totalsVec()
	others := othersFrom(totals, c.schedule[id])
	req, err := c.collectRequest(ctx, id, round, others, totals, c.epoch)
	if err != nil {
		return 0, err
	}
	return c.installRequest(ctx, id, round, others, req)
}

// collectRequest is the network half of an exchange: quote Ψ_n against
// the given background load, then wait for a fresh answer. The receive
// side filters the realities of a lossy link: replayed frames
// (sequence number at or below the last accepted one) and
// best-responses to an outdated quote (epoch mismatch) are counted and
// discarded, never water-filled. It never touches the schedule (only
// the mu-guarded sentRow cache), so batched rounds run it concurrently
// for several vehicles.
//
// When totals is non-nil and the link negotiated the binary wire, the
// quote goes out as a QuoteBatch: the shared section totals instead of
// a per-vehicle background vector, with the vehicle's own row elided
// whenever the sentRow cache proves the vehicle already holds it bit
// for bit. The agent reconstructs others = totals − own locally and
// echoes a checksum of the own row it used; a checksum mismatch
// invalidates the cache and retries with the row inlined.
func (c *Coordinator) collectRequest(ctx context.Context, id string, round int, others, totals []float64, epoch uint64) (v2i.Request, error) {
	link := c.links[id]
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
	defer cancel()

	var liveMask []bool
	if c.liveCount() != len(c.live) {
		liveMask = append([]bool(nil), c.live...)
	}
	batched := totals != nil && v2i.WireOf(link) == v2i.WireBinary
	if batched {
		row := c.schedule[id]
		var own []float64
		if !c.rowInSync(id, row) {
			own = append([]float64(nil), row...)
		}
		err := v2i.SendMsg(rctx, link, v2i.TypeQuoteBatch, "smart-grid", c.nextSeq(), &v2i.QuoteBatch{
			Round: round, Epoch: epoch, FleetSize: len(c.schedule),
			Cost: c.cfg.Cost, Live: liveMask, Totals: totals, Own: own,
		})
		if err != nil {
			return v2i.Request{}, fmt.Errorf("send quote: %w", err)
		}
	} else {
		err := v2i.SendMsg(rctx, link, v2i.TypeQuote, "smart-grid", c.nextSeq(), &v2i.Quote{
			VehicleID: id, Others: others, Cost: c.cfg.Cost, Round: round, Epoch: epoch,
			FleetSize: len(c.schedule), Live: liveMask,
		})
		if err != nil {
			return v2i.Request{}, fmt.Errorf("send quote: %w", err)
		}
	}
	c.cfg.Metrics.observeQuote(id, round, epoch, len(c.schedule))

	var req v2i.Request
	for {
		reply, err := link.Recv(rctx)
		if err != nil {
			return v2i.Request{}, fmt.Errorf("recv request: %w", err)
		}
		if reply.Type == v2i.TypeBye {
			return v2i.Request{}, errVehicleLeft
		}
		if !c.acceptSeq(id, reply.Seq) {
			continue // duplicated or replayed frame
		}
		if reply.Type != v2i.TypeRequest {
			c.countStale() // e.g. a re-sent Hello; not this exchange's answer
			continue
		}
		if err := v2i.Open(reply, v2i.TypeRequest, &req); err != nil {
			return v2i.Request{}, err
		}
		if req.Epoch != epoch {
			c.countStale() // best-response against an outdated background load
			continue
		}
		break
	}
	if req.TotalKW < 0 || math.IsNaN(req.TotalKW) || math.IsInf(req.TotalKW, 0) {
		return v2i.Request{}, fmt.Errorf("invalid request %v", req.TotalKW)
	}
	if batched && math.Float64bits(req.OwnKWSum) != math.Float64bits(sum(c.schedule[id])) {
		c.mu.Lock()
		delete(c.sentRow, id)
		c.mu.Unlock()
		c.countStale()
		return v2i.Request{}, errOwnDesync
	}
	return req, nil
}

// rowInSync reports whether the vehicle's cached acknowledged row is
// bit-identical to the live schedule row, i.e. the batch quote may
// elide it.
func (c *Coordinator) rowInSync(id string, row []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cached, ok := c.sentRow[id]
	if !ok || len(cached) != len(row) {
		return false
	}
	for i := range row {
		if math.Float64bits(cached[i]) != math.Float64bits(row[i]) {
			return false
		}
	}
	return true
}

// acceptSeq records an envelope sequence number, reporting whether the
// frame is fresh; replays are counted as stale.
func (c *Coordinator) acceptSeq(id string, seq uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq <= c.lastSeq[id] {
		c.stale++
		if m := c.cfg.Metrics; m != nil {
			m.Stale.Inc()
		}
		return false
	}
	c.lastSeq[id] = seq
	return true
}

func (c *Coordinator) countStale() {
	c.mu.Lock()
	c.stale++
	c.mu.Unlock()
	if m := c.cfg.Metrics; m != nil {
		m.Stale.Inc()
	}
}

// nextSeq returns the next globally monotonic envelope sequence number.
func (c *Coordinator) nextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// installRequest is the scheduling half of an exchange: water-fill the
// request against the background load it was quoted on, advance the
// epoch, and send the vehicle its allocation and payment. Always runs
// on Run's goroutine.
func (c *Coordinator) installRequest(ctx context.Context, id string, round int, others []float64, req v2i.Request) (float64, error) {
	before := sum(c.schedule[id])
	var alloc []float64
	var payment float64
	if idx := c.liveIndices(); idx != nil {
		// Dead sections take no power: water-fill and price over the
		// compacted live vector, then scatter back with zeroed holes.
		oc := compactTo(others, idx)
		var ac []float64
		if req.DrawCapKW > 0 {
			ac, _ = core.PerDrawWaterFill(oc, req.DrawCapKW, req.TotalKW)
		} else {
			ac, _ = core.WaterFill(oc, req.TotalKW)
		}
		alloc = scatterFrom(ac, idx, c.cfg.NumSections)
		payment = core.Payment(c.costVectorN(len(idx)), oc, ac)
	} else {
		if req.DrawCapKW > 0 {
			alloc, _ = core.PerDrawWaterFill(others, req.DrawCapKW, req.TotalKW)
		} else {
			alloc, _ = core.WaterFill(others, req.TotalKW)
		}
		payment = core.Payment(c.costVector(), others, alloc)
	}
	c.schedule[id] = alloc
	c.epoch++ // the background load everyone else was quoted has moved

	sctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
	defer cancel()
	err := v2i.SendMsg(sctx, c.links[id], v2i.TypeSchedule, "smart-grid", c.nextSeq(), &v2i.ScheduleMsg{
		VehicleID: id, AllocKW: alloc, PaymentH: payment, Round: round,
	})
	if err != nil {
		return 0, fmt.Errorf("send schedule: %w", err)
	}
	// The vehicle now holds this exact row (both wires transmit exact
	// float bits), so future batch quotes may elide it. Cache a copy —
	// outage handling mutates schedule rows in place.
	c.mu.Lock()
	c.sentRow[id] = append([]float64(nil), alloc...)
	c.mu.Unlock()
	c.cfg.Metrics.observePropose(id, round, c.epoch, req.TotalKW)
	return math.Abs(req.TotalKW - before), nil
}

// saveCheckpoint journals the converged schedule as the new
// last-known-good. Persistence is best-effort: a journal write
// failure degrades crash recovery, not the live run.
func (c *Coordinator) saveCheckpoint(round int) bool {
	if c.cfg.Journal == nil {
		return false
	}
	c.mu.Lock()
	seq := c.seq
	c.mu.Unlock()
	cp := Checkpoint{
		Epoch:       c.epoch,
		Round:       round,
		NumSections: c.cfg.NumSections,
		Seq:         seq,
		Schedule:    make(map[string][]float64, len(c.schedule)),
	}
	for id, row := range c.schedule {
		r := make([]float64, len(row))
		copy(r, row)
		cp.Schedule[id] = r
	}
	saved := c.cfg.Journal.Save(cp) == nil
	if m := c.cfg.Metrics; m != nil && saved {
		m.Checkpoints.Inc()
	}
	return saved
}

// fallBackToLastGood replaces a half-settled schedule with the
// journaled last converged one after MaxRounds ran out: the grid
// degrades to the previous feasible operating point instead of
// serving an un-converged schedule.
func (c *Coordinator) fallBackToLastGood() bool {
	if c.cfg.Journal == nil {
		return false
	}
	cp, ok, err := c.cfg.Journal.Load()
	if err != nil || !ok {
		return false
	}
	return c.restoreCheckpoint(cp)
}

// restoreCheckpoint copies a compatible checkpoint's rows over the
// current fleet: vehicles present in both keep their journaled
// allocation, vehicles unknown to the checkpoint reset to zero.
func (c *Coordinator) restoreCheckpoint(cp Checkpoint) bool {
	if cp.NumSections != c.cfg.NumSections {
		return false
	}
	for id := range c.schedule {
		row := make([]float64, c.cfg.NumSections)
		if saved, ok := cp.Schedule[id]; ok && len(saved) == c.cfg.NumSections {
			copy(row, saved)
		}
		c.schedule[id] = row
	}
	if cp.Epoch >= c.epoch {
		c.epoch = cp.Epoch
	}
	c.epoch++
	return true
}

// broadcastDone tells every agent the game is over. Failures here are
// deliberately ignored: agents also exit on transport close.
func (c *Coordinator) broadcastDone(ctx context.Context, report Report) {
	for _, link := range c.links {
		bctx, cancel := context.WithTimeout(ctx, c.cfg.RoundTimeout)
		_ = v2i.SendMsg(bctx, link, v2i.TypeConverged, "smart-grid", c.nextSeq(), &v2i.Converged{
			Rounds:           report.Rounds,
			CongestionDegree: report.CongestionDegree,
			WelfarePerHour:   -report.WelfareCost,
		})
		_ = v2i.SendMsg(bctx, link, v2i.TypeBye, "smart-grid", c.nextSeq(), &v2i.Bye{Reason: "converged"})
		cancel()
	}
}

// totalsVec returns the full P_c vector, accumulated in sorted
// vehicle-ID order. The order matters: float addition is not
// associative, so a map-order sum would make the schedule's arithmetic
// nondeterministic run to run — and the batched wire derives each
// vehicle's background load as totals − own, which only reproduces the
// unicast quote bit for bit when both sides build totals the same way.
func (c *Coordinator) totalsVec() []float64 {
	ids := make([]string, 0, len(c.schedule))
	for id := range c.schedule {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]float64, c.cfg.NumSections)
	for _, id := range ids {
		for i, v := range c.schedule[id] {
			out[i] += v
		}
	}
	return out
}

// othersFrom derives P_−n as totals − own, elementwise. This is the
// exact arithmetic a batch-quoted agent performs locally, so the
// coordinator uses the same derivation on the unicast path — the two
// wires then quote bit-identical background loads.
func othersFrom(totals, own []float64) []float64 {
	out := append([]float64(nil), totals...)
	for i := range out {
		out[i] -= own[i]
	}
	return out
}

// othersTotals returns P_−n per section.
func (c *Coordinator) othersTotals(id string) []float64 {
	return othersFrom(c.totalsVec(), c.schedule[id])
}

// SectionTotals returns the current P_c vector.
func (c *Coordinator) SectionTotals() []float64 {
	return c.totalsVec()
}

// CongestionDegree returns Σp / ΣP_line.
func (c *Coordinator) CongestionDegree() float64 {
	return c.totalPower() / (float64(c.cfg.NumSections) * c.cfg.LineCapacityKW)
}

func (c *Coordinator) totalPower() float64 {
	return sum(c.SectionTotals())
}

func (c *Coordinator) welfareCost() float64 {
	var total float64
	for _, pc := range c.SectionTotals() {
		total += c.cost.Cost(pc)
	}
	return total
}

func (c *Coordinator) costVector() []core.CostFunction {
	return c.costVectorN(c.cfg.NumSections)
}

func (c *Coordinator) costVectorN(n int) []core.CostFunction {
	out := make([]core.CostFunction, n)
	for i := range out {
		out[i] = c.cost
	}
	return out
}

func sum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// CollectHellos accepts one Hello per expected vehicle from a server,
// returning the transports keyed by vehicle ID. It is the listener
// half of a TCP deployment.
func CollectHellos(ctx context.Context, srv *v2i.Server, expect int, timeout time.Duration) (map[string]v2i.Transport, error) {
	if expect < 1 {
		return nil, fmt.Errorf("sched: expect %d vehicles", expect)
	}
	links := make(map[string]v2i.Transport, expect)
	for len(links) < expect {
		t, err := srv.Accept()
		if err != nil {
			closeAll(links)
			return nil, err
		}
		hctx, cancel := context.WithTimeout(ctx, timeout)
		env, err := t.Recv(hctx)
		cancel()
		if err != nil {
			_ = t.Close()
			closeAll(links)
			return nil, fmt.Errorf("sched: hello: %w", err)
		}
		var hello v2i.Hello
		if err := v2i.Open(env, v2i.TypeHello, &hello); err != nil {
			_ = t.Close()
			closeAll(links)
			return nil, err
		}
		if hello.VehicleID == "" {
			_ = t.Close()
			closeAll(links)
			return nil, errors.New("sched: hello without vehicle ID")
		}
		if _, dup := links[hello.VehicleID]; dup {
			_ = t.Close()
			closeAll(links)
			return nil, fmt.Errorf("sched: duplicate vehicle %q", hello.VehicleID)
		}
		links[hello.VehicleID] = t
	}
	return links, nil
}

func closeAll(links map[string]v2i.Transport) {
	for _, t := range links {
		_ = t.Close()
	}
}
