package sched

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/grid"
	"olevgrid/internal/obs"
	"olevgrid/internal/v2i"
)

// TestObsChaosNoDoubleCountAcrossFailover re-runs the compound chaos
// scenario — lossy links, a primary crash with standby takeover off
// the journal, feed dropouts, and two section outages — with one
// shared Metrics bundle and event sink armed across both coordinator
// incarnations and the whole fleet. It is the conformance proof that
// the telemetry is faithful under the worst conditions the control
// plane supports:
//
//   - the rounds counter equals primary rounds + standby rounds
//     exactly (increments happen at event sites, so a takeover cannot
//     double-count the checkpointed prefix);
//   - epochs observed on the event stream are non-decreasing in
//     emission order, jumping the fencing gap exactly once at the
//     recorded failover;
//   - the agent gauges match the summed legacy AgentResult counters
//     even with twenty agents bumping them concurrently;
//   - frame counters on the instrumented transports reconcile with
//     the coordinator's own quote/proposal counters across layers.
//
// The suite runs under -race in CI, so every armed hook is also a
// data-race probe.
func TestObsChaosNoDoubleCountAcrossFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane chaos takes seconds")
	}
	const n = 20
	chaosPlan := func(seed int64) v2i.FaultConfig {
		return v2i.FaultConfig{
			DropRate:      0.20,
			DuplicateRate: 0.10,
			ReorderRate:   0.10,
			MaxDelay:      2 * time.Millisecond,
			Seed:          seed,
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	reg := obs.NewRegistry()
	sink := obs.NewEventSink(1 << 15)
	m := NewMetrics(reg, sink)
	tm := v2i.NewTransportMetrics(reg)

	links := make(map[string]v2i.Transport, n)
	raws := make([]v2i.Transport, 0, n)
	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		degraded, reconnects int
		heartbeats           int
	)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		rawGrid, rawVehicle := v2i.NewPair(64)
		fg := v2i.NewFaulty(rawGrid, chaosPlan(300+int64(i)))
		fv := v2i.NewFaulty(rawVehicle, chaosPlan(400+int64(i)))
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
			Autonomy:     &AutonomyConfig{QuoteDeadline: 40 * time.Millisecond},
			Metrics:      m,
		}, fv)
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, rawGrid)
		links[id] = v2i.NewInstrumented(fg, tm)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := agent.Run(ctx)
			mu.Lock()
			degraded += res.DegradedEpisodes
			reconnects += res.Reconnects
			heartbeats += res.Heartbeats
			mu.Unlock()
		}()
	}

	spec := nonlinearSpec()
	feed, err := grid.NewLBMPFeed(func(int) float64 { return spec.BetaPerKWh }, grid.FeedConfig{
		DropRate:  0.20,
		Decay:     0.9,
		FloorBeta: spec.BetaPerKWh / 2,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}

	journal := NewMemJournal()
	lease := NewMemLease()
	primCtx, crash := context.WithCancel(ctx)
	defer crash()
	cfg := CoordinatorConfig{
		NumSections:      n,
		LineCapacityKW:   53.55,
		Cost:             spec,
		Tolerance:        1e-3,
		MaxRounds:        200,
		RoundTimeout:     25 * time.Millisecond,
		MaxRetries:       8,
		RetryBackoff:     3 * time.Millisecond,
		SkipUnresponsive: true,
		DropDeparted:     true,
		EvictAfter:       10,
		Seed:             7,
		Journal:          journal,
		CheckpointEvery:  1,
		Lease:            lease,
		LeaseTTL:         60 * time.Millisecond,
		InstanceID:       "primary",
		HeartbeatEvery:   2,
		Parallelism:      2, // quote collection (and observeQuote) runs on concurrent goroutines
		Feed:             feed,
		Outages: []SectionOutage{
			{Section: 4, DownRound: 3, UpRound: 9},
			{Section: 12, DownRound: 5, UpRound: 11},
		},
		Metrics: m,
		OnRound: func(round int) {
			if round == 4 {
				crash()
			}
		},
	}
	prim, err := NewCoordinator(cfg, links)
	if err != nil {
		t.Fatal(err)
	}
	primReport, err := prim.Run(primCtx)
	if err == nil {
		t.Fatal("primary survived its scripted crash")
	}
	if got := m.Rounds.Value(); got != uint64(primReport.Rounds) {
		t.Fatalf("rounds counter %d after the crash, primary report says %d", got, primReport.Rounds)
	}

	time.Sleep(150 * time.Millisecond)

	sb, err := NewStandby(StandbyConfig{
		InstanceID: "standby", Journal: journal, Lease: lease, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	take, ok, err := sb.TryTakeover(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		take, ok, err = sb.TryTakeover(time.Now().Add(time.Second))
		if err != nil || !ok {
			t.Fatalf("takeover failed: ok=%v err=%v", ok, err)
		}
	}
	cfg2 := cfg
	cfg2.OnRound = nil
	cfg2.InstanceID = "standby"
	standby, err := ResumeCoordinator(cfg2, links, take)
	if err != nil {
		t.Fatal(err)
	}
	report, err := standby.Run(ctx)
	for _, r := range raws {
		_ = r.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("standby run: %v", err)
	}
	if !report.Converged {
		t.Fatalf("fleet did not converge under control-plane chaos: %+v", report)
	}

	// No double count: every round increments the counter exactly once
	// at the site that also sets Report.Rounds, so the cumulative
	// counter is the exact sum of both incarnations' reports — the
	// checkpointed prefix the standby warm-started from is not
	// replayed into the metrics.
	if got, want := m.Rounds.Value(), uint64(primReport.Rounds+report.Rounds); got != want {
		t.Errorf("rounds counter %d, want primary %d + standby %d = %d",
			got, primReport.Rounds, report.Rounds, want)
	}
	if got := m.Failovers.Value(); got != 1 {
		t.Errorf("failovers counter %d, want exactly 1", got)
	}
	if got := sink.CountKind(obs.EventFailover); got != 1 {
		t.Errorf("failover events in sink %d, want exactly 1", got)
	}

	// The standby's report accounts only its own incarnation; the
	// shared counters accumulate the primary's contribution on top.
	if got := m.Restores.Value(); got != uint64(report.RestoresApplied) {
		// Both restorations are scripted after the crash round, so the
		// primary cannot have contributed any.
		t.Errorf("restores counter %d, want %d (standby only)", got, report.RestoresApplied)
	}
	if got := m.Outages.Value(); got < uint64(report.OutagesApplied) {
		t.Errorf("outages counter %d below the standby's own %d", got, report.OutagesApplied)
	}
	if got := m.FeedChanges.Value(); got < uint64(report.FeedChanges) {
		t.Errorf("feed-change counter %d below the standby's own %d", got, report.FeedChanges)
	}
	if got := m.Retries.Value(); got < uint64(report.Retries) {
		t.Errorf("retries counter %d below the standby's own %d", got, report.Retries)
	}
	if m.Checkpoints.Value() == 0 {
		t.Error("no checkpoint ever counted despite CheckpointEvery=1")
	}

	// Agent gauges, bumped concurrently by twenty agents sharing the
	// bundle, must equal the mutex-summed legacy counters exactly.
	if got := int(m.DegradedEpisodes.Value()); got != degraded {
		t.Errorf("degraded-episodes gauge %d, legacy sum %d", got, degraded)
	}
	if got := int(m.Reconnects.Value()); got != reconnects {
		t.Errorf("reconnects gauge %d, legacy sum %d", got, reconnects)
	}
	if got := int(m.Heartbeats.Value()); got != heartbeats {
		t.Errorf("heartbeats gauge %d, legacy sum %d", got, heartbeats)
	}
	if degraded == 0 || reconnects == 0 {
		t.Errorf("chaos run tripped no autonomy (degraded=%d reconnects=%d); gauge equality is vacuous",
			degraded, reconnects)
	}

	// Cross-layer reconciliation: the coordinator counts a quote or
	// proposal only after its Send succeeds, and the instrumented
	// transport counts exactly the successful sends — so the two
	// layers must agree frame for frame, across both incarnations.
	if got, want := tm.Sent(v2i.TypeQuote), m.Quotes.Value(); got != want {
		t.Errorf("transport counted %d quote frames, coordinator counted %d", got, want)
	}
	if got, want := tm.Sent(v2i.TypeSchedule), m.Proposals.Value(); got != want {
		t.Errorf("transport counted %d schedule frames, coordinator counted %d", got, want)
	}

	// Epoch monotonicity per fencing epoch: in emission order, epochs
	// stamped on coordinator events never decrease — within an
	// incarnation they only grow, and the takeover fence jumps them
	// strictly upward exactly once. The failover event itself must sit
	// at or above the fence.
	events := sink.Snapshot()
	last := int32(-1)
	fenced := false
	for _, ev := range events {
		switch ev.Kind {
		case obs.EventQuote, obs.EventPropose, obs.EventFailover, obs.EventOutage, obs.EventRestore:
		default:
			continue
		}
		if ev.Epoch < 0 {
			continue
		}
		if ev.Epoch < last {
			t.Fatalf("epoch regressed in emission order: seq %d kind %s epoch %d after %d",
				ev.Seq, ev.Kind, ev.Epoch, last)
		}
		last = ev.Epoch
		if ev.Kind == obs.EventFailover {
			fenced = true
			if uint64(ev.Epoch) < take.Epoch {
				t.Errorf("failover event epoch %d below the takeover fence %d", ev.Epoch, take.Epoch)
			}
		}
		if fenced && uint64(ev.Epoch) < take.Epoch {
			t.Errorf("post-failover event seq %d kind %s epoch %d below the fence %d",
				ev.Seq, ev.Kind, ev.Epoch, take.Epoch)
		}
	}
	if !fenced && sink.Emitted() <= uint64(sink.Cap()) {
		t.Error("failover event missing from a sink that never wrapped")
	}

	// The exposition must carry the cumulative story.
	var sb2 strings.Builder
	if err := reg.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	exposition := sb2.String()
	for _, want := range []string{
		"olev_sched_failovers_total 1",
		fmt.Sprintf("olev_sched_rounds_total %d", primReport.Rounds+report.Rounds),
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
