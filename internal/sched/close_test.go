package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// Close must drain in-flight sessions through the protocol: every
// listening agent gets a Bye and exits cleanly, and a final checkpoint
// lands in the journal before the links die.
func TestCloseDrainsSessionsAndCheckpoints(t *testing.T) {
	const n = 4
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	links := make(map[string]v2i.Transport, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := agent.Run(ctx)
			errs <- err
		}()
	}

	journal := NewMemJournal()
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    n,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      50,
		Journal:        journal,
		Seed:           3,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	report, err := coord.Run(ctx)
	if err != nil || !report.Converged {
		t.Fatalf("run: converged=%v err=%v", report.Converged, err)
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := coord.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}

	// Agents blocked in Recv after the run exit through Bye (or the
	// already-delivered end-of-run Bye), never with an error.
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("agent exited dirty across Close: %v", err)
		}
	}

	// The drain journaled the session's durable state with the fencing
	// fields a standby needs.
	cp, ok, err := journal.Load()
	if err != nil || !ok {
		t.Fatalf("no final checkpoint after Close: ok=%v err=%v", ok, err)
	}
	if cp.Round != report.Rounds {
		t.Errorf("checkpoint round %d, want final round %d", cp.Round, report.Rounds)
	}
	if cp.Seq == 0 {
		t.Error("checkpoint carries no sequence fence")
	}
	if len(cp.Schedule) != n {
		t.Errorf("checkpoint schedule has %d rows, want %d", len(cp.Schedule), n)
	}
}

// A peer that never drains its receive buffer cannot stall shutdown
// past the grace budget.
func TestCloseBoundedByShutdownGrace(t *testing.T) {
	gridSide, _ := v2i.NewPair(0) // rendezvous: Send blocks until read
	links := map[string]v2i.Transport{"ev-00": gridSide}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    2,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		ShutdownGrace:  50 * time.Millisecond,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("Close took %v against a stalled peer; grace budget is 50ms", took)
	}
}

// Close must be safe to call from many goroutines at once: exactly one
// drain runs, the rest block until it finishes, and a closed
// coordinator refuses to Run again.
func TestCloseConcurrentAndRunAfterClose(t *testing.T) {
	const n = 3
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	links := make(map[string]v2i.Transport, n)
	var agents sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents.Add(1)
		go func() {
			defer agents.Done()
			_, _ = agent.Run(ctx)
		}()
	}

	journal := NewMemJournal()
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    n,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      50,
		Journal:        journal,
		Seed:           5,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	if report, err := coord.Run(ctx); err != nil || !report.Converged {
		t.Fatalf("run: converged=%v err=%v", report.Converged, err)
	}

	var closers sync.WaitGroup
	for i := 0; i < 8; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := coord.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	closers.Wait()
	agents.Wait()

	if _, ok, err := journal.Load(); err != nil || !ok {
		t.Fatalf("no checkpoint after concurrent closes: ok=%v err=%v", ok, err)
	}
	if _, err := coord.Run(ctx); err == nil {
		t.Fatal("Run on a closed coordinator must fail")
	}
}

// Close-during-failover: a primary that lost its lease must stand
// down quietly. Its Close must neither tear down the links the new
// incarnation inherited nor overwrite the new incarnation's fresher
// checkpoint with its own stale schedule.
func TestCloseAfterLeaseLossDoesNotSabotageSuccessor(t *testing.T) {
	const n = 4
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	links := make(map[string]v2i.Transport, n)
	var agents sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents.Add(1)
		go func() {
			defer agents.Done()
			_, _ = agent.Run(ctx)
		}()
	}

	journal := NewMemJournal()
	lease := NewMemLease()
	cfg := CoordinatorConfig{
		NumSections:     n,
		LineCapacityKW:  53.55,
		Cost:            nonlinearSpec(),
		Tolerance:       1e-6,
		MaxRounds:       500,
		Journal:         journal,
		CheckpointEvery: 1,
		Lease:           lease,
		LeaseTTL:        50 * time.Millisecond,
		InstanceID:      "primary",
		Seed:            5,
	}
	// The primary runs a few rounds, then the standby steals the lease
	// (simulating the primary's pause being mistaken for death).
	steal := make(chan struct{})
	cfg.OnRound = func(round int) {
		if round == 3 {
			close(steal)
			time.Sleep(120 * time.Millisecond) // lease lapses mid-pause
		}
	}
	prim, err := NewCoordinator(cfg, links)
	if err != nil {
		t.Fatal(err)
	}

	primDone := make(chan error, 1)
	go func() {
		_, err := prim.Run(ctx)
		primDone <- err
	}()
	<-steal

	sb, err := NewStandby(StandbyConfig{
		InstanceID: "standby", Journal: journal, Lease: lease, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	var take Takeover
	deadline := time.Now().Add(5 * time.Second)
	for {
		var ok bool
		take, ok, err = sb.TryTakeover(time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never took over")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The deposed primary notices on its next renewal and exits with
	// ErrLeaseLost; its Close races the successor's run.
	if err := <-primDone; !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("primary exit: %v, want ErrLeaseLost", err)
	}

	cfg2 := cfg
	cfg2.OnRound = nil
	cfg2.InstanceID = "standby"
	successor, err := ResumeCoordinator(cfg2, links, take)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan struct{})
	var report Report
	var runErr error
	go func() {
		report, runErr = successor.Run(ctx)
		close(runDone)
	}()
	if err := prim.Close(); err != nil { // must be a quiet no-op
		t.Fatalf("deposed close: %v", err)
	}
	<-runDone
	if runErr != nil || !report.Converged {
		t.Fatalf("successor run: converged=%v err=%v (deposed Close sabotaged it?)", report.Converged, runErr)
	}

	// The journal must hold the successor's fenced state, not the
	// deposed primary's stale one.
	cp, ok, err := journal.Load()
	if err != nil || !ok {
		t.Fatalf("journal: ok=%v err=%v", ok, err)
	}
	if cp.Epoch < take.Epoch {
		t.Errorf("checkpoint epoch %d below the takeover fence %d: deposed primary clobbered the journal", cp.Epoch, take.Epoch)
	}
	if err := successor.Close(); err != nil {
		t.Fatal(err)
	}
	agents.Wait()
}
