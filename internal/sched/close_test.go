package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// Close must drain in-flight sessions through the protocol: every
// listening agent gets a Bye and exits cleanly, and a final checkpoint
// lands in the journal before the links die.
func TestCloseDrainsSessionsAndCheckpoints(t *testing.T) {
	const n = 4
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	links := make(map[string]v2i.Transport, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := agent.Run(ctx)
			errs <- err
		}()
	}

	journal := NewMemJournal()
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    n,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      50,
		Journal:        journal,
		Seed:           3,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	report, err := coord.Run(ctx)
	if err != nil || !report.Converged {
		t.Fatalf("run: converged=%v err=%v", report.Converged, err)
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := coord.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}

	// Agents blocked in Recv after the run exit through Bye (or the
	// already-delivered end-of-run Bye), never with an error.
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("agent exited dirty across Close: %v", err)
		}
	}

	// The drain journaled the session's durable state with the fencing
	// fields a standby needs.
	cp, ok, err := journal.Load()
	if err != nil || !ok {
		t.Fatalf("no final checkpoint after Close: ok=%v err=%v", ok, err)
	}
	if cp.Round != report.Rounds {
		t.Errorf("checkpoint round %d, want final round %d", cp.Round, report.Rounds)
	}
	if cp.Seq == 0 {
		t.Error("checkpoint carries no sequence fence")
	}
	if len(cp.Schedule) != n {
		t.Errorf("checkpoint schedule has %d rows, want %d", len(cp.Schedule), n)
	}
}

// A peer that never drains its receive buffer cannot stall shutdown
// past the grace budget.
func TestCloseBoundedByShutdownGrace(t *testing.T) {
	gridSide, _ := v2i.NewPair(0) // rendezvous: Send blocks until read
	links := map[string]v2i.Transport{"ev-00": gridSide}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    2,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		ShutdownGrace:  50 * time.Millisecond,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("Close took %v against a stalled peer; grace budget is 50ms", took)
	}
}
