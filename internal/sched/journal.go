package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"sync"

	"olevgrid/internal/store"
)

// Checkpoint is the coordinator's durable state: the last schedule
// that actually converged, stamped with the epoch it was installed
// under. It is what a restarted coordinator warm-starts from and what
// a round that exhausts MaxRounds degrades to.
type Checkpoint struct {
	// Epoch is the schedule version at save time.
	Epoch uint64 `json:"epoch"`
	// Round is the round the schedule converged on.
	Round int `json:"round"`
	// NumSections guards against restoring into a differently shaped
	// roadway.
	NumSections int `json:"num_sections"`
	// Seq is the coordinator's outbound sequence counter at save time.
	// A standby that takes over fences its own counter above it so the
	// agents' monotonic-sequence filter (PR 1) accepts the new
	// incarnation's frames and keeps rejecting the old one's.
	Seq uint64 `json:"seq,omitempty"`
	// Schedule is each vehicle's per-section allocation.
	Schedule map[string][]float64 `json:"schedule"`
}

// clone deep-copies the checkpoint's schedule so journal readers and
// the live coordinator never share rows.
func (cp Checkpoint) clone() Checkpoint {
	out := cp
	out.Schedule = make(map[string][]float64, len(cp.Schedule))
	for id, row := range cp.Schedule {
		r := make([]float64, len(row))
		copy(r, row)
		out.Schedule[id] = r
	}
	return out
}

// MaxCheckpointBytes bounds one serialized checkpoint. A journal file
// is attacker-adjacent state (it survives the process and may cross
// machines on failover), so a reader must reject an oversized record
// before handing it to the JSON decoder.
const MaxCheckpointBytes = 8 << 20

// DecodeCheckpoint parses and validates a serialized checkpoint. It is
// the single untrusted-input gate for every journal reader: truncated,
// corrupt, oversized, or semantically invalid records (negative
// section counts, row-length mismatches, non-finite or negative
// allocations) return an error and never panic.
func DecodeCheckpoint(raw []byte) (Checkpoint, error) {
	if len(raw) > MaxCheckpointBytes {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint %d bytes exceeds %d", len(raw), MaxCheckpointBytes)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint decode: %w", err)
	}
	if cp.NumSections < 0 {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint has %d sections", cp.NumSections)
	}
	if cp.Round < 0 {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint round %d negative", cp.Round)
	}
	for id, row := range cp.Schedule {
		if len(row) != cp.NumSections {
			return Checkpoint{}, fmt.Errorf("sched: checkpoint row %q has %d sections, want %d",
				id, len(row), cp.NumSections)
		}
		for c, kw := range row {
			if math.IsNaN(kw) || math.IsInf(kw, 0) || kw < 0 {
				return Checkpoint{}, fmt.Errorf("sched: checkpoint row %q section %d: invalid %v", id, c, kw)
			}
		}
	}
	return cp, nil
}

// Journal persists coordinator checkpoints across crashes.
// Implementations must be safe for concurrent use.
type Journal interface {
	// Save replaces the stored checkpoint.
	Save(cp Checkpoint) error
	// Load returns the stored checkpoint; ok is false when nothing has
	// been saved yet.
	Load() (cp Checkpoint, ok bool, err error)
}

// MemJournal is an in-process Journal for tests and single-process
// simulations.
type MemJournal struct {
	mu sync.Mutex
	cp *Checkpoint
}

var _ Journal = (*MemJournal)(nil)

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// Save implements Journal.
func (j *MemJournal) Save(cp Checkpoint) error {
	c := cp.clone()
	j.mu.Lock()
	j.cp = &c
	j.mu.Unlock()
	return nil
}

// Load implements Journal.
func (j *MemJournal) Load() (Checkpoint, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cp == nil {
		return Checkpoint{}, false, nil
	}
	return j.cp.clone(), true, nil
}

// FileJournal persists checkpoints as a single JSON file through the
// durability layer's atomic-rename write: temp file, fsync, rename,
// directory fsync. A crash mid-save never corrupts the last good
// checkpoint, and — unlike the pre-store rename-only version — a
// power loss right after a nil Save return can never roll the
// checkpoint back either.
type FileJournal struct {
	mu   sync.Mutex
	path string
	fsys store.FS
}

var _ Journal = (*FileJournal)(nil)

// NewFileJournal journals to path; the file is created on first Save.
func NewFileJournal(path string) *FileJournal {
	return &FileJournal{path: path, fsys: store.OS}
}

// NewFileJournalFS is NewFileJournal over an injected filesystem —
// the seam the crash-consistency regression tests drive a FaultFS
// through.
func NewFileJournalFS(fsys store.FS, path string) *FileJournal {
	if fsys == nil {
		fsys = store.OS
	}
	return &FileJournal{path: path, fsys: fsys}
}

// Save implements Journal.
func (j *FileJournal) Save(cp Checkpoint) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("sched: marshal checkpoint: %w", err)
	}
	if err := store.WriteFileAtomic(j.fsys, j.path, raw); err != nil {
		return fmt.Errorf("sched: checkpoint save: %w", err)
	}
	return nil
}

// Load implements Journal. Failures keep their nature: a transient
// read error (permissions blip, EIO) surfaces with its os error chain
// intact, while bytes that are present but undecodable are marked
// with store.ErrCorrupt — so callers like the boot journal scan can
// tell "retry might work" from "the data is gone".
func (j *FileJournal) Load() (Checkpoint, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, err := j.fsys.ReadFile(j.path)
	if errors.Is(err, fs.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("sched: checkpoint read: %w", err)
	}
	cp, err := DecodeCheckpoint(raw)
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("%w: %v", store.ErrCorrupt, err)
	}
	return cp, true, nil
}

// StoreJournal adapts a durable segment store (store.SegmentStore or
// any store.Store) to the Journal interface: each Save appends one
// framed checkpoint record, compaction bounds the log, and Load
// decodes whatever the store recovered. This is the journal the
// daemon's "-store segment" sessions run on.
type StoreJournal struct {
	s store.Store
}

var _ Journal = (*StoreJournal)(nil)

// NewStoreJournal wraps s; the caller keeps ownership of s's
// lifecycle (Close).
func NewStoreJournal(s store.Store) *StoreJournal { return &StoreJournal{s: s} }

// Save implements Journal. A nil return carries the store's
// durability acknowledgement under its fsync policy.
func (j *StoreJournal) Save(cp Checkpoint) error {
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("sched: marshal checkpoint: %w", err)
	}
	if err := j.s.Append(raw); err != nil {
		return fmt.Errorf("sched: checkpoint append: %w", err)
	}
	return nil
}

// Load implements Journal.
func (j *StoreJournal) Load() (Checkpoint, bool, error) {
	raw, _, ok := j.s.Last()
	if !ok {
		return Checkpoint{}, false, nil
	}
	cp, err := DecodeCheckpoint(raw)
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("%w: %v", store.ErrCorrupt, err)
	}
	return cp, true, nil
}
