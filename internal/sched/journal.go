package sched

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint is the coordinator's durable state: the last schedule
// that actually converged, stamped with the epoch it was installed
// under. It is what a restarted coordinator warm-starts from and what
// a round that exhausts MaxRounds degrades to.
type Checkpoint struct {
	// Epoch is the schedule version at save time.
	Epoch uint64 `json:"epoch"`
	// Round is the round the schedule converged on.
	Round int `json:"round"`
	// NumSections guards against restoring into a differently shaped
	// roadway.
	NumSections int `json:"num_sections"`
	// Seq is the coordinator's outbound sequence counter at save time.
	// A standby that takes over fences its own counter above it so the
	// agents' monotonic-sequence filter (PR 1) accepts the new
	// incarnation's frames and keeps rejecting the old one's.
	Seq uint64 `json:"seq,omitempty"`
	// Schedule is each vehicle's per-section allocation.
	Schedule map[string][]float64 `json:"schedule"`
}

// clone deep-copies the checkpoint's schedule so journal readers and
// the live coordinator never share rows.
func (cp Checkpoint) clone() Checkpoint {
	out := cp
	out.Schedule = make(map[string][]float64, len(cp.Schedule))
	for id, row := range cp.Schedule {
		r := make([]float64, len(row))
		copy(r, row)
		out.Schedule[id] = r
	}
	return out
}

// MaxCheckpointBytes bounds one serialized checkpoint. A journal file
// is attacker-adjacent state (it survives the process and may cross
// machines on failover), so a reader must reject an oversized record
// before handing it to the JSON decoder.
const MaxCheckpointBytes = 8 << 20

// DecodeCheckpoint parses and validates a serialized checkpoint. It is
// the single untrusted-input gate for every journal reader: truncated,
// corrupt, oversized, or semantically invalid records (negative
// section counts, row-length mismatches, non-finite or negative
// allocations) return an error and never panic.
func DecodeCheckpoint(raw []byte) (Checkpoint, error) {
	if len(raw) > MaxCheckpointBytes {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint %d bytes exceeds %d", len(raw), MaxCheckpointBytes)
	}
	var cp Checkpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint decode: %w", err)
	}
	if cp.NumSections < 0 {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint has %d sections", cp.NumSections)
	}
	if cp.Round < 0 {
		return Checkpoint{}, fmt.Errorf("sched: checkpoint round %d negative", cp.Round)
	}
	for id, row := range cp.Schedule {
		if len(row) != cp.NumSections {
			return Checkpoint{}, fmt.Errorf("sched: checkpoint row %q has %d sections, want %d",
				id, len(row), cp.NumSections)
		}
		for c, kw := range row {
			if math.IsNaN(kw) || math.IsInf(kw, 0) || kw < 0 {
				return Checkpoint{}, fmt.Errorf("sched: checkpoint row %q section %d: invalid %v", id, c, kw)
			}
		}
	}
	return cp, nil
}

// Journal persists coordinator checkpoints across crashes.
// Implementations must be safe for concurrent use.
type Journal interface {
	// Save replaces the stored checkpoint.
	Save(cp Checkpoint) error
	// Load returns the stored checkpoint; ok is false when nothing has
	// been saved yet.
	Load() (cp Checkpoint, ok bool, err error)
}

// MemJournal is an in-process Journal for tests and single-process
// simulations.
type MemJournal struct {
	mu sync.Mutex
	cp *Checkpoint
}

var _ Journal = (*MemJournal)(nil)

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// Save implements Journal.
func (j *MemJournal) Save(cp Checkpoint) error {
	c := cp.clone()
	j.mu.Lock()
	j.cp = &c
	j.mu.Unlock()
	return nil
}

// Load implements Journal.
func (j *MemJournal) Load() (Checkpoint, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cp == nil {
		return Checkpoint{}, false, nil
	}
	return j.cp.clone(), true, nil
}

// FileJournal persists checkpoints as JSON, writing through a
// temporary file and rename so a crash mid-save never corrupts the
// last good checkpoint.
type FileJournal struct {
	mu   sync.Mutex
	path string
}

var _ Journal = (*FileJournal)(nil)

// NewFileJournal journals to path; the file is created on first Save.
func NewFileJournal(path string) *FileJournal { return &FileJournal{path: path} }

// Save implements Journal.
func (j *FileJournal) Save(cp Checkpoint) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("sched: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("sched: checkpoint temp: %w", err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("sched: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sched: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("sched: checkpoint rename: %w", err)
	}
	return nil
}

// Load implements Journal.
func (j *FileJournal) Load() (Checkpoint, bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("sched: checkpoint read: %w", err)
	}
	cp, err := DecodeCheckpoint(raw)
	if err != nil {
		return Checkpoint{}, false, err
	}
	return cp, true, nil
}
