package sched

import (
	"context"
	"errors"
	"net"
	"os"
	"time"
)

// Degraded-mode autonomy (tentpole part 2): when the control plane
// goes silent — coordinator crash, network partition, failover gap —
// an OLEV must keep operating the charging pickup rather than hold an
// arbitrary stale setpoint. The fallback is the proportional-fair
// split of the last-known usable section capacities: every vehicle
// drawing capacity/fleet per live section is feasible by construction
// (the sum over the fleet is exactly the quoted ηP_line per section),
// needs no communication, and is the symmetric-fair operating point
// the paper's own equal-split baseline uses. It is deliberately not an
// equilibrium: the moment a coordinator answers again the normal
// best-response protocol resumes and converges to the exact optimum
// (Theorem IV.1 — the fallback is just another feasible start), which
// the chaos suite pins to within 1% welfare of a clean run.

// AutonomyConfig arms an agent's degraded-mode fallback. The zero
// value (nil pointer) leaves autonomy off: agents block on Recv
// indefinitely, the pre-failover behavior.
type AutonomyConfig struct {
	// QuoteDeadline is the longest silence — no quote, schedule, or
	// heartbeat — before the agent declares the control plane gone and
	// computes a local fallback.
	QuoteDeadline time.Duration
	// StalenessTTL bounds how old the last-known grid state may be and
	// still ground a fallback; past it the agent sheds to zero draw,
	// the only always-safe setpoint. Zero means no ceiling.
	StalenessTTL time.Duration
}

// fallbackKW computes the degraded-mode draw from the last quote's
// grid state: a per-capita share of each live section's usable
// capacity, clamped to the vehicle's own Eq. (2)/(3) limits.
func (a *Agent) fallbackKW(now time.Time) float64 {
	au := a.cfg.Autonomy
	if a.lastQuote == nil {
		return 0 // never saw the grid: nothing safe to assume
	}
	if au.StalenessTTL > 0 && now.Sub(a.lastQuoteAt) > au.StalenessTTL {
		return 0 // state too old to trust
	}
	q := a.lastQuote
	capKW := q.Cost.OverloadCapacityKW // ηP_line when the penalty is armed
	if capKW <= 0 {
		capKW = q.Cost.LineCapacityKW
	}
	if capKW <= 0 {
		return 0
	}
	fleet := q.FleetSize
	if fleet < 1 {
		fleet = 1
	}
	numLive := len(q.Others)
	if q.Live != nil {
		numLive = 0
		for _, ok := range q.Live {
			if ok {
				numLive++
			}
		}
	}
	share := capKW / float64(fleet)
	if a.cfg.MaxSectionDrawKW > 0 && share > a.cfg.MaxSectionDrawKW {
		share = a.cfg.MaxSectionDrawKW
	}
	total := share * float64(numLive)
	if a.cfg.MaxPowerKW > 0 && total > a.cfg.MaxPowerKW {
		total = a.cfg.MaxPowerKW
	}
	return total
}

// isSilenceTimeout reports whether a Recv error is the autonomy
// deadline firing (as opposed to the session ending): a context
// deadline on the in-memory transport, or a connection read deadline
// on TCP.
func isSilenceTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
