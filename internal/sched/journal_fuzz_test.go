package sched

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// checkpointSeed marshals a realistic checkpoint for the fuzz corpus.
func checkpointSeed(f *testing.F, cp Checkpoint) []byte {
	f.Helper()
	raw, err := json.Marshal(cp)
	if err != nil {
		f.Fatalf("marshal checkpoint: %v", err)
	}
	return raw
}

// FuzzJournalDecode drives the shared checkpoint decoder with real
// checkpoints, truncated and corrupted variants, and records
// straddling the MaxCheckpointBytes boundary. The invariants:
// oversized records always error, the decoder never panics on
// arbitrary bytes, and any checkpoint it accepts is internally
// consistent (row lengths match NumSections, entries finite and
// non-negative) and survives a marshal/decode round trip.
func FuzzJournalDecode(f *testing.F) {
	f.Add(checkpointSeed(f, Checkpoint{
		Epoch: 17, Round: 4, NumSections: 3, Seq: 9,
		Schedule: map[string][]float64{"ev-1": {1, 2, 3}, "ev-2": {0, 0.5, 0}},
	}))
	f.Add(checkpointSeed(f, Checkpoint{NumSections: 0, Schedule: map[string][]float64{}}))
	f.Add(checkpointSeed(f, Checkpoint{Epoch: 1, NumSections: 1, Schedule: map[string][]float64{"solo": {42.5}}}))

	// Semantically invalid records the decoder must reject.
	f.Add([]byte(`{"epoch":1,"num_sections":-3,"schedule":{}}`))
	f.Add([]byte(`{"epoch":1,"round":-1,"num_sections":1,"schedule":{"ev":[1]}}`))
	f.Add([]byte(`{"num_sections":2,"schedule":{"ev":[1]}}`))
	f.Add([]byte(`{"num_sections":1,"schedule":{"ev":[-5]}}`))
	f.Add([]byte(`{"num_sections":1,"schedule":{"ev":[1e999]}}`))

	// Truncated, corrupted, empty.
	good := checkpointSeed(f, Checkpoint{
		Epoch: 2, NumSections: 2, Schedule: map[string][]float64{"a": {1, 1}},
	})
	f.Add(good[:len(good)/2])
	flipped := bytes.Clone(good)
	flipped[len(flipped)/3] ^= 0x5a
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("{not json"))

	// Size boundary: an oversized record padded with a long vehicle ID.
	f.Add([]byte(`{"num_sections":0,"schedule":{"` + strings.Repeat("v", 256) + `":[]}}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		cp, err := DecodeCheckpoint(raw)
		if len(raw) > MaxCheckpointBytes {
			if err == nil {
				t.Fatalf("record of %d bytes decoded without error", len(raw))
			}
			return
		}
		if err != nil {
			return // malformed input is allowed to fail, just not panic
		}
		// Accepted checkpoints must be internally consistent.
		if cp.NumSections < 0 || cp.Round < 0 {
			t.Fatalf("accepted checkpoint with negative shape: %+v", cp)
		}
		for id, row := range cp.Schedule {
			if len(row) != cp.NumSections {
				t.Fatalf("accepted row %q with %d sections, want %d", id, len(row), cp.NumSections)
			}
			for _, kw := range row {
				if math.IsNaN(kw) || math.IsInf(kw, 0) || kw < 0 {
					t.Fatalf("accepted invalid allocation %v in row %q", kw, id)
				}
			}
		}
		// Round trip through the journal's own encoding.
		again, err := json.Marshal(cp)
		if err != nil {
			t.Fatalf("re-marshal accepted checkpoint: %v", err)
		}
		cp2, err := DecodeCheckpoint(again)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if cp2.Epoch != cp.Epoch || cp2.Round != cp.Round ||
			cp2.NumSections != cp.NumSections || cp2.Seq != cp.Seq {
			t.Fatalf("round-trip header mismatch: %+v vs %+v", cp2, cp)
		}
	})
}

// TestDecodeCheckpointRejections pins the decoder's validation rules
// outside the fuzz loop so a regression fails fast in plain `go test`.
func TestDecodeCheckpointRejections(t *testing.T) {
	bad := map[string]string{
		"not json":          `{nope`,
		"negative sections": `{"num_sections":-1,"schedule":{}}`,
		"negative round":    `{"round":-2,"num_sections":1,"schedule":{"ev":[0]}}`,
		"row too short":     `{"num_sections":3,"schedule":{"ev":[1,2]}}`,
		"row too long":      `{"num_sections":1,"schedule":{"ev":[1,2]}}`,
		"negative alloc":    `{"num_sections":1,"schedule":{"ev":[-0.5]}}`,
		"infinite alloc":    `{"num_sections":1,"schedule":{"ev":[1e999]}}`,
	}
	for name, raw := range bad {
		if _, err := DecodeCheckpoint([]byte(raw)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := DecodeCheckpoint(bytes.Repeat([]byte{'x'}, MaxCheckpointBytes+1)); err == nil {
		t.Error("oversized record decoded without error")
	}
	good := `{"epoch":3,"round":1,"num_sections":2,"seq":12,"schedule":{"ev":[0,1.5]}}`
	cp, err := DecodeCheckpoint([]byte(good))
	if err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if cp.Seq != 12 || cp.Schedule["ev"][1] != 1.5 {
		t.Fatalf("valid checkpoint mangled: %+v", cp)
	}
}
