package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// BenchmarkConvergenceVsDropRate measures how link loss stretches the
// best-response iteration: rounds-to-convergence and wall time at 0%,
// 10%, and 20% drop rates (both directions of every link).
//
//	go test ./internal/sched/ -bench ConvergenceVsDropRate -benchtime 5x
func BenchmarkConvergenceVsDropRate(b *testing.B) {
	for _, dropRate := range []float64{0, 0.10, 0.20} {
		b.Run(fmt.Sprintf("drop%02.0f", dropRate*100), func(b *testing.B) {
			const n = 6
			var totalRounds, totalRetries int
			for iter := 0; iter < b.N; iter++ {
				links := make(map[string]v2i.Transport, n)
				agents := make([]*Agent, 0, n)
				for i := 0; i < n; i++ {
					id := fmt.Sprintf("ev-%02d", i)
					gridSide, vehicleSide := v2i.NewPair(64)
					var gridLink, vehicleLink v2i.Transport = gridSide, vehicleSide
					if dropRate > 0 {
						plan := func(seed int64) v2i.FaultConfig {
							return v2i.FaultConfig{DropRate: dropRate, Seed: seed}
						}
						gridLink = v2i.NewFaulty(gridSide, plan(int64(iter*100+i)))
						vehicleLink = v2i.NewFaulty(vehicleSide, plan(int64(iter*100+50+i)))
					}
					agent, err := NewAgent(AgentConfig{
						VehicleID:    id,
						MaxPowerKW:   60,
						Satisfaction: core.LogSatisfaction{Weight: 1 + 0.1*float64(i%3)},
					}, vehicleLink)
					if err != nil {
						b.Fatal(err)
					}
					links[id] = gridLink
					agents = append(agents, agent)
				}
				coord, err := NewCoordinator(CoordinatorConfig{
					NumSections:      8,
					LineCapacityKW:   53.55,
					Cost:             nonlinearSpec(),
					Tolerance:        1e-4,
					MaxRounds:        200,
					RoundTimeout:     25 * time.Millisecond,
					MaxRetries:       6,
					RetryBackoff:     2 * time.Millisecond,
					SkipUnresponsive: true,
					Seed:             int64(iter),
				}, links)
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				var wg sync.WaitGroup
				for _, a := range agents {
					wg.Add(1)
					go func(a *Agent) {
						defer wg.Done()
						_, _ = a.Run(ctx)
					}(a)
				}
				report, err := coord.Run(ctx)
				for _, l := range links {
					_ = l.Close()
				}
				wg.Wait()
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if !report.Converged {
					b.Fatalf("drop=%v did not converge: %+v", dropRate, report)
				}
				totalRounds += report.Rounds
				totalRetries += report.Retries
			}
			b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(totalRetries)/float64(b.N), "retries/op")
		})
	}
}
