package sched

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// scriptReply answers the next quote on link with the given total,
// echoing the quote's epoch, using the given envelope seq. It returns
// the received quote.
func scriptReply(t *testing.T, ctx context.Context, link v2i.Transport, seq uint64, total float64) v2i.Quote {
	t.Helper()
	env, err := link.Recv(ctx)
	if err != nil {
		t.Fatalf("script recv quote: %v", err)
	}
	var q v2i.Quote
	if err := v2i.Open(env, v2i.TypeQuote, &q); err != nil {
		t.Fatalf("script open quote: %v", err)
	}
	out, err := v2i.Seal(v2i.TypeRequest, q.VehicleID, seq, v2i.Request{
		VehicleID: q.VehicleID, TotalKW: total, Round: q.Round, Epoch: q.Epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Send(ctx, out); err != nil {
		t.Fatalf("script send request: %v", err)
	}
	return q
}

// drainUntilClosed consumes remaining grid frames (schedule,
// converged, bye) so the coordinator never blocks on a full buffer.
func drainUntilClosed(ctx context.Context, link v2i.Transport) {
	for {
		if _, err := link.Recv(ctx); err != nil {
			return
		}
	}
}

// TestReplayedRequestDiscarded is the regression for the seed's
// unchecked Envelope.Seq: a vehicle (or a duplicating link) replays
// its round-1 request frame verbatim. The coordinator must reject the
// replay by its non-monotonic sequence number instead of treating it
// as the answer to the round-2 quote.
func TestReplayedRequestDiscarded(t *testing.T) {
	gridSide, vehicleSide := v2i.NewPair(16)
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    4,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-3,
		MaxRounds:      10,
		RoundTimeout:   2 * time.Second,
	}, map[string]v2i.Transport{"manual": gridSide})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Round 1: answer with seq 1, then replay the exact frame.
		env, err := vehicleSide.Recv(ctx)
		if err != nil {
			return
		}
		var q v2i.Quote
		if err := v2i.Open(env, v2i.TypeQuote, &q); err != nil {
			return
		}
		out, err := v2i.Seal(v2i.TypeRequest, "manual", 1, v2i.Request{
			VehicleID: "manual", TotalKW: 55, Round: q.Round, Epoch: q.Epoch,
		})
		if err != nil {
			return
		}
		_ = vehicleSide.Send(ctx, out)
		_ = vehicleSide.Send(ctx, out) // the replayed frame
		if _, err := vehicleSide.Recv(ctx); err != nil {
			return // schedule msg
		}
		// Round 2: a stale best-response first (old epoch, absurd
		// total), then the genuine answer.
		env, err = vehicleSide.Recv(ctx)
		if err != nil {
			return
		}
		var q2 v2i.Quote
		if err := v2i.Open(env, v2i.TypeQuote, &q2); err != nil {
			return
		}
		stale, err := v2i.Seal(v2i.TypeRequest, "manual", 3, v2i.Request{
			VehicleID: "manual", TotalKW: 99, Round: q2.Round, Epoch: q.Epoch,
		})
		if err != nil {
			return
		}
		_ = vehicleSide.Send(ctx, stale)
		fresh, err := v2i.Seal(v2i.TypeRequest, "manual", 4, v2i.Request{
			VehicleID: "manual", TotalKW: 55, Round: q2.Round, Epoch: q2.Epoch,
		})
		if err != nil {
			return
		}
		_ = vehicleSide.Send(ctx, fresh)
		drainUntilClosed(ctx, vehicleSide)
	}()

	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	_ = gridSide.Close()
	wg.Wait()

	if !report.Converged {
		t.Errorf("did not converge: %+v", report)
	}
	// One replayed frame + one stale-epoch frame were discarded.
	if report.StaleDropped != 2 {
		t.Errorf("StaleDropped = %d, want 2", report.StaleDropped)
	}
	// The stale 99 kW answer must never have been water-filled.
	if got := report.Requests["manual"]; math.Abs(got-55) > 1e-9 {
		t.Errorf("final request %v, want 55 (stale 99 must be discarded)", got)
	}
}

// TestCircuitBreakerEvictsSilentVehicle: a vehicle that stops
// answering is skipped, then evicted after EvictAfter consecutive
// failed turns, and the rest of the fleet converges without it.
func TestCircuitBreakerEvictsSilentVehicle(t *testing.T) {
	goodGrid, goodVehicle := v2i.NewPair(16)
	silentGrid, _ := v2i.NewPair(16)
	agent, err := NewAgent(AgentConfig{
		VehicleID:    "good",
		MaxPowerKW:   60,
		Satisfaction: core.LogSatisfaction{Weight: 1},
	}, goodVehicle)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    4,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-3,
		MaxRounds:      30,
		RoundTimeout:   50 * time.Millisecond,
		MaxRetries:     1,
		RetryBackoff:   2 * time.Millisecond,
		EvictAfter:     2,
	}, map[string]v2i.Transport{"good": goodGrid, "silent": silentGrid})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = agent.Run(ctx)
	}()
	report, err := coord.Run(ctx)
	_ = goodGrid.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	if report.Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", report.Evicted)
	}
	if report.Skipped == 0 {
		t.Error("breaker tripped without any skipped turn first")
	}
	if !report.Converged {
		t.Errorf("fleet did not converge after eviction: %+v", report)
	}
	if _, stillThere := report.Requests["silent"]; stillThere {
		t.Error("evicted vehicle still holds a schedule")
	}
	if report.Requests["good"] <= 0 {
		t.Error("surviving vehicle got no power")
	}
}

// TestMidIterationJoin: a vehicle joining while the game is running
// enters at the next round boundary with a fresh quote, perturbs the
// schedule, and the enlarged fleet converges.
func TestMidIterationJoin(t *testing.T) {
	scriptGrid, scriptVehicle := v2i.NewPair(16)
	bGrid, bVehicle := v2i.NewPair(16)
	cGrid, cVehicle := v2i.NewPair(16)

	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    5,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-3,
		MaxRounds:      50,
		RoundTimeout:   2 * time.Second,
	}, map[string]v2i.Transport{"script": scriptGrid, "b": bGrid})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup

	mkRun := func(id string, side v2i.Transport) {
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: 1},
		}, side)
		if err != nil {
			t.Error(err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = agent.Run(ctx)
		}()
	}
	mkRun("b", bVehicle)
	mkRun("c", cVehicle)

	// The script vehicle requests a fixed total; on its round-2 turn it
	// enqueues the join of "c" between receiving the quote and sending
	// the reply — the coordinator is provably still mid-iteration,
	// blocked on this exchange, when the join lands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		scriptReply(t, ctx, scriptVehicle, 1, 30)
		if _, err := scriptVehicle.Recv(ctx); err != nil { // schedule
			return
		}
		env, err := scriptVehicle.Recv(ctx)
		if err != nil {
			return
		}
		var q2 v2i.Quote
		if err := v2i.Open(env, v2i.TypeQuote, &q2); err != nil {
			t.Errorf("round-2 frame is not a quote: %v", err)
			return
		}
		if err := coord.Join("c", cGrid); err != nil {
			t.Errorf("join: %v", err)
		}
		out, err := v2i.Seal(v2i.TypeRequest, "script", 2, v2i.Request{
			VehicleID: "script", TotalKW: 30, Round: q2.Round, Epoch: q2.Epoch,
		})
		if err != nil {
			return
		}
		if err := scriptVehicle.Send(ctx, out); err != nil {
			return
		}
		seq := uint64(2)
		for {
			seq++
			env, err := scriptVehicle.Recv(ctx)
			if err != nil {
				return
			}
			var q v2i.Quote
			if err := v2i.Open(env, v2i.TypeQuote, &q); err != nil {
				continue // schedule/converged/bye
			}
			out, err := v2i.Seal(v2i.TypeRequest, "script", seq, v2i.Request{
				VehicleID: "script", TotalKW: 30, Round: q.Round, Epoch: q.Epoch,
			})
			if err != nil {
				return
			}
			if err := scriptVehicle.Send(ctx, out); err != nil {
				return
			}
		}
	}()

	report, err := coord.Run(ctx)
	for _, l := range []v2i.Transport{scriptGrid, bGrid, cGrid} {
		_ = l.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	if report.Joined != 1 {
		t.Errorf("Joined = %d, want 1", report.Joined)
	}
	if !report.Converged {
		t.Errorf("did not converge after join: %+v", report)
	}
	if p, ok := report.Requests["c"]; !ok || p <= 0 {
		t.Errorf("joiner unpowered: %+v", report.Requests)
	}
	if len(report.Requests) != 3 {
		t.Errorf("final fleet %d, want 3", len(report.Requests))
	}
}
