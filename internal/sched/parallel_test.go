package sched

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

// launchGameParallel is launchGame with a batching coordinator.
func launchGameParallel(t *testing.T, n, sections, parallelism int, tol float64) (Report, []AgentResult) {
	t.Helper()
	links := make(map[string]v2i.Transport, n)
	agents := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(8)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60 + float64(i%5)*8,
			Satisfaction: core.LogSatisfaction{Weight: 1 + 0.05*float64(i%4)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    sections,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      tol,
		MaxRounds:      300,
		Parallelism:    parallelism,
		Seed:           1,
	}, links)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	results := make([]AgentResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, a := range agents {
		wg.Add(1)
		go func(i int, a *Agent) {
			defer wg.Done()
			results[i], errs[i] = a.Run(ctx)
		}(i, a)
	}
	report, err := coord.Run(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	return report, results
}

// TestBatchedCoordinatorConverges: batched quote collection must reach
// the same equilibrium as the sequential protocol — the speculative
// Jacobi blocks change the trajectory, never the fixed point.
func TestBatchedCoordinatorConverges(t *testing.T) {
	const n, sections = 10, 8
	seqReport, _ := launchGameParallel(t, n, sections, 0, 1e-5)
	batReport, batResults := launchGameParallel(t, n, sections, 4, 1e-5)

	if !seqReport.Converged {
		t.Fatalf("sequential run did not converge in %d rounds", seqReport.Rounds)
	}
	if !batReport.Converged {
		t.Fatalf("batched run did not converge in %d rounds (degraded %d)",
			batReport.Rounds, batReport.DegradedRounds)
	}
	for id, want := range seqReport.Requests {
		got, ok := batReport.Requests[id]
		if !ok {
			t.Fatalf("vehicle %s missing from batched report", id)
		}
		if math.Abs(got-want) > 0.01*(1+want) {
			t.Errorf("vehicle %s: batched %v vs sequential %v", id, got, want)
		}
	}
	if d := math.Abs(batReport.CongestionDegree - seqReport.CongestionDegree); d > 0.01 {
		t.Errorf("congestion: batched %v vs sequential %v",
			batReport.CongestionDegree, seqReport.CongestionDegree)
	}
	for i, r := range batResults {
		if !r.Converged {
			t.Errorf("agent %d missed the convergence announcement", i)
		}
		if r.FinalPaymentH < 0 {
			t.Errorf("agent %d negative payment %v", i, r.FinalPaymentH)
		}
	}
	t.Logf("sequential rounds=%d, batched rounds=%d degraded=%d",
		seqReport.Rounds, batReport.Rounds, batReport.DegradedRounds)
}

// TestBatchedCoordinatorWiderThanFleet: Parallelism beyond the fleet
// size must clamp, not wedge.
func TestBatchedCoordinatorWiderThanFleet(t *testing.T) {
	report, _ := launchGameParallel(t, 4, 6, 16, 1e-4)
	if !report.Converged {
		t.Fatalf("did not converge in %d rounds", report.Rounds)
	}
}
