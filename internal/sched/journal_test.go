package sched

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

func TestFileJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	j := NewFileJournal(path)

	if _, ok, err := j.Load(); err != nil || ok {
		t.Fatalf("empty journal Load = ok=%v err=%v", ok, err)
	}
	cp := Checkpoint{
		Epoch:       17,
		Round:       4,
		NumSections: 3,
		Schedule:    map[string][]float64{"ev-1": {1, 2, 3}, "ev-2": {0, 0.5, 0}},
	}
	if err := j.Save(cp); err != nil {
		t.Fatal(err)
	}
	got, ok, err := j.Load()
	if err != nil || !ok {
		t.Fatalf("Load = ok=%v err=%v", ok, err)
	}
	if got.Epoch != 17 || got.Round != 4 || got.NumSections != 3 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Schedule["ev-1"][2] != 3 || got.Schedule["ev-2"][1] != 0.5 {
		t.Errorf("schedule mismatch: %+v", got.Schedule)
	}

	// A corrupt file is an error, not a silent empty journal.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Load(); err == nil {
		t.Error("corrupt checkpoint loaded without error")
	}
}

func TestMemJournalIsolation(t *testing.T) {
	j := NewMemJournal()
	cp := Checkpoint{NumSections: 2, Schedule: map[string][]float64{"ev": {1, 1}}}
	if err := j.Save(cp); err != nil {
		t.Fatal(err)
	}
	cp.Schedule["ev"][0] = 99 // mutating the caller's copy must not leak in
	got, ok, err := j.Load()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got.Schedule["ev"][0] != 1 {
		t.Errorf("journal shares rows with callers: %+v", got.Schedule)
	}
	got.Schedule["ev"][1] = 99 // nor out
	again, _, _ := j.Load()
	if again.Schedule["ev"][1] != 1 {
		t.Error("journal shares rows with readers")
	}
}

// runJournaledEpisode runs n fresh agents against a coordinator
// configured with the given journal and returns the report.
func runJournaledEpisode(t *testing.T, n int, journal Journal) (Report, *Coordinator) {
	t.Helper()
	links := make(map[string]v2i.Transport, n)
	agents := make([]*Agent, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(16)
		links[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: 1 + 0.1*float64(i%3)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    6,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      100,
		Journal:        journal,
		Seed:           3,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, a := range agents {
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			_, _ = a.Run(ctx)
		}(a)
	}
	report, err := coord.Run(ctx)
	for _, l := range links {
		_ = l.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("episode: %v", err)
	}
	return report, coord
}

// TestCheckpointAndWarmRestart: a converged run journals its
// schedule; a brand-new coordinator (the restarted process) restores
// it, warm-starts, and lands on the same equilibrium at least as
// fast.
func TestCheckpointAndWarmRestart(t *testing.T) {
	journal := NewFileJournal(filepath.Join(t.TempDir(), "grid.ckpt"))

	first, c1 := runJournaledEpisode(t, 4, journal)
	if !first.Converged {
		t.Fatalf("episode 1 did not converge: %+v", first)
	}
	if !first.CheckpointSaved {
		t.Fatal("converged schedule was not journaled")
	}
	if c1.Restored() {
		t.Error("episode 1 claims to have restored from an empty journal")
	}

	// "Crash": the first coordinator is discarded; a new process
	// restores from disk.
	second, c2 := runJournaledEpisode(t, 4, journal)
	if !c2.Restored() {
		t.Fatal("restart did not restore the checkpoint")
	}
	if !second.Converged {
		t.Fatalf("warm-started run did not converge: %+v", second)
	}
	if second.Rounds > first.Rounds {
		t.Errorf("warm start took %d rounds, cold start took %d", second.Rounds, first.Rounds)
	}
	for id, want := range first.Requests {
		got := second.Requests[id]
		if math.Abs(got-want) > 0.01*(1+want) {
			t.Errorf("vehicle %s: restarted %v vs original %v", id, got, want)
		}
	}
}

// TestFallbackToLastGoodOnExhaustion: a vehicle that oscillates
// forever burns MaxRounds; the coordinator must degrade to the
// journaled last-known-good schedule instead of serving the
// half-settled one.
func TestFallbackToLastGoodOnExhaustion(t *testing.T) {
	journal := NewMemJournal()
	if err := journal.Save(Checkpoint{
		Epoch:       5,
		Round:       3,
		NumSections: 3,
		Schedule:    map[string][]float64{"osc": {2, 2, 2}},
	}); err != nil {
		t.Fatal(err)
	}

	gridSide, vehicleSide := v2i.NewPair(16)
	coord, err := NewCoordinator(CoordinatorConfig{
		NumSections:    3,
		LineCapacityKW: 53.55,
		Cost:           nonlinearSpec(),
		Tolerance:      1e-4,
		MaxRounds:      3,
		RoundTimeout:   2 * time.Second,
		Journal:        journal,
	}, map[string]v2i.Transport{"osc": gridSide})
	if err != nil {
		t.Fatal(err)
	}
	if !coord.Restored() {
		t.Fatal("compatible checkpoint not restored at construction")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		totals := []float64{10, 20}
		var seq uint64
		answered := 0 // advances only on quotes actually answered
		for {
			env, err := vehicleSide.Recv(ctx)
			if err != nil {
				return
			}
			var q v2i.Quote
			if err := v2i.Open(env, v2i.TypeQuote, &q); err != nil {
				continue // schedule/converged/bye frames
			}
			seq++
			out, err := v2i.Seal(v2i.TypeRequest, "osc", seq, v2i.Request{
				VehicleID: "osc", TotalKW: totals[answered%2], Round: q.Round, Epoch: q.Epoch,
			})
			answered++
			if err != nil {
				return
			}
			if err := vehicleSide.Send(ctx, out); err != nil {
				return
			}
		}
	}()

	report, err := coord.Run(ctx)
	_ = gridSide.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if report.Converged {
		t.Fatal("oscillating vehicle should not converge")
	}
	if !report.FellBack {
		t.Fatal("exhausted run did not fall back to last-known-good")
	}
	if got := report.Requests["osc"]; math.Abs(got-6) > 1e-9 {
		t.Errorf("fallback schedule total %v, want 6 (the journaled 2+2+2)", got)
	}
}
