package sched

import (
	"context"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/obs"
	"olevgrid/internal/v2i"
)

// TestAutonomyGaugesMirrorLegacyCounters replays the autonomy test
// matrix — silence-tripped degradation, staleness shedding, a
// reconnect, and a heartbeat-kept session — with one shared Metrics
// bundle armed on every agent, and proves the migrated obs gauges
// (DegradedEpisodes/Reconnects/Heartbeats) equal the legacy
// AgentResult counters summed over the whole matrix, with the event
// sink carrying exactly one span per episode transition.
func TestAutonomyGaugesMirrorLegacyCounters(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	reg := obs.NewRegistry()
	sink := obs.NewEventSink(256)
	m := NewMetrics(reg, sink)
	spec := nonlinearSpec()

	scenarios := []struct {
		name string
		run  func(t *testing.T) AgentResult
	}{
		{"silence-degrades", func(t *testing.T) AgentResult {
			grid, done := autonomyRig(t, ctx, AgentConfig{
				VehicleID:    "ev-a",
				MaxPowerKW:   200,
				Satisfaction: core.LogSatisfaction{Weight: 1},
				Autonomy:     &AutonomyConfig{QuoteDeadline: 20 * time.Millisecond},
				Metrics:      m,
			})
			sendQuote(t, ctx, grid, 1, v2i.Quote{
				VehicleID: "ev-a", Others: []float64{0, 0, 0}, Cost: spec,
				Round: 1, Epoch: 1, FleetSize: 4,
			})
			time.Sleep(120 * time.Millisecond)
			sendBye(t, ctx, grid, 2)
			return <-done
		}},
		{"stale-state-sheds", func(t *testing.T) AgentResult {
			grid, done := autonomyRig(t, ctx, AgentConfig{
				VehicleID:    "ev-b",
				MaxPowerKW:   200,
				Satisfaction: core.LogSatisfaction{Weight: 1},
				Autonomy: &AutonomyConfig{
					QuoteDeadline: 20 * time.Millisecond,
					StalenessTTL:  time.Millisecond,
				},
				Metrics: m,
			})
			sendQuote(t, ctx, grid, 1, v2i.Quote{
				VehicleID: "ev-b", Others: []float64{0, 0}, Cost: spec,
				Round: 1, Epoch: 1, FleetSize: 3,
			})
			time.Sleep(80 * time.Millisecond)
			sendBye(t, ctx, grid, 2)
			return <-done
		}},
		{"reconnect-ends-episode", func(t *testing.T) AgentResult {
			grid, done := autonomyRig(t, ctx, AgentConfig{
				VehicleID:    "ev-c",
				MaxPowerKW:   200,
				Satisfaction: core.LogSatisfaction{Weight: 1},
				Autonomy:     &AutonomyConfig{QuoteDeadline: 20 * time.Millisecond},
				Metrics:      m,
			})
			sendQuote(t, ctx, grid, 1, v2i.Quote{
				VehicleID: "ev-c", Others: []float64{0, 0}, Cost: spec,
				Round: 1, Epoch: 1, FleetSize: 2,
			})
			time.Sleep(80 * time.Millisecond)
			sendQuote(t, ctx, grid, 2, v2i.Quote{
				VehicleID: "ev-c", Others: []float64{1, 1}, Cost: spec,
				Round: 2, Epoch: 1, FleetSize: 2,
			})
			sendBye(t, ctx, grid, 3)
			return <-done
		}},
		{"heartbeats-prevent-degrade", func(t *testing.T) AgentResult {
			grid, done := autonomyRig(t, ctx, AgentConfig{
				VehicleID:    "ev-d",
				MaxPowerKW:   200,
				Satisfaction: core.LogSatisfaction{Weight: 1},
				Autonomy:     &AutonomyConfig{QuoteDeadline: 80 * time.Millisecond},
				Metrics:      m,
			})
			var seq uint64
			for i := 0; i < 4; i++ {
				seq++
				env, err := v2i.Seal(v2i.TypeHeartbeat, "grid", seq, v2i.Heartbeat{Epoch: 1, Round: i})
				if err != nil {
					t.Fatal(err)
				}
				if err := grid.Send(ctx, env); err != nil {
					t.Fatal(err)
				}
				time.Sleep(20 * time.Millisecond)
			}
			seq++
			sendBye(t, ctx, grid, seq)
			return <-done
		}},
	}

	var degraded, reconnects, heartbeats int
	for _, sc := range scenarios {
		res := sc.run(t)
		degraded += res.DegradedEpisodes
		reconnects += res.Reconnects
		heartbeats += res.Heartbeats
	}
	if degraded == 0 || reconnects == 0 || heartbeats == 0 {
		t.Fatalf("matrix exercised nothing: degraded=%d reconnects=%d heartbeats=%d",
			degraded, reconnects, heartbeats)
	}

	// The migrated gauges must equal the legacy counters exactly —
	// the same events, counted at the same sites, just shared.
	if got := int(m.DegradedEpisodes.Value()); got != degraded {
		t.Errorf("degraded-episodes gauge %d, legacy sum %d", got, degraded)
	}
	if got := int(m.Reconnects.Value()); got != reconnects {
		t.Errorf("reconnects gauge %d, legacy sum %d", got, reconnects)
	}
	if got := int(m.Heartbeats.Value()); got != heartbeats {
		t.Errorf("heartbeats gauge %d, legacy sum %d", got, heartbeats)
	}

	// One span per transition: episode starts and reconnects land in
	// the sink exactly once each, never once per silent timeout tick.
	if got := sink.CountKind(obs.EventDegraded); got != degraded {
		t.Errorf("degraded events %d, episodes %d", got, degraded)
	}
	if got := sink.CountKind(obs.EventReconnect); got != reconnects {
		t.Errorf("reconnect events %d, reconnects %d", got, reconnects)
	}
}
