package sched

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/grid"
	"olevgrid/internal/v2i"
)

// TestControlPlaneChaos is the PR's headline acceptance experiment:
// one seeded run (N=20, C=20) suffering, all at once,
//
//   - 20% frame loss plus duplication and reordering on every link,
//   - a primary coordinator crash mid-iteration with a standby
//     takeover off the journaled checkpoint,
//   - a 20% LBMP feed dropout rate with decay toward the floor, and
//   - two charging-section outages with scripted restorations,
//
// while every agent has degraded-mode autonomy armed. The fleet must
// still converge, and the final social welfare must land within 1% of
// a fault-free run — the potential-game guarantee that faults change
// the path, never the destination.
func TestControlPlaneChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane chaos takes seconds")
	}
	const n = 20
	chaosPlan := func(seed int64) v2i.FaultConfig {
		return v2i.FaultConfig{
			DropRate:      0.20,
			DuplicateRate: 0.10,
			ReorderRate:   0.10,
			MaxDelay:      2 * time.Millisecond,
			Seed:          seed,
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Fleet: chaos-wrapped links, autonomy armed on every agent.
	links := make(map[string]v2i.Transport, n)
	fleet := make(map[string]*chaosFleet, n)
	weights := make(map[string]float64, n)
	var (
		wg                   sync.WaitGroup
		mu                   sync.Mutex
		degraded, reconnects int
		heartbeats           int
		maxFallback          float64
	)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		rawGrid, rawVehicle := v2i.NewPair(64)
		fg := v2i.NewFaulty(rawGrid, chaosPlan(300+int64(i)))
		fv := v2i.NewFaulty(rawVehicle, chaosPlan(400+int64(i)))
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
			Autonomy:     &AutonomyConfig{QuoteDeadline: 40 * time.Millisecond},
		}, fv)
		if err != nil {
			t.Fatal(err)
		}
		fleet[id] = &chaosFleet{id: id, rawGrid: rawGrid, faultyGrid: fg, faultyVeh: fv, agent: agent}
		links[id] = fg
		weights[id] = chaosWeight(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := agent.Run(ctx)
			mu.Lock()
			degraded += res.DegradedEpisodes
			reconnects += res.Reconnects
			heartbeats += res.Heartbeats
			if res.LastFallbackKW > maxFallback {
				maxFallback = res.LastFallbackKW
			}
			mu.Unlock()
		}()
	}

	// Exogenous faults: a constant-source LBMP feed going dark 20% of
	// the rounds (decaying toward a floor, recovering to the true β so
	// the destination is unchanged), plus two section outages that are
	// both restored before the end of the script.
	spec := nonlinearSpec()
	feed, err := grid.NewLBMPFeed(func(int) float64 { return spec.BetaPerKWh }, grid.FeedConfig{
		DropRate:  0.20,
		Decay:     0.9,
		FloorBeta: spec.BetaPerKWh / 2,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	outages := []SectionOutage{
		{Section: 4, DownRound: 3, UpRound: 9},
		{Section: 12, DownRound: 5, UpRound: 11},
	}

	journal := NewMemJournal()
	lease := NewMemLease()
	primCtx, crash := context.WithCancel(ctx)
	defer crash()
	cfg := CoordinatorConfig{
		NumSections:      n,
		LineCapacityKW:   53.55,
		Cost:             spec,
		Tolerance:        1e-3,
		MaxRounds:        200,
		RoundTimeout:     25 * time.Millisecond,
		MaxRetries:       8,
		RetryBackoff:     3 * time.Millisecond,
		SkipUnresponsive: true,
		DropDeparted:     true,
		EvictAfter:       10,
		Seed:             7,
		Journal:          journal,
		CheckpointEvery:  1,
		Lease:            lease,
		LeaseTTL:         60 * time.Millisecond,
		InstanceID:       "primary",
		HeartbeatEvery:   2,
		Feed:             feed,
		Outages:          outages,
		OnRound: func(round int) {
			if round == 4 {
				crash() // the primary dies mid-iteration
			}
		},
	}
	prim, err := NewCoordinator(cfg, links)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Run(primCtx); err == nil {
		t.Fatal("primary survived its scripted crash")
	}

	// Silence long enough for the lease to lapse and agents to trip
	// their autonomy deadline.
	time.Sleep(150 * time.Millisecond)

	sb, err := NewStandby(StandbyConfig{
		InstanceID: "standby", Journal: journal, Lease: lease, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	take, ok, err := sb.TryTakeover(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		take, ok, err = sb.TryTakeover(time.Now().Add(time.Second))
		if err != nil || !ok {
			t.Fatalf("takeover failed: ok=%v err=%v", ok, err)
		}
	}
	cfg2 := cfg
	cfg2.OnRound = nil
	cfg2.InstanceID = "standby"
	standby, err := ResumeCoordinator(cfg2, links, take)
	if err != nil {
		t.Fatal(err)
	}
	if !standby.Restored() {
		t.Fatal("standby did not warm-start from the checkpoint")
	}
	report, err := standby.Run(ctx)
	for _, v := range fleet {
		_ = v.rawGrid.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("standby run: %v", err)
	}
	if !report.Converged {
		t.Fatalf("fleet did not converge under control-plane chaos: %+v", report)
	}

	// Every fault class must actually have fired.
	if feed.Dropouts() == 0 {
		t.Error("the feed never dropped a sample")
	}
	if report.FeedChanges == 0 {
		t.Error("β never moved despite feed dropouts with decay")
	}
	if report.OutagesApplied != 2 || report.RestoresApplied != 2 {
		t.Errorf("outage script: applied=%d restored=%d, want 2/2",
			report.OutagesApplied, report.RestoresApplied)
	}
	if report.LiveSections != n {
		t.Errorf("final live sections = %d, want %d (both outages restored)", report.LiveSections, n)
	}
	if degraded == 0 {
		t.Error("no agent ever entered degraded-mode autonomy across the failover gap")
	}
	if reconnects == 0 {
		t.Error("no agent ever re-converged out of degraded mode")
	}
	if maxFallback <= 0 {
		t.Error("degraded agents held a zero fallback despite known capacities")
	}
	if heartbeats == 0 {
		t.Error("no heartbeat ever landed")
	}
	if report.FinalEpoch < take.Epoch {
		t.Errorf("final epoch %d below the takeover fence %d", report.FinalEpoch, take.Epoch)
	}

	// Baseline: the same fleet, clean links, no faults.
	baseLinks := make(map[string]v2i.Transport, n)
	var baseWG sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(64)
		baseLinks[id] = gridSide
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		baseWG.Add(1)
		go func() {
			defer baseWG.Done()
			_, _ = agent.Run(ctx)
		}()
	}
	base, err := NewCoordinator(CoordinatorConfig{
		NumSections:    n,
		LineCapacityKW: 53.55,
		Cost:           spec,
		Tolerance:      1e-4,
		MaxRounds:      300,
		Seed:           7,
	}, baseLinks)
	if err != nil {
		t.Fatal(err)
	}
	baseReport, err := base.Run(ctx)
	for _, l := range baseLinks {
		_ = l.Close()
	}
	baseWG.Wait()
	if err != nil || !baseReport.Converged {
		t.Fatalf("clean baseline failed: %v %+v", err, baseReport)
	}

	wChaos := welfareOf(report, weights)
	wClean := welfareOf(baseReport, weights)
	if rel := math.Abs(wChaos-wClean) / math.Abs(wClean); rel > 0.01 {
		t.Errorf("welfare under control-plane chaos %.6f vs clean %.6f: rel err %.4f > 1%%",
			wChaos, wClean, rel)
	}
}
