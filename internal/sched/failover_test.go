package sched

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/v2i"
)

func TestMemLeaseSemantics(t *testing.T) {
	l := NewMemLease()
	t0 := time.Unix(1000, 0)

	if _, held, _ := l.Observe(t0); held {
		t.Fatal("fresh lease claims a holder")
	}
	if ok, err := l.Renew("a", 1, time.Second, t0); err != nil || !ok {
		t.Fatalf("free lease refused: ok=%v err=%v", ok, err)
	}
	// A rival before expiry is refused; the holder itself renews.
	if ok, _ := l.Renew("b", 9, time.Second, t0.Add(500*time.Millisecond)); ok {
		t.Fatal("rival acquired an unexpired lease")
	}
	if ok, _ := l.Renew("a", 2, time.Second, t0.Add(900*time.Millisecond)); !ok {
		t.Fatal("holder refused its own renewal")
	}
	// After expiry the rival wins, and the observation reflects it.
	if ok, _ := l.Renew("b", 9, time.Second, t0.Add(3*time.Second)); !ok {
		t.Fatal("rival refused an expired lease")
	}
	st, held, _ := l.Observe(t0.Add(3 * time.Second))
	if !held || st.Holder != "b" || st.Epoch != 9 {
		t.Fatalf("observation after handover: %+v held=%v", st, held)
	}
	// Degenerate inputs error.
	if _, err := l.Renew("", 0, time.Second, t0); err == nil {
		t.Error("anonymous holder accepted")
	}
	if _, err := l.Renew("a", 0, 0, t0); err == nil {
		t.Error("zero ttl accepted")
	}
}

// A standby that boots into an empty lease table must not invent a
// session to steal.
func TestStandbyNoBootSteal(t *testing.T) {
	sb, err := NewStandby(StandbyConfig{InstanceID: "standby", Lease: NewMemLease(), Journal: NewMemJournal()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sb.TryTakeover(time.Unix(2000, 0)); err != nil || ok {
		t.Fatalf("standby took over with no primary ever observed: ok=%v err=%v", ok, err)
	}
}

// Takeover fences epoch and sequence above the checkpointed state so
// the PR-1 session validation rejects the partitioned primary.
func TestTakeoverFencing(t *testing.T) {
	lease := NewMemLease()
	journal := NewMemJournal()
	t0 := time.Unix(3000, 0)
	if ok, _ := lease.Renew("primary", 40, time.Second, t0); !ok {
		t.Fatal("primary could not acquire")
	}
	if err := journal.Save(Checkpoint{
		Epoch: 37, Round: 5, NumSections: 2, Seq: 123,
		Schedule: map[string][]float64{"ev-0": {1, 2}},
	}); err != nil {
		t.Fatal(err)
	}
	sb, err := NewStandby(StandbyConfig{InstanceID: "standby", Lease: lease, Journal: journal, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Primary alive: no takeover.
	if _, ok, _ := sb.TryTakeover(t0.Add(100 * time.Millisecond)); ok {
		t.Fatal("standby stole a live lease")
	}
	// Primary silent past TTL: takeover with fenced counters.
	take, ok, err := sb.TryTakeover(t0.Add(5 * time.Second))
	if err != nil || !ok {
		t.Fatalf("takeover failed: ok=%v err=%v", ok, err)
	}
	if take.Epoch != 40+epochFenceGap {
		t.Errorf("takeover epoch %d, want lease epoch 40 + gap %d", take.Epoch, epochFenceGap)
	}
	if take.InitialSeq != 123+seqFenceGap {
		t.Errorf("takeover seq %d, want checkpoint seq 123 + gap %d", take.InitialSeq, seqFenceGap)
	}
	if !take.HasCheckpoint || take.Checkpoint.Schedule["ev-0"][1] != 2 {
		t.Errorf("checkpoint not carried: %+v", take.Checkpoint)
	}
	// The new holder is on record; the dead primary's renewal bounces.
	if ok, _ := lease.Renew("primary", 41, time.Second, t0.Add(6*time.Second)); ok {
		t.Error("partitioned primary re-acquired over the standby")
	}
}

// failoverFleet wires n plain in-memory agents and returns their links
// and the private weights.
func failoverFleet(t *testing.T, ctx context.Context, n int, wg *sync.WaitGroup) (map[string]v2i.Transport, map[string]float64) {
	t.Helper()
	links := make(map[string]v2i.Transport, n)
	weights := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("ev-%02d", i)
		gridSide, vehicleSide := v2i.NewPair(64)
		links[id] = gridSide
		weights[id] = chaosWeight(i)
		agent, err := NewAgent(AgentConfig{
			VehicleID:    id,
			MaxPowerKW:   60,
			Satisfaction: core.LogSatisfaction{Weight: chaosWeight(i)},
		}, vehicleSide)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = agent.Run(ctx)
		}()
	}
	return links, weights
}

// scheduleDivergence is the max per-entry gap between two final
// schedules.
func scheduleDivergence(a, b map[string][]float64) float64 {
	var worst float64
	for id, ra := range a {
		rb := b[id]
		if len(rb) != len(ra) {
			return math.Inf(1)
		}
		for c := range ra {
			if d := math.Abs(ra[c] - rb[c]); d > worst {
				worst = d
			}
		}
	}
	if len(a) != len(b) {
		return math.Inf(1)
	}
	return worst
}

// failoverCase runs one crash-at-round-k + standby-takeover episode
// and returns the post-takeover report. crashed reports whether the
// primary actually died mid-session (a large k can let it converge
// first).
func failoverCase(t *testing.T, n int, seed int64, crashRound int) (report Report, crashed bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	links, _ := failoverFleet(t, ctx, n, &wg)
	journal := NewMemJournal()
	lease := NewMemLease()

	primCtx, crash := context.WithCancel(ctx)
	defer crash()
	cfg := CoordinatorConfig{
		NumSections:     n,
		LineCapacityKW:  53.55,
		Cost:            nonlinearSpec(),
		Tolerance:       1e-10,
		MaxRounds:       2000,
		Journal:         journal,
		CheckpointEvery: 1,
		Lease:           lease,
		LeaseTTL:        50 * time.Millisecond,
		InstanceID:      "primary",
		Seed:            seed,
		OnRound: func(round int) {
			if round == crashRound {
				crash()
			}
		},
	}
	prim, err := NewCoordinator(cfg, links)
	if err != nil {
		t.Fatal(err)
	}
	report, err = prim.Run(primCtx)
	if err == nil {
		// Converged before the scripted crash round: no failover to
		// exercise; the caller treats the run itself as the result.
		for _, l := range links {
			_ = l.Close()
		}
		wg.Wait()
		return report, false
	}

	sb, err := NewStandby(StandbyConfig{
		InstanceID: "standby", Journal: journal, Lease: lease, LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	take, ok, err := sb.TryTakeover(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		// The primary's lease has not lapsed in real time yet; observe
		// it once, then step past the TTL deterministically.
		take, ok, err = sb.TryTakeover(time.Now().Add(time.Second))
		if err != nil || !ok {
			t.Fatalf("takeover after lease expiry failed: ok=%v err=%v", ok, err)
		}
	}

	cfg2 := cfg
	cfg2.OnRound = nil
	cfg2.InstanceID = "standby"
	standby, err := ResumeCoordinator(cfg2, links, take)
	if err != nil {
		t.Fatal(err)
	}
	if take.HasCheckpoint && !standby.Restored() {
		t.Fatal("standby ignored the checkpoint")
	}
	report, err = standby.Run(ctx)
	for _, l := range links {
		_ = l.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("post-takeover run: %v", err)
	}
	if report.FinalEpoch < take.Epoch {
		t.Fatalf("final epoch %d below the fence %d", report.FinalEpoch, take.Epoch)
	}
	return report, true
}

// TestFailoverDeterminismSuite is the 30-instance differential suite:
// for every (seed, crash-round) pair, primary-crash-at-round-k plus
// standby takeover must land on the same equilibrium schedule as an
// uninterrupted run, within 1e-9 per entry — Theorem IV.1's promise
// that a warm start changes round counts, never the destination.
func TestFailoverDeterminismSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("failover sweep takes seconds")
	}
	const n = 5
	seeds := []int64{11, 22, 33, 44, 55}
	crashRounds := []int{1, 2, 3, 5, 8, 13}

	for _, seed := range seeds {
		// Uninterrupted reference for this seed.
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		var wg sync.WaitGroup
		links, _ := failoverFleet(t, ctx, n, &wg)
		ref, err := NewCoordinator(CoordinatorConfig{
			NumSections:    n,
			LineCapacityKW: 53.55,
			Cost:           nonlinearSpec(),
			Tolerance:      1e-10,
			MaxRounds:      2000,
			Seed:           seed,
		}, links)
		if err != nil {
			t.Fatal(err)
		}
		refReport, err := ref.Run(ctx)
		for _, l := range links {
			_ = l.Close()
		}
		wg.Wait()
		cancel()
		if err != nil || !refReport.Converged {
			t.Fatalf("seed %d reference failed: %v %+v", seed, err, refReport)
		}

		crashes := 0
		for _, k := range crashRounds {
			report, crashed := failoverCase(t, n, seed, k)
			if crashed {
				crashes++
			}
			if !report.Converged {
				t.Fatalf("seed %d crash@%d did not converge: %+v", seed, k, report)
			}
			if div := scheduleDivergence(report.Schedule, refReport.Schedule); div > 1e-9 {
				t.Errorf("seed %d crash@%d: schedule diverges by %v (> 1e-9)", seed, k, div)
			}
		}
		if crashes == 0 {
			t.Errorf("seed %d: no crash round actually interrupted the session", seed)
		}
	}
}
