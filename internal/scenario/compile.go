package scenario

import (
	"fmt"

	"olevgrid/internal/coupling"
	"olevgrid/internal/grid"
	"olevgrid/internal/pricing"
	"olevgrid/internal/trace"
	"olevgrid/internal/units"
)

// GameScenario compiles the spec into the single-hour pricing game:
// the fleet is drawn from the spec's seed, the line capacity follows
// Eq. (1) from the spec's section length and velocity, and the
// blackout's steady-state dead sections carry through. The
// compilation is deterministic — same spec, same game, bit for bit.
func (s Spec) GameScenario() (pricing.Scenario, error) {
	if err := s.Validate(); err != nil {
		return pricing.Scenario{}, err
	}
	s = s.withDefaults()
	vel := units.MPH(s.VelocityMPH)
	_, players, err := pricing.BuildFleet(pricing.FleetConfig{
		N:                  s.Vehicles,
		Velocity:           vel,
		SatisfactionWeight: s.SatisfactionWeight,
		Seed:               s.Seed,
	})
	if err != nil {
		return pricing.Scenario{}, fmt.Errorf("scenario %s: fleet: %w", s.Name, err)
	}
	return pricing.Scenario{
		Players:        players,
		NumSections:    s.Sections,
		LineCapacityKW: s.LineCapacityKW(),
		Eta:            s.Eta,
		BetaPerMWh:     s.BetaPerMWh,
		Seed:           s.Seed,
		DeadSections:   s.sortedDead(),
	}, nil
}

// LineCapacityKW evaluates Eq. (1) for the spec's section length and
// velocity — the per-section capacity every compile target shares.
func (s Spec) LineCapacityKW() float64 {
	s = s.withDefaults()
	return pricing.LineCapacityKW(units.Meters(s.SectionLengthM), units.MPH(s.VelocityMPH))
}

// DayConfig compiles the spec into a coupled 24-hour run: the day
// profile decides hourly traffic, the (possibly heat-wave-scaled) ISO
// day prices each hour, and the day-level faults — feed dropouts and
// section outage spans — degrade it.
func (s Spec) DayConfig() (coupling.DayConfig, error) {
	if err := s.Validate(); err != nil {
		return coupling.DayConfig{}, err
	}
	s = s.withDefaults()
	day := (DaySpec{}).withDefaults()
	if s.Day != nil {
		day = *s.Day
	}
	cfg := coupling.DayConfig{
		Counts:        dayCounts(day),
		Participation: day.Participation,
		SpeedLimit:    units.MPH(s.VelocityMPH),
		NumSections:   s.Sections,
		SectionLength: units.Meters(s.SectionLengthM),
		Eta:           s.Eta,
		Grid:          dayGrid(day, s.Seed),
		Seed:          s.Seed,
		MaxOLEVs:      day.MaxOLEVs,
	}
	if day.FeedDropRate > 0 || day.FeedCeiling > 0 {
		cfg.FeedFaults = &grid.FeedConfig{
			DropRate:         day.FeedDropRate,
			StalenessCeiling: day.FeedCeiling,
			Seed:             s.Seed + 4,
		}
	}
	for _, o := range day.SectionOutages {
		cfg.SectionOutages = append(cfg.SectionOutages, coupling.SectionOutage{
			Section: o.Section, FromHour: o.FromHour, ToHour: o.ToHour,
		})
	}
	return cfg, nil
}

// SessionParams is the daemon-facing compilation target: the sizing
// and pricing of one hosted per-arterial session. The serve layer
// maps it onto a SessionSpec; keeping the struct here (rather than
// importing serve) leaves the dependency pointing the right way.
type SessionParams struct {
	Vehicles       int
	Sections       int
	LineCapacityKW float64
	// BetaPerKWh is the session cost spec's unit ($/kWh, not the
	// spec's $/MWh).
	BetaPerKWh float64
	Seed       int64
	// Outages scripts mid-session section failures by round, for the
	// coordinator's outage machinery.
	Outages []RoundOutage
}

// SessionParams compiles the spec into daemon session parameters.
// The per-vehicle control plane has no dead-section steady state —
// a blackout session starts whole and loses sections mid-run via
// Outages, which is the recovery the archetype is named for.
func (s Spec) SessionParams() (SessionParams, error) {
	if err := s.Validate(); err != nil {
		return SessionParams{}, err
	}
	s = s.withDefaults()
	p := SessionParams{
		Vehicles:       s.Vehicles,
		Sections:       s.Sections,
		LineCapacityKW: s.LineCapacityKW(),
		BetaPerKWh:     s.BetaPerMWh / 1000,
		Seed:           s.Seed,
		Outages:        append([]RoundOutage(nil), s.Outages...),
	}
	// The steady-state blackout (dead from round one) is expressed as
	// an immediate outage with no restoration.
	for _, d := range s.sortedDead() {
		p.Outages = append(p.Outages, RoundOutage{Section: d, DownRound: 1})
	}
	return p, nil
}

// dayCounts builds the hourly traffic profile the day spec names.
func dayCounts(d DaySpec) trace.HourlyCounts {
	var counts trace.HourlyCounts
	switch d.Profile {
	case ProfileWeekend:
		counts = trace.FlatlandsAvenueWeekend()
	case ProfileOvernight:
		counts = depotOvernightCounts()
	case ProfileEvent:
		counts = eventEgressCounts(d.EventHour)
	default:
		counts = trace.FlatlandsAvenue()
	}
	if d.TrafficScale != 1 {
		counts = counts.Scale(d.TrafficScale)
	}
	return counts
}

// dayGrid builds the ISO day, heat-wave-scaled when asked: the price
// bounds stretch while the load calibration stays, which is exactly
// what a scarcity day does to an LBMP curve.
func dayGrid(d DaySpec, seed int64) grid.Config {
	cfg := grid.DefaultConfig()
	cfg.Seed = seed
	if d.LBMPScale != 1 {
		cfg.LBMPMin *= d.LBMPScale
		cfg.LBMPMax *= d.LBMPScale
	}
	return cfg
}

// depotOvernightCounts is the depot arterial's day: the fleet rolls
// in through the evening, sits over the charging lane all night, and
// is gone by mid-morning — the inverse of the commuter profile.
func depotOvernightCounts() trace.HourlyCounts {
	return trace.HourlyCounts{
		//  0    1    2    3    4    5    6    7
		760, 740, 720, 700, 640, 520, 330, 180,
		//  8    9   10   11   12   13   14   15
		110, 80, 60, 50, 50, 60, 70, 90,
		// 16   17   18   19   20   21   22   23
		130, 210, 330, 470, 590, 680, 730, 760,
	}
}

// eventEgressCounts is a weekday arterial with a stadium letting out:
// the base profile damped (fans are at the game, not commuting) with
// a sharp two-hour egress pulse.
func eventEgressCounts(hour int) trace.HourlyCounts {
	counts := trace.FlatlandsAvenue().Scale(0.6)
	counts[hour] += 2400
	counts[(hour+1)%24] += 1100
	return counts
}
