package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistry pins the library's contract: at least the five named
// archetypes, sorted names, and every registered spec valid with its
// map key as its name.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d archetypes, want >= 5", len(names))
	}
	for _, want := range []string{RushHourSurge, StadiumEgress, BlackoutRecovery, DepotOvernight, HeatWavePriceSpike} {
		if _, ok := Get(want); !ok {
			t.Errorf("archetype %q not registered", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %q before %q", names[i-1], names[i])
		}
	}
	for _, name := range names {
		s, _ := Get(name)
		if s.Name != name {
			t.Errorf("archetype %q has Name %q", name, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("archetype %q invalid: %v", name, err)
		}
		if err := ValidateName(name); err != nil {
			t.Errorf("archetype name %q fails its own charset: %v", name, err)
		}
		e := s.Expect
		if e.MinWelfare >= e.MaxWelfare || e.MaxRounds <= 0 || !e.RequireConverged {
			t.Errorf("archetype %q envelope undeclared: %+v", name, e)
		}
	}
}

// TestValidateName rejects anything that isn't a plain registered-name
// segment — the path-traversal guard for every boundary that accepts
// scenario names.
func TestValidateName(t *testing.T) {
	for _, bad := range []string{
		"", "..", "a/b", "../rush-hour-surge", "a\\b", "Rush-Hour", "a b",
		"rush.hour", "a\x00b", strings.Repeat("x", MaxNameLen+1),
	} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) accepted", bad)
		}
	}
	for _, good := range []string{"rush-hour-surge", "a", "x-1"} {
		if err := ValidateName(good); err != nil {
			t.Errorf("ValidateName(%q): %v", good, err)
		}
	}
}

// TestDecodeSpecRejects is the untrusted-input reject table: every
// entry must produce an error, never a panic and never a silently
// defaulted spec.
func TestDecodeSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"empty", ``},
		{"not json", `{`},
		{"unknown field", `{"name":"x","vehicles":2,"sections":4,"velocity_mhp":30}`},
		{"trailing data", `{"name":"x","vehicles":2,"sections":4} {"again":1}`},
		{"bad name charset", `{"name":"../etc","vehicles":2,"sections":4}`},
		{"name too long", `{"name":"` + strings.Repeat("a", MaxNameLen+1) + `","vehicles":2,"sections":4}`},
		{"zero vehicles", `{"name":"x","vehicles":0,"sections":4}`},
		{"absurd fleet", `{"name":"x","vehicles":1000000,"sections":4}`},
		{"absurd sections", `{"name":"x","vehicles":2,"sections":100000}`},
		{"inf velocity", `{"name":"x","vehicles":2,"sections":4,"velocity_mph":1e999}`},
		{"negative velocity", `{"name":"x","vehicles":2,"sections":4,"velocity_mph":-5}`},
		{"absurd velocity", `{"name":"x","vehicles":2,"sections":4,"velocity_mph":1000}`},
		{"velocity as string", `{"name":"x","vehicles":2,"sections":4,"velocity_mph":"fast"}`},
		{"eta above one", `{"name":"x","vehicles":2,"sections":4,"eta":1.5}`},
		{"beta absurd", `{"name":"x","vehicles":2,"sections":4,"beta_per_mwh":1e12}`},
		{"dead section out of range", `{"name":"x","vehicles":2,"sections":4,"dead_sections":[4]}`},
		{"dead section duplicate", `{"name":"x","vehicles":2,"sections":4,"dead_sections":[1,1]}`},
		{"all sections dead", `{"name":"x","vehicles":2,"sections":2,"dead_sections":[0,1]}`},
		{"outage round zero", `{"name":"x","vehicles":2,"sections":4,"outages":[{"section":1,"down_round":0}]}`},
		{"outage restore before fail", `{"name":"x","vehicles":2,"sections":4,"outages":[{"section":1,"down_round":5,"up_round":3}]}`},
		{"outage section out of range", `{"name":"x","vehicles":2,"sections":4,"outages":[{"section":9,"down_round":2}]}`},
		{"day participation above one", `{"name":"x","vehicles":2,"sections":4,"day":{"participation":1.5}}`},
		{"day unknown profile", `{"name":"x","vehicles":2,"sections":4,"day":{"profile":"mars"}}`},
		{"day feed drop above one", `{"name":"x","vehicles":2,"sections":4,"day":{"feed_drop_rate":1.5}}`},
		{"envelope inverted band", `{"name":"x","vehicles":2,"sections":4,"expect":{"min_welfare":10,"max_welfare":5,"max_rounds":9}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeSpec([]byte(tc.raw)); err == nil {
				t.Fatalf("DecodeSpec accepted %s", tc.raw)
			}
		})
	}
	if _, err := DecodeSpec(make([]byte, MaxSpecBytes+1)); err == nil {
		t.Fatal("DecodeSpec accepted an oversized spec")
	}
}

// TestLoad covers the name-or-path resolution: registered names hit
// the registry, .json paths hit the file loader, anything else is an
// actionable unknown-scenario error naming the registry.
func TestLoad(t *testing.T) {
	if s, err := Load(RushHourSurge); err != nil || s.Name != RushHourSurge {
		t.Fatalf("Load(%q) = %v, %v", RushHourSurge, s.Name, err)
	}
	_, err := Load("no-such-city")
	if err == nil || !strings.Contains(err.Error(), RushHourSurge) {
		t.Fatalf("unknown-name error should list registered names, got %v", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}

	path := filepath.Join(t.TempDir(), "custom.json")
	raw := `{"name":"custom-town","vehicles":4,"sections":6,"seed":9,"beta_per_mwh":18,
		"expect":{"min_welfare":0,"max_welfare":1000,"max_rounds":50}}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatalf("Load(file): %v", err)
	}
	if s.Name != "custom-town" || s.Vehicles != 4 || s.Seed != 9 {
		t.Fatalf("file spec decoded wrong: %+v", s)
	}
	// A file spec compiles through the same paths as a registered one.
	game, err := s.GameScenario()
	if err != nil {
		t.Fatalf("file spec GameScenario: %v", err)
	}
	if len(game.Players) != 4 || game.NumSections != 6 || game.BetaPerMWh != 18 {
		t.Fatalf("file spec compiled wrong: %d players, %d sections, beta %v",
			len(game.Players), game.NumSections, game.BetaPerMWh)
	}
}

// TestCleanTwin strips every fault channel and nothing else.
func TestCleanTwin(t *testing.T) {
	s, _ := Get(BlackoutRecovery)
	c := s.CleanTwin()
	if len(c.DeadSections) != 0 || len(c.Outages) != 0 {
		t.Fatalf("clean twin keeps game faults: %+v", c)
	}
	if c.Day == nil {
		t.Fatal("clean twin dropped the day spec")
	}
	if c.Day.FeedDropRate != 0 || c.Day.FeedCeiling != 0 || len(c.Day.SectionOutages) != 0 {
		t.Fatalf("clean twin keeps day faults: %+v", *c.Day)
	}
	if c.Seed != s.Seed || c.Vehicles != s.Vehicles || c.BetaPerMWh != s.BetaPerMWh {
		t.Fatalf("clean twin changed non-fault fields: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clean twin invalid: %v", err)
	}
}

// TestSessionParams pins the daemon compilation: $/MWh to $/kWh price
// conversion and dead sections becoming immediate unrestored outages.
func TestSessionParams(t *testing.T) {
	s, _ := Get(BlackoutRecovery)
	p, err := s.SessionParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.BetaPerKWh != s.BetaPerMWh/1000 {
		t.Fatalf("beta %v $/kWh, want %v", p.BetaPerKWh, s.BetaPerMWh/1000)
	}
	if len(p.Outages) != len(s.Outages)+len(s.DeadSections) {
		t.Fatalf("%d outages, want %d scripted + %d dead", len(p.Outages), len(s.Outages), len(s.DeadSections))
	}
	for _, o := range p.Outages[len(s.Outages):] {
		if o.DownRound != 1 || o.UpRound != 0 {
			t.Fatalf("dead section should be down from round 1 forever: %+v", o)
		}
	}
}
