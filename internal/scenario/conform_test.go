package scenario

// Cross-seed property tests: an archetype's envelope pins the
// workload's character, not one seed's decimals, so every gate must
// hold when the scenario is re-seeded. Each registered archetype runs
// at its declared seed and the four following it; the
// blackout-recovery archetype additionally holds its coupled day
// within the declared bound of the fault-stripped clean twin across
// the same seed window.

import (
	"testing"

	"olevgrid/internal/coupling"
	"olevgrid/internal/pricing"
)

const seedWindow = 5

func TestEnvelopeAcrossSeeds(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			for off := int64(0); off < seedWindow; off++ {
				rs := s
				rs.Seed = s.Seed + off
				game, err := rs.GameScenario()
				if err != nil {
					t.Fatal(err)
				}
				out, err := pricing.Nonlinear{}.Run(game)
				if err != nil {
					t.Fatalf("seed %d: %v", rs.Seed, err)
				}
				c := rs.CheckOutcome(out)
				if !c.Pass {
					t.Errorf("seed %d breaks the envelope: welfare=%.2f band=%v rounds=%d(%v) congestion=%v payments=%v converged=%v",
						rs.Seed, c.Welfare, c.GateWelfareBand, c.Rounds, c.GateRounds,
						c.GateCongestion, c.GatePayments, c.GateConverged)
				}
			}
		})
	}
}

// TestBlackoutRecoveryVsCleanAcrossSeeds runs the degraded day against
// its clean twin at each seed in the window and asserts the declared
// welfare-drop bound — the scenario-level mirror of the control
// plane's 1% chaos bound. Short mode checks the declared seed only;
// the full window is ten coupled-day runs.
func TestBlackoutRecoveryVsCleanAcrossSeeds(t *testing.T) {
	s, _ := Get(BlackoutRecovery)
	bound := s.Expect.MaxWelfareDropVsClean
	if bound <= 0 {
		t.Fatal("blackout-recovery declares no vs-clean bound")
	}
	window := int64(seedWindow)
	if testing.Short() {
		window = 1
	}
	for off := int64(0); off < window; off++ {
		rs := s
		rs.Seed = s.Seed + off
		faulted := runDay(t, rs)
		clean := runDay(t, rs.CleanTwin())
		drop := welfareDrop(clean, faulted)
		if drop > bound {
			t.Errorf("seed %d: welfare drop %.4f exceeds %.4f (faulted %.2f, clean %.2f)",
				rs.Seed, drop, bound, faulted, clean)
		}
	}
}

func runDay(t *testing.T, s Spec) float64 {
	t.Helper()
	cfg, err := s.DayConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := coupling.RunDay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return DayWelfare(res)
}

// TestConformRegisteredArchetypes is the in-tree mirror of the
// cmd/scenario-conform CI gate: every registered archetype passes
// every declared gate end to end, including blackout-recovery's
// vs-clean day comparison.
func TestConformRegisteredArchetypes(t *testing.T) {
	if testing.Short() {
		t.Skip("covered per-gate by the cross-seed tests; full Conform runs coupled days")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			c, err := Conform(s)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Pass {
				t.Errorf("conformance failed: %+v", c)
			}
		})
	}
}
