package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The registered city archetypes. Each is a Spec the compilers accept
// unchanged, so a registered name and a JSON file are the same thing
// to every consumer; the envelopes are calibrated loosely enough to
// hold across seeds (the cross-seed property suite pins that).
//
// Welfare bands are in $/h for the archetype's single-hour game at
// its registered fleet and price level; they were measured across
// seeds and widened by a safety margin, so they assert the
// archetype's economic character, not one draw's decimals.
var registry = map[string]Spec{
	// RushHourSurge: the evaluation's headline condition — a full
	// arterial at commuter crawl. Slow traffic raises Eq. (1)'s
	// per-section capacity, the paper's 50-OLEV ceiling fills the
	// lane, and the envelope asserts the policy still holds
	// congestion at η while every OLEV pays a nonnegative bill.
	RushHourSurge: {
		Name:        RushHourSurge,
		Description: "AM-peak commuter surge: a full 50-OLEV arterial at 30 mph, mid-morning LBMP",
		Seed:        11,
		Vehicles:    50,
		VelocityMPH: 30,
		Sections:    20,
		BetaPerMWh:  35,
		Day:         &DaySpec{Participation: 0.35},
		Expect: Envelope{
			MinWelfare:       120,
			MaxWelfare:       155,
			MaxRounds:        40,
			RequireConverged: true,
		},
	},
	// StadiumEgress: a night game lets out — more than twice the
	// rush-hour fleet hits a longer arterial at walking-pace egress
	// speeds. The point of the archetype is scale shock: the rounds
	// ceiling asserts convergence doesn't degrade with the pulse.
	StadiumEgress: {
		Name:        StadiumEgress,
		Description: "stadium egress pulse: 120 OLEVs crawling out at 15 mph onto a 24-section arterial",
		Seed:        23,
		Vehicles:    120,
		VelocityMPH: 15,
		Sections:    24,
		BetaPerMWh:  28,
		Day:         &DaySpec{Profile: ProfileEvent, EventHour: 22, Participation: 0.25},
		Expect: Envelope{
			MinWelfare:       300,
			MaxWelfare:       385,
			MaxRounds:        40,
			RequireConverged: true,
		},
	},
	// BlackoutRecovery: a feeder fault kills three of twenty sections
	// and the LBMP feed goes intermittent while crews restore power.
	// The single-hour game solves the blackout's steady state on the
	// survivors; the control-plane compile scripts the mid-session
	// failure and restoration (CoordinatorConfig.Outages); the
	// coupled day drives the same outage over an afternoon span with
	// a faulty feed (coupling.FeedFaults) and the envelope holds the
	// day's welfare within 1% of the clean twin — the same bound the
	// control plane's compound-chaos gate enforces.
	BlackoutRecovery: {
		Name:         BlackoutRecovery,
		Description:  "feeder blackout and restoration: 3 of 20 sections dark, LBMP feed intermittent",
		Seed:         31,
		Vehicles:     40,
		VelocityMPH:  45,
		Sections:     20,
		BetaPerMWh:   24,
		DeadSections: []int{6, 7, 8},
		Outages: []RoundOutage{
			{Section: 6, DownRound: 2, UpRound: 8},
			{Section: 7, DownRound: 2, UpRound: 10},
			{Section: 8, DownRound: 3, UpRound: 10},
		},
		Day: &DaySpec{
			FeedDropRate: 0.05,
			FeedCeiling:  2,
			SectionOutages: []HourOutage{
				{Section: 6, FromHour: 9, ToHour: 15},
				{Section: 7, FromHour: 9, ToHour: 16},
				{Section: 8, FromHour: 10, ToHour: 16},
			},
		},
		Expect: Envelope{
			MinWelfare:            95,
			MaxWelfare:            130,
			MaxRounds:             40,
			RequireConverged:      true,
			MaxWelfareDropVsClean: 0.01,
		},
	},
	// DepotOvernight: a delivery fleet settles over the depot's
	// charging lane for the night at the day's cheapest prices — few
	// vehicles, slow loop speeds, high capacity headroom. The
	// envelope asserts the calm: quick convergence, low congestion
	// pressure, cheap energy.
	DepotOvernight: {
		Name:        DepotOvernight,
		Description: "depot fleet overnight: 24 OLEVs looping a depot lane at 15 mph on trough-hour LBMP",
		Seed:        43,
		Vehicles:    24,
		VelocityMPH: 15,
		Sections:    16,
		BetaPerMWh:  14,
		Day:         &DaySpec{Profile: ProfileOvernight, Participation: 0.6},
		Expect: Envelope{
			MinWelfare:       75,
			MaxWelfare:       105,
			MaxRounds:        12,
			RequireConverged: true,
		},
	},
	// HeatWavePriceSpike: a scarcity afternoon — the LBMP spikes to
	// many times its usual level and the grid derates the lane's
	// safety factor. The envelope asserts the policy's demand
	// response: the fleet still charges (welfare stays positive),
	// congestion respects the tightened η, and nobody is paid to
	// charge (payment nonnegativity under extreme prices).
	HeatWavePriceSpike: {
		Name:        HeatWavePriceSpike,
		Description: "heat-wave price spike: LBMP at 180 $/MWh and the lane derated to eta 0.85",
		Seed:        53,
		Vehicles:    50,
		VelocityMPH: 40,
		Sections:    20,
		Eta:         0.85,
		BetaPerMWh:  180,
		Day:         &DaySpec{LBMPScale: 2.5, Participation: 0.35},
		Expect: Envelope{
			MinWelfare:       70,
			MaxWelfare:       100,
			MaxRounds:        40,
			RequireConverged: true,
		},
	},
}

// The registered archetype names.
const (
	RushHourSurge      = "rush-hour-surge"
	StadiumEgress      = "stadium-egress"
	BlackoutRecovery   = "blackout-recovery"
	DepotOvernight     = "depot-overnight"
	HeatWavePriceSpike = "heat-wave-price-spike"
)

// Names lists the registered archetypes in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns a registered archetype by name.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Load resolves a -scenario argument: a registered archetype name, or
// a path to a JSON spec file (recognized by a ".json" suffix or a
// path separator). Anything else is an unknown scenario, reported
// with the registered names so the error is actionable.
func Load(nameOrPath string) (Spec, error) {
	if s, ok := registry[nameOrPath]; ok {
		return s, nil
	}
	if strings.HasSuffix(nameOrPath, ".json") || strings.ContainsRune(nameOrPath, os.PathSeparator) {
		return LoadFile(nameOrPath)
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (registered: %s; or a .json spec file)",
		nameOrPath, strings.Join(Names(), ", "))
}

// LoadFile reads and decodes one scenario spec file.
func LoadFile(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := DecodeSpec(raw)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// DecodeSpec is the single untrusted-input gate for scenario files
// (and its fuzz target): bounded size, strict JSON — unknown fields
// are errors, so a typoed knob can't silently fall back to a default
// — and full range validation. It never panics on any input.
func DecodeSpec(raw []byte) (Spec, error) {
	if len(raw) > MaxSpecBytes {
		return Spec{}, fmt.Errorf("spec %d bytes exceeds %d", len(raw), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("decode spec: %w", err)
	}
	// A second document after the spec is a malformed file, not
	// trailing garbage to ignore.
	if dec.More() {
		return Spec{}, fmt.Errorf("decode spec: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
