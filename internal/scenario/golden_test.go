package scenario

// Golden-file determinism tests per archetype, matching the
// coupling/experiments golden pattern: each registered scenario's
// compiled game and solved outcome are rendered to a fixed-format
// report and pinned byte-for-byte in testdata/<name>.golden. The same
// report is rendered through the round engine at 1, 2 and 8 proposal
// workers and must be byte-identical at each — the worker-count
// independence the engine promises, now asserted per named workload.
// Regenerate with:
//
//	go test ./internal/scenario -run Golden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"olevgrid/internal/pricing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport compiles and solves the archetype's single-hour game at
// the given worker count and renders the outcome deterministically.
func goldenReport(t *testing.T, s Spec, parallelism int) string {
	t.Helper()
	game, err := s.GameScenario()
	if err != nil {
		t.Fatal(err)
	}
	game.Parallelism = parallelism
	out, err := pricing.Nonlinear{}.Run(game)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s (seed %d)\n", s.Name, s.Seed)
	fmt.Fprintf(&sb, "fleet %d, sections %d, line %.4f kW, eta %.2f, beta %.2f $/MWh, dead %v\n",
		len(game.Players), game.NumSections, game.LineCapacityKW, game.Eta,
		game.BetaPerMWh, game.DeadSections)
	fmt.Fprintf(&sb, "welfare %.6f $/h, unit %.6f $/MWh, payment %.6f $/h, power %.4f kW\n",
		out.Welfare, out.UnitPaymentPerMWh, out.TotalPaymentPerHour, out.TotalPowerKW)
	fmt.Fprintf(&sb, "congestion %.6f, rounds %d, converged %v\n",
		out.CongestionDegree, out.Rounds, out.Converged)
	for sec, total := range out.SectionTotalsKW {
		fmt.Fprintf(&sb, "section %3d %12.6f kW\n", sec, total)
	}
	return sb.String()
}

func TestGoldenArchetypes(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _ := Get(name)
			got := goldenReport(t, s, 1)

			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				diffLine(t, name, got, string(want))
			}

			// Worker-count independence: the round engine's schedules do
			// not depend on how many proposal workers execute them, so
			// the report — floats and all — is byte-identical at any
			// positive parallelism.
			for _, p := range []int{2, 8} {
				if rep := goldenReport(t, s, p); rep != got {
					t.Fatalf("%s: report at parallelism %d differs from parallelism 1", name, p)
				}
			}
		})
	}
}

// diffLine reports the first differing line — a readable failure for a
// many-line golden.
func diffLine(t *testing.T, name, got, want string) {
	t.Helper()
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s.golden: first difference at line %d:\n got: %q\nwant: %q", name, i+1, g, w)
		}
	}
	t.Fatalf("%s.golden: output differs from golden", name)
}
