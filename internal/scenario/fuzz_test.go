package scenario

// FuzzScenarioSpec drives arbitrary bytes through the scenario
// loader's untrusted-input gate — the same boundary a -scenario file
// crosses. The invariants: DecodeSpec never panics, and any spec it
// accepts validates, carries a safe path-segment name, and compiles
// into every target (game, day, session) without panicking.
//
// CI runs a 20s smoke of this fuzzer; run it longer locally with
//
//	go test ./internal/scenario -run '^$' -fuzz FuzzScenarioSpec

import (
	"encoding/json"
	"strings"
	"testing"
)

func FuzzScenarioSpec(f *testing.F) {
	// Every registered archetype, as JSON, is a seed: the fuzzer
	// mutates real working specs, not just `{}`.
	for _, name := range Names() {
		s, _ := Get(name)
		raw, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","vehicles":2,"sections":4,"expect":{"min_welfare":0,"max_welfare":100,"max_rounds":40}}`))
	f.Add([]byte(`{"name":"../../etc/passwd","vehicles":2,"sections":4}`))
	f.Add([]byte(`{"name":"x","vehicles":1000000000,"sections":4}`))
	f.Add([]byte(`{"name":"x","vehicles":2,"sections":4,"velocity_mph":1e999}`))
	f.Add([]byte(`{"name":"x","vehicles":2,"sections":4,"unknown_knob":true}`))
	f.Add([]byte(`{"name":"x","vehicles":2,"sections":4,"day":{"profile":"event","feed_drop_rate":0.5}}`))
	f.Add([]byte(`{"name":"x","vehicles":2,"sections":4,"dead_sections":[0,1,2,3]}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeSpec(raw)
		if err != nil {
			return
		}
		// Accepted means valid, bounded, and safely named.
		if err := s.Validate(); err != nil {
			t.Fatalf("DecodeSpec accepted a spec Validate rejects: %v\n%s", err, raw)
		}
		if err := ValidateName(s.Name); err != nil {
			t.Fatalf("accepted unsafe name %q: %v", s.Name, err)
		}
		if strings.ContainsAny(s.Name, "/\\") || s.Name == ".." {
			t.Fatalf("accepted path-like name %q", s.Name)
		}
		if s.Vehicles > MaxVehicles || s.Sections > MaxSections {
			t.Fatalf("accepted out-of-bounds sizing: %d vehicles, %d sections", s.Vehicles, s.Sections)
		}
		// Accepted also means compilable: every target builds without
		// panicking. (Building the game draws the fleet, so keep the
		// fuzz iteration cheap by skipping absurd accepted fleets —
		// Validate already capped them at MaxVehicles.)
		if _, err := s.GameScenario(); err != nil {
			t.Fatalf("accepted spec fails GameScenario: %v", err)
		}
		if _, err := s.DayConfig(); err != nil {
			t.Fatalf("accepted spec fails DayConfig: %v", err)
		}
		if _, err := s.SessionParams(); err != nil {
			t.Fatalf("accepted spec fails SessionParams: %v", err)
		}
	})
}
