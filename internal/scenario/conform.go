package scenario

import (
	"fmt"

	"olevgrid/internal/coupling"
	"olevgrid/internal/pricing"
)

// Conformance is one archetype's measured outcome against its
// declared envelope — the machine-readable row cmd/scenario-conform
// emits and CI gates. Each gate is reported individually so a
// failure says which promise broke, not just that one did.
type Conformance struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`

	// The single-hour game's measurements.
	Welfare             float64 `json:"welfare"`
	Rounds              int     `json:"rounds"`
	Converged           bool    `json:"converged"`
	CongestionDegree    float64 `json:"congestion_degree"`
	MaxSectionLoadRatio float64 `json:"max_section_load_ratio"` // max live P_c / (η·P_line)
	TotalPaymentPerHour float64 `json:"total_payment_per_hour"`
	MinPlayerKW         float64 `json:"min_player_kw"`

	// The coupled-day welfare comparison, present only when the
	// envelope declares a vs-clean bound.
	DayWelfare         float64 `json:"day_welfare,omitempty"`
	CleanDayWelfare    float64 `json:"clean_day_welfare,omitempty"`
	WelfareDropVsClean float64 `json:"welfare_drop_vs_clean,omitempty"`

	// The envelope's gates.
	GateWelfareBand bool `json:"gate_welfare_band"`
	GateRounds      bool `json:"gate_rounds"`
	GateCongestion  bool `json:"gate_congestion"`
	GatePayments    bool `json:"gate_payments"`
	GateConverged   bool `json:"gate_converged"`
	GateVsClean     bool `json:"gate_vs_clean"`
	Pass            bool `json:"pass"`
}

// paymentSlackKW tolerates float drift below zero in per-player
// schedule totals; anything more negative is a real violation.
const paymentSlackKW = 1e-9

// CheckOutcome scores one game outcome against the spec's envelope,
// filling every game-level gate (the vs-clean day gate is Conform's
// job; here it passes vacuously). The cross-seed property suite
// calls this directly with re-seeded runs.
func (s Spec) CheckOutcome(out pricing.Outcome) Conformance {
	s = s.withDefaults()
	e := s.Expect
	c := Conformance{
		Name:                s.Name,
		Seed:                s.Seed,
		Welfare:             out.Welfare,
		Rounds:              out.Rounds,
		Converged:           out.Converged,
		CongestionDegree:    out.CongestionDegree,
		TotalPaymentPerHour: out.TotalPaymentPerHour,
		GateVsClean:         true,
	}

	// Congestion within the safety factor on live sections: both the
	// aggregate degree (whose denominator is surviving capacity when
	// sections are dead) and every live section's own total against
	// its η·P_line guard, with the envelope's soft-wall slack.
	dead := make(map[int]bool, len(s.DeadSections))
	for _, d := range s.DeadSections {
		dead[d] = true
	}
	usable := s.Eta * s.LineCapacityKW()
	for sec, total := range out.SectionTotalsKW {
		if dead[sec] {
			continue
		}
		if ratio := total / usable; ratio > c.MaxSectionLoadRatio {
			c.MaxSectionLoadRatio = ratio
		}
	}

	c.MinPlayerKW = 0
	for i, kw := range out.PlayerTotalsKW {
		if i == 0 || kw < c.MinPlayerKW {
			c.MinPlayerKW = kw
		}
	}

	c.GateWelfareBand = out.Welfare >= e.MinWelfare && out.Welfare <= e.MaxWelfare
	c.GateRounds = out.Rounds <= e.MaxRounds
	c.GateCongestion = out.CongestionDegree <= s.Eta*(1+e.MaxSectionOverload) &&
		c.MaxSectionLoadRatio <= 1+e.MaxSectionOverload
	c.GatePayments = out.TotalPaymentPerHour >= 0 && out.UnitPaymentPerMWh >= 0 &&
		c.MinPlayerKW >= -paymentSlackKW
	c.GateConverged = !e.RequireConverged || out.Converged
	c.Pass = c.GateWelfareBand && c.GateRounds && c.GateCongestion &&
		c.GatePayments && c.GateConverged && c.GateVsClean
	return c
}

// Conform runs the archetype and asserts its envelope: the
// single-hour game for every gate, plus — when the envelope declares
// a vs-clean bound — the coupled day against its fault-stripped twin.
func Conform(s Spec) (Conformance, error) {
	game, err := s.GameScenario()
	if err != nil {
		return Conformance{}, err
	}
	out, err := pricing.Nonlinear{}.Run(game)
	if err != nil {
		return Conformance{}, fmt.Errorf("scenario %s: game: %w", s.Name, err)
	}
	c := s.CheckOutcome(out)

	if bound := s.Expect.MaxWelfareDropVsClean; bound > 0 {
		faulted, err := runDayWelfare(s)
		if err != nil {
			return c, err
		}
		clean, err := runDayWelfare(s.CleanTwin())
		if err != nil {
			return c, err
		}
		c.DayWelfare = faulted
		c.CleanDayWelfare = clean
		c.WelfareDropVsClean = welfareDrop(clean, faulted)
		c.GateVsClean = c.WelfareDropVsClean <= bound
		c.Pass = c.Pass && c.GateVsClean
	}
	return c, nil
}

// runDayWelfare runs the archetype's coupled day and returns its
// total welfare (the per-hour game welfare summed over the day).
func runDayWelfare(s Spec) (float64, error) {
	cfg, err := s.DayConfig()
	if err != nil {
		return 0, err
	}
	res, err := coupling.RunDay(cfg)
	if err != nil {
		return 0, fmt.Errorf("scenario %s: day: %w", s.Name, err)
	}
	return DayWelfare(res), nil
}

// DayWelfare sums a coupled day's hourly welfare.
func DayWelfare(res *coupling.DayResult) float64 {
	var sum float64
	for _, h := range res.Hours {
		sum += h.Welfare
	}
	return sum
}

// welfareDrop is the relative welfare lost to the faults, clamped at
// zero: a degraded day that happens to price *better* than clean is
// not a violation.
func welfareDrop(clean, faulted float64) float64 {
	if clean <= 0 {
		return 0
	}
	drop := (clean - faulted) / clean
	if drop < 0 {
		return 0
	}
	return drop
}
