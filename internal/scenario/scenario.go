// Package scenario is the repo's library of named city archetypes: a
// registry of seeded, JSON-config-loadable workload descriptions (a
// rush-hour surge, a stadium egress, a blackout recovery, a depot
// fleet overnight, a heat-wave price spike) that each compile
// deterministically into the engine's existing configuration types —
// a single-hour pricing.Scenario, a coupled coupling.DayConfig, and
// the daemon's per-session parameters — together with a declared
// expected-outcome envelope (welfare band, rounds ceiling, congestion
// within the safety factor on live sections, payment nonnegativity,
// convergence) that the conformance harness asserts.
//
// The point is regression surface: "the pricing policy flattens a
// rush-hour surge" stops being an anecdote from ad-hoc CLI flags and
// becomes a named, machine-checked claim — cmd/scenario-conform runs
// every registered archetype and gates its envelope in CI, the same
// move that makes the demand-shaping results of the source paper's
// evaluation falsifiable here.
package scenario

import (
	"fmt"
	"math"
	"sort"
)

// Bounds on what a scenario file may ask for. The loader is an
// untrusted boundary (a -scenario file can come from anywhere), so
// every numeric field is range-checked before anything is built on
// its behalf.
const (
	// MaxSpecBytes bounds one scenario file.
	MaxSpecBytes = 1 << 20
	// MaxVehicles bounds a scenario's fleet — aligned with the
	// daemon's per-vehicle admission ceiling so every archetype is
	// admittable as a session.
	MaxVehicles = 1024
	// MaxSections bounds the arterial's charging-section count.
	MaxSections = 4096
	// MaxNameLen bounds a scenario name.
	MaxNameLen = 64
	// MaxRoundsCeiling bounds the envelope's rounds gate and any
	// outage round number.
	MaxRoundsCeiling = 100_000
)

// Spec is one city archetype: everything needed to reproduce the
// workload — fleet, arterial, price level, faults, and the traffic
// day it rides on — plus the outcome envelope it promises. The zero
// value of every optional field means "engine default", so a spec
// describes only what makes its archetype distinctive.
type Spec struct {
	// Name identifies the archetype; registered names and the IDs the
	// daemon derives from them are path segments, so the charset is
	// restricted to [a-z0-9-].
	Name string `json:"name"`
	// Description says what city moment the archetype models.
	Description string `json:"description,omitempty"`
	// Seed drives every stochastic choice: fleet SOC draws, update
	// order, traffic arrivals, feed dropouts.
	Seed int64 `json:"seed"`

	// Vehicles is the fleet size N of the single-hour game (required,
	// 1..MaxVehicles). The coupled day sizes its hourly games from
	// traffic instead, capped by Day.MaxOLEVs.
	Vehicles int `json:"vehicles"`
	// VelocityMPH is the fleet's common cruising speed; zero means 60.
	// It feeds Eq. (1)'s line capacity (slower traffic spends longer
	// over each section, so capacity rises) and the fleet's SOC
	// headroom draws.
	VelocityMPH float64 `json:"velocity_mph,omitempty"`
	// SatisfactionWeight is w in U_n = w·log(1+p); zero means 1.
	SatisfactionWeight float64 `json:"satisfaction_weight,omitempty"`

	// Sections is the arterial's charging-section count C (required,
	// 1..MaxSections).
	Sections int `json:"sections"`
	// SectionLengthM is each section's length in meters; zero means 15.
	SectionLengthM float64 `json:"section_length_m,omitempty"`
	// Eta is the safety factor η; zero means 0.9.
	Eta float64 `json:"eta,omitempty"`

	// BetaPerMWh is the LBMP β pricing the single-hour game; zero
	// means 20. The coupled day prices each hour from its ISO curve
	// instead (scaled by Day.LBMPScale).
	BetaPerMWh float64 `json:"beta_per_mwh,omitempty"`

	// DeadSections lists sections de-energized for the whole game —
	// the blackout's steady state, solved on the survivors
	// (pricing.Scenario.DeadSections).
	DeadSections []int `json:"dead_sections,omitempty"`
	// Outages scripts mid-session section failures and restorations
	// by round number for the control-plane runs (the coordinator's
	// CoordinatorConfig.Outages): the blackout *recovery*, live.
	Outages []RoundOutage `json:"outages,omitempty"`

	// Day shapes the archetype's coupled 24-hour run; nil means the
	// default weekday (the embedded Flatlands profile, clean feed).
	Day *DaySpec `json:"day,omitempty"`

	// Expect is the archetype's declared outcome envelope.
	Expect Envelope `json:"expect"`
}

// RoundOutage is one scripted section failure by round number,
// mirroring sched.SectionOutage without importing the control plane.
type RoundOutage struct {
	// Section is the dying section's index.
	Section int `json:"section"`
	// DownRound is the 1-based round at whose top the section dies.
	DownRound int `json:"down_round"`
	// UpRound restores it; zero means never.
	UpRound int `json:"up_round,omitempty"`
}

// HourOutage is one scripted section failure by hour span for the
// coupled day, mirroring coupling.SectionOutage.
type HourOutage struct {
	Section  int `json:"section"`
	FromHour int `json:"from_hour"`
	// ToHour zero means the rest of the day.
	ToHour int `json:"to_hour,omitempty"`
}

// DaySpec shapes the archetype's coupled day: which traffic profile
// the arterial sees, how the ISO day prices it, and which exogenous
// faults degrade it.
type DaySpec struct {
	// Profile names the hourly traffic shape: "weekday" (default, the
	// embedded Flatlands counts), "weekend", "overnight" (a depot
	// arterial: deep daytime trough, busy night), or "event" (weekday
	// base with a sharp egress pulse at EventHour).
	Profile string `json:"profile,omitempty"`
	// TrafficScale multiplies every hourly count; zero means 1.
	TrafficScale float64 `json:"traffic_scale,omitempty"`
	// EventHour places the "event" profile's egress pulse; only
	// meaningful for that profile. Zero means 22 (a night game
	// letting out).
	EventHour int `json:"event_hour,omitempty"`
	// Participation is the OLEV fraction of traffic; zero means 0.3.
	Participation float64 `json:"participation,omitempty"`
	// MaxOLEVs caps an hour's game size; zero means 50 (the paper's
	// evaluation ceiling).
	MaxOLEVs int `json:"max_olevs,omitempty"`
	// LBMPScale multiplies the ISO day's price bounds — the heat-wave
	// knob; zero means 1.
	LBMPScale float64 `json:"lbmp_scale,omitempty"`
	// FeedDropRate loses each hourly LBMP sample with this
	// probability; the day holds the last-known-good price.
	FeedDropRate float64 `json:"feed_drop_rate,omitempty"`
	// FeedCeiling bounds how many hours a held price stays
	// trustworthy; zero means forever.
	FeedCeiling int `json:"feed_ceiling,omitempty"`
	// SectionOutages takes sections down for hour spans; those hours
	// solve on the survivors.
	SectionOutages []HourOutage `json:"section_outages,omitempty"`
}

// Envelope is an archetype's declared expected outcome: the band the
// conformance harness asserts every time the scenario runs. The
// bounds are deliberately loose enough to hold across seeds — they
// pin the workload's *character* (a depot night is cheap and calm, a
// heat wave is expensive and tight), not one seed's decimals.
type Envelope struct {
	// MinWelfare and MaxWelfare band the single-hour game's social
	// welfare W(p) in $/h.
	MinWelfare float64 `json:"min_welfare"`
	MaxWelfare float64 `json:"max_welfare"`
	// MaxRounds ceilings the full best-response cycles to
	// convergence.
	MaxRounds int `json:"max_rounds"`
	// MaxSectionOverload tolerates this relative overshoot of a live
	// section's total above η·P_line (the overload wall is soft);
	// zero means 0.05.
	MaxSectionOverload float64 `json:"max_section_overload,omitempty"`
	// RequireConverged demands the dynamics settle within the
	// engine's budget.
	RequireConverged bool `json:"require_converged"`
	// MaxWelfareDropVsClean, when positive, additionally runs the
	// archetype's coupled day against its fault-stripped twin and
	// bounds the relative day-welfare drop — the blackout-recovery
	// archetype declares 0.01, mirroring the control plane's 1%
	// chaos bound.
	MaxWelfareDropVsClean float64 `json:"max_welfare_drop_vs_clean,omitempty"`
}

// Validate reports the first problem with the spec. It is the single
// gate behind the loader and the registry: a spec that validates can
// be compiled into every target without panicking.
func (s Spec) Validate() error {
	if err := ValidateName(s.Name); err != nil {
		return err
	}
	if s.Vehicles < 1 || s.Vehicles > MaxVehicles {
		return fmt.Errorf("scenario %s: vehicles %d outside [1, %d]", s.Name, s.Vehicles, MaxVehicles)
	}
	if s.Sections < 1 || s.Sections > MaxSections {
		return fmt.Errorf("scenario %s: sections %d outside [1, %d]", s.Name, s.Sections, MaxSections)
	}
	for name, v := range map[string]float64{
		"velocity_mph":         s.VelocityMPH,
		"satisfaction_weight":  s.SatisfactionWeight,
		"section_length_m":     s.SectionLengthM,
		"eta":                  s.Eta,
		"beta_per_mwh":         s.BetaPerMWh,
		"max_section_overload": s.Expect.MaxSectionOverload,
	} {
		if v < 0 || !finite(v) {
			return fmt.Errorf("scenario %s: %s %v invalid", s.Name, name, v)
		}
	}
	if s.VelocityMPH > 200 {
		return fmt.Errorf("scenario %s: velocity %v mph implausible", s.Name, s.VelocityMPH)
	}
	if s.SectionLengthM > 1000 {
		return fmt.Errorf("scenario %s: section length %v m implausible", s.Name, s.SectionLengthM)
	}
	if s.Eta > 1 {
		return fmt.Errorf("scenario %s: eta %v outside (0, 1]", s.Name, s.Eta)
	}
	if s.BetaPerMWh > 10_000 {
		return fmt.Errorf("scenario %s: beta %v $/MWh implausible", s.Name, s.BetaPerMWh)
	}
	seen := make(map[int]bool, len(s.DeadSections))
	for _, d := range s.DeadSections {
		if d < 0 || d >= s.Sections {
			return fmt.Errorf("scenario %s: dead section %d outside [0, %d)", s.Name, d, s.Sections)
		}
		if seen[d] {
			return fmt.Errorf("scenario %s: dead section %d listed twice", s.Name, d)
		}
		seen[d] = true
	}
	if len(seen) > 0 && len(seen) == s.Sections {
		return fmt.Errorf("scenario %s: all %d sections dead", s.Name, s.Sections)
	}
	for i, o := range s.Outages {
		if o.Section < 0 || o.Section >= s.Sections {
			return fmt.Errorf("scenario %s: outage %d section %d outside [0, %d)", s.Name, i, o.Section, s.Sections)
		}
		if o.DownRound < 1 || o.DownRound > MaxRoundsCeiling {
			return fmt.Errorf("scenario %s: outage %d down round %d outside [1, %d]", s.Name, i, o.DownRound, MaxRoundsCeiling)
		}
		if o.UpRound != 0 && (o.UpRound <= o.DownRound || o.UpRound > MaxRoundsCeiling) {
			return fmt.Errorf("scenario %s: outage %d rounds [%d, %d) invalid", s.Name, i, o.DownRound, o.UpRound)
		}
	}
	if s.Day != nil {
		if err := s.Day.validate(s.Name, s.Sections); err != nil {
			return err
		}
	}
	return s.Expect.validate(s.Name)
}

func (d DaySpec) validate(name string, sections int) error {
	switch d.Profile {
	case "", ProfileWeekday, ProfileWeekend, ProfileOvernight, ProfileEvent:
	default:
		return fmt.Errorf("scenario %s: unknown day profile %q", name, d.Profile)
	}
	for field, v := range map[string]float64{
		"traffic_scale":  d.TrafficScale,
		"participation":  d.Participation,
		"lbmp_scale":     d.LBMPScale,
		"feed_drop_rate": d.FeedDropRate,
	} {
		if v < 0 || !finite(v) {
			return fmt.Errorf("scenario %s: day %s %v invalid", name, field, v)
		}
	}
	if d.TrafficScale > 100 {
		return fmt.Errorf("scenario %s: traffic scale %v implausible", name, d.TrafficScale)
	}
	if d.Participation > 1 {
		return fmt.Errorf("scenario %s: participation %v outside [0, 1]", name, d.Participation)
	}
	if d.LBMPScale > 100 {
		return fmt.Errorf("scenario %s: LBMP scale %v implausible", name, d.LBMPScale)
	}
	if d.FeedDropRate >= 1 {
		return fmt.Errorf("scenario %s: feed drop rate %v outside [0, 1)", name, d.FeedDropRate)
	}
	if d.FeedCeiling < 0 || d.FeedCeiling > 24 {
		return fmt.Errorf("scenario %s: feed ceiling %d outside [0, 24]", name, d.FeedCeiling)
	}
	if d.EventHour < 0 || d.EventHour > 23 {
		return fmt.Errorf("scenario %s: event hour %d outside [0, 24)", name, d.EventHour)
	}
	if d.MaxOLEVs < 0 || d.MaxOLEVs > MaxVehicles {
		return fmt.Errorf("scenario %s: max OLEVs %d outside [0, %d]", name, d.MaxOLEVs, MaxVehicles)
	}
	for i, o := range d.SectionOutages {
		if o.Section < 0 || o.Section >= sections {
			return fmt.Errorf("scenario %s: day outage %d section %d outside [0, %d)", name, i, o.Section, sections)
		}
		if o.FromHour < 0 || o.FromHour > 23 {
			return fmt.Errorf("scenario %s: day outage %d from hour %d outside [0, 24)", name, i, o.FromHour)
		}
		if o.ToHour != 0 && (o.ToHour <= o.FromHour || o.ToHour > 24) {
			return fmt.Errorf("scenario %s: day outage %d hours [%d, %d) invalid", name, i, o.FromHour, o.ToHour)
		}
	}
	return nil
}

func (e Envelope) validate(name string) error {
	for field, v := range map[string]float64{
		"min_welfare":               e.MinWelfare,
		"max_welfare":               e.MaxWelfare,
		"max_welfare_drop_vs_clean": e.MaxWelfareDropVsClean,
	} {
		if !finite(v) {
			return fmt.Errorf("scenario %s: expect %s %v invalid", name, field, v)
		}
	}
	if e.MaxWelfare <= e.MinWelfare {
		return fmt.Errorf("scenario %s: welfare band [%v, %v] empty", name, e.MinWelfare, e.MaxWelfare)
	}
	if e.MaxRounds < 1 || e.MaxRounds > MaxRoundsCeiling {
		return fmt.Errorf("scenario %s: rounds ceiling %d outside [1, %d]", name, e.MaxRounds, MaxRoundsCeiling)
	}
	if e.MaxSectionOverload < 0 || e.MaxSectionOverload > 1 {
		return fmt.Errorf("scenario %s: section overload slack %v outside [0, 1]", name, e.MaxSectionOverload)
	}
	if e.MaxWelfareDropVsClean < 0 || e.MaxWelfareDropVsClean > 1 {
		return fmt.Errorf("scenario %s: welfare drop bound %v outside [0, 1]", name, e.MaxWelfareDropVsClean)
	}
	return nil
}

// ValidateName checks that a scenario name is a safe path segment:
// lower-case letters, digits and dashes only, bounded length, never
// "."/".." — the same discipline the daemon applies to session IDs,
// because scenario names flow into them.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("scenario: name required")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("scenario: name %d chars exceeds %d", len(name), MaxNameLen)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
		default:
			return fmt.Errorf("scenario: name contains %q; use [a-z0-9-]", r)
		}
	}
	return nil
}

// Day traffic profile names for DaySpec.Profile.
const (
	ProfileWeekday   = "weekday"
	ProfileWeekend   = "weekend"
	ProfileOvernight = "overnight"
	ProfileEvent     = "event"
)

// withDefaults fills engine defaults into zero optional fields; the
// compilers all start from it so a spec's zero values and the engine
// defaults can never drift apart.
func (s Spec) withDefaults() Spec {
	if s.VelocityMPH == 0 {
		s.VelocityMPH = 60
	}
	if s.SatisfactionWeight == 0 {
		s.SatisfactionWeight = 1
	}
	if s.SectionLengthM == 0 {
		s.SectionLengthM = 15
	}
	if s.Eta == 0 {
		s.Eta = 0.9
	}
	if s.BetaPerMWh == 0 {
		s.BetaPerMWh = 20
	}
	if s.Expect.MaxSectionOverload == 0 {
		s.Expect.MaxSectionOverload = 0.05
	}
	if s.Day != nil {
		d := s.Day.withDefaults()
		s.Day = &d
	}
	return s
}

func (d DaySpec) withDefaults() DaySpec {
	if d.Profile == "" {
		d.Profile = ProfileWeekday
	}
	if d.TrafficScale == 0 {
		d.TrafficScale = 1
	}
	if d.EventHour == 0 {
		d.EventHour = 22
	}
	if d.Participation == 0 {
		d.Participation = 0.3
	}
	if d.MaxOLEVs == 0 {
		d.MaxOLEVs = 50
	}
	if d.LBMPScale == 0 {
		d.LBMPScale = 1
	}
	return d
}

// Faulty reports whether the spec injects any exogenous fault — dead
// or failing sections, or a degraded day. The clean twin the
// vs-clean welfare bound compares against is the spec with all of
// these stripped.
func (s Spec) Faulty() bool {
	if len(s.DeadSections) > 0 || len(s.Outages) > 0 {
		return true
	}
	if s.Day == nil {
		return false
	}
	return s.Day.FeedDropRate > 0 || s.Day.FeedCeiling > 0 || len(s.Day.SectionOutages) > 0
}

// CleanTwin returns the spec with every fault stripped: the
// counterfactual healthy city the degraded archetype is measured
// against.
func (s Spec) CleanTwin() Spec {
	s.DeadSections = nil
	s.Outages = nil
	if s.Day != nil {
		d := *s.Day
		d.FeedDropRate = 0
		d.FeedCeiling = 0
		d.SectionOutages = nil
		s.Day = &d
	}
	return s
}

// sortedDead returns the dead sections in ascending order (the spec
// may list them in any order; compiled output is canonical).
func (s Spec) sortedDead() []int {
	if len(s.DeadSections) == 0 {
		return nil
	}
	dead := append([]int(nil), s.DeadSections...)
	sort.Ints(dead)
	return dead
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
