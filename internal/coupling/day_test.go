package coupling

import (
	"testing"

	"olevgrid/internal/trace"
)

func TestRunDayShapes(t *testing.T) {
	res, err := RunDay(DayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyKWh <= 0 {
		t.Fatal("no energy delivered over the day")
	}
	if res.TotalRevenueUSD <= 0 {
		t.Fatal("no revenue collected")
	}
	// Peak-hour energy must dwarf the overnight trough — the paper's
	// "unpredictable load" motif.
	peak := res.Hours[res.PeakHour].EnergyKWh
	trough := res.Hours[3].EnergyKWh
	if peak < 2*trough {
		t.Errorf("peak %v kWh not well above trough %v kWh", peak, trough)
	}
	if res.PeakHour < 6 || res.PeakHour > 21 {
		t.Errorf("peak hour %d should be daytime", res.PeakHour)
	}
	// Game sizes track traffic presence.
	if res.Hours[17].OLEVs <= res.Hours[3].OLEVs {
		t.Errorf("PM-peak game size %d not above overnight %d",
			res.Hours[17].OLEVs, res.Hours[3].OLEVs)
	}
	if res.MeanConcurrent <= 0 {
		t.Error("no simulated presence measured")
	}
	// β per hour comes from the ISO day, so it varies.
	var distinct int
	seen := map[float64]bool{}
	for _, h := range res.Hours {
		if !seen[h.BetaPerMWh] {
			seen[h.BetaPerMWh] = true
			distinct++
		}
	}
	if distinct < 12 {
		t.Errorf("only %d distinct hourly betas; LBMP wiring broken?", distinct)
	}
}

func TestRunDayParticipationScalesGameSize(t *testing.T) {
	low, err := RunDay(DayConfig{Seed: 1, Participation: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunDay(DayConfig{Seed: 1, Participation: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if high.TotalEnergyKWh <= low.TotalEnergyKWh {
		t.Errorf("60%% participation energy %v not above 10%% %v",
			high.TotalEnergyKWh, low.TotalEnergyKWh)
	}
	if high.Hours[17].OLEVs <= low.Hours[17].OLEVs {
		t.Error("participation did not scale the PM-peak game")
	}
}

func TestRunDayWeekendShiftsThePeak(t *testing.T) {
	weekday, err := RunDay(DayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	weekend, err := RunDay(DayConfig{Seed: 1, Counts: trace.FlatlandsAvenueWeekend()})
	if err != nil {
		t.Fatal(err)
	}
	// The weekday peak rides the commute; the weekend's sits midday.
	if weekday.PeakHour < 6 || weekday.PeakHour > 9 {
		if weekday.PeakHour < 16 || weekday.PeakHour > 19 {
			t.Errorf("weekday peak hour %d not at a commute peak", weekday.PeakHour)
		}
	}
	if weekend.PeakHour < 10 || weekend.PeakHour > 16 {
		t.Errorf("weekend peak hour %d not midday", weekend.PeakHour)
	}
	// Overnight the weekend lane carries more chargeable traffic.
	if weekend.Hours[0].OLEVs < weekday.Hours[0].OLEVs {
		t.Errorf("weekend midnight OLEVs %d below weekday %d",
			weekend.Hours[0].OLEVs, weekday.Hours[0].OLEVs)
	}
}

func TestRunDayValidation(t *testing.T) {
	if _, err := RunDay(DayConfig{Participation: 1.5}); err == nil {
		t.Error("participation > 1 accepted")
	}
	if _, err := RunDay(DayConfig{Participation: -0.5}); err == nil {
		t.Error("negative participation accepted")
	}
}

func TestRunDayDeterminism(t *testing.T) {
	a, err := RunDay(DayConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDay(DayConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergyKWh != b.TotalEnergyKWh || a.TotalRevenueUSD != b.TotalRevenueUSD {
		t.Error("same seed produced different days")
	}
}

func TestRunDayQuietProfile(t *testing.T) {
	// A nearly empty road should produce tiny games and little energy
	// without crashing (hours with zero OLEVs are legal).
	var counts trace.HourlyCounts
	counts[12] = 120 // a single active hour
	res, err := RunDay(DayConfig{Seed: 2, Counts: counts, Participation: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hours[3].OLEVs != 0 {
		t.Errorf("empty hour has %d OLEVs", res.Hours[3].OLEVs)
	}
	if res.Hours[3].EnergyKWh != 0 {
		t.Error("energy delivered with no vehicles")
	}
}
