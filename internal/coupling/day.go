// Package coupling closes the loop between the paper's two halves:
// the Section III traffic substrate decides how many OLEVs are over
// the charging lane each hour, and the Section IV game prices and
// schedules their power with that hour's LBMP as β. The paper runs
// this coupling through SUMO; here the Krauss simulator plays that
// role ("we varied the number of OLEVs ... each time the smart grid
// executed the game, considering the hourly traffic count").
package coupling

import (
	"fmt"
	"math"
	"time"

	"olevgrid/internal/core"
	"olevgrid/internal/grid"
	"olevgrid/internal/pricing"
	"olevgrid/internal/roadnet"
	"olevgrid/internal/trace"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
)

// DayConfig configures a coupled day.
type DayConfig struct {
	// Counts drives the traffic side; zero value selects the embedded
	// Flatlands profile.
	Counts trace.HourlyCounts
	// Participation is the OLEV fraction of traffic; zero means 0.3.
	Participation float64
	// RoadLength and SpeedLimit describe the charging lane's road;
	// zeros mean 1 km at 50 km/h.
	RoadLength units.Distance
	SpeedLimit units.Speed
	// NumSections is C; zero means 20.
	NumSections int
	// SectionLength feeds Eq. (1); zero means 15 m.
	SectionLength units.Distance
	// Eta is the safety factor; zero means 0.9.
	Eta float64
	// Grid prices each hour's β; zero value selects the default
	// NYISO-calibrated day.
	Grid grid.Config
	// Seed drives traffic, fleets and update order.
	Seed int64
	// MaxOLEVs caps an hour's game size; zero means 50 (the paper's
	// evaluation ceiling).
	MaxOLEVs int
	// Parallelism, when positive, routes each hour's game through the
	// core round engine with that many proposal workers (see
	// pricing.Scenario.Parallelism); zero keeps the asynchronous
	// single-player dynamics.
	Parallelism int
	// WarmStart chains hour t's converged schedule into hour t+1 as
	// the game's starting point, projected onto hour t+1's fleet
	// (core.ProjectSchedule): vehicles present both hours keep their
	// allocation, departed rows drop, joiners start at zero. The
	// equilibrium is unchanged — the potential game converges to the
	// same optimum from any start — but adjacent hours differ by a few
	// vehicles and one LBMP step, so the trip is much shorter. Off by
	// default so existing outputs stay byte-identical.
	WarmStart bool
	// Tolerance overrides each hour's convergence tolerance; zero
	// means the solver default (1e-6).
	Tolerance float64
	// KeepSchedules retains each hour's converged schedule in
	// HourOutcome.Schedule — the warm-vs-cold divergence measurements
	// need them; off by default to keep DayResult light.
	KeepSchedules bool
	// FeedFaults, when non-nil, routes the hourly LBMP through a
	// grid.LBMPFeed fault plan: dropped samples serve the
	// last-known-good β (with the plan's decay), and hours past the
	// staleness ceiling hold the last *applied* β — or skip the game
	// entirely when no good sample has ever arrived. Nil keeps the
	// clean feed, the pre-failover behavior.
	FeedFaults *grid.FeedConfig
	// SectionOutages scripts charging-section outages by hour span;
	// affected hours solve the game over the surviving sections only
	// (pricing.Scenario.DeadSections). Empty means no outages.
	SectionOutages []SectionOutage
	// Metrics, if non-nil, observes the hour loop itself (per-hour
	// energy/revenue/rounds, stale and outage accounting) on either
	// solver path; Solver, if non-nil, additionally instruments the
	// inner round engine when Parallelism routes hours through it.
	// Both are nil-safe off switches and never change results — the
	// golden determinism test runs with them armed.
	Metrics *DayMetrics
	Solver  *core.Metrics
}

// SectionOutage de-energizes one section for the hour span
// [FromHour, ToHour); ToHour zero means the rest of the day.
type SectionOutage struct {
	Section  int
	FromHour int
	ToHour   int
}

// active reports whether the outage covers hour h.
func (o SectionOutage) active(h int) bool {
	to := o.ToHour
	if to == 0 {
		to = 24
	}
	return h >= o.FromHour && h < to
}

func (c *DayConfig) applyDefaults() {
	if c.Counts == (trace.HourlyCounts{}) {
		c.Counts = trace.FlatlandsAvenue()
	}
	if c.Participation == 0 {
		c.Participation = 0.3
	}
	if c.RoadLength == 0 {
		c.RoadLength = units.Meters(1000)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = units.KMH(50)
	}
	if c.NumSections == 0 {
		c.NumSections = 20
	}
	if c.SectionLength == 0 {
		c.SectionLength = units.Meters(15)
	}
	if c.Eta == 0 {
		c.Eta = 0.9
	}
	if c.Grid == (grid.Config{}) {
		c.Grid = grid.DefaultConfig()
	}
	if c.MaxOLEVs == 0 {
		c.MaxOLEVs = 50
	}
}

// HourOutcome is one hour's coupled result.
type HourOutcome struct {
	Hour int
	// OLEVs is the hour's game size, derived from simulated traffic
	// presence and participation.
	OLEVs int
	// BetaPerMWh is the hour's LBMP.
	BetaPerMWh float64
	// CongestionDegree, UnitPaymentPerMWh and Welfare come from the
	// converged game; zero OLEVs yields zeros.
	CongestionDegree  float64
	UnitPaymentPerMWh float64
	Welfare           float64
	// EnergyKWh is the energy delivered over the hour at the
	// scheduled power.
	EnergyKWh float64
	// RevenueUSD is the grid's payment collection over the hour.
	RevenueUSD float64
	// Rounds counts the hour's full best-response cycles to
	// convergence — the warm-start saving is read off this column.
	Rounds int
	// DegradedRounds counts blocks the parallel engine's welfare guard
	// replayed sequentially (zero on the asynchronous path).
	DegradedRounds int
	// Schedule is the hour's converged schedule, retained only under
	// DayConfig.KeepSchedules.
	Schedule *core.Schedule
	// FeedStale marks an hour priced on a held (stale) β because the
	// LBMP feed was dark past its ceiling — or skipped entirely when
	// no price had ever arrived (OLEVs stays as counted, the rest
	// zero).
	FeedStale bool
	// LiveSections is the number of energized sections this hour.
	LiveSections int
}

// DayResult is a full coupled day.
type DayResult struct {
	Hours [24]HourOutcome
	// TotalEnergyKWh and TotalRevenueUSD sum the day.
	TotalEnergyKWh  float64
	TotalRevenueUSD float64
	// PeakHour is the hour with the most delivered energy.
	PeakHour int
	// MeanConcurrent is the day's average simulated vehicle presence
	// on the lane (before participation), for diagnostics.
	MeanConcurrent float64
	// TotalRounds and TotalDegradedRounds sum the per-hour round
	// accounting; cold-vs-warm day comparisons read these.
	TotalRounds         int
	TotalDegradedRounds int
	// StaleHours counts hours priced on a held β (or skipped) because
	// the feed was dark past its ceiling; OutageHours counts hours
	// with at least one dead section.
	StaleHours  int
	OutageHours int
}

// RunDay executes the coupled day: one 24 h traffic simulation to
// measure hourly vehicle presence on the lane, then one pricing game
// per hour sized by that presence and priced by that hour's LBMP.
func RunDay(cfg DayConfig) (*DayResult, error) {
	cfg.applyDefaults()
	if cfg.Participation < 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("coupling: participation %v outside [0, 1]", cfg.Participation)
	}

	day, err := grid.NewDay(cfg.Grid)
	if err != nil {
		return nil, err
	}
	presence, err := hourlyPresence(cfg)
	if err != nil {
		return nil, err
	}

	var feed *grid.LBMPFeed
	if cfg.FeedFaults != nil {
		feed, err = grid.NewLBMPFeed(func(step int) float64 {
			return day.LBMP(time.Duration(step) * time.Hour)
		}, *cfg.FeedFaults)
		if err != nil {
			return nil, fmt.Errorf("coupling: feed faults: %w", err)
		}
	}
	for _, o := range cfg.SectionOutages {
		if o.Section < 0 || o.Section >= cfg.NumSections {
			return nil, fmt.Errorf("coupling: outage section %d outside [0, %d)", o.Section, cfg.NumSections)
		}
		if o.FromHour < 0 || o.FromHour > 23 {
			return nil, fmt.Errorf("coupling: outage from hour %d outside [0, 24)", o.FromHour)
		}
		if o.ToHour != 0 && (o.ToHour <= o.FromHour || o.ToHour > 24) {
			return nil, fmt.Errorf("coupling: outage hours [%d, %d) invalid", o.FromHour, o.ToHour)
		}
	}

	lineCap := pricing.LineCapacityKW(cfg.SectionLength, cfg.SpeedLimit)
	res := &DayResult{}
	var presenceSum float64
	// Hour-chaining state: the previous hour's equilibrium and the IDs
	// naming its rows. BuildFleet assigns stable per-index IDs, so a
	// vehicle index present in adjacent hours carries its allocation.
	var prevSchedule *core.Schedule
	var prevIDs []string
	var lastBeta float64
	var haveBeta bool
	for h := 0; h < 24; h++ {
		presenceSum += presence[h]
		beta := day.LBMP(time.Duration(h) * time.Hour)
		stale, skip := false, false
		if feed != nil {
			b, ok := feed.Sample(h)
			switch {
			case ok:
				beta = b
			case haveBeta:
				// Dark past the ceiling: hold the last applied β — the
				// conservative operating point when the market is
				// unreachable.
				beta, stale = lastBeta, true
			default:
				// No price has ever arrived: the grid cannot quote a
				// payment function, so this hour schedules nothing.
				stale, skip = true, true
			}
		}
		lastBeta, haveBeta = beta, haveBeta || !skip

		var dead []int
		for _, o := range cfg.SectionOutages {
			if o.active(h) {
				dead = append(dead, o.Section)
			}
		}

		n := int(math.Round(presence[h] * cfg.Participation))
		if n > cfg.MaxOLEVs {
			n = cfg.MaxOLEVs
		}
		out := HourOutcome{
			Hour: h, OLEVs: n, BetaPerMWh: beta,
			FeedStale: stale, LiveSections: cfg.NumSections - len(dead),
		}
		if stale {
			res.StaleHours++
		}
		if len(dead) > 0 {
			res.OutageHours++
		}
		if skip {
			out.BetaPerMWh = 0
		}
		if n >= 1 && !skip {
			_, players, err := pricing.BuildFleet(pricing.FleetConfig{
				N:        n,
				Velocity: cfg.SpeedLimit,
				Seed:     cfg.Seed + int64(h)*131,
			})
			if err != nil {
				return nil, err
			}
			scenario := pricing.Scenario{
				Players:        players,
				NumSections:    cfg.NumSections,
				LineCapacityKW: lineCap,
				Eta:            cfg.Eta,
				BetaPerMWh:     beta,
				Seed:           cfg.Seed + int64(h)*131,
				Parallelism:    cfg.Parallelism,
				Tolerance:      cfg.Tolerance,
				DeadSections:   dead,
				Metrics:        cfg.Solver,
			}
			if cfg.WarmStart && prevSchedule != nil {
				seed, err := core.ProjectSchedule(prevSchedule, prevIDs, players, cfg.NumSections)
				if err != nil {
					return nil, fmt.Errorf("coupling: hour %d warm start: %w", h, err)
				}
				scenario.InitialSchedule = seed
			}
			game, err := pricing.Nonlinear{}.Run(scenario)
			if err != nil {
				return nil, fmt.Errorf("coupling: hour %d game: %w", h, err)
			}
			out.CongestionDegree = game.CongestionDegree
			out.UnitPaymentPerMWh = game.UnitPaymentPerMWh
			out.Welfare = game.Welfare
			out.EnergyKWh = game.TotalPowerKW // kW over one hour
			out.RevenueUSD = game.TotalPaymentPerHour
			out.Rounds = game.Rounds
			out.DegradedRounds = game.DegradedRounds
			if cfg.KeepSchedules {
				out.Schedule = game.Schedule
			}
			if cfg.WarmStart {
				prevSchedule = game.Schedule
				prevIDs = make([]string, len(players))
				for i, p := range players {
					prevIDs[i] = p.ID
				}
			}
		}
		cfg.Metrics.observeHour(&out, n >= 1 && !skip, len(dead) > 0)
		res.Hours[h] = out
		res.TotalEnergyKWh += out.EnergyKWh
		res.TotalRevenueUSD += out.RevenueUSD
		res.TotalRounds += out.Rounds
		res.TotalDegradedRounds += out.DegradedRounds
		if out.EnergyKWh > res.Hours[res.PeakHour].EnergyKWh {
			res.PeakHour = h
		}
	}
	res.MeanConcurrent = presenceSum / 24
	return res, nil
}

// hourlyPresence runs the day of traffic once and returns the average
// number of vehicles present on the road per hour (vehicle-seconds
// divided by 3600).
func hourlyPresence(cfg DayConfig) ([24]float64, error) {
	var presence [24]float64
	plan := roadnet.DefaultSignalPlan()
	sim, err := traffic.NewSim(traffic.SimConfig{
		RoadLength: cfg.RoadLength,
		SpeedLimit: cfg.SpeedLimit,
		Signal:     &plan,
		Counts:     cfg.Counts,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return presence, err
	}
	var seconds [24]float64
	sim.AddObserver(func(_ string, _ units.Distance, _ units.Speed, now, dt time.Duration) {
		h := int(now.Hours()) % 24
		seconds[h] += dt.Seconds()
	})
	sim.Run()
	for h := 0; h < 24; h++ {
		presence[h] = seconds[h] / 3600
	}
	return presence, nil
}
