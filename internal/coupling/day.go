// Package coupling closes the loop between the paper's two halves:
// the Section III traffic substrate decides how many OLEVs are over
// the charging lane each hour, and the Section IV game prices and
// schedules their power with that hour's LBMP as β. The paper runs
// this coupling through SUMO; here the Krauss simulator plays that
// role ("we varied the number of OLEVs ... each time the smart grid
// executed the game, considering the hourly traffic count").
package coupling

import (
	"fmt"
	"math"
	"time"

	"olevgrid/internal/grid"
	"olevgrid/internal/pricing"
	"olevgrid/internal/roadnet"
	"olevgrid/internal/trace"
	"olevgrid/internal/traffic"
	"olevgrid/internal/units"
)

// DayConfig configures a coupled day.
type DayConfig struct {
	// Counts drives the traffic side; zero value selects the embedded
	// Flatlands profile.
	Counts trace.HourlyCounts
	// Participation is the OLEV fraction of traffic; zero means 0.3.
	Participation float64
	// RoadLength and SpeedLimit describe the charging lane's road;
	// zeros mean 1 km at 50 km/h.
	RoadLength units.Distance
	SpeedLimit units.Speed
	// NumSections is C; zero means 20.
	NumSections int
	// SectionLength feeds Eq. (1); zero means 15 m.
	SectionLength units.Distance
	// Eta is the safety factor; zero means 0.9.
	Eta float64
	// Grid prices each hour's β; zero value selects the default
	// NYISO-calibrated day.
	Grid grid.Config
	// Seed drives traffic, fleets and update order.
	Seed int64
	// MaxOLEVs caps an hour's game size; zero means 50 (the paper's
	// evaluation ceiling).
	MaxOLEVs int
}

func (c *DayConfig) applyDefaults() {
	if c.Counts == (trace.HourlyCounts{}) {
		c.Counts = trace.FlatlandsAvenue()
	}
	if c.Participation == 0 {
		c.Participation = 0.3
	}
	if c.RoadLength == 0 {
		c.RoadLength = units.Meters(1000)
	}
	if c.SpeedLimit == 0 {
		c.SpeedLimit = units.KMH(50)
	}
	if c.NumSections == 0 {
		c.NumSections = 20
	}
	if c.SectionLength == 0 {
		c.SectionLength = units.Meters(15)
	}
	if c.Eta == 0 {
		c.Eta = 0.9
	}
	if c.Grid == (grid.Config{}) {
		c.Grid = grid.DefaultConfig()
	}
	if c.MaxOLEVs == 0 {
		c.MaxOLEVs = 50
	}
}

// HourOutcome is one hour's coupled result.
type HourOutcome struct {
	Hour int
	// OLEVs is the hour's game size, derived from simulated traffic
	// presence and participation.
	OLEVs int
	// BetaPerMWh is the hour's LBMP.
	BetaPerMWh float64
	// CongestionDegree, UnitPaymentPerMWh and Welfare come from the
	// converged game; zero OLEVs yields zeros.
	CongestionDegree  float64
	UnitPaymentPerMWh float64
	Welfare           float64
	// EnergyKWh is the energy delivered over the hour at the
	// scheduled power.
	EnergyKWh float64
	// RevenueUSD is the grid's payment collection over the hour.
	RevenueUSD float64
}

// DayResult is a full coupled day.
type DayResult struct {
	Hours [24]HourOutcome
	// TotalEnergyKWh and TotalRevenueUSD sum the day.
	TotalEnergyKWh  float64
	TotalRevenueUSD float64
	// PeakHour is the hour with the most delivered energy.
	PeakHour int
	// MeanConcurrent is the day's average simulated vehicle presence
	// on the lane (before participation), for diagnostics.
	MeanConcurrent float64
}

// RunDay executes the coupled day: one 24 h traffic simulation to
// measure hourly vehicle presence on the lane, then one pricing game
// per hour sized by that presence and priced by that hour's LBMP.
func RunDay(cfg DayConfig) (*DayResult, error) {
	cfg.applyDefaults()
	if cfg.Participation < 0 || cfg.Participation > 1 {
		return nil, fmt.Errorf("coupling: participation %v outside [0, 1]", cfg.Participation)
	}

	day, err := grid.NewDay(cfg.Grid)
	if err != nil {
		return nil, err
	}
	presence, err := hourlyPresence(cfg)
	if err != nil {
		return nil, err
	}

	lineCap := pricing.LineCapacityKW(cfg.SectionLength, cfg.SpeedLimit)
	res := &DayResult{}
	var presenceSum float64
	for h := 0; h < 24; h++ {
		presenceSum += presence[h]
		beta := day.LBMP(time.Duration(h) * time.Hour)
		n := int(math.Round(presence[h] * cfg.Participation))
		if n > cfg.MaxOLEVs {
			n = cfg.MaxOLEVs
		}
		out := HourOutcome{Hour: h, OLEVs: n, BetaPerMWh: beta}
		if n >= 1 {
			_, players, err := pricing.BuildFleet(pricing.FleetConfig{
				N:        n,
				Velocity: cfg.SpeedLimit,
				Seed:     cfg.Seed + int64(h)*131,
			})
			if err != nil {
				return nil, err
			}
			game, err := pricing.Nonlinear{}.Run(pricing.Scenario{
				Players:        players,
				NumSections:    cfg.NumSections,
				LineCapacityKW: lineCap,
				Eta:            cfg.Eta,
				BetaPerMWh:     beta,
				Seed:           cfg.Seed + int64(h)*131,
			})
			if err != nil {
				return nil, fmt.Errorf("coupling: hour %d game: %w", h, err)
			}
			out.CongestionDegree = game.CongestionDegree
			out.UnitPaymentPerMWh = game.UnitPaymentPerMWh
			out.Welfare = game.Welfare
			out.EnergyKWh = game.TotalPowerKW // kW over one hour
			out.RevenueUSD = game.TotalPaymentPerHour
		}
		res.Hours[h] = out
		res.TotalEnergyKWh += out.EnergyKWh
		res.TotalRevenueUSD += out.RevenueUSD
		if out.EnergyKWh > res.Hours[res.PeakHour].EnergyKWh {
			res.PeakHour = h
		}
	}
	res.MeanConcurrent = presenceSum / 24
	return res, nil
}

// hourlyPresence runs the day of traffic once and returns the average
// number of vehicles present on the road per hour (vehicle-seconds
// divided by 3600).
func hourlyPresence(cfg DayConfig) ([24]float64, error) {
	var presence [24]float64
	plan := roadnet.DefaultSignalPlan()
	sim, err := traffic.NewSim(traffic.SimConfig{
		RoadLength: cfg.RoadLength,
		SpeedLimit: cfg.SpeedLimit,
		Signal:     &plan,
		Counts:     cfg.Counts,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return presence, err
	}
	var seconds [24]float64
	sim.AddObserver(func(_ string, _ units.Distance, _ units.Speed, now, dt time.Duration) {
		h := int(now.Hours()) % 24
		seconds[h] += dt.Seconds()
	})
	sim.Run()
	for h := 0; h < 24; h++ {
		presence[h] = seconds[h] / 3600
	}
	return presence, nil
}
