package coupling

import (
	"testing"

	"olevgrid/internal/grid"
)

// A day under feed dropouts still delivers: dropped hours price on the
// last-known-good β, and the result stays deterministic per seed.
func TestRunDayFeedDropouts(t *testing.T) {
	cfg := DayConfig{
		Seed: 1,
		FeedFaults: &grid.FeedConfig{
			DropRate: 0.25,
			Seed:     7,
		},
	}
	res, err := RunDay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergyKWh <= 0 {
		t.Fatal("no energy delivered under feed dropouts")
	}
	// No ceiling configured, so held prices are served, never stale.
	if res.StaleHours != 0 {
		t.Errorf("StaleHours = %d without a staleness ceiling", res.StaleHours)
	}
	again, err := RunDay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalEnergyKWh != res.TotalEnergyKWh || again.TotalRevenueUSD != res.TotalRevenueUSD {
		t.Error("seeded feed-fault day is not deterministic")
	}
}

// A scripted dark window past the staleness ceiling marks hours stale:
// the day holds the last applied β rather than trusting a fossil.
func TestRunDayFeedStalenessCeiling(t *testing.T) {
	res, err := RunDay(DayConfig{
		Seed: 1,
		FeedFaults: &grid.FeedConfig{
			Windows:          []grid.FeedWindow{{From: 8, To: 14}},
			StalenessCeiling: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hours 8–9 are within the ceiling (served last-known-good); hours
	// 10–13 are past it (held as stale).
	if res.StaleHours != 4 {
		t.Errorf("StaleHours = %d, want 4", res.StaleHours)
	}
	heldBeta := res.Hours[9].BetaPerMWh
	for h := 10; h < 14; h++ {
		if !res.Hours[h].FeedStale {
			t.Errorf("hour %d not marked stale", h)
		}
		if res.Hours[h].BetaPerMWh != heldBeta {
			t.Errorf("stale hour %d priced %v, want held %v", h, res.Hours[h].BetaPerMWh, heldBeta)
		}
		if res.Hours[h].EnergyKWh <= 0 {
			t.Errorf("stale hour %d delivered nothing; holding β should keep scheduling", h)
		}
	}
	if res.Hours[14].FeedStale || res.Hours[14].BetaPerMWh == heldBeta {
		t.Errorf("hour 14 should price on a fresh sample, got stale=%v β=%v",
			res.Hours[14].FeedStale, res.Hours[14].BetaPerMWh)
	}
}

// A feed dark from hour zero has no last-known-good: those hours must
// skip the game, not price on an invented β.
func TestRunDayFeedNeverGoodSkips(t *testing.T) {
	res, err := RunDay(DayConfig{
		Seed: 1,
		FeedFaults: &grid.FeedConfig{
			Windows:          []grid.FeedWindow{{From: 0, To: 3}},
			StalenessCeiling: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hour 0 is dark with nothing to hold; 1–2 likewise.
	for h := 0; h < 3; h++ {
		if !res.Hours[h].FeedStale {
			t.Errorf("hour %d not marked stale", h)
		}
		if res.Hours[h].EnergyKWh != 0 || res.Hours[h].RevenueUSD != 0 {
			t.Errorf("hour %d scheduled power with no price ever seen", h)
		}
	}
	if res.Hours[3].FeedStale {
		t.Error("hour 3 should price on the first good sample")
	}
}

// A section outage span solves those hours on the surviving sections
// and restores full width afterwards.
func TestRunDaySectionOutage(t *testing.T) {
	res, err := RunDay(DayConfig{
		Seed:           1,
		SectionOutages: []SectionOutage{{Section: 5, FromHour: 7, ToHour: 10}, {Section: 11, FromHour: 8, ToHour: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutageHours != 3 {
		t.Errorf("OutageHours = %d, want 3", res.OutageHours)
	}
	if got := res.Hours[7].LiveSections; got != 19 {
		t.Errorf("hour 7 live sections = %d, want 19", got)
	}
	if got := res.Hours[8].LiveSections; got != 18 {
		t.Errorf("hour 8 live sections = %d, want 18", got)
	}
	if got := res.Hours[10].LiveSections; got != 20 {
		t.Errorf("hour 10 live sections = %d, want 20", got)
	}
	// The outage hours still deliver on the survivors.
	for h := 7; h < 10; h++ {
		if res.Hours[h].EnergyKWh <= 0 {
			t.Errorf("outage hour %d delivered nothing", h)
		}
	}
	if res.TotalEnergyKWh <= 0 {
		t.Fatal("no energy delivered under section outages")
	}
}

// The fault knobs default off: a zero-value day is byte-identical to
// one that never heard of them.
func TestRunDayFaultKnobsDefaultOff(t *testing.T) {
	clean, err := RunDay(DayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.StaleHours != 0 || clean.OutageHours != 0 {
		t.Errorf("clean day recorded faults: stale=%d outage=%d", clean.StaleHours, clean.OutageHours)
	}
	for _, h := range clean.Hours {
		if h.FeedStale {
			t.Errorf("clean hour %d marked stale", h.Hour)
		}
		if h.LiveSections != 20 {
			t.Errorf("clean hour %d live sections = %d, want 20", h.Hour, h.LiveSections)
		}
	}
}

func TestRunDayFaultValidation(t *testing.T) {
	if _, err := RunDay(DayConfig{Seed: 1, FeedFaults: &grid.FeedConfig{DropRate: 2}}); err == nil {
		t.Error("bad feed config accepted")
	}
	if _, err := RunDay(DayConfig{Seed: 1, SectionOutages: []SectionOutage{{Section: 99}}}); err == nil {
		t.Error("out-of-range outage section accepted")
	}
	if _, err := RunDay(DayConfig{Seed: 1, SectionOutages: []SectionOutage{{Section: 1, FromHour: 9, ToHour: 8}}}); err == nil {
		t.Error("inverted outage span accepted")
	}
}
