package coupling

import "testing"

func TestGridFeedbackAtScaleRaisesDeficiency(t *testing.T) {
	// One lane is grid-noise; a metropolitan deployment (the paper's
	// thousands of intersections) is not.
	impact, err := RunDayWithGridFeedback(DayConfig{Seed: 1}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if impact.LoadedMaxDeficiencyMW <= impact.BaseMaxDeficiencyMW {
		t.Errorf("deficiency did not grow: %v vs base %v",
			impact.LoadedMaxDeficiencyMW, impact.BaseMaxDeficiencyMW)
	}
	if impact.LoadedPeakMW <= impact.BasePeakMW {
		t.Errorf("system peak did not grow: %v vs %v",
			impact.LoadedPeakMW, impact.BasePeakMW)
	}
	if impact.ReserveShortfallHours == 0 {
		t.Error("no reserve shortfall hours at metropolitan scale")
	}
	if impact.ExtraAncillaryUSD <= 0 {
		t.Error("no extra ancillary cost priced")
	}
	if impact.Day.TotalEnergyKWh <= 0 {
		t.Error("no charging happened")
	}
}

func TestGridFeedbackSingleLaneIsNoise(t *testing.T) {
	impact, err := RunDayWithGridFeedback(DayConfig{Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A single lane moves <1 MW against a multi-GW system: the worst
	// miss barely moves and reserves still cover it.
	growth := impact.LoadedMaxDeficiencyMW - impact.BaseMaxDeficiencyMW
	if growth > 2 {
		t.Errorf("single lane grew the worst miss by %v MW", growth)
	}
	if impact.ReserveShortfallHours != 0 {
		t.Errorf("single lane caused %d shortfall hours", impact.ReserveShortfallHours)
	}
}

func TestGridFeedbackScaleClamped(t *testing.T) {
	a, err := RunDayWithGridFeedback(DayConfig{Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDayWithGridFeedback(DayConfig{Seed: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.LoadedMaxDeficiencyMW != b.LoadedMaxDeficiencyMW {
		t.Error("scale < 1 not clamped to 1")
	}
}
