package coupling

import (
	"olevgrid/internal/obs"
)

// DayMetrics is the coupled day's telemetry bundle. It observes the
// hour loop itself — active on both the asynchronous and round-engine
// solver paths — while DayConfig.Solver (a *core.Metrics) separately
// instruments the inner equilibrium engine when Parallelism routes
// hours through it. Nil is the off switch, as everywhere in obs.
type DayMetrics struct {
	Hours       *obs.Counter   // hours processed (always 24 per day)
	GameHours   *obs.Counter   // hours that actually ran a game
	StaleHours  *obs.Counter   // hours priced on a held (stale) β
	OutageHours *obs.Counter   // hours with at least one dead section
	Rounds      *obs.Counter   // solver rounds summed over the day
	Energy      *obs.Histogram // delivered kWh per hour; Sum == day total
	Revenue     *obs.Histogram // collected $ per hour; Sum == day total
	Beta        *obs.Gauge     // last applied β ($/MWh)
	Sink        *obs.EventSink // one EventHour span per hour
}

// HourEnergyBuckets is the canonical per-hour energy layout (kWh): a
// 50-OLEV hour tops out well under 2000 kWh.
func HourEnergyBuckets() []float64 { return obs.LinearBuckets(0, 100, 20) }

// NewDayMetrics registers the coupling metric catalog on r (see
// DESIGN.md §11); r and sink may each be nil.
func NewDayMetrics(r *obs.Registry, sink *obs.EventSink) *DayMetrics {
	m := &DayMetrics{
		Hours:       r.Counter("olev_day_hours_total"),
		GameHours:   r.Counter("olev_day_game_hours_total"),
		StaleHours:  r.Counter("olev_day_stale_hours_total"),
		OutageHours: r.Counter("olev_day_outage_hours_total"),
		Rounds:      r.Counter("olev_day_rounds_total"),
		Energy:      r.Histogram("olev_day_hour_energy_kwh", HourEnergyBuckets()),
		Revenue:     r.Histogram("olev_day_hour_revenue_usd", obs.ExponentialBuckets(1, 2, 12)),
		Beta:        r.Gauge("olev_day_beta_per_mwh"),
		Sink:        sink,
	}
	r.Help("olev_day_hour_energy_kwh", "energy delivered per coupled hour; sum equals the day total")
	return m
}

// observeHour records one completed hour of the coupled day.
func (m *DayMetrics) observeHour(out *HourOutcome, ranGame, outage bool) {
	if m == nil {
		return
	}
	m.Hours.Inc()
	if ranGame {
		m.GameHours.Inc()
	}
	if out.FeedStale {
		m.StaleHours.Inc()
	}
	if outage {
		m.OutageHours.Inc()
	}
	m.Rounds.Add(int64(out.Rounds))
	m.Energy.Observe(out.EnergyKWh)
	m.Revenue.Observe(out.RevenueUSD)
	m.Beta.Set(out.BetaPerMWh)
	m.Sink.Emit(obs.EventHour, "day", int32(out.Hour), -1, out.EnergyKWh)
}
