package coupling

import (
	"math"
	"testing"
)

// TestRunDayWarmStartMatchesCold is the coupled-day half of the
// warm-start guard: hour-chaining must change round counts, never the
// equilibria. Cold and warm days run the same solver at the same tight
// tolerance; every hour's schedules must agree to 1e-9 per entry, the
// hourly aggregates must match, and the warm day must spend strictly
// fewer total rounds.
func TestRunDayWarmStartMatchesCold(t *testing.T) {
	base := DayConfig{
		Seed:          3,
		Parallelism:   1,
		Tolerance:     1e-11,
		KeepSchedules: true,
	}
	cold, err := RunDay(base)
	if err != nil {
		t.Fatal(err)
	}
	warm := base
	warm.WarmStart = true
	warmRes, err := RunDay(warm)
	if err != nil {
		t.Fatal(err)
	}

	var maxDiff float64
	for h := 0; h < 24; h++ {
		hc, hw := cold.Hours[h], warmRes.Hours[h]
		if hc.OLEVs != hw.OLEVs {
			t.Fatalf("hour %d: fleet size changed under warm start (%d vs %d)", h, hc.OLEVs, hw.OLEVs)
		}
		if hc.OLEVs == 0 {
			continue
		}
		sc, sw := hc.Schedule, hw.Schedule
		if sc == nil || sw == nil {
			t.Fatalf("hour %d: KeepSchedules did not retain schedules", h)
		}
		for n := 0; n < sc.NumOLEVs(); n++ {
			for c := 0; c < sc.NumSections(); c++ {
				if d := math.Abs(sc.At(n, c) - sw.At(n, c)); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if d := math.Abs(hc.Welfare - hw.Welfare); d > 1e-6 {
			t.Errorf("hour %d: welfare diverges by %g", h, d)
		}
	}
	if maxDiff > 1e-9 {
		t.Errorf("max per-hour schedule divergence %g exceeds 1e-9", maxDiff)
	}
	if cold.TotalRounds <= 0 || warmRes.TotalRounds <= 0 {
		t.Fatal("round accounting missing")
	}
	if warmRes.TotalRounds >= cold.TotalRounds {
		t.Errorf("warm day took %d rounds, cold %d — chaining saved nothing",
			warmRes.TotalRounds, cold.TotalRounds)
	}
	t.Logf("day rounds: cold=%d warm=%d, max schedule divergence=%g",
		cold.TotalRounds, warmRes.TotalRounds, maxDiff)
}

// TestRunDayColdDefaultsUnchanged pins that the new knobs are opt-in:
// a zero-config day must not record schedules, and the asynchronous
// path must fill the new round columns from its update counts.
func TestRunDayColdDefaultsUnchanged(t *testing.T) {
	res, err := RunDay(DayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for h, out := range res.Hours {
		if out.Schedule != nil {
			t.Fatalf("hour %d retained a schedule without KeepSchedules", h)
		}
		if out.OLEVs > 0 && out.Rounds == 0 {
			t.Fatalf("hour %d has %d OLEVs but zero rounds", h, out.OLEVs)
		}
	}
	if res.TotalRounds == 0 {
		t.Error("day total rounds not accumulated")
	}
}
