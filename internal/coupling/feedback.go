package coupling

import (
	"time"

	"olevgrid/internal/grid"
)

// GridImpact quantifies what a day of WPT charging does to the grid
// operator — the full circle of the paper's Section III argument: the
// forecast was made without OLEVs, so every kWh the charging lanes
// move lands in the deficiency, and reserves must cover the worst of
// it.
type GridImpact struct {
	// Day is the coupled charging day that produced the load.
	Day *DayResult
	// BaseMaxDeficiencyMW and LoadedMaxDeficiencyMW compare the worst
	// forecast miss without and with the OLEV load.
	BaseMaxDeficiencyMW   float64
	LoadedMaxDeficiencyMW float64
	// BasePeakMW and LoadedPeakMW compare system peaks.
	BasePeakMW   float64
	LoadedPeakMW float64
	// ReserveShortfallHours counts hours where the OLEV-added
	// deficiency exceeds the reserve sizing implied by the historical
	// bound — the hours that force new ancillary procurement.
	ReserveShortfallHours int
	// ExtraAncillaryUSD prices the additional reserve energy at each
	// hour's regulation-capacity price: reserve deficit (MW) × price
	// ($/MW), summed over shortfall hours.
	ExtraAncillaryUSD float64
}

// RunDayWithGridFeedback runs the coupled charging day, injects its
// hourly load into the ISO day, and measures the operator-side
// damage. scale multiplies the single-lane load to a deployment of
// that many lanes (the paper's many-intersections extrapolation);
// values below 1 are clamped to 1.
func RunDayWithGridFeedback(cfg DayConfig, scale float64) (*GridImpact, error) {
	cfg.applyDefaults()
	if scale < 1 {
		scale = 1
	}
	day, err := RunDay(cfg)
	if err != nil {
		return nil, err
	}
	baseDay, err := grid.NewDay(cfg.Grid)
	if err != nil {
		return nil, err
	}

	var hourly [24]float64
	for h, out := range day.Hours {
		hourly[h] = out.EnergyKWh * scale // kWh over an hour == average kW
	}
	loaded := baseDay.WithOLEVLoad(hourly)

	impact := &GridImpact{
		Day:                   day,
		BaseMaxDeficiencyMW:   baseDay.MaxAbsDeficiencyMW(),
		LoadedMaxDeficiencyMW: loaded.MaxAbsDeficiencyMW(),
		BasePeakMW:            baseDay.PeakLoadMW(),
		LoadedPeakMW:          loaded.PeakLoadMW(),
	}
	// Reserves were sized to the historical worst miss; any hour the
	// loaded deficiency exceeds it needs new procurement.
	sizing := impact.BaseMaxDeficiencyMW
	for h := 0; h < 24; h++ {
		at := time.Duration(h) * time.Hour
		deficit := loaded.DeficiencyMW(at) - sizing
		if deficit <= 0 {
			continue
		}
		impact.ReserveShortfallHours++
		_, regCapacity, _ := loaded.Ancillary(at)
		impact.ExtraAncillaryUSD += deficit * regCapacity
	}
	return impact, nil
}
