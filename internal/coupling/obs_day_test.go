package coupling

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"olevgrid/internal/core"
	"olevgrid/internal/obs"
)

// formatDay renders a DayResult exactly as the golden test does, so
// the metrics-armed run can be compared byte-for-byte against the
// stored golden file.
func formatDay(res *DayResult) string {
	var sb strings.Builder
	sb.WriteString("hour olevs beta($/MWh) congestion unit($/MWh) energy(kWh) revenue($) rounds degraded\n")
	for _, h := range res.Hours {
		fmt.Fprintf(&sb, "%4d %5d %11.4f %10.6f %11.4f %11.4f %10.4f %6d %8d\n",
			h.Hour, h.OLEVs, h.BetaPerMWh, h.CongestionDegree, h.UnitPaymentPerMWh,
			h.EnergyKWh, h.RevenueUSD, h.Rounds, h.DegradedRounds)
	}
	fmt.Fprintf(&sb, "totals: energy %.4f kWh, revenue %.4f $, rounds %d, peak hour %d, mean concurrent %.4f\n",
		res.TotalEnergyKWh, res.TotalRevenueUSD, res.TotalRounds, res.PeakHour, res.MeanConcurrent)
	return sb.String()
}

// TestGoldenBytesIdenticalWithMetricsArmed is the coupled day's half
// of the "free" contract: arming DayMetrics (and the solver bundle)
// must not move a single byte of the pinned golden output. The
// instruments observe values the hour loop already computes; if this
// test fails, instrumentation leaked into the physics.
func TestGoldenBytesIdenticalWithMetricsArmed(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewEventSink(64)
	res, err := RunDay(DayConfig{
		Seed:    1,
		Metrics: NewDayMetrics(reg, sink),
		Solver:  core.NewMetrics(reg, sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "day.golden"))
	if err != nil {
		t.Fatalf("read golden (generate via TestGoldenRunDay -update): %v", err)
	}
	if got := formatDay(res); got != string(want) {
		t.Fatal("metrics-armed day output differs from the golden bytes")
	}
}

// TestDayMetricsReconcileWithDayResult proves the day bundle faithful:
// every counter, histogram sum and event count matches the DayResult
// the run itself reported — bit-for-bit for the float sums, since the
// histogram accumulates hours in the same order as the totals.
func TestDayMetricsReconcileWithDayResult(t *testing.T) {
	reg := obs.NewRegistry()
	sink := obs.NewEventSink(64)
	m := NewDayMetrics(reg, sink)
	res, err := RunDay(DayConfig{Seed: 3, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	if got := m.Hours.Value(); got != 24 {
		t.Errorf("hours counter %d, want 24", got)
	}
	if got := m.Rounds.Value(); got != uint64(res.TotalRounds) {
		t.Errorf("rounds counter %d, result says %d", got, res.TotalRounds)
	}
	if got := m.StaleHours.Value(); got != uint64(res.StaleHours) {
		t.Errorf("stale-hours counter %d, result says %d", got, res.StaleHours)
	}
	if got := m.OutageHours.Value(); got != uint64(res.OutageHours) {
		t.Errorf("outage-hours counter %d, result says %d", got, res.OutageHours)
	}
	if got := m.Energy.Sum(); got != res.TotalEnergyKWh {
		t.Errorf("energy histogram sum %v, result total %v", got, res.TotalEnergyKWh)
	}
	if got := m.Energy.Count(); got != 24 {
		t.Errorf("energy histogram count %d, want 24", got)
	}
	if got := m.Revenue.Sum(); got != res.TotalRevenueUSD {
		t.Errorf("revenue histogram sum %v, result total %v", got, res.TotalRevenueUSD)
	}
	var games uint64
	for _, h := range res.Hours {
		if h.Rounds > 0 {
			games++
		}
	}
	if got := m.GameHours.Value(); got < games {
		t.Errorf("game-hours counter %d below hours with rounds %d", got, games)
	}
	if got := sink.CountKind(obs.EventHour); got != 24 {
		t.Errorf("hour events %d, want 24", got)
	}
	if got := m.Beta.Value(); got != res.Hours[23].BetaPerMWh {
		t.Errorf("beta gauge %v, last hour's β %v", got, res.Hours[23].BetaPerMWh)
	}
}

// TestDayParallelIdenticalWithSolverMetrics runs the round-engine day
// twice — bare and with both bundles armed — and requires identical
// physics plus a populated solver bundle: the inner engine's rounds
// must surface through the coupling layer.
func TestDayParallelIdenticalWithSolverMetrics(t *testing.T) {
	bare, err := RunDay(DayConfig{Seed: 5, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sink := obs.NewEventSink(1 << 12)
	sm := core.NewMetrics(reg, sink)
	inst, err := RunDay(DayConfig{
		Seed:        5,
		Parallelism: 2,
		Metrics:     NewDayMetrics(reg, sink),
		Solver:      sm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if formatDay(bare) != formatDay(inst) {
		t.Fatal("solver metrics changed the parallel day's output")
	}
	if got := sm.Rounds.Value(); got != uint64(inst.TotalRounds) {
		t.Errorf("solver rounds counter %d, day total %d", got, inst.TotalRounds)
	}
	if sm.Solves.Value() == 0 {
		t.Error("no solves counted on the round-engine path")
	}
}
