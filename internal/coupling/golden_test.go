package coupling

// Golden-file determinism test for the coupled day, matching the
// fig2/fig3/fig56 pattern in internal/experiments: the hourly
// energy/revenue/rounds table for a fixed seed is pinned
// byte-for-byte. Parallelism and WarmStart are pinned to zero — the
// golden records the paper's cold asynchronous dynamics, and the
// warm-start/engine equivalences are covered by the differential
// suites. Regenerate with:
//
//	go test ./internal/coupling -run Golden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestGoldenRunDay(t *testing.T) {
	res, err := RunDay(DayConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("hour olevs beta($/MWh) congestion unit($/MWh) energy(kWh) revenue($) rounds degraded\n")
	for _, h := range res.Hours {
		fmt.Fprintf(&sb, "%4d %5d %11.4f %10.6f %11.4f %11.4f %10.4f %6d %8d\n",
			h.Hour, h.OLEVs, h.BetaPerMWh, h.CongestionDegree, h.UnitPaymentPerMWh,
			h.EnergyKWh, h.RevenueUSD, h.Rounds, h.DegradedRounds)
	}
	fmt.Fprintf(&sb, "totals: energy %.4f kWh, revenue %.4f $, rounds %d, peak hour %d, mean concurrent %.4f\n",
		res.TotalEnergyKWh, res.TotalRevenueUSD, res.TotalRounds, res.PeakHour, res.MeanConcurrent)

	path := filepath.Join("testdata", "day.golden")
	got := sb.String()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("day.golden: first difference at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatal("day.golden: output differs from golden")
}
