package v2i

import (
	"context"
	"testing"

	"olevgrid/internal/obs"
)

// TestInstrumentedCountsFramesByType drives a mixed frame sequence
// through an instrumented pair and checks the per-type accounting —
// and that the wrapper is invisible: every envelope arrives unchanged.
func TestInstrumentedCountsFramesByType(t *testing.T) {
	a, b := NewPair(8)
	reg := obs.NewRegistry()
	tm := NewTransportMetrics(reg)
	ia := NewInstrumented(a, tm)
	ib := NewInstrumented(b, tm)
	ctx := context.Background()

	frames := []MessageType{TypeHello, TypeQuote, TypeQuote, TypeRequest, "weird", TypeBye}
	for i, typ := range frames {
		env, err := Seal(typ, "grid", uint64(i+1), Heartbeat{Round: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := ia.Send(ctx, env); err != nil {
			t.Fatal(err)
		}
		got, err := ib.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != typ || got.Seq != uint64(i+1) {
			t.Fatalf("frame %d mutated in flight: %+v", i, got)
		}
	}

	if got := tm.Sent(TypeQuote); got != 2 {
		t.Errorf("sent quotes = %d, want 2", got)
	}
	if got := tm.Received(TypeQuote); got != 2 {
		t.Errorf("received quotes = %d, want 2", got)
	}
	if got := tm.Sent(TypeHello); got != 1 {
		t.Errorf("sent hellos = %d, want 1", got)
	}
	if got := tm.Sent("weird"); got != 1 {
		t.Errorf("sent other = %d, want 1", got)
	}
	if got := tm.SendErrs.Value(); got != 0 {
		t.Errorf("send errors = %d, want 0", got)
	}

	// Errors count on the error counters, not the frame counters.
	_ = ia.Close()
	env, _ := Seal(TypeQuote, "grid", 99, Heartbeat{})
	if err := ia.Send(ctx, env); err == nil {
		t.Fatal("send on closed transport must fail")
	}
	if got := tm.SendErrs.Value(); got != 1 {
		t.Errorf("send errors = %d, want 1", got)
	}
	if got := tm.Sent(TypeQuote); got != 2 {
		t.Errorf("failed send leaked into frame counter: %d", got)
	}

	// A nil bundle is a transparent pass-through.
	c, d := NewPair(1)
	nc := NewInstrumented(c, nil)
	if err := nc.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	if got, err := NewInstrumented(d, nil).Recv(ctx); err != nil || got.Seq != 99 {
		t.Fatalf("nil-bundle pass-through broke: %+v, %v", got, err)
	}
}
