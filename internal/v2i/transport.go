package v2i

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("v2i: transport closed")

// MaxFrameBytes bounds one newline-delimited TCP frame. A peer that
// streams an unbounded line would otherwise grow the read buffer
// without limit; frames at or above this size are rejected on both
// the send and receive side.
const MaxFrameBytes = 256 << 10

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameBytes.
// After a receive-side rejection the stream is no longer framed and
// the connection should be closed.
var ErrFrameTooLarge = errors.New("v2i: frame exceeds MaxFrameBytes")

// Transport is a bidirectional, ordered message channel between one
// OLEV and the smart grid. Implementations must be safe for one
// concurrent sender and one concurrent receiver.
type Transport interface {
	// Send delivers an envelope or fails with the context's error or
	// ErrClosed.
	Send(ctx context.Context, env Envelope) error
	// Recv blocks for the next envelope.
	Recv(ctx context.Context) (Envelope, error)
	// Close releases the transport; pending and future calls fail.
	Close() error
}

// chanTransport is one end of an in-memory pair.
type chanTransport struct {
	out  chan Envelope
	in   chan Envelope
	done chan struct{}
	once *sync.Once
}

var _ Transport = (*chanTransport)(nil)

// NewPair returns two connected in-memory transports: what one sends,
// the other receives. buffer sizes the channel; 0 gives rendezvous
// semantics.
func NewPair(buffer int) (Transport, Transport) {
	if buffer < 0 {
		buffer = 0
	}
	ab := make(chan Envelope, buffer)
	ba := make(chan Envelope, buffer)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &chanTransport{out: ab, in: ba, done: done, once: once}
	b := &chanTransport{out: ba, in: ab, done: done, once: once}
	return a, b
}

// Send implements Transport.
func (t *chanTransport) Send(ctx context.Context, env Envelope) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	select {
	case t.out <- env:
		return nil
	case <-t.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Transport.
func (t *chanTransport) Recv(ctx context.Context) (Envelope, error) {
	// Drain messages that were in flight even if the pair has been
	// closed since.
	select {
	case env := <-t.in:
		return env, nil
	default:
	}
	select {
	case env := <-t.in:
		return env, nil
	case <-t.done:
		return Envelope{}, ErrClosed
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

// Close implements Transport; closing either end closes the pair.
func (t *chanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

// DecodeFrame parses one newline-delimited wire frame into an
// Envelope. It is the receive-side counterpart of Send's marshalling
// and enforces the MaxFrameBytes bound independently of the bufio
// reader sizing, so every consumer of raw frames (the TCP transport,
// tests, the fuzz target, future transports) shares one validation
// path. A single trailing newline is permitted but not required; the
// size bound applies to the payload without it, mirroring Send.
func DecodeFrame(line []byte) (Envelope, error) {
	payload := line
	if n := len(payload); n > 0 && payload[n-1] == '\n' {
		payload = payload[:n-1]
	}
	if len(payload) >= MaxFrameBytes {
		return Envelope{}, fmt.Errorf("v2i: decode %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return Envelope{}, fmt.Errorf("v2i: decode envelope: %w", err)
	}
	return env, nil
}

// Timeouts bounds a connection-backed transport's blocking operations
// when the caller's context carries no deadline of its own. They are
// the control plane's guard against a hung peer: a coordinator round
// can never block indefinitely on one stalled socket. Zero fields
// leave the corresponding operation bounded only by its context.
type Timeouts struct {
	// Dial bounds connection establishment.
	Dial time.Duration
	// Read bounds one Recv; the effective deadline is the earlier of
	// this and the context's.
	Read time.Duration
	// Write bounds one Send; the effective deadline is the earlier of
	// this and the context's.
	Write time.Duration
}

// DefaultTimeouts is a sane deployment default: generous enough for a
// congested 802.11p hop, tight enough that a dead peer is detected
// within one coordinator round.
func DefaultTimeouts() Timeouts {
	return Timeouts{Dial: 5 * time.Second, Read: 10 * time.Second, Write: 5 * time.Second}
}

// tcpTransport frames envelopes as newline-delimited JSON over a
// net.Conn.
type tcpTransport struct {
	conn net.Conn
	r    *bufio.Reader
	to   Timeouts

	sendMu sync.Mutex
	recvMu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

var _ Transport = (*tcpTransport)(nil)

// NewConnTransport wraps an established connection.
func NewConnTransport(conn net.Conn) Transport {
	// The reader is sized to MaxFrameBytes so an unterminated line
	// surfaces as bufio.ErrBufferFull instead of unbounded growth.
	return &tcpTransport{conn: conn, r: bufio.NewReaderSize(conn, MaxFrameBytes)}
}

// NewConnTransportTimeouts wraps an established connection with
// default read/write deadlines applied whenever the caller's context
// carries none.
func NewConnTransportTimeouts(conn net.Conn, to Timeouts) Transport {
	t := NewConnTransport(conn).(*tcpTransport)
	t.to = to
	return t
}

// Dial connects to a listening smart grid.
func Dial(ctx context.Context, addr string) (Transport, error) {
	return DialTimeouts(ctx, addr, Timeouts{})
}

// DialTimeouts connects with a bounded dial and arms the returned
// transport with default read/write deadlines (see Timeouts).
func DialTimeouts(ctx context.Context, addr string, to Timeouts) (Transport, error) {
	d := net.Dialer{Timeout: to.Dial}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("v2i: dial %s: %w", addr, err)
	}
	return NewConnTransportTimeouts(conn, to), nil
}

// deadlineFor resolves the effective deadline of one operation: the
// earlier of the context's deadline and now+fallback. The zero time
// means unbounded — and must be *applied* to clear any deadline a
// previous call armed on the shared conn.
func deadlineFor(ctx context.Context, fallback time.Duration) time.Time {
	dl, ok := ctx.Deadline()
	if fallback > 0 {
		if fdl := time.Now().Add(fallback); !ok || fdl.Before(dl) {
			return fdl
		}
	}
	if !ok {
		return time.Time{}
	}
	return dl
}

// Send implements Transport. The effective write deadline is the
// earlier of the context's deadline and the transport's Write timeout.
func (t *tcpTransport) Send(ctx context.Context, env Envelope) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := t.conn.SetWriteDeadline(deadlineFor(ctx, t.to.Write)); err != nil {
		return fmt.Errorf("v2i: set write deadline: %w", err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("v2i: marshal envelope: %w", err)
	}
	if len(raw) >= MaxFrameBytes {
		return fmt.Errorf("v2i: send %d bytes: %w", len(raw), ErrFrameTooLarge)
	}
	raw = append(raw, '\n')
	if _, err := t.conn.Write(raw); err != nil {
		return fmt.Errorf("v2i: write: %w", err)
	}
	return nil
}

// Recv implements Transport. The effective read deadline is the
// earlier of the context's deadline and the transport's Read timeout.
func (t *tcpTransport) Recv(ctx context.Context) (Envelope, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if err := ctx.Err(); err != nil {
		return Envelope{}, err
	}
	if err := t.conn.SetReadDeadline(deadlineFor(ctx, t.to.Read)); err != nil {
		return Envelope{}, fmt.Errorf("v2i: set read deadline: %w", err)
	}
	line, err := t.r.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return Envelope{}, fmt.Errorf("v2i: read: %w", ErrFrameTooLarge)
		}
		return Envelope{}, fmt.Errorf("v2i: read: %w", err)
	}
	return DecodeFrame(line)
}

// Close implements Transport.
func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.conn.Close() })
	return t.closeErr
}

// Server accepts V2I connections for the smart grid.
type Server struct {
	ln net.Listener
	// ConnTimeouts, when non-zero, arms every accepted transport with
	// default read/write deadlines; set it before the accept loop
	// starts. A hung vehicle then times out instead of pinning a
	// coordinator goroutine forever.
	ConnTimeouts Timeouts

	// slots, when non-nil, is the accept-side admission semaphore:
	// Accept takes a slot before accepting and each accepted
	// transport's Close returns it. See SetMaxConns.
	slots chan struct{}
}

// Listen opens a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// test port).
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("v2i: listen %s: %w", addr, err)
	}
	return &Server{ln: ln}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetMaxConns bounds the number of concurrently open accepted
// transports. At the limit Accept pauses — the flood waits in the
// kernel backlog instead of exhausting file descriptors — and resumes
// as soon as an accepted transport is closed. Zero or negative removes
// the limit. Set it before the accept loop starts; it is not safe to
// change while Accept is running.
func (s *Server) SetMaxConns(n int) {
	if n <= 0 {
		s.slots = nil
		return
	}
	s.slots = make(chan struct{}, n)
}

// acceptBackoff bounds the retry backoff applied when the listener
// reports a temporary error (EMFILE, ECONNABORTED under a SYN flood):
// the accept loop degrades to a slower accept rate instead of tearing
// the daemon down.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

// Accept blocks for the next vehicle connection. With a MaxConns
// limit armed it first waits for a free connection slot; temporary
// listener errors are retried with exponential backoff rather than
// surfaced, so a connection flood degrades service instead of ending
// the accept loop.
func (s *Server) Accept() (Transport, error) {
	if s.slots != nil {
		s.slots <- struct{}{} // accept-pause until a slot frees up
	}
	backoff := acceptBackoffBase
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if isTemporary(err) {
				time.Sleep(backoff)
				if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				continue
			}
			if s.slots != nil {
				<-s.slots
			}
			return nil, fmt.Errorf("v2i: accept: %w", err)
		}
		t := NewConnTransportTimeouts(conn, s.ConnTimeouts)
		if s.slots != nil {
			t = &slottedTransport{Transport: t, slots: s.slots}
		}
		return t, nil
	}
}

// isTemporary reports whether an accept error is transient. The
// Temporary method is deprecated for general errors but remains the
// documented contract for listener errors like ECONNABORTED.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// slottedTransport returns its accept slot exactly once on Close.
type slottedTransport struct {
	Transport
	slots chan struct{}
	once  sync.Once
}

func (t *slottedTransport) Close() error {
	err := t.Transport.Close()
	t.once.Do(func() { <-t.slots })
	return err
}

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }
