package v2i

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("v2i: transport closed")

// MaxFrameBytes bounds one newline-delimited TCP frame. A peer that
// streams an unbounded line would otherwise grow the read buffer
// without limit; frames at or above this size are rejected on both
// the send and receive side.
const MaxFrameBytes = 256 << 10

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameBytes.
// After a receive-side rejection the stream is no longer framed and
// the connection should be closed.
var ErrFrameTooLarge = errors.New("v2i: frame exceeds MaxFrameBytes")

// Transport is a bidirectional, ordered message channel between one
// OLEV and the smart grid. Implementations must be safe for one
// concurrent sender and one concurrent receiver.
type Transport interface {
	// Send delivers an envelope or fails with the context's error or
	// ErrClosed.
	Send(ctx context.Context, env Envelope) error
	// Recv blocks for the next envelope.
	Recv(ctx context.Context) (Envelope, error)
	// Close releases the transport; pending and future calls fail.
	Close() error
}

// chanTransport is one end of an in-memory pair.
type chanTransport struct {
	out  chan Envelope
	in   chan Envelope
	done chan struct{}
	once *sync.Once
}

var _ Transport = (*chanTransport)(nil)

// NewPair returns two connected in-memory transports: what one sends,
// the other receives. buffer sizes the channel; 0 gives rendezvous
// semantics.
func NewPair(buffer int) (Transport, Transport) {
	if buffer < 0 {
		buffer = 0
	}
	ab := make(chan Envelope, buffer)
	ba := make(chan Envelope, buffer)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &chanTransport{out: ab, in: ba, done: done, once: once}
	b := &chanTransport{out: ba, in: ab, done: done, once: once}
	return a, b
}

// Send implements Transport.
func (t *chanTransport) Send(ctx context.Context, env Envelope) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	select {
	case t.out <- env:
		return nil
	case <-t.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Recv implements Transport.
func (t *chanTransport) Recv(ctx context.Context) (Envelope, error) {
	// Drain messages that were in flight even if the pair has been
	// closed since.
	select {
	case env := <-t.in:
		return env, nil
	default:
	}
	select {
	case env := <-t.in:
		return env, nil
	case <-t.done:
		return Envelope{}, ErrClosed
	case <-ctx.Done():
		return Envelope{}, ctx.Err()
	}
}

// Close implements Transport; closing either end closes the pair.
func (t *chanTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

// DecodeFrame parses one newline-delimited wire frame into an
// Envelope. It is the receive-side counterpart of Send's marshalling
// and enforces the MaxFrameBytes bound independently of the bufio
// reader sizing, so every consumer of raw frames (the TCP transport,
// tests, the fuzz target, future transports) shares one validation
// path. A single trailing newline is permitted but not required; the
// size bound applies to the payload without it, mirroring Send.
func DecodeFrame(line []byte) (Envelope, error) {
	payload := line
	if n := len(payload); n > 0 && payload[n-1] == '\n' {
		payload = payload[:n-1]
	}
	if len(payload) >= MaxFrameBytes {
		return Envelope{}, fmt.Errorf("v2i: decode %d bytes: %w", len(payload), ErrFrameTooLarge)
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return Envelope{}, fmt.Errorf("v2i: decode envelope: %w", err)
	}
	return env, nil
}

// Timeouts bounds a connection-backed transport's blocking operations
// when the caller's context carries no deadline of its own. They are
// the control plane's guard against a hung peer: a coordinator round
// can never block indefinitely on one stalled socket. Zero fields
// leave the corresponding operation bounded only by its context.
type Timeouts struct {
	// Dial bounds connection establishment.
	Dial time.Duration
	// Read bounds one Recv; the effective deadline is the earlier of
	// this and the context's.
	Read time.Duration
	// Write bounds one Send; the effective deadline is the earlier of
	// this and the context's.
	Write time.Duration
}

// DefaultTimeouts is a sane deployment default: generous enough for a
// congested 802.11p hop, tight enough that a dead peer is detected
// within one coordinator round.
func DefaultTimeouts() Timeouts {
	return Timeouts{Dial: 5 * time.Second, Read: 10 * time.Second, Write: 5 * time.Second}
}

// wireRole is a connection-backed transport's part in the codec
// negotiation (DESIGN.md §14).
type wireRole uint8

const (
	// roleLegacy never negotiates: the connection speaks JSON from the
	// first byte, exactly as before the binary codec existed.
	roleLegacy wireRole = iota
	// roleDialer wrote (or will rely on having written) the preamble
	// at dial time and resolves the codec from the listener's reply.
	roleDialer
	// roleAccepter sniffs the first byte from the peer: a preamble is
	// answered with the listener's choice, a '{' means a JSON dialer
	// and gets no reply at all.
	roleAccepter
)

// connReaderBytes sizes the per-connection read buffer. Frames longer
// than the buffer are still accepted up to MaxFrameBytes — the JSON
// receive path grows a per-transport line buffer and the binary path
// reads into the decoder's scratch — so this is a working-set knob,
// not a protocol bound: 32 KiB per connection instead of the former
// MaxFrameBytes-sized reader keeps thousand-vehicle fleets cheap.
const connReaderBytes = 32 << 10

// pipeReaderBytes sizes readers over in-memory pipes, where there is
// no syscall to amortize.
const pipeReaderBytes = 4 << 10

// tcpTransport frames envelopes over a net.Conn: newline-delimited
// JSON, or the length-prefixed binary codec once negotiated.
type tcpTransport struct {
	conn net.Conn
	r    *bufio.Reader
	to   Timeouts

	// Codec negotiation: role/maxWire are fixed at construction;
	// wire/lateSniff/negoErr are written once under negoMu before
	// negoDone is set, which publishes them to the lock-free readers.
	role      wireRole
	maxWire   Wire
	negoMu    sync.Mutex
	negoDone  atomic.Bool
	negoErr   error
	wire      Wire
	lateSniff bool

	// Send-side scratch, all guarded by sendMu: ebuf backs binary
	// frame encoding, jbuf/jenc back the pooled JSON encoder.
	sendMu sync.Mutex
	ebuf   []byte
	jbuf   bytes.Buffer
	jenc   *json.Encoder

	// Recv-side scratch, guarded by recvMu: dec holds the binary
	// decoder state, lineBuf accumulates JSON frames longer than the
	// fixed reader.
	recvMu  sync.Mutex
	dec     FrameDecoder
	lineBuf []byte

	bytesSent atomic.Uint64
	bytesRecv atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

var (
	_ Transport   = (*tcpTransport)(nil)
	_ TypedSender = (*tcpTransport)(nil)
)

func newConnTransport(conn net.Conn, to Timeouts) *tcpTransport {
	return &tcpTransport{conn: conn, r: bufio.NewReaderSize(conn, connReaderBytes), to: to}
}

// NewConnTransport wraps an established connection. It speaks JSON
// unconditionally — no preamble is sent or expected — which keeps it
// byte-compatible with every pre-binary peer; codec negotiation is
// opted into via DialWire / Server.Wire.
func NewConnTransport(conn net.Conn) Transport {
	t := newConnTransport(conn, Timeouts{})
	t.negoDone.Store(true)
	return t
}

// NewConnTransportTimeouts wraps an established connection with
// default read/write deadlines applied whenever the caller's context
// carries none.
func NewConnTransportTimeouts(conn net.Conn, to Timeouts) Transport {
	t := newConnTransport(conn, to)
	t.negoDone.Store(true)
	return t
}

// Dial connects to a listening smart grid, speaking JSON.
func Dial(ctx context.Context, addr string) (Transport, error) {
	return DialWireTimeouts(ctx, addr, WireJSON, Timeouts{})
}

// DialTimeouts connects with a bounded dial and arms the returned
// transport with default read/write deadlines (see Timeouts).
func DialTimeouts(ctx context.Context, addr string, to Timeouts) (Transport, error) {
	return DialWireTimeouts(ctx, addr, WireJSON, to)
}

// DialWire connects offering the given codec; see DialWireTimeouts.
func DialWire(ctx context.Context, addr string, w Wire) (Transport, error) {
	return DialWireTimeouts(ctx, addr, w, Timeouts{})
}

// DialWireTimeouts connects and, when w is WireBinary, writes the
// negotiation preamble eagerly so it rides ahead of the first frame.
// The codec actually used is resolved lazily from the listener's
// reply on the first Send or Recv: a listener that never answers with
// a preamble (it predates the binary codec, or declined) settles the
// connection on JSON without error.
func DialWireTimeouts(ctx context.Context, addr string, w Wire, to Timeouts) (Transport, error) {
	d := net.Dialer{Timeout: to.Dial}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("v2i: dial %s: %w", addr, err)
	}
	t := newConnTransport(conn, to)
	if w != WireBinary {
		t.negoDone.Store(true)
		return t, nil
	}
	t.role = roleDialer
	t.maxWire = w
	if err := t.conn.SetWriteDeadline(deadlineFor(ctx, t.to.Write)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("v2i: set write deadline: %w", err)
	}
	if _, err := conn.Write([]byte{wireMagic0, wireMagic1, wireMagic2, wireMagic3, wireVersionBinary1}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("v2i: write preamble: %w", err)
	}
	return t, nil
}

// NewPipePair returns two connected transports over an in-memory
// net.Pipe, both preset to the given codec with no negotiation
// round. Unlike NewPair — which moves Envelope values through a
// channel — frames here really encode and decode, so in-process
// fleets exercise the same codec hot path as TCP deployments without
// consuming file descriptors.
func NewPipePair(w Wire) (Transport, Transport) {
	ca, cb := net.Pipe()
	return newPresetConn(ca, w), newPresetConn(cb, w)
}

func newPresetConn(conn net.Conn, w Wire) *tcpTransport {
	t := &tcpTransport{conn: conn, r: bufio.NewReaderSize(conn, pipeReaderBytes), wire: w}
	t.negoDone.Store(true)
	return t
}

// deadlineFor resolves the effective deadline of one operation: the
// earlier of the context's deadline and now+fallback. The zero time
// means unbounded — and must be *applied* to clear any deadline a
// previous call armed on the shared conn.
func deadlineFor(ctx context.Context, fallback time.Duration) time.Time {
	dl, ok := ctx.Deadline()
	if fallback > 0 {
		if fdl := time.Now().Add(fallback); !ok || fdl.Before(dl) {
			return fdl
		}
	}
	if !ok {
		return time.Time{}
	}
	return dl
}

// isTimeoutErr reports whether err is a deadline expiry — the one
// negotiation failure that must stay retryable, because nothing has
// been consumed from the stream yet.
func isTimeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// negotiate resolves the connection's codec exactly once. The
// lock-free fast path makes it free after the first frame. Timeouts
// while the stream is still untouched do not latch, so a slow peer's
// preamble can be awaited again on the caller's retry.
func (t *tcpTransport) negotiate(ctx context.Context, recvSide bool) error {
	if t.negoDone.Load() {
		return t.negoErr
	}
	t.negoMu.Lock()
	defer t.negoMu.Unlock()
	if t.negoDone.Load() {
		return t.negoErr
	}
	latch, err := t.doNegotiate(ctx, recvSide)
	if latch {
		t.negoErr = err
		t.negoDone.Store(true)
	}
	return err
}

// doNegotiate runs the role's half of the preamble exchange. latch
// reports whether the outcome (success or failure) is final; Peek is
// used throughout so an aborted attempt leaves the stream intact.
func (t *tcpTransport) doNegotiate(ctx context.Context, recvSide bool) (latch bool, _ error) {
	switch t.role {
	case roleDialer:
		// Await the listener's verdict: its preamble reply, or the '{'
		// of a JSON frame from a listener that predates the preamble
		// and simply started talking.
		if err := t.conn.SetReadDeadline(deadlineFor(ctx, t.to.Read)); err != nil {
			return true, fmt.Errorf("v2i: set read deadline: %w", err)
		}
		b, err := t.r.Peek(1)
		if err != nil {
			return !isTimeoutErr(err), fmt.Errorf("v2i: read preamble reply: %w", err)
		}
		if b[0] != wireMagic0 {
			t.wire = WireJSON
			return true, nil
		}
		rep, err := t.r.Peek(wirePreambleLen)
		if err != nil {
			return !isTimeoutErr(err), fmt.Errorf("v2i: read preamble reply: %w", err)
		}
		if rep[1] != wireMagic1 || rep[2] != wireMagic2 || rep[3] != wireMagic3 {
			return true, fmt.Errorf("v2i: bad preamble reply magic %q", rep[:4])
		}
		if rep[4] >= wireVersionBinary1 && t.maxWire >= WireBinary {
			t.wire = WireBinary
		} else {
			t.wire = WireJSON
		}
		t.r.Discard(wirePreambleLen)
		return true, nil
	case roleAccepter:
		if !recvSide {
			// Sending before anything was received: sniffing would
			// block on a peer that may be waiting for us. Speak JSON —
			// the dialer infers JSON from our '{' first byte — and let
			// the first Recv swallow a late preamble silently.
			t.wire = WireJSON
			t.lateSniff = true
			return true, nil
		}
		if err := t.conn.SetReadDeadline(deadlineFor(ctx, t.to.Read)); err != nil {
			return true, fmt.Errorf("v2i: set read deadline: %w", err)
		}
		b, err := t.r.Peek(1)
		if err != nil {
			return !isTimeoutErr(err), fmt.Errorf("v2i: sniff preamble: %w", err)
		}
		if b[0] != wireMagic0 {
			// A JSON dialer sends no preamble and expects no reply.
			t.wire = WireJSON
			return true, nil
		}
		pre, err := t.r.Peek(wirePreambleLen)
		if err != nil {
			return !isTimeoutErr(err), fmt.Errorf("v2i: sniff preamble: %w", err)
		}
		if pre[1] != wireMagic1 || pre[2] != wireMagic2 || pre[3] != wireMagic3 {
			return true, fmt.Errorf("v2i: bad preamble magic %q", pre[:4])
		}
		chosen := byte(wireVersionJSON)
		if pre[4] >= wireVersionBinary1 && t.maxWire >= WireBinary {
			chosen = wireVersionBinary1
		}
		t.r.Discard(wirePreambleLen)
		if err := t.conn.SetWriteDeadline(deadlineFor(ctx, t.to.Write)); err != nil {
			return true, fmt.Errorf("v2i: set write deadline: %w", err)
		}
		if _, err := t.conn.Write([]byte{wireMagic0, wireMagic1, wireMagic2, wireMagic3, chosen}); err != nil {
			return true, fmt.Errorf("v2i: write preamble reply: %w", err)
		}
		if chosen >= wireVersionBinary1 {
			t.wire = WireBinary
		} else {
			t.wire = WireJSON
		}
		return true, nil
	default:
		t.wire = WireJSON
		return true, nil
	}
}

// Wire reports the codec the connection negotiated; WireJSON until
// negotiation completes (the conservative answer — see WireOf).
func (t *tcpTransport) Wire() Wire {
	if !t.negoDone.Load() {
		return WireJSON
	}
	return t.wire
}

// BytesSent reports cumulative frame bytes written (length prefixes
// and newline delimiters included, negotiation preambles excluded).
func (t *tcpTransport) BytesSent() uint64 { return t.bytesSent.Load() }

// BytesReceived is the receive-side counterpart of BytesSent.
func (t *tcpTransport) BytesReceived() uint64 { return t.bytesRecv.Load() }

func (t *tcpTransport) writeLocked(frame []byte) error {
	if _, err := t.conn.Write(frame); err != nil {
		return fmt.Errorf("v2i: write: %w", err)
	}
	t.bytesSent.Add(uint64(len(frame)))
	return nil
}

// sendJSONLocked marshals through a per-transport json.Encoder into a
// reused buffer — the Encoder's trailing newline is exactly the frame
// delimiter, and its output bytes are identical to json.Marshal's —
// so the steady state reuses one buffer instead of allocating a fresh
// marshal result per frame.
func (t *tcpTransport) sendJSONLocked(env Envelope) error {
	if t.jenc == nil {
		t.jenc = json.NewEncoder(&t.jbuf)
	}
	t.jbuf.Reset()
	if err := t.jenc.Encode(env); err != nil {
		return fmt.Errorf("v2i: marshal envelope: %w", err)
	}
	raw := t.jbuf.Bytes()
	if len(raw)-1 >= MaxFrameBytes {
		return fmt.Errorf("v2i: send %d bytes: %w", len(raw)-1, ErrFrameTooLarge)
	}
	return t.writeLocked(raw)
}

// Send implements Transport. The effective write deadline is the
// earlier of the context's deadline and the transport's Write timeout.
func (t *tcpTransport) Send(ctx context.Context, env Envelope) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := t.negotiate(ctx, false); err != nil {
		return fmt.Errorf("v2i: negotiate: %w", err)
	}
	if err := t.conn.SetWriteDeadline(deadlineFor(ctx, t.to.Write)); err != nil {
		return fmt.Errorf("v2i: set write deadline: %w", err)
	}
	if t.wire == WireBinary {
		buf, err := EncodeBinaryFrame(t.ebuf[:0], env)
		if err != nil {
			return err
		}
		t.ebuf = buf[:0]
		return t.writeLocked(buf)
	}
	return t.sendJSONLocked(env)
}

// SendTyped implements TypedSender: on a binary connection the body
// encodes straight into the reused frame buffer with zero
// allocations; on a JSON connection it is Seal + the pooled JSON
// path, byte-identical to Send.
func (t *tcpTransport) SendTyped(ctx context.Context, typ MessageType, from string, seq uint64, body any) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := t.negotiate(ctx, false); err != nil {
		return fmt.Errorf("v2i: negotiate: %w", err)
	}
	if err := t.conn.SetWriteDeadline(deadlineFor(ctx, t.to.Write)); err != nil {
		return fmt.Errorf("v2i: set write deadline: %w", err)
	}
	if t.wire == WireBinary {
		buf, err := AppendBinaryFrame(t.ebuf[:0], typ, from, seq, body)
		if err != nil {
			return err
		}
		t.ebuf = buf[:0]
		return t.writeLocked(buf)
	}
	env, err := Seal(typ, from, seq, body)
	if err != nil {
		return err
	}
	return t.sendJSONLocked(env)
}

// recvJSONLocked reads one newline-delimited frame. Frames longer
// than the fixed reader accumulate into the transport's line buffer
// up to MaxFrameBytes, preserving the former big-reader semantics at
// a fraction of the per-connection footprint.
func (t *tcpTransport) recvJSONLocked() (Envelope, error) {
	if t.lateSniff {
		// We spoke first on an accepted connection; a binary dialer's
		// preamble may still be queued ahead of its JSON frames.
		// Swallow it silently — no reply, the dialer already inferred
		// JSON from our '{' first byte.
		b, err := t.r.Peek(1)
		if err != nil {
			return Envelope{}, fmt.Errorf("v2i: read: %w", err)
		}
		if b[0] == wireMagic0 {
			if _, err := t.r.Peek(wirePreambleLen); err != nil {
				return Envelope{}, fmt.Errorf("v2i: read: %w", err)
			}
			t.r.Discard(wirePreambleLen)
		}
		t.lateSniff = false
	}
	line, err := t.r.ReadSlice('\n')
	if err == nil {
		t.bytesRecv.Add(uint64(len(line)))
		return DecodeFrame(line)
	}
	if !errors.Is(err, bufio.ErrBufferFull) {
		return Envelope{}, fmt.Errorf("v2i: read: %w", err)
	}
	t.lineBuf = append(t.lineBuf[:0], line...)
	for {
		if len(t.lineBuf) >= MaxFrameBytes {
			return Envelope{}, fmt.Errorf("v2i: read: %w", ErrFrameTooLarge)
		}
		line, err = t.r.ReadSlice('\n')
		t.lineBuf = append(t.lineBuf, line...)
		if err == nil {
			t.bytesRecv.Add(uint64(len(t.lineBuf)))
			return DecodeFrame(t.lineBuf)
		}
		if !errors.Is(err, bufio.ErrBufferFull) {
			return Envelope{}, fmt.Errorf("v2i: read: %w", err)
		}
	}
}

// recvBinaryLocked reads one length-prefixed frame into the decoder's
// scratch buffer. The returned Envelope aliases that buffer and is
// valid until the next Recv — the Transport contract.
func (t *tcpTransport) recvBinaryLocked() (Envelope, error) {
	if _, err := io.ReadFull(t.r, t.dec.lenb[:]); err != nil {
		return Envelope{}, fmt.Errorf("v2i: read: %w", err)
	}
	b := &t.dec.lenb
	n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if n >= MaxFrameBytes {
		return Envelope{}, fmt.Errorf("v2i: read %d bytes: %w", n, ErrFrameTooLarge)
	}
	if n < binMinPayload {
		return Envelope{}, fmt.Errorf("v2i: binary payload of %d bytes: truncated header", n)
	}
	buf := t.dec.grow(n)
	if _, err := io.ReadFull(t.r, buf); err != nil {
		return Envelope{}, fmt.Errorf("v2i: read: %w", err)
	}
	t.bytesRecv.Add(uint64(binLenPrefix + n))
	return t.dec.parsePayload(buf)
}

// Recv implements Transport. The effective read deadline is the
// earlier of the context's deadline and the transport's Read timeout.
// The returned Envelope's Body may alias per-transport receive state;
// it is valid until the next Recv on this transport.
func (t *tcpTransport) Recv(ctx context.Context) (Envelope, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if err := ctx.Err(); err != nil {
		return Envelope{}, err
	}
	if err := t.negotiate(ctx, true); err != nil {
		return Envelope{}, fmt.Errorf("v2i: negotiate: %w", err)
	}
	if err := t.conn.SetReadDeadline(deadlineFor(ctx, t.to.Read)); err != nil {
		return Envelope{}, fmt.Errorf("v2i: set read deadline: %w", err)
	}
	if t.wire == WireBinary {
		return t.recvBinaryLocked()
	}
	return t.recvJSONLocked()
}

// Close implements Transport.
func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.conn.Close() })
	return t.closeErr
}

// Server accepts V2I connections for the smart grid.
type Server struct {
	ln net.Listener
	// ConnTimeouts, when non-zero, arms every accepted transport with
	// default read/write deadlines; set it before the accept loop
	// starts. A hung vehicle then times out instead of pinning a
	// coordinator goroutine forever.
	ConnTimeouts Timeouts

	// Wire, when WireBinary, lets accepted connections negotiate the
	// binary codec with dialers that offer it; everyone else stays on
	// JSON. The zero value keeps all connections on JSON regardless of
	// what dialers offer. Set it before the accept loop starts.
	Wire Wire

	// slots, when non-nil, is the accept-side admission semaphore:
	// Accept takes a slot before accepting and each accepted
	// transport's Close returns it. See SetMaxConns.
	slots chan struct{}
}

// Listen opens a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// test port).
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("v2i: listen %s: %w", addr, err)
	}
	return &Server{ln: ln}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetMaxConns bounds the number of concurrently open accepted
// transports. At the limit Accept pauses — the flood waits in the
// kernel backlog instead of exhausting file descriptors — and resumes
// as soon as an accepted transport is closed. Zero or negative removes
// the limit. Set it before the accept loop starts; it is not safe to
// change while Accept is running.
func (s *Server) SetMaxConns(n int) {
	if n <= 0 {
		s.slots = nil
		return
	}
	s.slots = make(chan struct{}, n)
}

// acceptBackoff bounds the retry backoff applied when the listener
// reports a temporary error (EMFILE, ECONNABORTED under a SYN flood):
// the accept loop degrades to a slower accept rate instead of tearing
// the daemon down.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

// Accept blocks for the next vehicle connection. With a MaxConns
// limit armed it first waits for a free connection slot; temporary
// listener errors are retried with exponential backoff rather than
// surfaced, so a connection flood degrades service instead of ending
// the accept loop.
func (s *Server) Accept() (Transport, error) {
	if s.slots != nil {
		s.slots <- struct{}{} // accept-pause until a slot frees up
	}
	backoff := acceptBackoffBase
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if isTemporary(err) {
				time.Sleep(backoff)
				if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				continue
			}
			if s.slots != nil {
				<-s.slots
			}
			return nil, fmt.Errorf("v2i: accept: %w", err)
		}
		// Every accepted connection sniffs for a dialer preamble on its
		// first Recv — even a JSON-only server must consume a binary
		// offer (and decline it) to stay framed.
		ct := newConnTransport(conn, s.ConnTimeouts)
		ct.role = roleAccepter
		ct.maxWire = s.Wire
		var t Transport = ct
		if s.slots != nil {
			t = &slottedTransport{Transport: t, slots: s.slots}
		}
		return t, nil
	}
}

// isTemporary reports whether an accept error is transient. The
// Temporary method is deprecated for general errors but remains the
// documented contract for listener errors like ECONNABORTED.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// slottedTransport returns its accept slot exactly once on Close.
type slottedTransport struct {
	Transport
	slots chan struct{}
	once  sync.Once
}

func (t *slottedTransport) Close() error {
	err := t.Transport.Close()
	t.once.Do(func() { <-t.slots })
	return err
}

// SendTyped forwards the typed zero-alloc send path when the wrapped
// transport offers it; embedding the Transport interface alone would
// hide it, silently downgrading every accepted daemon connection to
// the envelope path.
func (t *slottedTransport) SendTyped(ctx context.Context, typ MessageType, from string, seq uint64, body any) error {
	if ts, ok := t.Transport.(TypedSender); ok {
		return ts.SendTyped(ctx, typ, from, seq, body)
	}
	env, err := Seal(typ, from, seq, body)
	if err != nil {
		return err
	}
	return t.Transport.Send(ctx, env)
}

// Unwrap exposes the accepted connection to WireOf.
func (t *slottedTransport) Unwrap() Transport { return t.Transport }

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }
