package v2i

// The binary codec (wire version 1). Frames are length-prefixed with
// a fixed little-endian layout:
//
//	u32  payload length n (bytes after this prefix; 12 <= n < MaxFrameBytes)
//	u8   message type code (binCodes)
//	u8   body codec: 0 = typed binary body, 1 = raw JSON body bytes
//	u16  len(From), then From bytes
//	u64  Seq
//	...  body (layout per message type, or JSON when body codec is 1)
//
// Scalars are little-endian; float64s are IEEE-754 bits; strings are
// u16-length-prefixed UTF-8; slices are a u32 element count followed
// by the elements (count 0 decodes to nil, matching the JSON
// omitempty convention). Body codec 1 exists so wrappers that can
// only see sealed Envelopes (the fault injector) still ride a binary
// connection: the JSON body bytes travel inside a binary frame and
// Open falls back to encoding/json for them.
//
// Everything here is allocation-free in steady state: encoding
// appends into a caller-owned scratch buffer, and decoding aliases
// the FrameDecoder's receive buffer, interning the handful of
// distinct peer/vehicle ID strings a connection ever sees.

import (
	"encoding/json"
	"fmt"
	"math"
)

const (
	// binLenPrefix is the size of the u32 payload-length prefix.
	binLenPrefix = 4
	// binMinPayload is the smallest legal payload: type + codec +
	// empty From + Seq and an empty body.
	binMinPayload = 1 + 1 + 2 + 8
)

// Body codec values inside a binary frame.
const (
	bodyBinary = 0
	bodyJSON   = 1
)

// Message type codes. 0 is reserved as invalid.
var binCodes = map[MessageType]byte{
	TypeHello:      1,
	TypeQuote:      2,
	TypeRequest:    3,
	TypeSchedule:   4,
	TypeConverged:  5,
	TypeBye:        6,
	TypeHeartbeat:  7,
	TypeQuoteBatch: 8,
}

var binTypes = [...]MessageType{
	1: TypeHello,
	2: TypeQuote,
	3: TypeRequest,
	4: TypeSchedule,
	5: TypeConverged,
	6: TypeBye,
	7: TypeHeartbeat,
	8: TypeQuoteBatch,
}

// --- append-style encoders -------------------------------------------------

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendStr16(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return dst, fmt.Errorf("v2i: string of %d bytes exceeds wire limit", len(s))
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendF64s(dst []byte, vs []float64) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

func appendBools(dst []byte, vs []bool) []byte {
	dst = appendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		b := byte(0)
		if v {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

// --- per-type body encoders ------------------------------------------------

func appendHello(dst []byte, m *Hello) ([]byte, error) {
	dst, err := appendStr16(dst, m.VehicleID)
	if err != nil {
		return dst, err
	}
	dst = appendF64(dst, m.MaxPowerKW)
	dst = appendF64(dst, m.VelocityMS)
	dst = appendF64(dst, m.SOC)
	return dst, nil
}

func appendCostSpec(dst []byte, m *CostSpec) ([]byte, error) {
	// Kind travels as a string, not an enum byte: an old decoder can
	// then surface an unknown future kind verbatim instead of
	// mis-mapping it.
	dst, err := appendStr16(dst, m.Kind)
	if err != nil {
		return dst, err
	}
	dst = appendF64(dst, m.BetaPerKWh)
	dst = appendF64(dst, m.Alpha)
	dst = appendF64(dst, m.LineCapacityKW)
	dst = appendF64(dst, m.OverloadKappaPerKWh)
	dst = appendF64(dst, m.OverloadCapacityKW)
	return dst, nil
}

func appendQuote(dst []byte, m *Quote) ([]byte, error) {
	dst, err := appendStr16(dst, m.VehicleID)
	if err != nil {
		return dst, err
	}
	dst = appendF64s(dst, m.Others)
	if dst, err = appendCostSpec(dst, &m.Cost); err != nil {
		return dst, err
	}
	dst = appendU32(dst, uint32(int32(m.Round)))
	dst = appendU64(dst, m.Epoch)
	dst = appendU32(dst, uint32(int32(m.FleetSize)))
	dst = appendBools(dst, m.Live)
	return dst, nil
}

func appendQuoteBatch(dst []byte, m *QuoteBatch) ([]byte, error) {
	dst = appendU32(dst, uint32(int32(m.Round)))
	dst = appendU64(dst, m.Epoch)
	dst = appendU32(dst, uint32(int32(m.FleetSize)))
	dst, err := appendCostSpec(dst, &m.Cost)
	if err != nil {
		return dst, err
	}
	dst = appendBools(dst, m.Live)
	dst = appendF64s(dst, m.Totals)
	dst = appendF64s(dst, m.Own)
	return dst, nil
}

func appendRequest(dst []byte, m *Request) ([]byte, error) {
	dst, err := appendStr16(dst, m.VehicleID)
	if err != nil {
		return dst, err
	}
	dst = appendF64(dst, m.TotalKW)
	dst = appendF64(dst, m.DrawCapKW)
	dst = appendU32(dst, uint32(int32(m.Round)))
	dst = appendU64(dst, m.Epoch)
	dst = appendF64(dst, m.OwnKWSum)
	return dst, nil
}

func appendSchedule(dst []byte, m *ScheduleMsg) ([]byte, error) {
	dst, err := appendStr16(dst, m.VehicleID)
	if err != nil {
		return dst, err
	}
	dst = appendF64s(dst, m.AllocKW)
	dst = appendF64(dst, m.PaymentH)
	dst = appendU32(dst, uint32(int32(m.Round)))
	return dst, nil
}

func appendConverged(dst []byte, m *Converged) ([]byte, error) {
	dst = appendU32(dst, uint32(int32(m.Rounds)))
	dst = appendF64(dst, m.CongestionDegree)
	dst = appendF64(dst, m.WelfarePerHour)
	return dst, nil
}

func appendBye(dst []byte, m *Bye) ([]byte, error) {
	return appendStr16(dst, m.Reason)
}

func appendHeartbeat(dst []byte, m *Heartbeat) ([]byte, error) {
	dst = appendU64(dst, m.Epoch)
	dst = appendU32(dst, uint32(int32(m.Round)))
	return dst, nil
}

// appendBinaryBody dispatches on the concrete body type. ok=false
// means the type has no fixed layout and the caller should fall back
// to a JSON body.
func appendBinaryBody(dst []byte, body any) (_ []byte, ok bool, err error) {
	switch m := body.(type) {
	case *Hello:
		dst, err = appendHello(dst, m)
	case Hello:
		dst, err = appendHello(dst, &m)
	case *Quote:
		dst, err = appendQuote(dst, m)
	case Quote:
		dst, err = appendQuote(dst, &m)
	case *QuoteBatch:
		dst, err = appendQuoteBatch(dst, m)
	case QuoteBatch:
		dst, err = appendQuoteBatch(dst, &m)
	case *Request:
		dst, err = appendRequest(dst, m)
	case Request:
		dst, err = appendRequest(dst, &m)
	case *ScheduleMsg:
		dst, err = appendSchedule(dst, m)
	case ScheduleMsg:
		dst, err = appendSchedule(dst, &m)
	case *Converged:
		dst, err = appendConverged(dst, m)
	case Converged:
		dst, err = appendConverged(dst, &m)
	case *Bye:
		dst, err = appendBye(dst, m)
	case Bye:
		dst, err = appendBye(dst, &m)
	case *Heartbeat:
		dst, err = appendHeartbeat(dst, m)
	case Heartbeat:
		dst, err = appendHeartbeat(dst, &m)
	default:
		return dst, false, nil
	}
	return dst, true, err
}

// --- frame encoders --------------------------------------------------------

// finishFrame back-fills the length prefix written as a placeholder
// at start and enforces the frame bound.
func finishFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - binLenPrefix
	if n >= MaxFrameBytes {
		return dst, fmt.Errorf("v2i: send %d bytes: %w", n, ErrFrameTooLarge)
	}
	dst[start] = byte(n)
	dst[start+1] = byte(n >> 8)
	dst[start+2] = byte(n >> 16)
	dst[start+3] = byte(n >> 24)
	return dst, nil
}

func appendFrameHeader(dst []byte, code, codec byte, from string, seq uint64) ([]byte, error) {
	dst = append(dst, 0, 0, 0, 0) // length prefix placeholder
	dst = append(dst, code, codec)
	dst, err := appendStr16(dst, from)
	if err != nil {
		return dst, err
	}
	return appendU64(dst, seq), nil
}

// AppendBinaryFrame appends one complete binary frame (length prefix
// included) for a typed message to dst and returns the extended
// slice. It allocates only when dst lacks capacity, so callers that
// reuse the returned slice reach zero steady-state allocations. A
// body type without a fixed layout is carried as JSON bytes inside
// the frame (body codec 1).
func AppendBinaryFrame(dst []byte, typ MessageType, from string, seq uint64, body any) ([]byte, error) {
	code, ok := binCodes[typ]
	if !ok {
		return dst, fmt.Errorf("v2i: no binary code for message type %q", typ)
	}
	start := len(dst)
	out, err := appendFrameHeader(dst, code, bodyBinary, from, seq)
	if err != nil {
		return dst, err
	}
	out, ok, err = appendBinaryBody(out, body)
	if err != nil {
		return dst, err
	}
	if !ok {
		raw, err := json.Marshal(body)
		if err != nil {
			return dst, fmt.Errorf("v2i: marshal %s body: %w", typ, err)
		}
		out[start+binLenPrefix+1] = bodyJSON
		out = append(out, raw...)
	}
	return finishFrame(out, start)
}

// EncodeBinaryFrame appends one complete binary frame for a sealed
// Envelope to dst. The Body travels as JSON bytes (body codec 1)
// unless the envelope was produced by the binary decoder itself, in
// which case its typed-binary body bytes are forwarded verbatim.
func EncodeBinaryFrame(dst []byte, env Envelope) ([]byte, error) {
	code, ok := binCodes[env.Type]
	if !ok {
		return dst, fmt.Errorf("v2i: no binary code for message type %q", env.Type)
	}
	codec := byte(bodyJSON)
	if env.bodyBin {
		codec = bodyBinary
	}
	start := len(dst)
	out, err := appendFrameHeader(dst, code, codec, env.From, env.Seq)
	if err != nil {
		return dst, err
	}
	out = append(out, env.Body...)
	return finishFrame(out, start)
}

// --- decoding --------------------------------------------------------------

// binReader is a bounds-checked cursor over a payload. All read
// methods return zero values once err is set, so decoders can read a
// whole struct and check err once.
type binReader struct {
	b   []byte
	off int
	err bool
}

func (r *binReader) fail() { r.err = true }

func (r *binReader) take(n int) []byte {
	if r.err || n < 0 || len(r.b)-r.off < n {
		r.fail()
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *binReader) i32() int { return int(int32(r.u32())) }

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

// str decodes a u16-length-prefixed string, interning through d when
// non-nil so repeated IDs on one connection cost one allocation ever.
func (r *binReader) str(d *FrameDecoder) string {
	b := r.take(int(r.u16()))
	if len(b) == 0 {
		return ""
	}
	if d != nil {
		return d.intern(b)
	}
	return string(b)
}

// f64s decodes a float64 slice into dst's storage when it has the
// capacity. Count 0 yields nil, matching JSON omitempty.
func (r *binReader) f64s(dst []float64) []float64 {
	n := int(r.u32())
	if r.err || n <= 0 {
		if n != 0 {
			r.fail()
		}
		return nil
	}
	if len(r.b)-r.off < 8*n {
		r.fail()
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = r.f64()
	}
	return dst
}

func (r *binReader) bools(dst []bool) []bool {
	n := int(r.u32())
	if r.err || n <= 0 {
		if n != 0 {
			r.fail()
		}
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	if cap(dst) < n {
		dst = make([]bool, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		switch b[i] {
		case 0:
			dst[i] = false
		case 1:
			dst[i] = true
		default:
			r.fail()
			return nil
		}
	}
	return dst
}

// FrameDecoder carries the per-connection receive state of the
// binary codec: the payload scratch buffer the decoded Envelope
// aliases, and a small intern cache for the handful of distinct ID
// strings one connection sees. A decoded Envelope (and anything
// Opened out of it that aliases strings) is valid until the next
// Decode on the same FrameDecoder — the transport's Recv contract.
// The zero value is ready to use. Not safe for concurrent use.
type FrameDecoder struct {
	scratch []byte
	lenb    [binLenPrefix]byte
	names   [8]string
	nNames  int
}

// intern returns a string equal to b, reusing a previously decoded
// one when possible. The linear scan over at most 8 entries with a
// direct ==string(b) comparison is allocation-free.
func (d *FrameDecoder) intern(b []byte) string {
	for i := 0; i < d.nNames; i++ {
		if d.names[i] == string(b) {
			return d.names[i]
		}
	}
	s := string(b)
	if d.nNames < len(d.names) {
		d.names[d.nNames] = s
		d.nNames++
	}
	return s
}

// grow returns d's scratch buffer resized to n bytes, reallocating
// only when capacity is short.
func (d *FrameDecoder) grow(n int) []byte {
	if cap(d.scratch) < n {
		d.scratch = make([]byte, n)
	}
	d.scratch = d.scratch[:n]
	return d.scratch
}

// Decode parses one complete binary frame — length prefix included,
// no trailing bytes — into an Envelope whose Body and From alias the
// frame (or d's intern cache). The frame bytes must stay untouched
// while the Envelope is in use.
func (d *FrameDecoder) Decode(frame []byte) (Envelope, error) {
	if len(frame) < binLenPrefix {
		return Envelope{}, fmt.Errorf("v2i: binary frame of %d bytes: short length prefix", len(frame))
	}
	n := int(uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24)
	if n != len(frame)-binLenPrefix {
		return Envelope{}, fmt.Errorf("v2i: binary frame length prefix %d does not match %d payload bytes", n, len(frame)-binLenPrefix)
	}
	return d.parsePayload(frame[binLenPrefix:])
}

// parsePayload decodes the payload that follows the length prefix.
func (d *FrameDecoder) parsePayload(p []byte) (Envelope, error) {
	if len(p) >= MaxFrameBytes {
		return Envelope{}, fmt.Errorf("v2i: recv %d bytes: %w", len(p), ErrFrameTooLarge)
	}
	if len(p) < binMinPayload {
		return Envelope{}, fmt.Errorf("v2i: binary payload of %d bytes: truncated header", len(p))
	}
	r := binReader{b: p}
	code := r.u8()
	codec := r.u8()
	from := r.str(d)
	seq := r.u64()
	if r.err {
		return Envelope{}, fmt.Errorf("v2i: binary payload of %d bytes: truncated header", len(p))
	}
	if int(code) >= len(binTypes) || binTypes[code] == "" {
		return Envelope{}, fmt.Errorf("v2i: unknown binary message code %d", code)
	}
	if codec != bodyBinary && codec != bodyJSON {
		return Envelope{}, fmt.Errorf("v2i: unknown body codec %d", codec)
	}
	return Envelope{
		Type:    binTypes[code],
		From:    from,
		Seq:     seq,
		Body:    json.RawMessage(p[r.off:]),
		bodyBin: codec == bodyBinary,
		dec:     d,
	}, nil
}

// decodeBinaryBody decodes a typed-binary body into out, reusing
// out's slice storage. Trailing bytes are an error so corruption
// cannot hide behind a successful prefix parse.
func decodeBinaryBody(typ MessageType, body []byte, d *FrameDecoder, out any) error {
	r := binReader{b: body}
	switch m := out.(type) {
	case *Hello:
		m.VehicleID = r.str(d)
		m.MaxPowerKW = r.f64()
		m.VelocityMS = r.f64()
		m.SOC = r.f64()
	case *Quote:
		m.VehicleID = r.str(d)
		m.Others = r.f64s(m.Others)
		decodeCostSpec(&r, d, &m.Cost)
		m.Round = r.i32()
		m.Epoch = r.u64()
		m.FleetSize = r.i32()
		m.Live = r.bools(m.Live)
	case *QuoteBatch:
		m.Round = r.i32()
		m.Epoch = r.u64()
		m.FleetSize = r.i32()
		decodeCostSpec(&r, d, &m.Cost)
		m.Live = r.bools(m.Live)
		m.Totals = r.f64s(m.Totals)
		m.Own = r.f64s(m.Own)
	case *Request:
		m.VehicleID = r.str(d)
		m.TotalKW = r.f64()
		m.DrawCapKW = r.f64()
		m.Round = r.i32()
		m.Epoch = r.u64()
		m.OwnKWSum = r.f64()
	case *ScheduleMsg:
		m.VehicleID = r.str(d)
		m.AllocKW = r.f64s(m.AllocKW)
		m.PaymentH = r.f64()
		m.Round = r.i32()
	case *Converged:
		m.Rounds = r.i32()
		m.CongestionDegree = r.f64()
		m.WelfarePerHour = r.f64()
	case *Bye:
		m.Reason = r.str(d)
	case *Heartbeat:
		m.Epoch = r.u64()
		m.Round = r.i32()
	case *CostSpec:
		decodeCostSpec(&r, d, m)
	default:
		return fmt.Errorf("v2i: no binary decoder for %T", out)
	}
	if r.err {
		return fmt.Errorf("v2i: truncated %s body", typ)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("v2i: %d trailing bytes after %s body", len(r.b)-r.off, typ)
	}
	return nil
}

func decodeCostSpec(r *binReader, d *FrameDecoder, m *CostSpec) {
	m.Kind = r.str(d)
	m.BetaPerKWh = r.f64()
	m.Alpha = r.f64()
	m.LineCapacityKW = r.f64()
	m.OverloadKappaPerKWh = r.f64()
	m.OverloadCapacityKW = r.f64()
}

// DecodeBinaryFrame parses one complete binary frame with a fresh
// decoder. Convenience for tests and one-shot callers; hot paths
// hold a FrameDecoder and call its Decode.
func DecodeBinaryFrame(frame []byte) (Envelope, error) {
	var d FrameDecoder
	return d.Decode(frame)
}
