package v2i

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSealOpenRoundTrip(t *testing.T) {
	env, err := Seal(TypeQuote, "smart-grid", 7, Quote{
		VehicleID: "ev-1",
		Others:    []float64{1, 2, 3},
		Cost:      CostSpec{Kind: "nonlinear", BetaPerKWh: 0.02, Alpha: 0.875, LineCapacityKW: 53.55},
		Round:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypeQuote || env.From != "smart-grid" || env.Seq != 7 {
		t.Errorf("envelope header %+v", env)
	}
	var got Quote
	if err := Open(env, TypeQuote, &got); err != nil {
		t.Fatal(err)
	}
	if got.VehicleID != "ev-1" || len(got.Others) != 3 || got.Others[2] != 3 || got.Round != 3 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Cost.Kind != "nonlinear" || got.Cost.Alpha != 0.875 {
		t.Errorf("cost spec mismatch: %+v", got.Cost)
	}
}

func TestOpenTypeMismatch(t *testing.T) {
	env, err := Seal(TypeBye, "x", 1, Bye{})
	if err != nil {
		t.Fatal(err)
	}
	var q Quote
	if err := Open(env, TypeQuote, &q); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSealOpenQuickProperty(t *testing.T) {
	// Any request survives a wire round trip bit-exact.
	f := func(id string, total, drawCap float64, round int) bool {
		if math.IsNaN(total) || math.IsInf(total, 0) ||
			math.IsNaN(drawCap) || math.IsInf(drawCap, 0) {
			return true
		}
		in := Request{VehicleID: id, TotalKW: total, DrawCapKW: drawCap, Round: round}
		env, err := Seal(TypeRequest, id, 1, in)
		if err != nil {
			return false
		}
		// Simulate the wire: envelope itself is JSON-marshaled too.
		raw, err := json.Marshal(env)
		if err != nil {
			return false
		}
		var back Envelope
		if err := json.Unmarshal(raw, &back); err != nil {
			return false
		}
		var out Request
		if err := Open(back, TypeRequest, &out); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChanPairDelivers(t *testing.T) {
	a, b := NewPair(4)
	defer func() { _ = a.Close() }()
	ctx := context.Background()

	env, err := Seal(TypeHello, "ev-1", 1, Hello{VehicleID: "ev-1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeHello || got.From != "ev-1" {
		t.Errorf("got %+v", got)
	}
}

func TestChanPairPreservesOrder(t *testing.T) {
	a, b := NewPair(16)
	defer func() { _ = a.Close() }()
	ctx := context.Background()
	for i := uint64(1); i <= 10; i++ {
		env, err := Seal(TypeRequest, "ev", i, Request{TotalKW: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Send(ctx, env); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != i {
			t.Fatalf("out of order: got seq %d, want %d", got.Seq, i)
		}
	}
}

func TestChanPairClose(t *testing.T) {
	a, b := NewPair(0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Send(ctx, Envelope{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := b.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close = %v, want ErrClosed", err)
	}
	// Close is idempotent and closing the peer is fine.
	if err := a.Close(); err != nil {
		t.Error(err)
	}
	if err := b.Close(); err != nil {
		t.Error(err)
	}
}

func TestChanPairDrainsInFlightAfterClose(t *testing.T) {
	a, b := NewPair(4)
	ctx := context.Background()
	env, err := Seal(TypeBye, "grid", 1, Bye{Reason: "done"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx)
	if err != nil {
		t.Fatalf("in-flight message lost: %v", err)
	}
	if got.Type != TypeBye {
		t.Errorf("got %v", got.Type)
	}
}

func TestChanPairContextCancel(t *testing.T) {
	a, _ := NewPair(0)
	defer func() { _ = a.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Recv = %v, want deadline exceeded", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := srv.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer func() { _ = conn.Close() }()
		env, err := conn.Recv(ctx)
		if err != nil {
			serverErr = err
			return
		}
		// Echo with a bumped seq.
		env.Seq++
		serverErr = conn.Send(ctx, env)
	}()

	client, err := Dial(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	env, err := Seal(TypeHello, "ev-9", 41, Hello{VehicleID: "ev-9", MaxPowerKW: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	got, err := client.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || got.From != "ev-9" {
		t.Errorf("echo = %+v", got)
	}
	var hello Hello
	if err := Open(got, TypeHello, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.MaxPowerKW != 50 {
		t.Errorf("payload corrupted: %+v", hello)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
}

func TestTCPRecvDeadline(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	go func() {
		conn, err := srv.Accept()
		if err != nil {
			return
		}
		// Hold the connection open without sending.
		time.Sleep(200 * time.Millisecond)
		_ = conn.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	client, err := Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, err := client.Recv(ctx); err == nil {
		t.Error("Recv should time out")
	}
}

func TestDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestFaultyDropsDeterministically(t *testing.T) {
	a, b := NewPair(64)
	defer func() { _ = a.Close() }()
	lossy := NewFaulty(a, FaultConfig{DropRate: 0.5, Seed: 3})

	ctx := context.Background()
	const sends = 40
	for i := 0; i < sends; i++ {
		env, err := Seal(TypeRequest, "ev", uint64(i), Request{TotalKW: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := lossy.Send(ctx, env); err != nil {
			t.Fatal(err)
		}
	}
	dropped := lossy.Dropped()
	if dropped == 0 || dropped == sends {
		t.Errorf("dropped = %d of %d; want partial loss", dropped, sends)
	}
	// Exactly sends-dropped frames arrive.
	var received int
	for {
		ctx2, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		_, err := b.Recv(ctx2)
		cancel()
		if err != nil {
			break
		}
		received++
	}
	if received != sends-dropped {
		t.Errorf("received %d, want %d", received, sends-dropped)
	}
}

func TestFaultyDelayDelivers(t *testing.T) {
	a, b := NewPair(4)
	defer func() { _ = a.Close() }()
	lossy := NewFaulty(a, FaultConfig{MaxDelay: 10 * time.Millisecond, Seed: 1})
	ctx := context.Background()
	env, err := Seal(TypeBye, "x", 1, Bye{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lossy.Send(ctx, env); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
}
