package v2i

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestDialTimeout: a dial whose context deadline has already passed
// must give up immediately instead of hanging the vehicle forever.
func TestDialTimeout(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := Dial(ctx, "127.0.0.1:9")
	if err == nil {
		t.Fatal("dial with expired deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("dial error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("dial took %v despite an expired deadline", elapsed)
	}
}

func TestDialCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Dial(ctx, "127.0.0.1:9"); err == nil {
		t.Error("dial with cancelled context succeeded")
	}
}

// TestTCPMidFrameConnectionDrop: the peer dies halfway through a
// frame; Recv must surface an error, not a truncated envelope.
func TestTCPMidFrameConnectionDrop(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Half an envelope, no newline, then a hard close.
		_, _ = conn.Write([]byte(`{"type":"quote","from":"smart-g`))
		_ = conn.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, err := client.Recv(ctx); err == nil {
		t.Error("Recv returned an envelope from a truncated frame")
	}
}

// TestTCPOversizedFrameRejectedOnRecv: a peer streaming an unbounded
// line must be rejected with ErrFrameTooLarge, not buffered forever.
func TestTCPOversizedFrameRejectedOnRecv(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		huge := strings.Repeat("x", MaxFrameBytes+1024)
		_, _ = conn.Write([]byte(huge))
		_, _ = conn.Write([]byte("\n"))
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client, err := Dial(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	_, err = client.Recv(ctx)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Recv = %v, want ErrFrameTooLarge", err)
	}
}

// TestTCPOversizedFrameRejectedOnSend: the sender refuses to put an
// over-limit frame on the wire at all.
func TestTCPOversizedFrameRejectedOnSend(t *testing.T) {
	client, server := net.Pipe()
	defer func() { _ = client.Close() }()
	defer func() { _ = server.Close() }()
	tr := NewConnTransport(client)

	env, err := Seal(TypeBye, "ev", 1, Bye{Reason: strings.Repeat("y", MaxFrameBytes)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := tr.Send(ctx, env); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Send = %v, want ErrFrameTooLarge", err)
	}
}
